//! Chrome `trace_event` JSON export.
//!
//! Emits the JSON-array flavour of the Trace Event Format that
//! chrome://tracing and Perfetto load directly: span events as
//! `ph:"X"` (complete) with `ts`/`dur` in microseconds, instants as
//! `ph:"i"` with process scope, plus `ph:"M"` metadata records naming
//! each process (worker) and thread (comper / service thread). `pid`
//! is the worker index, `tid` the comper index or a `TID_*` constant.

use crate::ring::Event;
use crate::tid_name;
use std::collections::BTreeSet;
use std::io::{self, Write};

/// Writes all workers' event timelines as one Chrome trace JSON array.
/// `events` is indexed by worker; each worker's events become one
/// `pid` row group in the viewer.
pub fn write_chrome_trace<W: Write>(mut w: W, events: &[Vec<Event>]) -> io::Result<()> {
    writeln!(w, "[")?;
    let mut first = true;
    let sep = |w: &mut W, first: &mut bool| -> io::Result<()> {
        if *first {
            *first = false;
            Ok(())
        } else {
            writeln!(w, ",")
        }
    };

    for (pid, worker_events) in events.iter().enumerate() {
        // Metadata: name the process and every thread that appears.
        sep(&mut w, &mut first)?;
        write!(
            w,
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\
             \"args\":{{\"name\":\"worker-{pid}\"}}}}"
        )?;
        let tids: BTreeSet<u32> = worker_events.iter().map(|e| e.tid).collect();
        for tid in tids {
            sep(&mut w, &mut first)?;
            write!(
                w,
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                tid_name(tid)
            )?;
        }

        for e in worker_events {
            sep(&mut w, &mut first)?;
            // Chrome expects microseconds; keep fractional precision so
            // sub-µs spans stay visible.
            let ts = e.ts as f64 / 1e3;
            let args = match e.kind.arg_key() {
                Some(k) => format!("{{\"{k}\":{}}}", e.arg),
                None => "{}".to_string(),
            };
            if e.kind.is_span() {
                let dur = e.dur as f64 / 1e3;
                write!(
                    w,
                    "{{\"ph\":\"X\",\"name\":\"{}\",\"pid\":{pid},\"tid\":{},\
                     \"ts\":{ts:.3},\"dur\":{dur:.3},\"args\":{args}}}",
                    e.kind.name(),
                    e.tid
                )?;
            } else {
                write!(
                    w,
                    "{{\"ph\":\"i\",\"name\":\"{}\",\"pid\":{pid},\"tid\":{},\
                     \"ts\":{ts:.3},\"s\":\"p\",\"args\":{args}}}",
                    e.kind.name(),
                    e.tid
                )?;
            }
        }
    }
    writeln!(w, "\n]")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::EventKind;

    fn sample_events() -> Vec<Vec<Event>> {
        vec![
            vec![
                Event { ts: 1_000, dur: 500, tid: 0, arg: 0, kind: EventKind::Compute },
                Event { ts: 2_000, dur: 0, tid: 1, arg: 3, kind: EventKind::Steal },
            ],
            vec![Event {
                ts: 1_500,
                dur: 200,
                tid: crate::TID_GC,
                arg: 7,
                kind: EventKind::GcPass,
            }],
        ]
    }

    #[test]
    fn trace_has_required_keys_and_balanced_json() {
        let mut buf = Vec::new();
        write_chrome_trace(&mut buf, &sample_events()).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.trim_start().starts_with('['));
        assert!(s.trim_end().ends_with(']'));
        for key in ["\"ph\":", "\"ts\":", "\"pid\":", "\"tid\":"] {
            assert!(s.contains(key), "missing {key} in {s}");
        }
        // One X span, one i instant, one gc span, plus metadata rows.
        assert!(s.contains("\"ph\":\"X\""));
        assert!(s.contains("\"ph\":\"i\""));
        assert!(s.contains("\"name\":\"compute\""));
        assert!(s.contains("\"name\":\"gc_pass\""));
        assert!(s.contains("\"args\":{\"tasks\":3}"));
        assert!(s.contains("\"args\":{\"evicted\":7}"));
        assert!(s.contains("\"name\":\"worker-0\""));
        assert!(s.contains("\"name\":\"worker-1\""));
        assert!(s.contains("\"name\":\"gc\""));
        // Braces and brackets balance (cheap well-formedness check —
        // CI additionally runs a real JSON parser over CLI output).
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('[').count(), s.matches(']').count());
    }

    #[test]
    fn empty_trace_is_valid_array() {
        let mut buf = Vec::new();
        write_chrome_trace(&mut buf, &[]).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert_eq!(s.split_whitespace().collect::<String>(), "[]");
    }
}
