//! Chrome `trace_event` JSON export.
//!
//! Emits the JSON-array flavour of the Trace Event Format that
//! chrome://tracing and Perfetto load directly: span events as
//! `ph:"X"` (complete) with `ts`/`dur` in microseconds, instants as
//! `ph:"i"` with process scope, plus `ph:"M"` metadata records naming
//! each process (worker) and thread (comper / service thread). `pid`
//! is the worker index, `tid` the comper index or a `TID_*` constant.

use crate::ring::{Event, EventKind};
use crate::tid_name;
use std::collections::BTreeSet;
use std::io::{self, Write};

/// Shifts every event by a per-worker clock offset (nanoseconds,
/// saturating at zero), moving the events onto another worker's
/// timeline. Cluster trace stitching applies each remote worker's
/// estimated offset so all processes share the master's clock.
pub fn shift_events(events: &mut [Event], offset_nanos: i64) {
    if offset_nanos == 0 {
        return;
    }
    for e in events.iter_mut() {
        e.ts = e.ts.saturating_add_signed(offset_nanos);
    }
}

/// Writes all workers' event timelines as one Chrome trace JSON array.
/// `events` is indexed by worker; each worker's events become one
/// `pid` row group in the viewer.
pub fn write_chrome_trace<W: Write>(mut w: W, events: &[Vec<Event>]) -> io::Result<()> {
    writeln!(w, "[")?;
    let mut first = true;
    let sep = |w: &mut W, first: &mut bool| -> io::Result<()> {
        if *first {
            *first = false;
            Ok(())
        } else {
            writeln!(w, ",")
        }
    };

    for (pid, worker_events) in events.iter().enumerate() {
        // Metadata: name the process and every thread that appears.
        sep(&mut w, &mut first)?;
        write!(
            w,
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\
             \"args\":{{\"name\":\"worker-{pid}\"}}}}"
        )?;
        let tids: BTreeSet<u32> = worker_events.iter().map(|e| e.tid).collect();
        for tid in tids {
            sep(&mut w, &mut first)?;
            write!(
                w,
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                tid_name(tid)
            )?;
        }

        for e in worker_events {
            sep(&mut w, &mut first)?;
            // Chrome expects microseconds; keep fractional precision so
            // sub-µs spans stay visible.
            let ts = e.ts as f64 / 1e3;
            let args = match e.kind.arg_key() {
                Some(k) => format!("{{\"{k}\":{}}}", e.arg),
                None => "{}".to_string(),
            };
            if e.kind.is_span() {
                let dur = e.dur as f64 / 1e3;
                write!(
                    w,
                    "{{\"ph\":\"X\",\"name\":\"{}\",\"pid\":{pid},\"tid\":{},\
                     \"ts\":{ts:.3},\"dur\":{dur:.3},\"args\":{args}}}",
                    e.kind.name(),
                    e.tid
                )?;
            } else {
                write!(
                    w,
                    "{{\"ph\":\"i\",\"name\":\"{}\",\"pid\":{pid},\"tid\":{},\
                     \"ts\":{ts:.3},\"s\":\"p\",\"args\":{args}}}",
                    e.kind.name(),
                    e.tid
                )?;
            }
            // Cluster steal halves additionally emit Chrome flow events
            // keyed by the (victim, seq) flow id: the viewer draws an
            // arrow from the victim's send to the thief's receive.
            if matches!(e.kind, EventKind::StealSend | EventKind::StealRecv) {
                sep(&mut w, &mut first)?;
                let (ph, bp) = match e.kind {
                    EventKind::StealSend => ("s", ""),
                    _ => ("f", "\"bp\":\"e\","),
                };
                write!(
                    w,
                    "{{\"ph\":\"{ph}\",{bp}\"cat\":\"steal\",\"name\":\"steal_flow\",\
                     \"id\":{},\"pid\":{pid},\"tid\":{},\"ts\":{ts:.3}}}",
                    e.arg, e.tid
                )?;
            }
        }
    }
    writeln!(w, "\n]")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::EventKind;

    fn sample_events() -> Vec<Vec<Event>> {
        vec![
            vec![
                Event { ts: 1_000, dur: 500, tid: 0, arg: 0, kind: EventKind::Compute },
                Event { ts: 2_000, dur: 0, tid: 1, arg: 3, kind: EventKind::Steal },
            ],
            vec![Event {
                ts: 1_500,
                dur: 200,
                tid: crate::TID_GC,
                arg: 7,
                kind: EventKind::GcPass,
            }],
        ]
    }

    #[test]
    fn trace_has_required_keys_and_balanced_json() {
        let mut buf = Vec::new();
        write_chrome_trace(&mut buf, &sample_events()).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.trim_start().starts_with('['));
        assert!(s.trim_end().ends_with(']'));
        for key in ["\"ph\":", "\"ts\":", "\"pid\":", "\"tid\":"] {
            assert!(s.contains(key), "missing {key} in {s}");
        }
        // One X span, one i instant, one gc span, plus metadata rows.
        assert!(s.contains("\"ph\":\"X\""));
        assert!(s.contains("\"ph\":\"i\""));
        assert!(s.contains("\"name\":\"compute\""));
        assert!(s.contains("\"name\":\"gc_pass\""));
        assert!(s.contains("\"args\":{\"tasks\":3}"));
        assert!(s.contains("\"args\":{\"evicted\":7}"));
        assert!(s.contains("\"name\":\"worker-0\""));
        assert!(s.contains("\"name\":\"worker-1\""));
        assert!(s.contains("\"name\":\"gc\""));
        // Braces and brackets balance (cheap well-formedness check —
        // CI additionally runs a real JSON parser over CLI output).
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('[').count(), s.matches(']').count());
    }

    #[test]
    fn steal_flow_events_pair_up_and_offsets_shift() {
        let flow = (2u64 << 32) | 7; // victim 2, seq 7
        let mut events = vec![
            vec![Event { ts: 1_000, dur: 0, tid: 3, arg: flow, kind: EventKind::StealSend }],
            vec![Event {
                ts: 500,
                dur: 0,
                tid: crate::TID_RECEIVER,
                arg: flow,
                kind: EventKind::StealRecv,
            }],
        ];
        // Worker 1's clock runs 2µs behind the master's.
        shift_events(&mut events[1], 2_000);
        assert_eq!(events[1][0].ts, 2_500);
        // Negative offsets saturate instead of wrapping.
        let mut early = [Event { ts: 100, dur: 0, tid: 0, arg: 0, kind: EventKind::Steal }];
        shift_events(&mut early, -500);
        assert_eq!(early[0].ts, 0);

        let mut buf = Vec::new();
        write_chrome_trace(&mut buf, &events).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("\"name\":\"steal_send\""), "{s}");
        assert!(s.contains("\"name\":\"steal_recv\""), "{s}");
        // One flow start and one flow finish, same id.
        assert!(
            s.contains(&format!(
                "\"ph\":\"s\",\"cat\":\"steal\",\"name\":\"steal_flow\",\"id\":{flow}"
            )),
            "{s}"
        );
        assert!(
            s.contains(&format!(
                "\"ph\":\"f\",\"bp\":\"e\",\"cat\":\"steal\",\"name\":\"steal_flow\",\"id\":{flow}"
            )),
            "{s}"
        );
        assert_eq!(s.matches('{').count(), s.matches('}').count());
    }

    #[test]
    fn empty_trace_is_valid_array() {
        let mut buf = Vec::new();
        write_chrome_trace(&mut buf, &[]).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert_eq!(s.split_whitespace().collect::<String>(), "[]");
    }
}
