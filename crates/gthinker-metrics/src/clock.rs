//! Process-wide monotonic clock.
//!
//! Every worker thread of the simulated cluster stamps events and
//! latencies against one shared epoch, so timestamps taken on any
//! thread are directly comparable (and land on one common timeline in
//! a Chrome trace). The epoch is the first call to [`now_nanos`].

#[cfg(feature = "metrics")]
mod imp {
    use std::sync::OnceLock;
    use std::time::Instant;

    static EPOCH: OnceLock<Instant> = OnceLock::new();

    /// Nanoseconds since the process-wide metrics epoch (first call).
    #[inline]
    pub fn now_nanos() -> u64 {
        let epoch = *EPOCH.get_or_init(Instant::now);
        Instant::now().duration_since(epoch).as_nanos() as u64
    }
}

#[cfg(not(feature = "metrics"))]
mod imp {
    /// Metrics disabled: the clock is a constant and folds away.
    #[inline(always)]
    pub fn now_nanos() -> u64 {
        0
    }
}

pub use imp::now_nanos;

#[cfg(all(test, feature = "metrics"))]
mod tests {
    use super::now_nanos;

    #[test]
    fn clock_is_monotone_nondecreasing() {
        let a = now_nanos();
        let b = now_nanos();
        assert!(b >= a);
    }
}
