//! Observability primitives for the G-thinker reproduction.
//!
//! This crate deliberately contains no framework logic — only the
//! measurement building blocks the engine crates wire into their hot
//! paths (see `DESIGN.md` §"Observability"):
//!
//! * [`LogHistogram`] — allocation-free latency histograms with
//!   power-of-2 (HDR-style) buckets over nanoseconds. Recording is one
//!   relaxed atomic add on the bucket plus one on the running sum;
//!   snapshots are plain loads, so per-comper histograms merge
//!   lock-free at snapshot time.
//! * [`EventRing`] — a bounded, overwrite-oldest ring of timestamped
//!   scheduler/cache [`Event`]s (steal, spill, park, GC pass,
//!   quiescence edges…), dumpable as Chrome `trace_event` JSON via
//!   [`trace::write_chrome_trace`] for chrome://tracing / Perfetto.
//! * [`now_nanos`] — a process-wide monotonic clock all workers of the
//!   simulated cluster share, so cross-worker event timestamps are
//!   directly comparable in one trace.
//!
//! Everything hot is gated behind the `metrics` cargo feature (on by
//! default). With the feature disabled the recording types are
//! zero-sized, their methods inline to nothing, and the clock returns
//! 0 — the build is instrumentation-free without a single `cfg` at the
//! call sites.

pub mod clock;
pub mod hist;
pub mod ring;
pub mod trace;

pub use clock::now_nanos;
pub use hist::{HistSnapshot, LogHistogram, NUM_BUCKETS};
pub use ring::{Event, EventKind, EventRing};

/// Synthetic `tid` used for a worker's receiver thread in traces.
pub const TID_RECEIVER: u32 = 1000;
/// Synthetic `tid` used for a worker's GC thread in traces.
pub const TID_GC: u32 = 1001;
/// Synthetic `tid` used for a worker's main (tick/master) thread.
pub const TID_MAIN: u32 = 1002;
/// Responder thread `r` appears as `TID_RESPONDER_BASE + r`.
pub const TID_RESPONDER_BASE: u32 = 1100;

/// Human-readable thread name for a trace `tid` (compers are their
/// index, service threads use the `TID_*` constants).
pub fn tid_name(tid: u32) -> String {
    match tid {
        TID_RECEIVER => "receiver".into(),
        TID_GC => "gc".into(),
        TID_MAIN => "main".into(),
        t if t >= TID_RESPONDER_BASE => format!("responder-{}", t - TID_RESPONDER_BASE),
        t => format!("comper-{t}"),
    }
}

/// The latency histograms one comper maintains. All three record
/// nanoseconds; merging across a worker's compers happens on the
/// snapshots, never on the live atomics.
#[derive(Default)]
pub struct ComperHists {
    /// Thread-CPU time per `compute()` call.
    pub compute: LogHistogram,
    /// End-to-end task latency: spawn (`Task::new`) → final iteration,
    /// including every pull wait and queue/spill residence in between.
    pub e2e: LogHistogram,
    /// Duration of each park on the scheduler event count.
    pub park: LogHistogram,
}

impl ComperHists {
    /// Fresh, empty histograms.
    pub fn new() -> Self {
        Self::default()
    }

    /// Lock-free point-in-time copy.
    pub fn snapshot(&self) -> ComperHistSnapshot {
        ComperHistSnapshot {
            compute: self.compute.snapshot(),
            e2e: self.e2e.snapshot(),
            park: self.park.snapshot(),
        }
    }
}

/// Plain-data snapshot of a [`ComperHists`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ComperHistSnapshot {
    /// Per-`compute()` thread-CPU latency.
    pub compute: HistSnapshot,
    /// Spawn→finish task latency.
    pub e2e: HistSnapshot,
    /// Park durations.
    pub park: HistSnapshot,
}

impl ComperHistSnapshot {
    /// Merges another comper's snapshot into this one (bucket-wise).
    pub fn merge(&mut self, other: &ComperHistSnapshot) {
        self.compute.merge(&other.compute);
        self.e2e.merge(&other.e2e);
        self.park.merge(&other.park);
    }
}

/// Worker-level instrumentation shared by the receiver, responder and
/// GC threads: request round-trip and responder-drain histograms plus
/// the event ring the whole worker appends to.
pub struct WorkerMetrics {
    /// Pull round-trip time, recorded once per `VertexResponse` batch
    /// at the requesting worker's receiver (send → install).
    pub pull_rtt: LogHistogram,
    /// Responder backlog drain time: receiver dispatch → response sent.
    pub responder_drain: LogHistogram,
    /// Bounded scheduler/cache event timeline (empty capacity = off).
    pub ring: EventRing,
}

impl WorkerMetrics {
    /// Creates worker metrics; `trace_capacity` is the event-ring size
    /// (0 disables event recording entirely).
    pub fn new(trace_capacity: usize) -> Self {
        WorkerMetrics {
            pull_rtt: LogHistogram::new(),
            responder_drain: LogHistogram::new(),
            ring: EventRing::new(trace_capacity),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tid_names_are_distinct_and_stable() {
        assert_eq!(tid_name(0), "comper-0");
        assert_eq!(tid_name(7), "comper-7");
        assert_eq!(tid_name(TID_RECEIVER), "receiver");
        assert_eq!(tid_name(TID_GC), "gc");
        assert_eq!(tid_name(TID_MAIN), "main");
        assert_eq!(tid_name(TID_RESPONDER_BASE + 2), "responder-2");
    }

    #[test]
    fn comper_snapshot_merge_adds_counts() {
        let a = ComperHists::new();
        let b = ComperHists::new();
        a.compute.record(100);
        b.compute.record(1_000_000);
        b.e2e.record(5);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        #[cfg(feature = "metrics")]
        {
            assert_eq!(s.compute.count(), 2);
            assert_eq!(s.e2e.count(), 1);
        }
        #[cfg(not(feature = "metrics"))]
        assert_eq!(s.compute.count(), 0);
    }
}
