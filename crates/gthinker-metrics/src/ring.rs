//! Bounded per-worker event timeline.
//!
//! [`EventRing`] is a fixed-capacity, overwrite-oldest buffer of
//! timestamped scheduler/cache [`Event`]s. Writers claim a slot with
//! one `fetch_add` on the head counter and then take that single
//! slot's mutex — writers on different slots never contend, and a full
//! ring silently recycles the oldest entries instead of growing or
//! blocking. Capacity 0 (or the `metrics` feature off) disables
//! recording entirely; call sites guard the timestamp computation with
//! [`EventRing::enabled`] so a disabled ring costs one branch.

/// What happened. Span kinds carry a duration; instant kinds are
/// points in time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A comper ran one `compute()` streak on a task (span).
    Compute,
    /// A comper parked on the scheduler event count (span).
    Park,
    /// A comper stole tasks from a sibling; `arg` = tasks taken.
    Steal,
    /// A comper spilled a batch to `L_file`; `arg` = tasks spilled.
    Spill,
    /// A comper refilled its queue; `arg` = tasks obtained.
    Refill,
    /// A cache GC pass that evicted something; `arg` = evictions (span).
    GcPass,
    /// A responder drained one request batch; `arg` = vertices (span).
    Respond,
    /// The worker's tick thread first observed local quiescence.
    QuiesceEnter,
    /// The worker left quiescence (new work arrived).
    QuiesceExit,
    /// A victim sealed and sent one cluster steal batch; `arg` is the
    /// `(victim, seq)` flow key (victim in the high 32 bits). Paired
    /// with the thief's [`EventKind::StealRecv`] as a Chrome flow
    /// event, so cross-process steals draw as arrows in the viewer.
    StealSend,
    /// A thief applied one cluster steal batch; `arg` is the same
    /// `(victim, seq)` flow key as the matching [`EventKind::StealSend`].
    StealRecv,
}

impl EventKind {
    /// Short stable name used in trace output.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Compute => "compute",
            EventKind::Park => "park",
            EventKind::Steal => "steal",
            EventKind::Spill => "spill",
            EventKind::Refill => "refill",
            EventKind::GcPass => "gc_pass",
            EventKind::Respond => "respond",
            EventKind::QuiesceEnter => "quiesce_enter",
            EventKind::QuiesceExit => "quiesce_exit",
            EventKind::StealSend => "steal_send",
            EventKind::StealRecv => "steal_recv",
        }
    }

    /// Stable one-byte code used by the metrics-report wire encoding.
    pub fn code(self) -> u8 {
        match self {
            EventKind::Compute => 0,
            EventKind::Park => 1,
            EventKind::Steal => 2,
            EventKind::Spill => 3,
            EventKind::Refill => 4,
            EventKind::GcPass => 5,
            EventKind::Respond => 6,
            EventKind::QuiesceEnter => 7,
            EventKind::QuiesceExit => 8,
            EventKind::StealSend => 9,
            EventKind::StealRecv => 10,
        }
    }

    /// Inverse of [`EventKind::code`]; `None` for unknown codes.
    pub fn from_code(code: u8) -> Option<EventKind> {
        Some(match code {
            0 => EventKind::Compute,
            1 => EventKind::Park,
            2 => EventKind::Steal,
            3 => EventKind::Spill,
            4 => EventKind::Refill,
            5 => EventKind::GcPass,
            6 => EventKind::Respond,
            7 => EventKind::QuiesceEnter,
            8 => EventKind::QuiesceExit,
            9 => EventKind::StealSend,
            10 => EventKind::StealRecv,
            _ => return None,
        })
    }

    /// Spans render as Chrome `ph:"X"` complete events; the rest as
    /// `ph:"i"` instants.
    pub fn is_span(self) -> bool {
        matches!(
            self,
            EventKind::Compute | EventKind::Park | EventKind::GcPass | EventKind::Respond
        )
    }

    /// JSON key under which `arg` is reported (None = no payload).
    pub fn arg_key(self) -> Option<&'static str> {
        match self {
            EventKind::Steal | EventKind::Spill | EventKind::Refill => Some("tasks"),
            EventKind::GcPass => Some("evicted"),
            EventKind::Respond => Some("vertices"),
            EventKind::StealSend | EventKind::StealRecv => Some("flow"),
            _ => None,
        }
    }
}

/// One timestamped event. `ts`/`dur` are nanoseconds on the
/// process-wide [`crate::now_nanos`] timeline; `tid` is the comper
/// index or a `TID_*` service-thread constant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Start time (nanoseconds since the metrics epoch).
    pub ts: u64,
    /// Duration for span kinds, 0 for instants.
    pub dur: u64,
    /// Emitting thread (comper index or `TID_*`).
    pub tid: u32,
    /// Kind-specific payload (see [`EventKind::arg_key`]).
    pub arg: u64,
    /// What happened.
    pub kind: EventKind,
}

#[cfg(feature = "metrics")]
mod imp {
    use super::Event;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    /// Fixed-capacity, overwrite-oldest concurrent event buffer.
    pub struct EventRing {
        slots: Box<[Mutex<Option<Event>>]>,
        head: AtomicUsize,
    }

    impl EventRing {
        /// A ring holding the most recent `capacity` events (0 = off).
        pub fn new(capacity: usize) -> Self {
            EventRing {
                slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
                head: AtomicUsize::new(0),
            }
        }

        /// Whether pushes will be kept. Call sites use this to skip
        /// clock reads when tracing is off.
        #[inline]
        pub fn enabled(&self) -> bool {
            !self.slots.is_empty()
        }

        /// Records an event, overwriting the oldest when full.
        #[inline]
        pub fn push(&self, ev: Event) {
            if self.slots.is_empty() {
                return;
            }
            let i = self.head.fetch_add(1, Ordering::Relaxed) % self.slots.len();
            *self.slots[i].lock().unwrap() = Some(ev);
        }

        /// Events currently retained, sorted by start time.
        pub fn snapshot(&self) -> Vec<Event> {
            let mut out: Vec<Event> =
                self.slots.iter().filter_map(|s| *s.lock().unwrap()).collect();
            out.sort_by_key(|e| e.ts);
            out
        }

        /// Events lost to overwrite-oldest recycling: total pushes
        /// beyond capacity. Nonzero means [`EventRing::snapshot`] is a
        /// truncated timeline.
        pub fn dropped(&self) -> u64 {
            let pushes = self.head.load(Ordering::Relaxed);
            pushes.saturating_sub(self.slots.len()) as u64
        }
    }
}

#[cfg(not(feature = "metrics"))]
mod imp {
    use super::Event;

    /// Metrics disabled: zero-sized, never records.
    pub struct EventRing;

    impl EventRing {
        /// No storage when metrics are off.
        pub fn new(_capacity: usize) -> Self {
            EventRing
        }

        /// Always disabled.
        #[inline(always)]
        pub fn enabled(&self) -> bool {
            false
        }

        /// No-op.
        #[inline(always)]
        pub fn push(&self, _ev: Event) {}

        /// Always empty.
        pub fn snapshot(&self) -> Vec<Event> {
            Vec::new()
        }

        /// Nothing recorded, nothing lost.
        pub fn dropped(&self) -> u64 {
            0
        }
    }
}

pub use imp::EventRing;

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64) -> Event {
        Event { ts, dur: 0, tid: 0, arg: 0, kind: EventKind::Steal }
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn ring_overwrites_oldest_and_sorts() {
        let r = EventRing::new(4);
        assert!(r.enabled());
        assert_eq!(r.dropped(), 0);
        for ts in [5u64, 1, 9, 3, 7, 2] {
            r.push(ev(ts));
        }
        let snap = r.snapshot();
        // 6 pushes into 4 slots: the first two (ts 5, 1) were recycled.
        assert_eq!(snap.len(), 4);
        assert_eq!(r.dropped(), 2);
        let ts: Vec<u64> = snap.iter().map(|e| e.ts).collect();
        assert_eq!(ts, vec![2, 3, 7, 9]);
    }

    #[test]
    fn kind_codes_round_trip() {
        for kind in [
            EventKind::Compute,
            EventKind::Park,
            EventKind::Steal,
            EventKind::Spill,
            EventKind::Refill,
            EventKind::GcPass,
            EventKind::Respond,
            EventKind::QuiesceEnter,
            EventKind::QuiesceExit,
            EventKind::StealSend,
            EventKind::StealRecv,
        ] {
            assert_eq!(EventKind::from_code(kind.code()), Some(kind));
        }
        assert_eq!(EventKind::from_code(200), None);
    }

    #[test]
    fn zero_capacity_ring_is_disabled() {
        let r = EventRing::new(0);
        assert!(!r.enabled());
        r.push(ev(1));
        assert!(r.snapshot().is_empty());
    }

    #[test]
    fn span_and_arg_taxonomy() {
        assert!(EventKind::Compute.is_span());
        assert!(EventKind::Park.is_span());
        assert!(!EventKind::Steal.is_span());
        assert!(!EventKind::QuiesceEnter.is_span());
        assert_eq!(EventKind::Steal.arg_key(), Some("tasks"));
        assert_eq!(EventKind::GcPass.arg_key(), Some("evicted"));
        assert_eq!(EventKind::Park.arg_key(), None);
    }
}
