//! Allocation-free log-bucketed latency histograms.
//!
//! Values (nanoseconds) land in 64 power-of-2 buckets: bucket `i`
//! covers `[2^i, 2^(i+1))` with bucket 0 absorbing 0 and 1 ns. That
//! bounds relative quantile error by 2× — plenty for latency
//! distributions spanning nine decimal orders — while keeping
//! `record()` to two relaxed `fetch_add`s on a fixed-size array, no
//! allocation, no locks, no branches beyond the `leading_zeros`
//! intrinsic. Snapshots are plain relaxed loads; concurrent recording
//! during a snapshot can at worst split one in-flight sample between
//! bucket and sum, which quantile math tolerates.

#[cfg(feature = "metrics")]
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-2 buckets (covers the full `u64` range).
pub const NUM_BUCKETS: usize = 64;

/// Bucket index for a value: floor(log2(v)), with 0 mapped to bucket 0.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    (63 - (v | 1).leading_zeros()) as usize
}

/// Inclusive lower bound of bucket `i` in nanoseconds.
#[inline]
pub fn bucket_lo(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << i
    }
}

/// Inclusive upper bound of bucket `i` in nanoseconds.
#[inline]
pub fn bucket_hi(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

/// A concurrent log-bucketed histogram. Multiple threads may `record`
/// while another snapshots; there is no reset (snapshots are
/// cumulative, deltas are the consumer's business).
///
/// ALL mutable state lives behind one `Box`: embedding atomics that
/// are written per sample inline in scheduler structs (`ComperShared`
/// holds three histograms) puts them on the cache lines holding the
/// hot comper fields that sibling threads scan for stealing and
/// quiescence — which measured as tens of percent of wall-clock on
/// tiny-task workloads. Out of line, the histogram is pointer-sized in
/// its owner and the recording thread pays one indirection per record.
#[cfg(feature = "metrics")]
pub struct LogHistogram {
    inner: Box<HistInner>,
}

#[cfg(feature = "metrics")]
struct HistInner {
    buckets: [AtomicU64; NUM_BUCKETS],
    /// Sum of all recorded values (for exact means alongside the
    /// 2×-quantized quantiles).
    sum: AtomicU64,
}

#[cfg(feature = "metrics")]
impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            inner: Box::new(HistInner {
                buckets: [const { AtomicU64::new(0) }; NUM_BUCKETS],
                sum: AtomicU64::new(0),
            }),
        }
    }
}

#[cfg(feature = "metrics")]
impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample. Two relaxed atomic adds; safe from any
    /// thread, never blocks.
    #[inline]
    pub fn record(&self, v: u64) {
        self.inner.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Lock-free point-in-time copy.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut buckets = [0u64; NUM_BUCKETS];
        for (out, b) in buckets.iter_mut().zip(self.inner.buckets.iter()) {
            *out = b.load(Ordering::Relaxed);
        }
        HistSnapshot { buckets, sum: self.inner.sum.load(Ordering::Relaxed) }
    }
}

/// Metrics disabled: zero-sized, every method inlines to nothing.
#[cfg(not(feature = "metrics"))]
#[derive(Default)]
pub struct LogHistogram;

#[cfg(not(feature = "metrics"))]
impl LogHistogram {
    /// An empty histogram (no storage when metrics are off).
    pub fn new() -> Self {
        LogHistogram
    }

    /// No-op.
    #[inline(always)]
    pub fn record(&self, _v: u64) {}

    /// Always-empty snapshot.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot::default()
    }
}

/// Plain-data histogram snapshot: mergeable, serialisable, and the
/// basis for all quantile math. Exists identically with metrics on or
/// off (off just means it is always empty), so downstream report code
/// needs no feature gates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Count per power-of-2 bucket.
    pub buckets: [u64; NUM_BUCKETS],
    /// Sum of recorded values in nanoseconds.
    pub sum: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot { buckets: [0; NUM_BUCKETS], sum: 0 }
    }
}

impl HistSnapshot {
    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Exact mean of recorded values (0 if empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count()).unwrap_or(0)
    }

    /// Bucket-wise merge of another snapshot into this one. Counts are
    /// strictly additive: `merge` never loses samples, which is what
    /// makes per-comper histograms safe to combine at snapshot time.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += *b;
        }
        self.sum += other.sum;
    }

    /// Value at quantile `q` in `[0, 1]`, estimated as the upper edge
    /// of the bucket holding the `ceil(q·n)`-th sample (≤2× the true
    /// value by construction). Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_hi(i);
            }
        }
        bucket_hi(NUM_BUCKETS - 1)
    }

    /// Upper edge of the highest non-empty bucket (0 if empty).
    pub fn max_estimate(&self) -> u64 {
        self.buckets.iter().enumerate().rev().find(|(_, &c)| c > 0).map_or(0, |(i, _)| bucket_hi(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), 63);
    }

    #[test]
    fn bucket_bounds_partition_u64() {
        assert_eq!(bucket_lo(0), 0);
        assert_eq!(bucket_hi(0), 1);
        for i in 1..NUM_BUCKETS {
            assert_eq!(bucket_lo(i), bucket_hi(i - 1) + 1, "bucket {i} contiguous");
        }
        assert_eq!(bucket_hi(63), u64::MAX);
        for i in 0..NUM_BUCKETS {
            assert_eq!(bucket_index(bucket_lo(i)), i);
            assert_eq!(bucket_index(bucket_hi(i)), i);
        }
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn record_and_quantiles() {
        let h = LogHistogram::new();
        // 90 fast samples at ~1µs, 10 slow at ~1ms.
        for _ in 0..90 {
            h.record(1_000);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 100);
        assert_eq!(s.mean(), (90 * 1_000 + 10 * 1_000_000) / 100);
        // p50 lands in the 1µs bucket, p95/p99/max in the 1ms bucket.
        let p50 = s.quantile(0.50);
        let p99 = s.quantile(0.99);
        assert!((1_000..2_048).contains(&p50), "p50 = {p50}");
        assert!((1_000_000..2_097_152).contains(&p99), "p99 = {p99}");
        assert_eq!(s.max_estimate(), p99);
        assert!(s.quantile(1.0) >= s.quantile(0.5));
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn merge_is_lossless() {
        let a = LogHistogram::new();
        let b = LogHistogram::new();
        for v in [0u64, 1, 2, 1_000, 1 << 40] {
            a.record(v);
            b.record(v * 3 + 1);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count(), 10);
        assert_eq!(m.sum, a.snapshot().sum + b.snapshot().sum);
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn concurrent_recording_loses_nothing() {
        use std::sync::Arc;
        let h = Arc::new(LogHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(i * (t + 1));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.snapshot().count(), 40_000);
    }

    #[test]
    fn empty_snapshot_is_zero() {
        let s = HistSnapshot::default();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0);
        assert_eq!(s.quantile(0.99), 0);
        assert_eq!(s.max_estimate(), 0);
    }

    #[cfg(not(feature = "metrics"))]
    #[test]
    fn disabled_histogram_is_zero_sized_and_silent() {
        assert_eq!(std::mem::size_of::<LogHistogram>(), 0);
        let h = LogHistogram::new();
        h.record(123);
        assert_eq!(h.snapshot().count(), 0);
    }
}
