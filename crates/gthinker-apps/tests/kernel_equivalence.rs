//! Differential tests: the word-parallel bitset kernels and the
//! sorted-list kernels must be observationally identical.
//!
//! Every serial miner dispatches on [`LocalGraph::is_dense`], so the
//! same graph snapshotted with `to_local()` (dense) and with
//! `to_local_with_threshold(0)` (forced sparse) drives both code paths;
//! the results must match bit for bit. Sizes straddle a small explicit
//! threshold — below, exactly at, and just above — plus the n = 0 and
//! n = 1 degenerate snapshots, so the dispatch boundary itself is
//! exercised, not just the two extremes.

use gthinker_apps::serial::clique::{max_clique_above, max_clique_brute};
use gthinker_apps::serial::maximal::{count_maximal_cliques, list_maximal_cliques};
use gthinker_apps::serial::triangle::count_triangles_local;
use gthinker_graph::gen;
use gthinker_graph::graph::Graph;
use gthinker_graph::subgraph::{LocalGraph, Subgraph};

/// The straddle threshold: small enough that gnp graphs around it stay
/// cheap, large enough that rows span more than one 64-bit word.
const THRESHOLD: usize = 80;

fn snapshot(g: &Graph) -> Subgraph {
    let mut sg = Subgraph::new();
    for v in g.vertices() {
        sg.add_vertex(v, g.neighbors(v).clone());
    }
    sg
}

/// Both representations of the same graph: `(dense, sparse)`.
fn both(g: &Graph) -> (LocalGraph, LocalGraph) {
    let sg = snapshot(g);
    let dense = sg.to_local_with_threshold(usize::MAX);
    let sparse = sg.to_local_with_threshold(0);
    assert!(dense.is_dense() && !sparse.is_dense());
    (dense, sparse)
}

/// Sizes straddling `THRESHOLD`, plus the degenerate snapshots.
fn straddle_sizes() -> [usize; 5] {
    [0, 1, THRESHOLD - 1, THRESHOLD, THRESHOLD + 1]
}

#[test]
fn dispatch_flips_exactly_at_threshold() {
    for n in straddle_sizes() {
        let sg = snapshot(&gen::gnp(n, 0.3, 7));
        let l = sg.to_local_with_threshold(THRESHOLD);
        assert_eq!(l.is_dense(), n <= THRESHOLD, "n = {n}");
    }
}

#[test]
fn max_clique_agrees_across_kernels() {
    for n in straddle_sizes() {
        for seed in 0..3 {
            let g = gen::gnp(n, 0.4, seed);
            let (dense, sparse) = both(&g);
            for lb in [0usize, 2, 4] {
                let a = max_clique_above(&dense, lb).map(|c| c.len());
                let b = max_clique_above(&sparse, lb).map(|c| c.len());
                assert_eq!(a, b, "n {n} seed {seed} lb {lb}");
            }
        }
    }
}

#[test]
fn max_clique_result_is_a_clique_of_reported_size() {
    // Agreement alone could hide two kernels that are wrong the same
    // way; check the dense kernel's witness against the graph.
    for seed in 0..3 {
        let g = gen::gnp(THRESHOLD, 0.4, seed + 50);
        let (dense, _) = both(&g);
        let c = max_clique_above(&dense, 0).expect("nonempty graph has a clique");
        for (i, &u) in c.iter().enumerate() {
            for &v in &c[i + 1..] {
                assert!(dense.has_edge(u, v), "witness not a clique");
            }
        }
    }
    // Exponential brute force anchors both kernels on a small graph.
    for seed in 0..4 {
        let g = gen::gnp(18, 0.5, seed + 90);
        let (dense, sparse) = both(&g);
        let best = max_clique_brute(&dense).len();
        assert_eq!(max_clique_above(&dense, 0).map(|c| c.len()), Some(best));
        assert_eq!(max_clique_above(&sparse, 0).map(|c| c.len()), Some(best));
    }
}

#[test]
fn triangle_counts_agree_across_kernels() {
    for n in straddle_sizes() {
        for seed in 0..3 {
            let g = gen::gnp(n, 0.3, seed + 10);
            let (dense, sparse) = both(&g);
            assert_eq!(
                count_triangles_local(&dense),
                count_triangles_local(&sparse),
                "n {n} seed {seed}"
            );
        }
    }
}

#[test]
fn maximal_clique_enumeration_agrees_across_kernels() {
    for n in straddle_sizes() {
        // Keep density moderate: maximal-clique output grows quickly.
        let g = gen::gnp(n, 0.2, n as u64 + 3);
        let (dense, sparse) = both(&g);
        assert_eq!(count_maximal_cliques(&dense), count_maximal_cliques(&sparse), "n {n}");
        let mut a = list_maximal_cliques(&dense);
        let mut b = list_maximal_cliques(&sparse);
        a.sort();
        b.sort();
        assert_eq!(a, b, "n {n}");
    }
}

#[test]
fn default_threshold_path_matches_forced_sparse_on_real_sizes() {
    // End-to-end over the public entry points exactly as an app task
    // would call them: `to_local()` (dense at these sizes by default)
    // versus the forced-sparse snapshot.
    for seed in 0..2 {
        let g = gen::barabasi_albert(150, 4, seed);
        let sg = snapshot(&g);
        let default = sg.to_local();
        let sparse = sg.to_local_with_threshold(0);
        assert!(default.is_dense());
        assert_eq!(
            max_clique_above(&default, 0).map(|c| c.len()),
            max_clique_above(&sparse, 0).map(|c| c.len())
        );
        assert_eq!(count_triangles_local(&default), count_triangles_local(&sparse));
        assert_eq!(count_maximal_cliques(&default), count_maximal_cliques(&sparse));
    }
}
