//! Triangle counting with **low-degree task bundling** — the paper's
//! future-work optimization ([38], discussed under Table IV(b)):
//! "tasks spawned from many low-degree vertices do not generate large
//! enough subgraphs to hide IO cost in the computation, but this can
//! be solved by bundling tasks of low-degree vertices into big tasks".
//!
//! Vertices whose `|Γ_>|` is at most `bundle_threshold` are merged —
//! within each spawn batch — into one task that pulls the union of
//! their candidate sets and counts all their triangles together;
//! higher-degree vertices still get individual tasks. Results are
//! identical to [`crate::TriangleApp`]; the task count (and thus
//! per-task overhead and round trips) drops sharply on heavy-tailed
//! graphs.

use crate::triangle::SumAgg;
use gthinker_core::prelude::*;
use gthinker_graph::adj::{AdjList, SharedAdj};
use gthinker_graph::trim::{GreaterIdTrimmer, Trimmer};

/// Triangle counting with bundled low-degree spawns.
pub struct BundledTriangleApp {
    /// Vertices with `|Γ_>(v)| ≤ threshold` are bundled.
    pub bundle_threshold: usize,
}

impl BundledTriangleApp {
    /// Creates the app; `threshold = 0` disables bundling (every task
    /// is individual, equivalent to [`crate::TriangleApp`]).
    pub fn new(bundle_threshold: usize) -> Self {
        BundledTriangleApp { bundle_threshold }
    }
}

/// Context: the bundled anchors with their `Γ_>` sets.
type Anchors = Vec<(VertexId, Vec<VertexId>)>;

impl App for BundledTriangleApp {
    type Context = Anchors;
    type Agg = SumAgg;

    fn make_aggregator(&self) -> SumAgg {
        SumAgg
    }

    fn trimmer(&self) -> Option<Box<dyn Trimmer>> {
        Some(Box::new(GreaterIdTrimmer))
    }

    fn task_spawn(&self, v: VertexId, adj: &AdjList, env: &mut SpawnEnv<'_, Self>) {
        // Individual (non-bundled) spawn path.
        if adj.degree() < 2 {
            return;
        }
        let mut t = Task::new(vec![(v, adj.iter().collect())]);
        for u in adj.iter() {
            t.pull(u);
        }
        env.add_task(t);
    }

    fn task_spawn_batch(
        &self,
        verts: &[(VertexId, SharedAdj, Option<Label>)],
        env: &mut SpawnEnv<'_, Self>,
    ) {
        let mut bundle: Anchors = Vec::new();
        let mut bundle_pulls: Vec<VertexId> = Vec::new();
        for (v, adj, _) in verts {
            if adj.degree() < 2 {
                continue;
            }
            if adj.degree() <= self.bundle_threshold {
                bundle.push((*v, adj.iter().collect()));
                bundle_pulls.extend(adj.iter());
            } else {
                self.task_spawn(*v, adj, env);
            }
        }
        if !bundle.is_empty() {
            let mut t = Task::new(bundle);
            for u in bundle_pulls {
                t.pull(u); // Task::pull deduplicates across anchors
            }
            env.add_task(t);
        }
    }

    fn compute(
        &self,
        task: &mut Task<Anchors>,
        frontier: &Frontier,
        env: &mut ComputeEnv<'_, Self>,
    ) -> bool {
        let mut count = 0u64;
        for (_, gv) in &task.context {
            for u in gv {
                let adj = frontier.get(*u).expect("every anchor neighbor was pulled");
                count += adj.intersection_count(gv) as u64;
            }
        }
        if count > 0 {
            env.aggregate(count);
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::triangle::count_triangles;
    use crate::TriangleApp;
    use gthinker_graph::gen;
    use std::sync::Arc;

    #[test]
    fn bundled_counts_match_unbundled() {
        let g = gen::barabasi_albert(800, 4, 13);
        let expected = count_triangles(&g);
        for threshold in [0usize, 4, 16, 1_000_000] {
            let r = run_job(
                Arc::new(BundledTriangleApp::new(threshold)),
                &g,
                &JobConfig::single_machine(2),
            )
            .unwrap();
            assert_eq!(r.global, expected, "threshold {threshold}");
        }
    }

    #[test]
    fn bundling_reduces_task_count() {
        let g = gen::barabasi_albert(2_000, 3, 5);
        let plain = run_job(Arc::new(TriangleApp), &g, &JobConfig::single_machine(2)).unwrap();
        let bundled =
            run_job(Arc::new(BundledTriangleApp::new(16)), &g, &JobConfig::single_machine(2))
                .unwrap();
        assert_eq!(plain.global, bundled.global);
        assert!(
            bundled.total_tasks() < plain.total_tasks() / 2,
            "bundling should collapse low-degree tasks: {} vs {}",
            bundled.total_tasks(),
            plain.total_tasks()
        );
    }

    #[test]
    fn distributed_bundled_matches() {
        let g = gen::barabasi_albert(600, 5, 21);
        let expected = count_triangles(&g);
        let r =
            run_job(Arc::new(BundledTriangleApp::new(8)), &g, &JobConfig::cluster(3, 2)).unwrap();
        assert_eq!(r.global, expected);
    }
}
