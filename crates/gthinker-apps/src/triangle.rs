//! Distributed triangle counting (TC).
//!
//! With adjacency lists trimmed to `Γ_>`, every triangle `v < u < w`
//! is counted exactly once by the task spawned from its minimum vertex
//! `v`: the task pulls `Γ_>(u)` for every `u ∈ Γ_>(v)` and sums
//! `|Γ_>(v) ∩ Γ_>(u)|`. Counts stream into a summing aggregator whose
//! periodically broadcast global value gives the "current total count
//! for reporting" the paper describes.

use gthinker_core::prelude::*;
use gthinker_graph::adj::AdjList;
use gthinker_graph::trim::{GreaterIdTrimmer, Trimmer};

/// Sums `u64` contributions.
pub struct SumAgg;

impl Aggregator for SumAgg {
    type Item = u64;
    type Partial = u64;
    type Global = u64;
    fn init_partial(&self) -> u64 {
        0
    }
    fn init_global(&self) -> u64 {
        0
    }
    fn aggregate(&self, p: &mut u64, item: u64) {
        *p += item;
    }
    fn merge(&self, g: &mut u64, p: &u64) {
        *g += *p;
    }
}

/// The triangle counting application.
#[derive(Default)]
pub struct TriangleApp;

impl App for TriangleApp {
    /// Empty for a root task (its candidate set *is* the pulled set);
    /// a split chunk instead carries the root's full `Γ_>(v)` here and
    /// pulls only its own slice of rows.
    type Context = Vec<VertexId>;
    type Agg = SumAgg;

    fn make_aggregator(&self) -> SumAgg {
        SumAgg
    }

    fn trimmer(&self) -> Option<Box<dyn Trimmer>> {
        Some(Box::new(GreaterIdTrimmer))
    }

    fn task_spawn(&self, _v: VertexId, adj: &AdjList, env: &mut SpawnEnv<'_, Self>) {
        if adj.degree() < 2 {
            return; // a triangle needs two larger neighbors
        }
        let mut t = Task::new(Vec::new());
        for u in adj.iter() {
            t.pull(u);
        }
        env.add_task(t);
    }

    fn compute(
        &self,
        task: &mut Task<Vec<VertexId>>,
        frontier: &Frontier,
        env: &mut ComputeEnv<'_, Self>,
    ) -> bool {
        let root = task.context.is_empty();
        // Γ_>(v): for a root task it is exactly the pulled set, in
        // ascending pull order; a chunk re-reads it from its context.
        let gv: Vec<VertexId> =
            if root { frontier.vertex_ids().collect() } else { task.context.clone() };
        debug_assert!(!root || gv.windows(2).all(|w| w[0] < w[1]));
        // Straggler splitting: under a compute budget a high-degree
        // root keeps only its first `budget` adjacency rows and spins
        // the rest off as fresh subtasks of `budget` rows each — every
        // chunk re-pulls its own rows, so a stolen chunk resolves them
        // wherever it lands.
        let mut take = gv.len();
        if root {
            if let Some(budget) = env.compute_budget() {
                let budget = (budget as usize).max(1);
                if gv.len() > budget {
                    let chunks = gv[budget..].chunks(budget);
                    let mut spawned = 0u64;
                    for chunk in chunks {
                        let mut sub = Task::new(gv.clone());
                        for &u in chunk {
                            sub.pull(u);
                        }
                        env.add_task(sub);
                        spawned += 1;
                    }
                    env.note_split(spawned);
                    take = budget;
                }
            }
        }
        let mut count = 0u64;
        for (_, adj) in frontier.iter().take(take) {
            count += adj.intersection_count(&gv) as u64;
        }
        if count > 0 {
            env.aggregate(count);
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::triangle::count_triangles;
    use gthinker_graph::gen;
    use std::sync::Arc;

    fn run(g: &gthinker_graph::graph::Graph, cfg: &JobConfig) -> u64 {
        run_job(Arc::new(TriangleApp), g, cfg).unwrap().global
    }

    #[test]
    fn matches_serial_on_random_graphs() {
        for seed in 0..4 {
            let g = gen::gnp(120, 0.08, seed);
            assert_eq!(run(&g, &JobConfig::single_machine(2)), count_triangles(&g));
        }
    }

    #[test]
    fn distributed_matches_serial() {
        let g = gen::barabasi_albert(600, 5, 3);
        let expected = count_triangles(&g);
        assert_eq!(run(&g, &JobConfig::cluster(4, 2)), expected);
    }

    #[test]
    fn compute_budget_chunking_gives_same_count() {
        let g = gen::barabasi_albert(300, 5, 7);
        let expected = count_triangles(&g);
        for budget in [1u64, 2, 7] {
            let mut cfg = JobConfig::single_machine(2);
            cfg.compute_budget = Some(budget);
            let r = run_job(Arc::new(TriangleApp), &g, &cfg).unwrap();
            assert_eq!(r.global, expected, "budget {budget}");
            let splits: u64 = r.workers.iter().map(|w| w.split_tasks).sum();
            assert!(splits > 0, "budget {budget} should have chunked some task");
        }
    }

    #[test]
    fn triangle_free_graphs_count_zero() {
        assert_eq!(run(&gen::cycle(10), &JobConfig::single_machine(1)), 0);
        assert_eq!(run(&gen::star(20), &JobConfig::single_machine(1)), 0);
    }

    #[test]
    fn complete_graph_count() {
        // K7 has C(7,3) = 35 triangles.
        assert_eq!(run(&gen::complete(7), &JobConfig::single_machine(2)), 35);
    }
}
