//! Distributed γ-quasi-clique mining (QC).
//!
//! This is the motivating example of §III: a task spawned from `v`
//! pulls `Γ(v)` in iteration 1 and the second-hop neighborhood in
//! iteration 2 — for γ ≥ 0.5 any two members of a γ-quasi-clique are
//! within 2 hops ([17]) — then mines the 2-hop ego network serially.
//! Deduplication follows the set-enumeration rule: a quasi-clique is
//! counted by the task of its minimum vertex.
//!
//! No trimmer is used: unlike cliques, quasi-clique members need not be
//! adjacent to the anchor, and 2-hop paths may pass through vertices
//! with *smaller* IDs, so full adjacency lists are required.

use crate::serial::quasi::{count_quasi_cliques_state, quasi_candidates};
use crate::triangle::SumAgg;
use gthinker_core::prelude::*;
use gthinker_graph::adj::AdjList;
use gthinker_graph::subgraph::LocalGraph;

/// The quasi-clique counting application.
pub struct QuasiCliqueApp {
    /// Density threshold γ ∈ [0.5, 1].
    pub gamma: f64,
    /// Smallest quasi-clique size to count.
    pub min_size: usize,
    /// Largest quasi-clique size to count (bounds the enumeration).
    pub max_size: usize,
}

impl QuasiCliqueApp {
    /// Creates the app; `gamma` must be in `[0.5, 1]` for the 2-hop
    /// candidate rule to be sound.
    pub fn new(gamma: f64, min_size: usize, max_size: usize) -> Self {
        assert!((0.5..=1.0).contains(&gamma), "2-hop rule requires γ ≥ 0.5");
        assert!(min_size >= 2 && max_size >= min_size);
        QuasiCliqueApp { gamma, min_size, max_size }
    }
}

/// Maps global IDs to local indices (local index order equals global ID
/// order, so the sorted global-ID table supports binary search).
fn to_locals(local: &LocalGraph, ids: &[VertexId]) -> Vec<u32> {
    let globals: Vec<VertexId> =
        (0..local.num_vertices() as u32).map(|i| local.global_id(i)).collect();
    debug_assert!(globals.windows(2).all(|w| w[0] < w[1]));
    ids.iter()
        .map(|v| globals.binary_search(v).expect("vertex is in the subgraph") as u32)
        .collect()
}

impl App for QuasiCliqueApp {
    /// `(hop, s, cand)`: the hop counter (1 after the first pull round,
    /// 2 after the second), plus — for a subtask split off a straggler —
    /// the set-enumeration node `(S, cand)` as global IDs (`s` empty
    /// for a root task).
    type Context = (u64, Vec<VertexId>, Vec<VertexId>);
    type Agg = SumAgg;

    fn make_aggregator(&self) -> SumAgg {
        SumAgg
    }

    fn task_spawn(&self, v: VertexId, adj: &AdjList, env: &mut SpawnEnv<'_, Self>) {
        if adj.is_empty() {
            return; // min_size ≥ 2 needs at least one neighbor
        }
        let mut t = Task::new((0u64, Vec::new(), Vec::new()));
        t.subgraph.add_vertex(v, adj.clone());
        for u in adj.iter() {
            t.pull(u);
        }
        env.add_task(t);
    }

    fn compute(
        &self,
        task: &mut Task<(u64, Vec<VertexId>, Vec<VertexId>)>,
        frontier: &Frontier,
        env: &mut ComputeEnv<'_, Self>,
    ) -> bool {
        if !task.context.1.is_empty() {
            // A split-off enumeration node: the 2-hop ego net is
            // already materialized, the context pins (S, cand).
            let local = task.subgraph.to_local();
            let s = to_locals(&local, &task.context.1);
            let cand = to_locals(&local, &task.context.2);
            let count = count_quasi_cliques_state(
                &local,
                &s,
                &cand,
                self.gamma,
                self.min_size,
                self.max_size,
            );
            if count > 0 {
                env.aggregate(count);
            }
            return false;
        }
        task.context.0 += 1;
        let hop = task.context.0;
        let mut second_hop: Vec<VertexId> = Vec::new();
        for (u, adj) in frontier.iter() {
            if task.subgraph.add_vertex(u, (**adj).clone()) && hop == 1 {
                for w in adj.iter() {
                    if !task.subgraph.contains(w) {
                        second_hop.push(w);
                    }
                }
            }
        }
        if hop == 1 && !second_hop.is_empty() {
            for w in second_hop {
                task.pull(w);
            }
            return true;
        }
        // 2-hop ego network complete.
        let local = task.subgraph.to_local();
        let anchor_global = *task.subgraph.vertex_ids().first().expect("anchor present");
        let anchor = (0..local.num_vertices() as u32)
            .find(|&i| local.global_id(i) == anchor_global)
            .expect("anchor is in its own ego net");
        let cand = quasi_candidates(&local, anchor);
        // Straggler splitting: when the anchor's first-level branching
        // exceeds the compute budget, ship each branch — enumeration
        // node `(S = {anchor, cand[i]}, cand[i+1..])` — as its own
        // task. The root node itself contributes nothing (|S| = 1 <
        // min_size), so the branches partition the anchored count.
        if env.compute_budget().is_some_and(|b| cand.len() as u64 > b) {
            for i in 0..cand.len() {
                let mut sub = Task::new((
                    2u64,
                    local.to_global(&[anchor, cand[i]]),
                    local.to_global(&cand[i + 1..]),
                ));
                sub.subgraph = task.subgraph.clone();
                env.add_task(sub);
            }
            env.note_split(cand.len() as u64);
            return false;
        }
        let count = count_quasi_cliques_state(
            &local,
            &[anchor],
            &cand,
            self.gamma,
            self.min_size,
            self.max_size,
        );
        if count > 0 {
            env.aggregate(count);
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::quasi::count_quasi_cliques_brute;
    use gthinker_graph::gen;
    use gthinker_graph::graph::Graph;
    use gthinker_graph::subgraph::Subgraph;
    use std::sync::Arc;

    fn to_local(g: &Graph) -> gthinker_graph::subgraph::LocalGraph {
        let mut sg = Subgraph::new();
        for v in g.vertices() {
            sg.add_vertex(v, g.neighbors(v).clone());
        }
        sg.to_local()
    }

    fn run(g: &Graph, gamma: f64, min: usize, max: usize, cfg: &JobConfig) -> u64 {
        run_job(Arc::new(QuasiCliqueApp::new(gamma, min, max)), g, cfg).unwrap().global
    }

    #[test]
    fn matches_brute_force_on_small_graphs() {
        for seed in 0..5 {
            let g = gen::gnp(12, 0.35, seed);
            let expected = count_quasi_cliques_brute(&to_local(&g), 0.6, 3, 5);
            let got = run(&g, 0.6, 3, 5, &JobConfig::single_machine(2));
            assert_eq!(got, expected, "seed {seed}");
        }
    }

    #[test]
    fn distributed_matches_single_machine() {
        let g = gen::gnp(60, 0.12, 44);
        let single = run(&g, 0.5, 3, 4, &JobConfig::single_machine(2));
        let multi = run(&g, 0.5, 3, 4, &JobConfig::cluster(3, 2));
        assert_eq!(single, multi);
    }

    #[test]
    fn compute_budget_split_matches_unbudgeted_run() {
        for seed in 0..3 {
            let g = gen::gnp(30, 0.2, seed + 100);
            let expected = run(&g, 0.6, 3, 5, &JobConfig::single_machine(2));
            let mut cfg = JobConfig::single_machine(2);
            cfg.compute_budget = Some(2);
            let r = run_job(Arc::new(QuasiCliqueApp::new(0.6, 3, 5)), &g, &cfg).unwrap();
            assert_eq!(r.global, expected, "seed {seed}");
            let splits: u64 = r.workers.iter().map(|w| w.split_tasks).sum();
            assert!(splits > 0, "seed {seed}: budget should have split some node");
        }
    }

    #[test]
    fn full_cliques_counted_at_gamma_one() {
        // K4: quasi-cliques at γ=1 are exactly its cliques of each size:
        // C(4,3)=4 triangles + 1 four-clique for sizes 3..4.
        let g = gen::complete(4);
        assert_eq!(run(&g, 1.0, 3, 4, &JobConfig::single_machine(1)), 5);
    }

    #[test]
    fn edgeless_graph_counts_zero() {
        let g = Graph::with_vertices(6);
        assert_eq!(run(&g, 0.6, 2, 4, &JobConfig::single_machine(1)), 0);
    }
}
