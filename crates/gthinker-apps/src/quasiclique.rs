//! Distributed γ-quasi-clique mining (QC).
//!
//! This is the motivating example of §III: a task spawned from `v`
//! pulls `Γ(v)` in iteration 1 and the second-hop neighborhood in
//! iteration 2 — for γ ≥ 0.5 any two members of a γ-quasi-clique are
//! within 2 hops ([17]) — then mines the 2-hop ego network serially.
//! Deduplication follows the set-enumeration rule: a quasi-clique is
//! counted by the task of its minimum vertex.
//!
//! No trimmer is used: unlike cliques, quasi-clique members need not be
//! adjacent to the anchor, and 2-hop paths may pass through vertices
//! with *smaller* IDs, so full adjacency lists are required.

use crate::serial::quasi::count_quasi_cliques_from;
use crate::triangle::SumAgg;
use gthinker_core::prelude::*;
use gthinker_graph::adj::AdjList;

/// The quasi-clique counting application.
pub struct QuasiCliqueApp {
    /// Density threshold γ ∈ [0.5, 1].
    pub gamma: f64,
    /// Smallest quasi-clique size to count.
    pub min_size: usize,
    /// Largest quasi-clique size to count (bounds the enumeration).
    pub max_size: usize,
}

impl QuasiCliqueApp {
    /// Creates the app; `gamma` must be in `[0.5, 1]` for the 2-hop
    /// candidate rule to be sound.
    pub fn new(gamma: f64, min_size: usize, max_size: usize) -> Self {
        assert!((0.5..=1.0).contains(&gamma), "2-hop rule requires γ ≥ 0.5");
        assert!(min_size >= 2 && max_size >= min_size);
        QuasiCliqueApp { gamma, min_size, max_size }
    }
}

impl App for QuasiCliqueApp {
    /// Hop counter (1 after the first pull round, 2 after the second).
    type Context = u64;
    type Agg = SumAgg;

    fn make_aggregator(&self) -> SumAgg {
        SumAgg
    }

    fn task_spawn(&self, v: VertexId, adj: &AdjList, env: &mut SpawnEnv<'_, Self>) {
        if adj.is_empty() {
            return; // min_size ≥ 2 needs at least one neighbor
        }
        let mut t = Task::new(0u64);
        t.subgraph.add_vertex(v, adj.clone());
        for u in adj.iter() {
            t.pull(u);
        }
        env.add_task(t);
    }

    fn compute(
        &self,
        task: &mut Task<u64>,
        frontier: &Frontier,
        env: &mut ComputeEnv<'_, Self>,
    ) -> bool {
        task.context += 1;
        let hop = task.context;
        let mut second_hop: Vec<VertexId> = Vec::new();
        for (u, adj) in frontier.iter() {
            if task.subgraph.add_vertex(u, (**adj).clone()) && hop == 1 {
                for w in adj.iter() {
                    if !task.subgraph.contains(w) {
                        second_hop.push(w);
                    }
                }
            }
        }
        if hop == 1 && !second_hop.is_empty() {
            for w in second_hop {
                task.pull(w);
            }
            return true;
        }
        // 2-hop ego network complete.
        let local = task.subgraph.to_local();
        let anchor_global = *task.subgraph.vertex_ids().first().expect("anchor present");
        let anchor = (0..local.num_vertices() as u32)
            .find(|&i| local.global_id(i) == anchor_global)
            .expect("anchor is in its own ego net");
        let count =
            count_quasi_cliques_from(&local, anchor, self.gamma, self.min_size, self.max_size);
        if count > 0 {
            env.aggregate(count);
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::quasi::count_quasi_cliques_brute;
    use gthinker_graph::gen;
    use gthinker_graph::graph::Graph;
    use gthinker_graph::subgraph::Subgraph;
    use std::sync::Arc;

    fn to_local(g: &Graph) -> gthinker_graph::subgraph::LocalGraph {
        let mut sg = Subgraph::new();
        for v in g.vertices() {
            sg.add_vertex(v, g.neighbors(v).clone());
        }
        sg.to_local()
    }

    fn run(g: &Graph, gamma: f64, min: usize, max: usize, cfg: &JobConfig) -> u64 {
        run_job(Arc::new(QuasiCliqueApp::new(gamma, min, max)), g, cfg).unwrap().global
    }

    #[test]
    fn matches_brute_force_on_small_graphs() {
        for seed in 0..5 {
            let g = gen::gnp(12, 0.35, seed);
            let expected = count_quasi_cliques_brute(&to_local(&g), 0.6, 3, 5);
            let got = run(&g, 0.6, 3, 5, &JobConfig::single_machine(2));
            assert_eq!(got, expected, "seed {seed}");
        }
    }

    #[test]
    fn distributed_matches_single_machine() {
        let g = gen::gnp(60, 0.12, 44);
        let single = run(&g, 0.5, 3, 4, &JobConfig::single_machine(2));
        let multi = run(&g, 0.5, 3, 4, &JobConfig::cluster(3, 2));
        assert_eq!(single, multi);
    }

    #[test]
    fn full_cliques_counted_at_gamma_one() {
        // K4: quasi-cliques at γ=1 are exactly its cliques of each size:
        // C(4,3)=4 triangles + 1 four-clique for sizes 3..4.
        let g = gen::complete(4);
        assert_eq!(run(&g, 1.0, 3, 4, &JobConfig::single_machine(1)), 5);
    }

    #[test]
    fn edgeless_graph_counts_zero() {
        let g = Graph::with_vertices(6);
        assert_eq!(run(&g, 0.6, 2, 4, &JobConfig::single_machine(1)), 0);
    }
}
