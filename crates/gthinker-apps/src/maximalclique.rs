//! Distributed maximal clique enumeration (the G-thinker repository's
//! other clique workload).
//!
//! Deduplication follows degeneracy-style Bron–Kerbosch: the task
//! spawned from `v` enumerates exactly the maximal cliques whose
//! **minimum vertex** is `v`, by seeding `R = {v}`, `P = Γ_>(v)`,
//! `X = Γ_<(v)`. That requires the edges among *all* of `v`'s
//! neighbors, so the task pulls `Γ(u)` for every `u ∈ Γ(v)` (untrimmed
//! lists — `X` needs the smaller neighbors too) and builds the full
//! ego network before running BK serially.

use crate::serial::maximal::bron_kerbosch;
use crate::triangle::SumAgg;
use gthinker_core::prelude::*;
use gthinker_graph::adj::AdjList;
use gthinker_graph::subgraph::LocalGraph;

/// Counts maximal cliques, partitioned by minimum vertex.
#[derive(Default)]
pub struct MaximalCliqueApp;

/// Maps global IDs to local indices (local index order equals global ID
/// order, so the sorted global-ID table supports binary search).
fn to_locals(local: &LocalGraph, ids: &[VertexId]) -> Vec<u32> {
    let globals: Vec<VertexId> =
        (0..local.num_vertices() as u32).map(|i| local.global_id(i)).collect();
    debug_assert!(globals.windows(2).all(|w| w[0] < w[1]));
    ids.iter()
        .map(|v| globals.binary_search(v).expect("vertex is in the subgraph") as u32)
        .collect()
}

impl App for MaximalCliqueApp {
    /// `(R, P, X)` as global IDs for a Bron–Kerbosch node carved out of
    /// a straggler task; all-empty for a root task (seeded from the
    /// anchor's ego net).
    type Context = (Vec<VertexId>, Vec<VertexId>, Vec<VertexId>);
    type Agg = SumAgg;

    fn make_aggregator(&self) -> SumAgg {
        SumAgg
    }

    fn task_spawn(&self, v: VertexId, adj: &AdjList, env: &mut SpawnEnv<'_, Self>) {
        if adj.is_empty() {
            // An isolated vertex is itself a maximal clique.
            env.aggregate(1);
            return;
        }
        let mut t = Task::new((Vec::new(), Vec::new(), Vec::new()));
        t.subgraph.add_vertex(v, adj.clone());
        for u in adj.iter() {
            t.pull(u);
        }
        env.add_task(t);
    }

    fn compute(
        &self,
        task: &mut Task<(Vec<VertexId>, Vec<VertexId>, Vec<VertexId>)>,
        frontier: &Frontier,
        env: &mut ComputeEnv<'_, Self>,
    ) -> bool {
        if !task.context.0.is_empty() {
            // A split-off BK node: the ego net is already materialized
            // in the subgraph, the context pins the node's R/P/X.
            let local = task.subgraph.to_local();
            let (r, p, x) = &task.context;
            let mut r = to_locals(&local, r);
            let p = to_locals(&local, p);
            let x = to_locals(&local, x);
            let mut count = 0u64;
            bron_kerbosch(&local, &mut r, p, x, &mut |_| count += 1);
            if count > 0 {
                env.aggregate(count);
            }
            return false;
        }
        // Build the closed neighborhood ego net: keep each neighbor's
        // adjacency filtered to the ego-net members (edges to vertices
        // outside N[v] are irrelevant to cliques containing v).
        let anchor = *task.subgraph.vertex_ids().first().expect("anchor present");
        let mut members: Vec<VertexId> = frontier.vertex_ids().collect();
        members.push(anchor);
        members.sort_unstable();
        for (u, adj) in frontier.iter() {
            task.subgraph.add_vertex(u, AdjList::from_sorted(adj.intersect_slice(&members)));
        }
        let local = task.subgraph.to_local();
        let anchor_local = (0..local.num_vertices() as u32)
            .find(|&i| local.global_id(i) == anchor)
            .expect("anchor in its ego net");
        // P = neighbors with larger global ID; X = smaller. Local
        // index order equals global ID order.
        let mut p = Vec::new();
        let mut x = Vec::new();
        for &u in local.neighbors(anchor_local) {
            if u > anchor_local {
                p.push(u);
            } else {
                x.push(u);
            }
        }
        // Straggler splitting: when the top-level branch set exceeds
        // the compute budget, expand the root BK node once *without*
        // pivoting (every P vertex branches) and ship each child node
        // as its own task. P/X evolve across children exactly as in the
        // serial recursion, so each maximal clique is still reported by
        // exactly one child; the root itself reports nothing because P
        // is non-empty.
        if env.compute_budget().is_some_and(|b| p.len() as u64 > b) {
            let mut p_work = p.clone();
            let mut x_work = x;
            for &v in &p {
                let np: Vec<u32> =
                    p_work.iter().copied().filter(|&u| local.has_edge(v, u)).collect();
                let nx: Vec<u32> =
                    x_work.iter().copied().filter(|&u| local.has_edge(v, u)).collect();
                let mut sub = Task::new((
                    local.to_global(&[anchor_local, v]),
                    local.to_global(&np),
                    local.to_global(&nx),
                ));
                sub.subgraph = task.subgraph.clone();
                env.add_task(sub);
                p_work.retain(|&u| u != v);
                x_work.push(v);
            }
            env.note_split(p.len() as u64);
            return false;
        }
        let mut count = 0u64;
        let mut r = vec![anchor_local];
        bron_kerbosch(&local, &mut r, p, x, &mut |_| count += 1);
        if count > 0 {
            env.aggregate(count);
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::maximal::count_maximal_cliques;
    use gthinker_graph::gen;
    use gthinker_graph::graph::Graph;
    use gthinker_graph::subgraph::Subgraph;
    use std::sync::Arc;

    fn serial_count(g: &Graph) -> u64 {
        let mut sg = Subgraph::new();
        for v in g.vertices() {
            sg.add_vertex(v, g.neighbors(v).clone());
        }
        count_maximal_cliques(&sg.to_local())
    }

    fn run(g: &Graph, cfg: &JobConfig) -> u64 {
        run_job(Arc::new(MaximalCliqueApp), g, cfg).unwrap().global
    }

    #[test]
    fn matches_serial_on_random_graphs() {
        for seed in 0..5 {
            let g = gen::gnp(40, 0.2, seed);
            assert_eq!(run(&g, &JobConfig::single_machine(2)), serial_count(&g), "seed {seed}");
        }
    }

    #[test]
    fn distributed_matches_serial() {
        let g = gen::barabasi_albert(300, 4, 6);
        assert_eq!(run(&g, &JobConfig::cluster(3, 2)), serial_count(&g));
    }

    #[test]
    fn compute_budget_split_matches_serial() {
        for seed in 0..3 {
            let g = gen::gnp(40, 0.25, seed);
            let expected = serial_count(&g);
            let mut cfg = JobConfig::single_machine(2);
            cfg.compute_budget = Some(2);
            let r = run_job(Arc::new(MaximalCliqueApp), &g, &cfg).unwrap();
            assert_eq!(r.global, expected, "seed {seed}");
            let splits: u64 = r.workers.iter().map(|w| w.split_tasks).sum();
            assert!(splits > 0, "seed {seed}: budget should have split some BK root");
        }
    }

    #[test]
    fn known_counts() {
        assert_eq!(run(&gen::complete(6), &JobConfig::single_machine(1)), 1);
        assert_eq!(run(&gen::cycle(6), &JobConfig::single_machine(1)), 6);
        assert_eq!(run(&Graph::with_vertices(4), &JobConfig::single_machine(1)), 4);
    }
}
