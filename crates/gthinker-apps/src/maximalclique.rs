//! Distributed maximal clique enumeration (the G-thinker repository's
//! other clique workload).
//!
//! Deduplication follows degeneracy-style Bron–Kerbosch: the task
//! spawned from `v` enumerates exactly the maximal cliques whose
//! **minimum vertex** is `v`, by seeding `R = {v}`, `P = Γ_>(v)`,
//! `X = Γ_<(v)`. That requires the edges among *all* of `v`'s
//! neighbors, so the task pulls `Γ(u)` for every `u ∈ Γ(v)` (untrimmed
//! lists — `X` needs the smaller neighbors too) and builds the full
//! ego network before running BK serially.

use crate::serial::maximal::bron_kerbosch;
use crate::triangle::SumAgg;
use gthinker_core::prelude::*;
use gthinker_graph::adj::AdjList;

/// Counts maximal cliques, partitioned by minimum vertex.
#[derive(Default)]
pub struct MaximalCliqueApp;

impl App for MaximalCliqueApp {
    type Context = ();
    type Agg = SumAgg;

    fn make_aggregator(&self) -> SumAgg {
        SumAgg
    }

    fn task_spawn(&self, v: VertexId, adj: &AdjList, env: &mut SpawnEnv<'_, Self>) {
        if adj.is_empty() {
            // An isolated vertex is itself a maximal clique.
            env.aggregate(1);
            return;
        }
        let mut t = Task::new(());
        t.subgraph.add_vertex(v, adj.clone());
        for u in adj.iter() {
            t.pull(u);
        }
        env.add_task(t);
    }

    fn compute(
        &self,
        task: &mut Task<()>,
        frontier: &Frontier,
        env: &mut ComputeEnv<'_, Self>,
    ) -> bool {
        // Build the closed neighborhood ego net: keep each neighbor's
        // adjacency filtered to the ego-net members (edges to vertices
        // outside N[v] are irrelevant to cliques containing v).
        let anchor = *task.subgraph.vertex_ids().first().expect("anchor present");
        let mut members: Vec<VertexId> = frontier.vertex_ids().collect();
        members.push(anchor);
        members.sort_unstable();
        for (u, adj) in frontier.iter() {
            task.subgraph.add_vertex(u, AdjList::from_sorted(adj.intersect_slice(&members)));
        }
        let local = task.subgraph.to_local();
        let anchor_local = (0..local.num_vertices() as u32)
            .find(|&i| local.global_id(i) == anchor)
            .expect("anchor in its ego net");
        // P = neighbors with larger global ID; X = smaller. Local
        // index order equals global ID order.
        let mut p = Vec::new();
        let mut x = Vec::new();
        for &u in local.neighbors(anchor_local) {
            if u > anchor_local {
                p.push(u);
            } else {
                x.push(u);
            }
        }
        let mut count = 0u64;
        let mut r = vec![anchor_local];
        bron_kerbosch(&local, &mut r, p, x, &mut |_| count += 1);
        if count > 0 {
            env.aggregate(count);
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::maximal::count_maximal_cliques;
    use gthinker_graph::gen;
    use gthinker_graph::graph::Graph;
    use gthinker_graph::subgraph::Subgraph;
    use std::sync::Arc;

    fn serial_count(g: &Graph) -> u64 {
        let mut sg = Subgraph::new();
        for v in g.vertices() {
            sg.add_vertex(v, g.neighbors(v).clone());
        }
        count_maximal_cliques(&sg.to_local())
    }

    fn run(g: &Graph, cfg: &JobConfig) -> u64 {
        run_job(Arc::new(MaximalCliqueApp), g, cfg).unwrap().global
    }

    #[test]
    fn matches_serial_on_random_graphs() {
        for seed in 0..5 {
            let g = gen::gnp(40, 0.2, seed);
            assert_eq!(run(&g, &JobConfig::single_machine(2)), serial_count(&g), "seed {seed}");
        }
    }

    #[test]
    fn distributed_matches_serial() {
        let g = gen::barabasi_albert(300, 4, 6);
        assert_eq!(run(&g, &JobConfig::cluster(3, 2)), serial_count(&g));
    }

    #[test]
    fn known_counts() {
        assert_eq!(run(&gen::complete(6), &JobConfig::single_machine(1)), 1);
        assert_eq!(run(&gen::cycle(6), &JobConfig::single_machine(1)), 6);
        assert_eq!(run(&Graph::with_vertices(4), &JobConfig::single_machine(1)), 4);
    }
}
