//! Distributed connected k-plex counting — an extension workload from
//! the T-thinker line the paper opens (§VII).
//!
//! Structure mirrors the quasi-clique app: no trimming (2-hop paths
//! may pass through smaller IDs), two pull rounds to build the anchor's
//! 2-hop ego network (sound because connected k-plexes of size
//! ≥ 2k − 1 have diameter ≤ 2), then the serial hereditary enumerator.

use crate::serial::kplex::count_kplexes_from;
use crate::triangle::SumAgg;
use gthinker_core::prelude::*;

/// The k-plex counting application.
pub struct KPlexApp {
    /// Relaxation parameter k (1 = cliques).
    pub k: usize,
    /// Smallest k-plex size to count (must be ≥ 2k − 1).
    pub min_size: usize,
    /// Largest k-plex size to count.
    pub max_size: usize,
}

impl KPlexApp {
    /// Creates the app, checking the diameter-2 soundness floor.
    pub fn new(k: usize, min_size: usize, max_size: usize) -> Self {
        assert!(k >= 1);
        assert!(min_size >= 2 * k - 1 && min_size >= 2, "need min_size ≥ 2k−1");
        assert!(max_size >= min_size);
        KPlexApp { k, min_size, max_size }
    }
}

impl App for KPlexApp {
    type Context = u64; // hop counter
    type Agg = SumAgg;

    fn make_aggregator(&self) -> SumAgg {
        SumAgg
    }

    fn task_spawn(&self, v: VertexId, adj: &AdjList, env: &mut SpawnEnv<'_, Self>) {
        if adj.is_empty() {
            return; // connected k-plexes of size ≥ 2 need a neighbor
        }
        let mut t = Task::new(0u64);
        t.subgraph.add_vertex(v, adj.clone());
        for u in adj.iter() {
            t.pull(u);
        }
        env.add_task(t);
    }

    fn compute(
        &self,
        task: &mut Task<u64>,
        frontier: &Frontier,
        env: &mut ComputeEnv<'_, Self>,
    ) -> bool {
        task.context += 1;
        let hop = task.context;
        let mut second_hop: Vec<VertexId> = Vec::new();
        for (u, adj) in frontier.iter() {
            if task.subgraph.add_vertex(u, (**adj).clone()) && hop == 1 {
                for w in adj.iter() {
                    if !task.subgraph.contains(w) {
                        second_hop.push(w);
                    }
                }
            }
        }
        if hop == 1 && !second_hop.is_empty() {
            for w in second_hop {
                task.pull(w);
            }
            return true;
        }
        let local = task.subgraph.to_local();
        let anchor_global = *task.subgraph.vertex_ids().first().expect("anchor present");
        let anchor = (0..local.num_vertices() as u32)
            .find(|&i| local.global_id(i) == anchor_global)
            .expect("anchor in its ego net");
        let count = count_kplexes_from(&local, anchor, self.k, self.min_size, self.max_size);
        if count > 0 {
            env.aggregate(count);
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::kplex::count_kplexes_brute;
    use gthinker_graph::gen;
    use gthinker_graph::graph::Graph;
    use gthinker_graph::subgraph::Subgraph;
    use std::sync::Arc;

    fn to_local(g: &Graph) -> gthinker_graph::subgraph::LocalGraph {
        let mut sg = Subgraph::new();
        for v in g.vertices() {
            sg.add_vertex(v, g.neighbors(v).clone());
        }
        sg.to_local()
    }

    fn run(g: &Graph, k: usize, min: usize, max: usize, cfg: &JobConfig) -> u64 {
        run_job(Arc::new(KPlexApp::new(k, min, max)), g, cfg).unwrap().global
    }

    #[test]
    fn matches_brute_force() {
        for seed in 0..4 {
            let g = gen::gnp(12, 0.35, seed);
            let expected = count_kplexes_brute(&to_local(&g), 2, 3, 5);
            assert_eq!(run(&g, 2, 3, 5, &JobConfig::single_machine(2)), expected, "seed {seed}");
        }
    }

    #[test]
    fn distributed_matches_single_machine() {
        let g = gen::gnp(70, 0.1, 9);
        let single = run(&g, 2, 3, 4, &JobConfig::single_machine(2));
        let multi = run(&g, 2, 3, 4, &JobConfig::cluster(3, 2));
        assert_eq!(single, multi);
    }

    #[test]
    fn one_plex_counts_equal_clique_counts() {
        // k = 1 reduces to connected cliques = cliques.
        let g = gen::gnp(14, 0.4, 21);
        let expected = count_kplexes_brute(&to_local(&g), 1, 3, 4);
        assert_eq!(run(&g, 1, 3, 4, &JobConfig::single_machine(2)), expected);
    }

    #[test]
    #[should_panic(expected = "2k−1")]
    fn unsound_sizes_rejected() {
        let _ = KPlexApp::new(3, 4, 6);
    }
}
