//! Distributed connected k-plex counting — an extension workload from
//! the T-thinker line the paper opens (§VII).
//!
//! Structure mirrors the quasi-clique app: no trimming (2-hop paths
//! may pass through smaller IDs), two pull rounds to build the anchor's
//! 2-hop ego network (sound because connected k-plexes of size
//! ≥ 2k − 1 have diameter ≤ 2), then the serial hereditary enumerator.

use crate::serial::kplex::{count_kplexes_state, is_kplex, kplex_candidates};
use crate::triangle::SumAgg;
use gthinker_core::prelude::*;
use gthinker_graph::subgraph::LocalGraph;

/// The k-plex counting application.
pub struct KPlexApp {
    /// Relaxation parameter k (1 = cliques).
    pub k: usize,
    /// Smallest k-plex size to count (must be ≥ 2k − 1).
    pub min_size: usize,
    /// Largest k-plex size to count.
    pub max_size: usize,
}

impl KPlexApp {
    /// Creates the app, checking the diameter-2 soundness floor.
    pub fn new(k: usize, min_size: usize, max_size: usize) -> Self {
        assert!(k >= 1);
        assert!(min_size >= 2 * k - 1 && min_size >= 2, "need min_size ≥ 2k−1");
        assert!(max_size >= min_size);
        KPlexApp { k, min_size, max_size }
    }
}

/// Maps global IDs to local indices (local index order equals global ID
/// order, so the sorted global-ID table supports binary search).
fn to_locals(local: &LocalGraph, ids: &[VertexId]) -> Vec<u32> {
    let globals: Vec<VertexId> =
        (0..local.num_vertices() as u32).map(|i| local.global_id(i)).collect();
    debug_assert!(globals.windows(2).all(|w| w[0] < w[1]));
    ids.iter()
        .map(|v| globals.binary_search(v).expect("vertex is in the subgraph") as u32)
        .collect()
}

impl App for KPlexApp {
    /// `(hop, s, cand)`: the hop counter, plus — for a subtask split
    /// off a straggler — the enumeration node `(S, cand)` as global IDs
    /// (`s` empty for a root task).
    type Context = (u64, Vec<VertexId>, Vec<VertexId>);
    type Agg = SumAgg;

    fn make_aggregator(&self) -> SumAgg {
        SumAgg
    }

    fn task_spawn(&self, v: VertexId, adj: &AdjList, env: &mut SpawnEnv<'_, Self>) {
        if adj.is_empty() {
            return; // connected k-plexes of size ≥ 2 need a neighbor
        }
        let mut t = Task::new((0u64, Vec::new(), Vec::new()));
        t.subgraph.add_vertex(v, adj.clone());
        for u in adj.iter() {
            t.pull(u);
        }
        env.add_task(t);
    }

    fn compute(
        &self,
        task: &mut Task<(u64, Vec<VertexId>, Vec<VertexId>)>,
        frontier: &Frontier,
        env: &mut ComputeEnv<'_, Self>,
    ) -> bool {
        if !task.context.1.is_empty() {
            // A split-off enumeration node: the 2-hop ego net is
            // already materialized, the context pins (S, cand).
            let local = task.subgraph.to_local();
            let s = to_locals(&local, &task.context.1);
            let cand = to_locals(&local, &task.context.2);
            let count =
                count_kplexes_state(&local, &s, &cand, self.k, self.min_size, self.max_size);
            if count > 0 {
                env.aggregate(count);
            }
            return false;
        }
        task.context.0 += 1;
        let hop = task.context.0;
        let mut second_hop: Vec<VertexId> = Vec::new();
        for (u, adj) in frontier.iter() {
            if task.subgraph.add_vertex(u, (**adj).clone()) && hop == 1 {
                for w in adj.iter() {
                    if !task.subgraph.contains(w) {
                        second_hop.push(w);
                    }
                }
            }
        }
        if hop == 1 && !second_hop.is_empty() {
            for w in second_hop {
                task.pull(w);
            }
            return true;
        }
        let local = task.subgraph.to_local();
        let anchor_global = *task.subgraph.vertex_ids().first().expect("anchor present");
        let anchor = (0..local.num_vertices() as u32)
            .find(|&i| local.global_id(i) == anchor_global)
            .expect("anchor in its ego net");
        // Straggler splitting: ship each viable first-level branch —
        // `(S = {anchor, b}, later viable branches)`, mirroring the
        // serial recursion's root expansion — as its own task when the
        // branching exceeds the compute budget. The root node itself
        // contributes nothing (|S| = 1 < min_size).
        if let Some(budget) = env.compute_budget() {
            let branches: Vec<u32> = kplex_candidates(&local, anchor)
                .into_iter()
                .filter(|&u| is_kplex(&local, &[anchor, u], self.k))
                .collect();
            if branches.len() as u64 > budget {
                for i in 0..branches.len() {
                    let mut sub = Task::new((
                        2u64,
                        local.to_global(&[anchor, branches[i]]),
                        local.to_global(&branches[i + 1..]),
                    ));
                    sub.subgraph = task.subgraph.clone();
                    env.add_task(sub);
                }
                env.note_split(branches.len() as u64);
                return false;
            }
        }
        let cand = kplex_candidates(&local, anchor);
        let count =
            count_kplexes_state(&local, &[anchor], &cand, self.k, self.min_size, self.max_size);
        if count > 0 {
            env.aggregate(count);
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::kplex::count_kplexes_brute;
    use gthinker_graph::gen;
    use gthinker_graph::graph::Graph;
    use gthinker_graph::subgraph::Subgraph;
    use std::sync::Arc;

    fn to_local(g: &Graph) -> gthinker_graph::subgraph::LocalGraph {
        let mut sg = Subgraph::new();
        for v in g.vertices() {
            sg.add_vertex(v, g.neighbors(v).clone());
        }
        sg.to_local()
    }

    fn run(g: &Graph, k: usize, min: usize, max: usize, cfg: &JobConfig) -> u64 {
        run_job(Arc::new(KPlexApp::new(k, min, max)), g, cfg).unwrap().global
    }

    #[test]
    fn matches_brute_force() {
        for seed in 0..4 {
            let g = gen::gnp(12, 0.35, seed);
            let expected = count_kplexes_brute(&to_local(&g), 2, 3, 5);
            assert_eq!(run(&g, 2, 3, 5, &JobConfig::single_machine(2)), expected, "seed {seed}");
        }
    }

    #[test]
    fn distributed_matches_single_machine() {
        let g = gen::gnp(70, 0.1, 9);
        let single = run(&g, 2, 3, 4, &JobConfig::single_machine(2));
        let multi = run(&g, 2, 3, 4, &JobConfig::cluster(3, 2));
        assert_eq!(single, multi);
    }

    #[test]
    fn compute_budget_split_matches_unbudgeted_run() {
        for seed in 0..3 {
            let g = gen::gnp(30, 0.18, seed + 200);
            let expected = run(&g, 2, 3, 4, &JobConfig::single_machine(2));
            let mut cfg = JobConfig::single_machine(2);
            cfg.compute_budget = Some(2);
            let r = run_job(Arc::new(KPlexApp::new(2, 3, 4)), &g, &cfg).unwrap();
            assert_eq!(r.global, expected, "seed {seed}");
            let splits: u64 = r.workers.iter().map(|w| w.split_tasks).sum();
            assert!(splits > 0, "seed {seed}: budget should have split some node");
        }
    }

    #[test]
    fn one_plex_counts_equal_clique_counts() {
        // k = 1 reduces to connected cliques = cliques.
        let g = gen::gnp(14, 0.4, 21);
        let expected = count_kplexes_brute(&to_local(&g), 1, 3, 4);
        assert_eq!(run(&g, 1, 3, 4, &JobConfig::single_machine(2)), expected);
    }

    #[test]
    #[should_panic(expected = "2k−1")]
    fn unsound_sizes_rejected() {
        let _ = KPlexApp::new(3, 4, 6);
    }
}
