//! Triangle **enumeration** with streamed output.
//!
//! Counting aggregates a single number; enumeration materializes every
//! instance — the output regime §II calls out as potentially
//! exponential in the input. Each task streams its triangles to the
//! worker's output sink instead of buffering them, so memory stays
//! bounded no matter how many triangles exist.

use crate::triangle::SumAgg;
use gthinker_core::prelude::*;
use gthinker_graph::adj::AdjList;
use gthinker_graph::trim::{GreaterIdTrimmer, Trimmer};
use gthinker_task::codec::{from_bytes, to_bytes, CodecError};

/// A triangle record `(v, u, w)` with `v < u < w`.
pub type Triangle = (VertexId, (VertexId, VertexId));

/// Encodes a triangle for the output sink.
pub fn encode_triangle(v: VertexId, u: VertexId, w: VertexId) -> Vec<u8> {
    to_bytes(&(v, (u, w)))
}

/// Decodes a triangle record read back from an output file.
pub fn decode_triangle(record: &[u8]) -> Result<(VertexId, VertexId, VertexId), CodecError> {
    let (v, (u, w)): Triangle = from_bytes(record)?;
    Ok((v, u, w))
}

/// Lists every triangle once (by its minimum vertex) into the job's
/// output directory, while also counting via the aggregator so the
/// `JobResult` carries the total.
#[derive(Default)]
pub struct TriangleListApp;

impl App for TriangleListApp {
    type Context = ();
    type Agg = SumAgg;

    fn make_aggregator(&self) -> SumAgg {
        SumAgg
    }

    fn trimmer(&self) -> Option<Box<dyn Trimmer>> {
        Some(Box::new(GreaterIdTrimmer))
    }

    fn task_spawn(&self, v: VertexId, adj: &AdjList, env: &mut SpawnEnv<'_, Self>) {
        if adj.degree() < 2 {
            return;
        }
        let mut t = Task::new(());
        t.subgraph.add_vertex(v, adj.clone());
        for u in adj.iter() {
            t.pull(u);
        }
        env.add_task(t);
    }

    fn compute(
        &self,
        task: &mut Task<()>,
        frontier: &Frontier,
        env: &mut ComputeEnv<'_, Self>,
    ) -> bool {
        let v = *task.subgraph.vertex_ids().first().expect("anchor present");
        let gv: Vec<VertexId> = frontier.vertex_ids().collect();
        let mut count = 0u64;
        let mut common = Vec::new(); // one buffer for every frontier entry
        for (u, adj) in frontier.iter() {
            adj.intersect_slice_into(&gv, &mut common);
            for &w in &common {
                env.emit(&encode_triangle(v, u, w));
                count += 1;
            }
        }
        if count > 0 {
            env.aggregate(count);
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::triangle::count_triangles;
    use gthinker_core::output::read_all_records;
    use gthinker_graph::gen;
    use std::sync::Arc;

    fn out_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("gthinker-trilist-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn run_and_collect(
        g: &gthinker_graph::graph::Graph,
        mut cfg: JobConfig,
        tag: &str,
    ) -> (u64, Vec<(VertexId, VertexId, VertexId)>) {
        let dir = out_dir(tag);
        cfg.output_dir = Some(dir.clone());
        let r = run_job(Arc::new(TriangleListApp), g, &cfg).unwrap();
        let mut triangles: Vec<_> = read_all_records(&dir)
            .unwrap()
            .iter()
            .map(|rec| decode_triangle(rec).unwrap())
            .collect();
        triangles.sort_unstable();
        let emitted: u64 = r.workers.iter().map(|w| w.output_records).sum();
        assert_eq!(emitted, triangles.len() as u64);
        (r.global, triangles)
    }

    #[test]
    fn enumerates_every_triangle_exactly_once() {
        let g = gen::gnp(80, 0.12, 4);
        let expected = count_triangles(&g);
        let (count, triangles) = run_and_collect(&g, JobConfig::single_machine(2), "single");
        assert_eq!(count, expected);
        assert_eq!(triangles.len() as u64, expected);
        let mut dedup = triangles.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), triangles.len(), "duplicate triangle emitted");
        for (v, u, w) in triangles {
            assert!(v < u && u < w, "canonical order violated");
            assert!(g.has_edge(v, u) && g.has_edge(u, w) && g.has_edge(v, w));
        }
    }

    #[test]
    fn distributed_enumeration_matches_single_machine() {
        let g = gen::barabasi_albert(400, 5, 6);
        let (_, single) = run_and_collect(&g, JobConfig::single_machine(2), "s2");
        let (_, multi) = run_and_collect(&g, JobConfig::cluster(3, 2), "m2");
        assert_eq!(single, multi);
    }

    #[test]
    #[should_panic(expected = "requires JobConfig::output_dir")]
    fn emit_without_output_dir_panics() {
        let g = gen::complete(4);
        let _ = run_job(Arc::new(TriangleListApp), &g, &JobConfig::single_machine(1));
    }
}
