//! G-thinker applications — the workloads of the paper's evaluation:
//!
//! * [`MaxCliqueApp`] — maximum clique finding (MCF), Fig. 5, with the
//!   τ decomposition threshold and aggregator-based global pruning.
//! * [`TriangleApp`] — triangle counting (TC) with `Γ_>` trimming.
//! * [`MatchingApp`] — labeled subgraph matching (GM) anchored on
//!   query vertex 0's label instances.
//! * [`QuasiCliqueApp`] — γ-quasi-clique counting over 2-hop ego
//!   networks (the §III motivating example).
//!
//! [`serial`] holds the in-task serial miners (branch-and-bound max
//! clique, intersection triangle counting, backtracking matcher,
//! quasi-clique enumeration), each validated against brute force.

pub mod kplex;
pub mod matching;
pub mod maxclique;
pub mod maximalclique;
pub mod quasiclique;
pub mod serial;
pub mod triangle;
pub mod triangle_bundled;
pub mod triangle_list;

pub use kplex::KPlexApp;
pub use matching::MatchingApp;
pub use maxclique::{BestCliqueAgg, Clique, MaxCliqueApp};
pub use maximalclique::MaximalCliqueApp;
pub use quasiclique::QuasiCliqueApp;
pub use serial::matching::Pattern;
pub use triangle::{SumAgg, TriangleApp};
pub use triangle_bundled::BundledTriangleApp;
pub use triangle_list::TriangleListApp;
