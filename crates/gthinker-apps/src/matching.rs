//! Distributed subgraph matching (GM).
//!
//! Given a small connected labeled query [`Pattern`], counts its
//! embeddings in the data graph. Redundancy is avoided by partitioning
//! the search space over *instances of the anchor label* (the strategy
//! the paper attributes to its preprint [34]): each task counts only
//! the embeddings that map query vertex 0 to its spawn vertex.
//!
//! A task grows the anchor's ego network hop by hop up to the query's
//! anchor radius — pulling only vertices whose labels appear in the
//! query (the [`LabelSetTrimmer`] already removed the rest from every
//! adjacency list) — and then runs the serial backtracking matcher.

use crate::serial::matching::{count_embeddings_from, count_embeddings_from_pair, Pattern};
use crate::triangle::SumAgg;
use gthinker_core::prelude::*;
use gthinker_graph::adj::AdjList;
use gthinker_graph::ids::Label;
use gthinker_graph::trim::{LabelSetTrimmer, Trimmer};

/// The subgraph matching application.
pub struct MatchingApp {
    pattern: Pattern,
    /// The data graph's label table (needed by the trimmer).
    labels: Vec<Label>,
}

impl MatchingApp {
    /// Creates a matching job for `pattern` over a data graph with the
    /// given label table.
    pub fn new(pattern: Pattern, labels: Vec<Label>) -> Self {
        MatchingApp { pattern, labels }
    }

    /// The query pattern.
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }
}

/// Task context: how many hops of the ego network have been pulled,
/// plus — for a subtask split off a straggler — the data vertex
/// pre-assigned to the second matching-order query vertex (empty for a
/// root task).
type MatchCtx = (u64, Vec<VertexId>);

impl App for MatchingApp {
    type Context = MatchCtx;
    type Agg = SumAgg;

    fn make_aggregator(&self) -> SumAgg {
        SumAgg
    }

    fn trimmer(&self) -> Option<Box<dyn Trimmer>> {
        Some(Box::new(LabelSetTrimmer::new(&self.pattern.label_set(), self.labels.clone())))
    }

    fn task_spawn(&self, v: VertexId, adj: &AdjList, env: &mut SpawnEnv<'_, Self>) {
        // Only anchor-label vertices spawn tasks.
        if env.label() != Some(self.pattern.label(0)) {
            return;
        }
        if self.pattern.num_vertices() == 1 {
            env.aggregate(1); // the pattern is a single labeled vertex
            return;
        }
        let mut t = Task::new((0u64, Vec::new()));
        t.subgraph.add_labeled_vertex(v, self.pattern.label(0), adj.clone());
        for u in adj.iter() {
            t.pull(u);
        }
        if t.has_pulls() {
            env.add_task(t);
        }
        // No eligible neighbors: no embedding can anchor here.
    }

    fn compute(
        &self,
        task: &mut Task<MatchCtx>,
        frontier: &Frontier,
        env: &mut ComputeEnv<'_, Self>,
    ) -> bool {
        if let Some(&second) = task.context.1.first() {
            // A split-off subtask: the ego net is already materialized,
            // the second matching-order vertex is pre-assigned.
            let local = task.subgraph.to_local();
            let find =
                |g: VertexId| (0..local.num_vertices() as u32).find(|&i| local.global_id(i) == g);
            let anchor = find(*task.subgraph.vertex_ids().first().expect("anchor"))
                .expect("anchor is in its own subgraph");
            let second = find(second).expect("pre-assigned vertex is in the subgraph");
            let count = count_embeddings_from_pair(&local, &self.pattern, anchor, second);
            if count > 0 {
                env.aggregate(count);
            }
            return false;
        }
        task.context.0 += 1;
        let hop = task.context.0;
        let radius = self.pattern.anchor_radius() as u64;
        // Incorporate this hop's vertices (labels from the replicated
        // table; lists arrive already trimmed to query labels).
        let mut next: Vec<VertexId> = Vec::new();
        for (u, adj) in frontier.iter() {
            let label = env.label_of(u).expect("matching requires a labeled graph");
            if task.subgraph.add_labeled_vertex(u, label, (**adj).clone()) && hop < radius {
                for w in adj.iter() {
                    if !task.subgraph.contains(w) {
                        next.push(w);
                    }
                }
            }
        }
        if hop < radius && !next.is_empty() {
            for w in next {
                task.pull(w);
            }
            return true;
        }
        // Ego net complete: run the serial matcher.
        let local = task.subgraph.to_local();
        let anchor = (0..local.num_vertices() as u32)
            .find(|&i| local.global_id(i) == *task.subgraph.vertex_ids().first().expect("anchor"))
            .expect("anchor is in its own subgraph");
        // Straggler splitting: when the anchor has more data-neighbors
        // than the compute budget, ship one subtask per candidate for
        // the second matching-order vertex (its candidates at depth 1
        // are exactly Γ(anchor)); the per-pair counts partition the
        // anchored count.
        if self.pattern.num_vertices() >= 2 {
            let order = self.pattern.matching_order();
            let seconds: Vec<u32> = local
                .neighbors(anchor)
                .iter()
                .copied()
                .filter(|&c| local.label(c) == Some(self.pattern.label(order[1])))
                .collect();
            if env.compute_budget().is_some_and(|b| seconds.len() as u64 > b) {
                for &c in &seconds {
                    let mut sub = Task::new((hop, vec![local.global_id(c)]));
                    sub.subgraph = task.subgraph.clone();
                    env.add_task(sub);
                }
                env.note_split(seconds.len() as u64);
                return false;
            }
        }
        let count = count_embeddings_from(&local, &self.pattern, anchor);
        if count > 0 {
            env.aggregate(count);
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::matching::count_embeddings_brute;
    use gthinker_graph::gen;
    use gthinker_graph::graph::Graph;
    use gthinker_graph::subgraph::Subgraph;
    use std::sync::Arc;

    fn to_local(g: &Graph) -> gthinker_graph::subgraph::LocalGraph {
        let mut sg = Subgraph::new();
        for v in g.vertices() {
            sg.add_labeled_vertex(v, g.label(v).unwrap(), g.neighbors(v).clone());
        }
        sg.to_local()
    }

    fn run(g: &Graph, pattern: Pattern, cfg: &JobConfig) -> u64 {
        let app = MatchingApp::new(pattern, g.labels().unwrap().to_vec());
        run_job(Arc::new(app), g, cfg).unwrap().global
    }

    #[test]
    fn triangle_pattern_matches_brute_force() {
        for seed in 0..4 {
            let g = gen::random_labels(gen::gnp(30, 0.2, seed), 2, seed + 9);
            let p = Pattern::triangle(Label(0), Label(1), Label(1));
            let expected = count_embeddings_brute(&to_local(&g), &p);
            assert_eq!(run(&g, p, &JobConfig::single_machine(2)), expected, "seed {seed}");
        }
    }

    #[test]
    fn path_pattern_radius_two_matches_brute_force() {
        for seed in 0..3 {
            let g = gen::random_labels(gen::gnp(24, 0.18, seed + 20), 3, seed + 31);
            let p = Pattern::path3(Label(0), Label(1), Label(2));
            let expected = count_embeddings_brute(&to_local(&g), &p);
            assert_eq!(run(&g, p, &JobConfig::single_machine(2)), expected, "seed {seed}");
        }
    }

    #[test]
    fn distributed_matches_single_machine() {
        let g = gen::random_labels(gen::barabasi_albert(300, 4, 8), 3, 77);
        let p = Pattern::triangle(Label(0), Label(1), Label(2));
        let single = run(&g, p.clone(), &JobConfig::single_machine(2));
        let multi = run(&g, p, &JobConfig::cluster(3, 2));
        assert_eq!(single, multi);
    }

    #[test]
    fn compute_budget_split_matches_unbudgeted_run() {
        for seed in 0..3 {
            let g = gen::random_labels(gen::gnp(30, 0.2, seed + 50), 2, seed + 61);
            let p = Pattern::triangle(Label(0), Label(1), Label(1));
            let expected = run(&g, p.clone(), &JobConfig::single_machine(2));
            let mut cfg = JobConfig::single_machine(2);
            cfg.compute_budget = Some(2);
            let app = MatchingApp::new(p, g.labels().unwrap().to_vec());
            let r = run_job(Arc::new(app), &g, &cfg).unwrap();
            assert_eq!(r.global, expected, "seed {seed}");
            let splits: u64 = r.workers.iter().map(|w| w.split_tasks).sum();
            assert!(splits > 0, "seed {seed}: budget should have split some anchor");
        }
    }

    #[test]
    fn single_vertex_pattern_counts_label_instances() {
        let g = gen::random_labels(gen::cycle(12), 2, 5);
        let expected = g.vertices().filter(|&v| g.label(v) == Some(Label(1))).count() as u64;
        let p = Pattern::new(vec![Label(1)], &[]);
        assert_eq!(run(&g, p, &JobConfig::single_machine(1)), expected);
    }
}
