//! Maximum clique finding (MCF) — the paper's flagship application
//! (Fig. 5).
//!
//! A task is `⟨S, ext(S)⟩`: `S` is the vertex set already assumed in
//! the clique (the task context) and `ext(S) = Γ_>(S)` is the candidate
//! set, materialized as the task's subgraph `g` (induced by the
//! candidates, stored in oriented `Γ_>` form thanks to the
//! [`GreaterIdTrimmer`]).
//!
//! * `task_spawn(v)` prunes if `1 + |Γ_>(v)|` cannot beat the best
//!   known clique, else creates `⟨{v}, Γ_>(v)⟩` and pulls the
//!   candidates (Fig. 5 lines 1–5).
//! * `compute` constructs `g` on the first iteration, then either
//!   **decomposes** (when `|V(g)| > τ`) into one subtask per candidate
//!   (lines 3–9) or runs the serial branch-and-bound solver with the
//!   aggregator-broadcast bound (lines 10–14).
//!
//! The aggregator keeps the best clique's **vertex set**, so the final
//! global value is a verifiable witness, not just a size.

use crate::serial::clique::max_clique_above;
use gthinker_core::prelude::*;
use gthinker_graph::adj::AdjList;
use gthinker_graph::trim::{GreaterIdTrimmer, Trimmer};

/// Keeps the largest clique seen (by vertex count).
pub struct BestCliqueAgg;

/// The clique witness: sorted member IDs.
pub type Clique = Vec<VertexId>;

impl Aggregator for BestCliqueAgg {
    type Item = Clique;
    type Partial = Clique;
    type Global = Clique;

    fn init_partial(&self) -> Clique {
        Vec::new()
    }
    fn init_global(&self) -> Clique {
        Vec::new()
    }
    fn aggregate(&self, partial: &mut Clique, item: Clique) {
        if item.len() > partial.len() {
            *partial = item;
        }
    }
    fn merge(&self, global: &mut Clique, partial: &Clique) {
        if partial.len() > global.len() {
            *global = partial.clone();
        }
    }
}

/// The maximum clique application.
pub struct MaxCliqueApp {
    /// Decomposition threshold `τ`: tasks whose candidate subgraph has
    /// more vertices split into subtasks (paper default 40,000).
    pub tau: usize,
}

impl Default for MaxCliqueApp {
    fn default() -> Self {
        MaxCliqueApp { tau: 40_000 }
    }
}

impl MaxCliqueApp {
    /// Creates the app with a custom decomposition threshold τ.
    pub fn with_tau(tau: usize) -> Self {
        assert!(tau >= 1);
        MaxCliqueApp { tau }
    }

    /// Best clique size visible on this worker right now (local partial
    /// or broadcast global, whichever is larger).
    fn best_size<E: AggReader>(env: &E) -> usize {
        env.read_best(|p, g| p.len().max(g.len()))
    }
}

/// Small helper trait so both environments expose the same read.
trait AggReader {
    fn read_best<R>(&self, f: impl FnOnce(&Clique, &Clique) -> R) -> R;
}

impl AggReader for SpawnEnv<'_, MaxCliqueApp> {
    fn read_best<R>(&self, f: impl FnOnce(&Clique, &Clique) -> R) -> R {
        self.read_agg(f)
    }
}

impl AggReader for ComputeEnv<'_, MaxCliqueApp> {
    fn read_best<R>(&self, f: impl FnOnce(&Clique, &Clique) -> R) -> R {
        self.read_agg(f)
    }
}

impl App for MaxCliqueApp {
    /// `S`: the vertices already assumed in the clique.
    type Context = Vec<VertexId>;
    type Agg = BestCliqueAgg;

    fn make_aggregator(&self) -> BestCliqueAgg {
        BestCliqueAgg
    }

    fn trimmer(&self) -> Option<Box<dyn Trimmer>> {
        Some(Box::new(GreaterIdTrimmer))
    }

    fn task_spawn(&self, v: VertexId, adj: &AdjList, env: &mut SpawnEnv<'_, Self>) {
        // Fig. 5 line 1: prune if even all of Γ_>(v) cannot beat S_max.
        if Self::best_size(env) > adj.degree() {
            return;
        }
        let mut t = Task::new(vec![v]);
        for u in adj.iter() {
            t.pull(u);
        }
        if t.has_pulls() {
            env.add_task(t);
        } else {
            // Isolated (after trimming) vertex: it is itself a clique
            // candidate of size 1.
            env.aggregate(vec![v]);
        }
    }

    fn compute(
        &self,
        task: &mut Task<Vec<VertexId>>,
        frontier: &Frontier,
        env: &mut ComputeEnv<'_, Self>,
    ) -> bool {
        // First iteration of a top-level task: construct g induced by
        // the pulled candidate set (Fig. 5 lines 1–2). Adjacency is
        // filtered to candidates — anything else is ≥ 2 hops from v or
        // below it in the enumeration order.
        if task.subgraph.is_empty() && !frontier.is_empty() {
            let candidates: Vec<VertexId> = frontier.vertex_ids().collect();
            let mut sorted = candidates.clone();
            sorted.sort_unstable();
            for (u, adj) in frontier.iter() {
                let filtered = adj.intersect_slice(&sorted);
                task.subgraph.add_vertex(u, AdjList::from_sorted(filtered));
            }
        }
        let s = task.context.clone();
        let g = &task.subgraph;
        let best = Self::best_size(env);

        // Straggler splitting: a compute budget tightens the
        // decomposition threshold, so candidate sets that would run
        // serially for a long time decompose into stealable subtasks
        // instead.
        let tau_eff = env.compute_budget().map_or(self.tau, |b| self.tau.min(b as usize));
        if g.num_vertices() > tau_eff {
            let budget_split = g.num_vertices() <= self.tau;
            let mut spawned = 0u64;
            // Decompose (lines 3–9): one subtask per candidate u, with
            // subgraph induced by u's candidates (its oriented
            // adjacency within g).
            for &u in g.vertex_ids() {
                let ext: Vec<VertexId> =
                    g.neighbors(u).expect("member of its own subgraph").iter().collect();
                if s.len() + 1 + ext.len() <= best {
                    continue; // line 9: even ext(S ∪ u) cannot win
                }
                let mut sub = Task::new({
                    let mut s2 = s.clone();
                    s2.push(u);
                    s2
                });
                // Induce on ext: keep only edges among candidates.
                for &w in &ext {
                    let wadj = g.neighbors(w).expect("candidate is in g");
                    sub.subgraph.add_vertex(w, AdjList::from_sorted(wadj.intersect_slice(&ext)));
                }
                // A candidate with an empty ext still extends S by one.
                env.add_task(sub);
                spawned += 1;
            }
            if budget_split && spawned > 0 {
                env.note_split(spawned);
            }
            return false;
        }

        // Serial mining (lines 10–14).
        if s.len() + g.num_vertices() <= best {
            return false; // line 11
        }
        let local = g.to_local();
        let delta = best.saturating_sub(s.len());
        if let Some(found) = max_clique_above(&local, delta) {
            let mut clique = s;
            clique.extend(local.to_global(&found));
            clique.sort_unstable();
            env.aggregate(clique);
        } else if g.num_vertices() == 0 && s.len() > best {
            // Decomposed leaf with no candidates: S itself is a clique.
            env.aggregate(s);
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::clique::max_clique_brute;
    use gthinker_graph::gen;
    use gthinker_graph::graph::Graph;
    use gthinker_graph::subgraph::Subgraph;
    use std::sync::Arc;

    fn local_of(g: &Graph) -> gthinker_graph::subgraph::LocalGraph {
        let mut sg = Subgraph::new();
        for v in g.vertices() {
            sg.add_vertex(v, g.neighbors(v).clone());
        }
        sg.to_local()
    }

    fn run(g: &Graph, cfg: &JobConfig, tau: usize) -> Clique {
        run_job(Arc::new(MaxCliqueApp::with_tau(tau)), g, cfg).unwrap().global
    }

    fn assert_is_clique(g: &Graph, c: &[VertexId]) {
        for i in 0..c.len() {
            for j in (i + 1)..c.len() {
                assert!(g.has_edge(c[i], c[j]), "{:?} not a clique", c);
            }
        }
    }

    #[test]
    fn finds_max_clique_on_small_random_graphs() {
        for seed in 0..6 {
            let g = gen::gnp(16, 0.45, seed);
            let expected = max_clique_brute(&local_of(&g)).len();
            let found = run(&g, &JobConfig::single_machine(2), 40_000);
            assert_is_clique(&g, &found);
            assert_eq!(found.len(), expected, "seed {seed}");
        }
    }

    #[test]
    fn decomposition_path_gives_same_answer() {
        let g = gen::gnp(40, 0.4, 9);
        let expected = run(&g, &JobConfig::single_machine(2), 40_000);
        // τ = 2 forces deep decomposition.
        let decomposed = run(&g, &JobConfig::single_machine(2), 2);
        assert_eq!(decomposed.len(), expected.len());
        assert_is_clique(&g, &decomposed);
    }

    #[test]
    fn compute_budget_split_gives_same_answer() {
        let g = gen::gnp(40, 0.4, 9);
        let expected = run(&g, &JobConfig::single_machine(2), 40_000);
        let mut cfg = JobConfig::single_machine(2);
        cfg.compute_budget = Some(3);
        let r = run_job(Arc::new(MaxCliqueApp::with_tau(40_000)), &g, &cfg).unwrap();
        assert_eq!(r.global.len(), expected.len());
        assert_is_clique(&g, &r.global);
        let splits: u64 = r.workers.iter().map(|w| w.split_tasks).sum();
        assert!(splits > 0, "budget τ should have forced decomposition");
    }

    #[test]
    fn finds_planted_clique_distributed() {
        let base = gen::barabasi_albert(400, 3, 5);
        let (g, members) = gen::plant_clique(&base, 12, 6);
        let found = run(&g, &JobConfig::cluster(3, 2), 40_000);
        assert_is_clique(&g, &found);
        assert!(found.len() >= 12);
        assert_eq!(found, members, "planted clique should be the maximum");
    }

    #[test]
    fn complete_graph_and_edgeless_graph() {
        let k = gen::complete(9);
        assert_eq!(run(&k, &JobConfig::single_machine(2), 40_000).len(), 9);
        let e = Graph::with_vertices(5);
        let c = run(&e, &JobConfig::single_machine(1), 40_000);
        assert_eq!(c.len(), 1, "isolated vertices are 1-cliques");
    }
}
