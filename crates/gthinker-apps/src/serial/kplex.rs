//! Serial **k-plex** enumeration on a [`LocalGraph`].
//!
//! A vertex set `S` is a *k-plex* if every member has at least
//! `|S| − k` neighbors inside `S` (k = 1 gives cliques). k-plexes are
//! the relaxed-clique workload of the T-thinker line of systems that
//! G-thinker opens (§VII); they slot into the same anchored
//! set-enumeration template as the other applications.
//!
//! Two structural facts drive the implementation:
//!
//! * **Heredity** — every subset of a k-plex is a k-plex, so the DFS
//!   can discard a candidate permanently the moment adding it breaks
//!   the property.
//! * **Diameter** — a *connected* k-plex with `|S| ≥ 2k − 1` has
//!   diameter at most 2, so the distributed app's 2-hop ego networks
//!   are sufficient; the size floor is enforced.

use gthinker_graph::bitset::BitSet;
use gthinker_graph::subgraph::LocalGraph;

/// True if `s` is a k-plex of `g` (every member has ≥ `|s| − k`
/// neighbors inside `s`).
pub fn is_kplex(g: &LocalGraph, s: &[u32], k: usize) -> bool {
    if s.is_empty() {
        return false;
    }
    s.iter().all(|&v| {
        let inside = s.iter().filter(|&&u| u != v && g.has_edge(u, v)).count();
        inside + k >= s.len()
    })
}

/// True if the subgraph of `g` induced by `s` is connected.
pub fn is_connected(g: &LocalGraph, s: &[u32]) -> bool {
    if s.is_empty() {
        return false;
    }
    let mut seen = vec![false; s.len()];
    let mut stack = vec![0usize];
    seen[0] = true;
    let mut reached = 1;
    while let Some(i) = stack.pop() {
        for (j, &u) in s.iter().enumerate() {
            if !seen[j] && g.has_edge(s[i], u) {
                seen[j] = true;
                reached += 1;
                stack.push(j);
            }
        }
    }
    reached == s.len()
}

/// Counts the **connected** k-plexes of `g` whose minimum member is
/// `anchor`, with sizes in `[min_size, max_size]`.
///
/// # Panics
/// Panics if `min_size < 2k − 1` (the 2-hop candidate rule the
/// distributed app relies on is only sound above that size).
pub fn count_kplexes_from(
    g: &LocalGraph,
    anchor: u32,
    k: usize,
    min_size: usize,
    max_size: usize,
) -> u64 {
    assert!(k >= 1);
    assert!(
        min_size >= 2 * k - 1 && min_size >= 2,
        "connected k-plexes need |S| ≥ 2k−1 for the diameter-2 bound"
    );
    assert!(max_size >= min_size);
    let cand = kplex_candidates(g, anchor);
    count_kplexes_state(g, &[anchor], &cand, k, min_size, max_size)
}

/// The anchor's candidate set: its 2-hop neighborhood restricted to IDs
/// greater than the anchor, sorted.
pub fn kplex_candidates(g: &LocalGraph, anchor: u32) -> Vec<u32> {
    let mut cand: Vec<u32> = Vec::new();
    for &u in g.neighbors(anchor) {
        if u > anchor && !cand.contains(&u) {
            cand.push(u);
        }
        for &w in g.neighbors(u) {
            if w > anchor && !cand.contains(&w) {
                cand.push(w);
            }
        }
    }
    cand.sort_unstable();
    cand
}

/// Resumes the hereditary enumeration from an interior node: counts the
/// connected k-plexes among `s ∪ (subsets of cand)` that contain all of
/// `s`. Returns 0 when `s` itself is not a k-plex (heredity: no
/// superset can be one either). With `s = [anchor]` and
/// `cand = kplex_candidates(..)` this equals [`count_kplexes_from`];
/// the distributed app uses it to split a straggler task's first-level
/// branches into independent subtasks.
pub fn count_kplexes_state(
    g: &LocalGraph,
    s: &[u32],
    cand: &[u32],
    k: usize,
    min_size: usize,
    max_size: usize,
) -> u64 {
    assert!(k >= 1 && max_size >= min_size && min_size >= 2);
    if !is_kplex(g, s, k) {
        return 0;
    }
    let mut count = 0u64;
    let mut sv = s.to_vec();
    if g.is_dense() {
        let n = g.num_vertices();
        let mut scratch = KplexScratch {
            sbits: BitSet::new(n),
            visited: BitSet::new(n),
            reach: BitSet::new(n),
            stack: Vec::new(),
        };
        for &v in s {
            scratch.sbits.insert(v);
        }
        extend_bitset(g, &mut sv, cand, k, min_size, max_size, &mut count, &mut scratch);
    } else {
        extend(g, &mut sv, cand, k, min_size, max_size, &mut count);
    }
    count
}

/// Shared scratch for the word-parallel recursion: the member bitset
/// (maintained incrementally alongside `s`) and BFS workspace, reused
/// by every node so the hot path never allocates.
struct KplexScratch {
    sbits: BitSet,
    visited: BitSet,
    reach: BitSet,
    stack: Vec<u32>,
}

/// BFS connectivity over the members bitset: every frontier expansion
/// is `Γ(v) ∧ S ∧ ¬visited`, two word sweeps instead of a scan of `s`.
fn is_connected_bitset(g: &LocalGraph, s: &[u32], scratch: &mut KplexScratch) -> bool {
    let KplexScratch { sbits, visited, reach, stack } = scratch;
    visited.clear();
    stack.clear();
    visited.insert(s[0]);
    stack.push(s[0]);
    let mut reached = 1usize;
    while let Some(v) = stack.pop() {
        reach.assign_and_words(sbits, g.dense_row(v).expect("dense"));
        reach.and_not_assign(visited);
        for u in reach.iter() {
            visited.insert(u);
            stack.push(u);
            reached += 1;
        }
    }
    reached == s.len()
}

/// Word-parallel twin of [`extend`]: membership counts are AND-popcount
/// sweeps against the dense rows (`indeg_S(v) = |S ∧ Γ(v)|`).
#[allow(clippy::too_many_arguments)]
fn extend_bitset(
    g: &LocalGraph,
    s: &mut Vec<u32>,
    cand: &[u32],
    k: usize,
    min_size: usize,
    max_size: usize,
    count: &mut u64,
    scratch: &mut KplexScratch,
) {
    if s.len() >= min_size && is_connected_bitset(g, s, scratch) {
        *count += 1; // s is a k-plex by construction (heredity)
    }
    if s.len() >= max_size || s.len() + cand.len() < min_size {
        return;
    }
    // Heredity, word-parallel: S ∪ {u} stays a k-plex iff u has enough
    // members as neighbors and no member drops below the floor. Member
    // inside-degrees only grow by the u-adjacency bit, so one popcount
    // per member suffices.
    let viable: Vec<u32> = cand
        .iter()
        .copied()
        .filter(|&u| {
            let su_len = s.len() + 1;
            let urow = g.dense_row(u).expect("dense");
            let inside_u = scratch.sbits.and_count_words(urow);
            if inside_u + k < su_len {
                return false;
            }
            s.iter().all(|&v| {
                let vrow = g.dense_row(v).expect("dense");
                let inside_v = scratch.sbits.and_count_words(vrow) + usize::from(g.has_edge(u, v));
                inside_v + k >= su_len
            })
        })
        .collect();
    for (i, &u) in viable.iter().enumerate() {
        s.push(u);
        scratch.sbits.insert(u);
        extend_bitset(g, s, &viable[i + 1..], k, min_size, max_size, count, scratch);
        scratch.sbits.remove(u);
        s.pop();
    }
}

fn extend(
    g: &LocalGraph,
    s: &mut Vec<u32>,
    cand: &[u32],
    k: usize,
    min_size: usize,
    max_size: usize,
    count: &mut u64,
) {
    if s.len() >= min_size && is_connected(g, s) {
        *count += 1; // s is a k-plex by construction (heredity)
    }
    if s.len() >= max_size || s.len() + cand.len() < min_size {
        return;
    }
    // Heredity: only candidates that keep S ∪ {u} a k-plex can ever
    // appear in any descendant; the rest are dropped for this subtree.
    let viable: Vec<u32> = cand
        .iter()
        .copied()
        .filter(|&u| {
            s.push(u);
            let ok = is_kplex(g, s, k);
            s.pop();
            ok
        })
        .collect();
    for (i, &u) in viable.iter().enumerate() {
        s.push(u);
        extend(g, s, &viable[i + 1..], k, min_size, max_size, count);
        s.pop();
    }
}

/// Brute force over all subsets (tests only): connected k-plexes with
/// sizes in range, counted once per minimum member by construction.
pub fn count_kplexes_brute(g: &LocalGraph, k: usize, min_size: usize, max_size: usize) -> u64 {
    let n = g.num_vertices();
    assert!(n <= 20, "brute force is for tiny graphs");
    let mut count = 0u64;
    for mask in 1u32..(1 << n) {
        let s: Vec<u32> = (0..n as u32).filter(|&i| mask & (1 << i) != 0).collect();
        if s.len() >= min_size && s.len() <= max_size && is_kplex(g, &s, k) && is_connected(g, &s) {
            count += 1;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use gthinker_graph::gen;
    use gthinker_graph::graph::Graph;
    use gthinker_graph::subgraph::Subgraph;

    fn to_local(g: &Graph) -> LocalGraph {
        let mut sg = Subgraph::new();
        for v in g.vertices() {
            sg.add_vertex(v, g.neighbors(v).clone());
        }
        sg.to_local()
    }

    #[test]
    fn cliques_are_1_plexes() {
        let g = to_local(&gen::complete(5));
        assert!(is_kplex(&g, &[0, 1, 2, 3, 4], 1));
        // C5 is a 2-plex of size 5? Each vertex has 2 of 4 inside:
        // needs ≥ 5 − 2 = 3 — no.
        let c = to_local(&gen::cycle(5));
        assert!(!is_kplex(&c, &[0, 1, 2, 3, 4], 2));
        assert!(is_kplex(&c, &[0, 1, 2, 3, 4], 3));
    }

    #[test]
    fn heredity_holds_on_samples() {
        let g = to_local(&gen::gnp(12, 0.5, 3));
        for mask in 1u32..(1 << 12) {
            let s: Vec<u32> = (0..12u32).filter(|&i| mask & (1 << i) != 0).collect();
            if s.len() >= 2 && is_kplex(&g, &s, 2) {
                // Dropping any single member must preserve the property.
                for drop in &s {
                    let sub: Vec<u32> = s.iter().copied().filter(|v| v != drop).collect();
                    assert!(sub.is_empty() || is_kplex(&g, &sub, 2));
                }
            }
        }
    }

    #[test]
    fn anchored_counts_partition_the_total() {
        for seed in 0..5 {
            let g = to_local(&gen::gnp(10, 0.4, seed));
            for (k, min, max) in [(1, 3, 5), (2, 3, 5), (3, 5, 6)] {
                let brute = count_kplexes_brute(&g, k, min, max);
                let sum: u64 = (0..10u32).map(|a| count_kplexes_from(&g, a, k, min, max)).sum();
                assert_eq!(sum, brute, "seed {seed}, k {k}, sizes {min}..{max}");
            }
        }
    }

    #[test]
    fn one_plexes_are_cliques() {
        let g = to_local(&gen::gnp(12, 0.5, 9));
        // Count 1-plexes (cliques) of size 3..4 and compare with a
        // direct clique count.
        let sum: u64 =
            (0..12u32).map(|a| count_kplexes_from(&g, a, 1, 3, 4)).collect::<Vec<_>>().iter().sum();
        let mut direct = 0u64;
        for mask in 1u32..(1 << 12) {
            let s: Vec<u32> = (0..12u32).filter(|&i| mask & (1 << i) != 0).collect();
            if (3..=4).contains(&s.len())
                && s.iter().enumerate().all(|(i, &u)| s[i + 1..].iter().all(|&v| g.has_edge(u, v)))
            {
                direct += 1;
            }
        }
        assert_eq!(sum, direct);
    }

    #[test]
    fn bitset_and_list_kernels_agree() {
        for seed in 0..4 {
            let g = gen::gnp(11, 0.45, seed + 30);
            let mut sg = Subgraph::new();
            for v in g.vertices() {
                sg.add_vertex(v, g.neighbors(v).clone());
            }
            let dense = sg.to_local();
            let sparse = sg.to_local_with_threshold(0);
            assert!(dense.is_dense() && !sparse.is_dense());
            for (k, min, max) in [(1usize, 3usize, 5usize), (2, 3, 6), (3, 5, 7)] {
                for a in 0..11u32 {
                    assert_eq!(
                        count_kplexes_from(&dense, a, k, min, max),
                        count_kplexes_from(&sparse, a, k, min, max),
                        "seed {seed} anchor {a} k {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn first_level_split_partitions_each_anchor_count() {
        // Splitting a node into its viable first-level branches — the
        // distributed app's budget split — must partition the count.
        for seed in 0..5 {
            let g = to_local(&gen::gnp(11, 0.4, seed + 90));
            for (k, min, max) in [(1usize, 3usize, 5usize), (2, 3, 5)] {
                for a in 0..11u32 {
                    let whole = count_kplexes_from(&g, a, k, min, max);
                    let branches: Vec<u32> = kplex_candidates(&g, a)
                        .into_iter()
                        .filter(|&u| is_kplex(&g, &[a, u], k))
                        .collect();
                    let split: u64 = (0..branches.len())
                        .map(|i| {
                            count_kplexes_state(
                                &g,
                                &[a, branches[i]],
                                &branches[i + 1..],
                                k,
                                min,
                                max,
                            )
                        })
                        .sum();
                    assert_eq!(split, whole, "seed {seed} anchor {a} k {k}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "2k−1")]
    fn size_floor_enforced() {
        let g = to_local(&gen::complete(4));
        count_kplexes_from(&g, 0, 3, 3, 5); // min_size 3 < 2·3−1
    }
}
