//! Serial maximal-clique enumeration: Bron–Kerbosch with pivoting.
//!
//! `bron_kerbosch(g, R, P, X)` reports every maximal clique extending
//! `R` using candidates `P`, where `X` holds vertices adjacent to all
//! of `R` that were already covered by other branches (the classic
//! exclusion set). The G-thinker application seeds per-vertex calls in
//! degeneracy style: `R = {v}`, `P = Γ_>(v)`, `X = Γ_<(v)`, so each
//! maximal clique is reported exactly once — by its minimum vertex.
//!
//! When the [`LocalGraph`] carries its dense adjacency matrix, the
//! entry points run a word-parallel variant: `P` and `X` are
//! [`BitSet`]s, pivot scoring is an AND-popcount per candidate, and the
//! child sets `P ∧ Γ(v)` / `X ∧ Γ(v)` are single AND sweeps into
//! per-depth scratch. The sorted-list recursion is kept as the
//! fallback for subgraphs above the dense threshold.

use gthinker_graph::bitset::BitSet;
use gthinker_graph::subgraph::LocalGraph;

/// Enumerates maximal cliques of `g` that contain all of `r`, can be
/// extended only by `p`, and must not be extendable by anything in
/// `x`. Calls `visit` once per maximal clique (local indices, sorted).
pub fn bron_kerbosch(
    g: &LocalGraph,
    r: &mut Vec<u32>,
    mut p: Vec<u32>,
    mut x: Vec<u32>,
    visit: &mut impl FnMut(&[u32]),
) {
    if p.is_empty() && x.is_empty() {
        let mut clique = r.clone();
        clique.sort_unstable();
        visit(&clique);
        return;
    }
    // Pivot: the vertex of P ∪ X with most neighbors in P minimizes
    // branching (Tomita et al.).
    let pivot = p
        .iter()
        .chain(x.iter())
        .copied()
        .max_by_key(|&u| p.iter().filter(|&&w| g.has_edge(u, w)).count())
        .expect("P ∪ X non-empty");
    let branch: Vec<u32> = p.iter().copied().filter(|&u| !g.has_edge(pivot, u)).collect();
    for v in branch {
        let np: Vec<u32> = p.iter().copied().filter(|&u| g.has_edge(v, u)).collect();
        let nx: Vec<u32> = x.iter().copied().filter(|&u| g.has_edge(v, u)).collect();
        r.push(v);
        bron_kerbosch(g, r, np, nx, visit);
        r.pop();
        p.retain(|&u| u != v);
        x.push(v);
    }
}

/// Per-depth scratch for the word-parallel recursion.
struct BkLevel {
    p: BitSet,
    x: BitSet,
    branch: BitSet,
}

impl BkLevel {
    fn new(n: usize) -> Self {
        BkLevel { p: BitSet::new(n), x: BitSet::new(n), branch: BitSet::new(n) }
    }
}

/// Word-parallel Bron–Kerbosch over the dense adjacency matrix; same
/// reporting contract as [`bron_kerbosch`]. `scratch[depth]` must hold
/// the node's `P` and `X` on entry.
fn bron_kerbosch_bitset(
    g: &LocalGraph,
    depth: usize,
    r: &mut Vec<u32>,
    scratch: &mut Vec<BkLevel>,
    visit: &mut impl FnMut(&[u32]),
) {
    if scratch[depth].p.is_empty() && scratch[depth].x.is_empty() {
        let mut clique = r.clone();
        clique.sort_unstable();
        visit(&clique);
        return;
    }
    // Pivot scoring: |P ∧ Γ(u)| is one AND-popcount sweep per u ∈ P ∪ X.
    {
        let BkLevel { p, x, branch } = &mut scratch[depth];
        let mut pivot = u32::MAX;
        let mut best_score = usize::MAX; // sentinel: no pivot yet
        for u in p.iter().chain(x.iter()) {
            let score = p.and_count_words(g.dense_row(u).expect("dense"));
            if best_score == usize::MAX || score > best_score {
                best_score = score;
                pivot = u;
            }
        }
        branch.assign_and_not_words(p, g.dense_row(pivot).expect("dense"));
    }
    if scratch.len() <= depth + 1 {
        scratch.push(BkLevel::new(g.num_vertices()));
    }
    // Consume the branch set smallest-first; P and X evolve as vertices
    // are processed, exactly like the list variant.
    while let Some(v) = scratch[depth].branch.first_set() {
        scratch[depth].branch.remove(v);
        let (lo, hi) = scratch.split_at_mut(depth + 1);
        let lvl = &mut lo[depth];
        let child = &mut hi[0];
        let row = g.dense_row(v).expect("dense");
        child.p.assign_and_words(&lvl.p, row);
        child.x.assign_and_words(&lvl.x, row);
        r.push(v);
        bron_kerbosch_bitset(g, depth + 1, r, scratch, visit);
        r.pop();
        scratch[depth].p.remove(v);
        scratch[depth].x.insert(v);
    }
}

/// Runs the full enumeration (all vertices as initial candidates) with
/// whichever kernel matches the graph's representation.
fn enumerate_all(g: &LocalGraph, visit: &mut impl FnMut(&[u32])) {
    let n = g.num_vertices();
    if n == 0 {
        return; // BK would report the empty clique
    }
    let mut r = Vec::new();
    if g.is_dense() {
        let mut scratch = vec![BkLevel::new(n)];
        scratch[0].p.set_all();
        bron_kerbosch_bitset(g, 0, &mut r, &mut scratch, visit);
    } else {
        let p: Vec<u32> = (0..n as u32).collect();
        bron_kerbosch(g, &mut r, p, Vec::new(), visit);
    }
}

/// Counts all maximal cliques of `g`.
pub fn count_maximal_cliques(g: &LocalGraph) -> u64 {
    let mut count = 0u64;
    enumerate_all(g, &mut |_| count += 1);
    count
}

/// Lists all maximal cliques of `g` (sorted local indices each).
pub fn list_maximal_cliques(g: &LocalGraph) -> Vec<Vec<u32>> {
    let mut out = Vec::new();
    enumerate_all(g, &mut |c| out.push(c.to_vec()));
    out
}

/// Brute-force maximal-clique count for tests: every clique subset,
/// checked for maximality.
pub fn count_maximal_cliques_brute(g: &LocalGraph) -> u64 {
    let n = g.num_vertices();
    assert!(n <= 20, "brute force is for tiny graphs");
    let mut count = 0u64;
    'outer: for mask in 1u32..(1 << n) {
        let members: Vec<u32> = (0..n as u32).filter(|&i| mask & (1 << i) != 0).collect();
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                if !g.has_edge(members[i], members[j]) {
                    continue 'outer;
                }
            }
        }
        // Maximal: no outside vertex adjacent to all members.
        let extendable = (0..n as u32)
            .filter(|v| !members.contains(v))
            .any(|v| members.iter().all(|&m| g.has_edge(v, m)));
        if !extendable {
            count += 1;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use gthinker_graph::gen;
    use gthinker_graph::graph::Graph;
    use gthinker_graph::subgraph::Subgraph;

    fn subgraph_of(g: &Graph) -> Subgraph {
        let mut sg = Subgraph::new();
        for v in g.vertices() {
            sg.add_vertex(v, g.neighbors(v).clone());
        }
        sg
    }

    fn to_local(g: &Graph) -> LocalGraph {
        subgraph_of(g).to_local()
    }

    #[test]
    fn known_counts() {
        // K5 has 1 maximal clique; C5 has 5 (its edges); star has leaves.
        assert_eq!(count_maximal_cliques(&to_local(&gen::complete(5))), 1);
        assert_eq!(count_maximal_cliques(&to_local(&gen::cycle(5))), 5);
        assert_eq!(count_maximal_cliques(&to_local(&gen::star(7))), 6);
    }

    #[test]
    fn matches_brute_force() {
        for seed in 0..8 {
            let g = to_local(&gen::gnp(13, 0.4, seed));
            assert_eq!(count_maximal_cliques(&g), count_maximal_cliques_brute(&g), "seed {seed}");
        }
    }

    #[test]
    fn bitset_and_list_kernels_enumerate_identically() {
        for seed in 0..6 {
            let sg = subgraph_of(&gen::gnp(18, 0.45, seed));
            let mut dense = list_maximal_cliques(&sg.to_local());
            let mut sparse = list_maximal_cliques(&sg.to_local_with_threshold(0));
            dense.sort();
            sparse.sort();
            assert_eq!(dense, sparse, "seed {seed}");
        }
    }

    #[test]
    fn listed_cliques_are_maximal_and_distinct() {
        let g = to_local(&gen::gnp(15, 0.4, 99));
        let cliques = list_maximal_cliques(&g);
        let mut seen = std::collections::HashSet::new();
        for c in &cliques {
            assert!(seen.insert(c.clone()), "duplicate maximal clique {c:?}");
            // Clique property.
            for i in 0..c.len() {
                for j in (i + 1)..c.len() {
                    assert!(g.has_edge(c[i], c[j]));
                }
            }
            // Maximality.
            for v in 0..g.num_vertices() as u32 {
                if !c.contains(&v) {
                    assert!(!c.iter().all(|&m| g.has_edge(v, m)), "{c:?} extendable by {v}");
                }
            }
        }
    }

    #[test]
    fn empty_graph_has_none() {
        assert_eq!(count_maximal_cliques(&to_local(&Graph::with_vertices(0))), 0);
        // Isolated vertices are themselves maximal cliques.
        assert_eq!(count_maximal_cliques(&to_local(&Graph::with_vertices(3))), 3);
    }
}
