//! Serial maximal-clique enumeration: Bron–Kerbosch with pivoting.
//!
//! `bron_kerbosch(g, R, P, X)` reports every maximal clique extending
//! `R` using candidates `P`, where `X` holds vertices adjacent to all
//! of `R` that were already covered by other branches (the classic
//! exclusion set). The G-thinker application seeds per-vertex calls in
//! degeneracy style: `R = {v}`, `P = Γ_>(v)`, `X = Γ_<(v)`, so each
//! maximal clique is reported exactly once — by its minimum vertex.

use gthinker_graph::subgraph::LocalGraph;

/// Enumerates maximal cliques of `g` that contain all of `r`, can be
/// extended only by `p`, and must not be extendable by anything in
/// `x`. Calls `visit` once per maximal clique (local indices, sorted).
pub fn bron_kerbosch(
    g: &LocalGraph,
    r: &mut Vec<u32>,
    mut p: Vec<u32>,
    mut x: Vec<u32>,
    visit: &mut impl FnMut(&[u32]),
) {
    if p.is_empty() && x.is_empty() {
        let mut clique = r.clone();
        clique.sort_unstable();
        visit(&clique);
        return;
    }
    // Pivot: the vertex of P ∪ X with most neighbors in P minimizes
    // branching (Tomita et al.).
    let pivot = p
        .iter()
        .chain(x.iter())
        .copied()
        .max_by_key(|&u| p.iter().filter(|&&w| g.has_edge(u, w)).count())
        .expect("P ∪ X non-empty");
    let branch: Vec<u32> = p.iter().copied().filter(|&u| !g.has_edge(pivot, u)).collect();
    for v in branch {
        let np: Vec<u32> = p.iter().copied().filter(|&u| g.has_edge(v, u)).collect();
        let nx: Vec<u32> = x.iter().copied().filter(|&u| g.has_edge(v, u)).collect();
        r.push(v);
        bron_kerbosch(g, r, np, nx, visit);
        r.pop();
        p.retain(|&u| u != v);
        x.push(v);
    }
}

/// Counts all maximal cliques of `g`.
pub fn count_maximal_cliques(g: &LocalGraph) -> u64 {
    if g.num_vertices() == 0 {
        return 0; // BK would report the empty clique
    }
    let mut count = 0u64;
    let mut r = Vec::new();
    let p: Vec<u32> = (0..g.num_vertices() as u32).collect();
    bron_kerbosch(g, &mut r, p, Vec::new(), &mut |_| count += 1);
    count
}

/// Lists all maximal cliques of `g` (sorted local indices each).
pub fn list_maximal_cliques(g: &LocalGraph) -> Vec<Vec<u32>> {
    if g.num_vertices() == 0 {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut r = Vec::new();
    let p: Vec<u32> = (0..g.num_vertices() as u32).collect();
    bron_kerbosch(g, &mut r, p, Vec::new(), &mut |c| out.push(c.to_vec()));
    out
}

/// Brute-force maximal-clique count for tests: every clique subset,
/// checked for maximality.
pub fn count_maximal_cliques_brute(g: &LocalGraph) -> u64 {
    let n = g.num_vertices();
    assert!(n <= 20, "brute force is for tiny graphs");
    let mut count = 0u64;
    'outer: for mask in 1u32..(1 << n) {
        let members: Vec<u32> = (0..n as u32).filter(|&i| mask & (1 << i) != 0).collect();
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                if !g.has_edge(members[i], members[j]) {
                    continue 'outer;
                }
            }
        }
        // Maximal: no outside vertex adjacent to all members.
        let extendable = (0..n as u32)
            .filter(|v| !members.contains(v))
            .any(|v| members.iter().all(|&m| g.has_edge(v, m)));
        if !extendable {
            count += 1;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use gthinker_graph::gen;
    use gthinker_graph::graph::Graph;
    use gthinker_graph::subgraph::Subgraph;

    fn to_local(g: &Graph) -> LocalGraph {
        let mut sg = Subgraph::new();
        for v in g.vertices() {
            sg.add_vertex(v, g.neighbors(v).clone());
        }
        sg.to_local()
    }

    #[test]
    fn known_counts() {
        // K5 has 1 maximal clique; C5 has 5 (its edges); star has leaves.
        assert_eq!(count_maximal_cliques(&to_local(&gen::complete(5))), 1);
        assert_eq!(count_maximal_cliques(&to_local(&gen::cycle(5))), 5);
        assert_eq!(count_maximal_cliques(&to_local(&gen::star(7))), 6);
    }

    #[test]
    fn matches_brute_force() {
        for seed in 0..8 {
            let g = to_local(&gen::gnp(13, 0.4, seed));
            assert_eq!(
                count_maximal_cliques(&g),
                count_maximal_cliques_brute(&g),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn listed_cliques_are_maximal_and_distinct() {
        let g = to_local(&gen::gnp(15, 0.4, 99));
        let cliques = list_maximal_cliques(&g);
        let mut seen = std::collections::HashSet::new();
        for c in &cliques {
            assert!(seen.insert(c.clone()), "duplicate maximal clique {c:?}");
            // Clique property.
            for i in 0..c.len() {
                for j in (i + 1)..c.len() {
                    assert!(g.has_edge(c[i], c[j]));
                }
            }
            // Maximality.
            for v in 0..g.num_vertices() as u32 {
                if !c.contains(&v) {
                    assert!(
                        !c.iter().all(|&m| g.has_edge(v, m)),
                        "{c:?} extendable by {v}"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_graph_has_none() {
        assert_eq!(count_maximal_cliques(&to_local(&Graph::with_vertices(0))), 0);
        // Isolated vertices are themselves maximal cliques.
        assert_eq!(count_maximal_cliques(&to_local(&Graph::with_vertices(3))), 3);
    }
}
