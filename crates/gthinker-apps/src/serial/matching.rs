//! Serial subgraph matching (labeled subgraph isomorphism) on a
//! [`LocalGraph`].
//!
//! A [`Pattern`] is a small connected labeled query graph. An
//! *embedding* is an injective mapping from query vertices to data
//! vertices preserving labels and query edges. The distributed app
//! deduplicates by anchoring query vertex 0: each task counts the
//! embeddings that map query vertex 0 to its spawn vertex.

use gthinker_graph::ids::Label;
use gthinker_graph::subgraph::LocalGraph;

/// A small labeled query graph.
#[derive(Clone, Debug)]
pub struct Pattern {
    labels: Vec<Label>,
    adj: Vec<Vec<u8>>,
}

impl Pattern {
    /// Builds a pattern from per-vertex labels and an edge list.
    /// The pattern must be connected (required by the anchored search).
    pub fn new(labels: Vec<Label>, edges: &[(u8, u8)]) -> Self {
        let n = labels.len();
        assert!((1..=16).contains(&n), "patterns are small by design");
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in edges {
            assert!((a as usize) < n && (b as usize) < n && a != b, "bad pattern edge");
            if !adj[a as usize].contains(&b) {
                adj[a as usize].push(b);
                adj[b as usize].push(a);
            }
        }
        let p = Pattern { labels, adj };
        assert!(p.is_connected(), "pattern must be connected");
        p
    }

    /// A labeled triangle query.
    pub fn triangle(l0: Label, l1: Label, l2: Label) -> Self {
        Pattern::new(vec![l0, l1, l2], &[(0, 1), (1, 2), (0, 2)])
    }

    /// A labeled 3-vertex path `l0 - l1 - l2`.
    pub fn path3(l0: Label, l1: Label, l2: Label) -> Self {
        Pattern::new(vec![l0, l1, l2], &[(0, 1), (1, 2)])
    }

    /// A labeled star: `center` adjacent to every leaf.
    pub fn star(center: Label, leaves: &[Label]) -> Self {
        assert!(!leaves.is_empty(), "a star needs at least one leaf");
        let mut labels = vec![center];
        labels.extend_from_slice(leaves);
        let edges: Vec<(u8, u8)> = (1..=leaves.len() as u8).map(|i| (0, i)).collect();
        Pattern::new(labels, &edges)
    }

    /// A labeled 4-clique.
    pub fn clique4(l0: Label, l1: Label, l2: Label, l3: Label) -> Self {
        Pattern::new(vec![l0, l1, l2, l3], &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
    }

    /// Number of query vertices.
    pub fn num_vertices(&self) -> usize {
        self.labels.len()
    }

    /// The label of query vertex `q`.
    pub fn label(&self, q: u8) -> Label {
        self.labels[q as usize]
    }

    /// All distinct labels used by the pattern.
    pub fn label_set(&self) -> Vec<Label> {
        let mut ls = self.labels.clone();
        ls.sort_unstable();
        ls.dedup();
        ls
    }

    /// Neighbors of query vertex `q`.
    pub fn neighbors(&self, q: u8) -> &[u8] {
        &self.adj[q as usize]
    }

    fn is_connected(&self) -> bool {
        let n = self.num_vertices();
        let mut seen = vec![false; n];
        let mut stack = vec![0u8];
        seen[0] = true;
        while let Some(q) = stack.pop() {
            for &u in self.neighbors(q) {
                if !seen[u as usize] {
                    seen[u as usize] = true;
                    stack.push(u);
                }
            }
        }
        seen.into_iter().all(|s| s)
    }

    /// Eccentricity of query vertex 0: how many hops of data-graph
    /// neighborhood a task must pull around its anchor.
    pub fn anchor_radius(&self) -> usize {
        let n = self.num_vertices();
        let mut dist = vec![usize::MAX; n];
        dist[0] = 0;
        let mut queue = std::collections::VecDeque::from([0u8]);
        while let Some(q) = queue.pop_front() {
            for &u in self.neighbors(q) {
                if dist[u as usize] == usize::MAX {
                    dist[u as usize] = dist[q as usize] + 1;
                    queue.push_back(u);
                }
            }
        }
        dist.into_iter().max().unwrap_or(0)
    }

    /// A matching order starting at vertex 0 in which every vertex is
    /// adjacent to an earlier one (BFS order).
    pub fn matching_order(&self) -> Vec<u8> {
        let n = self.num_vertices();
        let mut order = Vec::with_capacity(n);
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::from([0u8]);
        seen[0] = true;
        while let Some(q) = queue.pop_front() {
            order.push(q);
            for &u in self.neighbors(q) {
                if !seen[u as usize] {
                    seen[u as usize] = true;
                    queue.push_back(u);
                }
            }
        }
        order
    }
}

/// Counts embeddings of `pattern` into `g` that map query vertex 0 to
/// local data vertex `anchor`. `g` must carry labels.
pub fn count_embeddings_from(g: &LocalGraph, pattern: &Pattern, anchor: u32) -> u64 {
    if g.label(anchor) != Some(pattern.label(0)) {
        return 0;
    }
    let order = pattern.matching_order();
    let mut map: Vec<Option<u32>> = vec![None; pattern.num_vertices()];
    map[0] = Some(anchor);
    let mut count = 0u64;
    backtrack(g, pattern, &order, 1, &mut map, &mut count);
    count
}

/// Counts embeddings that map query vertex 0 to `anchor` AND the
/// second vertex of the matching order to `second`. Summed over the
/// anchor's data-neighbors, this equals [`count_embeddings_from`] (the
/// depth-1 candidates are exactly `Γ(anchor)`); the distributed app
/// uses it to split one anchor task into per-second-vertex subtasks.
pub fn count_embeddings_from_pair(
    g: &LocalGraph,
    pattern: &Pattern,
    anchor: u32,
    second: u32,
) -> u64 {
    let order = pattern.matching_order();
    if order.len() < 2
        || g.label(anchor) != Some(pattern.label(0))
        || second == anchor
        || g.label(second) != Some(pattern.label(order[1]))
    {
        return 0;
    }
    let mut map: Vec<Option<u32>> = vec![None; pattern.num_vertices()];
    map[0] = Some(anchor);
    // Every query edge from order[1] to an already-mapped vertex (only
    // vertex 0 at this depth) must exist in the data graph.
    let consistent = pattern.neighbors(order[1]).iter().all(|&u| match map[u as usize] {
        Some(d) => g.has_edge(d, second),
        None => true,
    });
    if !consistent {
        return 0;
    }
    map[order[1] as usize] = Some(second);
    let mut count = 0u64;
    backtrack(g, pattern, &order, 2, &mut map, &mut count);
    count
}

fn backtrack(
    g: &LocalGraph,
    pattern: &Pattern,
    order: &[u8],
    depth: usize,
    map: &mut Vec<Option<u32>>,
    count: &mut u64,
) {
    if depth == order.len() {
        *count += 1;
        return;
    }
    let q = order[depth];
    // Candidates: data-neighbors of an already-mapped query neighbor.
    let pivot = pattern
        .neighbors(q)
        .iter()
        .find(|&&u| map[u as usize].is_some())
        .expect("BFS order guarantees a mapped neighbor");
    let pivot_data = map[*pivot as usize].expect("just checked");
    for &cand in g.neighbors(pivot_data) {
        if g.label(cand) != Some(pattern.label(q)) {
            continue;
        }
        if map.contains(&Some(cand)) {
            continue; // injectivity
        }
        // Every query edge to an already-mapped vertex must exist.
        let consistent = pattern.neighbors(q).iter().all(|&u| match map[u as usize] {
            Some(d) => g.has_edge(d, cand),
            None => true,
        });
        if !consistent {
            continue;
        }
        map[q as usize] = Some(cand);
        backtrack(g, pattern, order, depth + 1, map, count);
        map[q as usize] = None;
    }
}

/// Brute-force embedding count over all vertex tuples (tests only).
pub fn count_embeddings_brute(g: &LocalGraph, pattern: &Pattern) -> u64 {
    let n = g.num_vertices() as u32;
    let k = pattern.num_vertices();
    assert!(n.pow(k as u32) <= 10_000_000, "brute force too large");
    let mut count = 0u64;
    let mut map = vec![0u32; k];
    fn rec(g: &LocalGraph, p: &Pattern, map: &mut Vec<u32>, depth: usize, n: u32, count: &mut u64) {
        if depth == map.len() {
            // validate
            for q in 0..map.len() {
                if g.label(map[q]) != Some(p.label(q as u8)) {
                    return;
                }
                for &u in p.neighbors(q as u8) {
                    if !g.has_edge(map[q], map[u as usize]) {
                        return;
                    }
                }
            }
            // injectivity
            let mut sorted = map.clone();
            sorted.sort_unstable();
            sorted.dedup();
            if sorted.len() == map.len() {
                *count += 1;
            }
            return;
        }
        for v in 0..n {
            map[depth] = v;
            rec(g, p, map, depth + 1, n, count);
        }
    }
    rec(g, pattern, &mut map, 0, n, &mut count);
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use gthinker_graph::gen;
    use gthinker_graph::graph::Graph;
    use gthinker_graph::subgraph::Subgraph;

    fn to_local(g: &Graph) -> LocalGraph {
        let mut sg = Subgraph::new();
        for v in g.vertices() {
            match g.label(v) {
                Some(l) => sg.add_labeled_vertex(v, l, g.neighbors(v).clone()),
                None => sg.add_vertex(v, g.neighbors(v).clone()),
            };
        }
        sg.to_local()
    }

    #[test]
    fn pattern_construction_and_radius() {
        let p = Pattern::triangle(Label(0), Label(1), Label(2));
        assert_eq!(p.num_vertices(), 3);
        assert_eq!(p.anchor_radius(), 1);
        let path = Pattern::path3(Label(0), Label(1), Label(0));
        assert_eq!(path.anchor_radius(), 2);
        assert_eq!(path.label_set(), vec![Label(0), Label(1)]);
        assert_eq!(path.matching_order(), vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn disconnected_pattern_rejected() {
        Pattern::new(vec![Label(0), Label(1)], &[]);
    }

    #[test]
    fn anchored_counts_sum_to_brute_force() {
        for seed in 0..6 {
            let g = to_local(&gen::random_labels(gen::gnp(12, 0.35, seed), 2, seed + 50));
            for pattern in [
                Pattern::triangle(Label(0), Label(1), Label(1)),
                Pattern::path3(Label(0), Label(1), Label(0)),
            ] {
                let brute = count_embeddings_brute(&g, &pattern);
                let sum: u64 = (0..12u32).map(|a| count_embeddings_from(&g, &pattern, a)).sum();
                assert_eq!(sum, brute, "seed {seed}, pattern {pattern:?}");
            }
        }
    }

    #[test]
    fn star_and_clique4_patterns_match_brute_force() {
        for seed in 0..3 {
            let g = to_local(&gen::random_labels(gen::gnp(11, 0.4, seed + 40), 2, seed + 60));
            for pattern in [
                Pattern::star(Label(0), &[Label(1), Label(1)]),
                Pattern::star(Label(1), &[Label(0), Label(0), Label(1)]),
                Pattern::clique4(Label(0), Label(0), Label(1), Label(1)),
            ] {
                let brute = count_embeddings_brute(&g, &pattern);
                let sum: u64 = (0..11u32).map(|a| count_embeddings_from(&g, &pattern, a)).sum();
                assert_eq!(sum, brute, "seed {seed}, pattern {pattern:?}");
            }
        }
    }

    #[test]
    fn pair_counts_partition_the_anchor_count() {
        // Pre-assigning the second matching-order vertex — the
        // distributed app's budget split — must partition each anchor's
        // count over the anchor's data-neighbors.
        for seed in 0..4 {
            let g = to_local(&gen::random_labels(gen::gnp(12, 0.35, seed + 10), 2, seed + 70));
            for pattern in [
                Pattern::triangle(Label(0), Label(1), Label(1)),
                Pattern::path3(Label(0), Label(1), Label(0)),
                Pattern::star(Label(0), &[Label(1), Label(1)]),
            ] {
                for a in 0..12u32 {
                    let whole = count_embeddings_from(&g, &pattern, a);
                    let split: u64 = g
                        .neighbors(a)
                        .iter()
                        .map(|&c| count_embeddings_from_pair(&g, &pattern, a, c))
                        .sum();
                    assert_eq!(split, whole, "seed {seed} anchor {a} pattern {pattern:?}");
                }
            }
        }
    }

    #[test]
    fn label_mismatch_at_anchor_gives_zero() {
        let g = to_local(&gen::random_labels(gen::complete(4), 1, 1)); // all Label(0)
        let p = Pattern::triangle(Label(1), Label(0), Label(0));
        for a in 0..4u32 {
            assert_eq!(count_embeddings_from(&g, &p, a), 0);
        }
    }

    #[test]
    fn unlabeled_graph_matches_nothing() {
        let g = to_local(&gen::complete(4));
        let p = Pattern::triangle(Label(0), Label(0), Label(0));
        assert_eq!(count_embeddings_from(&g, &p, 0), 0);
    }
}
