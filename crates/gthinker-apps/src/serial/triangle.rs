//! Serial triangle counting.
//!
//! The standard `O(|E|^1.5)`-ish algorithm: orient every edge from the
//! smaller to the larger endpoint, then for each edge `(u, v)` with `u
//! < v` count `|Γ_>(u) ∩ Γ_>(v)|`. Used as the single-threaded
//! reference (the paper compares against RStream's out-of-core TC with
//! exactly this workload) and to validate the distributed app.

use gthinker_graph::graph::Graph;

/// Counts triangles of `g` exactly.
pub fn count_triangles(g: &Graph) -> u64 {
    let mut count = 0u64;
    for u in g.vertices() {
        let gu = g.neighbors(u).greater_than(u);
        for &v in gu {
            let gv = g.neighbors(v).greater_than(v);
            count += gthinker_graph::adj::count_intersect_sorted(gu, gv) as u64;
        }
    }
    count
}

/// O(n³) brute force for cross-checking in tests.
pub fn count_triangles_brute(g: &Graph) -> u64 {
    let n = g.num_vertices();
    let mut count = 0u64;
    for a in 0..n {
        for b in (a + 1)..n {
            for c in (b + 1)..n {
                use gthinker_graph::ids::VertexId;
                let (a, b, c) =
                    (VertexId(a as u32), VertexId(b as u32), VertexId(c as u32));
                if g.has_edge(a, b) && g.has_edge(b, c) && g.has_edge(a, c) {
                    count += 1;
                }
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use gthinker_graph::gen;

    #[test]
    fn known_counts() {
        assert_eq!(count_triangles(&gen::complete(4)), 4);
        assert_eq!(count_triangles(&gen::complete(5)), 10);
        assert_eq!(count_triangles(&gen::cycle(5)), 0);
        assert_eq!(count_triangles(&gen::star(10)), 0);
    }

    #[test]
    fn matches_brute_force() {
        for seed in 0..8 {
            let g = gen::gnp(30, 0.2, seed);
            assert_eq!(count_triangles(&g), count_triangles_brute(&g), "seed {seed}");
        }
    }

    #[test]
    fn empty_graph() {
        assert_eq!(count_triangles(&gthinker_graph::graph::Graph::with_vertices(0)), 0);
    }
}
