//! Serial triangle counting.
//!
//! The standard `O(|E|^1.5)`-ish algorithm: orient every edge from the
//! smaller to the larger endpoint, then for each edge `(u, v)` with `u
//! < v` count `|Γ_>(u) ∩ Γ_>(v)|`. Used as the single-threaded
//! reference (the paper compares against RStream's out-of-core TC with
//! exactly this workload) and to validate the distributed app.

use gthinker_graph::bitset::and_count_from;
use gthinker_graph::graph::Graph;
use gthinker_graph::subgraph::LocalGraph;

/// Counts triangles of `g` exactly.
pub fn count_triangles(g: &Graph) -> u64 {
    let mut count = 0u64;
    for u in g.vertices() {
        let gu = g.neighbors(u).greater_than(u);
        for &v in gu {
            let gv = g.neighbors(v).greater_than(v);
            count += gthinker_graph::adj::count_intersect_sorted(gu, gv) as u64;
        }
    }
    count
}

/// Counts triangles of a task-local subgraph snapshot.
///
/// When the dense adjacency matrix is present, the per-edge inner loop
/// `|Γ_>(u) ∩ Γ_>(v)|` is a word-parallel AND-popcount over the two
/// adjacency rows, masked to indices above `v`; otherwise it falls back
/// to the sorted-merge count over the CSR rows.
pub fn count_triangles_local(g: &LocalGraph) -> u64 {
    let n = g.num_vertices() as u32;
    let mut count = 0u64;
    for u in 0..n {
        let row_u = g.dense_row(u);
        let gu = g.neighbors(u);
        let start = gu.partition_point(|&w| w <= u);
        for &v in &gu[start..] {
            match (row_u, g.dense_row(v)) {
                (Some(ru), Some(rv)) => {
                    count += and_count_from(ru, rv, v + 1) as u64;
                }
                _ => {
                    let gv = g.neighbors(v);
                    let sv = gv.partition_point(|&w| w <= v);
                    count += count_intersect_u32(&gu[start..], &gv[sv..]) as u64;
                }
            }
        }
    }
    count
}

/// Merge-count over two strictly ascending `u32` slices (local-index
/// counterpart of `adj::count_intersect_sorted`).
fn count_intersect_u32(a: &[u32], b: &[u32]) -> usize {
    let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// O(n³) brute force for cross-checking in tests.
pub fn count_triangles_brute(g: &Graph) -> u64 {
    let n = g.num_vertices();
    let mut count = 0u64;
    for a in 0..n {
        for b in (a + 1)..n {
            for c in (b + 1)..n {
                use gthinker_graph::ids::VertexId;
                let (a, b, c) = (VertexId(a as u32), VertexId(b as u32), VertexId(c as u32));
                if g.has_edge(a, b) && g.has_edge(b, c) && g.has_edge(a, c) {
                    count += 1;
                }
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use gthinker_graph::gen;

    #[test]
    fn known_counts() {
        assert_eq!(count_triangles(&gen::complete(4)), 4);
        assert_eq!(count_triangles(&gen::complete(5)), 10);
        assert_eq!(count_triangles(&gen::cycle(5)), 0);
        assert_eq!(count_triangles(&gen::star(10)), 0);
    }

    #[test]
    fn matches_brute_force() {
        for seed in 0..8 {
            let g = gen::gnp(30, 0.2, seed);
            assert_eq!(count_triangles(&g), count_triangles_brute(&g), "seed {seed}");
        }
    }

    #[test]
    fn empty_graph() {
        assert_eq!(count_triangles(&gthinker_graph::graph::Graph::with_vertices(0)), 0);
    }

    #[test]
    fn local_kernels_match_graph_count() {
        use gthinker_graph::subgraph::Subgraph;
        for seed in 0..6 {
            let g = gen::gnp(40, 0.25, seed + 10);
            let expected = count_triangles(&g);
            let mut sg = Subgraph::new();
            for v in g.vertices() {
                sg.add_vertex(v, g.neighbors(v).clone());
            }
            let dense = sg.to_local();
            let sparse = sg.to_local_with_threshold(0);
            assert!(dense.is_dense() && !sparse.is_dense());
            assert_eq!(count_triangles_local(&dense), expected, "dense, seed {seed}");
            assert_eq!(count_triangles_local(&sparse), expected, "sparse, seed {seed}");
        }
    }

    #[test]
    fn local_count_on_empty_graph() {
        use gthinker_graph::subgraph::Subgraph;
        let l = Subgraph::new().to_local();
        assert_eq!(count_triangles_local(&l), 0);
    }
}
