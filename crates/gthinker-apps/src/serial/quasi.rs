//! Serial γ-quasi-clique enumeration on a [`LocalGraph`].
//!
//! A vertex set `S` is a **γ-quasi-clique** if every `v ∈ S` has at
//! least `⌈γ·(|S|−1)⌉` neighbors inside `S`. The paper's quasi-clique
//! application ([17]) mines them with a set-enumeration search over
//! each vertex's 2-hop ego network (for γ ≥ 0.5, any two members are
//! within 2 hops).
//!
//! Scope note (documented in DESIGN.md): the reproduction enumerates
//! and counts all γ-quasi-cliques with sizes in `[min_size, max_size]`
//! whose minimum vertex is the task's anchor, rather than only the
//! *maximal* ones — maximality checking is orthogonal to the
//! framework behaviour being reproduced. Pruning uses the
//! size-monotone bound only (candidates exhausted), because the
//! quasi-clique property is not hereditary.

use gthinker_graph::bitset::BitSet;
use gthinker_graph::subgraph::LocalGraph;

/// Returns `⌈γ·k⌉` as a usize degree threshold.
fn threshold(gamma: f64, k: usize) -> usize {
    (gamma * k as f64).ceil() as usize
}

/// True if local vertex set `s` (sorted) is a γ-quasi-clique of `g`.
pub fn is_quasi_clique(g: &LocalGraph, s: &[u32], gamma: f64) -> bool {
    if s.len() <= 1 {
        return !s.is_empty();
    }
    let need = threshold(gamma, s.len() - 1);
    s.iter().all(|&v| {
        let deg_in = s.iter().filter(|&&u| u != v && g.has_edge(u, v)).count();
        deg_in >= need
    })
}

/// Counts the γ-quasi-cliques of `g` that contain local vertex
/// `anchor` as their minimum member, with `min_size ≤ |S| ≤ max_size`.
///
/// Candidates are restricted to vertices greater than `anchor` (set-
/// enumeration-tree deduplication, Fig. 1) within 2 hops of it.
pub fn count_quasi_cliques_from(
    g: &LocalGraph,
    anchor: u32,
    gamma: f64,
    min_size: usize,
    max_size: usize,
) -> u64 {
    let cand = quasi_candidates(g, anchor);
    count_quasi_cliques_state(g, &[anchor], &cand, gamma, min_size, max_size)
}

/// The anchor's candidate set: its 2-hop neighborhood restricted to IDs
/// greater than the anchor, sorted (the set-enumeration-tree order).
pub fn quasi_candidates(g: &LocalGraph, anchor: u32) -> Vec<u32> {
    let mut cand: Vec<u32> = Vec::new();
    for &u in g.neighbors(anchor) {
        if u > anchor && !cand.contains(&u) {
            cand.push(u);
        }
        for &w in g.neighbors(u) {
            if w > anchor && w != anchor && !cand.contains(&w) {
                cand.push(w);
            }
        }
    }
    cand.sort_unstable();
    cand
}

/// Resumes the set-enumeration search from an interior node: counts the
/// γ-quasi-cliques among `s ∪ (subsets of cand)` that contain all of
/// `s`, with sizes in `[min_size, max_size]`. With `s = [anchor]` and
/// `cand = quasi_candidates(..)` this is exactly
/// [`count_quasi_cliques_from`]; the distributed app uses it to split a
/// straggler task's first-level branches into independent subtasks.
pub fn count_quasi_cliques_state(
    g: &LocalGraph,
    s: &[u32],
    cand: &[u32],
    gamma: f64,
    min_size: usize,
    max_size: usize,
) -> u64 {
    assert!((0.5..=1.0).contains(&gamma), "2-hop candidate rule requires γ ≥ 0.5");
    assert!(min_size >= 2 && max_size >= min_size);
    let mut count = 0u64;
    let mut sv = s.to_vec();
    if g.is_dense() {
        let n = g.num_vertices();
        let mut scratch = QuasiScratch { sbits: BitSet::new(n), cand_bits: BitSet::new(n) };
        for &v in s {
            scratch.sbits.insert(v);
        }
        enumerate_bitset(g, &mut sv, cand, gamma, min_size, max_size, &mut count, &mut scratch);
    } else {
        enumerate(g, &mut sv, cand, gamma, min_size, max_size, &mut count);
    }
    count
}

/// Shared scratch for the word-parallel recursion: the member bitset
/// (maintained incrementally alongside `s`) and a candidate bitset
/// refilled at each node entry. Both are reused across all nodes.
struct QuasiScratch {
    sbits: BitSet,
    cand_bits: BitSet,
}

/// Word-parallel twin of [`enumerate`]: all inside-degree and potential
/// counts are AND-popcount sweeps against the dense adjacency rows.
#[allow(clippy::too_many_arguments)]
fn enumerate_bitset(
    g: &LocalGraph,
    s: &mut Vec<u32>,
    cand: &[u32],
    gamma: f64,
    min_size: usize,
    max_size: usize,
    count: &mut u64,
    scratch: &mut QuasiScratch,
) {
    if s.len() >= min_size {
        // is_quasi_clique, word-parallel: indeg_S(v) = |S ∧ Γ(v)|.
        let need = threshold(gamma, s.len() - 1);
        let ok = s
            .iter()
            .all(|&v| scratch.sbits.and_count_words(g.dense_row(v).expect("dense")) >= need);
        if ok {
            *count += 1;
        }
    }
    if s.len() >= max_size {
        return;
    }
    // Same sound upper-bound prune as the list kernel: if some member
    // can never reach the minimum inside-degree bar even with every
    // remaining candidate adjacent to it, the whole subtree is dead.
    if !s.is_empty() {
        let need = threshold(gamma, min_size - 1);
        scratch.cand_bits.clear();
        for &u in cand {
            scratch.cand_bits.insert(u);
        }
        let doomed = s.iter().any(|&v| {
            let row = g.dense_row(v).expect("dense");
            let inside = scratch.sbits.and_count_words(row);
            let potential = scratch.cand_bits.and_count_words(row);
            inside + potential < need
        });
        if doomed {
            return;
        }
    }
    // Size pruning: not enough candidates left to ever reach min_size.
    if s.len() + cand.len() < min_size {
        return;
    }
    for (i, &v) in cand.iter().enumerate() {
        s.push(v);
        scratch.sbits.insert(v);
        enumerate_bitset(g, s, &cand[i + 1..], gamma, min_size, max_size, count, scratch);
        scratch.sbits.remove(v);
        s.pop();
    }
}

fn enumerate(
    g: &LocalGraph,
    s: &mut Vec<u32>,
    cand: &[u32],
    gamma: f64,
    min_size: usize,
    max_size: usize,
    count: &mut u64,
) {
    if s.len() >= min_size && is_quasi_clique(g, s, gamma) {
        *count += 1;
    }
    if s.len() >= max_size {
        return;
    }
    // Sound subtree pruning. The quasi-clique property is not
    // hereditary, but an *upper bound* on any member's final inside-
    // degree is: within any superset of S drawn from S ∪ cand, vertex
    // v has at most indeg_S(v) + |cand ∩ Γ(v)| inside-neighbors, while
    // the requirement is at least ⌈γ·(min_size − 1)⌉ (it only grows
    // with the set size). If some v ∈ S cannot ever reach the minimum
    // bar, no descendant of this node can qualify.
    if !s.is_empty() {
        let need = threshold(gamma, min_size - 1);
        let doomed = s.iter().any(|&v| {
            let inside = s.iter().filter(|&&u| u != v && g.has_edge(u, v)).count();
            let potential = cand.iter().filter(|&&u| g.has_edge(u, v)).count();
            inside + potential < need
        });
        if doomed {
            return;
        }
    }
    // Size pruning: not enough candidates left to ever reach min_size.
    if s.len() + cand.len() < min_size {
        return;
    }
    for (i, &v) in cand.iter().enumerate() {
        s.push(v);
        enumerate(g, s, &cand[i + 1..], gamma, min_size, max_size, count);
        s.pop();
    }
}

/// Brute force over all subsets of the whole graph (for tests):
/// counts all γ-quasi-cliques with size in `[min_size, max_size]`.
pub fn count_quasi_cliques_brute(
    g: &LocalGraph,
    gamma: f64,
    min_size: usize,
    max_size: usize,
) -> u64 {
    let n = g.num_vertices();
    assert!(n <= 20, "brute force is for tiny graphs");
    let mut count = 0u64;
    for mask in 1u32..(1 << n) {
        let s: Vec<u32> = (0..n as u32).filter(|&i| mask & (1 << i) != 0).collect();
        if s.len() >= min_size && s.len() <= max_size && is_quasi_clique(g, &s, gamma) {
            count += 1;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use gthinker_graph::gen;
    use gthinker_graph::graph::Graph;
    use gthinker_graph::subgraph::Subgraph;

    fn to_local(g: &Graph) -> LocalGraph {
        let mut sg = Subgraph::new();
        for v in g.vertices() {
            sg.add_vertex(v, g.neighbors(v).clone());
        }
        sg.to_local()
    }

    #[test]
    fn cliques_are_quasi_cliques() {
        let g = to_local(&gen::complete(5));
        assert!(is_quasi_clique(&g, &[0, 1, 2, 3, 4], 1.0));
        assert!(is_quasi_clique(&g, &[0, 2, 4], 0.9));
    }

    #[test]
    fn sparse_sets_fail_high_gamma() {
        let g = to_local(&gen::cycle(5));
        // In C5, each vertex of the full set has 2 of 4 possible
        // neighbors: γ=0.5 passes, γ=0.6 fails.
        assert!(is_quasi_clique(&g, &[0, 1, 2, 3, 4], 0.5));
        assert!(!is_quasi_clique(&g, &[0, 1, 2, 3, 4], 0.6));
    }

    #[test]
    fn anchored_counts_partition_the_total() {
        // Summing the per-anchor counts must equal the global brute count.
        for seed in 0..5 {
            let g = to_local(&gen::gnp(10, 0.5, seed));
            let brute = count_quasi_cliques_brute(&g, 0.6, 3, 5);
            let sum: u64 = (0..10u32).map(|a| count_quasi_cliques_from(&g, a, 0.6, 3, 5)).sum();
            assert_eq!(sum, brute, "seed {seed}");
        }
    }

    #[test]
    fn two_hop_candidate_rule_is_safe_for_half_gamma() {
        // γ = 0.5 is the edge case of the 2-hop rule from [17].
        for seed in 5..9 {
            let g = to_local(&gen::gnp(9, 0.4, seed));
            let brute = count_quasi_cliques_brute(&g, 0.5, 3, 4);
            let sum: u64 = (0..9u32).map(|a| count_quasi_cliques_from(&g, a, 0.5, 3, 4)).sum();
            assert_eq!(sum, brute, "seed {seed}");
        }
    }

    #[test]
    fn pruning_preserves_counts_at_high_gamma() {
        // High γ and large min_size make the doomed-vertex prune fire
        // constantly; counts must still match brute force exactly.
        for seed in 20..28 {
            let g = to_local(&gen::gnp(11, 0.45, seed));
            for (gamma, min, max) in [(0.9, 4, 6), (1.0, 3, 5), (0.75, 5, 7)] {
                let brute = count_quasi_cliques_brute(&g, gamma, min, max);
                let sum: u64 =
                    (0..11u32).map(|a| count_quasi_cliques_from(&g, a, gamma, min, max)).sum();
                assert_eq!(sum, brute, "seed {seed}, γ {gamma}, sizes {min}..{max}");
            }
        }
    }

    #[test]
    fn bitset_and_list_kernels_agree() {
        for seed in 0..4 {
            let g = gen::gnp(11, 0.5, seed + 70);
            let mut sg = Subgraph::new();
            for v in g.vertices() {
                sg.add_vertex(v, g.neighbors(v).clone());
            }
            let dense = sg.to_local();
            let sparse = sg.to_local_with_threshold(0);
            for (gamma, min, max) in [(0.5, 3usize, 5usize), (0.75, 3, 6), (1.0, 2, 5)] {
                for a in 0..11u32 {
                    assert_eq!(
                        count_quasi_cliques_from(&dense, a, gamma, min, max),
                        count_quasi_cliques_from(&sparse, a, gamma, min, max),
                        "seed {seed} anchor {a} γ {gamma}"
                    );
                }
            }
        }
    }

    #[test]
    fn first_level_split_partitions_each_anchor_count() {
        // Splitting a node into its first-level branches — what the
        // distributed app does under a compute budget — must partition
        // the anchored count exactly.
        for seed in 0..5 {
            let g = to_local(&gen::gnp(11, 0.45, seed + 80));
            for a in 0..11u32 {
                let whole = count_quasi_cliques_from(&g, a, 0.6, 3, 5);
                let cand = quasi_candidates(&g, a);
                let split: u64 = (0..cand.len())
                    .map(|i| {
                        count_quasi_cliques_state(&g, &[a, cand[i]], &cand[i + 1..], 0.6, 3, 5)
                    })
                    .sum();
                assert_eq!(split, whole, "seed {seed} anchor {a}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "γ ≥ 0.5")]
    fn low_gamma_rejected() {
        let g = to_local(&gen::complete(3));
        count_quasi_cliques_from(&g, 0, 0.3, 2, 3);
    }
}
