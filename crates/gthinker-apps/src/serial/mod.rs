//! Serial mining algorithms used inside tasks (and as single-threaded
//! reference baselines).

pub mod clique;
pub mod kplex;
pub mod matching;
pub mod maximal;
pub mod quasi;
pub mod triangle;
