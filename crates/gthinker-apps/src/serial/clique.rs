//! Serial maximum-clique search on a [`LocalGraph`].
//!
//! This is the per-task serial algorithm of Fig. 5 line 12 (the paper
//! cites the branch-and-bound solver of [31]): Bron–Kerbosch-style
//! expansion with a greedy-coloring upper bound, searching only for
//! cliques **strictly larger** than a caller-provided lower bound so
//! that G-thinker's aggregator-broadcast best (`S_max`) prunes the
//! search space across the whole cluster.

use gthinker_graph::subgraph::LocalGraph;

/// Finds the maximum clique of `g` **if** it is larger than
/// `lower_bound`; returns `None` otherwise. Returned vertices are local
/// indices, sorted ascending.
pub fn max_clique_above(g: &LocalGraph, lower_bound: usize) -> Option<Vec<u32>> {
    let n = g.num_vertices();
    if n == 0 || n <= lower_bound {
        return None;
    }
    let mut best: Option<Vec<u32>> = None;
    let mut bound = lower_bound;
    let mut current: Vec<u32> = Vec::new();
    // Initial candidate ordering by descending degree speeds up the
    // first deep dive (better initial bound).
    let mut cand: Vec<u32> = (0..n as u32).collect();
    cand.sort_unstable_by_key(|&v| std::cmp::Reverse(g.degree(v)));
    expand(g, &mut current, cand, &mut bound, &mut best);
    best.map(|mut c| {
        c.sort_unstable();
        c
    })
}

/// Greedy coloring of `cand`; returns candidates reordered by color
/// with each one's color number (1-based). A clique can use at most one
/// vertex per color, so `|current| + color(v) ≤ bound` prunes `v` and
/// everything ordered before it.
fn color_sort(g: &LocalGraph, cand: &[u32]) -> (Vec<u32>, Vec<u32>) {
    let mut color_classes: Vec<Vec<u32>> = Vec::new();
    for &v in cand {
        let mut placed = false;
        for class in &mut color_classes {
            if class.iter().all(|&u| !g.has_edge(u, v)) {
                class.push(v);
                placed = true;
                break;
            }
        }
        if !placed {
            color_classes.push(vec![v]);
        }
    }
    let mut order = Vec::with_capacity(cand.len());
    let mut colors = Vec::with_capacity(cand.len());
    for (i, class) in color_classes.iter().enumerate() {
        for &v in class {
            order.push(v);
            colors.push(i as u32 + 1);
        }
    }
    (order, colors)
}

fn expand(
    g: &LocalGraph,
    current: &mut Vec<u32>,
    cand: Vec<u32>,
    bound: &mut usize,
    best: &mut Option<Vec<u32>>,
) {
    if cand.is_empty() {
        if current.len() > *bound {
            *bound = current.len();
            *best = Some(current.clone());
        }
        return;
    }
    let (order, colors) = color_sort(g, &cand);
    // Visit highest-color vertices first; once the bound check fails it
    // fails for every earlier vertex too.
    for i in (0..order.len()).rev() {
        let v = order[i];
        if current.len() + colors[i] as usize <= *bound {
            return;
        }
        current.push(v);
        let new_cand: Vec<u32> = order[..i]
            .iter()
            .copied()
            .filter(|&u| g.has_edge(u, v))
            .collect();
        expand(g, current, new_cand, bound, best);
        current.pop();
    }
}

/// Brute-force maximum clique by subset enumeration — O(2ⁿ·n²), for
/// cross-checking the solver in tests (n ≤ ~20).
pub fn max_clique_brute(g: &LocalGraph) -> Vec<u32> {
    let n = g.num_vertices();
    assert!(n <= 24, "brute force is for tiny graphs only");
    let mut best: Vec<u32> = Vec::new();
    for mask in 0u32..(1 << n) {
        let members: Vec<u32> = (0..n as u32).filter(|&i| mask & (1 << i) != 0).collect();
        if members.len() <= best.len() {
            continue;
        }
        let is_clique = members
            .iter()
            .enumerate()
            .all(|(i, &u)| members[i + 1..].iter().all(|&v| g.has_edge(u, v)));
        if is_clique {
            best = members;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use gthinker_graph::adj::AdjList;
    use gthinker_graph::gen;
    use gthinker_graph::graph::Graph;
    use gthinker_graph::ids::VertexId;
    use gthinker_graph::subgraph::Subgraph;

    fn to_local(g: &Graph) -> LocalGraph {
        let mut sg = Subgraph::new();
        for v in g.vertices() {
            sg.add_vertex(v, g.neighbors(v).clone());
        }
        sg.to_local()
    }

    #[test]
    fn complete_graph_is_its_own_max_clique() {
        let g = to_local(&gen::complete(7));
        let c = max_clique_above(&g, 0).unwrap();
        assert_eq!(c.len(), 7);
    }

    #[test]
    fn cycle_max_clique_is_an_edge() {
        let g = to_local(&gen::cycle(6));
        let c = max_clique_above(&g, 0).unwrap();
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn lower_bound_prunes_everything() {
        let g = to_local(&gen::complete(5));
        assert!(max_clique_above(&g, 5).is_none(), "no clique larger than 5 exists");
        assert_eq!(max_clique_above(&g, 4).unwrap().len(), 5);
    }

    #[test]
    fn empty_and_singleton() {
        let g = to_local(&Graph::with_vertices(0));
        assert!(max_clique_above(&g, 0).is_none());
        let g1 = to_local(&Graph::with_vertices(1));
        assert_eq!(max_clique_above(&g1, 0).unwrap(), vec![0]);
    }

    #[test]
    fn returned_vertices_form_a_clique() {
        let g = to_local(&gen::gnp(40, 0.4, 11));
        let c = max_clique_above(&g, 0).unwrap();
        for i in 0..c.len() {
            for j in (i + 1)..c.len() {
                assert!(g.has_edge(c[i], c[j]));
            }
        }
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        for seed in 0..12 {
            let n = 14;
            let p = 0.2 + 0.05 * (seed % 8) as f64;
            let g = to_local(&gen::gnp(n, p, seed));
            let brute = max_clique_brute(&g);
            let fast = max_clique_above(&g, 0).unwrap();
            assert_eq!(fast.len(), brute.len(), "seed {seed}: {fast:?} vs {brute:?}");
        }
    }

    #[test]
    fn finds_planted_clique() {
        let base = gen::gnp(120, 0.05, 3);
        let (g, members) = gen::plant_clique(&base, 10, 4);
        let local = to_local(&g);
        let c = max_clique_above(&local, 0).unwrap();
        assert!(c.len() >= 10);
        // The found clique should be exactly the planted one here
        // (background G(120, 0.05) has tiny cliques).
        let found: Vec<VertexId> = local.to_global(&c);
        assert_eq!(found, members);
    }

    #[test]
    fn oriented_subgraph_input_works() {
        // Tasks store oriented (Γ_>) lists; to_local symmetrizes.
        let mut sg = Subgraph::new();
        sg.add_vertex(VertexId(1), AdjList::from_unsorted(vec![VertexId(2), VertexId(3)]));
        sg.add_vertex(VertexId(2), AdjList::from_unsorted(vec![VertexId(3)]));
        sg.add_vertex(VertexId(3), AdjList::new());
        let local = sg.to_local();
        assert_eq!(max_clique_above(&local, 0).unwrap().len(), 3);
    }
}
