//! Serial maximum-clique search on a [`LocalGraph`].
//!
//! This is the per-task serial algorithm of Fig. 5 line 12 (the paper
//! cites the branch-and-bound solver of [31]): Bron–Kerbosch-style
//! expansion with a greedy-coloring upper bound, searching only for
//! cliques **strictly larger** than a caller-provided lower bound so
//! that G-thinker's aggregator-broadcast best (`S_max`) prunes the
//! search space across the whole cluster.
//!
//! Two interchangeable kernels implement the search (see DESIGN.md
//! §"Kernel selection"):
//!
//! * [`max_clique_above_bitset`] — BBMC style: candidate sets are
//!   [`BitSet`]s, greedy coloring removes a whole color class per
//!   `class ∧ ¬Γ(v)` sweep, and child candidates are one AND sweep
//!   (`new_cand = cand ∧ Γ(v)`). Per-depth scratch is reused across
//!   the entire recursion, so the hot path never allocates.
//! * [`max_clique_above_lists`] — the sorted-list fallback for
//!   subgraphs too large for the dense adjacency matrix.
//!
//! [`max_clique_above`] dispatches on [`LocalGraph::is_dense`].

use gthinker_graph::bitset::BitSet;
use gthinker_graph::subgraph::LocalGraph;

/// Finds the maximum clique of `g` **if** it is larger than
/// `lower_bound`; returns `None` otherwise. Returned vertices are local
/// indices, sorted ascending.
pub fn max_clique_above(g: &LocalGraph, lower_bound: usize) -> Option<Vec<u32>> {
    if g.is_dense() {
        max_clique_above_bitset(g, lower_bound)
    } else {
        max_clique_above_lists(g, lower_bound)
    }
}

// ---------------------------------------------------------------------------
// Word-parallel kernel (BBMC).
// ---------------------------------------------------------------------------

/// Per-depth recursion scratch: the candidate set entering this depth
/// plus the coloring workspace. Allocated once per depth, reused by
/// every branch-and-bound node at that depth.
struct Level {
    cand: BitSet,
    uncolored: BitSet,
    class: BitSet,
    order: Vec<u32>,
    colors: Vec<u32>,
}

impl Level {
    fn new(n: usize) -> Self {
        Level {
            cand: BitSet::new(n),
            uncolored: BitSet::new(n),
            class: BitSet::new(n),
            order: Vec::new(),
            colors: Vec::new(),
        }
    }
}

/// BBMC-style maximum clique over the dense adjacency bit matrix.
///
/// # Panics
/// Panics if `g` has no dense matrix (`!g.is_dense()`).
pub fn max_clique_above_bitset(g: &LocalGraph, lower_bound: usize) -> Option<Vec<u32>> {
    let n = g.num_vertices();
    if n == 0 || n <= lower_bound {
        return None;
    }
    assert!(g.is_dense(), "bitset kernel needs the dense adjacency matrix");
    let mut scratch = vec![Level::new(n)];
    scratch[0].cand.set_all();
    let mut best: Option<Vec<u32>> = None;
    let mut bound = lower_bound;
    let mut current: Vec<u32> = Vec::new();
    expand_bitset(g, 0, &mut current, &mut bound, &mut best, &mut scratch);
    best.map(|mut c| {
        c.sort_unstable();
        c
    })
}

/// Expands one search node whose candidate set is `scratch[depth].cand`.
fn expand_bitset(
    g: &LocalGraph,
    depth: usize,
    current: &mut Vec<u32>,
    bound: &mut usize,
    best: &mut Option<Vec<u32>>,
    scratch: &mut Vec<Level>,
) {
    let n = g.num_vertices();
    if scratch[depth].cand.is_empty() {
        if current.len() > *bound {
            *bound = current.len();
            *best = Some(current.clone());
        }
        return;
    }
    // Greedy coloring, one color class per pass: vertices of a class are
    // pairwise non-adjacent, so a clique uses at most one per class and
    // `|current| + color(v)` bounds any clique through v and the
    // vertices ordered before it. Peeling a class is word-parallel:
    // after taking v, `class ∧= ¬Γ(v)` discards all its neighbors.
    {
        let Level { cand, uncolored, class, order, colors } = &mut scratch[depth];
        order.clear();
        colors.clear();
        uncolored.copy_from(cand);
        let mut color = 0u32;
        while let Some(seed) = uncolored.first_set() {
            color += 1;
            class.copy_from(uncolored);
            let mut v = seed;
            loop {
                class.remove(v);
                uncolored.remove(v);
                order.push(v);
                colors.push(color);
                class.and_not_assign_words(g.dense_row(v).expect("dense"));
                match class.first_set() {
                    Some(next) => v = next,
                    None => break,
                }
            }
        }
    }
    if scratch.len() <= depth + 1 {
        scratch.push(Level::new(n));
    }
    // Visit highest-color vertices first; once the bound check fails it
    // fails for every earlier vertex too.
    for i in (0..scratch[depth].order.len()).rev() {
        let v = scratch[depth].order[i];
        if current.len() + scratch[depth].colors[i] as usize <= *bound {
            return;
        }
        // cand shrinks to the not-yet-visited prefix; the child's
        // candidates are that prefix ∧ Γ(v) in one AND sweep.
        let (lo, hi) = scratch.split_at_mut(depth + 1);
        let lvl = &mut lo[depth];
        let child = &mut hi[0];
        lvl.cand.remove(v);
        child.cand.assign_and_words(&lvl.cand, g.dense_row(v).expect("dense"));
        current.push(v);
        expand_bitset(g, depth + 1, current, bound, best, scratch);
        current.pop();
    }
}

// ---------------------------------------------------------------------------
// Sorted-list fallback kernel.
// ---------------------------------------------------------------------------

/// Sorted-list maximum clique: the fallback kernel for subgraphs above
/// the dense threshold. Same contract as [`max_clique_above`].
pub fn max_clique_above_lists(g: &LocalGraph, lower_bound: usize) -> Option<Vec<u32>> {
    let n = g.num_vertices();
    if n == 0 || n <= lower_bound {
        return None;
    }
    let mut best: Option<Vec<u32>> = None;
    let mut bound = lower_bound;
    let mut current: Vec<u32> = Vec::new();
    // Initial candidate ordering by descending degree speeds up the
    // first deep dive (better initial bound).
    let mut cand: Vec<u32> = (0..n as u32).collect();
    cand.sort_unstable_by_key(|&v| std::cmp::Reverse(g.degree(v)));
    expand_lists(g, &mut current, cand, &mut bound, &mut best);
    best.map(|mut c| {
        c.sort_unstable();
        c
    })
}

/// Greedy coloring of `cand`; returns candidates reordered by color
/// with each one's color number (1-based). A clique can use at most one
/// vertex per color, so `|current| + color(v) ≤ bound` prunes `v` and
/// everything ordered before it.
fn color_sort(g: &LocalGraph, cand: &[u32]) -> (Vec<u32>, Vec<u32>) {
    let mut color_classes: Vec<Vec<u32>> = Vec::new();
    for &v in cand {
        let mut placed = false;
        for class in &mut color_classes {
            if class.iter().all(|&u| !g.has_edge(u, v)) {
                class.push(v);
                placed = true;
                break;
            }
        }
        if !placed {
            color_classes.push(vec![v]);
        }
    }
    let mut order = Vec::with_capacity(cand.len());
    let mut colors = Vec::with_capacity(cand.len());
    for (i, class) in color_classes.iter().enumerate() {
        for &v in class {
            order.push(v);
            colors.push(i as u32 + 1);
        }
    }
    (order, colors)
}

fn expand_lists(
    g: &LocalGraph,
    current: &mut Vec<u32>,
    cand: Vec<u32>,
    bound: &mut usize,
    best: &mut Option<Vec<u32>>,
) {
    if cand.is_empty() {
        if current.len() > *bound {
            *bound = current.len();
            *best = Some(current.clone());
        }
        return;
    }
    let (order, colors) = color_sort(g, &cand);
    // Visit highest-color vertices first; once the bound check fails it
    // fails for every earlier vertex too.
    for i in (0..order.len()).rev() {
        let v = order[i];
        if current.len() + colors[i] as usize <= *bound {
            return;
        }
        current.push(v);
        let new_cand: Vec<u32> = order[..i].iter().copied().filter(|&u| g.has_edge(u, v)).collect();
        expand_lists(g, current, new_cand, bound, best);
        current.pop();
    }
}

/// Brute-force maximum clique by subset enumeration — O(2ⁿ·n²), for
/// cross-checking the solver in tests (n ≤ ~20).
pub fn max_clique_brute(g: &LocalGraph) -> Vec<u32> {
    let n = g.num_vertices();
    assert!(n <= 24, "brute force is for tiny graphs only");
    let mut best: Vec<u32> = Vec::new();
    for mask in 0u32..(1 << n) {
        let members: Vec<u32> = (0..n as u32).filter(|&i| mask & (1 << i) != 0).collect();
        if members.len() <= best.len() {
            continue;
        }
        let is_clique = members
            .iter()
            .enumerate()
            .all(|(i, &u)| members[i + 1..].iter().all(|&v| g.has_edge(u, v)));
        if is_clique {
            best = members;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use gthinker_graph::adj::AdjList;
    use gthinker_graph::gen;
    use gthinker_graph::graph::Graph;
    use gthinker_graph::ids::VertexId;
    use gthinker_graph::subgraph::Subgraph;

    fn subgraph_of(g: &Graph) -> Subgraph {
        let mut sg = Subgraph::new();
        for v in g.vertices() {
            sg.add_vertex(v, g.neighbors(v).clone());
        }
        sg
    }

    fn to_local(g: &Graph) -> LocalGraph {
        subgraph_of(g).to_local()
    }

    #[test]
    fn complete_graph_is_its_own_max_clique() {
        let g = to_local(&gen::complete(7));
        let c = max_clique_above(&g, 0).unwrap();
        assert_eq!(c.len(), 7);
    }

    #[test]
    fn cycle_max_clique_is_an_edge() {
        let g = to_local(&gen::cycle(6));
        let c = max_clique_above(&g, 0).unwrap();
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn lower_bound_prunes_everything() {
        let g = to_local(&gen::complete(5));
        assert!(max_clique_above(&g, 5).is_none(), "no clique larger than 5 exists");
        assert_eq!(max_clique_above(&g, 4).unwrap().len(), 5);
    }

    #[test]
    fn empty_and_singleton() {
        let g = to_local(&Graph::with_vertices(0));
        assert!(max_clique_above(&g, 0).is_none());
        let g1 = to_local(&Graph::with_vertices(1));
        assert_eq!(max_clique_above(&g1, 0).unwrap(), vec![0]);
    }

    #[test]
    fn returned_vertices_form_a_clique() {
        let g = to_local(&gen::gnp(40, 0.4, 11));
        assert!(g.is_dense(), "n=40 uses the bitset kernel");
        let c = max_clique_above(&g, 0).unwrap();
        for i in 0..c.len() {
            for j in (i + 1)..c.len() {
                assert!(g.has_edge(c[i], c[j]));
            }
        }
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        for seed in 0..12 {
            let n = 14;
            let p = 0.2 + 0.05 * (seed % 8) as f64;
            let g = to_local(&gen::gnp(n, p, seed));
            let brute = max_clique_brute(&g);
            let fast = max_clique_above(&g, 0).unwrap();
            assert_eq!(fast.len(), brute.len(), "seed {seed}: {fast:?} vs {brute:?}");
        }
    }

    #[test]
    fn bitset_and_list_kernels_agree() {
        for seed in 0..10 {
            let graph = gen::gnp(30, 0.45, seed);
            let sg = subgraph_of(&graph);
            let dense = sg.to_local();
            let sparse = sg.to_local_with_threshold(0);
            for lb in [0usize, 2, 4] {
                let a = max_clique_above_bitset(&dense, lb).map(|c| c.len());
                let b = max_clique_above_lists(&sparse, lb).map(|c| c.len());
                assert_eq!(a, b, "seed {seed} lb {lb}");
            }
        }
    }

    #[test]
    fn finds_planted_clique() {
        let base = gen::gnp(120, 0.05, 3);
        let (g, members) = gen::plant_clique(&base, 10, 4);
        let local = to_local(&g);
        let c = max_clique_above(&local, 0).unwrap();
        assert!(c.len() >= 10);
        // The found clique should be exactly the planted one here
        // (background G(120, 0.05) has tiny cliques).
        let found: Vec<VertexId> = local.to_global(&c);
        assert_eq!(found, members);
    }

    #[test]
    fn oriented_subgraph_input_works() {
        // Tasks store oriented (Γ_>) lists; to_local symmetrizes.
        let mut sg = Subgraph::new();
        sg.add_vertex(VertexId(1), AdjList::from_unsorted(vec![VertexId(2), VertexId(3)]));
        sg.add_vertex(VertexId(2), AdjList::from_unsorted(vec![VertexId(3)]));
        sg.add_vertex(VertexId(3), AdjList::new());
        let local = sg.to_local();
        assert_eq!(max_clique_above(&local, 0).unwrap().len(), 3);
    }
}
