//! Property-based tests for the wire codec: every [`Message`] variant
//! round-trips through its binary encoding, `encoded_len` is exact,
//! and malformed or truncated input decodes to a clean [`CodecError`]
//! (or a [`frame`] error) instead of panicking.

use gthinker_graph::adj::AdjList;
use gthinker_graph::ids::{VertexId, WorkerId};
use gthinker_net::frame;
use gthinker_net::message::Message;
use gthinker_task::codec::{from_bytes, to_bytes};
use proptest::prelude::*;

/// Any vertex ID, including the extremes.
fn any_vertex() -> impl Strategy<Value = VertexId> {
    prop_oneof![any::<u32>().prop_map(VertexId), Just(VertexId(0)), Just(VertexId(u32::MAX))]
}

fn any_worker() -> impl Strategy<Value = WorkerId> {
    any::<u16>().prop_map(WorkerId)
}

fn any_adj() -> impl Strategy<Value = AdjList> {
    proptest::collection::vec(any_vertex(), 0..12).prop_map(AdjList::from_unsorted)
}

/// A strategy producing every one of the 20 `Message` variants,
/// including empty batches and extreme field values.
fn any_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        (any_worker(), proptest::collection::vec(any_vertex(), 0..16), any::<u64>()).prop_map(
            |(from, vertices, sent_nanos)| Message::VertexRequest { from, vertices, sent_nanos }
        ),
        (proptest::collection::vec((any_vertex(), any_adj()), 0..8), any::<u64>())
            .prop_map(|(entries, req_nanos)| Message::VertexResponse { entries, req_nanos }),
        (any_worker(), any::<u64>(), proptest::collection::vec(any::<u8>(), 0..64))
            .prop_map(|(victim, seq, bytes)| Message::StealBatch { victim, seq, bytes }),
        (any_worker(), any::<u64>(), any::<bool>(), any::<u16>(), any::<u32>()).prop_map(
            |(worker, remaining, idle, idle_compers, steal_inflight)| Message::Progress {
                worker,
                remaining,
                idle,
                idle_compers,
                steal_inflight
            }
        ),
        (any_worker(), any_worker(), any::<u32>()).prop_map(|(victim, thief, max_tasks)| {
            Message::StealRequest { victim, thief, max_tasks }
        }),
        any::<u32>().prop_map(|sent| Message::StealExecuted { sent }),
        Just(Message::StealDone),
        any::<u64>().prop_map(|seq| Message::StealAck { seq }),
        (any_worker(), proptest::collection::vec(any::<u8>(), 0..64), any::<bool>()).prop_map(
            |(worker, payload, is_final)| Message::AggregatorSync { worker, payload, is_final }
        ),
        proptest::collection::vec(any::<u8>(), 0..64)
            .prop_map(|payload| Message::AggregatorGlobal { payload }),
        Just(Message::Terminate),
        Just(Message::Suspend),
        any_worker().prop_map(|worker| Message::SuspendDone { worker }),
        Just(Message::Crash),
        (any_worker(), proptest::collection::vec(any::<u8>(), 0..64), any::<bool>()).prop_map(
            |(worker, payload, is_final)| Message::MetricsReport { worker, payload, is_final }
        ),
        (any_worker(), any::<u64>())
            .prop_map(|(worker, nonce)| Message::ClockPing { worker, nonce }),
        (any::<u64>(), any::<u64>()).prop_map(|(nonce, nanos)| Message::ClockPong { nonce, nanos }),
        any_worker().prop_map(|worker| Message::PeerDown { worker }),
        any_worker().prop_map(|worker| Message::Abort { worker }),
        (any::<bool>(), any::<u64>(), any::<u64>())
            .prop_map(|(resume, epoch, attempt)| Message::Resume { resume, epoch, attempt }),
    ]
}

proptest! {
    /// Encode → decode is the identity for every variant.
    #[test]
    fn message_round_trips(msg in any_message()) {
        let bytes = to_bytes(&msg);
        let back: Message = from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, msg);
    }

    /// `encoded_len` is exactly the serialized size — the byte
    /// accounting can never drift from the wire format.
    #[test]
    fn encoded_len_is_exact(msg in any_message()) {
        prop_assert_eq!(msg.encoded_len(), to_bytes(&msg).len());
    }

    /// Any strict prefix of a valid encoding fails cleanly.
    #[test]
    fn truncation_is_a_clean_error(msg in any_message(), frac in 0.0f64..1.0) {
        let bytes = to_bytes(&msg);
        let cut = ((bytes.len() as f64) * frac) as usize;
        if cut < bytes.len() {
            prop_assert!(from_bytes::<Message>(&bytes[..cut]).is_err());
        }
    }

    /// Arbitrary garbage never panics the decoder.
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = from_bytes::<Message>(&bytes);
    }

    /// Sealed frames round-trip, and flipping any byte is detected
    /// (magic, version, reserved, length or CRC error — never a panic
    /// and never silent acceptance of a corrupt payload).
    #[test]
    fn frame_corruption_is_detected(
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        flip in any::<usize>(),
        xor in 1u8..,
    ) {
        let sealed = frame::seal(&payload);
        prop_assert_eq!(frame::open(&sealed).unwrap(), &payload[..]);
        let mut bad = sealed.clone();
        let i = flip % bad.len();
        bad[i] ^= xor;
        prop_assert!(frame::open(&bad).is_err(), "flipped byte {} went undetected", i);
    }
}
