//! Deterministic tests for the TCP backend: mesh rendezvous, framed
//! delivery, byte accounting, fault injection parity with the sim
//! router, and descriptive rejection of incompatible peers.

use gthinker_graph::ids::{VertexId, WorkerId};
use gthinker_net::fault::FaultConfig;
use gthinker_net::message::Message;
use gthinker_net::router::{LinkConfig, Router};
use gthinker_net::tcp::{ClusterManifest, MeshAcceptor, TcpTransport};
use gthinker_net::transport::{NetEndpoint, Transport};
use std::io::{Read, Write};
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

const RECV: Duration = Duration::from_secs(5);
const RENDEZVOUS: Duration = Duration::from_secs(10);

/// Brings up an n-worker loopback mesh, one thread per worker, and
/// runs `f(endpoint)` on each; returns the per-worker results.
fn with_mesh<R: Send + 'static>(
    n: usize,
    fault: FaultConfig,
    f: impl Fn(Box<dyn NetEndpoint>) -> R + Send + Sync + 'static,
) -> Vec<R> {
    let (manifest, listeners) = ClusterManifest::loopback(n).expect("bind loopback");
    let f = std::sync::Arc::new(f);
    let handles: Vec<_> = listeners
        .into_iter()
        .enumerate()
        .map(|(w, listener)| {
            let manifest = manifest.clone();
            let fault = fault.clone();
            let f = std::sync::Arc::clone(&f);
            std::thread::spawn(move || {
                let me = WorkerId(w as u16);
                let mut t = TcpTransport::connect_on(&manifest, me, fault, RENDEZVOUS, listener)
                    .expect("rendezvous");
                assert_eq!(Transport::num_workers(&t), n);
                assert_eq!(t.hosted(), vec![me]);
                f(t.take_endpoint(me))
            })
        })
        .collect();
    handles.into_iter().map(|h| h.join().expect("worker thread")).collect()
}

fn pull(from: u16, v: u32) -> Message {
    Message::VertexRequest { from: WorkerId(from), vertices: vec![VertexId(v)], sent_nanos: 0 }
}

#[test]
fn mesh_delivers_across_processes_and_counts_bytes() {
    let counters = with_mesh(3, FaultConfig::default(), |net| {
        let me = net.id().index() as u16;
        // Everyone sends one pull to every peer, tagged by sender.
        for w in 0..3u16 {
            if w != me {
                net.send(WorkerId(w), pull(me, 1000 + me as u32));
            }
        }
        let mut seen = Vec::new();
        for _ in 0..2 {
            match net.recv_timeout(RECV).expect("peer message") {
                Message::VertexRequest { from, vertices, .. } => {
                    seen.push((from.index(), vertices[0].0))
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        seen.sort_unstable();
        let s = net.stats();
        (seen, s.bytes_sent.load(Ordering::Relaxed), s.bytes_received.load(Ordering::Relaxed))
    });
    for (w, (seen, sent, received)) in counters.into_iter().enumerate() {
        let expected: Vec<_> = (0..3).filter(|&p| p != w).map(|p| (p, 1000 + p as u32)).collect();
        assert_eq!(seen, expected, "worker {w} saw the wrong messages");
        assert!(sent > 0 && received > 0, "worker {w}: sent {sent} received {received}");
    }
}

#[test]
fn self_sends_and_broadcasts_loop_back() {
    let got = with_mesh(2, FaultConfig::default(), |net| {
        let me = net.id();
        net.send(me, pull(me.index() as u16, 7));
        let local = net.recv_timeout(RECV).expect("self-send");
        net.broadcast(&Message::Terminate);
        let remote = net.recv_timeout(RECV).expect("peer broadcast");
        (local, remote)
    });
    for (w, (local, remote)) in got.into_iter().enumerate() {
        assert!(matches!(local, Message::VertexRequest { .. }), "worker {w}: {local:?}");
        assert_eq!(remote, Message::Terminate, "worker {w}");
    }
}

/// Crash schedules are accepted on the TCP backend (they abort the
/// victim process for real). A non-victim — or a victim whose mark is
/// far away — connects and exchanges traffic normally. The mark here
/// is deliberately unreachable: the victim endpoint lives in *this*
/// process, and a fired schedule would abort the test runner.
#[test]
fn crash_schedules_are_accepted_and_dormant_until_their_mark() {
    let fault = FaultConfig {
        crash: Some(gthinker_net::fault::CrashSchedule {
            worker: WorkerId(1),
            after_messages: Some(1_000_000),
            after: None,
        }),
        ..FaultConfig::default()
    };
    let got = with_mesh(2, fault, |net| {
        let me = net.id().index() as u16;
        net.send(WorkerId(1 - me), pull(me, 5));
        net.recv_timeout(RECV)
    });
    assert!(got.iter().all(|m| matches!(m, Some(Message::VertexRequest { .. }))), "{got:?}");
}

/// With `dup_prob = 1` every data-plane message arrives exactly twice
/// (sent once on the wire model: counters record one send), and the
/// control plane is never duplicated.
#[test]
fn duplicates_are_delivered_twice() {
    let fault = FaultConfig { seed: 9, dup_prob: 1.0, ..FaultConfig::default() };
    let got = with_mesh(2, fault, |net| {
        let me = net.id().index();
        if me == 0 {
            net.send(WorkerId(1), pull(0, 42));
            net.send(WorkerId(1), Message::Terminate);
        }
        if me != 1 {
            return (0, 0, 0);
        }
        let mut pulls = 0;
        let mut terminates = 0;
        while let Some(m) = net.recv_timeout(RECV) {
            match m {
                Message::VertexRequest { .. } => pulls += 1,
                Message::Terminate => terminates += 1,
                other => panic!("unexpected {other:?}"),
            }
            if terminates == 1 && pulls == 2 {
                break;
            }
        }
        // Duplication is attributed at the sender, so worker 1's own
        // counters are clean.
        let dups = net.fault_stats().expect("faults on").duplicated.load(Ordering::Relaxed);
        (pulls, terminates, dups)
    });
    assert_eq!(got[1], (2, 1, 0));
}

/// With `drop_prob = 1` no data-plane message arrives, but control
/// messages (Terminate) still do — matching the sim router's contract.
#[test]
fn drops_lose_data_but_not_control() {
    let fault = FaultConfig { seed: 5, drop_prob: 1.0, ..FaultConfig::default() };
    let got = with_mesh(2, fault, |net| {
        let me = net.id().index();
        if me == 0 {
            for i in 0..10 {
                net.send(WorkerId(1), pull(0, i));
            }
            net.send(WorkerId(1), Message::Terminate);
            return net.fault_stats().expect("faults on").dropped.load(Ordering::Relaxed);
        }
        let mut data = 0u64;
        loop {
            match net.recv_timeout(RECV).expect("terminate must arrive") {
                Message::Terminate => break,
                _ => data += 1,
            }
        }
        data
    });
    assert_eq!(got[0], 10, "sender-side drop counter");
    assert_eq!(got[1], 0, "no data-plane message may survive drop_prob=1");
}

/// The same seeded fault config makes byte-identical drop decisions on
/// the TCP backend and the simulated router: send the same traffic
/// pattern through both and compare what survives.
#[test]
fn fault_decisions_match_the_sim_router() {
    let fault = FaultConfig { seed: 1234, drop_prob: 0.4, ..FaultConfig::default() };

    // Sim: worker 0 sends 40 pulls then Terminate to worker 1.
    let mut router = Router::with_faults(2, LinkConfig::INSTANT, fault.clone());
    let h1 = router.take_handle(WorkerId(1));
    let h0 = router.take_handle(WorkerId(0));
    for i in 0..40 {
        h0.send(WorkerId(1), pull(0, i));
    }
    h0.send(WorkerId(1), Message::Terminate);
    let mut sim_survivors = Vec::new();
    loop {
        match h1.recv_timeout(RECV).expect("sim terminate") {
            Message::Terminate => break,
            Message::VertexRequest { vertices, .. } => sim_survivors.push(vertices[0].0),
            other => panic!("unexpected {other:?}"),
        }
    }

    // TCP: identical traffic, identical seed.
    let got = with_mesh(2, fault, |net| {
        if net.id().index() == 0 {
            for i in 0..40 {
                net.send(WorkerId(1), pull(0, i));
            }
            net.send(WorkerId(1), Message::Terminate);
            return Vec::new();
        }
        let mut survivors = Vec::new();
        loop {
            match net.recv_timeout(RECV).expect("tcp terminate") {
                Message::Terminate => break,
                Message::VertexRequest { vertices, .. } => survivors.push(vertices[0].0),
                other => panic!("unexpected {other:?}"),
            }
        }
        survivors
    });

    assert!(!sim_survivors.is_empty() && sim_survivors.len() < 40, "seed too extreme");
    assert_eq!(got[1], sim_survivors, "same seed must drop the same messages on both backends");
}

/// A peer speaking a different wire version is rejected at rendezvous
/// with a descriptive error, not a hang or a garbled mesh.
#[test]
fn version_mismatch_fails_descriptively() {
    let (manifest, mut listeners) = ClusterManifest::loopback(2).expect("bind");
    let addr0 = manifest.addr(WorkerId(0));
    let listener0 = listeners.remove(0);
    let join = std::thread::spawn(move || {
        TcpTransport::connect_on(
            &manifest,
            WorkerId(0),
            FaultConfig::default(),
            Duration::from_secs(5),
            listener0,
        )
    });
    // Pose as worker 1 but with a bumped wire version: a hand-built
    // frame whose version field is WIRE_VERSION + 1.
    let mut stream = std::net::TcpStream::connect(addr0).expect("dial worker 0");
    // me=1, n=2 (little-endian u16s), generation=0 (u32).
    let payload = [1u8, 0, 2, 0, 0, 0, 0, 0];
    let mut bad = Vec::new();
    bad.extend_from_slice(&u32::from_le_bytes(*b"GTKW").to_le_bytes());
    bad.extend_from_slice(&(gthinker_net::frame::WIRE_VERSION + 1).to_le_bytes());
    bad.extend_from_slice(&0u16.to_le_bytes());
    bad.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    bad.extend_from_slice(&payload);
    bad.extend_from_slice(&gthinker_task::codec::crc32(&payload).to_le_bytes());
    stream.write_all(&bad).expect("write bad hello");
    let err = join.join().expect("thread").expect_err("mismatched peer must be rejected");
    let msg = err.to_string();
    assert!(msg.contains("version"), "error should name the version mismatch: {msg}");
}

/// Dropping one side of a loopback link surfaces as a `PeerDown` event
/// on the surviving side's inbox and bumps its per-peer counter — a
/// dead peer is an event the receiver reacts to, not a silently
/// vanished reader thread.
#[test]
fn dropping_a_link_surfaces_peer_down() {
    let got = with_mesh(2, FaultConfig::default(), |net| {
        if net.id().index() == 0 {
            // Returning drops the endpoint: the OS closes its sockets,
            // exactly like a process death.
            return 0;
        }
        match net.recv_timeout(RECV) {
            Some(Message::PeerDown { worker }) => {
                assert_eq!(worker, WorkerId(0));
                net.stats().peer_downs_total()
            }
            other => panic!("expected PeerDown, got {other:?}"),
        }
    });
    assert!(got[1] >= 1, "survivor's peer_downs counter: {}", got[1]);
}

/// Hand-builds a valid hello frame claiming worker 1 of 2 at the given
/// generation, and dials it at `addr`.
fn dial_as_worker_1(addr: std::net::SocketAddr, generation: u32) -> std::net::TcpStream {
    let mut payload = vec![1u8, 0, 2, 0];
    payload.extend_from_slice(&generation.to_le_bytes());
    let mut s = std::net::TcpStream::connect(addr).expect("dial");
    s.write_all(&gthinker_net::frame::seal(&payload)).expect("write hello");
    s
}

/// The acceptor's generation gate: a hello below the highest
/// generation seen for that peer is a frame from a pre-crash socket —
/// the connection is closed before it can deliver anything, and the
/// rejection is counted. Equal-or-newer generations are accepted, and
/// a second accepted link is flagged as a rejoin.
#[test]
fn stale_generation_hellos_are_rejected() {
    let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).expect("bind");
    let addr = listener.local_addr().expect("addr");
    let acceptor = MeshAcceptor::new(listener, WorkerId(0), 2).expect("acceptor");

    let _live5 = dial_as_worker_1(addr, 5);
    let (generation, _stream5, rejoin) =
        acceptor.take_pending(1, Instant::now() + RECV).expect("gen-5 link");
    assert_eq!(generation, 5);
    assert!(!rejoin, "first link from a peer is not a rejoin");

    // Generation 3 < 5: the stale link must be closed, not parked. Our
    // end observes the close as EOF (or a reset) on a blocking read —
    // event-driven, no sleep.
    let mut stale = dial_as_worker_1(addr, 3);
    stale.set_read_timeout(Some(RECV)).expect("read timeout");
    let mut buf = [0u8; 1];
    let n = stale.read(&mut buf).unwrap_or(0);
    assert_eq!(n, 0, "stale-generation link must be closed without traffic");
    assert_eq!(acceptor.stale_rejections(), 1);

    // Generation 6 ≥ 5: accepted, and it is the peer's second accepted
    // link — a rejoin.
    let _live6 = dial_as_worker_1(addr, 6);
    let (generation, _stream6, rejoin) =
        acceptor.take_pending(1, Instant::now() + RECV).expect("gen-6 link");
    assert_eq!(generation, 6);
    assert!(rejoin, "second accepted link is a rejoin");
}

/// Full re-rendezvous through persistent acceptors: worker 1 tears its
/// endpoint down mid-mesh (as its process death would), the survivor
/// sees `PeerDown`, and both sides rendezvous again — worker 1 with a
/// bumped generation — after which traffic flows on the new links.
#[test]
fn rejoin_re_forms_the_mesh_with_a_bumped_generation() {
    let (manifest, mut listeners) = ClusterManifest::loopback(2).expect("bind");
    let l1 = listeners.pop().expect("two listeners");
    let l0 = listeners.pop().expect("two listeners");

    let m0 = manifest.clone();
    let survivor = std::thread::spawn(move || {
        let acceptor = MeshAcceptor::new(l0, WorkerId(0), 2).expect("acceptor");
        let fault = FaultConfig::default();
        let mut t =
            TcpTransport::connect_via(&acceptor, &m0, WorkerId(0), fault.clone(), RENDEZVOUS, 0)
                .expect("attempt 1");
        let net = t.take_endpoint(WorkerId(0));
        // Per-link FIFO: the peer's last message arrives before the EOF
        // its death produces.
        assert!(matches!(net.recv_timeout(RECV), Some(Message::VertexRequest { .. })));
        match net.recv_timeout(RECV) {
            Some(Message::PeerDown { worker }) => assert_eq!(worker, WorkerId(1)),
            other => panic!("expected PeerDown, got {other:?}"),
        }
        drop(net);
        drop(t);
        // Attempt 2 through the same acceptor: the respawned peer's
        // fresh link is waiting (or arrives during the rendezvous).
        let mut t = TcpTransport::connect_via(&acceptor, &m0, WorkerId(0), fault, RENDEZVOUS, 0)
            .expect("attempt 2");
        let net = t.take_endpoint(WorkerId(0));
        let reconnects = net.stats().peer_reconnects_total();
        assert!(matches!(net.recv_timeout(RECV), Some(Message::Terminate)));
        reconnects
    });

    let m1 = manifest.clone();
    let rejoiner = std::thread::spawn(move || {
        let acceptor = MeshAcceptor::new(l1, WorkerId(1), 2).expect("acceptor");
        let fault = FaultConfig::default();
        let mut t =
            TcpTransport::connect_via(&acceptor, &m1, WorkerId(1), fault.clone(), RENDEZVOUS, 0)
                .expect("attempt 1");
        let net = t.take_endpoint(WorkerId(1));
        net.send(WorkerId(0), pull(1, 7));
        // "Die": drop the endpoint, closing every socket.
        drop(net);
        drop(t);
        // "Respawn": rendezvous again with a bumped generation.
        let mut t = TcpTransport::connect_via(&acceptor, &m1, WorkerId(1), fault, RENDEZVOUS, 1)
            .expect("attempt 2");
        let net = t.take_endpoint(WorkerId(1));
        net.send(WorkerId(0), Message::Terminate);
    });

    let reconnects = survivor.join().expect("survivor thread");
    rejoiner.join().expect("rejoiner thread");
    assert_eq!(reconnects, 1, "the survivor observed exactly one rejoin");
}

/// A deliberately slow third process does not fail the mesh: the other
/// workers' dials back off and retry (connection refused — its
/// listener is genuinely absent, not just slow to accept) until it
/// binds, all inside the rendezvous window.
#[test]
fn rendezvous_waits_for_a_delayed_third_process() {
    let (manifest, mut listeners) = ClusterManifest::loopback(3).expect("bind");
    let l2 = listeners.pop().expect("three listeners");
    let addr2 = manifest.addr(WorkerId(2));
    // Release worker 2's port so dials to it are refused outright.
    drop(l2);

    let handles: Vec<_> = listeners
        .into_iter()
        .enumerate()
        .map(|(w, listener)| {
            let manifest = manifest.clone();
            std::thread::spawn(move || {
                let me = WorkerId(w as u16);
                let mut t = TcpTransport::connect_on(
                    &manifest,
                    me,
                    FaultConfig::default(),
                    RENDEZVOUS,
                    listener,
                )
                .expect("rendezvous despite the late peer");
                let net = t.take_endpoint(me);
                assert!(matches!(net.recv_timeout(RECV), Some(Message::Terminate)));
            })
        })
        .collect();

    // Start worker 2 late: its peers are already dialing into refusals.
    std::thread::sleep(Duration::from_millis(300));
    let l2 = std::net::TcpListener::bind(addr2).expect("rebind worker 2's port");
    let mut t =
        TcpTransport::connect_on(&manifest, WorkerId(2), FaultConfig::default(), RENDEZVOUS, l2)
            .expect("late rendezvous");
    let net = t.take_endpoint(WorkerId(2));
    net.broadcast(&Message::Terminate);
    for h in handles {
        h.join().expect("worker thread");
    }
}

/// `requeue` re-injects a message into the local inbox without
/// touching traffic counters or fault decisions (it already paid both
/// on its original trip).
#[test]
fn requeue_bypasses_accounting() {
    let got = with_mesh(2, FaultConfig::default(), |net| {
        net.requeue(Message::Suspend);
        let m = net.recv_timeout(RECV);
        let s = net.stats();
        (m, s.msgs_sent.load(Ordering::Relaxed), s.msgs_received.load(Ordering::Relaxed))
    });
    for (w, (m, sent, received)) in got.into_iter().enumerate() {
        assert_eq!(m, Some(Message::Suspend), "worker {w}");
        assert_eq!((sent, received), (0, 0), "worker {w}: requeue must not count as traffic");
    }
}
