//! Deterministic tests for the TCP backend: mesh rendezvous, framed
//! delivery, byte accounting, fault injection parity with the sim
//! router, and descriptive rejection of incompatible peers.

use gthinker_graph::ids::{VertexId, WorkerId};
use gthinker_net::fault::FaultConfig;
use gthinker_net::message::Message;
use gthinker_net::router::{LinkConfig, Router};
use gthinker_net::tcp::{ClusterManifest, TcpTransport};
use gthinker_net::transport::{NetEndpoint, Transport};
use std::io::Write;
use std::sync::atomic::Ordering;
use std::time::Duration;

const RECV: Duration = Duration::from_secs(5);
const RENDEZVOUS: Duration = Duration::from_secs(10);

/// Brings up an n-worker loopback mesh, one thread per worker, and
/// runs `f(endpoint)` on each; returns the per-worker results.
fn with_mesh<R: Send + 'static>(
    n: usize,
    fault: FaultConfig,
    f: impl Fn(Box<dyn NetEndpoint>) -> R + Send + Sync + 'static,
) -> Vec<R> {
    let (manifest, listeners) = ClusterManifest::loopback(n).expect("bind loopback");
    let f = std::sync::Arc::new(f);
    let handles: Vec<_> = listeners
        .into_iter()
        .enumerate()
        .map(|(w, listener)| {
            let manifest = manifest.clone();
            let fault = fault.clone();
            let f = std::sync::Arc::clone(&f);
            std::thread::spawn(move || {
                let me = WorkerId(w as u16);
                let mut t = TcpTransport::connect_on(&manifest, me, fault, RENDEZVOUS, listener)
                    .expect("rendezvous");
                assert_eq!(Transport::num_workers(&t), n);
                assert_eq!(t.hosted(), vec![me]);
                f(t.take_endpoint(me))
            })
        })
        .collect();
    handles.into_iter().map(|h| h.join().expect("worker thread")).collect()
}

fn pull(from: u16, v: u32) -> Message {
    Message::VertexRequest { from: WorkerId(from), vertices: vec![VertexId(v)], sent_nanos: 0 }
}

#[test]
fn mesh_delivers_across_processes_and_counts_bytes() {
    let counters = with_mesh(3, FaultConfig::default(), |net| {
        let me = net.id().index() as u16;
        // Everyone sends one pull to every peer, tagged by sender.
        for w in 0..3u16 {
            if w != me {
                net.send(WorkerId(w), pull(me, 1000 + me as u32));
            }
        }
        let mut seen = Vec::new();
        for _ in 0..2 {
            match net.recv_timeout(RECV).expect("peer message") {
                Message::VertexRequest { from, vertices, .. } => {
                    seen.push((from.index(), vertices[0].0))
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        seen.sort_unstable();
        let s = net.stats();
        (seen, s.bytes_sent.load(Ordering::Relaxed), s.bytes_received.load(Ordering::Relaxed))
    });
    for (w, (seen, sent, received)) in counters.into_iter().enumerate() {
        let expected: Vec<_> = (0..3).filter(|&p| p != w).map(|p| (p, 1000 + p as u32)).collect();
        assert_eq!(seen, expected, "worker {w} saw the wrong messages");
        assert!(sent > 0 && received > 0, "worker {w}: sent {sent} received {received}");
    }
}

#[test]
fn self_sends_and_broadcasts_loop_back() {
    let got = with_mesh(2, FaultConfig::default(), |net| {
        let me = net.id();
        net.send(me, pull(me.index() as u16, 7));
        let local = net.recv_timeout(RECV).expect("self-send");
        net.broadcast(&Message::Terminate);
        let remote = net.recv_timeout(RECV).expect("peer broadcast");
        (local, remote)
    });
    for (w, (local, remote)) in got.into_iter().enumerate() {
        assert!(matches!(local, Message::VertexRequest { .. }), "worker {w}: {local:?}");
        assert_eq!(remote, Message::Terminate, "worker {w}");
    }
}

#[test]
fn crash_schedules_are_rejected() {
    let (manifest, mut listeners) = ClusterManifest::loopback(2).expect("bind");
    let fault = FaultConfig {
        crash: Some(gthinker_net::fault::CrashSchedule {
            worker: WorkerId(1),
            after_messages: Some(1),
            after: None,
        }),
        ..FaultConfig::default()
    };
    let err =
        TcpTransport::connect_on(&manifest, WorkerId(0), fault, RENDEZVOUS, listeners.remove(0))
            .expect_err("crash schedule must be refused");
    assert_eq!(err.kind(), std::io::ErrorKind::Unsupported);
    assert!(err.to_string().contains("sim backend"), "{err}");
}

/// With `dup_prob = 1` every data-plane message arrives exactly twice
/// (sent once on the wire model: counters record one send), and the
/// control plane is never duplicated.
#[test]
fn duplicates_are_delivered_twice() {
    let fault = FaultConfig { seed: 9, dup_prob: 1.0, ..FaultConfig::default() };
    let got = with_mesh(2, fault, |net| {
        let me = net.id().index();
        if me == 0 {
            net.send(WorkerId(1), pull(0, 42));
            net.send(WorkerId(1), Message::Terminate);
        }
        if me != 1 {
            return (0, 0, 0);
        }
        let mut pulls = 0;
        let mut terminates = 0;
        while let Some(m) = net.recv_timeout(RECV) {
            match m {
                Message::VertexRequest { .. } => pulls += 1,
                Message::Terminate => terminates += 1,
                other => panic!("unexpected {other:?}"),
            }
            if terminates == 1 && pulls == 2 {
                break;
            }
        }
        // Duplication is attributed at the sender, so worker 1's own
        // counters are clean.
        let dups = net.fault_stats().expect("faults on").duplicated.load(Ordering::Relaxed);
        (pulls, terminates, dups)
    });
    assert_eq!(got[1], (2, 1, 0));
}

/// With `drop_prob = 1` no data-plane message arrives, but control
/// messages (Terminate) still do — matching the sim router's contract.
#[test]
fn drops_lose_data_but_not_control() {
    let fault = FaultConfig { seed: 5, drop_prob: 1.0, ..FaultConfig::default() };
    let got = with_mesh(2, fault, |net| {
        let me = net.id().index();
        if me == 0 {
            for i in 0..10 {
                net.send(WorkerId(1), pull(0, i));
            }
            net.send(WorkerId(1), Message::Terminate);
            return net.fault_stats().expect("faults on").dropped.load(Ordering::Relaxed);
        }
        let mut data = 0u64;
        loop {
            match net.recv_timeout(RECV).expect("terminate must arrive") {
                Message::Terminate => break,
                _ => data += 1,
            }
        }
        data
    });
    assert_eq!(got[0], 10, "sender-side drop counter");
    assert_eq!(got[1], 0, "no data-plane message may survive drop_prob=1");
}

/// The same seeded fault config makes byte-identical drop decisions on
/// the TCP backend and the simulated router: send the same traffic
/// pattern through both and compare what survives.
#[test]
fn fault_decisions_match_the_sim_router() {
    let fault = FaultConfig { seed: 1234, drop_prob: 0.4, ..FaultConfig::default() };

    // Sim: worker 0 sends 40 pulls then Terminate to worker 1.
    let mut router = Router::with_faults(2, LinkConfig::INSTANT, fault.clone());
    let h1 = router.take_handle(WorkerId(1));
    let h0 = router.take_handle(WorkerId(0));
    for i in 0..40 {
        h0.send(WorkerId(1), pull(0, i));
    }
    h0.send(WorkerId(1), Message::Terminate);
    let mut sim_survivors = Vec::new();
    loop {
        match h1.recv_timeout(RECV).expect("sim terminate") {
            Message::Terminate => break,
            Message::VertexRequest { vertices, .. } => sim_survivors.push(vertices[0].0),
            other => panic!("unexpected {other:?}"),
        }
    }

    // TCP: identical traffic, identical seed.
    let got = with_mesh(2, fault, |net| {
        if net.id().index() == 0 {
            for i in 0..40 {
                net.send(WorkerId(1), pull(0, i));
            }
            net.send(WorkerId(1), Message::Terminate);
            return Vec::new();
        }
        let mut survivors = Vec::new();
        loop {
            match net.recv_timeout(RECV).expect("tcp terminate") {
                Message::Terminate => break,
                Message::VertexRequest { vertices, .. } => survivors.push(vertices[0].0),
                other => panic!("unexpected {other:?}"),
            }
        }
        survivors
    });

    assert!(!sim_survivors.is_empty() && sim_survivors.len() < 40, "seed too extreme");
    assert_eq!(got[1], sim_survivors, "same seed must drop the same messages on both backends");
}

/// A peer speaking a different wire version is rejected at rendezvous
/// with a descriptive error, not a hang or a garbled mesh.
#[test]
fn version_mismatch_fails_descriptively() {
    let (manifest, mut listeners) = ClusterManifest::loopback(2).expect("bind");
    let addr0 = manifest.addr(WorkerId(0));
    let listener0 = listeners.remove(0);
    let join = std::thread::spawn(move || {
        TcpTransport::connect_on(
            &manifest,
            WorkerId(0),
            FaultConfig::default(),
            Duration::from_secs(5),
            listener0,
        )
    });
    // Pose as worker 1 but with a bumped wire version: a hand-built
    // frame whose version field is WIRE_VERSION + 1.
    let mut stream = std::net::TcpStream::connect(addr0).expect("dial worker 0");
    let payload = [1u8, 0, 2, 0]; // me=1, n=2 (little-endian u16s)
    let mut bad = Vec::new();
    bad.extend_from_slice(&u32::from_le_bytes(*b"GTKW").to_le_bytes());
    bad.extend_from_slice(&(gthinker_net::frame::WIRE_VERSION + 1).to_le_bytes());
    bad.extend_from_slice(&0u16.to_le_bytes());
    bad.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    bad.extend_from_slice(&payload);
    bad.extend_from_slice(&gthinker_task::codec::crc32(&payload).to_le_bytes());
    stream.write_all(&bad).expect("write bad hello");
    let err = join.join().expect("thread").expect_err("mismatched peer must be rejected");
    let msg = err.to_string();
    assert!(msg.contains("version"), "error should name the version mismatch: {msg}");
}
