//! Property tests for the evented data plane's streaming frame
//! decoder: a TCP byte stream arrives split wherever the kernel felt
//! like splitting it — one byte at a time, mid-header, mid-payload,
//! mid-CRC — and [`FrameDecoder`] must reassemble every frame exactly,
//! or report a clean [`FrameError`] on corruption. Never a wrong
//! payload, never a panic.

use gthinker_net::frame::{seal, FrameDecoder, FrameError};
use proptest::prelude::*;

/// Feeds `stream` into a decoder in the given chunk sizes (cycled
/// until the stream is exhausted), using the same `space`/`commit`
/// read-into path the evented I/O loop uses. Returns the payloads
/// recovered in order, the first error if any, and the bytes left
/// pending when the stream ran out.
fn drive(stream: &[u8], chunks: &[usize]) -> (Vec<Vec<u8>>, Option<FrameError>, usize) {
    let mut dec = FrameDecoder::new();
    let mut got = Vec::new();
    let mut offset = 0;
    let mut ci = 0;
    while offset < stream.len() {
        let take = chunks.get(ci % chunks.len()).copied().unwrap_or(1).max(1);
        ci += 1;
        let end = (offset + take).min(stream.len());
        let chunk = &stream[offset..end];
        offset = end;
        let space = dec.space(chunk.len());
        space[..chunk.len()].copy_from_slice(chunk);
        dec.commit(chunk.len());
        loop {
            match dec.next() {
                Ok(Some(p)) => got.push(p.to_vec()),
                Ok(None) => break,
                Err(e) => return (got, Some(e), dec.pending()),
            }
        }
    }
    let pending = dec.pending();
    (got, None, pending)
}

proptest! {
    /// Clean streams reassemble exactly, whatever the read boundaries:
    /// chunk sizes down to a single byte cut headers, payloads and CRC
    /// trailers everywhere.
    #[test]
    fn decoder_reassembles_any_split(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..300), 1..6),
        chunks in proptest::collection::vec(1usize..17, 1..12),
    ) {
        let mut stream = Vec::new();
        for p in &payloads {
            stream.extend_from_slice(&seal(p));
        }
        let (got, err, pending) = drive(&stream, &chunks);
        prop_assert_eq!(err, None);
        prop_assert_eq!(got, payloads);
        prop_assert_eq!(pending, 0, "stream must end on a frame boundary");
    }

    /// The degenerate syscall pattern: every read returns one byte.
    #[test]
    fn decoder_survives_one_byte_reads(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..80), 1..4),
    ) {
        let mut stream = Vec::new();
        for p in &payloads {
            stream.extend_from_slice(&seal(p));
        }
        let (got, err, pending) = drive(&stream, &[1]);
        prop_assert_eq!(err, None);
        prop_assert_eq!(got, payloads);
        prop_assert_eq!(pending, 0);
    }

    /// Read boundaries are invisible: any chunking yields byte-for-byte
    /// the same payload sequence as one whole-buffer feed.
    #[test]
    fn chunking_never_changes_the_result(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..120), 1..5),
        chunks in proptest::collection::vec(1usize..31, 1..8),
    ) {
        let mut stream = Vec::new();
        for p in &payloads {
            stream.extend_from_slice(&seal(p));
        }
        let whole = drive(&stream, &[stream.len()]);
        let split = drive(&stream, &chunks);
        prop_assert_eq!(whole, split);
    }

    /// Flip any single byte of the stream: every byte is covered by a
    /// header check or the CRC trailer, so the decoder must either
    /// error cleanly or stall waiting for bytes that never come (a
    /// truncation the I/O loop reports at EOF) — it must never
    /// complete cleanly, and any payload it yields before failing must
    /// be one of the original frames, verbatim.
    #[test]
    fn single_byte_corruption_is_never_silent(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..120), 1..4),
        chunks in proptest::collection::vec(1usize..13, 1..8),
        flip in any::<usize>(),
        bit in 0u8..8,
    ) {
        let mut stream = Vec::new();
        for p in &payloads {
            stream.extend_from_slice(&seal(p));
        }
        let at = flip % stream.len();
        stream[at] ^= 1 << bit;
        let (got, err, pending) = drive(&stream, &chunks);
        prop_assert!(
            err.is_some() || pending > 0,
            "corrupted byte {at} decoded cleanly: {} frames, {pending} pending",
            got.len()
        );
        // Whatever was yielded before the failure is an intact prefix.
        prop_assert!(got.len() <= payloads.len());
        for (g, p) in got.iter().zip(&payloads) {
            prop_assert_eq!(g, p);
        }
    }
}
