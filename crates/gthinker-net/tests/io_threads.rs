//! The evented data plane's headline structural property: a worker's
//! entire peer mesh is serviced by exactly **one** I/O thread,
//! regardless of cluster size, where the threaded plane spends one
//! reader thread per peer. Counted for real from `/proc/self/task`
//! while the mesh is up — all workers live in this test process, so
//! the process-wide census is the per-worker figure times the worker
//! count. This file holds a single `#[test]` so no concurrent test's
//! sockets pollute the count.
#![cfg(target_os = "linux")]

use gthinker_graph::ids::WorkerId;
use gthinker_net::fault::FaultConfig;
use gthinker_net::tcp::{ClusterManifest, TcpBackend, TcpTransport};
use gthinker_net::transport::Transport;
use std::sync::{Arc, Barrier};
use std::time::Duration;

const N: usize = 3;
const RENDEZVOUS: Duration = Duration::from_secs(10);

/// Live threads whose name starts with `prefix` (comm truncates names
/// to 15 bytes, so match on the prefix, never the full name).
fn threads_named(prefix: &str) -> usize {
    std::fs::read_dir("/proc/self/task")
        .expect("read /proc/self/task")
        .filter_map(|t| std::fs::read_to_string(t.ok()?.path().join("comm")).ok())
        .filter(|comm| comm.trim_end().starts_with(prefix))
        .count()
}

/// Polls until `prefix` counts exactly `want` threads, then returns the
/// settled count. A freshly spawned thread only takes its name once it
/// first runs, so on a loaded box the census lags the spawn calls by a
/// scheduling quantum; transient over- or under-counts are not real.
fn await_threads(prefix: &str, want: usize) -> usize {
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let got = threads_named(prefix);
        if got == want || std::time::Instant::now() >= deadline {
            return got;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Brings up an `N`-worker loopback mesh on `backend` and runs
/// `census()` on worker 0's thread while every endpoint is alive (two
/// barriers pin all workers in place around the count).
fn census_mesh(backend: TcpBackend, census: impl Fn() + Send + Sync + 'static) {
    let (manifest, listeners) = ClusterManifest::loopback(N).expect("bind loopback");
    let gate = Arc::new(Barrier::new(N));
    let census = Arc::new(census);
    let handles: Vec<_> = listeners
        .into_iter()
        .enumerate()
        .map(|(w, listener)| {
            let manifest = manifest.clone();
            let gate = Arc::clone(&gate);
            let census = Arc::clone(&census);
            std::thread::spawn(move || {
                let me = WorkerId(w as u16);
                let mut t = TcpTransport::connect_on_with(
                    &manifest,
                    me,
                    FaultConfig::default(),
                    RENDEZVOUS,
                    listener,
                    backend,
                )
                .expect("rendezvous");
                let net = t.take_endpoint(me);
                gate.wait();
                if w == 0 {
                    census();
                }
                gate.wait();
                drop(net);
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker thread");
    }
}

#[test]
fn evented_plane_runs_one_io_thread_per_worker() {
    census_mesh(TcpBackend::Evented, || {
        assert_eq!(await_threads("tcp-io-", N), N, "one poll loop per hosted worker");
        assert_eq!(threads_named("tcp-read-"), 0, "no per-peer reader threads");
        assert_eq!(threads_named("tcp-delay-"), 0, "no delay-heap thread");
        assert_eq!(threads_named("tcp-crash-"), 0, "no crash-timer thread");
    });
    // The legacy plane, same census: n-1 readers per worker, no loop.
    census_mesh(TcpBackend::Threaded, || {
        assert_eq!(
            await_threads("tcp-read-", N * (N - 1)),
            N * (N - 1),
            "one reader per directed link"
        );
        assert_eq!(threads_named("tcp-io-"), 0, "threaded plane has no poll loop");
    });
}
