//! Network-simulator guarantees the framework relies on: per-link FIFO
//! under the latency/bandwidth model, loss-free delivery under load,
//! and accurate byte accounting.

use gthinker_graph::ids::{VertexId, WorkerId};
use gthinker_net::message::Message;
use gthinker_net::router::{LinkConfig, Router};
use std::time::Duration;

#[test]
fn per_link_delivery_is_fifo_under_latency() {
    let cfg = LinkConfig { latency: Duration::from_micros(300), bytes_per_sec: Some(5_000_000) };
    let mut r = Router::new(2, cfg);
    let mut hs = r.take_handles();
    let h1 = hs.remove(1);
    let h0 = hs.remove(0);
    for i in 0..200u32 {
        h0.send(
            WorkerId(1),
            Message::VertexRequest {
                from: WorkerId(0),
                vertices: vec![VertexId(i)],
                sent_nanos: 0,
            },
        );
    }
    for expect in 0..200u32 {
        match h1.recv_timeout(Duration::from_secs(5)).expect("delivered") {
            Message::VertexRequest { vertices, .. } => {
                assert_eq!(vertices, vec![VertexId(expect)], "out-of-order delivery");
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}

#[test]
fn concurrent_senders_lose_nothing() {
    let cfg = LinkConfig { latency: Duration::from_micros(50), bytes_per_sec: None };
    let mut r = Router::new(4, cfg);
    let mut hs = r.take_handles();
    let sink = hs.remove(3);
    let senders: Vec<_> = hs.into_iter().collect();
    std::thread::scope(|s| {
        for (w, h) in senders.iter().enumerate() {
            s.spawn(move || {
                for i in 0..500u32 {
                    h.send(
                        WorkerId(3),
                        Message::VertexRequest {
                            from: WorkerId(w as u16),
                            vertices: vec![VertexId(i)],
                            sent_nanos: 0,
                        },
                    );
                }
            });
        }
        let mut per_sender = [0u32; 3];
        for _ in 0..1500 {
            match sink.recv_timeout(Duration::from_secs(10)).expect("no loss") {
                Message::VertexRequest { from, vertices, .. } => {
                    // Per sender, arrivals must be in send order.
                    assert_eq!(vertices, vec![VertexId(per_sender[from.index()])]);
                    per_sender[from.index()] += 1;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(per_sender, [500, 500, 500]);
    });
}

#[test]
fn byte_accounting_is_exact_under_concurrency() {
    let mut r = Router::new(3, LinkConfig::INSTANT);
    let hs = r.take_handles();
    let msg = Message::StealBatch { victim: WorkerId(0), seq: 0, bytes: vec![7u8; 100] };
    let per_msg = msg.encoded_len() as u64;
    std::thread::scope(|s| {
        for h in &hs[..2] {
            s.spawn(|| {
                for _ in 0..1_000 {
                    h.send(
                        WorkerId(2),
                        Message::StealBatch { victim: WorkerId(0), seq: 0, bytes: vec![7u8; 100] },
                    );
                }
            });
        }
    });
    assert_eq!(r.total_bytes(), 2_000 * per_msg);
    assert_eq!(
        r.stats(WorkerId(2)).bytes_received.load(std::sync::atomic::Ordering::Relaxed),
        2_000 * per_msg
    );
}
