//! Seeded, deterministic fault injection, transport-agnostic.
//!
//! A [`FaultConfig`] sits alongside the transport configuration and
//! perturbs the wire: data-plane messages (vertex pull requests and
//! responses) can be dropped, duplicated, or delayed (reorder jitter and
//! latency spikes), and a [`CrashSchedule`] can kill one worker at a
//! message-count or wall-time mark. Every per-message decision is a
//! **pure function** of `(seed, from, to, per-link sequence)` — two runs
//! with the same seed and the same traffic order on a link make
//! identical decisions, which is what makes chaos tests reproducible.
//!
//! [`FaultRuntime`] is the send-side bookkeeping both backends share:
//! the simulated [`Router`](crate::router::Router) and the real
//! [`TcpEndpoint`](crate::tcp::TcpEndpoint) call
//! [`FaultRuntime::next_decision`] on every cross-worker data-plane
//! message, so a chaos scenario replays identically whichever
//! interconnect carries it. Crash schedules fire on both backends at
//! the same logical trigger — the sim router delivers
//! [`crate::message::Message::Crash`] and goes dark on the victim's
//! links; the TCP backend, where each worker is a whole OS process,
//! calls `std::process::abort()` on the victim so the process dies for
//! real, mid-syscall, exactly as a kill would. The one semantic
//! difference: `after_messages` counts the router's global message
//! total on the sim backend but the victim endpoint's own sends and
//! receives on TCP (no process has a god's-eye count of the cluster).
//!
//! Only the data plane is faulted: vertex pulls (recovered by the
//! R-table deadline retries) and steal batches (recovered by the
//! victim's retained-copy resend plus the thief's sequence-number
//! dedup). Control messages (progress reports, steal requests/acks,
//! aggregator syncs, terminate/suspend) model TCP-backed channels that
//! either deliver or fail the whole worker.

use gthinker_graph::ids::WorkerId;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Kills one worker's threads mid-job. The crash fires once, at the
/// first of the configured marks to be reached. Worker 0 hosts the
/// master loop and must not be the target.
#[derive(Clone, Copy, Debug)]
pub struct CrashSchedule {
    /// Worker to kill (never `WorkerId(0)`, which hosts the master).
    pub worker: WorkerId,
    /// Fire after this many messages have crossed the interconnect.
    pub after_messages: Option<u64>,
    /// Fire after this much wall time since the router was created.
    pub after: Option<Duration>,
}

/// Fault model for the simulated interconnect. The default config
/// injects nothing and adds a single branch to the send path.
#[derive(Clone, Debug)]
pub struct FaultConfig {
    /// Seed for every per-message decision.
    pub seed: u64,
    /// Per-message probability that a data-plane message is dropped.
    pub drop_prob: f64,
    /// Per-message probability that a data-plane message is delivered
    /// twice (the duplicate arrives after an extra `reorder_jitter`).
    pub dup_prob: f64,
    /// Per-message probability of extra delay in `[0, reorder_jitter)`,
    /// which reorders the message behind later traffic on the link.
    pub reorder_prob: f64,
    /// Maximum reorder delay.
    pub reorder_jitter: Duration,
    /// Per-message probability of a latency spike of `spike`.
    pub spike_prob: f64,
    /// Latency spike duration.
    pub spike: Duration,
    /// Optional scheduled worker crash.
    pub crash: Option<CrashSchedule>,
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig {
            seed: 0,
            drop_prob: 0.0,
            dup_prob: 0.0,
            reorder_prob: 0.0,
            reorder_jitter: Duration::ZERO,
            spike_prob: 0.0,
            spike: Duration::ZERO,
            crash: None,
        }
    }
}

/// The outcome of the fault model for one data-plane message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultDecision {
    /// Message is silently discarded.
    pub drop: bool,
    /// Message is delivered a second time.
    pub duplicate: bool,
    /// Extra delivery delay (reorder jitter + latency spike).
    pub delay: Duration,
}

impl FaultDecision {
    /// A decision that leaves the message untouched.
    pub const CLEAN: FaultDecision =
        FaultDecision { drop: false, duplicate: false, delay: Duration::ZERO };
}

impl FaultConfig {
    /// True when any fault can fire; a disabled config keeps the router
    /// on its fault-free fast path.
    pub fn enabled(&self) -> bool {
        self.drop_prob > 0.0
            || self.dup_prob > 0.0
            || self.reorder_prob > 0.0
            || self.spike_prob > 0.0
            || self.crash.is_some()
    }

    /// Decides the fate of the `seq`-th data-plane message on the
    /// directed link `from → to`. Pure: depends only on the arguments
    /// and the seed, never on wall time or prior decisions.
    pub fn decide(&self, from: usize, to: usize, seq: u64) -> FaultDecision {
        if !self.enabled() {
            return FaultDecision::CLEAN;
        }
        let drop = self.roll(from, to, seq, 0) < self.drop_prob;
        if drop {
            return FaultDecision { drop: true, duplicate: false, delay: Duration::ZERO };
        }
        let duplicate = self.roll(from, to, seq, 1) < self.dup_prob;
        let mut delay = Duration::ZERO;
        if self.roll(from, to, seq, 2) < self.reorder_prob {
            delay += self.reorder_jitter.mul_f64(self.roll(from, to, seq, 3));
        }
        if self.roll(from, to, seq, 4) < self.spike_prob {
            delay += self.spike;
        }
        FaultDecision { drop: false, duplicate, delay }
    }

    /// A uniform sample in `[0, 1)` keyed on the link, sequence number
    /// and a per-question salt.
    fn roll(&self, from: usize, to: usize, seq: u64, salt: u64) -> f64 {
        let key = self
            .seed
            .wrapping_add((from as u64) << 48)
            .wrapping_add((to as u64) << 32)
            .wrapping_add(seq.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(salt.wrapping_mul(0xD1B5_4A32_D192_ED03));
        // 53 mantissa bits → exact f64 in [0, 1).
        (splitmix64(key) >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The splitmix64 finalizer: a cheap, well-mixed 64-bit hash. Also
/// used by the TCP dial loop for deterministic backoff jitter.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Per-worker fault counters, attributed to the **sending** side.
#[derive(Debug, Default)]
pub struct FaultStats {
    /// Data-plane messages dropped on send.
    pub dropped: AtomicU64,
    /// Data-plane messages delivered twice.
    pub duplicated: AtomicU64,
    /// Data-plane messages given extra delay (reorder or spike).
    pub delayed: AtomicU64,
    /// Crash signals delivered to this worker (0 or 1).
    pub crashes: AtomicU64,
}

/// Runtime state for an enabled [`FaultConfig`]: per-link decision
/// sequence numbers, per-worker counters, crash bookkeeping. Lives in
/// the transport-agnostic layer so the sim router and the TCP backend
/// make byte-identical fault decisions for the same seed and traffic.
pub struct FaultRuntime {
    config: FaultConfig,
    /// `link_seq[from * n + to]`: data-plane messages seen on the link,
    /// the sequence input to [`FaultConfig::decide`].
    link_seq: Vec<AtomicU64>,
    stats: Vec<FaultStats>,
    crashed: Vec<AtomicBool>,
    crash_fired: AtomicBool,
    msg_count: AtomicU64,
    started: Instant,
    num_workers: usize,
}

impl FaultRuntime {
    /// Builds the runtime for an `n`-worker interconnect; `None` when
    /// the config injects nothing, so the fault-free send path pays a
    /// single `Option` check.
    pub fn new(n: usize, config: FaultConfig) -> Option<FaultRuntime> {
        config.enabled().then(|| FaultRuntime {
            config,
            link_seq: (0..n * n).map(|_| AtomicU64::new(0)).collect(),
            stats: (0..n).map(|_| FaultStats::default()).collect(),
            crashed: (0..n).map(|_| AtomicBool::new(false)).collect(),
            crash_fired: AtomicBool::new(false),
            msg_count: AtomicU64::new(0),
            started: Instant::now(),
            num_workers: n,
        })
    }

    /// The configuration driving the decisions.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// True once the crash schedule has killed worker `w`.
    pub fn is_crashed(&self, w: usize) -> bool {
        self.crashed[w].load(Ordering::Relaxed)
    }

    /// Advances the crash schedule by one interconnect message; fires
    /// at most once, returning the victim the transport must now kill
    /// (deliver [`crate::message::Message::Crash`] to it, go dark on
    /// its links).
    pub fn crash_due(&self) -> Option<usize> {
        let cs = self.config.crash.as_ref()?;
        let n = self.msg_count.fetch_add(1, Ordering::Relaxed) + 1;
        if self.crash_fired.load(Ordering::Relaxed) {
            return None;
        }
        let due = cs.after_messages.is_some_and(|m| n >= m)
            || cs.after.is_some_and(|d| self.started.elapsed() >= d);
        if due && !self.crash_fired.swap(true, Ordering::SeqCst) {
            let w = cs.worker.index();
            self.crashed[w].store(true, Ordering::SeqCst);
            self.stats[w].crashes.fetch_add(1, Ordering::Relaxed);
            return Some(w);
        }
        None
    }

    /// Rolls the fate of the next data-plane message on `from → to`,
    /// bumping the link's sequence number and attributing the
    /// drop/dup/delay counters to the sender. Both backends call this
    /// at the same point (send side, cross-worker data plane only), so
    /// counters and decisions agree across transports.
    pub fn next_decision(&self, from: usize, to: usize) -> FaultDecision {
        let seq = self.link_seq[from * self.num_workers + to].fetch_add(1, Ordering::Relaxed);
        let d = self.config.decide(from, to, seq);
        if d.drop {
            self.stats[from].dropped.fetch_add(1, Ordering::Relaxed);
        } else {
            if d.duplicate {
                self.stats[from].duplicated.fetch_add(1, Ordering::Relaxed);
            }
            if !d.delay.is_zero() {
                self.stats[from].delayed.fetch_add(1, Ordering::Relaxed);
            }
        }
        d
    }

    /// Per-worker fault counters (attributed to the sending side).
    pub fn stats(&self, w: usize) -> &FaultStats {
        &self.stats[w]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lossy() -> FaultConfig {
        FaultConfig {
            seed: 42,
            drop_prob: 0.1,
            dup_prob: 0.1,
            reorder_prob: 0.3,
            reorder_jitter: Duration::from_millis(2),
            spike_prob: 0.05,
            spike: Duration::from_millis(5),
            ..FaultConfig::default()
        }
    }

    #[test]
    fn disabled_config_is_clean() {
        let f = FaultConfig::default();
        assert!(!f.enabled());
        for seq in 0..100 {
            assert_eq!(f.decide(0, 1, seq), FaultDecision::CLEAN);
        }
    }

    #[test]
    fn decisions_are_deterministic() {
        let a = lossy();
        let b = lossy();
        for from in 0..3 {
            for to in 0..3 {
                for seq in 0..1000 {
                    assert_eq!(a.decide(from, to, seq), b.decide(from, to, seq));
                }
            }
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let a = lossy();
        let b = FaultConfig { seed: 43, ..lossy() };
        let diverged = (0..1000).any(|seq| a.decide(0, 1, seq) != b.decide(0, 1, seq));
        assert!(diverged, "seed must change the decision stream");
    }

    #[test]
    fn links_are_independent() {
        let f = lossy();
        let diverged = (0..1000).any(|seq| f.decide(0, 1, seq) != f.decide(1, 0, seq));
        assert!(diverged, "each directed link gets its own stream");
    }

    #[test]
    fn rates_track_probabilities() {
        let f = lossy();
        let n = 20_000;
        let mut drops = 0u32;
        let mut dups = 0u32;
        for seq in 0..n {
            let d = f.decide(0, 1, seq);
            drops += d.drop as u32;
            dups += d.duplicate as u32;
        }
        let drop_rate = drops as f64 / n as f64;
        let dup_rate = dups as f64 / n as f64;
        assert!((drop_rate - 0.1).abs() < 0.02, "drop rate {drop_rate}");
        // dup is conditioned on not-dropped: expect ≈ 0.9 * 0.1.
        assert!((dup_rate - 0.09).abs() < 0.02, "dup rate {dup_rate}");
    }
}
