//! Cluster networking for the G-thinker reproduction.
//!
//! The paper runs one worker process per machine over GigE. This crate
//! abstracts the interconnect behind a [`Transport`] / [`NetEndpoint`]
//! trait pair with two interchangeable backends:
//!
//! * [`Router`] / [`NetHandle`] — the **sim** backend: every worker in
//!   one process, with an optional latency + bandwidth model
//!   ([`LinkConfig`]) under which messages on a directed link serialize
//!   and arrive late, reproducing the communication costs of Table IV.
//! * [`TcpTransport`] — the **tcp** backend: one worker per OS
//!   process, messages carried as versioned, CRC-trailed [`frame`]s
//!   over a full mesh of sockets built from a [`ClusterManifest`].
//!   Two data planes share the rendezvous and wire format
//!   ([`TcpBackend`]): the default **evented** plane
//!   ([`EventedEndpoint`]) drives every socket from a single
//!   `poll(2)` I/O thread with pooled zero-copy frame buffers
//!   ([`pool`]) and vectored, coalesced writes; the legacy
//!   **threaded** plane ([`TcpEndpoint`]) keeps a reader thread per
//!   peer and writes synchronously from the sending thread.
//!
//! Shared across both: [`Message`] (batched vertex pulls, work-stealing
//! transfers, progress and aggregator traffic) with an exact binary
//! codec and [`Message::encoded_len`]; [`RequestBatcher`] (sender-side
//! batching, desirability 5 in §III); and [`FaultConfig`] /
//! [`FaultRuntime`](fault::FaultRuntime) — seeded, deterministic fault
//! injection (drops, duplicates, reorder jitter, latency spikes, and on
//! the sim backend scheduled crashes) used by the chaos tests.
//!
//! Byte and message counters make the communication volume observable,
//! which the benches report alongside wall-clock time.

pub mod batch;
pub mod evented;
pub mod fault;
pub mod frame;
pub mod message;
pub mod pool;
pub mod router;
pub mod tcp;
pub mod transport;

pub use batch::{RequestBatcher, DEFAULT_REQUEST_BATCH};
pub use evented::EventedEndpoint;
pub use fault::{CrashSchedule, FaultConfig, FaultStats};
pub use message::Message;
pub use pool::{FramePool, SealedFrame};
pub use router::{LinkConfig, NetHandle, Router};
pub use tcp::{ClusterManifest, TcpBackend, TcpEndpoint, TcpTransport};
pub use transport::{NetEndpoint, NetStats, Transport};
