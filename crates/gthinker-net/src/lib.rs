//! Simulated cluster networking for the G-thinker reproduction.
//!
//! The paper runs one worker process per machine over GigE. This crate
//! replaces the physical cluster with an in-process interconnect whose
//! behaviour preserves what the evaluation measures:
//!
//! * [`Router`] / [`NetHandle`] — per-worker endpoints with unbounded
//!   inboxes, plus an optional latency + bandwidth model
//!   ([`LinkConfig`]) under which messages on a directed link serialize
//!   and arrive late, reproducing the communication costs of Table IV.
//! * [`Message`] — batched vertex pull requests/responses, work-stealing
//!   transfers, progress reports and aggregator synchronization.
//! * [`RequestBatcher`] — sender-side batching of pull requests
//!   (desirability 5 in §III).
//! * [`FaultConfig`] — seeded, deterministic fault injection (drops,
//!   duplicates, reorder jitter, latency spikes, scheduled crashes)
//!   used by the chaos tests to exercise the recovery path.
//!
//! Byte and message counters make the communication volume observable,
//! which the benches report alongside wall-clock time.

pub mod batch;
pub mod fault;
pub mod message;
pub mod router;

pub use batch::{RequestBatcher, DEFAULT_REQUEST_BATCH};
pub use fault::{CrashSchedule, FaultConfig, FaultStats};
pub use message::Message;
pub use router::{LinkConfig, NetHandle, NetStats, Router};
