//! Pooled, shareable frame buffers for the evented TCP data plane.
//!
//! Every outbound message is sealed **once** into a buffer drawn from
//! a [`FramePool`]: the message encodes straight into the wire buffer
//! ([`frame::seal_with`](crate::frame::seal_with)), the buffer becomes
//! an immutable [`SealedFrame`], and that one allocation is what every
//! destination's outbound ring references — a broadcast to `n` peers
//! clones an `Arc`, never the bytes. When the last reference drops
//! (the I/O loop finished writing it everywhere), the buffer returns
//! to the pool for the next seal, so a steady-state sender allocates
//! nothing per message.

use parking_lot::Mutex;
use std::sync::{Arc, Weak};

/// Buffers retained per pool; beyond this, freed buffers are simply
/// dropped. Sized for a deep outbound ring without hoarding memory.
const MAX_POOLED: usize = 256;

/// Buffers larger than this (a jumbo steal batch or metrics report)
/// are not worth retaining: the common traffic is small control and
/// pull frames, and one giant buffer would pin its capacity forever.
const MAX_POOLED_CAPACITY: usize = 256 * 1024;

/// A recycling arena of frame buffers. Cheap to clone handles out of
/// ([`SealedFrame`]), safe to drop in any order — buffers outliving
/// the pool are freed normally.
pub struct FramePool {
    free: Mutex<Vec<Vec<u8>>>,
}

impl FramePool {
    /// An empty pool; buffers are created on demand and recycled on
    /// drop.
    pub fn new() -> Arc<FramePool> {
        Arc::new(FramePool { free: Mutex::new(Vec::new()) })
    }

    fn take(&self) -> Vec<u8> {
        self.free.lock().pop().unwrap_or_default()
    }

    fn put(&self, mut buf: Vec<u8>) {
        if buf.capacity() > MAX_POOLED_CAPACITY {
            return;
        }
        buf.clear();
        let mut free = self.free.lock();
        if free.len() < MAX_POOLED {
            free.push(buf);
        }
    }

    /// Seals one frame into a pooled buffer: `write_payload` appends
    /// the payload bytes directly (see
    /// [`frame::seal_with`](crate::frame::seal_with)), so the bytes are
    /// laid out exactly once, wire-ready.
    pub fn seal(self: &Arc<Self>, write_payload: impl FnOnce(&mut Vec<u8>)) -> SealedFrame {
        let mut buf = self.take();
        crate::frame::seal_with(&mut buf, write_payload);
        SealedFrame(Arc::new(PooledBuf { bytes: Some(buf), pool: Arc::downgrade(self) }))
    }

    /// Buffers currently resting in the pool (tests).
    pub fn idle(&self) -> usize {
        self.free.lock().len()
    }
}

struct PooledBuf {
    bytes: Option<Vec<u8>>,
    pool: Weak<FramePool>,
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        if let (Some(buf), Some(pool)) = (self.bytes.take(), self.pool.upgrade()) {
            pool.put(buf);
        }
    }
}

/// One immutable, complete wire frame. Clones share the same buffer
/// (`Arc`), which is what makes broadcast zero-copy: every peer's
/// outbound ring holds a handle to the same bytes.
#[derive(Clone)]
pub struct SealedFrame(Arc<PooledBuf>);

impl SealedFrame {
    /// The complete frame: header, payload, CRC trailer.
    pub fn bytes(&self) -> &[u8] {
        self.0.bytes.as_deref().expect("buffer present until drop")
    }

    /// Total wire length in bytes.
    pub fn len(&self) -> usize {
        self.bytes().len()
    }

    /// Frames are never empty (the header alone is 12 bytes).
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl std::fmt::Debug for SealedFrame {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SealedFrame({} bytes)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame;

    #[test]
    fn sealed_frame_opens_to_its_payload() {
        let pool = FramePool::new();
        let f = pool.seal(|b| b.extend_from_slice(b"payload"));
        assert_eq!(frame::open(f.bytes()).unwrap(), b"payload");
        assert_eq!(f.len(), frame::FRAME_OVERHEAD + 7);
    }

    #[test]
    fn buffers_recycle_through_the_pool() {
        let pool = FramePool::new();
        let f = pool.seal(|b| b.extend_from_slice(&[3u8; 100]));
        let clone = f.clone();
        drop(f);
        assert_eq!(pool.idle(), 0, "a live clone pins the buffer");
        drop(clone);
        assert_eq!(pool.idle(), 1, "last drop returns the buffer");
        // The next seal reuses it rather than allocating.
        let _f2 = pool.seal(|b| b.extend_from_slice(b"x"));
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn broadcast_clones_share_bytes() {
        let pool = FramePool::new();
        let f = pool.seal(|b| b.extend_from_slice(b"shared"));
        let g = f.clone();
        assert_eq!(f.bytes().as_ptr(), g.bytes().as_ptr(), "no re-copy on clone");
    }

    #[test]
    fn oversized_buffers_are_not_retained() {
        let pool = FramePool::new();
        let f = pool.seal(|b| b.extend_from_slice(&vec![0u8; MAX_POOLED_CAPACITY + 1]));
        drop(f);
        assert_eq!(pool.idle(), 0, "jumbo buffer freed, not pooled");
    }
}
