//! The transport abstraction: what a worker needs from its interconnect.
//!
//! A [`Transport`] owns the interconnect for a job and hands out one
//! [`NetEndpoint`] per worker it hosts. The simulated
//! [`Router`](crate::router::Router) hosts **all** workers of a job in
//! one process; the real [`TcpTransport`](crate::tcp::TcpTransport)
//! hosts exactly **one** worker per OS process and speaks length-prefixed
//! [`frame`](crate::frame)s to its peers. Worker, master and job code
//! run against these traits only, so the two backends are
//! interchangeable — the chaos suite injects the same seeded faults on
//! either one through the shared
//! [`FaultRuntime`](crate::fault::FaultRuntime).

use crate::fault::FaultStats;
use crate::message::Message;
use gthinker_graph::ids::WorkerId;
use std::sync::atomic::AtomicU64;
use std::time::Duration;

/// Per-worker traffic counters. On the simulated router these count
/// message encodings; on the TCP backend they count real frame bytes
/// (payload plus [`FRAME_OVERHEAD`](crate::frame::FRAME_OVERHEAD)).
#[derive(Debug, Default)]
pub struct NetStats {
    /// Bytes sent by this worker.
    pub bytes_sent: AtomicU64,
    /// Bytes received by this worker.
    pub bytes_received: AtomicU64,
    /// Messages sent.
    pub msgs_sent: AtomicU64,
    /// Messages received.
    pub msgs_received: AtomicU64,
    /// Vectored (`writev`-style) socket writes issued by the evented
    /// data plane's I/O loop. 0 on the sim router and the threaded TCP
    /// backend (which write one frame per syscall).
    pub writev_calls: AtomicU64,
    /// Frames that shared a vectored write with at least one other
    /// frame — the write-coalescing win. For each vectored write of
    /// `k > 1` frames this counts `k - 1`.
    pub frames_coalesced: AtomicU64,
    /// Sends that had to wait because the destination peer's bounded
    /// outbound ring was full (backpressure from a slow wire or peer).
    pub backpressure_stalls: AtomicU64,
    /// Fault-delayed frames whose deferred write failed (dead peer or
    /// closed socket) and were silently dropped. Surfaced so a chaos
    /// run can tell injected loss from delay-path loss.
    pub delayed_write_errors: AtomicU64,
    /// Per-peer dead-link events: the reader hit EOF/error or a write
    /// failed on that peer's socket. Always empty on the sim router
    /// (links there cannot die), sized to the cluster on TCP.
    pub peer_downs: Vec<AtomicU64>,
    /// Per-peer links accepted *beyond the first* at rendezvous — a
    /// count of observed rejoins. Empty on the sim router.
    pub peer_reconnects: Vec<AtomicU64>,
}

impl NetStats {
    /// Counters with per-peer down/reconnect slots for an `n`-worker
    /// cluster (the TCP backend's constructor; `default()` keeps the
    /// slots empty for backends whose links cannot die).
    pub fn for_cluster(n: usize) -> NetStats {
        NetStats {
            peer_downs: (0..n).map(|_| AtomicU64::new(0)).collect(),
            peer_reconnects: (0..n).map(|_| AtomicU64::new(0)).collect(),
            ..NetStats::default()
        }
    }

    /// Records a dead link to `peer` (no-op without per-peer slots).
    pub fn peer_down(&self, peer: usize) {
        if let Some(c) = self.peer_downs.get(peer) {
            c.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }

    /// Records a re-accepted link from `peer`.
    pub fn peer_reconnect(&self, peer: usize) {
        if let Some(c) = self.peer_reconnects.get(peer) {
            c.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }

    /// Total dead-link events across all peers.
    pub fn peer_downs_total(&self) -> u64 {
        self.peer_downs.iter().map(|c| c.load(std::sync::atomic::Ordering::Relaxed)).sum()
    }

    /// Total re-accepted links across all peers.
    pub fn peer_reconnects_total(&self) -> u64 {
        self.peer_reconnects.iter().map(|c| c.load(std::sync::atomic::Ordering::Relaxed)).sum()
    }
}

/// One worker's view of the interconnect: send to any worker, receive
/// from an inbox that merges every peer. Shared by the worker's comper,
/// receiver and responder threads, hence `Send + Sync`.
///
/// Delivery contract (both backends): per directed link, messages from
/// one sending thread arrive in send order unless the fault model
/// reorders them; sends never block on the receiver; sends to a
/// departed or crashed peer are silently discarded.
pub trait NetEndpoint: Send + Sync {
    /// This endpoint's worker ID.
    fn id(&self) -> WorkerId;

    /// Number of workers on the interconnect.
    fn num_workers(&self) -> usize;

    /// Sends `msg` to worker `to` (self-sends loop straight back to the
    /// inbox).
    fn send(&self, to: WorkerId, msg: Message);

    /// Broadcasts `msg` to every worker except this one.
    fn broadcast(&self, msg: &Message) {
        for w in 0..self.num_workers() {
            if w != self.id().index() {
                self.send(WorkerId(w as u16), msg.clone());
            }
        }
    }

    /// Puts a message this worker already received back on its own
    /// inbox, to be consumed again later — the cluster-recovery
    /// rendezvous uses this to stash peer traffic that raced ahead of
    /// the master's `Resume`. Backends override it to bypass fault
    /// injection and traffic accounting; the default re-sends to self.
    fn requeue(&self, msg: Message) {
        self.send(self.id(), msg);
    }

    /// Non-blocking receive.
    fn try_recv(&self) -> Option<Message>;

    /// Receive with a timeout; `None` on timeout or disconnect.
    fn recv_timeout(&self, timeout: Duration) -> Option<Message>;

    /// Drains up to `max` queued messages into `out`, waiting at most
    /// `timeout` for the first; returns how many arrived. One call per
    /// receiver wake lets the worker batch its downstream work (install
    /// every response, then issue **one** scheduler wakeup) instead of
    /// paying a wakeup per message.
    fn recv_batch(&self, timeout: Duration, max: usize, out: &mut Vec<Message>) -> usize {
        let Some(first) = self.recv_timeout(timeout) else {
            return 0;
        };
        out.push(first);
        let mut n = 1;
        while n < max {
            let Some(m) = self.try_recv() else { break };
            out.push(m);
            n += 1;
        }
        n
    }

    /// This worker's traffic counters.
    fn stats(&self) -> &NetStats;

    /// This worker's fault counters; `None` when fault injection is off.
    fn fault_stats(&self) -> Option<&FaultStats>;
}

/// A job's interconnect: knows the cluster size, which workers live in
/// this process, and hands each of them its endpoint exactly once.
pub trait Transport {
    /// Total workers in the cluster (across all processes).
    fn num_workers(&self) -> usize;

    /// The workers this transport hosts in the current process: all of
    /// them for the simulated router, exactly one for TCP.
    fn hosted(&self) -> Vec<WorkerId>;

    /// Takes worker `w`'s endpoint. Panics if `w` is not hosted here or
    /// its endpoint was already taken.
    fn take_endpoint(&mut self, w: WorkerId) -> Box<dyn NetEndpoint>;
}
