//! Versioned, checksummed frames for bytes that cross a trust
//! boundary: TCP socket traffic and steal-batch payloads.
//!
//! Layout (all little-endian):
//!
//! ```text
//! magic  u32   "GTKW" — rejects a non-G-thinker peer immediately
//! version u16  WIRE_VERSION — rejects a mismatched build descriptively
//! reserved u16 always 0 (future flags)
//! len    u32   payload length in bytes
//! payload …
//! crc    u32   crc32(payload), the checkpoint trailer's CRC
//! ```
//!
//! The header protects *protocol* agreement (magic + version), the
//! trailer protects *integrity* (same CRC32 as the checkpoint files).
//! A mismatched or corrupt frame fails with a descriptive
//! [`FrameError`] instead of a garbage decode downstream.

use gthinker_task::codec::crc32;
use std::io::{self, Read, Write};

/// `b"GTKW"` as a little-endian u32: G-Thinker Wire.
pub const MAGIC: u32 = u32::from_le_bytes(*b"GTKW");

/// Bump whenever the frame layout or any [`crate::message::Message`]
/// encoding changes; peers with different versions refuse each other.
/// v4: hello payload carries a rejoin generation number.
pub const WIRE_VERSION: u16 = 4;

/// Fixed bytes around every payload: 12-byte header + 4-byte CRC.
pub const FRAME_OVERHEAD: usize = HEADER_LEN + 4;

const HEADER_LEN: usize = 12;

/// Refuse absurd lengths before allocating (a corrupt or hostile
/// header must not OOM the worker).
const MAX_PAYLOAD: u32 = 1 << 30;

/// Why a frame was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// First four bytes are not the G-thinker magic.
    BadMagic(u32),
    /// The peer speaks a different wire version.
    VersionMismatch {
        /// Version the peer sent.
        got: u16,
        /// Version this build speaks.
        want: u16,
    },
    /// Fewer bytes than the header + declared payload + CRC.
    Truncated,
    /// Declared payload length exceeds the sanity cap.
    TooLarge(u32),
    /// Reserved header bits set by a (future?) peer this build cannot
    /// interpret.
    ReservedBits(u16),
    /// Payload bytes do not match the CRC trailer.
    CrcMismatch,
    /// Bytes left over after the frame (whole-buffer opens only).
    TrailingBytes,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic(got) => write!(
                f,
                "bad frame magic {got:#010x} (expected {MAGIC:#010x}): peer is not a G-thinker worker"
            ),
            FrameError::VersionMismatch { got, want } => write!(
                f,
                "wire version mismatch: peer speaks v{got}, this build speaks v{want}; \
                 run the same gthinker version on every machine"
            ),
            FrameError::ReservedBits(bits) => {
                write!(f, "reserved frame bits {bits:#06x} set; peer is from a newer build")
            }
            FrameError::Truncated => write!(f, "truncated frame"),
            FrameError::TooLarge(len) => write!(f, "frame payload of {len} bytes exceeds the cap"),
            FrameError::CrcMismatch => write!(f, "frame CRC32 mismatch (corrupt payload)"),
            FrameError::TrailingBytes => write!(f, "trailing bytes after frame"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<FrameError> for io::Error {
    fn from(e: FrameError) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, e)
    }
}

/// Wraps `payload` in a complete frame.
pub fn seal(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_OVERHEAD + payload.len());
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&WIRE_VERSION.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out
}

/// Seals a frame **in place**: clears `out`, writes the header, lets
/// `write_payload` append the payload bytes directly (no intermediate
/// payload allocation), then patches the length and appends the CRC.
/// This is the zero-copy seal the pooled frame buffers use — a message
/// encodes straight into the wire buffer it will be written from.
pub fn seal_with(out: &mut Vec<u8>, write_payload: impl FnOnce(&mut Vec<u8>)) {
    out.clear();
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&WIRE_VERSION.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes()); // length, patched below
    write_payload(out);
    let len = out.len() - HEADER_LEN;
    assert!(len as u64 <= MAX_PAYLOAD as u64, "payload of {len} bytes exceeds the frame cap");
    out[8..12].copy_from_slice(&(len as u32).to_le_bytes());
    let crc = crc32(&out[HEADER_LEN..]);
    out.extend_from_slice(&crc.to_le_bytes());
}

fn check_header(header: &[u8; HEADER_LEN]) -> Result<usize, FrameError> {
    let magic = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
    if magic != MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    let version = u16::from_le_bytes(header[4..6].try_into().expect("2 bytes"));
    if version != WIRE_VERSION {
        return Err(FrameError::VersionMismatch { got: version, want: WIRE_VERSION });
    }
    let reserved = u16::from_le_bytes(header[6..8].try_into().expect("2 bytes"));
    if reserved != 0 {
        return Err(FrameError::ReservedBits(reserved));
    }
    let len = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
    if len > MAX_PAYLOAD {
        return Err(FrameError::TooLarge(len));
    }
    Ok(len as usize)
}

/// Validates a whole buffer as exactly one frame; returns the payload.
pub fn open(frame: &[u8]) -> Result<&[u8], FrameError> {
    if frame.len() < FRAME_OVERHEAD {
        return Err(FrameError::Truncated);
    }
    let header: &[u8; HEADER_LEN] = frame[..HEADER_LEN].try_into().expect("checked");
    let len = check_header(header)?;
    let total = HEADER_LEN + len + 4;
    if frame.len() < total {
        return Err(FrameError::Truncated);
    }
    if frame.len() > total {
        return Err(FrameError::TrailingBytes);
    }
    let payload = &frame[HEADER_LEN..HEADER_LEN + len];
    let crc = u32::from_le_bytes(frame[total - 4..].try_into().expect("4 bytes"));
    if crc32(payload) != crc {
        return Err(FrameError::CrcMismatch);
    }
    Ok(payload)
}

/// Writes one frame to a stream; returns the bytes put on the wire.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<usize> {
    let frame = seal(payload);
    w.write_all(&frame)?;
    Ok(frame.len())
}

/// Reads one frame from a stream. `Ok(None)` on clean EOF at a frame
/// boundary; a frame cut off mid-way, or any header/CRC violation, is
/// an `InvalidData` error carrying the [`FrameError`].
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; HEADER_LEN];
    // Distinguish "no next frame" (clean close) from "frame cut off".
    match r.read(&mut header)? {
        0 => return Ok(None),
        n => r.read_exact(&mut header[n..]).map_err(|_| FrameError::Truncated)?,
    }
    let len = check_header(&header)?;
    let mut rest = vec![0u8; len + 4];
    r.read_exact(&mut rest).map_err(|_| io::Error::from(FrameError::Truncated))?;
    let crc = u32::from_le_bytes(rest[len..].try_into().expect("4 bytes"));
    rest.truncate(len);
    if crc32(&rest) != crc {
        return Err(FrameError::CrcMismatch.into());
    }
    Ok(Some(rest))
}

/// Incremental frame decoder for a non-blocking byte stream: feed it
/// whatever the socket returned — one byte, half a header, three
/// frames and a tail — and pull complete, CRC-verified payloads out.
///
/// The evented data plane reads the socket **directly into** the
/// decoder's buffer ([`space`](FrameDecoder::space) +
/// [`commit`](FrameDecoder::commit)), so inbound bytes are copied
/// exactly once (kernel → buffer) and payloads are borrowed from that
/// buffer, never re-materialized. Any header or CRC violation is a
/// hard [`FrameError`]: a framing stream that has lost sync cannot be
/// resynchronized, so the link must be torn down.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    /// `buf[start..filled]` holds the unconsumed byte stream.
    buf: Vec<u8>,
    start: usize,
    filled: usize,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Bytes buffered but not yet consumed by [`next`](Self::next).
    /// Zero exactly when the stream sits at a frame boundary — a clean
    /// EOF here is a graceful close, anywhere else a truncation.
    pub fn pending(&self) -> usize {
        self.filled - self.start
    }

    /// Exposes at least `min` bytes of writable tail space for a
    /// direct `read()`; follow with [`commit`](Self::commit) for the
    /// bytes actually read. Compacts consumed bytes to the front first,
    /// so the buffer stays bounded by the largest in-flight frame plus
    /// one read chunk.
    pub fn space(&mut self, min: usize) -> &mut [u8] {
        if self.start > 0 {
            self.buf.copy_within(self.start..self.filled, 0);
            self.filled -= self.start;
            self.start = 0;
        }
        if self.buf.len() < self.filled + min {
            self.buf.resize(self.filled + min, 0);
        }
        &mut self.buf[self.filled..]
    }

    /// Marks `n` bytes of [`space`](Self::space) as filled by a read.
    pub fn commit(&mut self, n: usize) {
        assert!(self.filled + n <= self.buf.len(), "commit past the space handed out");
        self.filled += n;
    }

    /// Appends bytes that arrived in a caller-owned buffer (tests and
    /// non-socket feeds; the socket path uses `space`/`commit`).
    pub fn extend(&mut self, bytes: &[u8]) {
        let space = self.space(bytes.len());
        space[..bytes.len()].copy_from_slice(bytes);
        self.filled += bytes.len();
    }

    /// The next complete frame's payload, `Ok(None)` when more bytes
    /// are needed, or the [`FrameError`] that makes this stream
    /// unrecoverable. The returned slice borrows the internal buffer
    /// and is valid until the next `space`/`extend` call.
    // Not `Iterator`: the item borrows `self` (a lending iterator) and
    // decode errors must surface, neither of which `Iterator` can say.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<&[u8]>, FrameError> {
        let avail = &self.buf[self.start..self.filled];
        if avail.len() < HEADER_LEN {
            return Ok(None);
        }
        let header: &[u8; HEADER_LEN] = avail[..HEADER_LEN].try_into().expect("checked");
        let len = check_header(header)?;
        let total = HEADER_LEN + len + 4;
        if avail.len() < total {
            return Ok(None);
        }
        let payload = &avail[HEADER_LEN..HEADER_LEN + len];
        let crc = u32::from_le_bytes(avail[total - 4..total].try_into().expect("4 bytes"));
        if crc32(payload) != crc {
            return Err(FrameError::CrcMismatch);
        }
        let payload_start = self.start + HEADER_LEN;
        self.start += total;
        Ok(Some(&self.buf[payload_start..payload_start + len]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_open_round_trip() {
        for payload in [&b""[..], b"x", &[7u8; 1000]] {
            let f = seal(payload);
            assert_eq!(f.len(), FRAME_OVERHEAD + payload.len());
            assert_eq!(open(&f).unwrap(), payload);
        }
    }

    #[test]
    fn bad_magic_is_descriptive() {
        let mut f = seal(b"hello");
        f[0] ^= 0xFF;
        let err = open(&f).unwrap_err();
        assert!(matches!(err, FrameError::BadMagic(_)));
        assert!(err.to_string().contains("not a G-thinker worker"), "{err}");
    }

    #[test]
    fn version_mismatch_is_descriptive() {
        let mut f = seal(b"hello");
        f[4] = WIRE_VERSION as u8 + 1;
        let err = open(&f).unwrap_err();
        assert_eq!(err, FrameError::VersionMismatch { got: WIRE_VERSION + 1, want: WIRE_VERSION });
        assert!(err.to_string().contains("version mismatch"), "{err}");
    }

    #[test]
    fn corruption_and_truncation_rejected() {
        let f = seal(b"payload bytes");
        for cut in 0..f.len() {
            assert!(open(&f[..cut]).is_err(), "cut at {cut}");
        }
        for i in 0..f.len() {
            let mut bad = f.clone();
            bad[i] ^= 0x20;
            assert!(open(&bad).is_err(), "flip at {i}");
        }
        let mut trailing = f.clone();
        trailing.push(0);
        assert_eq!(open(&trailing).unwrap_err(), FrameError::TrailingBytes);
    }

    #[test]
    fn huge_length_rejected_before_allocation() {
        let mut f = seal(b"");
        f[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(open(&f).unwrap_err(), FrameError::TooLarge(_)));
        // Streaming path too.
        let mut cursor = std::io::Cursor::new(f);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn stream_round_trip_and_clean_eof() {
        let mut buf = Vec::new();
        let n1 = write_frame(&mut buf, b"first").unwrap();
        let n2 = write_frame(&mut buf, b"").unwrap();
        assert_eq!(n1, FRAME_OVERHEAD + 5);
        assert_eq!(n2, FRAME_OVERHEAD);
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap().as_deref(), Some(&b"first"[..]));
        assert_eq!(read_frame(&mut cursor).unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(read_frame(&mut cursor).unwrap(), None, "clean EOF");
    }

    #[test]
    fn seal_with_matches_seal() {
        for payload in [&b""[..], b"x", &[7u8; 1000]] {
            let mut buf = vec![0xAA; 3]; // stale content must be cleared
            seal_with(&mut buf, |b| b.extend_from_slice(payload));
            assert_eq!(buf, seal(payload));
        }
    }

    #[test]
    fn decoder_reassembles_byte_at_a_time() {
        let mut stream = Vec::new();
        let payloads: [&[u8]; 3] = [b"first", b"", &[9u8; 300]];
        for p in payloads {
            stream.extend_from_slice(&seal(p));
        }
        let mut dec = FrameDecoder::new();
        let mut got: Vec<Vec<u8>> = Vec::new();
        for b in stream {
            dec.extend(&[b]);
            while let Some(p) = dec.next().expect("clean stream") {
                got.push(p.to_vec());
            }
        }
        assert_eq!(got, payloads.map(<[u8]>::to_vec));
        assert_eq!(dec.pending(), 0, "clean frame boundary");
    }

    #[test]
    fn decoder_space_commit_path_matches_extend() {
        let frame = seal(b"space/commit payload");
        let mut dec = FrameDecoder::new();
        for chunk in frame.chunks(7) {
            let space = dec.space(chunk.len());
            space[..chunk.len()].copy_from_slice(chunk);
            dec.commit(chunk.len());
        }
        assert_eq!(dec.next().unwrap(), Some(&b"space/commit payload"[..]));
        assert_eq!(dec.next().unwrap(), None);
    }

    #[test]
    fn decoder_rejects_corruption() {
        let mut bad = seal(b"payload");
        let n = bad.len();
        bad[n - 2] ^= 0x40; // flip a CRC byte
        let mut dec = FrameDecoder::new();
        dec.extend(&bad);
        assert_eq!(dec.next().unwrap_err(), FrameError::CrcMismatch);
        let mut dec = FrameDecoder::new();
        dec.extend(b"XXXXXXXXXXXXXXXX");
        assert!(matches!(dec.next().unwrap_err(), FrameError::BadMagic(_)));
    }

    #[test]
    fn stream_cut_mid_frame_is_error_not_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"unfinished").unwrap();
        for cut in 1..buf.len() {
            let mut cursor = std::io::Cursor::new(&buf[..cut]);
            assert!(read_frame(&mut cursor).is_err(), "cut at {cut}");
        }
    }
}
