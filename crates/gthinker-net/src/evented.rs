//! The evented TCP data plane: **one non-blocking I/O thread per
//! worker process**, owning every peer socket, driven by `poll(2)`.
//!
//! The threaded backend spends ~3 threads per peer (reader, writer
//! lock-holder, delay re-transmitter) and copies every frame through
//! intermediate buffers. This backend replaces all of it with a single
//! loop (`tcp-io-<worker>`):
//!
//! * **Sealed once, written everywhere.** `send` encodes the message
//!   straight into a pooled wire buffer ([`FramePool`]); a broadcast
//!   clones the [`SealedFrame`] handle into each peer's ring — the
//!   bytes are never copied per destination.
//! * **Per-peer bounded outbound rings.** Senders enqueue and return;
//!   when a ring is full (slow peer or wire) the sender waits on the
//!   ring's condvar, counted as a [`NetStats::backpressure_stalls`].
//!   The I/O loop is the only consumer, so its own inserts (due
//!   delayed frames, teardown flush) never block.
//! * **Vectored, coalesced writes.** When a socket is writable the
//!   loop gathers up to [`WRITEV_MAX_FRAMES`] queued frames into one
//!   `write_vectored` call — small control frames ride along with
//!   data frames instead of paying a syscall each
//!   ([`NetStats::writev_calls`] / [`NetStats::frames_coalesced`]).
//! * **Streaming reads.** Sockets are read in large chunks directly
//!   into a per-peer [`FrameDecoder`], which hands back every complete
//!   CRC-verified payload regardless of where the kernel split the
//!   byte stream; messages are decoded in place from the decoder's
//!   buffer.
//! * **Fault injection re-landed in the loop.** Send-side decisions
//!   still come from the shared [`FaultRuntime`] at the same call
//!   sites, so a seed makes byte-identical drop/dup/delay choices on
//!   every backend; the delay *heap* now lives inside the loop (its
//!   deadline bounds the poll timeout) instead of a dedicated thread,
//!   and wall-clock crash schedules fire from the loop's timeout path
//!   instead of a timer thread.
//! * **Peer death is an event** exactly as on the threaded backend:
//!   read EOF/error or a failed write marks the link down, bumps the
//!   per-peer counter and injects [`Message::PeerDown`] into the local
//!   inbox.
//!
//! A wake channel (a non-blocking `UnixStream` pair plus an
//! edge-triggered flag) gets the loop out of `poll` when a sender
//! enqueues; the flag collapses any number of concurrent sends into at
//! most one wake byte per poll iteration.

use crate::fault::FaultRuntime;
use crate::frame::{FrameDecoder, FRAME_OVERHEAD};
use crate::message::Message;
use crate::pool::{FramePool, SealedFrame};
use crate::tcp::crash_self;
use crate::transport::{NetEndpoint, NetStats};
use crossbeam::channel::{Receiver, Sender};
use gthinker_graph::ids::WorkerId;
use gthinker_task::codec::{self, Encode};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::io::{self, ErrorKind, IoSlice, Read, Write};
use std::net::TcpStream;
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Cap on queued outbound bytes per peer; a sender hitting it waits
/// (backpressure) until the I/O loop drains the ring below it.
const RING_MAX_BYTES: usize = 8 * 1024 * 1024;

/// Most frames gathered into a single vectored write (Linux caps an
/// iovec at 1024 entries; 64 already amortizes the syscall to noise).
pub const WRITEV_MAX_FRAMES: usize = 64;

/// Socket read chunk: large enough that one syscall drains many small
/// frames, small enough not to bloat idle per-peer buffers.
const READ_CHUNK: usize = 64 * 1024;

/// Poll timeout when nothing is due: pure idle, woken early by the
/// wake channel on any send.
const IDLE_POLL: Duration = Duration::from_millis(50);

/// One peer's outbound state. `frames` and `head_off` are consumed
/// only by the I/O loop; senders only push, which keeps the advance
/// logic single-writer.
struct OutRing {
    frames: VecDeque<SealedFrame>,
    /// Bytes of `frames[0]` already on the wire (partial write).
    head_off: usize,
    /// Total queued bytes (the backpressure gauge).
    bytes: usize,
    /// Peer's socket is dead or absent; sends are silently discarded,
    /// matching the threaded backend and the trait contract.
    gone: bool,
}

struct PeerOut {
    ring: Mutex<OutRing>,
    space: Condvar,
}

impl PeerOut {
    fn new(gone: bool) -> PeerOut {
        PeerOut {
            ring: Mutex::new(OutRing { frames: VecDeque::new(), head_off: 0, bytes: 0, gone }),
            space: Condvar::new(),
        }
    }
}

/// A fault-delayed frame waiting in the loop's deadline heap.
struct Delayed {
    deliver_at: Instant,
    seq: u64,
    to: usize,
    frame: SealedFrame,
}

impl PartialEq for Delayed {
    fn eq(&self, other: &Self) -> bool {
        (self.deliver_at, self.seq) == (other.deliver_at, other.seq)
    }
}
impl Eq for Delayed {}
impl PartialOrd for Delayed {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Delayed {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deliver_at, self.seq).cmp(&(other.deliver_at, other.seq))
    }
}

/// State shared between the endpoint (any worker thread may send) and
/// the I/O loop.
struct EventedShared {
    outbound: Vec<PeerOut>,
    delay: Mutex<BinaryHeap<Reverse<Delayed>>>,
    wake_tx: UnixStream,
    wake_flag: AtomicBool,
    stop: AtomicBool,
}

impl EventedShared {
    /// Gets the loop out of `poll`. The flag is cleared by the loop
    /// *before* it examines the rings, so a send landing between the
    /// clear and the examination re-arms the wake rather than being
    /// lost; any number of sends between two poll iterations cost one
    /// wake byte.
    fn wake(&self) {
        if !self.wake_flag.swap(true, Ordering::SeqCst) {
            // WouldBlock means wake bytes are already queued — the loop
            // is guaranteed to come around.
            let _ = (&self.wake_tx).write(&[1u8]);
        }
    }

    /// Sender-side enqueue with backpressure: waits while the ring is
    /// over [`RING_MAX_BYTES`], gives up silently once the peer is
    /// gone (trait contract: sends to a departed peer are discarded).
    fn enqueue(&self, to: usize, frame: SealedFrame, stats: &NetStats) {
        let peer = &self.outbound[to];
        let mut ring = peer.ring.lock().expect("outbound ring lock");
        if ring.gone {
            return;
        }
        if ring.bytes >= RING_MAX_BYTES {
            stats.backpressure_stalls.fetch_add(1, Ordering::Relaxed);
            while ring.bytes >= RING_MAX_BYTES && !ring.gone {
                if self.stop.load(Ordering::SeqCst) {
                    return; // teardown: the flush path owns the ring now
                }
                // Re-wake on every lap: the loop may have gone idle
                // between our check and its last drain.
                self.wake();
                ring = peer
                    .space
                    .wait_timeout(ring, Duration::from_millis(20))
                    .expect("outbound ring lock")
                    .0;
            }
            if ring.gone {
                return;
            }
        }
        ring.bytes += frame.len();
        ring.frames.push_back(frame);
        drop(ring);
        self.wake();
    }

    /// Loop-side insert for frames whose injected delay expired. Never
    /// blocks (the loop is the only drainer — waiting on itself would
    /// deadlock); a dead peer's frame is dropped and counted.
    fn enqueue_unbounded(&self, to: usize, frame: SealedFrame, stats: &NetStats) {
        let mut ring = self.outbound[to].ring.lock().expect("outbound ring lock");
        if ring.gone {
            stats.delayed_write_errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
        ring.bytes += frame.len();
        ring.frames.push_back(frame);
    }
}

/// What a `pollfd` slot refers to.
#[derive(Clone, Copy)]
enum Slot {
    Wake,
    Read(usize),
    /// A peer socket registered for POLLOUT; the drain pass below
    /// covers every non-empty ring, so the slot needs no payload.
    Write,
}

/// The I/O loop's thread-local state: it owns every socket.
struct IoLoop {
    me: usize,
    shared: Arc<EventedShared>,
    stats: Arc<NetStats>,
    fault: Option<Arc<FaultRuntime>>,
    inbox_tx: Sender<Message>,
    wake_rx: UnixStream,
    reads: Vec<Option<ReadHalf>>,
    writes: Vec<Option<TcpStream>>,
    /// Wall-clock crash-schedule deadline for this process (the
    /// threaded backend's timer thread, folded into the poll timeout).
    crash_wall: Option<Instant>,
}

struct ReadHalf {
    stream: TcpStream,
    dec: FrameDecoder,
}

fn poll(fds: &mut [libc::pollfd], timeout: Duration) -> io::Result<usize> {
    // Round up so a 0.3ms deadline does not busy-spin at timeout 0.
    let ms = timeout.as_millis().min(i32::MAX as u128) as i64;
    let ms = if timeout > Duration::from_millis(ms as u64) { ms + 1 } else { ms };
    loop {
        let r = unsafe { libc::poll(fds.as_mut_ptr(), fds.len() as libc::nfds_t, ms as i32) };
        if r >= 0 {
            return Ok(r as usize);
        }
        let e = io::Error::last_os_error();
        if e.kind() != ErrorKind::Interrupted {
            return Err(e);
        }
    }
}

impl IoLoop {
    fn run(mut self) {
        let mut fds: Vec<libc::pollfd> = Vec::new();
        let mut slots: Vec<Slot> = Vec::new();
        loop {
            if self.shared.stop.load(Ordering::SeqCst) {
                self.shutdown_flush();
                return;
            }
            let mut timeout = IDLE_POLL;
            // Wall-clock crash schedule: the deadline bounds the poll
            // timeout; when it passes, the schedule gets its one check.
            if let Some(deadline) = self.crash_wall {
                let now = Instant::now();
                if now >= deadline {
                    self.crash_wall = None;
                    if let Some(f) = &self.fault {
                        if f.crash_due() == Some(self.me) {
                            crash_self(self.me);
                        }
                    }
                } else {
                    timeout = timeout.min(deadline - now);
                }
            }
            // Release fault-delayed frames whose time has come; the
            // next deadline, if any, also bounds the poll timeout.
            if let Some(next) = self.release_due_delays() {
                timeout = timeout.min(next.saturating_duration_since(Instant::now()));
            }

            fds.clear();
            slots.clear();
            fds.push(libc::pollfd {
                fd: self.wake_rx.as_raw_fd(),
                events: libc::POLLIN,
                revents: 0,
            });
            slots.push(Slot::Wake);
            for (p, r) in self.reads.iter().enumerate() {
                if let Some(rh) = r {
                    fds.push(libc::pollfd {
                        fd: rh.stream.as_raw_fd(),
                        events: libc::POLLIN,
                        revents: 0,
                    });
                    slots.push(Slot::Read(p));
                }
            }
            for (p, w) in self.writes.iter().enumerate() {
                if let Some(stream) = w {
                    let pending = {
                        let ring = self.shared.outbound[p].ring.lock().expect("ring lock");
                        !ring.frames.is_empty()
                    };
                    if pending {
                        fds.push(libc::pollfd {
                            fd: stream.as_raw_fd(),
                            events: libc::POLLOUT,
                            revents: 0,
                        });
                        slots.push(Slot::Write);
                    }
                }
            }

            if poll(&mut fds, timeout).is_err() {
                // EBADF etc. — transient teardown races; back off a
                // touch so a persistent error cannot spin the CPU.
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }

            for i in 0..fds.len() {
                if fds[i].revents == 0 {
                    continue;
                }
                match slots[i] {
                    Slot::Wake => {
                        let mut sink = [0u8; 64];
                        while matches!((&self.wake_rx).read(&mut sink), Ok(n) if n > 0) {}
                        self.shared.wake_flag.store(false, Ordering::SeqCst);
                    }
                    Slot::Read(p) => self.service_read(p),
                    // Write slots are serviced below for every
                    // non-empty ring; POLLOUT only wakes the poll.
                    Slot::Write => {}
                }
            }

            // Attempt a drain of every non-empty ring each iteration —
            // cheap when the socket says WouldBlock, and it catches
            // frames enqueued since the poll set was built.
            for p in 0..self.writes.len() {
                self.service_write(p);
            }
        }
    }

    /// Moves due delayed frames into their rings; returns the next
    /// deadline still waiting.
    fn release_due_delays(&mut self) -> Option<Instant> {
        let mut due = Vec::new();
        let next = {
            let mut delay = self.shared.delay.lock().expect("delay heap lock");
            let now = Instant::now();
            while delay.peek().is_some_and(|Reverse(d)| d.deliver_at <= now) {
                due.push(delay.pop().expect("peeked").0);
            }
            delay.peek().map(|Reverse(d)| d.deliver_at)
        };
        for d in due {
            self.shared.enqueue_unbounded(d.to, d.frame, &self.stats);
        }
        next
    }

    fn service_read(&mut self, p: usize) {
        let Some(mut rh) = self.reads[p].take() else { return };
        if self.pump_read(p, &mut rh) {
            self.reads[p] = Some(rh);
        }
    }

    /// Reads and decodes until the socket would block; returns false
    /// when the link died (EOF, error, or framing violation).
    fn pump_read(&mut self, p: usize, rh: &mut ReadHalf) -> bool {
        loop {
            let space = rh.dec.space(READ_CHUNK);
            let n = match rh.stream.read(space) {
                Ok(0) => {
                    self.link_down(p, None);
                    return false;
                }
                Ok(n) => n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => {
                    self.link_down(p, Some(e));
                    return false;
                }
            };
            rh.dec.commit(n);
            loop {
                match rh.dec.next() {
                    Ok(Some(payload)) => {
                        match codec::from_bytes::<Message>(payload) {
                            Ok(msg) => {
                                self.stats.bytes_received.fetch_add(
                                    (payload.len() + FRAME_OVERHEAD) as u64,
                                    Ordering::Relaxed,
                                );
                                self.stats.msgs_received.fetch_add(1, Ordering::Relaxed);
                                if self.inbox_tx.send(msg).is_err() {
                                    return false; // endpoint gone: job teardown
                                }
                            }
                            Err(e) => eprintln!(
                                "gthinker-net: undecodable frame from worker {p} dropped: {e}"
                            ),
                        }
                    }
                    Ok(None) => break,
                    Err(e) => {
                        // A framing stream that lost sync cannot
                        // recover; same handling as the threaded
                        // reader's read_frame error.
                        self.link_down(p, Some(e.into()));
                        return false;
                    }
                }
            }
            if n < READ_CHUNK {
                return true; // drained the socket; poll re-arms us
            }
        }
    }

    /// Writes as much of `p`'s ring as the socket will take, vectoring
    /// up to [`WRITEV_MAX_FRAMES`] frames per syscall.
    fn service_write(&mut self, p: usize) {
        let peer = &self.shared.outbound[p];
        let mut dead = false;
        if let Some(stream) = self.writes[p].as_mut() {
            let mut ring = peer.ring.lock().expect("ring lock");
            loop {
                if ring.frames.is_empty() {
                    break;
                }
                let mut bufs: Vec<IoSlice<'_>> =
                    Vec::with_capacity(ring.frames.len().min(WRITEV_MAX_FRAMES));
                for (i, f) in ring.frames.iter().take(WRITEV_MAX_FRAMES).enumerate() {
                    let b = f.bytes();
                    bufs.push(IoSlice::new(if i == 0 { &b[ring.head_off..] } else { b }));
                }
                match stream.write_vectored(&bufs) {
                    Ok(mut n) if n > 0 => {
                        self.stats.writev_calls.fetch_add(1, Ordering::Relaxed);
                        if bufs.len() > 1 {
                            self.stats
                                .frames_coalesced
                                .fetch_add((bufs.len() - 1) as u64, Ordering::Relaxed);
                        }
                        while n > 0 {
                            let head_remaining = ring.frames[0].len() - ring.head_off;
                            if n >= head_remaining {
                                n -= head_remaining;
                                let f = ring.frames.pop_front().expect("nonempty");
                                ring.bytes -= f.len();
                                ring.head_off = 0;
                            } else {
                                ring.head_off += n;
                                n = 0;
                            }
                        }
                        peer.space.notify_all();
                    }
                    Ok(_) => break, // zero-length write: try again later
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        // Peer died: discard the ring, stop accepting,
                        // surface the event. Mirrors the threaded
                        // dispatch path's write failure.
                        ring.gone = true;
                        ring.frames.clear();
                        ring.bytes = 0;
                        ring.head_off = 0;
                        peer.space.notify_all();
                        dead = true;
                        break;
                    }
                }
            }
        }
        if dead {
            self.writes[p] = None;
            self.link_down(p, None);
        }
    }

    /// A link to `p` died: count it and surface a `PeerDown` event,
    /// whichever half noticed first (same contract as the threaded
    /// backend's reader/dispatch failures).
    fn link_down(&mut self, p: usize, context: Option<io::Error>) {
        if let Some(e) = context {
            if !matches!(e.kind(), ErrorKind::ConnectionReset | ErrorKind::ConnectionAborted) {
                eprintln!("gthinker-net: link from worker {p} failed: {e}");
            }
        }
        self.stats.peer_down(p);
        let _ = self.inbox_tx.send(Message::PeerDown { worker: WorkerId(p as u16) });
    }

    /// Endpoint teardown: deliver everything still pending — the
    /// threaded backend's synchronous `write_all` semantics mean the
    /// final control messages (terminate, final reports, acks) were
    /// already on the wire when the endpoint dropped, and peers rely
    /// on that. Delayed frames flush immediately (as the threaded
    /// delay thread does on disconnect), then every ring is written
    /// dry on a re-blocked socket with a bounded write timeout.
    fn shutdown_flush(&mut self) {
        let heap = std::mem::take(&mut *self.shared.delay.lock().expect("delay heap lock"));
        for Reverse(d) in heap.into_sorted_vec().into_iter().rev() {
            self.shared.enqueue_unbounded(d.to, d.frame, &self.stats);
        }
        for p in 0..self.writes.len() {
            let peer = &self.shared.outbound[p];
            let (frames, head_off) = {
                let mut ring = peer.ring.lock().expect("ring lock");
                ring.gone = true; // no new frames past this point
                ring.bytes = 0;
                let off = ring.head_off;
                ring.head_off = 0;
                (std::mem::take(&mut ring.frames), off)
            };
            peer.space.notify_all();
            let Some(stream) = self.writes[p].as_mut() else { continue };
            let _ = stream.set_nonblocking(false);
            let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
            let mut off = head_off;
            for f in frames {
                if stream.write_all(&f.bytes()[off..]).is_err() {
                    break; // peer already gone; nothing to deliver to
                }
                off = 0;
            }
        }
    }
}

/// Builds the evented endpoint over an established mesh: takes
/// ownership of every link, switches it non-blocking, and starts the
/// single I/O thread.
#[allow(clippy::too_many_arguments)]
pub(crate) fn launch(
    me: WorkerId,
    n: usize,
    write_streams: Vec<Option<TcpStream>>,
    read_streams: Vec<Option<TcpStream>>,
    stats: Arc<NetStats>,
    fault: Option<Arc<FaultRuntime>>,
    inbox_tx: Sender<Message>,
    inbox: Receiver<Message>,
) -> io::Result<EventedEndpoint> {
    for s in write_streams.iter().chain(read_streams.iter()).flatten() {
        s.set_nonblocking(true)?;
    }
    let (wake_tx, wake_rx) = UnixStream::pair()?;
    wake_tx.set_nonblocking(true)?;
    wake_rx.set_nonblocking(true)?;

    let shared = Arc::new(EventedShared {
        outbound: (0..n).map(|p| PeerOut::new(write_streams[p].is_none())).collect(),
        delay: Mutex::new(BinaryHeap::new()),
        wake_tx,
        wake_flag: AtomicBool::new(false),
        stop: AtomicBool::new(false),
    });

    let crash_wall = fault.as_ref().and_then(|f| {
        let cs = f.config().crash?;
        (cs.worker == me).then_some(cs.after).flatten().map(|after| Instant::now() + after)
    });

    let io_loop = IoLoop {
        me: me.index(),
        shared: Arc::clone(&shared),
        stats: Arc::clone(&stats),
        fault: fault.clone(),
        inbox_tx: inbox_tx.clone(),
        wake_rx,
        reads: read_streams
            .into_iter()
            .map(|s| s.map(|stream| ReadHalf { stream, dec: FrameDecoder::new() }))
            .collect(),
        writes: write_streams,
        crash_wall,
    };
    let io_thread = std::thread::Builder::new()
        .name(format!("tcp-io-{}", me.index()))
        .spawn(move || io_loop.run())
        .map_err(|e| io::Error::other(format!("spawn tcp-io thread: {e}")))?;

    Ok(EventedEndpoint {
        me: me.index(),
        n,
        shared,
        pool: FramePool::new(),
        stats,
        fault,
        inbox,
        inbox_tx,
        delay_seq: AtomicU64::new(0),
        io_thread: Some(io_thread),
    })
}

/// This process's endpoint on the evented mesh. Senders seal into the
/// pool and enqueue; the I/O thread does every syscall. Byte counters
/// measure real wire bytes exactly as the threaded backend does.
pub struct EventedEndpoint {
    me: usize,
    n: usize,
    shared: Arc<EventedShared>,
    pool: Arc<FramePool>,
    stats: Arc<NetStats>,
    fault: Option<Arc<FaultRuntime>>,
    inbox: Receiver<Message>,
    inbox_tx: Sender<Message>,
    delay_seq: AtomicU64,
    io_thread: Option<std::thread::JoinHandle<()>>,
}

impl EventedEndpoint {
    /// Advances this process's crash schedule by one endpoint message
    /// (send or successful receive); same logical trigger as the
    /// threaded backend.
    fn note_traffic(&self) {
        if let Some(f) = &self.fault {
            if f.crash_due() == Some(self.me) {
                crash_self(self.me);
            }
        }
    }

    /// Parks `frame` in the loop's delay heap until `extra` elapses.
    fn queue_delayed(&self, to: usize, frame: SealedFrame, extra: Duration) {
        self.shared.delay.lock().expect("delay heap lock").push(Reverse(Delayed {
            deliver_at: Instant::now() + extra,
            seq: self.delay_seq.fetch_add(1, Ordering::Relaxed),
            to,
            frame,
        }));
        self.shared.wake();
    }

    /// Routes one sealed frame: now (ring) or later (delay heap).
    fn dispatch(&self, to: usize, frame: SealedFrame, extra: Duration) {
        if extra.is_zero() {
            self.shared.enqueue(to, frame, &self.stats);
        } else {
            self.queue_delayed(to, frame, extra);
        }
    }

    /// Fault roll for one cross-worker data-plane message; returns
    /// `None` when the message is dropped, else `(delay, dup_lag)`.
    fn roll(&self, to: usize, msg: &Message) -> Option<(Duration, Option<Duration>)> {
        let Some(f) = &self.fault else {
            return Some((Duration::ZERO, None));
        };
        if !msg.is_data_plane() {
            return Some((Duration::ZERO, None));
        }
        let d = f.next_decision(self.me, to);
        if d.drop {
            return None;
        }
        let dup = d.duplicate.then(|| d.delay + f.config().reorder_jitter);
        Some((d.delay, dup))
    }

    fn count_send(&self, bytes: u64) {
        self.stats.bytes_sent.fetch_add(bytes, Ordering::Relaxed);
        self.stats.msgs_sent.fetch_add(1, Ordering::Relaxed);
    }
}

impl NetEndpoint for EventedEndpoint {
    fn id(&self) -> WorkerId {
        WorkerId(self.me as u16)
    }

    fn num_workers(&self) -> usize {
        self.n
    }

    fn send(&self, to: WorkerId, msg: Message) {
        self.note_traffic();
        let bytes = (msg.encoded_len() + FRAME_OVERHEAD) as u64;
        self.count_send(bytes);
        if to.index() == self.me {
            self.stats.bytes_received.fetch_add(bytes, Ordering::Relaxed);
            self.stats.msgs_received.fetch_add(1, Ordering::Relaxed);
            let _ = self.inbox_tx.send(msg);
            return;
        }
        let Some((extra, dup_lag)) = self.roll(to.index(), &msg) else {
            return; // dropped by fault injection
        };
        let frame = self.pool.seal(|b| msg.encode(b));
        if let Some(lag) = dup_lag {
            // The copy trails the original by one jitter window.
            self.queue_delayed(to.index(), frame.clone(), lag);
        }
        self.dispatch(to.index(), frame, extra);
    }

    /// Broadcast seals **once**: every destination ring (and any
    /// fault-delayed copy) shares the same pooled buffer. Counters and
    /// fault decisions stay per-link, identical to a send loop.
    fn broadcast(&self, msg: &Message) {
        let bytes = (msg.encoded_len() + FRAME_OVERHEAD) as u64;
        let mut frame: Option<SealedFrame> = None;
        for w in 0..self.n {
            if w == self.me {
                continue;
            }
            self.note_traffic();
            self.count_send(bytes);
            let Some((extra, dup_lag)) = self.roll(w, msg) else {
                continue;
            };
            let f = frame.get_or_insert_with(|| self.pool.seal(|b| msg.encode(b)));
            if let Some(lag) = dup_lag {
                self.queue_delayed(w, f.clone(), lag);
            }
            self.dispatch(w, f.clone(), extra);
        }
    }

    /// Re-injects an already-received message, bypassing fault
    /// decisions and traffic accounting (it was both counted and
    /// fault-rolled on its original trip).
    fn requeue(&self, msg: Message) {
        let _ = self.inbox_tx.send(msg);
    }

    fn try_recv(&self) -> Option<Message> {
        let m = self.inbox.try_recv().ok();
        if m.is_some() {
            self.note_traffic();
        }
        m
    }

    fn recv_timeout(&self, timeout: Duration) -> Option<Message> {
        let m = self.inbox.recv_timeout(timeout).ok();
        if m.is_some() {
            self.note_traffic();
        }
        m
    }

    fn stats(&self) -> &NetStats {
        &self.stats
    }

    fn fault_stats(&self) -> Option<&crate::fault::FaultStats> {
        self.fault.as_deref().map(|f| f.stats(self.me))
    }
}

impl Drop for EventedEndpoint {
    fn drop(&mut self) {
        // Stop the loop; it flushes every pending frame (rings and
        // delay heap) before exiting, then the sockets close.
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.wake();
        if let Some(t) = self.io_thread.take() {
            let _ = t.join();
        }
    }
}
