//! Sender-side request batching (§III desirability 5: "we batch vertex
//! requests and responses for transmission to combat round-trip time
//! and to ensure throughput").
//!
//! Compers append pull requests for remote vertices here; a per-worker
//! accumulator per destination flushes whenever it reaches the batch
//! size, and the comper loop calls [`RequestBatcher::flush_all`] when
//! it runs out of immediate work so that small tails are not delayed.
//! Responses are implicitly batched: the serving side answers a request
//! batch with a single response batch.

use crate::message::Message;
use crate::transport::NetEndpoint;
use gthinker_graph::ids::{VertexId, WorkerId};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default number of vertex requests per network message.
pub const DEFAULT_REQUEST_BATCH: usize = 512;

/// Per-destination request accumulators, shared by all compers of a
/// worker.
pub struct RequestBatcher {
    per_dest: Vec<Mutex<Vec<VertexId>>>,
    /// Mirror of the summed accumulator lengths, so the per-round
    /// quiescence check reads one atomic instead of locking every
    /// per-destination mutex. Updated inside the per-dest lock;
    /// `Relaxed` is enough because the count is advisory for
    /// termination: every queued request is already covered by the
    /// `outstanding_pulls` counter, which the requesting comper
    /// increments (SeqCst) *before* calling [`RequestBatcher::add`],
    /// so a quiescence check that reads a stale 0 here still sees the
    /// pull in flight there.
    queued: AtomicUsize,
    batch_size: usize,
    me: WorkerId,
}

impl RequestBatcher {
    /// Creates a batcher for a worker on an `n`-worker interconnect.
    pub fn new(me: WorkerId, num_workers: usize, batch_size: usize) -> Self {
        assert!(batch_size >= 1);
        RequestBatcher {
            per_dest: (0..num_workers).map(|_| Mutex::new(Vec::new())).collect(),
            queued: AtomicUsize::new(0),
            batch_size,
            me,
        }
    }

    /// Queues a pull request for vertex `v` owned by worker `to`;
    /// transmits the accumulated batch if it reached the batch size.
    pub fn add(&self, net: &dyn NetEndpoint, to: WorkerId, v: VertexId) {
        let full = {
            let mut acc = self.per_dest[to.index()].lock();
            acc.push(v);
            if acc.len() >= self.batch_size {
                self.queued.fetch_sub(acc.len().saturating_sub(1), Ordering::Relaxed);
                Some(std::mem::take(&mut *acc))
            } else {
                self.queued.fetch_add(1, Ordering::Relaxed);
                None
            }
        };
        if let Some(vertices) = full {
            // Stamp at transmission (not enqueue) so the RTT histogram
            // measures the wire + responder path, not sender batching.
            net.send(
                to,
                Message::VertexRequest {
                    from: self.me,
                    vertices,
                    sent_nanos: gthinker_metrics::now_nanos(),
                },
            );
        }
    }

    /// Flushes every non-empty accumulator immediately.
    pub fn flush_all(&self, net: &dyn NetEndpoint) {
        for (w, acc) in self.per_dest.iter().enumerate() {
            let pending = {
                let mut acc = acc.lock();
                if acc.is_empty() {
                    continue;
                }
                self.queued.fetch_sub(acc.len(), Ordering::Relaxed);
                std::mem::take(&mut *acc)
            };
            net.send(
                WorkerId(w as u16),
                Message::VertexRequest {
                    from: self.me,
                    vertices: pending,
                    sent_nanos: gthinker_metrics::now_nanos(),
                },
            );
        }
    }

    /// Number of queued-but-unsent requests. Lock-free: reads the
    /// mirror counter (see the `queued` field for why `Relaxed` is
    /// sound for the quiescence check, its only hot caller).
    pub fn pending(&self) -> usize {
        self.queued.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::{LinkConfig, NetHandle, Router};
    use std::time::Duration;

    fn pair() -> (NetHandle, NetHandle) {
        let mut r = Router::new(2, LinkConfig::INSTANT);
        let mut hs = r.take_handles();
        let h1 = hs.remove(1);
        let h0 = hs.remove(0);
        (h0, h1)
    }

    #[test]
    fn flushes_at_batch_size() {
        let (h0, h1) = pair();
        let b = RequestBatcher::new(WorkerId(0), 2, 3);
        b.add(&h0, WorkerId(1), VertexId(1));
        b.add(&h0, WorkerId(1), VertexId(2));
        assert!(h1.try_recv().is_none(), "below batch size: buffered");
        assert_eq!(b.pending(), 2);
        b.add(&h0, WorkerId(1), VertexId(3));
        match h1.recv_timeout(Duration::from_secs(1)).expect("flushed") {
            Message::VertexRequest { from, vertices, .. } => {
                assert_eq!(from, WorkerId(0));
                assert_eq!(vertices.len(), 3);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(b.pending(), 0);
    }

    #[test]
    fn flush_all_sends_partial_batches() {
        let (h0, h1) = pair();
        let b = RequestBatcher::new(WorkerId(0), 2, 100);
        b.add(&h0, WorkerId(1), VertexId(7));
        b.flush_all(&h0);
        match h1.recv_timeout(Duration::from_secs(1)).expect("flushed") {
            Message::VertexRequest { vertices, .. } => assert_eq!(vertices, vec![VertexId(7)]),
            other => panic!("unexpected {other:?}"),
        }
        // Idempotent when empty.
        b.flush_all(&h0);
        assert!(h1.try_recv().is_none());
    }

    #[test]
    fn destinations_batched_independently() {
        let mut r = Router::new(3, LinkConfig::INSTANT);
        let mut hs = r.take_handles();
        let h2 = hs.remove(2);
        let h1 = hs.remove(1);
        let h0 = hs.remove(0);
        let b = RequestBatcher::new(WorkerId(0), 3, 2);
        b.add(&h0, WorkerId(1), VertexId(1));
        b.add(&h0, WorkerId(2), VertexId(2));
        assert!(h1.try_recv().is_none());
        assert!(h2.try_recv().is_none());
        b.add(&h0, WorkerId(1), VertexId(3));
        assert!(h1.recv_timeout(Duration::from_secs(1)).is_some());
        assert!(h2.try_recv().is_none(), "worker 2's batch still short");
    }

    #[test]
    fn pending_counter_consistent_under_concurrency() {
        let (h0, _h1) = pair();
        let b = std::sync::Arc::new(RequestBatcher::new(WorkerId(0), 2, 7));
        let h0 = std::sync::Arc::new(h0);
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let b = std::sync::Arc::clone(&b);
                let h0 = std::sync::Arc::clone(&h0);
                std::thread::spawn(move || {
                    for i in 0..500u32 {
                        b.add(&*h0, WorkerId(1), VertexId(t * 1000 + i));
                        if i % 31 == 0 {
                            b.flush_all(&*h0);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        b.flush_all(&*h0);
        assert_eq!(b.pending(), 0, "counter must return to zero once drained");
    }
}
