//! The simulated cluster interconnect.
//!
//! A [`Router`] connects `n` simulated workers living in one process.
//! Each worker owns a [`NetHandle`] with an inbox; sends go through an
//! optional **latency/bandwidth model** ([`LinkConfig`]) that reproduces
//! the behaviour of the paper's GigE testbed: every message is delayed
//! by a fixed per-message latency plus its size divided by the link
//! bandwidth, and messages on the same directed link serialize (a large
//! steal batch delays the requests queued behind it).
//!
//! With the default zero-cost config, messages are delivered
//! immediately — that models the single-machine case where "tasks never
//! need to wait for remote vertices" (Table IV(c)).

use crate::fault::{FaultConfig, FaultRuntime, FaultStats};
use crate::message::Message;
use crate::transport::{NetEndpoint, NetStats, Transport};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use gthinker_graph::ids::WorkerId;
use parking_lot::Mutex;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Latency/bandwidth model for every directed link.
#[derive(Clone, Copy, Debug)]
pub struct LinkConfig {
    /// Fixed delay added to every message (round-trip time share).
    pub latency: Duration,
    /// Link bandwidth in bytes/second; `None` = infinite.
    pub bytes_per_sec: Option<u64>,
}

impl LinkConfig {
    /// No latency, infinite bandwidth: in-process delivery.
    pub const INSTANT: LinkConfig = LinkConfig { latency: Duration::ZERO, bytes_per_sec: None };

    /// A GigE-like profile scaled for the simulator: 100 µs latency,
    /// 125 MB/s. (The paper's cluster used GigE and observed that
    /// network cost matters; this profile reproduces that shape.)
    pub fn gige() -> LinkConfig {
        LinkConfig { latency: Duration::from_micros(100), bytes_per_sec: Some(125_000_000) }
    }

    /// True when this config delivers instantly.
    pub fn is_instant(&self) -> bool {
        self.latency.is_zero() && self.bytes_per_sec.is_none()
    }

    /// Transmission time of a message of `bytes` bytes.
    fn tx_time(&self, bytes: usize) -> Duration {
        match self.bytes_per_sec {
            None => Duration::ZERO,
            Some(bw) => Duration::from_secs_f64(bytes as f64 / bw as f64),
        }
    }
}

struct Envelope {
    deliver_at: Instant,
    seq: u64,
    to: usize,
    msg: Message,
}

impl PartialEq for Envelope {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}
impl Eq for Envelope {}
impl PartialOrd for Envelope {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Envelope {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deliver_at, self.seq).cmp(&(other.deliver_at, other.seq))
    }
}

struct Shared {
    inbox_txs: Vec<Sender<Message>>,
    stats: Vec<NetStats>,
    config: LinkConfig,
    /// `busy_until[from * n + to]`: when the directed link frees up.
    link_busy: Vec<Mutex<Instant>>,
    delay_tx: Option<Sender<Envelope>>,
    seq: AtomicU64,
    num_workers: usize,
    /// Present only when fault injection is enabled; the fault-free
    /// path pays a single `Option` check per send.
    fault: Option<FaultRuntime>,
}

/// The simulated interconnect; create once per job, then split into
/// per-worker [`NetHandle`]s.
pub struct Router {
    shared: Arc<Shared>,
    delivery_thread: Option<std::thread::JoinHandle<()>>,
    handles_taken: bool,
    inbox_rxs: Vec<Option<Receiver<Message>>>,
}

impl Router {
    /// Creates a router for `n` workers with the given link model and
    /// no fault injection.
    pub fn new(n: usize, config: LinkConfig) -> Router {
        Router::with_faults(n, config, FaultConfig::default())
    }

    /// Creates a router whose wire additionally obeys `fault`.
    pub fn with_faults(n: usize, config: LinkConfig, fault: FaultConfig) -> Router {
        assert!(n >= 1, "need at least one worker");
        if let Some(cs) = &fault.crash {
            assert!(cs.worker.index() < n, "crash target out of range");
            assert!(cs.worker.index() != 0, "worker 0 hosts the master loop and cannot crash");
        }
        let (inbox_txs, inbox_rxs): (Vec<_>, Vec<_>) =
            (0..n).map(|_| unbounded()).map(|(tx, rx)| (tx, Some(rx))).unzip();
        let now = Instant::now();
        let link_busy = (0..n * n).map(|_| Mutex::new(now)).collect();
        let stats = (0..n).map(|_| NetStats::default()).collect();
        let fault = FaultRuntime::new(n, fault);

        // Fault-injected delays need the delivery heap even on an
        // otherwise instant link.
        let (delay_tx, delivery_thread) = if config.is_instant() && fault.is_none() {
            (None, None)
        } else {
            let (tx, rx) = unbounded::<Envelope>();
            let txs = inbox_txs.clone();
            let thread = std::thread::Builder::new()
                .name("net-delivery".into())
                .spawn(move || delivery_loop(rx, txs))
                .expect("spawn delivery thread");
            (Some(tx), Some(thread))
        };

        Router {
            shared: Arc::new(Shared {
                inbox_txs,
                stats,
                config,
                link_busy,
                delay_tx,
                seq: AtomicU64::new(0),
                num_workers: n,
                fault,
            }),
            delivery_thread,
            handles_taken: false,
            inbox_rxs,
        }
    }

    /// Number of connected workers.
    pub fn num_workers(&self) -> usize {
        self.shared.num_workers
    }

    /// Takes the per-worker handles; callable once.
    pub fn take_handles(&mut self) -> Vec<NetHandle> {
        assert!(!self.handles_taken, "handles already taken");
        self.handles_taken = true;
        (0..self.inbox_rxs.len()).map(|i| self.take_handle(WorkerId(i as u16))).collect()
    }

    /// Takes one worker's handle; callable once per worker.
    pub fn take_handle(&mut self, w: WorkerId) -> NetHandle {
        let rx = self.inbox_rxs[w.index()].take().expect("handle already taken");
        NetHandle { shared: Arc::clone(&self.shared), inbox: rx, me: w.index() }
    }

    /// Total bytes sent across all workers.
    pub fn total_bytes(&self) -> u64 {
        self.shared.stats.iter().map(|s| s.bytes_sent.load(Ordering::Relaxed)).sum()
    }

    /// Per-worker traffic counters.
    pub fn stats(&self, w: WorkerId) -> &NetStats {
        &self.shared.stats[w.index()]
    }

    /// Per-worker fault counters; `None` when fault injection is off.
    pub fn fault_stats(&self, w: WorkerId) -> Option<&FaultStats> {
        self.shared.fault.as_ref().map(|f| f.stats(w.index()))
    }
}

impl Transport for Router {
    fn num_workers(&self) -> usize {
        self.shared.num_workers
    }

    /// The simulated router hosts the whole cluster in one process.
    fn hosted(&self) -> Vec<WorkerId> {
        (0..self.shared.num_workers).map(|w| WorkerId(w as u16)).collect()
    }

    fn take_endpoint(&mut self, w: WorkerId) -> Box<dyn NetEndpoint> {
        Box::new(self.take_handle(w))
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        // The delivery thread exits once every sender clone of its
        // channel is gone (i.e. when all NetHandles drop). Joining here
        // could deadlock while handles are still alive, so detach.
        drop(self.delivery_thread.take());
    }
}

fn delivery_loop(rx: Receiver<Envelope>, txs: Vec<Sender<Message>>) {
    let mut heap: BinaryHeap<Reverse<Envelope>> = BinaryHeap::new();
    loop {
        // Deliver everything due.
        let now = Instant::now();
        while heap.peek().is_some_and(|Reverse(e)| e.deliver_at <= now) {
            let Reverse(e) = heap.pop().expect("peeked");
            // Receiver may be gone during shutdown; ignore.
            let _ = txs[e.to].send(e.msg);
        }
        let timeout = heap
            .peek()
            .map(|Reverse(e)| e.deliver_at.saturating_duration_since(now))
            .unwrap_or(Duration::from_millis(50));
        match rx.recv_timeout(timeout) {
            Ok(env) => heap.push(Reverse(env)),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {
                // Drain remaining messages immediately (job teardown).
                while let Some(Reverse(e)) = heap.pop() {
                    let _ = txs[e.to].send(e.msg);
                }
                return;
            }
        }
    }
}

/// One worker's endpoint: send to any worker, receive from its inbox.
pub struct NetHandle {
    shared: Arc<Shared>,
    inbox: Receiver<Message>,
    me: usize,
}

impl NetHandle {
    /// This endpoint's worker ID.
    pub fn id(&self) -> WorkerId {
        WorkerId(self.me as u16)
    }

    /// Number of workers on the interconnect.
    pub fn num_workers(&self) -> usize {
        self.shared.num_workers
    }

    /// Sends `msg` to worker `to`, applying the link model and, when
    /// enabled, the fault model.
    pub fn send(&self, to: WorkerId, msg: Message) {
        let s = &self.shared;
        if let Some(f) = &s.fault {
            // A dying machine does not go through the wire model: the
            // Crash signal jumps straight to the victim's inbox.
            if let Some(victim) = f.crash_due() {
                let _ = s.inbox_txs[victim].send(Message::Crash);
            }
            // A dead machine neither sends nor receives; in-flight
            // traffic to it still reaches the inbox and is discarded by
            // the receiver's crashed guard.
            if f.is_crashed(self.me) || f.is_crashed(to.index()) {
                return;
            }
        }
        let bytes = msg.encoded_len();
        s.stats[self.me].bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
        s.stats[self.me].msgs_sent.fetch_add(1, Ordering::Relaxed);

        let mut extra = Duration::ZERO;
        if let Some(f) = &s.fault {
            if to.index() != self.me && msg.is_data_plane() {
                let d = f.next_decision(self.me, to.index());
                if d.drop {
                    return;
                }
                if d.duplicate {
                    // The copy trails the original by one jitter window.
                    let lag = d.delay + f.config().reorder_jitter;
                    self.deliver(to.index(), msg.clone(), bytes, lag);
                }
                extra = d.delay;
            }
        }
        self.deliver(to.index(), msg, bytes, extra);
    }

    /// Delivers one copy of `msg`, through the delay heap when the link
    /// model or an injected delay requires it.
    fn deliver(&self, to: usize, msg: Message, bytes: usize, extra: Duration) {
        let s = &self.shared;
        s.stats[to].bytes_received.fetch_add(bytes as u64, Ordering::Relaxed);
        s.stats[to].msgs_received.fetch_add(1, Ordering::Relaxed);
        match (&s.delay_tx, to == self.me) {
            // Self-sends and instant configs bypass the delay model.
            (None, _) | (_, true) => {
                let _ = s.inbox_txs[to].send(msg);
            }
            (Some(delay_tx), false) => {
                let now = Instant::now();
                let link = &s.link_busy[self.me * s.num_workers + to];
                let deliver_at = {
                    let mut busy = link.lock();
                    let start = (*busy).max(now);
                    let done = start + s.config.latency + s.config.tx_time(bytes);
                    *busy = done;
                    done
                };
                let seq = s.seq.fetch_add(1, Ordering::Relaxed);
                // Injected delay holds the message, not the link: later
                // traffic overtakes it (that is the reorder).
                let deliver_at = deliver_at + extra;
                let _ = delay_tx.send(Envelope { deliver_at, seq, to, msg });
            }
        }
    }

    /// Broadcasts `msg` to every worker except this one.
    pub fn broadcast(&self, msg: &Message) {
        for w in 0..self.shared.num_workers {
            if w != self.me {
                self.send(WorkerId(w as u16), msg.clone());
            }
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Message> {
        self.inbox.try_recv().ok()
    }

    /// Receive with a timeout; `None` on timeout or disconnect.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Message> {
        self.inbox.recv_timeout(timeout).ok()
    }

    /// This worker's traffic counters.
    pub fn stats(&self) -> &NetStats {
        &self.shared.stats[self.me]
    }

    /// This worker's fault counters; `None` when fault injection is off.
    pub fn fault_stats(&self) -> Option<&FaultStats> {
        self.shared.fault.as_ref().map(|f| f.stats(self.me))
    }
}

impl NetEndpoint for NetHandle {
    fn id(&self) -> WorkerId {
        NetHandle::id(self)
    }

    fn num_workers(&self) -> usize {
        NetHandle::num_workers(self)
    }

    fn send(&self, to: WorkerId, msg: Message) {
        NetHandle::send(self, to, msg)
    }

    fn broadcast(&self, msg: &Message) {
        NetHandle::broadcast(self, msg)
    }

    fn try_recv(&self) -> Option<Message> {
        NetHandle::try_recv(self)
    }

    fn recv_timeout(&self, timeout: Duration) -> Option<Message> {
        NetHandle::recv_timeout(self, timeout)
    }

    fn stats(&self) -> &NetStats {
        NetHandle::stats(self)
    }

    fn fault_stats(&self) -> Option<&FaultStats> {
        NetHandle::fault_stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gthinker_graph::ids::VertexId;

    #[test]
    fn instant_delivery_round_trip() {
        let mut r = Router::new(2, LinkConfig::INSTANT);
        let mut handles = r.take_handles();
        let h1 = handles.remove(1);
        let h0 = handles.remove(0);
        h0.send(
            WorkerId(1),
            Message::VertexRequest {
                from: WorkerId(0),
                vertices: vec![VertexId(3)],
                sent_nanos: 0,
            },
        );
        match h1.recv_timeout(Duration::from_secs(1)).expect("delivered") {
            Message::VertexRequest { from, vertices, .. } => {
                assert_eq!(from, WorkerId(0));
                assert_eq!(vertices, vec![VertexId(3)]);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(h1.try_recv().is_none());
    }

    #[test]
    fn latency_delays_delivery() {
        let cfg = LinkConfig { latency: Duration::from_millis(30), bytes_per_sec: None };
        let mut r = Router::new(2, cfg);
        let mut handles = r.take_handles();
        let h1 = handles.remove(1);
        let h0 = handles.remove(0);
        let start = Instant::now();
        h0.send(WorkerId(1), Message::Terminate);
        assert!(h1.try_recv().is_none(), "not delivered instantly");
        let got = h1.recv_timeout(Duration::from_secs(1));
        assert!(matches!(got, Some(Message::Terminate)));
        assert!(start.elapsed() >= Duration::from_millis(25), "latency applied");
    }

    #[test]
    fn bandwidth_serializes_link() {
        // 1 KB/s bandwidth: a 109-byte message takes >100 ms; two of
        // them queue behind each other.
        let cfg = LinkConfig { latency: Duration::ZERO, bytes_per_sec: Some(1_000) };
        let mut r = Router::new(2, cfg);
        let mut handles = r.take_handles();
        let h1 = handles.remove(1);
        let h0 = handles.remove(0);
        let msg = Message::StealBatch { victim: WorkerId(0), seq: 0, bytes: vec![0u8; 100] };
        let start = Instant::now();
        h0.send(WorkerId(1), msg.clone());
        h0.send(WorkerId(1), msg);
        let _ = h1.recv_timeout(Duration::from_secs(2)).expect("first");
        let _ = h1.recv_timeout(Duration::from_secs(2)).expect("second");
        assert!(
            start.elapsed() >= Duration::from_millis(200),
            "two messages serialized on the link: {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn self_send_bypasses_delay() {
        let cfg = LinkConfig { latency: Duration::from_secs(5), bytes_per_sec: None };
        let mut r = Router::new(1, cfg);
        let mut handles = r.take_handles();
        let h0 = handles.remove(0);
        h0.send(WorkerId(0), Message::Terminate);
        assert!(matches!(h0.recv_timeout(Duration::from_millis(100)), Some(Message::Terminate)));
    }

    #[test]
    fn broadcast_reaches_all_but_self() {
        let mut r = Router::new(3, LinkConfig::INSTANT);
        let mut handles = r.take_handles();
        let h2 = handles.remove(2);
        let h1 = handles.remove(1);
        let h0 = handles.remove(0);
        h0.broadcast(&Message::Terminate);
        assert!(matches!(h1.recv_timeout(Duration::from_secs(1)), Some(Message::Terminate)));
        assert!(matches!(h2.recv_timeout(Duration::from_secs(1)), Some(Message::Terminate)));
        assert!(h0.try_recv().is_none());
    }

    #[test]
    fn byte_accounting_tracks_traffic() {
        let mut r = Router::new(2, LinkConfig::INSTANT);
        let handles = r.take_handles();
        let msg = Message::StealBatch { victim: WorkerId(0), seq: 0, bytes: vec![0u8; 84] };
        let expect = msg.encoded_len() as u64;
        handles[0].send(WorkerId(1), msg);
        assert_eq!(handles[0].stats().bytes_sent.load(Ordering::Relaxed), expect);
        assert_eq!(handles[1].stats().bytes_received.load(Ordering::Relaxed), expect);
        assert_eq!(r.total_bytes(), expect);
        assert_eq!(r.stats(WorkerId(0)).msgs_sent.load(Ordering::Relaxed), 1);
    }

    #[test]
    #[should_panic(expected = "handles already taken")]
    fn handles_taken_once() {
        let mut r = Router::new(1, LinkConfig::INSTANT);
        let _ = r.take_handles();
        let _ = r.take_handles();
    }

    use crate::fault::{CrashSchedule, FaultConfig};

    fn lossy_fault() -> FaultConfig {
        FaultConfig {
            seed: 7,
            drop_prob: 0.2,
            dup_prob: 0.2,
            reorder_prob: 0.3,
            reorder_jitter: Duration::from_micros(200),
            ..FaultConfig::default()
        }
    }

    /// Sends `n` single-vertex requests 0→1 and returns the receiver's
    /// delivered payloads plus the sender's fault counters.
    fn run_lossy_sequence(n: u32, fault: FaultConfig) -> (Vec<u32>, (u64, u64, u64)) {
        let mut r = Router::with_faults(2, LinkConfig::INSTANT, fault);
        let mut handles = r.take_handles();
        let h1 = handles.remove(1);
        let h0 = handles.remove(0);
        for i in 0..n {
            h0.send(
                WorkerId(1),
                Message::VertexRequest {
                    from: WorkerId(0),
                    vertices: vec![VertexId(i)],
                    sent_nanos: 0,
                },
            );
        }
        let mut got = Vec::new();
        while let Some(msg) = h1.recv_timeout(Duration::from_millis(100)) {
            if let Message::VertexRequest { vertices, .. } = msg {
                got.push(vertices[0].0);
            }
        }
        let fs = h0.fault_stats().expect("fault injection enabled");
        (
            got,
            (
                fs.dropped.load(Ordering::Relaxed),
                fs.duplicated.load(Ordering::Relaxed),
                fs.delayed.load(Ordering::Relaxed),
            ),
        )
    }

    #[test]
    fn fault_injection_is_deterministic_across_routers() {
        let (got_a, counts_a) = run_lossy_sequence(300, lossy_fault());
        let (got_b, counts_b) = run_lossy_sequence(300, lossy_fault());
        assert_eq!(counts_a, counts_b, "same seed → same counters");
        let mut sorted_a = got_a.clone();
        let mut sorted_b = got_b.clone();
        sorted_a.sort_unstable();
        sorted_b.sort_unstable();
        // Delivery *order* can race the jitter clock, but the multiset
        // of delivered copies is fully determined by the seed.
        assert_eq!(sorted_a, sorted_b, "same seed → same delivered multiset");
        assert!(counts_a.0 > 0, "some drops expected");
        assert!(counts_a.1 > 0, "some duplicates expected");
        assert!(got_a.len() as u64 == 300 - counts_a.0 + counts_a.1);
    }

    #[test]
    fn control_plane_is_never_faulted() {
        let fault = FaultConfig { drop_prob: 1.0, ..FaultConfig::default() };
        let mut r = Router::with_faults(2, LinkConfig::INSTANT, fault);
        let mut handles = r.take_handles();
        let h1 = handles.remove(1);
        let h0 = handles.remove(0);
        h0.send(WorkerId(1), Message::Terminate);
        assert!(
            matches!(h1.recv_timeout(Duration::from_secs(1)), Some(Message::Terminate)),
            "control messages bypass the fault model"
        );
        h0.send(
            WorkerId(1),
            Message::VertexRequest {
                from: WorkerId(0),
                vertices: vec![VertexId(1)],
                sent_nanos: 0,
            },
        );
        assert!(h1.recv_timeout(Duration::from_millis(50)).is_none(), "data plane dropped");
    }

    #[test]
    fn crash_schedule_kills_worker_links() {
        let fault = FaultConfig {
            crash: Some(CrashSchedule {
                worker: WorkerId(1),
                after_messages: Some(3),
                after: None,
            }),
            ..FaultConfig::default()
        };
        let mut r = Router::with_faults(2, LinkConfig::INSTANT, fault);
        let mut handles = r.take_handles();
        let h1 = handles.remove(1);
        let h0 = handles.remove(0);
        h0.send(WorkerId(1), Message::Terminate);
        h0.send(WorkerId(1), Message::Terminate);
        assert!(matches!(h1.recv_timeout(Duration::from_secs(1)), Some(Message::Terminate)));
        assert!(matches!(h1.recv_timeout(Duration::from_secs(1)), Some(Message::Terminate)));
        // Third send crosses the mark: the victim gets a Crash signal
        // and all of its links go dark.
        h0.send(WorkerId(1), Message::Terminate);
        assert!(matches!(h1.recv_timeout(Duration::from_secs(1)), Some(Message::Crash)));
        assert!(h1.recv_timeout(Duration::from_millis(50)).is_none(), "link to victim is dark");
        h1.send(WorkerId(0), Message::Terminate);
        assert!(h0.recv_timeout(Duration::from_millis(50)).is_none(), "victim cannot send");
        assert_eq!(r.fault_stats(WorkerId(1)).expect("enabled").crashes.load(Ordering::Relaxed), 1);
    }

    #[test]
    #[should_panic(expected = "worker 0 hosts the master loop")]
    fn crashing_the_master_is_rejected() {
        let fault = FaultConfig {
            crash: Some(CrashSchedule {
                worker: WorkerId(0),
                after_messages: Some(1),
                after: None,
            }),
            ..FaultConfig::default()
        };
        let _ = Router::with_faults(2, LinkConfig::INSTANT, fault);
    }
}
