//! The simulated cluster interconnect.
//!
//! A [`Router`] connects `n` simulated workers living in one process.
//! Each worker owns a [`NetHandle`] with an inbox; sends go through an
//! optional **latency/bandwidth model** ([`LinkConfig`]) that reproduces
//! the behaviour of the paper's GigE testbed: every message is delayed
//! by a fixed per-message latency plus its size divided by the link
//! bandwidth, and messages on the same directed link serialize (a large
//! steal batch delays the requests queued behind it).
//!
//! With the default zero-cost config, messages are delivered
//! immediately — that models the single-machine case where "tasks never
//! need to wait for remote vertices" (Table IV(c)).

use crate::message::Message;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use gthinker_graph::ids::WorkerId;
use parking_lot::Mutex;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Latency/bandwidth model for every directed link.
#[derive(Clone, Copy, Debug)]
pub struct LinkConfig {
    /// Fixed delay added to every message (round-trip time share).
    pub latency: Duration,
    /// Link bandwidth in bytes/second; `None` = infinite.
    pub bytes_per_sec: Option<u64>,
}

impl LinkConfig {
    /// No latency, infinite bandwidth: in-process delivery.
    pub const INSTANT: LinkConfig = LinkConfig { latency: Duration::ZERO, bytes_per_sec: None };

    /// A GigE-like profile scaled for the simulator: 100 µs latency,
    /// 125 MB/s. (The paper's cluster used GigE and observed that
    /// network cost matters; this profile reproduces that shape.)
    pub fn gige() -> LinkConfig {
        LinkConfig { latency: Duration::from_micros(100), bytes_per_sec: Some(125_000_000) }
    }

    /// True when this config delivers instantly.
    pub fn is_instant(&self) -> bool {
        self.latency.is_zero() && self.bytes_per_sec.is_none()
    }

    /// Transmission time of a message of `bytes` bytes.
    fn tx_time(&self, bytes: usize) -> Duration {
        match self.bytes_per_sec {
            None => Duration::ZERO,
            Some(bw) => Duration::from_secs_f64(bytes as f64 / bw as f64),
        }
    }
}

/// Per-worker traffic counters.
#[derive(Debug, Default)]
pub struct NetStats {
    /// Bytes sent by this worker.
    pub bytes_sent: AtomicU64,
    /// Bytes received by this worker.
    pub bytes_received: AtomicU64,
    /// Messages sent.
    pub msgs_sent: AtomicU64,
    /// Messages received.
    pub msgs_received: AtomicU64,
}

struct Envelope {
    deliver_at: Instant,
    seq: u64,
    to: usize,
    msg: Message,
}

impl PartialEq for Envelope {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}
impl Eq for Envelope {}
impl PartialOrd for Envelope {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Envelope {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deliver_at, self.seq).cmp(&(other.deliver_at, other.seq))
    }
}

struct Shared {
    inbox_txs: Vec<Sender<Message>>,
    stats: Vec<NetStats>,
    config: LinkConfig,
    /// `busy_until[from * n + to]`: when the directed link frees up.
    link_busy: Vec<Mutex<Instant>>,
    delay_tx: Option<Sender<Envelope>>,
    seq: AtomicU64,
    num_workers: usize,
}

/// The simulated interconnect; create once per job, then split into
/// per-worker [`NetHandle`]s.
pub struct Router {
    shared: Arc<Shared>,
    delivery_thread: Option<std::thread::JoinHandle<()>>,
    handles_taken: bool,
    inbox_rxs: Vec<Receiver<Message>>,
}

impl Router {
    /// Creates a router for `n` workers with the given link model.
    pub fn new(n: usize, config: LinkConfig) -> Router {
        assert!(n >= 1, "need at least one worker");
        let (inbox_txs, inbox_rxs): (Vec<_>, Vec<_>) = (0..n).map(|_| unbounded()).unzip();
        let now = Instant::now();
        let link_busy = (0..n * n).map(|_| Mutex::new(now)).collect();
        let stats = (0..n).map(|_| NetStats::default()).collect();

        let (delay_tx, delivery_thread) = if config.is_instant() {
            (None, None)
        } else {
            let (tx, rx) = unbounded::<Envelope>();
            let txs = inbox_txs.clone();
            let thread = std::thread::Builder::new()
                .name("net-delivery".into())
                .spawn(move || delivery_loop(rx, txs))
                .expect("spawn delivery thread");
            (Some(tx), Some(thread))
        };

        Router {
            shared: Arc::new(Shared {
                inbox_txs,
                stats,
                config,
                link_busy,
                delay_tx,
                seq: AtomicU64::new(0),
                num_workers: n,
            }),
            delivery_thread,
            handles_taken: false,
            inbox_rxs,
        }
    }

    /// Number of connected workers.
    pub fn num_workers(&self) -> usize {
        self.shared.num_workers
    }

    /// Takes the per-worker handles; callable once.
    pub fn take_handles(&mut self) -> Vec<NetHandle> {
        assert!(!self.handles_taken, "handles already taken");
        self.handles_taken = true;
        self.inbox_rxs
            .drain(..)
            .enumerate()
            .map(|(i, rx)| NetHandle { shared: Arc::clone(&self.shared), inbox: rx, me: i })
            .collect()
    }

    /// Total bytes sent across all workers.
    pub fn total_bytes(&self) -> u64 {
        self.shared.stats.iter().map(|s| s.bytes_sent.load(Ordering::Relaxed)).sum()
    }

    /// Per-worker traffic counters.
    pub fn stats(&self, w: WorkerId) -> &NetStats {
        &self.shared.stats[w.index()]
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        // The delivery thread exits once every sender clone of its
        // channel is gone (i.e. when all NetHandles drop). Joining here
        // could deadlock while handles are still alive, so detach.
        drop(self.delivery_thread.take());
    }
}

fn delivery_loop(rx: Receiver<Envelope>, txs: Vec<Sender<Message>>) {
    let mut heap: BinaryHeap<Reverse<Envelope>> = BinaryHeap::new();
    loop {
        // Deliver everything due.
        let now = Instant::now();
        while heap.peek().is_some_and(|Reverse(e)| e.deliver_at <= now) {
            let Reverse(e) = heap.pop().expect("peeked");
            // Receiver may be gone during shutdown; ignore.
            let _ = txs[e.to].send(e.msg);
        }
        let timeout = heap
            .peek()
            .map(|Reverse(e)| e.deliver_at.saturating_duration_since(now))
            .unwrap_or(Duration::from_millis(50));
        match rx.recv_timeout(timeout) {
            Ok(env) => heap.push(Reverse(env)),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {
                // Drain remaining messages immediately (job teardown).
                while let Some(Reverse(e)) = heap.pop() {
                    let _ = txs[e.to].send(e.msg);
                }
                return;
            }
        }
    }
}

/// One worker's endpoint: send to any worker, receive from its inbox.
pub struct NetHandle {
    shared: Arc<Shared>,
    inbox: Receiver<Message>,
    me: usize,
}

impl NetHandle {
    /// This endpoint's worker ID.
    pub fn id(&self) -> WorkerId {
        WorkerId(self.me as u16)
    }

    /// Number of workers on the interconnect.
    pub fn num_workers(&self) -> usize {
        self.shared.num_workers
    }

    /// Sends `msg` to worker `to`, applying the link model.
    pub fn send(&self, to: WorkerId, msg: Message) {
        let bytes = msg.wire_bytes();
        let s = &self.shared;
        s.stats[self.me].bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
        s.stats[self.me].msgs_sent.fetch_add(1, Ordering::Relaxed);
        s.stats[to.index()].bytes_received.fetch_add(bytes as u64, Ordering::Relaxed);
        s.stats[to.index()].msgs_received.fetch_add(1, Ordering::Relaxed);
        match (&s.delay_tx, to.index() == self.me) {
            // Self-sends and instant configs bypass the delay model.
            (None, _) | (_, true) => {
                let _ = s.inbox_txs[to.index()].send(msg);
            }
            (Some(delay_tx), false) => {
                let now = Instant::now();
                let link = &s.link_busy[self.me * s.num_workers + to.index()];
                let deliver_at = {
                    let mut busy = link.lock();
                    let start = (*busy).max(now);
                    let done = start + s.config.latency + s.config.tx_time(bytes);
                    *busy = done;
                    done
                };
                let seq = s.seq.fetch_add(1, Ordering::Relaxed);
                let _ = delay_tx.send(Envelope { deliver_at, seq, to: to.index(), msg });
            }
        }
    }

    /// Broadcasts `msg` to every worker except this one.
    pub fn broadcast(&self, msg: &Message) {
        for w in 0..self.shared.num_workers {
            if w != self.me {
                self.send(WorkerId(w as u16), msg.clone());
            }
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Message> {
        self.inbox.try_recv().ok()
    }

    /// Receive with a timeout; `None` on timeout or disconnect.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Message> {
        self.inbox.recv_timeout(timeout).ok()
    }

    /// This worker's traffic counters.
    pub fn stats(&self) -> &NetStats {
        &self.shared.stats[self.me]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gthinker_graph::ids::VertexId;

    #[test]
    fn instant_delivery_round_trip() {
        let mut r = Router::new(2, LinkConfig::INSTANT);
        let mut handles = r.take_handles();
        let h1 = handles.remove(1);
        let h0 = handles.remove(0);
        h0.send(
            WorkerId(1),
            Message::VertexRequest {
                from: WorkerId(0),
                vertices: vec![VertexId(3)],
                sent_nanos: 0,
            },
        );
        match h1.recv_timeout(Duration::from_secs(1)).expect("delivered") {
            Message::VertexRequest { from, vertices, .. } => {
                assert_eq!(from, WorkerId(0));
                assert_eq!(vertices, vec![VertexId(3)]);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(h1.try_recv().is_none());
    }

    #[test]
    fn latency_delays_delivery() {
        let cfg = LinkConfig { latency: Duration::from_millis(30), bytes_per_sec: None };
        let mut r = Router::new(2, cfg);
        let mut handles = r.take_handles();
        let h1 = handles.remove(1);
        let h0 = handles.remove(0);
        let start = Instant::now();
        h0.send(WorkerId(1), Message::Terminate);
        assert!(h1.try_recv().is_none(), "not delivered instantly");
        let got = h1.recv_timeout(Duration::from_secs(1));
        assert!(matches!(got, Some(Message::Terminate)));
        assert!(start.elapsed() >= Duration::from_millis(25), "latency applied");
    }

    #[test]
    fn bandwidth_serializes_link() {
        // 1 KB/s bandwidth: a ~116-byte message takes >100 ms; two of
        // them queue behind each other.
        let cfg = LinkConfig { latency: Duration::ZERO, bytes_per_sec: Some(1_000) };
        let mut r = Router::new(2, cfg);
        let mut handles = r.take_handles();
        let h1 = handles.remove(1);
        let h0 = handles.remove(0);
        let msg = Message::StealBatch { bytes: vec![0u8; 100] };
        let start = Instant::now();
        h0.send(WorkerId(1), msg.clone());
        h0.send(WorkerId(1), msg);
        let _ = h1.recv_timeout(Duration::from_secs(2)).expect("first");
        let _ = h1.recv_timeout(Duration::from_secs(2)).expect("second");
        assert!(
            start.elapsed() >= Duration::from_millis(200),
            "two messages serialized on the link: {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn self_send_bypasses_delay() {
        let cfg = LinkConfig { latency: Duration::from_secs(5), bytes_per_sec: None };
        let mut r = Router::new(1, cfg);
        let mut handles = r.take_handles();
        let h0 = handles.remove(0);
        h0.send(WorkerId(0), Message::Terminate);
        assert!(matches!(h0.recv_timeout(Duration::from_millis(100)), Some(Message::Terminate)));
    }

    #[test]
    fn broadcast_reaches_all_but_self() {
        let mut r = Router::new(3, LinkConfig::INSTANT);
        let mut handles = r.take_handles();
        let h2 = handles.remove(2);
        let h1 = handles.remove(1);
        let h0 = handles.remove(0);
        h0.broadcast(&Message::Terminate);
        assert!(matches!(h1.recv_timeout(Duration::from_secs(1)), Some(Message::Terminate)));
        assert!(matches!(h2.recv_timeout(Duration::from_secs(1)), Some(Message::Terminate)));
        assert!(h0.try_recv().is_none());
    }

    #[test]
    fn byte_accounting_tracks_traffic() {
        let mut r = Router::new(2, LinkConfig::INSTANT);
        let handles = r.take_handles();
        let msg = Message::StealBatch { bytes: vec![0u8; 84] };
        let expect = msg.wire_bytes() as u64;
        handles[0].send(WorkerId(1), msg);
        assert_eq!(handles[0].stats().bytes_sent.load(Ordering::Relaxed), expect);
        assert_eq!(handles[1].stats().bytes_received.load(Ordering::Relaxed), expect);
        assert_eq!(r.total_bytes(), expect);
        assert_eq!(r.stats(WorkerId(0)).msgs_sent.load(Ordering::Relaxed), 1);
    }

    #[test]
    #[should_panic(expected = "handles already taken")]
    fn handles_taken_once() {
        let mut r = Router::new(1, LinkConfig::INSTANT);
        let _ = r.take_handles();
        let _ = r.take_handles();
    }
}
