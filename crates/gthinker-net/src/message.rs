//! Messages exchanged between workers, with their wire encoding.
//!
//! G-thinker's communication module carries two data-plane message
//! kinds — batched vertex pull **requests** and batched **responses** —
//! plus a small control plane used by the master's main thread for
//! progress synchronization, work-stealing plans and aggregator sync.
//!
//! Every variant has a real [`Encode`]/[`Decode`] impl (tag byte +
//! little-endian fields, the `gthinker-task` codec): the TCP backend
//! puts these bytes on actual sockets, and the simulated router's byte
//! accounting uses [`Message::encoded_len`], which is derived from the
//! same layout — the counters can never drift from the wire format.

use gthinker_graph::adj::AdjList;
use gthinker_graph::ids::{VertexId, WorkerId};
use gthinker_task::codec::{CodecError, Decode, Encode};

/// A message on the wire (simulated or TCP).
#[derive(Clone, Debug, PartialEq)]
pub enum Message {
    /// A batch of vertex pull requests from `from`; the receiver serves
    /// each from its `T_local` and responds with one `VertexResponse`.
    VertexRequest {
        /// Requesting worker (responses go back to it).
        from: WorkerId,
        /// Requested vertex IDs (batched for round-trip amortization).
        vertices: Vec<VertexId>,
        /// Metrics-clock send timestamp, echoed by the responder so the
        /// requester can histogram pull round-trip time. Only ever
        /// compared against the requester's own clock, so it works
        /// across processes (0 when metrics are disabled).
        sent_nanos: u64,
    },
    /// A batch of `(v, Γ(v))` responses.
    VertexResponse {
        /// The served records; adjacency lists are already trimmed.
        entries: Vec<(VertexId, AdjList)>,
        /// The originating request's `sent_nanos`, echoed back verbatim
        /// (0 when metrics are disabled or for multi-request merges).
        req_nanos: u64,
    },
    /// A batch of serialized tasks moved by the work stealer (a sealed
    /// frame around raw spill-file bytes; the thief validates the frame
    /// and appends the payload to its `L_file`). Travels on the data
    /// plane: the fault model may drop, duplicate or reorder it, so the
    /// `(victim, seq)` pair makes delivery idempotent — the victim
    /// resends until the thief's [`Message::StealAck`], and the thief
    /// applies each sequence number at most once.
    StealBatch {
        /// Worker that gave up the tasks (dedup namespace for `seq`).
        victim: WorkerId,
        /// Victim-local monotone sequence number of this batch.
        seq: u64,
        /// Framed task batch (`frame::seal` around the spill bytes).
        bytes: Vec<u8>,
    },
    /// A worker's progress report to the master.
    Progress {
        /// Reporting worker.
        worker: WorkerId,
        /// Estimated remaining load: spilled files plus unspawned
        /// vertices (in task-batch units).
        remaining: u64,
        /// True when the worker's compers are starving.
        idle: bool,
        /// Number of compers currently parked with empty queues.
        idle_compers: u16,
        /// Steal batches this worker has sealed but not yet seen acked
        /// (outstanding ownership transfers; nonzero blocks suspend).
        steal_inflight: u32,
    },
    /// The master instructs `victim` to send up to `max_tasks` tasks to
    /// `thief`.
    StealRequest {
        /// Worker that must give up tasks.
        victim: WorkerId,
        /// Worker that receives them.
        thief: WorkerId,
        /// Upper bound on the number of tasks to transfer.
        max_tasks: u32,
    },
    /// The victim's report of how many batches it actually shipped for
    /// the current steal request (may be zero if it ran dry).
    StealExecuted {
        /// Batches actually sent to the thief.
        sent: u32,
    },
    /// The thief's per-batch receipt acknowledgement to the master.
    StealDone,
    /// The thief's receipt acknowledgement to the **victim** for one
    /// steal batch: the thief has durably appended the batch to its
    /// `L_file`, so the victim may drop its retained copy. Control
    /// plane (reliable) — only the batch itself needs the resend path.
    StealAck {
        /// The acknowledged batch's sequence number.
        seq: u64,
    },
    /// Opaque aggregator payload (application-encoded partial value).
    AggregatorSync {
        /// Reporting worker.
        worker: WorkerId,
        /// Encoded partial aggregate.
        payload: Vec<u8>,
        /// True for the final sync sent after the terminate signal;
        /// the master waits for one final sync per worker.
        is_final: bool,
    },
    /// The master broadcasts the merged global aggregate.
    AggregatorGlobal {
        /// Encoded global aggregate.
        payload: Vec<u8>,
    },
    /// Job end signal from the master; workers stop their threads.
    Terminate,
    /// Suspend signal: workers drain their task containers into a
    /// checkpoint and stop (fault-tolerance path).
    Suspend,
    /// A worker finished writing its checkpoint shard.
    SuspendDone {
        /// Reporting worker.
        worker: WorkerId,
    },
    /// Fault injection killed the receiving worker: its threads stop
    /// immediately without final syncs or checkpoint shards. Only the
    /// sim router's crash schedule emits this; it never crosses a
    /// socket.
    Crash,
    /// A worker's metrics report to the master: an opaque encoded
    /// worker metrics snapshot (sealed in a CRC frame, like steal
    /// batches). Workers push one at every `report_interval` tick and a
    /// final one (with the event ring) at job end. Control plane
    /// (reliable); reports are cumulative, so a newer report simply
    /// supersedes an older one.
    MetricsReport {
        /// Reporting worker.
        worker: WorkerId,
        /// Framed, encoded worker metrics snapshot.
        payload: Vec<u8>,
        /// True for the final snapshot sent just before the final
        /// aggregator sync.
        is_final: bool,
    },
    /// Clock-synchronization probe from a worker to the master. The
    /// master's receiver answers inline with a [`Message::ClockPong`]
    /// carrying its metrics-clock reading; the worker estimates its
    /// clock offset as `master_nanos - (t_send + t_recv) / 2` and keeps
    /// the minimum-RTT sample (trace stitching).
    ClockPing {
        /// Probing worker (the pong goes back to it).
        worker: WorkerId,
        /// Echo token matching the pong to the ping's send timestamp.
        nonce: u64,
    },
    /// The master's reply to a [`Message::ClockPing`].
    ClockPong {
        /// The originating ping's nonce, echoed verbatim.
        nonce: u64,
        /// The master's metrics-clock reading when it saw the ping.
        nanos: u64,
    },
    /// The transport observed worker `worker`'s link die (reader EOF or
    /// error, or a failed write). Injected into the local inbox by the
    /// TCP backend so the master's failure detector reacts to a dead
    /// process the moment the OS closes its sockets, instead of waiting
    /// out a heartbeat window. Local-only, like [`Message::Crash`]: it
    /// never crosses a socket.
    PeerDown {
        /// The peer whose link died.
        worker: WorkerId,
    },
    /// Master broadcast in cluster-recovery mode: worker `worker`
    /// failed, abandon the current attempt (like [`Message::Terminate`]
    /// for thread shutdown) and rendezvous again to resume from the
    /// last validated checkpoint.
    Abort {
        /// The worker the master declared failed (for logs/telemetry).
        worker: WorkerId,
    },
    /// Master broadcast at the start of every cluster-recovery attempt,
    /// synchronizing all processes on the resume point before any
    /// worker threads start.
    Resume {
        /// True when a validated checkpoint epoch exists to restore.
        resume: bool,
        /// The epoch number to restore from (0 when `resume` is false).
        epoch: u64,
        /// The attempt index; names the epoch directory this attempt's
        /// periodic checkpoint will be written to.
        attempt: u64,
    },
}

/// Variant tags. One byte on the wire; `Decode` rejects anything else.
mod tag {
    pub const VERTEX_REQUEST: u8 = 0;
    pub const VERTEX_RESPONSE: u8 = 1;
    pub const STEAL_BATCH: u8 = 2;
    pub const PROGRESS: u8 = 3;
    pub const STEAL_REQUEST: u8 = 4;
    pub const STEAL_EXECUTED: u8 = 5;
    pub const STEAL_DONE: u8 = 6;
    pub const AGGREGATOR_SYNC: u8 = 7;
    pub const AGGREGATOR_GLOBAL: u8 = 8;
    pub const TERMINATE: u8 = 9;
    pub const SUSPEND: u8 = 10;
    pub const SUSPEND_DONE: u8 = 11;
    pub const CRASH: u8 = 12;
    pub const STEAL_ACK: u8 = 13;
    pub const METRICS_REPORT: u8 = 14;
    pub const CLOCK_PING: u8 = 15;
    pub const CLOCK_PONG: u8 = 16;
    pub const PEER_DOWN: u8 = 17;
    pub const ABORT: u8 = 18;
    pub const RESUME: u8 = 19;
}

/// Byte-payload fields use the same layout as the codec's `Vec<u8>`
/// (u64 length prefix) but copy in bulk instead of per element.
fn encode_bytes(bytes: &[u8], buf: &mut Vec<u8>) {
    (bytes.len() as u64).encode(buf);
    buf.extend_from_slice(bytes);
}

fn decode_bytes(buf: &mut &[u8]) -> Result<Vec<u8>, CodecError> {
    let len = u64::decode(buf)? as usize;
    if len > buf.len() {
        return Err(CodecError::Invalid("vec length exceeds buffer"));
    }
    let out = buf[..len].to_vec();
    *buf = &buf[len..];
    Ok(out)
}

impl Encode for Message {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Message::VertexRequest { from, vertices, sent_nanos } => {
                buf.push(tag::VERTEX_REQUEST);
                from.encode(buf);
                vertices.encode(buf);
                sent_nanos.encode(buf);
            }
            Message::VertexResponse { entries, req_nanos } => {
                buf.push(tag::VERTEX_RESPONSE);
                entries.encode(buf);
                req_nanos.encode(buf);
            }
            Message::StealBatch { victim, seq, bytes } => {
                buf.push(tag::STEAL_BATCH);
                victim.encode(buf);
                seq.encode(buf);
                encode_bytes(bytes, buf);
            }
            Message::Progress { worker, remaining, idle, idle_compers, steal_inflight } => {
                buf.push(tag::PROGRESS);
                worker.encode(buf);
                remaining.encode(buf);
                idle.encode(buf);
                idle_compers.encode(buf);
                steal_inflight.encode(buf);
            }
            Message::StealRequest { victim, thief, max_tasks } => {
                buf.push(tag::STEAL_REQUEST);
                victim.encode(buf);
                thief.encode(buf);
                max_tasks.encode(buf);
            }
            Message::StealExecuted { sent } => {
                buf.push(tag::STEAL_EXECUTED);
                sent.encode(buf);
            }
            Message::StealDone => buf.push(tag::STEAL_DONE),
            Message::AggregatorSync { worker, payload, is_final } => {
                buf.push(tag::AGGREGATOR_SYNC);
                worker.encode(buf);
                encode_bytes(payload, buf);
                is_final.encode(buf);
            }
            Message::AggregatorGlobal { payload } => {
                buf.push(tag::AGGREGATOR_GLOBAL);
                encode_bytes(payload, buf);
            }
            Message::Terminate => buf.push(tag::TERMINATE),
            Message::Suspend => buf.push(tag::SUSPEND),
            Message::SuspendDone { worker } => {
                buf.push(tag::SUSPEND_DONE);
                worker.encode(buf);
            }
            Message::Crash => buf.push(tag::CRASH),
            Message::StealAck { seq } => {
                buf.push(tag::STEAL_ACK);
                seq.encode(buf);
            }
            Message::MetricsReport { worker, payload, is_final } => {
                buf.push(tag::METRICS_REPORT);
                worker.encode(buf);
                encode_bytes(payload, buf);
                is_final.encode(buf);
            }
            Message::ClockPing { worker, nonce } => {
                buf.push(tag::CLOCK_PING);
                worker.encode(buf);
                nonce.encode(buf);
            }
            Message::ClockPong { nonce, nanos } => {
                buf.push(tag::CLOCK_PONG);
                nonce.encode(buf);
                nanos.encode(buf);
            }
            Message::PeerDown { worker } => {
                buf.push(tag::PEER_DOWN);
                worker.encode(buf);
            }
            Message::Abort { worker } => {
                buf.push(tag::ABORT);
                worker.encode(buf);
            }
            Message::Resume { resume, epoch, attempt } => {
                buf.push(tag::RESUME);
                resume.encode(buf);
                epoch.encode(buf);
                attempt.encode(buf);
            }
        }
    }
}

impl Decode for Message {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(match u8::decode(buf)? {
            tag::VERTEX_REQUEST => Message::VertexRequest {
                from: WorkerId::decode(buf)?,
                vertices: Vec::decode(buf)?,
                sent_nanos: u64::decode(buf)?,
            },
            tag::VERTEX_RESPONSE => {
                Message::VertexResponse { entries: Vec::decode(buf)?, req_nanos: u64::decode(buf)? }
            }
            tag::STEAL_BATCH => Message::StealBatch {
                victim: WorkerId::decode(buf)?,
                seq: u64::decode(buf)?,
                bytes: decode_bytes(buf)?,
            },
            tag::PROGRESS => Message::Progress {
                worker: WorkerId::decode(buf)?,
                remaining: u64::decode(buf)?,
                idle: bool::decode(buf)?,
                idle_compers: u16::decode(buf)?,
                steal_inflight: u32::decode(buf)?,
            },
            tag::STEAL_REQUEST => Message::StealRequest {
                victim: WorkerId::decode(buf)?,
                thief: WorkerId::decode(buf)?,
                max_tasks: u32::decode(buf)?,
            },
            tag::STEAL_EXECUTED => Message::StealExecuted { sent: u32::decode(buf)? },
            tag::STEAL_DONE => Message::StealDone,
            tag::AGGREGATOR_SYNC => Message::AggregatorSync {
                worker: WorkerId::decode(buf)?,
                payload: decode_bytes(buf)?,
                is_final: bool::decode(buf)?,
            },
            tag::AGGREGATOR_GLOBAL => Message::AggregatorGlobal { payload: decode_bytes(buf)? },
            tag::TERMINATE => Message::Terminate,
            tag::SUSPEND => Message::Suspend,
            tag::SUSPEND_DONE => Message::SuspendDone { worker: WorkerId::decode(buf)? },
            tag::CRASH => Message::Crash,
            tag::STEAL_ACK => Message::StealAck { seq: u64::decode(buf)? },
            tag::METRICS_REPORT => Message::MetricsReport {
                worker: WorkerId::decode(buf)?,
                payload: decode_bytes(buf)?,
                is_final: bool::decode(buf)?,
            },
            tag::CLOCK_PING => {
                Message::ClockPing { worker: WorkerId::decode(buf)?, nonce: u64::decode(buf)? }
            }
            tag::CLOCK_PONG => {
                Message::ClockPong { nonce: u64::decode(buf)?, nanos: u64::decode(buf)? }
            }
            tag::PEER_DOWN => Message::PeerDown { worker: WorkerId::decode(buf)? },
            tag::ABORT => Message::Abort { worker: WorkerId::decode(buf)? },
            tag::RESUME => Message::Resume {
                resume: bool::decode(buf)?,
                epoch: u64::decode(buf)?,
                attempt: u64::decode(buf)?,
            },
            _ => return Err(CodecError::Invalid("message tag")),
        })
    }
}

impl Message {
    /// Exact serialized size in bytes, derived from the codec layout
    /// (property-tested to equal `to_bytes(self).len()`). Used for the
    /// sim router's byte accounting and bandwidth model; the TCP
    /// backend counts actual socket bytes (this plus frame overhead).
    pub fn encoded_len(&self) -> usize {
        // tag byte + per-variant fields; Vec<T> costs 8 (u64 length
        // prefix) + items.
        1 + match self {
            Message::VertexRequest { vertices, .. } => 2 + 8 + 4 * vertices.len() + 8,
            Message::VertexResponse { entries, .. } => {
                8 + entries.iter().map(|(_, adj)| 4 + 8 + 4 * adj.degree()).sum::<usize>() + 8
            }
            Message::StealBatch { bytes, .. } => 2 + 8 + 8 + bytes.len(),
            Message::Progress { .. } => 2 + 8 + 1 + 2 + 4,
            Message::StealRequest { .. } => 2 + 2 + 4,
            Message::StealExecuted { .. } => 4,
            Message::StealAck { .. } => 8,
            Message::AggregatorSync { payload, .. } => 2 + 8 + payload.len() + 1,
            Message::AggregatorGlobal { payload } => 8 + payload.len(),
            Message::MetricsReport { payload, .. } => 2 + 8 + payload.len() + 1,
            Message::ClockPing { .. } => 2 + 8,
            Message::ClockPong { .. } => 8 + 8,
            Message::SuspendDone { .. } => 2,
            Message::PeerDown { .. } | Message::Abort { .. } => 2,
            Message::Resume { .. } => 1 + 8 + 8,
            Message::StealDone | Message::Terminate | Message::Suspend | Message::Crash => 0,
        }
    }

    /// True for the data-plane messages (vertex pulls and steal
    /// batches) that the fault model may drop, duplicate, or delay.
    /// Pulls survive loss via the R-table deadline retries; steal
    /// batches survive it via the victim's retained-copy resend plus
    /// the thief's per-`(victim, seq)` dedup. The remaining control
    /// plane models reliable TCP-backed channels.
    pub fn is_data_plane(&self) -> bool {
        matches!(
            self,
            Message::VertexRequest { .. }
                | Message::VertexResponse { .. }
                | Message::StealBatch { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gthinker_task::codec::to_bytes;

    #[test]
    fn encoded_len_scales_with_content() {
        let small = Message::VertexRequest {
            from: WorkerId(0),
            vertices: vec![VertexId(1)],
            sent_nanos: 0,
        };
        let big = Message::VertexRequest {
            from: WorkerId(0),
            vertices: (0..100).map(VertexId).collect(),
            sent_nanos: 0,
        };
        assert!(big.encoded_len() > small.encoded_len());
        assert_eq!(big.encoded_len() - small.encoded_len(), 99 * 4);
    }

    /// Regression pin: known sizes of the wire layout. If these change,
    /// the wire format changed — bump `frame::WIRE_VERSION`.
    #[test]
    fn encoded_len_pins_known_sizes() {
        // tag 1 + from 2 + vec(8 + 4·3) + nanos 8 = 31.
        let req = Message::VertexRequest {
            from: WorkerId(2),
            vertices: vec![VertexId(1), VertexId(2), VertexId(3)],
            sent_nanos: 7,
        };
        assert_eq!(req.encoded_len(), 31);
        // tag 1 + vec(8 + (4 + 8 + 4·10)) + nanos 8 = 69.
        let resp = Message::VertexResponse {
            entries: vec![(VertexId(1), AdjList::from_unsorted((0..10).map(VertexId).collect()))],
            req_nanos: 0,
        };
        assert_eq!(resp.encoded_len(), 69);
        assert_eq!(Message::Terminate.encoded_len(), 1);
        assert_eq!(Message::StealDone.encoded_len(), 1);
        // tag 1 + worker 2 + remaining 8 + idle 1 + idle_compers 2 +
        // steal_inflight 4 = 18.
        assert_eq!(
            Message::Progress {
                worker: WorkerId(1),
                remaining: 0,
                idle: true,
                idle_compers: 2,
                steal_inflight: 0
            }
            .encoded_len(),
            18
        );
        assert_eq!(
            Message::StealRequest { victim: WorkerId(1), thief: WorkerId(2), max_tasks: 3 }
                .encoded_len(),
            9
        );
        // tag 1 + victim 2 + seq 8 + vec(8 + 5) = 24.
        assert_eq!(
            Message::StealBatch { victim: WorkerId(1), seq: 9, bytes: vec![0; 5] }.encoded_len(),
            24
        );
        assert_eq!(Message::StealAck { seq: 3 }.encoded_len(), 9);
        assert_eq!(Message::SuspendDone { worker: WorkerId(4) }.encoded_len(), 3);
        // tag 1 + worker 2 + vec(8 + 5) + is_final 1 = 17.
        assert_eq!(
            Message::MetricsReport { worker: WorkerId(1), payload: vec![0; 5], is_final: false }
                .encoded_len(),
            17
        );
        // tag 1 + worker 2 + nonce 8 = 11.
        assert_eq!(Message::ClockPing { worker: WorkerId(1), nonce: 3 }.encoded_len(), 11);
        // tag 1 + nonce 8 + nanos 8 = 17.
        assert_eq!(Message::ClockPong { nonce: 3, nanos: 99 }.encoded_len(), 17);
        // tag 1 + worker 2 = 3.
        assert_eq!(Message::PeerDown { worker: WorkerId(1) }.encoded_len(), 3);
        assert_eq!(Message::Abort { worker: WorkerId(2) }.encoded_len(), 3);
        // tag 1 + resume 1 + epoch 8 + attempt 8 = 18.
        assert_eq!(Message::Resume { resume: true, epoch: 4, attempt: 5 }.encoded_len(), 18);
    }

    #[test]
    fn encoded_len_matches_actual_encoding() {
        let msgs = vec![
            Message::VertexRequest { from: WorkerId(3), vertices: vec![], sent_nanos: u64::MAX },
            Message::VertexResponse {
                entries: vec![
                    (VertexId(0), AdjList::new()),
                    (VertexId(u32::MAX), AdjList::from_unsorted(vec![VertexId(1), VertexId(5)])),
                ],
                req_nanos: 1,
            },
            Message::StealBatch { victim: WorkerId(2), seq: 11, bytes: vec![9; 137] },
            Message::Progress {
                worker: WorkerId(1),
                remaining: 42,
                idle: false,
                idle_compers: 3,
                steal_inflight: 1,
            },
            Message::StealRequest { victim: WorkerId(0), thief: WorkerId(1), max_tasks: 2 },
            Message::StealExecuted { sent: 1 },
            Message::StealDone,
            Message::StealAck { seq: u64::MAX },
            Message::AggregatorSync { worker: WorkerId(2), payload: vec![1, 2, 3], is_final: true },
            Message::AggregatorGlobal { payload: vec![] },
            Message::Terminate,
            Message::Suspend,
            Message::SuspendDone { worker: WorkerId(9) },
            Message::Crash,
            Message::MetricsReport { worker: WorkerId(1), payload: vec![7; 42], is_final: true },
            Message::ClockPing { worker: WorkerId(2), nonce: 5 },
            Message::ClockPong { nonce: 5, nanos: u64::MAX },
            Message::PeerDown { worker: WorkerId(3) },
            Message::Abort { worker: WorkerId(1) },
            Message::Resume { resume: false, epoch: 0, attempt: u64::MAX },
        ];
        for m in msgs {
            assert_eq!(m.encoded_len(), to_bytes(&m).len(), "{m:?}");
        }
    }
}
