//! Messages exchanged between simulated workers.
//!
//! G-thinker's communication module carries two data-plane message
//! kinds — batched vertex pull **requests** and batched **responses** —
//! plus a small control plane used by the master's main thread for
//! progress synchronization, work-stealing plans and aggregator sync.

use gthinker_graph::adj::AdjList;
use gthinker_graph::ids::{VertexId, WorkerId};

/// A message on the simulated wire.
#[derive(Clone, Debug)]
pub enum Message {
    /// A batch of vertex pull requests from `from`; the receiver serves
    /// each from its `T_local` and responds with one `VertexResponse`.
    VertexRequest {
        /// Requesting worker (responses go back to it).
        from: WorkerId,
        /// Requested vertex IDs (batched for round-trip amortization).
        vertices: Vec<VertexId>,
        /// Metrics-clock send timestamp, echoed by the responder so the
        /// requester can histogram pull round-trip time. Out-of-band
        /// for byte accounting (0 when metrics are disabled).
        sent_nanos: u64,
    },
    /// A batch of `(v, Γ(v))` responses.
    VertexResponse {
        /// The served records; adjacency lists are already trimmed.
        entries: Vec<(VertexId, AdjList)>,
        /// The originating request's `sent_nanos`, echoed back verbatim
        /// (0 when metrics are disabled or for multi-request merges).
        req_nanos: u64,
    },
    /// A batch of serialized tasks moved by the work stealer (raw spill
    /// file bytes; the thief appends them to its `L_file`).
    StealBatch {
        /// Encoded task batch.
        bytes: Vec<u8>,
    },
    /// A worker's progress report to the master.
    Progress {
        /// Reporting worker.
        worker: WorkerId,
        /// Estimated remaining load: spilled files plus unspawned
        /// vertices (in task-batch units).
        remaining: u64,
        /// True when the worker's compers are starving.
        idle: bool,
    },
    /// The master instructs `victim` to send `batches` task batches to
    /// `thief`.
    StealPlan {
        /// Worker that must give up tasks.
        victim: WorkerId,
        /// Worker that receives them.
        thief: WorkerId,
        /// Number of batch files to transfer.
        batches: u32,
    },
    /// The victim's report of how many batches it actually shipped for
    /// the current steal plan (may be less than planned if it ran dry).
    StealExecuted {
        /// Batches actually sent to the thief.
        sent: u32,
    },
    /// The thief's per-batch receipt acknowledgement to the master.
    StealDone,
    /// Opaque aggregator payload (application-encoded partial value).
    AggregatorSync {
        /// Reporting worker.
        worker: WorkerId,
        /// Encoded partial aggregate.
        payload: Vec<u8>,
        /// True for the final sync sent after the terminate signal;
        /// the master waits for one final sync per worker.
        is_final: bool,
    },
    /// The master broadcasts the merged global aggregate.
    AggregatorGlobal {
        /// Encoded global aggregate.
        payload: Vec<u8>,
    },
    /// Job end signal from the master; workers stop their threads.
    Terminate,
    /// Suspend signal: workers drain their task containers into a
    /// checkpoint and stop (fault-tolerance path).
    Suspend,
    /// A worker finished writing its checkpoint shard.
    SuspendDone {
        /// Reporting worker.
        worker: WorkerId,
    },
    /// Fault injection killed the receiving worker: its threads stop
    /// immediately without final syncs or checkpoint shards. Only the
    /// router's crash schedule emits this.
    Crash,
}

impl Message {
    /// Approximate serialized size in bytes, used for network byte
    /// accounting and the bandwidth model. Constants approximate a
    /// compact wire format (u32 vertex IDs, small headers).
    pub fn wire_bytes(&self) -> usize {
        const HEADER: usize = 16;
        match self {
            Message::VertexRequest { vertices, .. } => HEADER + 4 * vertices.len(),
            Message::VertexResponse { entries, .. } => {
                HEADER + entries.iter().map(|(_, adj)| 8 + 4 * adj.degree()).sum::<usize>()
            }
            Message::StealBatch { bytes } => HEADER + bytes.len(),
            Message::Progress { .. } => HEADER + 16,
            Message::StealPlan { .. } => HEADER + 8,
            Message::StealExecuted { .. } => HEADER + 4,
            Message::AggregatorSync { payload, .. } | Message::AggregatorGlobal { payload } => {
                HEADER + payload.len()
            }
            Message::StealDone
            | Message::Terminate
            | Message::Suspend
            | Message::SuspendDone { .. }
            | Message::Crash => HEADER,
        }
    }

    /// True for the data-plane messages (vertex pulls) that the fault
    /// model may drop, duplicate, or delay. The control plane and steal
    /// batches model reliable TCP-backed channels: losing a
    /// `StealBatch` would silently lose tasks, which nothing below the
    /// task layer could recover.
    pub fn is_data_plane(&self) -> bool {
        matches!(self, Message::VertexRequest { .. } | Message::VertexResponse { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_bytes_scale_with_content() {
        let small = Message::VertexRequest {
            from: WorkerId(0),
            vertices: vec![VertexId(1)],
            sent_nanos: 0,
        };
        let big = Message::VertexRequest {
            from: WorkerId(0),
            vertices: (0..100).map(VertexId).collect(),
            sent_nanos: 0,
        };
        assert!(big.wire_bytes() > small.wire_bytes());
        assert_eq!(big.wire_bytes() - small.wire_bytes(), 99 * 4);

        let resp = Message::VertexResponse {
            entries: vec![(VertexId(1), AdjList::from_unsorted((0..10).map(VertexId).collect()))],
            req_nanos: 0,
        };
        assert_eq!(resp.wire_bytes(), 16 + 8 + 40);
        assert_eq!(Message::Terminate.wire_bytes(), 16);
    }
}
