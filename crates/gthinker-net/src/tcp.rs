//! The real TCP interconnect: one worker per OS process, length-prefixed
//! [`frame`](crate::frame)s over sockets.
//!
//! A [`ClusterManifest`] lists every worker's listen address. At startup
//! each process calls [`TcpTransport::connect`], which binds its own
//! listener and builds a full mesh of **unidirectional** links: worker
//! `a` dials worker `b` and writes on that socket; `b` accepts and
//! reads. Each accepted link starts with a hello frame naming the
//! dialing worker, the cluster size, and the dialer's **generation**
//! (how many times that worker has been respawned), so a peer from a
//! different build (wire version) or a different manifest fails the
//! rendezvous with a descriptive error instead of corrupting traffic
//! later. Dials retry with exponential backoff + jitter while a peer's
//! listener is still coming up, bounded by the rendezvous timeout.
//!
//! **Peer death is an event, not a hang.** Every reader or writer error
//! (EOF, ECONNRESET, broken pipe) injects a
//! [`Message::PeerDown`](crate::message::Message::PeerDown) into the
//! local inbox and bumps a per-peer [`NetStats`] counter; the master's
//! failure detector reacts the moment the OS closes a dead process's
//! sockets. The accepting side of the mesh is a persistent
//! [`MeshAcceptor`] that outlives any single job attempt: a respawned
//! worker re-dials the survivors with a bumped generation, the acceptor
//! swaps in the newest-generation link at the next rendezvous, and
//! frames from a stale generation's socket are rejected (the connection
//! is closed before it can deliver anything).
//!
//! Fault injection reuses the transport-agnostic
//! [`FaultRuntime`](crate::fault::FaultRuntime): the same seed produces
//! the same drop/duplicate/delay decisions as the simulated router.
//! Crash schedules fire for real here: when this process is the
//! victim, the endpoint calls `std::process::abort()` at the scheduled
//! mark — same logical trigger as the sim router's
//! [`Message::Crash`](crate::message::Message::Crash), but the process
//! actually dies mid-job, which is what the cluster recovery path and
//! the process-chaos harness exercise. (`after_messages` counts this
//! endpoint's own sends and receives; no process has the router's
//! global count.)

use crate::fault::{splitmix64, FaultConfig, FaultRuntime, FaultStats};
use crate::frame::{self, FRAME_OVERHEAD};
use crate::message::Message;
use crate::transport::{NetEndpoint, NetStats, Transport};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use gthinker_graph::ids::WorkerId;
use gthinker_task::codec::{self, Decode, Encode};
use parking_lot::Mutex;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::io::{self, ErrorKind, Write};
use std::net::{IpAddr, Ipv4Addr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Every worker's listen address, in worker-ID order; identical on all
/// processes of a job (worker `w` is `addrs[w]`).
#[derive(Clone, Debug)]
pub struct ClusterManifest {
    addrs: Vec<SocketAddr>,
}

impl ClusterManifest {
    /// Builds a manifest from resolved addresses.
    pub fn new(addrs: Vec<SocketAddr>) -> ClusterManifest {
        assert!(!addrs.is_empty(), "manifest needs at least one worker");
        ClusterManifest { addrs }
    }

    /// Parses a comma-separated `host:port` list (the `--hosts` flag),
    /// resolving names; entry `i` is worker `i`'s listen address.
    pub fn parse(hosts: &str) -> io::Result<ClusterManifest> {
        let mut addrs = Vec::new();
        for entry in hosts.split(',') {
            let entry = entry.trim();
            let addr = entry.to_socket_addrs()?.next().ok_or_else(|| {
                io::Error::new(ErrorKind::InvalidInput, format!("`{entry}` resolves to nothing"))
            })?;
            addrs.push(addr);
        }
        if addrs.is_empty() {
            return Err(io::Error::new(ErrorKind::InvalidInput, "empty host list"));
        }
        Ok(ClusterManifest { addrs })
    }

    /// Number of workers in the cluster.
    pub fn num_workers(&self) -> usize {
        self.addrs.len()
    }

    /// Worker `w`'s listen address.
    pub fn addr(&self, w: WorkerId) -> SocketAddr {
        self.addrs[w.index()]
    }

    /// Binds `n` OS-assigned loopback ports and returns the manifest
    /// plus the pre-bound listeners (pass each to
    /// [`TcpTransport::connect_on`]). Tests use this to run a real TCP
    /// cluster without racing for fixed port numbers.
    pub fn loopback(n: usize) -> io::Result<(ClusterManifest, Vec<TcpListener>)> {
        let mut addrs = Vec::with_capacity(n);
        let mut listeners = Vec::with_capacity(n);
        for _ in 0..n {
            let l = TcpListener::bind(("127.0.0.1", 0))?;
            addrs.push(l.local_addr()?);
            listeners.push(l);
        }
        Ok((ClusterManifest::new(addrs), listeners))
    }
}

/// The hello frame opening every link:
/// `(dialing worker, cluster size, dialer generation)`.
fn hello_payload(me: usize, n: usize, generation: u32) -> Vec<u8> {
    let mut p = Vec::with_capacity(8);
    (me as u16).encode(&mut p);
    (n as u16).encode(&mut p);
    generation.encode(&mut p);
    p
}

/// Reads and validates a peer's hello; returns the peer's worker index
/// and its generation.
fn read_hello(stream: &mut TcpStream, n: usize) -> io::Result<(usize, u32)> {
    let payload = frame::read_frame(stream)?.ok_or_else(|| {
        io::Error::new(ErrorKind::UnexpectedEof, "peer closed the link before its hello")
    })?;
    let bad = |msg| io::Error::new(ErrorKind::InvalidData, msg);
    let mut buf = payload.as_slice();
    let peer = u16::decode(&mut buf).map_err(|_| bad("malformed hello".into()))? as usize;
    let peer_n = u16::decode(&mut buf).map_err(|_| bad("malformed hello".into()))? as usize;
    let generation = u32::decode(&mut buf).map_err(|_| bad("malformed hello".into()))?;
    if !buf.is_empty() {
        return Err(bad("malformed hello: trailing bytes".into()));
    }
    if peer_n != n {
        return Err(bad(format!(
            "peer expects a {peer_n}-worker cluster but this manifest lists {n} workers; \
             every process must get the same --hosts list"
        )));
    }
    if peer >= n {
        return Err(bad(format!("hello from out-of-range worker {peer}")));
    }
    Ok((peer, generation))
}

/// The persistent accepting half of a worker's mesh presence: one
/// listener plus one accept thread that outlive any single job attempt,
/// so a worker can tear its endpoint down after a failed attempt and
/// rendezvous again ([`TcpTransport::connect_via`]) without losing
/// links that peers — including a freshly respawned one — dialed in
/// the meantime.
///
/// Generation protocol: every inbound hello carries the dialer's
/// generation. Per peer, the acceptor keeps the highest generation it
/// has ever seen; a hello from a **lower** generation is a frame from
/// a pre-crash incarnation's socket and is rejected — the connection
/// is closed before any of its traffic can be read. An equal or higher
/// generation replaces whatever link is pending for that peer (newest
/// wins), which is what lets a respawned worker's fresh dial supersede
/// its dead predecessor's.
pub struct MeshAcceptor {
    me: usize,
    n: usize,
    addr: SocketAddr,
    inner: Arc<AcceptorInner>,
    thread: Option<std::thread::JoinHandle<()>>,
}

// std Mutex/Condvar: the vendored parking_lot shim has no Condvar, and
// this lock is far off any hot path (rendezvous only).
struct AcceptorInner {
    stop: AtomicBool,
    stale_rejections: AtomicU64,
    state: std::sync::Mutex<AcceptState>,
    cond: std::sync::Condvar,
}

struct AcceptState {
    /// Newest pending inbound link per peer, with its generation.
    pending: Vec<Option<(u32, TcpStream)>>,
    /// Highest generation ever seen per peer (the stale gate).
    last_gen: Vec<u32>,
    /// Links handed out per peer; a second take is a rejoin.
    taken: Vec<u64>,
    /// First fatal hello error (wire-version or manifest mismatch),
    /// surfaced to the rendezvous in progress.
    error: Option<String>,
}

impl MeshAcceptor {
    /// Starts accepting on `listener` for worker `me` of an `n`-worker
    /// cluster. The accept thread runs until the acceptor is dropped.
    pub fn new(listener: TcpListener, me: WorkerId, n: usize) -> io::Result<Arc<MeshAcceptor>> {
        let addr = listener.local_addr()?;
        let inner = Arc::new(AcceptorInner {
            stop: AtomicBool::new(false),
            stale_rejections: AtomicU64::new(0),
            state: std::sync::Mutex::new(AcceptState {
                pending: (0..n).map(|_| None).collect(),
                last_gen: vec![0; n],
                taken: vec![0; n],
                error: None,
            }),
            cond: std::sync::Condvar::new(),
        });
        let thread = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name(format!("tcp-accept-{}", me.index()))
                .spawn(move || accept_loop(listener, inner, n))
                .map_err(|e| io::Error::other(format!("spawn accept: {e}")))?
        };
        Ok(Arc::new(MeshAcceptor { me: me.index(), n, addr, inner, thread: Some(thread) }))
    }

    /// Hellos rejected because their generation was below the highest
    /// seen for that peer (frames from a pre-crash socket).
    pub fn stale_rejections(&self) -> u64 {
        self.inner.stale_rejections.load(Ordering::Relaxed)
    }

    /// Waits until `peer` has a pending inbound link and takes it.
    /// Returns `(generation, stream, rejoin)` — `rejoin` is true when
    /// this is not the first link taken from that peer. Event-driven:
    /// blocks on a condvar the accept thread notifies, bounded by
    /// `deadline`.
    pub fn take_pending(
        &self,
        peer: usize,
        deadline: Instant,
    ) -> io::Result<(u32, TcpStream, bool)> {
        let mut st = self.inner.state.lock().expect("acceptor lock");
        loop {
            if let Some(err) = st.error.take() {
                return Err(io::Error::new(ErrorKind::InvalidData, err));
            }
            if let Some((generation, stream)) = st.pending[peer].take() {
                st.taken[peer] += 1;
                let rejoin = st.taken[peer] > 1;
                return Ok((generation, stream, rejoin));
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(io::Error::new(
                    ErrorKind::TimedOut,
                    format!(
                        "cluster rendezvous timed out: worker {} never heard from worker {peer}",
                        self.me
                    ),
                ));
            }
            st = self.inner.cond.wait_timeout(st, remaining).expect("acceptor lock").0;
        }
    }

    /// Stops the accept thread: sets the stop flag, then dials our own
    /// listener to unblock `accept()`.
    fn shutdown(&self) {
        if self.inner.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        let mut addr = self.addr;
        if addr.ip().is_unspecified() {
            addr.set_ip(IpAddr::V4(Ipv4Addr::LOCALHOST));
        }
        let _ = TcpStream::connect_timeout(&addr, Duration::from_secs(1));
    }
}

impl Drop for MeshAcceptor {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// The [`MeshAcceptor`]'s thread: accept, validate the hello, gate on
/// generation, park the link for the next rendezvous to take.
fn accept_loop(listener: TcpListener, inner: Arc<AcceptorInner>, n: usize) {
    loop {
        let Ok((mut stream, _)) = listener.accept() else {
            if inner.stop.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if inner.stop.load(Ordering::SeqCst) {
            return;
        }
        // A stalled peer must not hang the hello read forever.
        stream.set_read_timeout(Some(Duration::from_secs(30))).ok();
        match read_hello(&mut stream, n) {
            Ok((peer, generation)) => {
                stream.set_read_timeout(None).ok();
                let mut st = inner.state.lock().expect("acceptor lock");
                if generation < st.last_gen[peer] {
                    // A frame from a pre-crash incarnation's socket:
                    // close it before it can deliver anything.
                    inner.stale_rejections.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                st.last_gen[peer] = generation;
                // Newest wins: a respawned worker's fresh link replaces
                // whatever its dead predecessor left pending.
                st.pending[peer] = Some((generation, stream));
                inner.cond.notify_all();
            }
            Err(e) => {
                let mut st = inner.state.lock().expect("acceptor lock");
                st.error.get_or_insert(e.to_string());
                inner.cond.notify_all();
            }
        }
    }
}

type Writers = Arc<Vec<Mutex<Option<TcpStream>>>>;

/// Which data plane carries frames once the mesh rendezvous is done.
/// Both speak the identical wire format and fault model, so a cluster
/// can mix them; the choice is per-process.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TcpBackend {
    /// One reader thread per peer; sends write synchronously from the
    /// sending thread under a per-peer lock; injected delays and
    /// wall-clock crash schedules each get a dedicated thread. The
    /// original data plane, kept as the ablation baseline.
    Threaded,
    /// A single `poll(2)` I/O thread owns every socket: pooled
    /// zero-copy frame buffers, per-peer bounded outbound rings with
    /// backpressure, vectored/coalesced writes, and the delay heap and
    /// crash deadline folded into the loop
    /// ([`EventedEndpoint`](crate::evented::EventedEndpoint)).
    #[default]
    Evented,
}

impl std::str::FromStr for TcpBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<TcpBackend, String> {
        match s {
            "threaded" => Ok(TcpBackend::Threaded),
            "evented" => Ok(TcpBackend::Evented),
            other => Err(format!("unknown net backend `{other}` (expected threaded|evented)")),
        }
    }
}

impl std::fmt::Display for TcpBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TcpBackend::Threaded => "threaded",
            TcpBackend::Evented => "evented",
        })
    }
}

/// One worker per OS process, talking real TCP to its peers. Holds an
/// [`Arc`] of its [`MeshAcceptor`] so the accept thread lives at least
/// as long as the mesh; callers that rendezvous repeatedly
/// ([`TcpTransport::connect_via`]) keep their own `Arc` across
/// attempts.
pub struct TcpTransport {
    n: usize,
    me: WorkerId,
    endpoint: Option<Box<dyn NetEndpoint>>,
    _acceptor: Arc<MeshAcceptor>,
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("me", &self.me)
            .field("n", &self.n)
            .finish_non_exhaustive()
    }
}

impl TcpTransport {
    /// Binds this worker's manifest address and joins the cluster
    /// rendezvous: dial every peer, accept every peer, all within
    /// `timeout`. Returns once the full mesh is up.
    pub fn connect(
        manifest: &ClusterManifest,
        me: WorkerId,
        fault: FaultConfig,
        timeout: Duration,
    ) -> io::Result<TcpTransport> {
        let listener = TcpListener::bind(manifest.addr(me))?;
        TcpTransport::connect_on(manifest, me, fault, timeout, listener)
    }

    /// [`connect`](TcpTransport::connect) with an explicit data-plane
    /// choice.
    pub fn connect_with(
        manifest: &ClusterManifest,
        me: WorkerId,
        fault: FaultConfig,
        timeout: Duration,
        backend: TcpBackend,
    ) -> io::Result<TcpTransport> {
        let listener = TcpListener::bind(manifest.addr(me))?;
        TcpTransport::connect_on_with(manifest, me, fault, timeout, listener, backend)
    }

    /// [`connect`](TcpTransport::connect) with a pre-bound listener
    /// (see [`ClusterManifest::loopback`]). Builds a one-shot
    /// [`MeshAcceptor`] owned by the transport; generation 0.
    pub fn connect_on(
        manifest: &ClusterManifest,
        me: WorkerId,
        fault: FaultConfig,
        timeout: Duration,
        listener: TcpListener,
    ) -> io::Result<TcpTransport> {
        TcpTransport::connect_on_with(manifest, me, fault, timeout, listener, TcpBackend::default())
    }

    /// [`connect_on`](TcpTransport::connect_on) with an explicit
    /// data-plane choice.
    pub fn connect_on_with(
        manifest: &ClusterManifest,
        me: WorkerId,
        fault: FaultConfig,
        timeout: Duration,
        listener: TcpListener,
        backend: TcpBackend,
    ) -> io::Result<TcpTransport> {
        let acceptor = MeshAcceptor::new(listener, me, manifest.num_workers())?;
        TcpTransport::connect_via_with(&acceptor, manifest, me, fault, timeout, 0, backend)
    }

    /// Joins (or re-joins) the cluster rendezvous through a persistent
    /// [`MeshAcceptor`]: dial every peer with `generation` in the
    /// hello, take every peer's newest pending inbound link, all within
    /// `timeout`. The cluster-recovery loop calls this once per
    /// attempt, holding the acceptor across attempts so links dialed by
    /// a respawned peer while this process was tearing down are not
    /// lost.
    pub fn connect_via(
        acceptor: &Arc<MeshAcceptor>,
        manifest: &ClusterManifest,
        me: WorkerId,
        fault: FaultConfig,
        timeout: Duration,
        generation: u32,
    ) -> io::Result<TcpTransport> {
        TcpTransport::connect_via_with(
            acceptor,
            manifest,
            me,
            fault,
            timeout,
            generation,
            TcpBackend::default(),
        )
    }

    /// [`connect_via`](TcpTransport::connect_via) with an explicit
    /// data-plane choice. The rendezvous (dial + hello + accept) is
    /// identical for both backends; they differ only in who owns the
    /// established sockets afterwards.
    pub fn connect_via_with(
        acceptor: &Arc<MeshAcceptor>,
        manifest: &ClusterManifest,
        me: WorkerId,
        fault: FaultConfig,
        timeout: Duration,
        generation: u32,
        backend: TcpBackend,
    ) -> io::Result<TcpTransport> {
        let n = manifest.num_workers();
        assert!(me.index() < n, "worker {} not in a {n}-worker manifest", me.index());
        assert_eq!(acceptor.me, me.index(), "acceptor belongs to another worker");
        assert_eq!(acceptor.n, n, "acceptor sized for a different cluster");
        let fault = FaultRuntime::new(n, fault).map(Arc::new);
        let stats = Arc::new(NetStats::for_cluster(n));
        let (inbox_tx, inbox) = unbounded();
        let deadline = Instant::now() + timeout;

        // If this process is a crash schedule's victim on a wall-clock
        // trigger, arm a timer so the abort fires even while the
        // endpoint is idle (sends/receives also check the schedule).
        // The evented backend folds this deadline into its I/O loop's
        // poll timeout instead — no extra thread.
        if backend == TcpBackend::Threaded {
            if let Some(f) = &fault {
                if let Some(cs) = f.config().crash {
                    if let (true, Some(after)) = (cs.worker == me, cs.after) {
                        let f = Arc::clone(f);
                        std::thread::Builder::new()
                            .name(format!("tcp-crash-timer-{}", me.index()))
                            .spawn(move || {
                                std::thread::sleep(after);
                                if f.crash_due() == Some(me.index()) {
                                    crash_self(me.index());
                                }
                            })
                            .map_err(|e| io::Error::other(format!("spawn crash timer: {e}")))?;
                    }
                }
            }
        }

        // The acceptor has been collecting inbound links since it was
        // created; dial every peer, retrying with backoff while a peer
        // is still starting (or restarting) up.
        let mut write_streams: Vec<Option<TcpStream>> = (0..n).map(|_| None).collect();
        for (w, slot) in write_streams.iter_mut().enumerate() {
            if w == me.index() {
                continue;
            }
            let salt = ((me.index() as u64) << 32) | w as u64;
            let mut stream = dial_with_retry(manifest.addr(WorkerId(w as u16)), deadline, salt)?;
            stream.set_nodelay(true).ok();
            frame::write_frame(&mut stream, &hello_payload(me.index(), n, generation))?;
            *slot = Some(stream);
        }

        // Take the n-1 inbound links.
        let mut read_streams: Vec<Option<TcpStream>> = (0..n).map(|_| None).collect();
        let mut have = 0usize;
        for (peer, slot) in read_streams.iter_mut().enumerate() {
            if peer == me.index() {
                continue;
            }
            let (_gen, stream, rejoin) = acceptor.take_pending(peer, deadline).map_err(|e| {
                if e.kind() == ErrorKind::TimedOut {
                    io::Error::new(
                        ErrorKind::TimedOut,
                        format!(
                            "cluster rendezvous timed out: worker {} heard from {have} of {} \
                             peers within {timeout:?} (first missing: worker {peer})",
                            me.index(),
                            n - 1
                        ),
                    )
                } else {
                    e
                }
            })?;
            have += 1;
            if rejoin {
                stats.peer_reconnect(peer);
            }
            *slot = Some(stream);
        }

        let endpoint: Box<dyn NetEndpoint> = match backend {
            TcpBackend::Evented => Box::new(crate::evented::launch(
                me,
                n,
                write_streams,
                read_streams,
                stats,
                fault,
                inbox_tx,
                inbox,
            )?),
            TcpBackend::Threaded => {
                // One reader thread per inbound link.
                for (peer, stream) in read_streams.into_iter().enumerate() {
                    let Some(stream) = stream else { continue };
                    let inbox_tx = inbox_tx.clone();
                    let stats = Arc::clone(&stats);
                    std::thread::Builder::new()
                        .name(format!("tcp-read-{}-from-{peer}", me.index()))
                        .spawn(move || reader_loop(peer, stream, inbox_tx, stats))
                        .map_err(|e| io::Error::other(format!("spawn reader thread: {e}")))?;
                }
                let writers: Writers =
                    Arc::new(write_streams.into_iter().map(Mutex::new).collect::<Vec<_>>());

                // Injected delays re-transmit from a heap thread;
                // created only when faults are on, so the clean path
                // has no extra thread.
                let delay_tx = match &fault {
                    Some(_) => {
                        let (tx, rx) = unbounded::<DelayedFrame>();
                        let writers = Arc::clone(&writers);
                        let stats = Arc::clone(&stats);
                        std::thread::Builder::new()
                            .name(format!("tcp-delay-{}", me.index()))
                            .spawn(move || delay_loop(rx, writers, stats))
                            .map_err(|e| io::Error::other(format!("spawn delay thread: {e}")))?;
                        Some(tx)
                    }
                    None => None,
                };

                Box::new(TcpEndpoint {
                    me: me.index(),
                    n,
                    writers,
                    inbox,
                    inbox_tx,
                    stats,
                    fault,
                    delay_tx,
                    delay_seq: AtomicU64::new(0),
                })
            }
        };

        Ok(TcpTransport { n, me, endpoint: Some(endpoint), _acceptor: Arc::clone(acceptor) })
    }
}

impl Transport for TcpTransport {
    fn num_workers(&self) -> usize {
        self.n
    }

    /// A TCP process hosts exactly one worker.
    fn hosted(&self) -> Vec<WorkerId> {
        vec![self.me]
    }

    fn take_endpoint(&mut self, w: WorkerId) -> Box<dyn NetEndpoint> {
        assert_eq!(w, self.me, "worker {} is not hosted by this process", w.index());
        self.endpoint.take().expect("endpoint already taken")
    }
}

/// Dials `addr` until it answers or `deadline` passes, sleeping an
/// exponentially growing, jittered backoff between attempts — a peer's
/// listener may not be up yet (slow start, or a crashed worker being
/// respawned), and hammering it in a tight loop from every survivor at
/// once is how thundering herds are made. `salt` decorrelates the
/// jitter across dialers deterministically (no RNG dependency).
fn dial_with_retry(addr: SocketAddr, deadline: Instant, salt: u64) -> io::Result<TcpStream> {
    let mut attempt: u64 = 0;
    loop {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(io::Error::new(
                ErrorKind::TimedOut,
                format!("no worker answered at {addr} before the rendezvous deadline"),
            ));
        }
        match TcpStream::connect_timeout(&addr, remaining.min(Duration::from_millis(250))) {
            Ok(s) => return Ok(s),
            Err(_) => {
                // 10ms, 20ms, … capped at 320ms, plus up to 50% jitter;
                // always bounded by the overall rendezvous deadline.
                let base = 10u64 << attempt.min(5);
                let jitter = splitmix64(salt ^ attempt) % (base / 2 + 1);
                let backoff = Duration::from_millis(base + jitter);
                std::thread::sleep(backoff.min(remaining));
                attempt += 1;
            }
        }
    }
}

/// This process is a crash schedule's victim and the mark was reached:
/// die the way a killed worker dies — abnormally, mid-everything.
pub(crate) fn crash_self(me: usize) -> ! {
    eprintln!("gthinker-net: worker {me} crash schedule fired; aborting process");
    std::process::abort();
}

fn reader_loop(peer: usize, mut stream: TcpStream, inbox: Sender<Message>, stats: Arc<NetStats>) {
    loop {
        match frame::read_frame(&mut stream) {
            Ok(Some(payload)) => {
                let msg = match codec::from_bytes::<Message>(&payload) {
                    Ok(m) => m,
                    Err(e) => {
                        eprintln!(
                            "gthinker-net: undecodable frame from worker {peer} dropped: {e}"
                        );
                        continue;
                    }
                };
                stats
                    .bytes_received
                    .fetch_add((payload.len() + FRAME_OVERHEAD) as u64, Ordering::Relaxed);
                stats.msgs_received.fetch_add(1, Ordering::Relaxed);
                if inbox.send(msg).is_err() {
                    return; // endpoint gone: job teardown
                }
            }
            // Every way a link dies — clean EOF (peer closed or its OS
            // closed its sockets when it died), reset, or a framing
            // error — is counted and surfaced as a PeerDown event, so a
            // dead process is something the master *reacts to* rather
            // than a silently vanished thread. At normal job teardown
            // the per-link FIFO guarantees the peer's final control
            // messages were delivered before this fires, and the
            // master's terminated guard ignores it.
            Ok(None) => {
                stats.peer_down(peer);
                let _ = inbox.send(Message::PeerDown { worker: WorkerId(peer as u16) });
                return;
            }
            Err(e) => {
                // Resets during teardown are the normal end of a job;
                // anything else (version mismatch, corruption) is worth
                // a line on stderr before the link goes dark.
                if !matches!(e.kind(), ErrorKind::ConnectionReset | ErrorKind::ConnectionAborted) {
                    eprintln!("gthinker-net: link from worker {peer} failed: {e}");
                }
                stats.peer_down(peer);
                let _ = inbox.send(Message::PeerDown { worker: WorkerId(peer as u16) });
                return;
            }
        }
    }
}

struct DelayedFrame {
    deliver_at: Instant,
    seq: u64,
    to: usize,
    frame: Vec<u8>,
}

impl PartialEq for DelayedFrame {
    fn eq(&self, other: &Self) -> bool {
        (self.deliver_at, self.seq) == (other.deliver_at, other.seq)
    }
}
impl Eq for DelayedFrame {}
impl PartialOrd for DelayedFrame {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for DelayedFrame {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deliver_at, self.seq).cmp(&(other.deliver_at, other.seq))
    }
}

/// Writes fault-delayed frames once their delivery time arrives; later
/// traffic on the link overtakes them, which is the reorder. A
/// deferred write that cannot happen — the peer's writer is already
/// gone, or the write itself fails — is dropped, but **counted**
/// ([`NetStats::delayed_write_errors`]) so a chaos run can tell
/// injected loss from delay-path loss.
fn delay_loop(rx: Receiver<DelayedFrame>, writers: Writers, stats: Arc<NetStats>) {
    let mut heap: BinaryHeap<Reverse<DelayedFrame>> = BinaryHeap::new();
    let write = |d: DelayedFrame| {
        let delivered = match writers[d.to].lock().as_mut() {
            Some(stream) => stream.write_all(&d.frame).is_ok(),
            None => false,
        };
        if !delivered {
            stats.delayed_write_errors.fetch_add(1, Ordering::Relaxed);
        }
    };
    loop {
        let now = Instant::now();
        while heap.peek().is_some_and(|Reverse(d)| d.deliver_at <= now) {
            write(heap.pop().expect("peeked").0);
        }
        let timeout = heap
            .peek()
            .map(|Reverse(d)| d.deliver_at.saturating_duration_since(now))
            .unwrap_or(Duration::from_millis(50));
        match rx.recv_timeout(timeout) {
            Ok(d) => heap.push(Reverse(d)),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {
                // Endpoint dropped: flush what is pending and exit.
                while let Some(Reverse(d)) = heap.pop() {
                    write(d);
                }
                return;
            }
        }
    }
}

/// This process's endpoint on the TCP mesh. Byte counters measure real
/// wire bytes: payload plus [`FRAME_OVERHEAD`] per message (self-sends
/// are counted at the same rate for comparability).
pub struct TcpEndpoint {
    me: usize,
    n: usize,
    writers: Writers,
    inbox: Receiver<Message>,
    inbox_tx: Sender<Message>,
    stats: Arc<NetStats>,
    fault: Option<Arc<FaultRuntime>>,
    delay_tx: Option<Sender<DelayedFrame>>,
    delay_seq: AtomicU64,
}

impl TcpEndpoint {
    /// Writes one sealed frame to `to`, now or after an injected delay.
    /// A write error means the peer's socket is gone (it died, or left
    /// at teardown): the writer is dropped so later sends stop
    /// retrying, the per-peer counter is bumped, and a `PeerDown` is
    /// injected into the local inbox — the same event a reader failure
    /// produces, so peer death surfaces whichever side notices first.
    fn dispatch(&self, to: usize, frame: Vec<u8>, extra: Duration) {
        if extra.is_zero() {
            let mut guard = self.writers[to].lock();
            if let Some(stream) = guard.as_mut() {
                if stream.write_all(&frame).is_err() {
                    *guard = None;
                    drop(guard);
                    self.stats.peer_down(to);
                    let _ = self.inbox_tx.send(Message::PeerDown { worker: WorkerId(to as u16) });
                }
            }
        } else if let Some(tx) = &self.delay_tx {
            let _ = tx.send(DelayedFrame {
                deliver_at: Instant::now() + extra,
                seq: self.delay_seq.fetch_add(1, Ordering::Relaxed),
                to,
                frame,
            });
        }
    }

    /// Advances this process's crash schedule by one endpoint message
    /// (send or successful receive) and aborts the process if this
    /// worker is the victim and the mark was reached — the TCP
    /// equivalent of the sim router delivering `Message::Crash`.
    fn note_traffic(&self) {
        if let Some(f) = &self.fault {
            if f.crash_due() == Some(self.me) {
                crash_self(self.me);
            }
        }
    }
}

impl NetEndpoint for TcpEndpoint {
    fn id(&self) -> WorkerId {
        WorkerId(self.me as u16)
    }

    fn num_workers(&self) -> usize {
        self.n
    }

    fn send(&self, to: WorkerId, msg: Message) {
        self.note_traffic();
        let bytes = (msg.encoded_len() + FRAME_OVERHEAD) as u64;
        self.stats.bytes_sent.fetch_add(bytes, Ordering::Relaxed);
        self.stats.msgs_sent.fetch_add(1, Ordering::Relaxed);
        if to.index() == self.me {
            self.stats.bytes_received.fetch_add(bytes, Ordering::Relaxed);
            self.stats.msgs_received.fetch_add(1, Ordering::Relaxed);
            let _ = self.inbox_tx.send(msg);
            return;
        }
        let mut extra = Duration::ZERO;
        if let Some(f) = &self.fault {
            if msg.is_data_plane() {
                let d = f.next_decision(self.me, to.index());
                if d.drop {
                    return;
                }
                if d.duplicate {
                    // The copy trails the original by one jitter window.
                    let lag = d.delay + f.config().reorder_jitter;
                    self.dispatch(to.index(), frame::seal(&codec::to_bytes(&msg)), lag);
                }
                extra = d.delay;
            }
        }
        self.dispatch(to.index(), frame::seal(&codec::to_bytes(&msg)), extra);
    }

    /// Re-injects an already-received message, bypassing fault
    /// decisions and traffic accounting (it was both counted and
    /// fault-rolled on its original trip).
    fn requeue(&self, msg: Message) {
        let _ = self.inbox_tx.send(msg);
    }

    fn try_recv(&self) -> Option<Message> {
        let m = self.inbox.try_recv().ok();
        if m.is_some() {
            self.note_traffic();
        }
        m
    }

    fn recv_timeout(&self, timeout: Duration) -> Option<Message> {
        let m = self.inbox.recv_timeout(timeout).ok();
        if m.is_some() {
            self.note_traffic();
        }
        m
    }

    fn stats(&self) -> &NetStats {
        &self.stats
    }

    fn fault_stats(&self) -> Option<&FaultStats> {
        self.fault.as_deref().map(|f| f.stats(self.me))
    }
}
