//! The real TCP interconnect: one worker per OS process, length-prefixed
//! [`frame`](crate::frame)s over sockets.
//!
//! A [`ClusterManifest`] lists every worker's listen address. At startup
//! each process calls [`TcpTransport::connect`], which binds its own
//! listener and builds a full mesh of **unidirectional** links: worker
//! `a` dials worker `b` and writes on that socket; `b` accepts and
//! reads. Each accepted link starts with a hello frame naming the
//! dialing worker and the cluster size, so a peer from a different
//! build (wire version) or a different manifest fails the rendezvous
//! with a descriptive error instead of corrupting traffic later.
//!
//! Fault injection reuses the transport-agnostic
//! [`FaultRuntime`](crate::fault::FaultRuntime): the same seed produces
//! the same drop/duplicate/delay decisions as the simulated router.
//! Crash schedules are rejected — killing a worker for real is what
//! `kill(1)` is for, and the recovery path is exercised on the sim
//! backend where the router has the whole-cluster view.

use crate::fault::{FaultConfig, FaultRuntime, FaultStats};
use crate::frame::{self, FRAME_OVERHEAD};
use crate::message::Message;
use crate::transport::{NetEndpoint, NetStats, Transport};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use gthinker_graph::ids::WorkerId;
use gthinker_task::codec::{self, Decode, Encode};
use parking_lot::Mutex;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::io::{self, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Every worker's listen address, in worker-ID order; identical on all
/// processes of a job (worker `w` is `addrs[w]`).
#[derive(Clone, Debug)]
pub struct ClusterManifest {
    addrs: Vec<SocketAddr>,
}

impl ClusterManifest {
    /// Builds a manifest from resolved addresses.
    pub fn new(addrs: Vec<SocketAddr>) -> ClusterManifest {
        assert!(!addrs.is_empty(), "manifest needs at least one worker");
        ClusterManifest { addrs }
    }

    /// Parses a comma-separated `host:port` list (the `--hosts` flag),
    /// resolving names; entry `i` is worker `i`'s listen address.
    pub fn parse(hosts: &str) -> io::Result<ClusterManifest> {
        let mut addrs = Vec::new();
        for entry in hosts.split(',') {
            let entry = entry.trim();
            let addr = entry.to_socket_addrs()?.next().ok_or_else(|| {
                io::Error::new(ErrorKind::InvalidInput, format!("`{entry}` resolves to nothing"))
            })?;
            addrs.push(addr);
        }
        if addrs.is_empty() {
            return Err(io::Error::new(ErrorKind::InvalidInput, "empty host list"));
        }
        Ok(ClusterManifest { addrs })
    }

    /// Number of workers in the cluster.
    pub fn num_workers(&self) -> usize {
        self.addrs.len()
    }

    /// Worker `w`'s listen address.
    pub fn addr(&self, w: WorkerId) -> SocketAddr {
        self.addrs[w.index()]
    }

    /// Binds `n` OS-assigned loopback ports and returns the manifest
    /// plus the pre-bound listeners (pass each to
    /// [`TcpTransport::connect_on`]). Tests use this to run a real TCP
    /// cluster without racing for fixed port numbers.
    pub fn loopback(n: usize) -> io::Result<(ClusterManifest, Vec<TcpListener>)> {
        let mut addrs = Vec::with_capacity(n);
        let mut listeners = Vec::with_capacity(n);
        for _ in 0..n {
            let l = TcpListener::bind(("127.0.0.1", 0))?;
            addrs.push(l.local_addr()?);
            listeners.push(l);
        }
        Ok((ClusterManifest::new(addrs), listeners))
    }
}

/// The hello frame opening every link: `(dialing worker, cluster size)`.
fn hello_payload(me: usize, n: usize) -> Vec<u8> {
    let mut p = Vec::with_capacity(4);
    (me as u16).encode(&mut p);
    (n as u16).encode(&mut p);
    p
}

/// Reads and validates a peer's hello; returns the peer's worker index.
fn read_hello(stream: &mut TcpStream, n: usize) -> io::Result<usize> {
    let payload = frame::read_frame(stream)?.ok_or_else(|| {
        io::Error::new(ErrorKind::UnexpectedEof, "peer closed the link before its hello")
    })?;
    let bad = |msg| io::Error::new(ErrorKind::InvalidData, msg);
    let mut buf = payload.as_slice();
    let peer = u16::decode(&mut buf).map_err(|_| bad("malformed hello".into()))? as usize;
    let peer_n = u16::decode(&mut buf).map_err(|_| bad("malformed hello".into()))? as usize;
    if !buf.is_empty() {
        return Err(bad("malformed hello: trailing bytes".into()));
    }
    if peer_n != n {
        return Err(bad(format!(
            "peer expects a {peer_n}-worker cluster but this manifest lists {n} workers; \
             every process must get the same --hosts list"
        )));
    }
    if peer >= n {
        return Err(bad(format!("hello from out-of-range worker {peer}")));
    }
    Ok(peer)
}

type Writers = Arc<Vec<Mutex<Option<TcpStream>>>>;

/// One worker per OS process, talking real TCP to its peers.
pub struct TcpTransport {
    n: usize,
    me: WorkerId,
    endpoint: Option<TcpEndpoint>,
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("me", &self.me)
            .field("n", &self.n)
            .finish_non_exhaustive()
    }
}

impl TcpTransport {
    /// Binds this worker's manifest address and joins the cluster
    /// rendezvous: dial every peer, accept every peer, all within
    /// `timeout`. Returns once the full mesh is up.
    pub fn connect(
        manifest: &ClusterManifest,
        me: WorkerId,
        fault: FaultConfig,
        timeout: Duration,
    ) -> io::Result<TcpTransport> {
        let listener = TcpListener::bind(manifest.addr(me))?;
        TcpTransport::connect_on(manifest, me, fault, timeout, listener)
    }

    /// [`connect`](TcpTransport::connect) with a pre-bound listener
    /// (see [`ClusterManifest::loopback`]).
    pub fn connect_on(
        manifest: &ClusterManifest,
        me: WorkerId,
        fault: FaultConfig,
        timeout: Duration,
        listener: TcpListener,
    ) -> io::Result<TcpTransport> {
        let n = manifest.num_workers();
        assert!(me.index() < n, "worker {} not in a {n}-worker manifest", me.index());
        if fault.crash.is_some() {
            return Err(io::Error::new(
                ErrorKind::Unsupported,
                "crash schedules need the simulated router's whole-cluster view; \
                 run crash-recovery scenarios on the sim backend (or kill the process)",
            ));
        }
        let fault = FaultRuntime::new(n, fault).map(Arc::new);
        let stats = Arc::new(NetStats::default());
        let (inbox_tx, inbox) = unbounded();
        let deadline = Instant::now() + timeout;

        // Accept first, dial second: every process starts accepting
        // before any dial can succeed, so the mesh cannot deadlock on
        // rendezvous order.
        let expected = n - 1;
        let (acc_tx, acc_rx) = unbounded::<io::Result<(usize, TcpStream)>>();
        if expected > 0 {
            let lst = listener.try_clone()?;
            std::thread::Builder::new()
                .name(format!("tcp-accept-{}", me.index()))
                .spawn(move || {
                    for _ in 0..expected {
                        let hello = lst.accept().and_then(|(mut s, _)| {
                            // A stalled peer must not hang the hello read
                            // past the rendezvous window.
                            s.set_read_timeout(Some(Duration::from_secs(30))).ok();
                            let peer = read_hello(&mut s, n)?;
                            s.set_read_timeout(None).ok();
                            Ok((peer, s))
                        });
                        let failed = hello.is_err();
                        if acc_tx.send(hello).is_err() || failed {
                            return;
                        }
                    }
                })
                .expect("spawn accept thread");
        }

        // Dial every peer, retrying while it is still starting up.
        let writers: Writers = Arc::new((0..n).map(|_| Mutex::new(None)).collect::<Vec<_>>());
        for w in 0..n {
            if w == me.index() {
                continue;
            }
            let mut stream = dial_with_retry(manifest.addr(WorkerId(w as u16)), deadline)?;
            stream.set_nodelay(true).ok();
            frame::write_frame(&mut stream, &hello_payload(me.index(), n))?;
            *writers[w].lock() = Some(stream);
        }

        // Collect the n-1 inbound links and start a reader per peer.
        let mut seen = vec![false; n];
        for _ in 0..expected {
            let remaining = deadline.saturating_duration_since(Instant::now());
            let (peer, stream) = match acc_rx.recv_timeout(remaining) {
                Ok(res) => res?,
                Err(_) => {
                    let have = seen.iter().filter(|s| **s).count();
                    return Err(io::Error::new(
                        ErrorKind::TimedOut,
                        format!(
                            "cluster rendezvous timed out: worker {} heard from {have} of \
                             {expected} peers within {timeout:?}",
                            me.index()
                        ),
                    ));
                }
            };
            if std::mem::replace(&mut seen[peer], true) {
                return Err(io::Error::new(
                    ErrorKind::InvalidData,
                    format!("two peers claimed worker id {peer}; check the --me flags"),
                ));
            }
            let inbox_tx = inbox_tx.clone();
            let stats = Arc::clone(&stats);
            std::thread::Builder::new()
                .name(format!("tcp-read-{}-from-{peer}", me.index()))
                .spawn(move || reader_loop(peer, stream, inbox_tx, stats))
                .expect("spawn reader thread");
        }

        // Injected delays re-transmit from a heap thread; created only
        // when faults are on, so the clean path has no extra thread.
        let delay_tx = fault.is_some().then(|| {
            let (tx, rx) = unbounded::<DelayedFrame>();
            let writers = Arc::clone(&writers);
            std::thread::Builder::new()
                .name(format!("tcp-delay-{}", me.index()))
                .spawn(move || delay_loop(rx, writers))
                .expect("spawn delay thread");
            tx
        });

        Ok(TcpTransport {
            n,
            me,
            endpoint: Some(TcpEndpoint {
                me: me.index(),
                n,
                writers,
                inbox,
                inbox_tx,
                stats,
                fault,
                delay_tx,
                delay_seq: AtomicU64::new(0),
            }),
        })
    }
}

impl Transport for TcpTransport {
    fn num_workers(&self) -> usize {
        self.n
    }

    /// A TCP process hosts exactly one worker.
    fn hosted(&self) -> Vec<WorkerId> {
        vec![self.me]
    }

    fn take_endpoint(&mut self, w: WorkerId) -> Box<dyn NetEndpoint> {
        assert_eq!(w, self.me, "worker {} is not hosted by this process", w.index());
        Box::new(self.endpoint.take().expect("endpoint already taken"))
    }
}

fn dial_with_retry(addr: SocketAddr, deadline: Instant) -> io::Result<TcpStream> {
    loop {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(io::Error::new(
                ErrorKind::TimedOut,
                format!("no worker answered at {addr} before the rendezvous deadline"),
            ));
        }
        match TcpStream::connect_timeout(&addr, remaining.min(Duration::from_millis(250))) {
            Ok(s) => return Ok(s),
            // The peer process may simply not have bound yet.
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

fn reader_loop(peer: usize, mut stream: TcpStream, inbox: Sender<Message>, stats: Arc<NetStats>) {
    loop {
        match frame::read_frame(&mut stream) {
            Ok(Some(payload)) => {
                let msg = match codec::from_bytes::<Message>(&payload) {
                    Ok(m) => m,
                    Err(e) => {
                        eprintln!(
                            "gthinker-net: undecodable frame from worker {peer} dropped: {e}"
                        );
                        continue;
                    }
                };
                stats
                    .bytes_received
                    .fetch_add((payload.len() + FRAME_OVERHEAD) as u64, Ordering::Relaxed);
                stats.msgs_received.fetch_add(1, Ordering::Relaxed);
                if inbox.send(msg).is_err() {
                    return; // endpoint gone: job teardown
                }
            }
            Ok(None) => return, // peer closed its write side cleanly
            Err(e) => {
                // Resets during teardown are the normal end of a job;
                // anything else (version mismatch, corruption) is worth
                // a line on stderr before the link goes dark.
                if !matches!(e.kind(), ErrorKind::ConnectionReset | ErrorKind::ConnectionAborted) {
                    eprintln!("gthinker-net: link from worker {peer} failed: {e}");
                }
                return;
            }
        }
    }
}

struct DelayedFrame {
    deliver_at: Instant,
    seq: u64,
    to: usize,
    frame: Vec<u8>,
}

impl PartialEq for DelayedFrame {
    fn eq(&self, other: &Self) -> bool {
        (self.deliver_at, self.seq) == (other.deliver_at, other.seq)
    }
}
impl Eq for DelayedFrame {}
impl PartialOrd for DelayedFrame {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for DelayedFrame {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deliver_at, self.seq).cmp(&(other.deliver_at, other.seq))
    }
}

/// Writes fault-delayed frames once their delivery time arrives; later
/// traffic on the link overtakes them, which is the reorder.
fn delay_loop(rx: Receiver<DelayedFrame>, writers: Writers) {
    let mut heap: BinaryHeap<Reverse<DelayedFrame>> = BinaryHeap::new();
    let write = |d: DelayedFrame| {
        if let Some(stream) = writers[d.to].lock().as_mut() {
            let _ = stream.write_all(&d.frame);
        }
    };
    loop {
        let now = Instant::now();
        while heap.peek().is_some_and(|Reverse(d)| d.deliver_at <= now) {
            write(heap.pop().expect("peeked").0);
        }
        let timeout = heap
            .peek()
            .map(|Reverse(d)| d.deliver_at.saturating_duration_since(now))
            .unwrap_or(Duration::from_millis(50));
        match rx.recv_timeout(timeout) {
            Ok(d) => heap.push(Reverse(d)),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {
                // Endpoint dropped: flush what is pending and exit.
                while let Some(Reverse(d)) = heap.pop() {
                    write(d);
                }
                return;
            }
        }
    }
}

/// This process's endpoint on the TCP mesh. Byte counters measure real
/// wire bytes: payload plus [`FRAME_OVERHEAD`] per message (self-sends
/// are counted at the same rate for comparability).
pub struct TcpEndpoint {
    me: usize,
    n: usize,
    writers: Writers,
    inbox: Receiver<Message>,
    inbox_tx: Sender<Message>,
    stats: Arc<NetStats>,
    fault: Option<Arc<FaultRuntime>>,
    delay_tx: Option<Sender<DelayedFrame>>,
    delay_seq: AtomicU64,
}

impl TcpEndpoint {
    /// Writes one sealed frame to `to`, now or after an injected delay.
    /// Write errors mean the peer already left (Terminate racing final
    /// traffic) and are treated as a dropped link, mirroring the sim
    /// router's sends to a crashed worker.
    fn dispatch(&self, to: usize, frame: Vec<u8>, extra: Duration) {
        if extra.is_zero() {
            if let Some(stream) = self.writers[to].lock().as_mut() {
                let _ = stream.write_all(&frame);
            }
        } else if let Some(tx) = &self.delay_tx {
            let _ = tx.send(DelayedFrame {
                deliver_at: Instant::now() + extra,
                seq: self.delay_seq.fetch_add(1, Ordering::Relaxed),
                to,
                frame,
            });
        }
    }
}

impl NetEndpoint for TcpEndpoint {
    fn id(&self) -> WorkerId {
        WorkerId(self.me as u16)
    }

    fn num_workers(&self) -> usize {
        self.n
    }

    fn send(&self, to: WorkerId, msg: Message) {
        let bytes = (msg.encoded_len() + FRAME_OVERHEAD) as u64;
        self.stats.bytes_sent.fetch_add(bytes, Ordering::Relaxed);
        self.stats.msgs_sent.fetch_add(1, Ordering::Relaxed);
        if to.index() == self.me {
            self.stats.bytes_received.fetch_add(bytes, Ordering::Relaxed);
            self.stats.msgs_received.fetch_add(1, Ordering::Relaxed);
            let _ = self.inbox_tx.send(msg);
            return;
        }
        let mut extra = Duration::ZERO;
        if let Some(f) = &self.fault {
            if msg.is_data_plane() {
                let d = f.next_decision(self.me, to.index());
                if d.drop {
                    return;
                }
                if d.duplicate {
                    // The copy trails the original by one jitter window.
                    let lag = d.delay + f.config().reorder_jitter;
                    self.dispatch(to.index(), frame::seal(&codec::to_bytes(&msg)), lag);
                }
                extra = d.delay;
            }
        }
        self.dispatch(to.index(), frame::seal(&codec::to_bytes(&msg)), extra);
    }

    fn try_recv(&self) -> Option<Message> {
        self.inbox.try_recv().ok()
    }

    fn recv_timeout(&self, timeout: Duration) -> Option<Message> {
        self.inbox.recv_timeout(timeout).ok()
    }

    fn stats(&self) -> &NetStats {
        &self.stats
    }

    fn fault_stats(&self) -> Option<&FaultStats> {
        self.fault.as_deref().map(|f| f.stats(self.me))
    }
}
