//! Implementation of the `gthinker` command-line tool.
//!
//! Subcommands:
//!
//! ```text
//! gthinker gen   <ba|gnp|dataset> [opts] -o FILE    generate a graph
//! gthinker stats <FILE>                             print statistics
//! gthinker convert <IN> <OUT>                       convert formats
//! gthinker order <IN> <OUT>                         degeneracy relabel
//! gthinker graph build <IN> <OUT.gtc> [--order]     compressed build
//! gthinker graph stats <FILE>                       storage statistics
//! gthinker mcf   <FILE> [--workers N] [--compers N] [--tau N]
//! gthinker tc    <FILE> [--workers N] [--compers N] [--bundle N]
//! gthinker mc    <FILE> [--workers N] [--compers N]
//! gthinker qc    <FILE> --gamma G [--min N] [--max N] [...]
//! gthinker gm    <FILE> --pattern triangle:A,B,C|path:A,B,C [...]
//! ```
//!
//! File formats are chosen by extension: `.el` / `.txt` edge list,
//! `.adj` adjacency lines, `.bin` the binary format, `.bel` the binary
//! edge stream, `.gtc` the compressed memory-mapped format. Miners
//! given a `.gtc` file run directly off the mapping with lazy
//! per-vertex decode instead of loading the graph into RAM.

use gthinker_apps::{
    BundledTriangleApp, KPlexApp, MatchingApp, MaxCliqueApp, MaximalCliqueApp, Pattern,
    QuasiCliqueApp, TriangleApp, TriangleListApp,
};
use gthinker_core::prelude::*;
use gthinker_core::{
    run_worker_process_source_observed, run_worker_process_source_recovering_observed, ClusterRole,
    ClusterTelemetry, RecoveryOptions,
};
use gthinker_graph::compressed::{build_from_edge_stream, write_compressed, CompressedGraph};
use gthinker_graph::datasets::{self, DatasetKind};
use gthinker_graph::gen;
use gthinker_graph::graph::Graph;
use gthinker_graph::ids::{Label, VertexId, WorkerId};
use gthinker_graph::load;
use gthinker_graph::order::degeneracy_relabel;
use gthinker_graph::stats::GraphStats;
use gthinker_net::fault::CrashSchedule;
use gthinker_net::tcp::TcpBackend;
use gthinker_net::ClusterManifest;
use std::io::Write;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

/// A CLI failure with a user-facing message.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn err<T>(msg: impl Into<String>) -> Result<T, CliError> {
    Err(CliError(msg.into()))
}

/// Parsed global options shared by the mining subcommands.
#[derive(Debug, Clone)]
pub struct MineOpts {
    /// Simulated machines.
    pub workers: usize,
    /// Compers per machine.
    pub compers: usize,
    /// `--steal {on,off}`: cluster-wide work stealing (default on).
    pub steal: bool,
    /// `--compute-budget N`: yield long tasks after N extension steps.
    pub compute_budget: Option<u64>,
    /// `--report-interval S`: push periodic metrics snapshots to the
    /// master every S seconds (cluster live views; default final-only).
    pub report_interval: Option<Duration>,
    /// Observability exports requested via flags.
    pub metrics: MetricsOpts,
}

impl Default for MineOpts {
    fn default() -> Self {
        MineOpts {
            workers: 1,
            compers: 4,
            steal: true,
            compute_budget: None,
            report_interval: None,
            metrics: MetricsOpts::default(),
        }
    }
}

/// Observability flags shared by the mining subcommands.
#[derive(Debug, Clone, Default)]
pub struct MetricsOpts {
    /// `--metrics-json PATH`: write the full metrics snapshot as JSON.
    pub metrics_json: Option<String>,
    /// `--trace-out PATH`: write the scheduler/cache event timeline as
    /// Chrome `trace_event` JSON (chrome://tracing / Perfetto).
    pub trace_out: Option<String>,
    /// `--tail`: print the end-of-run tail-latency report even without
    /// the file exports.
    pub tail: bool,
}

impl MetricsOpts {
    fn wanted(&self) -> bool {
        self.tail || self.metrics_json.is_some() || self.trace_out.is_some()
    }
}

/// Event-ring capacity per worker when `--trace-out` is requested.
const TRACE_CAPACITY: usize = 65_536;

/// Reads a flag's value from an argument list.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, CliError> {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        if pos + 1 >= args.len() {
            return err(format!("{flag} requires a value"));
        }
        let value = args.remove(pos + 1);
        args.remove(pos);
        return Ok(Some(value));
    }
    Ok(None)
}

fn take_parsed<T: std::str::FromStr>(
    args: &mut Vec<String>,
    flag: &str,
) -> Result<Option<T>, CliError> {
    match take_flag(args, flag)? {
        None => Ok(None),
        Some(s) => s.parse().map(Some).map_err(|_| CliError(format!("bad value for {flag}: {s}"))),
    }
}

/// Removes a boolean switch from the argument list, reporting whether
/// it was present.
fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        args.remove(pos);
        true
    } else {
        false
    }
}

fn mine_opts(args: &mut Vec<String>) -> Result<MineOpts, CliError> {
    let mut o = MineOpts::default();
    if let Some(w) = take_parsed(args, "--workers")? {
        o.workers = w;
    }
    if let Some(c) = take_parsed(args, "--compers")? {
        o.compers = c;
    }
    if let Some(s) = take_flag(args, "--steal")? {
        o.steal = match s.as_str() {
            "on" => true,
            "off" => false,
            other => return err(format!("bad value for --steal: {other} (want on or off)")),
        };
    }
    if let Some(b) = take_parsed::<u64>(args, "--compute-budget")? {
        if b == 0 {
            return err("--compute-budget must be at least 1");
        }
        o.compute_budget = Some(b);
    }
    if let Some(s) = take_parsed::<f64>(args, "--report-interval")? {
        if !s.is_finite() || s <= 0.0 {
            return err("--report-interval must be a positive number of seconds");
        }
        o.report_interval = Some(Duration::from_secs_f64(s));
    }
    o.metrics.metrics_json = take_flag(args, "--metrics-json")?;
    o.metrics.trace_out = take_flag(args, "--trace-out")?;
    o.metrics.tail = take_switch(args, "--tail");
    Ok(o)
}

fn job_config(o: &MineOpts) -> JobConfig {
    let mut cfg = if o.workers <= 1 {
        JobConfig::single_machine(o.compers)
    } else {
        JobConfig::cluster(o.workers, o.compers)
    };
    cfg.work_stealing = o.steal;
    cfg.compute_budget = o.compute_budget;
    cfg.report_interval = o.report_interval;
    if o.metrics.trace_out.is_some() {
        cfg.trace_capacity = TRACE_CAPACITY;
    }
    cfg
}

/// Performs the `--metrics-json` / `--trace-out` exports and renders
/// the tail-latency report; the returned text is appended to the
/// subcommand's normal output.
fn export_metrics(m: &MetricsOpts, snap: &MetricsSnapshot) -> Result<String, CliError> {
    let mut extra = String::new();
    if let Some(path) = &m.metrics_json {
        std::fs::write(path, snap.to_json()).map_err(|e| CliError(format!("write {path}: {e}")))?;
        extra.push_str(&format!("\nmetrics JSON written to {path}"));
    }
    if let Some(path) = &m.trace_out {
        let f = std::fs::File::create(path).map_err(|e| CliError(format!("create {path}: {e}")))?;
        snap.write_chrome_trace(std::io::BufWriter::new(f))
            .map_err(|e| CliError(format!("write {path}: {e}")))?;
        extra.push_str(&format!(
            "\ntrace written to {path} (load in chrome://tracing or ui.perfetto.dev)"
        ));
    }
    if m.wanted() {
        extra.push('\n');
        extra.push_str(snap.tail_report().trim_end());
    }
    Ok(extra)
}

/// Loads a graph fully into RAM, picking the parser from the file
/// extension (`.gtc` files are decompressed — miners use
/// [`open_graph_input`] instead to stay on the mapping).
pub fn load_graph(path: &str) -> Result<Graph, CliError> {
    let p = Path::new(path);
    let by_ext = p.extension().and_then(|e| e.to_str()).unwrap_or("");
    if by_ext == "gtc" {
        let c = CompressedGraph::open(p).map_err(|e| CliError(format!("open {path}: {e}")))?;
        return Ok(c.to_graph());
    }
    if by_ext == "bel" {
        let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
        let mut max_id = 0u32;
        load::for_each_edge_file(p, &mut |u, v| {
            max_id = max_id.max(u.0).max(v.0);
            edges.push((u, v));
            Ok(())
        })
        .map_err(|e| CliError(format!("parse {path}: {e}")))?;
        let n = if edges.is_empty() { 0 } else { max_id as usize + 1 };
        return Ok(Graph::from_edges(n, &edges));
    }
    let file = std::fs::File::open(p).map_err(|e| CliError(format!("open {path}: {e}")))?;
    let g = match by_ext {
        "adj" => load::read_adjacency(file),
        "bin" => load::read_binary(file),
        _ => load::read_edge_list(file),
    }
    .map_err(|e| CliError(format!("parse {path}: {e}")))?;
    Ok(g)
}

/// Saves a graph, picking the writer from the file extension.
pub fn save_graph(g: &Graph, path: &str) -> Result<(), CliError> {
    let p = Path::new(path);
    let by_ext = p.extension().and_then(|e| e.to_str()).unwrap_or("");
    if by_ext == "gtc" {
        write_compressed(g, p).map_err(|e| CliError(format!("write {path}: {e}")))?;
        return Ok(());
    }
    if by_ext == "bel" {
        let mut w =
            load::EdgeFileWriter::create(p).map_err(|e| CliError(format!("create {path}: {e}")))?;
        for v in g.vertices() {
            for u in g.neighbors(v).iter().filter(|&u| v < u) {
                w.edge(v, u).map_err(|e| CliError(format!("write {path}: {e}")))?;
            }
        }
        w.finish().map_err(|e| CliError(format!("write {path}: {e}")))?;
        return Ok(());
    }
    let file = std::fs::File::create(p).map_err(|e| CliError(format!("create {path}: {e}")))?;
    match by_ext {
        "adj" => load::write_adjacency(g, file),
        "bin" => load::write_binary(g, file),
        _ => load::write_edge_list(g, file),
    }
    .map_err(|e| CliError(format!("write {path}: {e}")))
}

/// A graph opened for mining: fully in RAM, or memory-mapped compressed
/// with lazy per-vertex decode.
pub enum GraphInput {
    /// Loaded into an in-RAM [`Graph`].
    Ram(Graph),
    /// `.gtc` file, memory-mapped; adjacency decodes per lookup.
    Mapped(Arc<CompressedGraph>),
}

impl GraphInput {
    /// The [`GraphSource`] to hand to the job runner.
    pub fn source(&self) -> GraphSource<'_> {
        match self {
            GraphInput::Ram(g) => GraphSource::InMemory(g),
            GraphInput::Mapped(c) => GraphSource::Mapped(Arc::clone(c)),
        }
    }

    /// The full label table, if the graph is labeled.
    pub fn labels(&self) -> Option<Vec<Label>> {
        match self {
            GraphInput::Ram(g) => g.labels().map(<[Label]>::to_vec),
            GraphInput::Mapped(c) => c.labels(),
        }
    }
}

/// Opens a graph for mining: `.gtc` files are memory-mapped, everything
/// else loads into RAM.
pub fn open_graph_input(path: &str) -> Result<GraphInput, CliError> {
    let p = Path::new(path);
    if p.extension().is_some_and(|e| e == "gtc") {
        let c = CompressedGraph::open(p).map_err(|e| CliError(format!("open {path}: {e}")))?;
        Ok(GraphInput::Mapped(Arc::new(c)))
    } else {
        Ok(GraphInput::Ram(load_graph(path)?))
    }
}

/// Parses a pattern spec like `triangle:0,1,2` or `path:0,1,2`.
pub fn parse_pattern(spec: &str) -> Result<Pattern, CliError> {
    let (kind, labels) = spec
        .split_once(':')
        .ok_or_else(|| CliError(format!("bad pattern {spec}; want kind:l0,l1,l2")))?;
    let ls: Vec<Label> = labels
        .split(',')
        .map(|s| s.trim().parse::<u16>().map(Label))
        .collect::<Result<_, _>>()
        .map_err(|_| CliError(format!("bad pattern labels in {spec}")))?;
    match (kind, ls.as_slice()) {
        ("triangle", [a, b, c]) => Ok(Pattern::triangle(*a, *b, *c)),
        ("path", [a, b, c]) => Ok(Pattern::path3(*a, *b, *c)),
        ("star", [center, leaves @ ..]) if !leaves.is_empty() => {
            Ok(Pattern::star(*center, leaves))
        }
        ("clique4", [a, b, c, d]) => Ok(Pattern::clique4(*a, *b, *c, *d)),
        _ => err(format!(
            "unsupported pattern {spec}; try triangle:0,1,2, path:0,1,2, star:0,1,1,2 or clique4:0,1,2,3"
        )),
    }
}

/// Runs the CLI with the given arguments (without the program name).
/// Returns the text to print.
pub fn run(mut args: Vec<String>) -> Result<String, CliError> {
    if args.is_empty() {
        return err(USAGE);
    }
    let cmd = args.remove(0);
    match cmd.as_str() {
        "gen" => cmd_gen(args),
        "stats" => cmd_stats(args),
        "convert" => cmd_convert(args),
        "order" => cmd_order(args),
        "graph" => cmd_graph(args),
        "mcf" => cmd_mcf(args),
        "tc" => cmd_tc(args),
        "mc" => cmd_mc(args),
        "qc" => cmd_qc(args),
        "kp" => cmd_kp(args),
        "gm" => cmd_gm(args),
        "master" => cmd_cluster(true, args),
        "worker" => cmd_cluster(false, args),
        "supervise" => cmd_supervise(args),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => err(format!("unknown command {other}\n{USAGE}")),
    }
}

/// Usage text.
pub const USAGE: &str = "usage: gthinker <command> [options]
  gen <ba|gnp|youtube-s|skitter-s|orkut-s|btc-s|friendster-s> [-n N] [-m M] [-p P] [--seed S] [--labels K] [--scale F] [--stream] -o FILE
  stats <FILE>
  convert <IN> <OUT>
  order <IN> <OUT>                    relabel into degeneracy order
  graph build <IN> <OUT.gtc> [--order]  build the compressed mmap format
                                      (edge-list inputs stream in two
                                      passes; --order applies a
                                      degeneracy relabel first)
  graph stats <FILE>                  storage stats: |V|, |E|, degree
                                      p50/p95/max, plain vs compressed
                                      on-disk bytes
  mcf <FILE> [--workers N] [--compers N] [--tau T]
  tc  <FILE> [--workers N] [--compers N] [--bundle D] [--list DIR]
  mc  <FILE> [--workers N] [--compers N]
  qc  <FILE> --gamma G [--min N] [--max N] [--workers N] [--compers N]
  kp  <FILE> --k K [--min N] [--max N] [--workers N] [--compers N]
  gm  <FILE> --pattern triangle:0,1,2|path:..|star:..|clique4:.. [--workers N] [--compers N]
  master --hosts H0,H1,.. <mcf|tc|mc|qc|kp|gm> <FILE> [miner opts]
  worker --hosts H0,H1,.. --me I <mcf|tc|mc|qc|kp|gm> <FILE> [miner opts]
  supervise [--respawn-limit N] worker ..   respawn a dead worker with a
                                            bumped --generation

a multi-process cluster job runs one OS process per host:port in
--hosts; every process gets the same graph file and miner options, the
master is worker 0 and prints the result, each worker prints its own
byte counters. --connect-timeout SECS (default 30) bounds the
rendezvous. --net-backend {threaded,evented} picks the TCP data plane:
evented (default) runs one poll-loop I/O thread per process with pooled
frames and vectored writes; threaded is the legacy
thread-per-peer-per-direction plane. the master also accepts
live-telemetry flags:
  --status                  print a cluster progress line to stderr
                            every second (remaining tasks, idle
                            compers, steals in flight, bytes/sec)
  --telemetry-addr H:P      serve the live cluster snapshot at
                            http://H:P/ in Prometheus text exposition
                            format, scrapeable mid-run
the observability flags below work on cluster jobs too: on the master
they export the cluster-wide merged view (every worker's counters,
quantiles and trace spans on one clock-corrected timeline), on a worker
that process's own.

cluster processes also accept crash-recovery flags:
  --checkpoint-dir DIR      run the crash-surviving path: checkpoint
                            epochs under DIR (a directory every process
                            can reach), detect a dead peer via the TCP
                            mesh or heartbeat, abort survivors to the
                            last validated epoch and resume once the
                            replacement rejoins. give every process the
                            same DIR
  --checkpoint-interval S   seconds between checkpoint epochs (default 1)
  --max-recoveries N        recovery rounds tolerated before the job is
                            abandoned (default 8)
  --rejoin --generation G   (worker) identify as the respawned
                            replacement of a dead generation G-1 process;
                            supervise passes these automatically
  --die-after-msgs N        (worker, chaos) abort this process once its
                            own traffic reaches N messages
  --die-after-ms T          (worker, chaos) abort after T milliseconds

gen --stream writes the edges to -o FILE (text, or the .bel binary
edge stream) as they are generated, without building the graph in RAM —
use it with `graph build`, whose edge-list path also streams, to take a
10^8-edge synthetic graph to the compressed format at a flat memory
ceiling. miners and master/worker accept .gtc files directly and run
memory-mapped.

mining commands (standalone and under master/worker) also accept
scheduling knobs:
  --steal {on,off}      cluster-wide work stealing (default on)
  --compute-budget N    yield a long-running task back to the scheduler
                        after N extension steps so its remainder can be
                        split and stolen (default: run to completion)

and observability flags:
  --metrics-json PATH   write counters + latency quantiles as JSON
  --trace-out PATH      write the scheduler/cache event timeline as
                        Chrome trace_event JSON (chrome://tracing, Perfetto)
  --tail                print the per-comper tail-latency report
  --report-interval S   (cluster) push a metrics snapshot to the master
                        every S seconds; defaults to end-of-job only,
                        or 1s when --status/--telemetry-addr is given";

fn cmd_gen(mut args: Vec<String>) -> Result<String, CliError> {
    if args.is_empty() {
        return err("gen: missing generator kind");
    }
    let kind = args.remove(0);
    let out =
        take_flag(&mut args, "-o")?.ok_or_else(|| CliError("gen: -o FILE required".into()))?;
    let n: usize = take_parsed(&mut args, "-n")?.unwrap_or(10_000);
    let m: usize = take_parsed(&mut args, "-m")?.unwrap_or(5);
    let p: f64 = take_parsed(&mut args, "-p")?.unwrap_or(0.001);
    let seed: u64 = take_parsed(&mut args, "--seed")?.unwrap_or(1);
    let labels: u16 = take_parsed(&mut args, "--labels")?.unwrap_or(0);
    let scale: f64 = take_parsed(&mut args, "--scale")?.unwrap_or(1.0);
    if take_switch(&mut args, "--stream") {
        if labels > 0 {
            return err("gen: --stream does not support --labels");
        }
        let count = stream_gen(&kind, n, m, p, seed, &out)?;
        return Ok(format!("streamed {count} {kind} edges (n={n}) to {out}"));
    }
    let mut g = match kind.as_str() {
        "ba" => gen::barabasi_albert(n, m, seed),
        "gnp" => gen::gnp(n, p, seed),
        name => {
            let k = DatasetKind::ALL
                .iter()
                .copied()
                .find(|k| k.name() == name)
                .ok_or_else(|| CliError(format!("gen: unknown kind {name}")))?;
            datasets::generate(k, scale).graph
        }
    };
    if labels > 0 {
        g = gen::random_labels(g, labels, seed ^ 0x1abe1);
    }
    save_graph(&g, &out)?;
    Ok(format!("wrote {} vertices / {} edges to {out}", g.num_vertices(), g.num_edges()))
}

/// `gen --stream`: writes edges to disk as the generator emits them,
/// never materializing the edge list (let alone the graph) in RAM.
fn stream_gen(
    kind: &str,
    n: usize,
    m: usize,
    p: f64,
    seed: u64,
    out: &str,
) -> Result<u64, CliError> {
    let path = Path::new(out);
    let wrap = |e: std::io::Error| CliError(format!("write {out}: {e}"));
    let run = |sink: &mut dyn FnMut(VertexId, VertexId) -> std::io::Result<()>| match kind {
        "ba" => gen::stream_barabasi_albert(n, m, seed, sink),
        "gnp" => gen::stream_gnp(n, p, seed, sink),
        other => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("gen --stream: unsupported kind {other} (want ba or gnp)"),
        )),
    };
    if path.extension().is_some_and(|e| e == "bel") {
        let mut w = load::EdgeFileWriter::create(path).map_err(wrap)?;
        run(&mut |u, v| w.edge(u, v)).map_err(wrap)?;
        w.finish().map_err(wrap)
    } else {
        let mut w = std::io::BufWriter::new(std::fs::File::create(path).map_err(wrap)?);
        let count = run(&mut |u, v| writeln!(w, "{} {}", u.0, v.0)).map_err(wrap)?;
        w.flush().map_err(wrap)?;
        Ok(count)
    }
}

/// `.bin` on-disk size of a graph with `n` vertices and `m` undirected
/// edges: magic + n + flag + per-vertex degree words + both directions
/// of every edge (+ the label table when labeled).
fn plain_binary_bytes(n: u64, m: u64, labeled: bool) -> u64 {
    8 + 8 + 1 + n * 4 + 2 * m * 4 + if labeled { n * 2 } else { 0 }
}

/// `gthinker graph <build|stats>`: the compressed storage toolchain.
fn cmd_graph(mut args: Vec<String>) -> Result<String, CliError> {
    if args.is_empty() {
        return err("graph: missing subcommand (build|stats)");
    }
    let sub = args.remove(0);
    match sub.as_str() {
        "build" => cmd_graph_build(args),
        "stats" => cmd_graph_stats(args),
        other => err(format!("graph: unknown subcommand {other} (want build or stats)")),
    }
}

fn cmd_graph_build(mut args: Vec<String>) -> Result<String, CliError> {
    let order = take_switch(&mut args, "--order");
    let [input, output] = args.as_slice() else {
        return err("graph build: want IN OUT.gtc [--order]");
    };
    let in_path = Path::new(input);
    let out_path = Path::new(output);
    let by_ext = in_path.extension().and_then(|e| e.to_str()).unwrap_or("");
    let edge_stream = matches!(by_ext, "el" | "txt" | "bel");
    let (stats, note) = if order {
        // A degeneracy relabel needs the whole graph; small-graph path.
        let g = load_graph(input)?;
        let (relabeled, d) = degeneracy_relabel(&g);
        let s = write_compressed(&relabeled, out_path)
            .map_err(|e| CliError(format!("write {output}: {e}")))?;
        (s, format!(" (degeneracy {d})"))
    } else if edge_stream {
        // Two streaming passes over the edge file; the peak resident
        // state is the degree/offset arrays, never the edge list.
        let s = build_from_edge_stream(out_path, 0, None, |sink| {
            load::for_each_edge_file(in_path, sink).map(|_| ()).map_err(std::io::Error::from)
        })
        .map_err(|e| CliError(format!("graph build: {e}")))?;
        (s, String::new())
    } else {
        let g = load_graph(input)?;
        let s =
            write_compressed(&g, out_path).map_err(|e| CliError(format!("write {output}: {e}")))?;
        (s, String::new())
    };
    let plain = plain_binary_bytes(stats.num_vertices, stats.num_edges, stats.labeled);
    Ok(format!(
        "compressed {} vertices / {} edges into {output}{note}\n\
         {} bytes on disk ({:.2} bytes/edge), {:.2}x smaller than plain binary ({plain} bytes)",
        stats.num_vertices,
        stats.num_edges,
        stats.file_bytes,
        stats.bytes_per_edge(),
        plain as f64 / stats.file_bytes as f64,
    ))
}

fn cmd_graph_stats(args: Vec<String>) -> Result<String, CliError> {
    let path = args.first().ok_or_else(|| CliError("graph stats: missing FILE".into()))?;
    let p = Path::new(path);
    // Degree stats come straight from the degree sequence: on a .gtc
    // file each degree reads one varint, no adjacency is decoded.
    let (s, labeled, compressed_bytes) = if p.extension().is_some_and(|e| e == "gtc") {
        let c = CompressedGraph::open(p).map_err(|e| CliError(format!("open {path}: {e}")))?;
        let s = GraphStats::from_degrees(c.degrees());
        (s, c.is_labeled(), Some(c.file_bytes()))
    } else {
        let g = load_graph(path)?;
        (GraphStats::of(&g), g.is_labeled(), None)
    };
    let plain = plain_binary_bytes(s.num_vertices as u64, s.num_edges as u64, labeled);
    let compressed = match compressed_bytes {
        Some(b) => format!("{b} (this file)"),
        None => {
            // Estimate by encoding for real into a scratch file.
            let g = load_graph(path)?;
            let tmp =
                std::env::temp_dir().join(format!("gthinker-stats-{}.gtc", std::process::id()));
            let st = write_compressed(&g, &tmp)
                .map_err(|e| CliError(format!("graph stats: encode: {e}")))?;
            let _ = std::fs::remove_file(&tmp);
            format!("{} (if built with graph build)", st.file_bytes)
        }
    };
    Ok(format!(
        "vertices            {}\nedges               {}\ndegree p50/p95/max  {}/{}/{}\n\
         labeled             {labeled}\nplain binary bytes  {plain}\ncompressed bytes    {compressed}",
        s.num_vertices, s.num_edges, s.degree_p50, s.degree_p95, s.max_degree,
    ))
}

fn cmd_stats(args: Vec<String>) -> Result<String, CliError> {
    let path = args.first().ok_or_else(|| CliError("stats: missing FILE".into()))?;
    let g = load_graph(path)?;
    let s = GraphStats::of(&g);
    Ok(format!(
        "vertices      {}\nedges         {}\nmax degree    {}\navg degree    {:.2}\n\
         p50/p90/p99   {}/{}/{}\nisolated      {}\nlabeled       {}",
        s.num_vertices,
        s.num_edges,
        s.max_degree,
        s.avg_degree,
        s.degree_p50,
        s.degree_p90,
        s.degree_p99,
        s.isolated,
        g.is_labeled()
    ))
}

fn cmd_convert(args: Vec<String>) -> Result<String, CliError> {
    let [input, output] = args.as_slice() else {
        return err("convert: want IN OUT");
    };
    let g = load_graph(input)?;
    save_graph(&g, output)?;
    Ok(format!("converted {input} -> {output}"))
}

fn cmd_order(args: Vec<String>) -> Result<String, CliError> {
    let [input, output] = args.as_slice() else {
        return err("order: want IN OUT");
    };
    let g = load_graph(input)?;
    let (relabeled, d) = degeneracy_relabel(&g);
    save_graph(&relabeled, output)?;
    Ok(format!("degeneracy {d}; wrote reordered graph to {output}"))
}

fn cmd_mcf(mut args: Vec<String>) -> Result<String, CliError> {
    let opts = mine_opts(&mut args)?;
    let tau: usize = take_parsed(&mut args, "--tau")?.unwrap_or(40_000);
    let path = args.first().ok_or_else(|| CliError("mcf: missing FILE".into()))?;
    let input = open_graph_input(path)?;
    let r = run_job_on(Arc::new(MaxCliqueApp::with_tau(tau)), input.source(), &job_config(&opts))
        .map_err(|e| CliError(format!("job failed: {e}")))?;
    let extra = export_metrics(&opts.metrics, &r.metrics)?;
    Ok(format!(
        "maximum clique: {} vertices in {:.2?}\nmembers: {:?}{extra}",
        r.global.len(),
        r.elapsed,
        r.global
    ))
}

fn cmd_tc(mut args: Vec<String>) -> Result<String, CliError> {
    let opts = mine_opts(&mut args)?;
    let bundle: usize = take_parsed(&mut args, "--bundle")?.unwrap_or(0);
    let list_dir = take_flag(&mut args, "--list")?;
    let path = args.first().ok_or_else(|| CliError("tc: missing FILE".into()))?;
    let input = open_graph_input(path)?;
    let mut cfg = job_config(&opts);
    if let Some(dir) = list_dir {
        // Enumeration mode: stream every triangle to part files.
        cfg.output_dir = Some(dir.clone().into());
        let r = run_job_on(Arc::new(TriangleListApp), input.source(), &cfg)
            .map_err(|e| CliError(format!("job failed: {e}")))?;
        let emitted: u64 = r.workers.iter().map(|w| w.output_records).sum();
        let extra = export_metrics(&opts.metrics, &r.metrics)?;
        return Ok(format!(
            "triangles: {} in {:.2?}; {emitted} records written under {dir}{extra}",
            r.global, r.elapsed
        ));
    }
    let (count, elapsed, tasks, metrics) = if bundle > 0 {
        let r = run_job_on(Arc::new(BundledTriangleApp::new(bundle)), input.source(), &cfg)
            .map_err(|e| CliError(format!("job failed: {e}")))?;
        (r.global, r.elapsed, r.total_tasks(), r.metrics)
    } else {
        let r = run_job_on(Arc::new(TriangleApp), input.source(), &cfg)
            .map_err(|e| CliError(format!("job failed: {e}")))?;
        (r.global, r.elapsed, r.total_tasks(), r.metrics)
    };
    let extra = export_metrics(&opts.metrics, &metrics)?;
    Ok(format!("triangles: {count} in {elapsed:.2?} ({tasks} tasks){extra}"))
}

fn cmd_mc(mut args: Vec<String>) -> Result<String, CliError> {
    let opts = mine_opts(&mut args)?;
    let path = args.first().ok_or_else(|| CliError("mc: missing FILE".into()))?;
    let input = open_graph_input(path)?;
    let r = run_job_on(Arc::new(MaximalCliqueApp), input.source(), &job_config(&opts))
        .map_err(|e| CliError(format!("job failed: {e}")))?;
    let extra = export_metrics(&opts.metrics, &r.metrics)?;
    Ok(format!("maximal cliques: {} in {:.2?}{extra}", r.global, r.elapsed))
}

fn cmd_qc(mut args: Vec<String>) -> Result<String, CliError> {
    let opts = mine_opts(&mut args)?;
    let gamma: f64 = take_parsed(&mut args, "--gamma")?
        .ok_or_else(|| CliError("qc: --gamma required".into()))?;
    let min: usize = take_parsed(&mut args, "--min")?.unwrap_or(3);
    let max: usize = take_parsed(&mut args, "--max")?.unwrap_or(5);
    let path = args.first().ok_or_else(|| CliError("qc: missing FILE".into()))?;
    let input = open_graph_input(path)?;
    let r = run_job_on(
        Arc::new(QuasiCliqueApp::new(gamma, min, max)),
        input.source(),
        &job_config(&opts),
    )
    .map_err(|e| CliError(format!("job failed: {e}")))?;
    let extra = export_metrics(&opts.metrics, &r.metrics)?;
    Ok(format!(
        "γ={gamma} quasi-cliques of size {min}..{max}: {} in {:.2?}{extra}",
        r.global, r.elapsed
    ))
}

fn cmd_kp(mut args: Vec<String>) -> Result<String, CliError> {
    let opts = mine_opts(&mut args)?;
    let k: usize =
        take_parsed(&mut args, "--k")?.ok_or_else(|| CliError("kp: --k required".into()))?;
    let min: usize = take_parsed(&mut args, "--min")?.unwrap_or((2 * k).saturating_sub(1).max(2));
    let max: usize = take_parsed(&mut args, "--max")?.unwrap_or(min + 2);
    let path = args.first().ok_or_else(|| CliError("kp: missing FILE".into()))?;
    let input = open_graph_input(path)?;
    let r = run_job_on(Arc::new(KPlexApp::new(k, min, max)), input.source(), &job_config(&opts))
        .map_err(|e| CliError(format!("job failed: {e}")))?;
    let extra = export_metrics(&opts.metrics, &r.metrics)?;
    Ok(format!(
        "connected {k}-plexes of size {min}..{max}: {} in {:.2?}{extra}",
        r.global, r.elapsed
    ))
}

fn cmd_gm(mut args: Vec<String>) -> Result<String, CliError> {
    let opts = mine_opts(&mut args)?;
    let spec = take_flag(&mut args, "--pattern")?
        .ok_or_else(|| CliError("gm: --pattern required".into()))?;
    let pattern = parse_pattern(&spec)?;
    let path = args.first().ok_or_else(|| CliError("gm: missing FILE".into()))?;
    let input = open_graph_input(path)?;
    let labels = input
        .labels()
        .ok_or_else(|| CliError("gm: the data graph must be labeled (gen --labels K)".into()))?;
    let r =
        run_job_on(Arc::new(MatchingApp::new(pattern, labels)), input.source(), &job_config(&opts))
            .map_err(|e| CliError(format!("job failed: {e}")))?;
    let extra = export_metrics(&opts.metrics, &r.metrics)?;
    Ok(format!("embeddings of {spec}: {} in {:.2?}{extra}", r.global, r.elapsed))
}

/// The global result type `App` `A` produces.
type GlobalOf<A> = <<A as App>::Agg as Aggregator>::Global;

/// Where this process sits in the multi-process cluster, plus the
/// telemetry it was asked to surface.
struct ClusterSeat {
    manifest: ClusterManifest,
    me: WorkerId,
    timeout: Duration,
    /// `--status`: print a cluster progress line to stderr every second
    /// (master only; workers have no cluster view).
    status: bool,
    /// `--telemetry-addr HOST:PORT`: serve the live cluster snapshot in
    /// Prometheus text exposition format (master only).
    telemetry_addr: Option<String>,
    /// Observability exports: cluster-wide on the master, this
    /// process's own on a worker.
    metrics: MetricsOpts,
    /// `--checkpoint-dir` was given: run the crash-surviving cluster
    /// path (periodic checkpoints, abort-to-checkpoint on peer death,
    /// rejoin rendezvous) with these options.
    recovery: Option<RecoveryOptions>,
}

/// `--status`: a detached thread that prints a cluster progress line to
/// stderr every second, built from whatever reports have arrived.
fn spawn_status_thread(telemetry: Arc<ClusterTelemetry>) {
    std::thread::spawn(move || {
        let mut prev: Option<(std::time::Instant, Vec<u64>)> = None;
        loop {
            std::thread::sleep(Duration::from_secs(1));
            let snap = telemetry.cluster_snapshot();
            let now = std::time::Instant::now();
            let bytes: Vec<u64> =
                snap.workers.iter().map(|w| w.net_bytes_sent + w.net_bytes_received).collect();
            let rates: Vec<String> = snap
                .workers
                .iter()
                .enumerate()
                .map(|(i, _)| {
                    let rate = match &prev {
                        Some((t, old)) => {
                            let dt = now.duration_since(*t).as_secs_f64();
                            let delta = bytes[i].saturating_sub(old.get(i).copied().unwrap_or(0));
                            if dt > 0.0 {
                                (delta as f64 / dt) as u64
                            } else {
                                0
                            }
                        }
                        None => 0,
                    };
                    format!("w{i} {rate} B/s")
                })
                .collect();
            let remaining: u64 = snap.workers.iter().map(|w| w.remaining).sum();
            let idle: u64 = snap.workers.iter().map(|w| w.idle_compers).sum();
            let inflight: u64 = snap.workers.iter().map(|w| w.steal_inflight).sum();
            // Recovery counts are per-process views of one shared fact;
            // the max (the master's, once it reports) is authoritative.
            let recoveries: u64 = snap.workers.iter().map(|w| w.recoveries).max().unwrap_or(0);
            let peer_downs: u64 = snap.workers.iter().map(|w| w.peer_down_events).sum();
            let recovery = if recoveries > 0 || peer_downs > 0 {
                format!(" | recoveries {recoveries} | peer-downs {peer_downs}")
            } else {
                String::new()
            };
            eprintln!(
                "[status +{:.1}s] {}/{} reporting | remaining {remaining} | idle compers {idle} | steals in flight {inflight}{recovery} | {}",
                snap.elapsed.as_secs_f64(),
                telemetry.reported(),
                telemetry.num_workers(),
                rates.join(", "),
            );
            prev = Some((now, bytes));
        }
    });
}

/// Answers one scrape: drains the request (any `GET` gets the metrics)
/// and writes the current cluster snapshot as Prometheus text.
fn serve_scrape(
    stream: &mut std::net::TcpStream,
    telemetry: &ClusterTelemetry,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    let mut buf = [0u8; 1024];
    let _ = std::io::Read::read(stream, &mut buf);
    let body = telemetry.cluster_snapshot().prometheus_text();
    let header = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())
}

/// `--telemetry-addr`: binds a tiny hand-rolled HTTP responder (one
/// short-lived connection per scrape, no keep-alive, no dependencies)
/// exposing the live cluster snapshot for Prometheus & friends.
fn spawn_telemetry_endpoint(addr: &str, telemetry: Arc<ClusterTelemetry>) {
    let listener = match std::net::TcpListener::bind(addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("telemetry endpoint: bind {addr}: {e}");
            return;
        }
    };
    eprintln!("telemetry endpoint listening on http://{addr}/metrics");
    std::thread::spawn(move || {
        for conn in listener.incoming() {
            let Ok(mut stream) = conn else { continue };
            let _ = serve_scrape(&mut stream, &telemetry);
        }
    });
}

/// Runs this process's share of a cluster job and renders the outcome:
/// the master (worker 0) prints the job result via `render` plus its
/// own byte counters, every other worker prints just its counters.
/// Metrics exports work on both: the master exports the cluster-wide
/// merged snapshot, a worker its own.
fn run_cluster<A: App>(
    app: A,
    input: &GraphInput,
    cfg: &JobConfig,
    seat: &ClusterSeat,
    render: impl FnOnce(&JobResult<GlobalOf<A>>) -> String,
) -> Result<String, CliError> {
    let status = seat.status;
    let addr = seat.telemetry_addr.clone();
    let on_telemetry = move |telemetry: Arc<ClusterTelemetry>| {
        if status {
            spawn_status_thread(Arc::clone(&telemetry));
        }
        if let Some(addr) = addr {
            spawn_telemetry_endpoint(&addr, telemetry);
        }
    };
    let (role, recovery) = match seat.recovery {
        Some(opts) => run_worker_process_source_recovering_observed(
            Arc::new(app),
            input.source(),
            cfg,
            &seat.manifest,
            seat.me,
            seat.timeout,
            opts,
            on_telemetry,
        )
        .map(|(role, report)| (role, Some(report)))
        .map_err(|e| CliError(format!("cluster job failed: {e}")))?,
        None => run_worker_process_source_observed(
            Arc::new(app),
            input.source(),
            cfg,
            &seat.manifest,
            seat.me,
            seat.timeout,
            on_telemetry,
        )
        .map(|role| (role, None))
        .map_err(|e| CliError(format!("cluster job failed: {e}")))?,
    };
    let recovery_line = recovery.map_or(String::new(), |r| {
        format!(
            "\nrecovery: {} recoveries, {} checkpoints, failed workers {:?}",
            r.recoveries,
            r.checkpoints,
            r.failed_workers.iter().map(|w| w.index()).collect::<Vec<_>>()
        )
    });
    Ok(match role {
        ClusterRole::Master(r) => {
            let extra = export_metrics(&seat.metrics, &r.metrics)?;
            let w = &r.workers[0];
            format!(
                "{}\nworker 0 (master): sent {} bytes, received {} bytes{recovery_line}{extra}",
                render(&r),
                w.net_bytes_sent,
                w.net_bytes_received
            )
        }
        ClusterRole::Worker(w, snap) => {
            let extra = export_metrics(&seat.metrics, &snap)?;
            format!(
                "worker {} done: sent {} bytes, received {} bytes{recovery_line}{extra}",
                seat.me.index(),
                w.net_bytes_sent,
                w.net_bytes_received
            )
        }
    })
}

/// `gthinker master …` / `gthinker worker …`: one OS process of a
/// multi-process TCP cluster job. Every process must be launched with
/// the same `--hosts` list, graph file and miner options.
fn cmd_cluster(is_master: bool, mut args: Vec<String>) -> Result<String, CliError> {
    let role = if is_master { "master" } else { "worker" };
    let hosts = take_flag(&mut args, "--hosts")?
        .ok_or_else(|| CliError(format!("{role}: --hosts HOST:PORT,HOST:PORT,.. required")))?;
    let manifest = ClusterManifest::parse(&hosts)
        .map_err(|e| CliError(format!("{role}: bad --hosts: {e}")))?;
    let me = if is_master {
        if let Some(i) = take_parsed::<usize>(&mut args, "--me")? {
            if i != 0 {
                return err("master: the master is always worker 0; drop --me");
            }
        }
        0
    } else {
        let i: usize = take_parsed(&mut args, "--me")?
            .ok_or_else(|| CliError("worker: --me INDEX required".into()))?;
        if i == 0 {
            return err("worker: index 0 is the master; run `gthinker master` there");
        }
        i
    };
    if me >= manifest.num_workers() {
        return err(format!("{role}: --me {me} out of range for {} hosts", manifest.num_workers()));
    }
    let timeout =
        Duration::from_secs(take_parsed(&mut args, "--connect-timeout")?.unwrap_or(30u64));
    let status = take_switch(&mut args, "--status");
    let telemetry_addr = take_flag(&mut args, "--telemetry-addr")?;

    // Crash recovery: --checkpoint-dir switches the process onto the
    // recovering cluster path; the rest tune it.
    let checkpoint_dir = take_flag(&mut args, "--checkpoint-dir")?;
    let checkpoint_interval: Option<f64> = take_parsed(&mut args, "--checkpoint-interval")?;
    if let Some(s) = checkpoint_interval {
        if !s.is_finite() || s <= 0.0 {
            return err("--checkpoint-interval must be a positive number of seconds");
        }
    }
    let max_recoveries: u32 = take_parsed(&mut args, "--max-recoveries")?.unwrap_or(8);
    let generation: u32 = take_parsed(&mut args, "--generation")?.unwrap_or(0);
    let rejoin = take_switch(&mut args, "--rejoin");
    if rejoin && generation == 0 {
        return err(format!("{role}: --rejoin requires --generation N with N >= 1"));
    }
    if generation > 0 && checkpoint_dir.is_none() {
        return err(format!("{role}: --generation only makes sense with --checkpoint-dir"));
    }
    // Deterministic process chaos: self-abort once this process's own
    // traffic crosses a mark, standing in for an external kill.
    let die_after_msgs: Option<u64> = take_parsed(&mut args, "--die-after-msgs")?;
    let die_after_ms: Option<u64> = take_parsed(&mut args, "--die-after-ms")?;
    if (die_after_msgs.is_some() || die_after_ms.is_some()) && is_master {
        return err(
            "master: --die-after-* targets a worker; the master hosts the failure detector",
        );
    }
    let net_backend = match take_flag(&mut args, "--net-backend")? {
        Some(s) => s.parse::<TcpBackend>().map_err(CliError)?,
        None => TcpBackend::default(),
    };

    let mut opts = mine_opts(&mut args)?;
    // The live views need periodic reports; default them on when a view
    // was requested without an explicit interval.
    if (status || telemetry_addr.is_some()) && opts.report_interval.is_none() {
        opts.report_interval = Some(Duration::from_secs(1));
    }
    // The cluster size comes from --hosts; --workers is meaningless here.
    opts.workers = manifest.num_workers();
    let mut cfg = job_config(&opts);
    if let Some(dir) = &checkpoint_dir {
        cfg.checkpoint_dir = Some(dir.into());
        cfg.checkpoint_interval = Some(Duration::from_secs_f64(checkpoint_interval.unwrap_or(1.0)));
    }
    if die_after_msgs.is_some() || die_after_ms.is_some() {
        cfg.fault.crash = Some(CrashSchedule {
            worker: WorkerId(me as u16),
            after_messages: die_after_msgs,
            after: die_after_ms.map(Duration::from_millis),
        });
    }
    cfg.net_backend = net_backend;
    let seat = ClusterSeat {
        manifest,
        me: WorkerId(me as u16),
        timeout,
        status,
        telemetry_addr,
        metrics: opts.metrics.clone(),
        recovery: checkpoint_dir
            .is_some()
            .then_some(RecoveryOptions { max_recoveries, generation }),
    };

    if args.is_empty() {
        return err(format!("{role}: missing miner subcommand (mcf|tc|mc|qc|kp|gm)"));
    }
    let miner = args.remove(0);
    match miner.as_str() {
        "mcf" => {
            let tau: usize = take_parsed(&mut args, "--tau")?.unwrap_or(40_000);
            let path = args.first().ok_or_else(|| CliError(format!("{role} mcf: missing FILE")))?;
            let input = open_graph_input(path)?;
            run_cluster(MaxCliqueApp::with_tau(tau), &input, &cfg, &seat, |r| {
                format!(
                    "maximum clique: {} vertices in {:.2?}\nmembers: {:?}",
                    r.global.len(),
                    r.elapsed,
                    r.global
                )
            })
        }
        "tc" => {
            let bundle: usize = take_parsed(&mut args, "--bundle")?.unwrap_or(0);
            let path = args.first().ok_or_else(|| CliError(format!("{role} tc: missing FILE")))?;
            let input = open_graph_input(path)?;
            let render =
                |r: &JobResult<u64>| format!("triangles: {} in {:.2?}", r.global, r.elapsed);
            if bundle > 0 {
                run_cluster(BundledTriangleApp::new(bundle), &input, &cfg, &seat, render)
            } else {
                run_cluster(TriangleApp, &input, &cfg, &seat, render)
            }
        }
        "mc" => {
            let path = args.first().ok_or_else(|| CliError(format!("{role} mc: missing FILE")))?;
            let input = open_graph_input(path)?;
            run_cluster(MaximalCliqueApp, &input, &cfg, &seat, |r| {
                format!("maximal cliques: {} in {:.2?}", r.global, r.elapsed)
            })
        }
        "qc" => {
            let gamma: f64 = take_parsed(&mut args, "--gamma")?
                .ok_or_else(|| CliError(format!("{role} qc: --gamma required")))?;
            let min: usize = take_parsed(&mut args, "--min")?.unwrap_or(3);
            let max: usize = take_parsed(&mut args, "--max")?.unwrap_or(5);
            let path = args.first().ok_or_else(|| CliError(format!("{role} qc: missing FILE")))?;
            let input = open_graph_input(path)?;
            run_cluster(QuasiCliqueApp::new(gamma, min, max), &input, &cfg, &seat, move |r| {
                format!(
                    "γ={gamma} quasi-cliques of size {min}..{max}: {} in {:.2?}",
                    r.global, r.elapsed
                )
            })
        }
        "kp" => {
            let k: usize = take_parsed(&mut args, "--k")?
                .ok_or_else(|| CliError(format!("{role} kp: --k required")))?;
            let min: usize =
                take_parsed(&mut args, "--min")?.unwrap_or((2 * k).saturating_sub(1).max(2));
            let max: usize = take_parsed(&mut args, "--max")?.unwrap_or(min + 2);
            let path = args.first().ok_or_else(|| CliError(format!("{role} kp: missing FILE")))?;
            let input = open_graph_input(path)?;
            run_cluster(KPlexApp::new(k, min, max), &input, &cfg, &seat, move |r| {
                format!(
                    "connected {k}-plexes of size {min}..{max}: {} in {:.2?}",
                    r.global, r.elapsed
                )
            })
        }
        "gm" => {
            let spec = take_flag(&mut args, "--pattern")?
                .ok_or_else(|| CliError(format!("{role} gm: --pattern required")))?;
            let pattern = parse_pattern(&spec)?;
            let path = args.first().ok_or_else(|| CliError(format!("{role} gm: missing FILE")))?;
            let input = open_graph_input(path)?;
            let labels = input.labels().ok_or_else(|| {
                CliError(format!("{role} gm: the data graph must be labeled (gen --labels K)"))
            })?;
            run_cluster(MatchingApp::new(pattern, labels), &input, &cfg, &seat, move |r| {
                format!("embeddings of {spec}: {} in {:.2?}", r.global, r.elapsed)
            })
        }
        other => err(format!("{role}: unknown miner {other} (want mcf|tc|mc|qc|kp|gm)")),
    }
}

/// The argument list a supervised worker is respawned with: the crash
/// flags (`--die-after-*`) are stripped so the scheduled death does not
/// re-fire, any previous rejoin markers are dropped, and
/// `--rejoin --generation G` is appended so the replacement's hellos
/// supersede the dead generation's sockets at every surviving peer.
fn respawn_args(args: &[String], generation: u32) -> Vec<String> {
    let mut out = Vec::with_capacity(args.len() + 3);
    let mut skip_value = false;
    for a in args {
        if skip_value {
            skip_value = false;
            continue;
        }
        match a.as_str() {
            "--die-after-msgs" | "--die-after-ms" | "--generation" => skip_value = true,
            "--rejoin" => {}
            _ => out.push(a.clone()),
        }
    }
    out.push("--rejoin".into());
    out.push("--generation".into());
    out.push(generation.to_string());
    out
}

/// `gthinker supervise [--respawn-limit N] worker …`: runs the wrapped
/// `worker` invocation as a child process (stdio inherited) and, when
/// the child dies abnormally, respawns it with a bumped `--generation`
/// so it rejoins the surviving mesh and the cluster resumes from the
/// last validated checkpoint. A clean exit (status 0) ends supervision.
fn cmd_supervise(mut args: Vec<String>) -> Result<String, CliError> {
    let limit: u32 = take_parsed(&mut args, "--respawn-limit")?.unwrap_or(4);
    if args.first().map(String::as_str) != Some("worker") {
        return err("supervise: want `supervise [--respawn-limit N] worker --hosts .. --me I ..`");
    }
    let exe = std::env::current_exe()
        .map_err(|e| CliError(format!("supervise: cannot find own executable: {e}")))?;
    // Respawn generations continue from wherever the first launch
    // started (a supervisor can itself be restarted mid-job).
    let mut generation: u32 = args
        .iter()
        .position(|a| a == "--generation")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let mut respawns = 0u32;
    loop {
        let status = std::process::Command::new(&exe)
            .args(&args)
            .status()
            .map_err(|e| CliError(format!("supervise: spawn worker: {e}")))?;
        if status.success() {
            return Ok(format!("supervise: worker exited cleanly after {respawns} respawn(s)"));
        }
        respawns += 1;
        if respawns > limit {
            return err(format!(
                "supervise: worker kept dying ({status}); gave up after {limit} respawn(s)"
            ));
        }
        generation += 1;
        eprintln!("supervise: worker died ({status}); respawning as generation {generation}");
        args = respawn_args(&args, generation);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("gthinker-cli-{}-{name}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn gen_stats_convert_round_trip() {
        let el = tmp("g1.el");
        let out =
            run(args(&["gen", "ba", "-n", "500", "-m", "3", "--seed", "7", "-o", &el])).unwrap();
        assert!(out.contains("500 vertices"), "{out}");
        let stats = run(args(&["stats", &el])).unwrap();
        assert!(stats.contains("vertices      500"), "{stats}");
        let bin = tmp("g1.bin");
        run(args(&["convert", &el, &bin])).unwrap();
        let stats2 = run(args(&["stats", &bin])).unwrap();
        assert_eq!(stats, stats2);
    }

    #[test]
    fn mining_commands_agree_with_library() {
        let el = tmp("g2.el");
        run(args(&["gen", "gnp", "-n", "60", "-p", "0.2", "--seed", "3", "-o", &el])).unwrap();
        let g = load_graph(&el).unwrap();
        let expected = gthinker_apps::serial::triangle::count_triangles(&g);
        let out = run(args(&["tc", &el, "--compers", "2"])).unwrap();
        assert!(out.contains(&format!("triangles: {expected}")), "{out}");
        let bundled = run(args(&["tc", &el, "--compers", "2", "--bundle", "8"])).unwrap();
        assert!(bundled.contains(&format!("triangles: {expected}")), "{bundled}");
        let mcf = run(args(&["mcf", &el, "--compers", "2"])).unwrap();
        assert!(mcf.contains("maximum clique:"), "{mcf}");
        let mc = run(args(&["mc", &el])).unwrap();
        assert!(mc.contains("maximal cliques:"), "{mc}");
        let qc = run(args(&["qc", &el, "--gamma", "0.6", "--min", "3", "--max", "4"])).unwrap();
        assert!(qc.contains("quasi-cliques"), "{qc}");
        let kp = run(args(&["kp", &el, "--k", "2", "--min", "3", "--max", "4"])).unwrap();
        assert!(kp.contains("2-plexes"), "{kp}");
    }

    #[test]
    fn tc_list_mode_writes_records() {
        let el = tmp("g6.el");
        run(args(&["gen", "gnp", "-n", "40", "-p", "0.25", "--seed", "8", "-o", &el])).unwrap();
        let dir = tmp("g6-out");
        let out = run(args(&["tc", &el, "--list", &dir])).unwrap();
        assert!(out.contains("records written"), "{out}");
        let records = gthinker_core::output::read_all_records(std::path::Path::new(&dir)).unwrap();
        let g = load_graph(&el).unwrap();
        let expected = gthinker_apps::serial::triangle::count_triangles(&g);
        assert_eq!(records.len() as u64, expected);
    }

    #[test]
    fn gm_requires_labels_and_works_with_them() {
        let el = tmp("g3.adj");
        run(args(&["gen", "gnp", "-n", "40", "-p", "0.2", "--seed", "5", "-o", &el])).unwrap();
        assert!(run(args(&["gm", &el, "--pattern", "triangle:0,0,0"])).is_err());
        let labeled = tmp("g3l.adj");
        run(args(&[
            "gen", "gnp", "-n", "40", "-p", "0.2", "--seed", "5", "--labels", "2", "-o", &labeled,
        ]))
        .unwrap();
        let out = run(args(&["gm", &labeled, "--pattern", "triangle:0,1,1"])).unwrap();
        assert!(out.contains("embeddings"), "{out}");
    }

    #[test]
    fn order_reduces_forward_degree() {
        let el = tmp("g4.el");
        run(args(&["gen", "ba", "-n", "2000", "-m", "4", "--seed", "2", "-o", &el])).unwrap();
        let ordered = tmp("g4o.el");
        let out = run(args(&["order", &el, &ordered])).unwrap();
        assert!(out.contains("degeneracy"), "{out}");
        let g = load_graph(&el).unwrap();
        let r = load_graph(&ordered).unwrap();
        use gthinker_graph::order::max_forward_degree;
        assert!(max_forward_degree(&r) < max_forward_degree(&g));
        assert_eq!(g.num_edges(), r.num_edges());
    }

    #[test]
    fn metrics_flags_export_files() {
        let el = tmp("g7.el");
        run(args(&["gen", "gnp", "-n", "50", "-p", "0.2", "--seed", "4", "-o", &el])).unwrap();
        let json = tmp("g7-metrics.json");
        let trace = tmp("g7-trace.json");
        let out = run(args(&[
            "mcf",
            &el,
            "--compers",
            "2",
            "--metrics-json",
            &json,
            "--trace-out",
            &trace,
        ]))
        .unwrap();
        assert!(out.contains("metrics JSON written"), "{out}");
        assert!(out.contains("trace written"), "{out}");
        assert!(out.contains("task latency tail"), "{out}");
        let j = std::fs::read_to_string(&json).unwrap();
        for key in ["\"workers\"", "\"compers\"", "\"p50_ns\"", "\"p99_ns\"", "\"cache\""] {
            assert!(j.contains(key), "metrics JSON missing {key}: {j}");
        }
        let t = std::fs::read_to_string(&trace).unwrap();
        assert!(t.trim_start().starts_with('['), "not a JSON array: {t}");
        assert!(t.contains("\"ph\""), "no trace events/metadata: {t}");
        // --tail alone prints the report without writing files.
        let tail = run(args(&["tc", &el, "--compers", "2", "--tail"])).unwrap();
        assert!(tail.contains("task latency tail"), "{tail}");
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(run(vec![]).is_err());
        assert!(run(args(&["bogus"])).unwrap_err().0.contains("unknown command"));
        assert!(run(args(&["gen", "ba"])).unwrap_err().0.contains("-o FILE"));
        assert!(run(args(&["stats", "/no/such/file.el"])).is_err());
        assert!(parse_pattern("wheel:1,2,3").is_err());
        assert!(parse_pattern("star:1").is_err(), "star needs a leaf");
        assert!(parse_pattern("triangle:a,b,c").is_err());
        assert!(parse_pattern("triangle:1,2").is_err());
    }

    #[test]
    fn steal_and_budget_flags_validate() {
        let e = run(args(&["tc", "g.el", "--steal", "sideways"])).unwrap_err();
        assert!(e.0.contains("--steal"), "{e}");
        assert!(e.0.contains("on or off"), "{e}");
        let e = run(args(&["mcf", "g.el", "--steal"])).unwrap_err();
        assert!(e.0.contains("requires a value"), "{e}");
        let e = run(args(&["mc", "g.el", "--compute-budget", "0"])).unwrap_err();
        assert!(e.0.contains("at least 1"), "{e}");
        let e = run(args(&["tc", "g.el", "--compute-budget", "many"])).unwrap_err();
        assert!(e.0.contains("bad value for --compute-budget"), "{e}");

        let mut a = args(&["--steal", "off", "--compute-budget", "3", "--workers", "2"]);
        let o = mine_opts(&mut a).unwrap();
        assert!(a.is_empty(), "all flags consumed: {a:?}");
        assert!(!o.steal);
        assert_eq!(o.compute_budget, Some(3));
        let cfg = job_config(&o);
        assert!(!cfg.work_stealing);
        assert_eq!(cfg.compute_budget, Some(3));
        // Defaults: stealing on, no budget.
        let cfg = job_config(&MineOpts::default());
        assert!(cfg.work_stealing);
        assert_eq!(cfg.compute_budget, None);
    }

    #[test]
    fn steal_and_budget_flags_do_not_change_results() {
        let el = tmp("g8.el");
        run(args(&["gen", "gnp", "-n", "60", "-p", "0.2", "--seed", "9", "-o", &el])).unwrap();
        let g = load_graph(&el).unwrap();
        let expected = gthinker_apps::serial::triangle::count_triangles(&g);
        for extra in [&["--steal", "off"][..], &["--compute-budget", "2"][..]] {
            let mut a = args(&["tc", &el, "--workers", "2", "--compers", "2"]);
            a.extend(extra.iter().map(|s| s.to_string()));
            let out = run(a).unwrap();
            assert!(out.contains(&format!("triangles: {expected}")), "{extra:?}: {out}");
        }
    }

    #[test]
    fn report_interval_flag_validates() {
        for bad in ["0", "-1", "nan", "soon"] {
            let e = run(args(&["tc", "g.el", "--report-interval", bad])).unwrap_err();
            assert!(e.0.contains("--report-interval"), "{bad}: {e}");
        }
        let mut a = args(&["--report-interval", "0.5"]);
        let o = mine_opts(&mut a).unwrap();
        assert!(a.is_empty(), "flag consumed: {a:?}");
        assert_eq!(o.report_interval, Some(Duration::from_millis(500)));
        assert_eq!(job_config(&o).report_interval, Some(Duration::from_millis(500)));
        // Default: final-only reports.
        assert_eq!(job_config(&MineOpts::default()).report_interval, None);
    }

    #[test]
    fn net_backend_flag_validates() {
        // An unknown backend is rejected at parse time, before any
        // sockets are dialed.
        let e = run(args(&[
            "worker",
            "--hosts",
            "127.0.0.1:19031,127.0.0.1:19032",
            "--me",
            "1",
            "--net-backend",
            "fibers",
            "tc",
            "g.el",
        ]))
        .unwrap_err();
        assert!(e.0.contains("net backend"), "{e}");
        // Both real backends parse; evented is the default.
        assert_eq!("threaded".parse::<TcpBackend>(), Ok(TcpBackend::Threaded));
        assert_eq!("evented".parse::<TcpBackend>(), Ok(TcpBackend::Evented));
        assert_eq!(TcpBackend::default(), TcpBackend::Evented);
        assert_eq!(job_config(&MineOpts::default()).net_backend, TcpBackend::Evented);
    }

    #[test]
    fn recovery_flags_validate() {
        // --rejoin without a generation is meaningless.
        let e = run(args(&[
            "worker",
            "--hosts",
            "127.0.0.1:19001,127.0.0.1:19002",
            "--me",
            "1",
            "--rejoin",
            "tc",
            "g.el",
        ]))
        .unwrap_err();
        assert!(e.0.contains("--generation"), "{e}");
        // --generation without the recovery path has nothing to rejoin.
        let e = run(args(&[
            "worker",
            "--hosts",
            "127.0.0.1:19001,127.0.0.1:19002",
            "--me",
            "1",
            "--generation",
            "2",
            "tc",
            "g.el",
        ]))
        .unwrap_err();
        assert!(e.0.contains("--checkpoint-dir"), "{e}");
        // The master hosts the failure detector; it cannot be the chaos victim.
        let e = run(args(&[
            "master",
            "--hosts",
            "127.0.0.1:19001,127.0.0.1:19002",
            "--die-after-msgs",
            "5",
            "tc",
            "g.el",
        ]))
        .unwrap_err();
        assert!(e.0.contains("--die-after"), "{e}");
        for bad in ["0", "-2", "nan"] {
            let e = run(args(&[
                "master",
                "--hosts",
                "127.0.0.1:19001,127.0.0.1:19002",
                "--checkpoint-dir",
                "/tmp/x",
                "--checkpoint-interval",
                bad,
                "tc",
                "g.el",
            ]))
            .unwrap_err();
            assert!(e.0.contains("--checkpoint-interval"), "{bad}: {e}");
        }
    }

    #[test]
    fn supervise_respawn_args_strip_crash_flags() {
        let a = args(&[
            "worker",
            "--hosts",
            "127.0.0.1:19001,127.0.0.1:19002",
            "--me",
            "1",
            "--checkpoint-dir",
            "/tmp/ck",
            "--die-after-msgs",
            "40",
            "--die-after-ms",
            "200",
            "tc",
            "g.el",
        ]);
        let r = respawn_args(&a, 1);
        assert!(!r.iter().any(|x| x.starts_with("--die-after")), "{r:?}");
        assert!(!r.contains(&"40".to_string()) && !r.contains(&"200".to_string()), "{r:?}");
        assert!(r.contains(&"--rejoin".to_string()));
        let gen_pos = r.iter().position(|x| x == "--generation").unwrap();
        assert_eq!(r[gen_pos + 1], "1");
        // A second respawn replaces the old generation instead of stacking.
        let r2 = respawn_args(&r, 2);
        assert_eq!(r2.iter().filter(|x| *x == "--generation").count(), 1);
        assert_eq!(r2.iter().filter(|x| *x == "--rejoin").count(), 1);
        let gen_pos = r2.iter().position(|x| x == "--generation").unwrap();
        assert_eq!(r2[gen_pos + 1], "2");
        // The job-defining args survive untouched.
        for keep in [
            "worker",
            "--hosts",
            "127.0.0.1:19001,127.0.0.1:19002",
            "--me",
            "1",
            "--checkpoint-dir",
            "tc",
            "g.el",
        ] {
            assert!(r2.contains(&keep.to_string()), "lost {keep}: {r2:?}");
        }
        // supervise rejects anything that is not a worker invocation.
        assert!(run(args(&["supervise", "master", "--hosts", "a:1"])).is_err());
        assert!(run(args(&["supervise"])).is_err());
    }

    #[test]
    fn pattern_parsing() {
        let p = parse_pattern("triangle:0,1,2").unwrap();
        assert_eq!(p.num_vertices(), 3);
        let p = parse_pattern("path:2,0,2").unwrap();
        assert_eq!(p.anchor_radius(), 2);
    }

    #[test]
    fn dataset_standins_generate() {
        let el = tmp("g5.bin");
        let out = run(args(&["gen", "youtube-s", "--scale", "0.05", "-o", &el])).unwrap();
        assert!(out.contains("vertices"), "{out}");
    }

    #[test]
    fn stream_gen_matches_in_memory_gen() {
        for (ext, kind) in [("el", "ba"), ("bel", "gnp")] {
            let ram = tmp(&format!("g9-{kind}.{ext}"));
            let streamed = tmp(&format!("g9s-{kind}.{ext}"));
            let base = ["gen", kind, "-n", "300", "-m", "3", "-p", "0.05", "--seed", "11", "-o"];
            let mut a = args(&base);
            a.push(ram.clone());
            run(a).unwrap();
            let mut a = args(&base);
            a.push(streamed.clone());
            a.push("--stream".into());
            let out = run(a).unwrap();
            assert!(out.contains("streamed"), "{out}");
            let g = load_graph(&ram).unwrap();
            let s = load_graph(&streamed).unwrap();
            assert_eq!(g.num_vertices(), s.num_vertices(), "{kind}");
            assert_eq!(g.num_edges(), s.num_edges(), "{kind}");
            for v in g.vertices() {
                assert_eq!(g.neighbors(v), s.neighbors(v), "{kind} vertex {v:?}");
            }
        }
        let e = run(args(&[
            "gen", "gnp", "-n", "10", "-p", "0.5", "--labels", "2", "--stream", "-o", "x.el",
        ]))
        .unwrap_err();
        assert!(e.0.contains("--labels"), "{e}");
    }

    #[test]
    fn graph_build_and_stats_round_trip() {
        let el = tmp("g10.el");
        run(args(&["gen", "ba", "-n", "400", "-m", "4", "--seed", "13", "-o", &el])).unwrap();
        let gtc = tmp("g10.gtc");
        let out = run(args(&["graph", "build", &el, &gtc])).unwrap();
        assert!(out.contains("compressed 400 vertices"), "{out}");
        assert!(out.contains("smaller than plain binary"), "{out}");
        // The mapped file decodes back to the identical graph.
        let g = load_graph(&el).unwrap();
        let c = load_graph(&gtc).unwrap();
        assert_eq!(g.num_edges(), c.num_edges());
        for v in g.vertices() {
            assert_eq!(g.neighbors(v), c.neighbors(v));
        }
        // stats reads the compressed file without decoding adjacency.
        let stats = run(args(&["graph", "stats", &gtc])).unwrap();
        assert!(stats.contains("vertices            400"), "{stats}");
        assert!(stats.contains("degree p50/p95/max"), "{stats}");
        // ... and estimates compressed size for plain files.
        let stats2 = run(args(&["graph", "stats", &el])).unwrap();
        assert!(stats2.contains("if built with graph build"), "{stats2}");
        // --order relabels before encoding.
        let ordered = tmp("g10o.gtc");
        let out = run(args(&["graph", "build", &el, &ordered, "--order"])).unwrap();
        assert!(out.contains("degeneracy"), "{out}");
        assert_eq!(load_graph(&ordered).unwrap().num_edges(), g.num_edges());
    }

    #[test]
    fn graph_build_preserves_labels() {
        let adj = tmp("g11.adj");
        run(args(&[
            "gen", "gnp", "-n", "60", "-p", "0.15", "--seed", "17", "--labels", "3", "-o", &adj,
        ]))
        .unwrap();
        let gtc = tmp("g11.gtc");
        run(args(&["graph", "build", &adj, &gtc])).unwrap();
        let g = load_graph(&adj).unwrap();
        let c = load_graph(&gtc).unwrap();
        assert_eq!(g.labels().unwrap(), c.labels().unwrap());
    }

    #[test]
    fn miners_on_mapped_graph_match_ram_results() {
        let el = tmp("g12.el");
        run(args(&["gen", "gnp", "-n", "80", "-p", "0.15", "--seed", "19", "-o", &el])).unwrap();
        let gtc = tmp("g12.gtc");
        run(args(&["graph", "build", &el, &gtc])).unwrap();
        let g = load_graph(&el).unwrap();
        let expected = gthinker_apps::serial::triangle::count_triangles(&g);
        let out = run(args(&["tc", &gtc, "--workers", "2", "--compers", "2"])).unwrap();
        assert!(out.contains(&format!("triangles: {expected}")), "{out}");
        // The max-clique SIZE is deterministic; the witness is whichever
        // optimum a comper reported first, so compare sizes only.
        let ram = run(args(&["mcf", &el, "--compers", "2"])).unwrap();
        let mapped = run(args(&["mcf", &gtc, "--compers", "2"])).unwrap();
        let size = |s: &str| s.lines().next().unwrap().split(" in ").next().unwrap().to_string();
        assert_eq!(size(&ram), size(&mapped), "{ram}\n{mapped}");
    }

    #[test]
    fn graph_subcommand_errors() {
        assert!(run(args(&["graph"])).unwrap_err().0.contains("build|stats"));
        assert!(run(args(&["graph", "shrink"])).unwrap_err().0.contains("unknown subcommand"));
        assert!(run(args(&["graph", "build", "only-one-arg"])).is_err());
        assert!(run(args(&["graph", "stats"])).unwrap_err().0.contains("missing FILE"));
        assert!(run(args(&["graph", "stats", "/no/such.gtc"])).is_err());
    }
}
