//! Real-process chaos: a 3-OS-process TCP cluster in which worker 1 is
//! killed for real (`--die-after-msgs` aborts the process mid-syscall,
//! standing in for `kill -9`), respawned by `gthinker supervise` with a
//! bumped `--generation`, rejoins the surviving mesh and resumes from
//! the last validated checkpoint — and the master must print exactly
//! the fault-free result.
//!
//! Two miners die at different logical points: triangle counting is
//! pull-dominated (the kill lands mid vertex-pull), maximum-clique
//! finding on a hub-skewed graph drives master-brokered stealing (the
//! kill lands amid steal traffic). Nothing here sleeps to detect
//! failure: the cluster's own TCP peer-down events and deadlines drive
//! recovery, and the tests bound the whole scenario with a watchdog.

use std::net::TcpListener;
use std::process::{Command, Stdio};
use std::sync::mpsc;
use std::time::Duration;

const BIN: &str = env!("CARGO_BIN_EXE_gthinker");

/// Generous bound on one whole kill/respawn/resume scenario; the jobs
/// themselves finish in seconds even in debug builds.
const WATCHDOG: Duration = Duration::from_secs(240);

/// Reserves `n` free loopback ports (bind-then-drop, same small race as
/// the tcp_cluster suite accepts).
fn free_hosts(n: usize) -> String {
    let listeners: Vec<TcpListener> =
        (0..n).map(|_| TcpListener::bind("127.0.0.1:0").expect("bind")).collect();
    let hosts: Vec<String> =
        listeners.iter().map(|l| format!("127.0.0.1:{}", l.local_addr().unwrap().port())).collect();
    hosts.join(",")
}

fn run_ok(args: &[&str]) -> String {
    let out = Command::new(BIN).args(args).output().expect("spawn gthinker");
    assert!(
        out.status.success(),
        "gthinker {:?} failed:\nstdout: {}\nstderr: {}",
        args,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 output")
}

/// The first line of a mining report: the result, stripped of timing.
fn result_prefix(out: &str) -> String {
    let line = out.lines().next().expect("nonempty output");
    line.split(" in ").next().expect("result line").to_string()
}

/// The master's `recovery: N recoveries, ...` count.
fn recoveries(out: &str) -> u64 {
    let line = out
        .lines()
        .find(|l| l.starts_with("recovery: "))
        .unwrap_or_else(|| panic!("no recovery line in:\n{out}"));
    line.split_whitespace().nth(1).unwrap().parse().expect("recovery count")
}

/// Runs `f` on its own thread and panics if it outlives the watchdog.
fn with_watchdog<T: Send + 'static>(label: &str, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    let handle = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(WATCHDOG) {
        Ok(v) => {
            handle.join().unwrap();
            v
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            // The scenario thread died without sending: re-raise its panic.
            handle.join().unwrap();
            unreachable!("scenario thread disconnected without panicking ({label})")
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("process-chaos scenario hung past {WATCHDOG:?} ({label})")
        }
    }
}

/// Outputs of one chaos cluster run: the master's stdout, the
/// supervisor wrapping the doomed worker 1, and plain worker 2.
struct ChaosRun {
    master: String,
    supervisor: String,
    worker2: String,
}

/// Launches the 3-process cluster with recovery enabled: worker 2 is a
/// plain recovering worker, worker 1 runs under `supervise` with a
/// scheduled self-abort after `die_after_msgs` of its own messages, the
/// master coordinates checkpoints and the recovery rendezvous.
fn run_chaos_cluster(hosts: &str, ck_dir: &str, die_after_msgs: u64, miner: &[&str]) -> ChaosRun {
    let recovery = ["--checkpoint-dir", ck_dir, "--checkpoint-interval", "0.25"];
    let die = die_after_msgs.to_string();

    let mut w2_args = vec!["worker", "--hosts", hosts, "--me", "2"];
    w2_args.extend_from_slice(&recovery);
    w2_args.extend_from_slice(miner);
    let worker2 = Command::new(BIN)
        .args(&w2_args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn worker 2");

    let mut sup_args =
        vec!["supervise", "--respawn-limit", "3", "worker", "--hosts", hosts, "--me", "1"];
    sup_args.extend_from_slice(&recovery);
    sup_args.extend_from_slice(&["--die-after-msgs", &die]);
    sup_args.extend_from_slice(miner);
    let supervisor = Command::new(BIN)
        .args(&sup_args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn supervisor");

    let mut master_args =
        vec!["master", "--hosts", hosts, "--max-recoveries", "8", "--connect-timeout", "60"];
    master_args.extend_from_slice(&recovery);
    master_args.extend_from_slice(miner);
    let master = run_ok(&master_args);

    let drain = |child: std::process::Child, who: &str| {
        let out = child.wait_with_output().expect("child exit");
        assert!(
            out.status.success(),
            "{who} failed:\nstdout: {}\nstderr: {}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).expect("utf8")
    };
    let supervisor = drain(supervisor, "supervisor");
    let worker2 = drain(worker2, "worker 2");
    ChaosRun { master, supervisor, worker2 }
}

/// Asserts the chaos run actually exercised kill → respawn → rejoin →
/// resume, not just a lucky fault-free pass.
fn assert_recovered(run: &ChaosRun) {
    assert!(
        recoveries(&run.master) >= 1,
        "the scheduled kill must trigger at least one recovery:\n{}",
        run.master
    );
    let sup_line = run
        .supervisor
        .lines()
        .find(|l| l.starts_with("supervise: worker exited cleanly after"))
        .unwrap_or_else(|| panic!("no supervise summary in:\n{}", run.supervisor));
    let n: u32 = sup_line.split_whitespace().nth(5).unwrap().parse().expect("respawn count");
    assert!(n >= 1, "the supervisor must have respawned the dead worker: {sup_line}");
    assert!(
        recoveries(&run.worker2) >= 1,
        "the surviving worker must have seen the abort-to-checkpoint round:\n{}",
        run.worker2
    );
}

#[test]
fn triangle_count_survives_a_real_process_kill_mid_pull() {
    let (reference, chaos) = with_watchdog("tc", || {
        let tmp = std::env::temp_dir().join(format!("gthinker-chaos-tc-{}", std::process::id()));
        std::fs::create_dir_all(&tmp).expect("mkdir");
        let graph = tmp.join("g.el").to_str().unwrap().to_string();
        run_ok(&["gen", "gnp", "-n", "700", "-p", "0.04", "--seed", "13", "-o", &graph]);
        let reference = run_ok(&["tc", &graph, "--workers", "3", "--compers", "2"]);

        let hosts = free_hosts(3);
        let ck = tmp.join("ck").to_str().unwrap().to_string();
        // Triangle counting is pull-dominated, and pulls are batched —
        // a worker's whole run is a few dozen messages. 20 of worker
        // 1's own messages lands the abort inside the pull phase.
        let chaos = run_chaos_cluster(&hosts, &ck, 20, &["tc", &graph, "--compers", "2"]);
        let _ = std::fs::remove_dir_all(&tmp);
        (reference, chaos)
    });
    assert_eq!(
        result_prefix(&chaos.master),
        result_prefix(&reference),
        "the recovered cluster must print exactly the fault-free triangle count\n\
         master:\n{}\nreference:\n{reference}",
        chaos.master
    );
    assert_recovered(&chaos);
}

#[test]
fn max_clique_survives_a_real_process_kill_mid_steal() {
    let (reference, chaos) = with_watchdog("mcf", || {
        let tmp = std::env::temp_dir().join(format!("gthinker-chaos-mcf-{}", std::process::id()));
        std::fs::create_dir_all(&tmp).expect("mkdir");
        let graph = tmp.join("g.el").to_str().unwrap().to_string();
        // A hub-skewed graph: the hub owner's task queue dwarfs the
        // others', forcing master-brokered cluster steals.
        run_ok(&["gen", "ba", "-n", "800", "-m", "5", "--seed", "31", "-o", &graph]);
        let reference = run_ok(&["mcf", &graph, "--workers", "3", "--compers", "2"]);

        let hosts = free_hosts(3);
        let ck = tmp.join("ck").to_str().unwrap().to_string();
        // The mark must land inside the build-independent pull/steal
        // phase: timer-driven traffic (syncs, reports) inflates debug
        // message counts, so a higher mark that is mid-job in debug
        // can fire after termination in release.
        let chaos = run_chaos_cluster(&hosts, &ck, 20, &["mcf", &graph, "--compers", "2"]);
        let _ = std::fs::remove_dir_all(&tmp);
        (reference, chaos)
    });
    // The maximum-clique SIZE is deterministic (the witness may be any
    // optimum); the first line carries only the size.
    assert_eq!(
        result_prefix(&chaos.master),
        result_prefix(&reference),
        "the recovered cluster must print exactly the fault-free clique size\n\
         master:\n{}\nreference:\n{reference}",
        chaos.master
    );
    assert_recovered(&chaos);
}

/// Stale-generation rejection end to end: a worker that claims an
/// already-superseded generation must be refused cleanly at the CLI
/// layer (flag validation), not poison a mesh.
#[test]
fn rejoin_flags_are_validated_end_to_end() {
    let out = Command::new(BIN)
        .args(["worker", "--hosts", "127.0.0.1:9000,127.0.0.1:9001", "--me", "1", "--rejoin"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--generation"), "--rejoin alone must name the missing flag: {err}");
}
