//! End-to-end multi-process cluster test: three real `gthinker` OS
//! processes on 127.0.0.1, speaking the framed TCP protocol, must
//! report exactly the result of the in-process run — and must have
//! actually moved bytes across the sockets.

use std::net::TcpListener;
use std::process::{Command, Stdio};

const BIN: &str = env!("CARGO_BIN_EXE_gthinker");

/// Reserves `n` free loopback ports. The listeners are dropped before
/// the cluster starts, so a tiny race with other port users exists —
/// acceptable for CI, where nothing else binds ephemeral ports.
fn free_hosts(n: usize) -> String {
    let listeners: Vec<TcpListener> =
        (0..n).map(|_| TcpListener::bind("127.0.0.1:0").expect("bind")).collect();
    let hosts: Vec<String> =
        listeners.iter().map(|l| format!("127.0.0.1:{}", l.local_addr().unwrap().port())).collect();
    hosts.join(",")
}

fn run_ok(args: &[&str]) -> String {
    let out = Command::new(BIN).args(args).output().expect("spawn gthinker");
    assert!(
        out.status.success(),
        "gthinker {:?} failed:\nstdout: {}\nstderr: {}",
        args,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 output")
}

/// Launches a 3-process cluster for `miner_args` and returns the
/// master's stdout plus both workers' stdout.
fn run_cluster(hosts: &str, miner_args: &[&str]) -> (String, Vec<String>) {
    let workers: Vec<_> = ["1", "2"]
        .iter()
        .map(|me| {
            let mut args = vec!["worker", "--hosts", hosts, "--me", me];
            args.extend_from_slice(miner_args);
            Command::new(BIN)
                .args(&args)
                .stdout(Stdio::piped())
                .stderr(Stdio::piped())
                .spawn()
                .expect("spawn worker")
        })
        .collect();
    let mut master_args = vec!["master", "--hosts", hosts];
    master_args.extend_from_slice(miner_args);
    let master_out = run_ok(&master_args);
    let worker_outs: Vec<String> = workers
        .into_iter()
        .map(|w| {
            let out = w.wait_with_output().expect("worker exit");
            assert!(
                out.status.success(),
                "worker failed:\nstdout: {}\nstderr: {}",
                String::from_utf8_lossy(&out.stdout),
                String::from_utf8_lossy(&out.stderr)
            );
            String::from_utf8(out.stdout).expect("utf8")
        })
        .collect();
    (master_out, worker_outs)
}

/// The first line of a mining report: the result, stripped of timing.
fn result_prefix(out: &str) -> String {
    let line = out.lines().next().expect("nonempty output");
    line.split(" in ").next().expect("result line").to_string()
}

/// Extracts "sent N bytes" from a worker/master byte-counter line.
fn sent_bytes(out: &str) -> u64 {
    let line = out.lines().find(|l| l.contains("sent ")).expect("byte counter line");
    let after = line.split("sent ").nth(1).expect("sent field");
    after.split(' ').next().unwrap().parse().expect("byte count")
}

#[test]
fn three_process_cluster_matches_in_process_run() {
    let graph = std::env::temp_dir().join(format!("gthinker-e2e-{}.el", std::process::id()));
    let graph = graph.to_str().unwrap().to_string();
    run_ok(&["gen", "gnp", "-n", "300", "-p", "0.06", "--seed", "13", "-o", &graph]);

    // Triangle counting.
    let local = run_ok(&["tc", &graph, "--workers", "3", "--compers", "2"]);
    let hosts = free_hosts(3);
    let (master, workers) = run_cluster(&hosts, &["tc", &graph, "--compers", "2"]);
    assert_eq!(
        result_prefix(&master),
        result_prefix(&local),
        "TCP cluster and in-process run disagree on the triangle count"
    );
    assert!(sent_bytes(&master) > 0, "master sent no bytes: {master}");
    for w in &workers {
        assert!(sent_bytes(w) > 0, "a worker sent no bytes: {w}");
    }

    // Maximum clique finding (different message mix: aggregator syncs
    // carry the growing best clique, tau splits large tasks).
    let local = run_ok(&["mcf", &graph, "--workers", "3", "--compers", "2"]);
    let hosts = free_hosts(3);
    let (master, _workers) = run_cluster(&hosts, &["mcf", &graph, "--compers", "2"]);
    assert_eq!(
        result_prefix(&master),
        result_prefix(&local),
        "TCP cluster and in-process run disagree on the maximum clique"
    );

    let _ = std::fs::remove_file(&graph);
}

/// `--metrics-json` / `--trace-out` on cluster processes: the master's
/// exports cover the whole cluster (every worker's counters and trace
/// spans), a worker's cover its own process.
#[test]
#[cfg(feature = "metrics")]
fn cluster_metrics_exports_cover_all_workers() {
    let tmp = |name: &str| {
        std::env::temp_dir()
            .join(format!("gthinker-e2e-metrics-{}-{name}", std::process::id()))
            .to_str()
            .unwrap()
            .to_string()
    };
    let graph = tmp("g.el");
    run_ok(&["gen", "gnp", "-n", "300", "-p", "0.06", "--seed", "29", "-o", &graph]);
    let hosts = free_hosts(3);
    let master_json = tmp("master.json");
    let master_trace = tmp("master-trace.json");
    let worker_jsons = [tmp("w1.json"), tmp("w2.json")];
    let worker_traces = [tmp("w1-trace.json"), tmp("w2-trace.json")];

    let workers: Vec<_> = ["1", "2"]
        .iter()
        .enumerate()
        .map(|(i, me)| {
            Command::new(BIN)
                .args([
                    "worker",
                    "--hosts",
                    &hosts,
                    "--me",
                    me,
                    "tc",
                    &graph,
                    "--compers",
                    "2",
                    "--metrics-json",
                    &worker_jsons[i],
                    "--trace-out",
                    &worker_traces[i],
                ])
                .stdout(Stdio::piped())
                .stderr(Stdio::piped())
                .spawn()
                .expect("spawn worker")
        })
        .collect();
    let master_out = run_ok(&[
        "master",
        "--hosts",
        &hosts,
        "tc",
        &graph,
        "--compers",
        "2",
        "--report-interval",
        "0.05",
        "--metrics-json",
        &master_json,
        "--trace-out",
        &master_trace,
        "--tail",
    ]);
    for w in workers {
        let out = w.wait_with_output().expect("worker exit");
        assert!(out.status.success(), "worker: {}", String::from_utf8_lossy(&out.stderr));
    }

    assert!(master_out.contains("metrics JSON written"), "{master_out}");
    assert!(master_out.contains("task latency tail"), "{master_out}");

    // The master's JSON holds one entry per cluster worker; counting a
    // per-worker key is a dependency-free proxy for array length.
    let j = std::fs::read_to_string(&master_json).expect("master metrics json");
    assert_eq!(j.matches("\"compute_calls\"").count(), 3, "want 3 workers in {j}");
    assert!(j.contains("\"trace_events_dropped\""), "{j}");
    assert!(j.contains("\"clock_offset_nanos\""), "{j}");

    // The merged trace carries all three processes' rows, with real
    // spans (not just metadata) shipped over from the remote workers.
    let t = std::fs::read_to_string(&master_trace).expect("master trace");
    assert!(t.trim_start().starts_with('['), "not a JSON array: {t}");
    for pid in 0..3 {
        assert!(t.contains(&format!("\"name\":\"worker-{pid}\"")), "missing worker {pid}: {t}");
        let spans =
            t.lines().any(|l| l.contains("\"ph\":\"X\"") && l.contains(&format!("\"pid\":{pid},")));
        assert!(spans, "no spans from worker {pid} in the merged trace");
    }

    // Each worker exported its own single-process view.
    for path in &worker_jsons {
        let j = std::fs::read_to_string(path).expect("worker metrics json");
        assert_eq!(j.matches("\"compute_calls\"").count(), 1, "worker view is its own: {j}");
    }

    let mut cleanup = vec![graph, master_json, master_trace];
    cleanup.extend(worker_jsons);
    cleanup.extend(worker_traces);
    for f in &cleanup {
        let _ = std::fs::remove_file(f);
    }
}

#[test]
fn cluster_flag_validation() {
    let out = Command::new(BIN).args(["worker", "--hosts", "127.0.0.1:1"]).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--me"), "worker without --me should name the flag: {err}");

    let out = Command::new(BIN)
        .args(["master", "--hosts", "not a host list", "tc", "x.el"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--hosts"), "bad hosts should be named: {err}");

    let out = Command::new(BIN)
        .args(["worker", "--hosts", "127.0.0.1:9000,127.0.0.1:9001", "--me", "5", "tc", "x.el"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("out of range"), "out-of-range --me should say so: {err}");
}
