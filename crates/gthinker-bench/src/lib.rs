//! Shared harness utilities for the benchmark binaries that regenerate
//! the paper's tables and figures.
//!
//! Each table/figure has a dedicated binary under `src/bin/`; see
//! `EXPERIMENTS.md` at the workspace root for the experiment index and
//! the recorded paper-vs-measured comparison.
//!
//! **Host note.** The evaluation machine for this reproduction may have
//! a single CPU core, where wall-clock time cannot decrease with
//! thread count. The scalability harnesses therefore report, next to
//! measured wall-clock, a **modeled parallel time**: the maximum over
//! workers of that worker's total `compute()` CPU time divided by its
//! comper count. On a host with at least as many cores as compers —
//! and given G-thinker's claim that communication hides inside
//! computation — modeled time converges to wall-clock; on a smaller
//! host it still measures the quantity the paper's speedup tables
//! demonstrate, namely how evenly the scheduler divides mining work.

use gthinker_core::config::JobResult;
use std::time::Duration;

/// Formats a duration compactly (`1.23 s`, `45.6 ms`).
pub fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 100.0 {
        format!("{s:.0} s")
    } else if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.1} ms", s * 1e3)
    } else {
        format!("{:.0} µs", s * 1e6)
    }
}

/// Formats a byte count (`3.5 GB`, `120 MB`, `4.2 KB`).
pub fn fmt_bytes(b: u64) -> String {
    const KB: f64 = 1024.0;
    let b = b as f64;
    if b >= KB * KB * KB {
        format!("{:.2} GB", b / (KB * KB * KB))
    } else if b >= KB * KB {
        format!("{:.1} MB", b / (KB * KB))
    } else if b >= KB {
        format!("{:.1} KB", b / KB)
    } else {
        format!("{b:.0} B")
    }
}

/// Modeled parallel wall-clock (see the crate docs): max over workers
/// of `compute_time / compers`.
pub fn modeled_parallel_time<G>(result: &JobResult<G>, compers_per_worker: usize) -> Duration {
    result
        .workers
        .iter()
        .map(|w| w.compute_time / compers_per_worker.max(1) as u32)
        .max()
        .unwrap_or(Duration::ZERO)
}

/// Load-balance ratio: busiest worker's compute time over the mean
/// (1.0 = perfectly even).
pub fn load_balance<G>(result: &JobResult<G>) -> f64 {
    let times: Vec<f64> = result.workers.iter().map(|w| w.compute_time.as_secs_f64()).collect();
    let max = times.iter().cloned().fold(0.0, f64::max);
    let mean = times.iter().sum::<f64>() / times.len().max(1) as f64;
    if mean == 0.0 {
        1.0
    } else {
        max / mean
    }
}

/// Reads the dataset scale factor from `--scale <f>` argv or the
/// `GTHINKER_SCALE` environment variable (falling back to `default`).
pub fn scale_from_args(default: f64) -> f64 {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--scale" {
            if let Some(v) = args.next().and_then(|s| s.parse().ok()) {
                return v;
            }
        }
    }
    std::env::var("GTHINKER_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

/// Prints a horizontal rule sized for our tables.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(fmt_duration(Duration::from_millis(1500)), "1.50 s");
        assert_eq!(fmt_duration(Duration::from_micros(250)), "250 µs");
        assert_eq!(fmt_bytes(2048), "2.0 KB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024 * 1024), "3.00 GB");
        assert_eq!(fmt_bytes(10), "10 B");
    }

    #[test]
    fn scale_default_when_unset() {
        std::env::remove_var("GTHINKER_SCALE");
        assert_eq!(scale_from_args(0.5), 0.5);
    }
}
