//! Table V(b) — effect of the GC overflow-tolerance parameter α.
//!
//! The paper sweeps α over 0.002 / 0.02 / 0.2 / 2: a lazier GC (larger
//! α) lets `T_cache` overshoot to `(1+α)·c_cache` before evicting,
//! buying a small speedup for proportionally more memory; α = 0.2 is
//! the chosen tradeoff.
//!
//! `cargo run -p gthinker-bench --release --bin table5b_alpha [--scale f]`

use gthinker_apps::MaxCliqueApp;
use gthinker_bench::{fmt_bytes, fmt_duration, scale_from_args};
use gthinker_core::prelude::*;
use gthinker_graph::datasets::{generate, DatasetKind};
use std::sync::Arc;

fn main() {
    let scale = scale_from_args(0.6);
    let d = generate(DatasetKind::Friendster, scale);
    let n = d.graph.num_vertices();
    println!(
        "Table V(b) — effect of α, MCF on {} ({} vertices), 4 workers × 2 compers\n",
        d.kind.name(),
        n
    );
    // A constraining capacity so GC actually runs (the default would
    // hold the whole remote set).
    let cap = (n / 10).max(64);
    println!(
        "{:>8} | {:>10} {:>10} {:>10} {:>12} {:>12}",
        "alpha", "wall", "peak mem", "misses", "evictions", "gc passes"
    );
    gthinker_bench::rule(70);
    for alpha in [0.002f64, 0.02, 0.2, 2.0] {
        let mut cfg = JobConfig::cluster(4, 2);
        cfg.cache.capacity = cap;
        cfg.cache.alpha = alpha;
        cfg.cache.num_buckets = 1024;
        let r = run_job(Arc::new(MaxCliqueApp::default()), &d.graph, &cfg).unwrap();
        assert!(r.global.len() >= d.planted_clique.len());
        let misses: u64 = r.workers.iter().map(|w| w.cache.misses).sum();
        let evictions: u64 = r.workers.iter().map(|w| w.cache.evictions).sum();
        let gc: u64 = r.workers.iter().map(|w| w.cache.gc_passes).sum();
        println!(
            "{alpha:>8} | {:>10} {:>10} {:>10} {:>12} {:>12}",
            fmt_duration(r.elapsed),
            fmt_bytes(r.peak_mem_bytes()),
            misses,
            evictions,
            gc
        );
    }
    println!("\nlarger α → lazier GC → fewer passes and slightly more memory, as in the paper");
}
