//! Table II — dataset statistics.
//!
//! The paper lists the five real graphs' `|V|` and `|E|`. This binary
//! generates the synthetic stand-ins at the chosen scale and prints
//! their statistics next to the real datasets' published sizes, plus
//! the degree-skew columns that justify the BTC stand-in's hub overlay.
//!
//! `cargo run -p gthinker-bench --release --bin table2_datasets [--scale f]`

use gthinker_bench::scale_from_args;
use gthinker_graph::datasets::{generate, DatasetKind};
use gthinker_graph::stats::GraphStats;

fn main() {
    let scale = scale_from_args(1.0);
    println!("Table II — datasets (stand-ins at scale {scale})\n");
    println!(
        "{:<14} {:>12} {:>14} | {:>8} {:>10} {:>8} {:>9} {:>8}",
        "dataset", "paper |V|", "paper |E|", "|V|", "|E|", "max deg", "avg deg", "p99 deg"
    );
    gthinker_bench::rule(92);
    for &kind in &DatasetKind::ALL {
        let d = generate(kind, scale);
        let s = GraphStats::of(&d.graph);
        let (pv, pe) = kind.paper_size();
        println!(
            "{:<14} {:>12} {:>14} | {:>8} {:>10} {:>8} {:>9.1} {:>8}",
            kind.name(),
            pv,
            pe,
            s.num_vertices,
            s.num_edges,
            s.max_degree,
            s.avg_degree,
            s.degree_p99
        );
    }
    println!(
        "\nplanted cliques: {}",
        DatasetKind::ALL
            .iter()
            .map(|&k| format!("{}={}", k.name(), generate(k, scale).planted_clique.len()))
            .collect::<Vec<_>>()
            .join(", ")
    );
}
