//! Table III — running time and peak memory of the three applications
//! (MCF, TC, GM) across systems and datasets.
//!
//! Systems: G-thinker (this reproduction, 4 simulated workers × 2
//! compers), Giraph-like vertex-centric BSP, Arabesque-like
//! filter-process, and the G-Miner-like disk-queue engine. GM
//! (subgraph matching) runs on G-thinker only, matching the paper
//! (Giraph/Arabesque provided only MCF and TC implementations).
//!
//! Budgets reproduce the paper's failure modes: baselines that
//! materialize too much are cut off and reported as OOM / timeout, the
//! way Table III reports Giraph and Arabesque on BTC/Friendster.
//!
//! `cargo run -p gthinker-bench --release --bin table3_systems [--scale f]`

use gthinker_apps::{MatchingApp, MaxCliqueApp, Pattern, TriangleApp};
use gthinker_baselines::arabesque::{
    run_filter_process, ArabesqueMaxClique, ArabesqueTriangles, FilterProcessConfig,
};
use gthinker_baselines::gminer::{gminer_max_clique, gminer_triangle_count, GMinerConfig};
use gthinker_baselines::vertexcentric::{run_bsp, BspConfig, BspMaxClique, BspTriangleCount};
use gthinker_bench::{fmt_bytes, fmt_duration, scale_from_args};
use gthinker_core::prelude::*;
use gthinker_graph::datasets::{generate, DatasetKind};
use gthinker_graph::gen;
use std::sync::Arc;
use std::time::Duration;

/// Memory budget for the in-memory baselines (scaled down with the
/// datasets; the real systems had 64 GB VMs for graphs 1000× larger).
const BASELINE_MEM_BUDGET: u64 = 192 << 20;
/// Time budget standing in for the paper's 24-hour cutoff.
const TIME_BUDGET: Duration = Duration::from_secs(120);

/// Decomposition threshold used for BOTH task engines (G-thinker and
/// the G-Miner-like baseline). The paper's τ = 40,000 never triggers
/// on 1000×-scaled stand-ins, which would hide the engines' actual
/// architectural difference: decomposed subtasks stay in memory queues
/// on G-thinker but must round-trip the disk queue on G-Miner.
const TAU: usize = 64;

fn gt_config() -> JobConfig {
    JobConfig::cluster(4, 2)
}

fn main() {
    let scale = scale_from_args(0.4);
    println!("Table III — systems × applications × datasets (scale {scale})\n");
    println!(
        "{:<13} {:<4} | {:>22} | {:>22} | {:>22} | {:>22}",
        "dataset", "app", "Giraph-like", "Arabesque-like", "G-Miner-like", "G-thinker"
    );
    gthinker_bench::rule(120);

    for &kind in &DatasetKind::ALL {
        let d = generate(kind, scale);
        let g = &d.graph;

        // ---- MCF ----
        let giraph = {
            let out = run_bsp(
                g,
                &BspMaxClique::new(),
                &BspConfig { threads: 2, memory_budget: BASELINE_MEM_BUDGET },
            );
            cell(out.elapsed, out.peak_bytes, out.completed(), out.status_label())
        };
        let arabesque = {
            let app = ArabesqueMaxClique::new(d.planted_clique.len() + 4);
            let out = run_filter_process(
                g,
                &app,
                &FilterProcessConfig { threads: 2, memory_budget: BASELINE_MEM_BUDGET },
            );
            cell(out.elapsed, out.peak_bytes, out.completed(), out.status_label())
        };
        let gminer = {
            let out = gminer_max_clique(
                g,
                &GMinerConfig {
                    threads: 2,
                    dir: std::env::temp_dir().join("t3-gm-mcf"),
                    time_budget: TIME_BUDGET,
                    tau: TAU,
                    ..Default::default()
                },
            );
            cell(out.elapsed, out.peak_bytes, out.completed(), out.status_label())
        };
        let gthinker = {
            let r = run_job(Arc::new(MaxCliqueApp::with_tau(TAU)), g, &gt_config()).unwrap();
            assert!(r.global.len() >= d.planted_clique.len(), "missed the planted clique");
            cell(r.elapsed, r.peak_mem_bytes(), true, "ok")
        };
        println!(
            "{:<13} {:<4} | {giraph:>22} | {arabesque:>22} | {gminer:>22} | {gthinker:>22}",
            kind.name(),
            "MCF"
        );

        // ---- TC ----
        let giraph = {
            let out = run_bsp(
                g,
                &BspTriangleCount::new(),
                &BspConfig { threads: 2, memory_budget: BASELINE_MEM_BUDGET },
            );
            cell(out.elapsed, out.peak_bytes, out.completed(), out.status_label())
        };
        let arabesque = {
            let app = ArabesqueTriangles::new();
            let out = run_filter_process(
                g,
                &app,
                &FilterProcessConfig { threads: 2, memory_budget: BASELINE_MEM_BUDGET },
            );
            cell(out.elapsed, out.peak_bytes, out.completed(), out.status_label())
        };
        let gminer = {
            let out = gminer_triangle_count(
                g,
                &GMinerConfig {
                    threads: 2,
                    dir: std::env::temp_dir().join("t3-gm-tc"),
                    time_budget: TIME_BUDGET,
                    ..Default::default()
                },
            );
            cell(out.elapsed, out.peak_bytes, out.completed(), out.status_label())
        };
        let gthinker = {
            let r = run_job(Arc::new(TriangleApp), g, &gt_config()).unwrap();
            cell(r.elapsed, r.peak_mem_bytes(), true, "ok")
        };
        println!(
            "{:<13} {:<4} | {giraph:>22} | {arabesque:>22} | {gminer:>22} | {gthinker:>22}",
            "", "TC"
        );

        // ---- GM (G-thinker only, like the paper) ----
        let labeled = gen::random_labels(g.clone(), 4, 0x006d_6174_6368 ^ kind.name().len() as u64);
        let gthinker = {
            let app = MatchingApp::new(
                Pattern::triangle(Label(0), Label(1), Label(2)),
                labeled.labels().unwrap().to_vec(),
            );
            let r = run_job(Arc::new(app), &labeled, &gt_config()).unwrap();
            cell(r.elapsed, r.peak_mem_bytes(), true, "ok")
        };
        println!(
            "{:<13} {:<4} | {:>22} | {:>22} | {:>22} | {gthinker:>22}",
            "", "GM", "n/a", "n/a", "n/a"
        );
        gthinker_bench::rule(120);
    }
    println!("\ncells: time / peak bytes of the engine's dominant structure; failures as in the paper's table");
}

fn cell(elapsed: Duration, peak: u64, ok: bool, label: &str) -> String {
    if ok {
        format!("{} / {}", fmt_duration(elapsed), fmt_bytes(peak))
    } else {
        format!("{label} ({})", fmt_duration(elapsed))
    }
}
