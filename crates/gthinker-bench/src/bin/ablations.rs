//! Ablations of the design choices DESIGN.md §5 calls out.
//!
//! Each row disables or degrades one mechanism of §V and reruns MCF on
//! the same simulated 4-machine cluster, quantifying what the
//! mechanism buys:
//!
//! 1. request batching (`request_batch 512 → 1`) — §III desirability 5;
//! 2. task batching (`C = 150 → 2`) — spill/refill granularity;
//! 3. the vertex cache (capacity → near-zero) — §V-A;
//! 4. the decomposition threshold τ (40k → 16) — Fig. 5 line 3;
//! 5. work stealing off — §V-B.
//!
//! `cargo run -p gthinker-bench --release --bin ablations [--scale f]`

use gthinker_apps::MaxCliqueApp;
use gthinker_bench::{fmt_bytes, fmt_duration, scale_from_args};
use gthinker_core::prelude::*;
use gthinker_graph::datasets::{generate, DatasetKind};
use std::sync::Arc;

fn main() {
    let scale = scale_from_args(0.5);
    let d = generate(DatasetKind::Orkut, scale);
    println!(
        "Ablations — MCF on {} ({} V, {} E), 4 workers × 2 compers\n",
        d.kind.name(),
        d.graph.num_vertices(),
        d.graph.num_edges()
    );
    println!(
        "{:<28} | {:>10} {:>10} {:>10} {:>10} {:>10}",
        "configuration", "wall", "net msgs", "net bytes", "misses", "spilled"
    );
    gthinker_bench::rule(88);

    let run = |label: &str, cfg: &JobConfig, tau: usize| {
        let r = run_job(Arc::new(MaxCliqueApp::with_tau(tau)), &d.graph, cfg).unwrap();
        assert!(r.global.len() >= d.planted_clique.len(), "{label}: missed the planted clique");
        let misses: u64 = r.workers.iter().map(|w| w.cache.misses).sum();
        // Message counts are visible through bytes; re-derive an
        // approximate message count from sent bytes / average size is
        // noisy, so report bytes and misses directly.
        println!(
            "{label:<28} | {:>10} {:>10} {:>10} {:>10} {:>10}",
            fmt_duration(r.elapsed),
            "-",
            fmt_bytes(r.total_net_bytes()),
            misses,
            fmt_bytes(r.total_spill_bytes())
        );
    };

    let base = JobConfig::cluster(4, 2);
    run("baseline (paper defaults)", &base, 40_000);

    let mut no_batch = base.clone();
    no_batch.request_batch = 1;
    run("request batching off", &no_batch, 40_000);

    let mut tiny_c = base.clone();
    tiny_c.task_batch = 2;
    run("task batch C = 2", &tiny_c, 40_000);

    let mut no_cache = base.clone();
    no_cache.cache.capacity = 8;
    no_cache.cache.num_buckets = 8;
    run("vertex cache ~disabled", &no_cache, 40_000);

    run("decompose aggressively τ=16", &base, 16);

    let mut no_steal = base.clone();
    no_steal.work_stealing = false;
    run("work stealing off", &no_steal, 40_000);
}
