//! Tail-latency scheduler benchmark — skewed workload (DESIGN.md
//! §"Intra-worker scheduling & wakeup protocol").
//!
//! A handful of hub root tasks each decompose into a `B`-ary task tree
//! whose leaves run the serial branch-and-bound clique miner on a
//! seeded `G(n, 1/2)` instance with a **fixed** lower bound of zero.
//! Because the leaf kernels never consult the global aggregate, total
//! work is identical whatever order the scheduler runs tasks in — the
//! bench measures scheduling, not bound-propagation luck (MaxClique's
//! task counts vary run-to-run with how fast the bound tightens, which
//! made it useless as a scheduler yardstick).
//!
//! All of one worker's roots land in a single spawn batch, so one
//! comper's `Q_task` holds the whole region (the tree's frontier stays
//! below the `3C` spill threshold by construction): exactly the skew
//! intra-worker stealing and event-driven parking exist for. Siblings
//! either steal half the hub queue (default scheduler) or park
//! (`intra_steal = false`). The harness runs both modes, reports
//! wall-clock, summed per-comper idle time and the scheduler counters,
//! asserts the two modes agree on the aggregate and task count, and
//! emits `BENCH_sched.json`.
//!
//! `cargo run -p gthinker-bench --release --bin sched_tail [--scale f]`

use gthinker_apps::serial::clique::max_clique_above;
use gthinker_apps::SumAgg;
use gthinker_bench::scale_from_args;
use gthinker_core::prelude::*;
use gthinker_graph::adj::AdjList;
use gthinker_graph::gen;
use gthinker_graph::graph::Graph;
use gthinker_graph::subgraph::Subgraph;
use gthinker_net::router::LinkConfig;
use std::sync::Arc;
use std::time::Duration;

/// Each root vertex spawns a `BREADTH`-ary tree of depth `DEPTH`;
/// interior tasks only fan out, leaves mine a seeded `G(LEAF_N, 1/2)`.
/// `BREADTH^DEPTH ≤ 2C` keeps the hub queue below the spill threshold,
/// so without stealing the region cannot leave its comper.
struct TreeApp {
    breadth: u64,
    depth: u32,
    leaf_n: usize,
}

fn leaf_graph(n: usize, seed: u64) -> gthinker_graph::subgraph::LocalGraph {
    let g = gen::gnp(n, 0.5, seed);
    let mut sg = Subgraph::with_capacity(n);
    for v in g.vertices() {
        sg.add_vertex(v, g.neighbors(v).clone());
    }
    sg.to_local()
}

impl App for TreeApp {
    /// `(depth, seed)` — the position in the task tree.
    type Context = (u32, u64);
    type Agg = SumAgg;

    fn make_aggregator(&self) -> SumAgg {
        SumAgg
    }

    fn task_spawn(&self, v: VertexId, adj: &AdjList, env: &mut SpawnEnv<'_, Self>) {
        // Pull the sibling roots so each run exercises the request /
        // responder / wake-on-response path at least once per root.
        let mut t = Task::new((0u32, u64::from(v.0) + 1));
        for u in adj.iter() {
            t.pull(u);
        }
        env.add_task(t);
    }

    fn compute(
        &self,
        task: &mut Task<Self::Context>,
        _frontier: &Frontier,
        env: &mut ComputeEnv<'_, Self>,
    ) -> bool {
        let (d, seed) = task.context;
        if d < self.depth {
            for i in 0..self.breadth {
                let child = seed.wrapping_mul(self.breadth + 1).wrapping_add(i);
                env.add_task(Task::new((d + 1, child)));
            }
        } else {
            let local = leaf_graph(self.leaf_n, seed);
            let best = max_clique_above(&local, 0).map_or(0, |c| c.len());
            env.aggregate(best as u64);
        }
        false
    }
}

struct RunStats {
    wall_ms: f64,
    idle_ms: f64,
    steals: u64,
    stolen_tasks: u64,
    parks: u64,
    wakeups: u64,
    responses: u64,
    tasks: u64,
    total: u64,
}

fn run_once(g: &Graph, app: Arc<TreeApp>, intra_steal: bool) -> RunStats {
    let mut cfg = JobConfig::cluster(2, 8);
    cfg.task_batch = 32;
    cfg.intra_steal = intra_steal;
    cfg.link = LinkConfig { latency: Duration::from_micros(100), bytes_per_sec: Some(125_000_000) };
    let start = std::time::Instant::now();
    let r = run_job(app, g, &cfg).expect("job runs");
    let wall = start.elapsed();
    RunStats {
        wall_ms: wall.as_secs_f64() * 1e3,
        idle_ms: r.workers.iter().map(|w| w.idle_time).sum::<Duration>().as_secs_f64() * 1e3,
        steals: r.workers.iter().map(|w| w.steals).sum(),
        stolen_tasks: r.workers.iter().map(|w| w.stolen_tasks).sum(),
        parks: r.workers.iter().map(|w| w.parks).sum(),
        wakeups: r.workers.iter().map(|w| w.wakeups).sum(),
        responses: r.workers.iter().map(|w| w.responses_served).sum(),
        tasks: r.total_tasks(),
        total: r.global,
    }
}

/// Median-by-wall-clock representative of `reps` runs.
fn run_mode(g: &Graph, app: &Arc<TreeApp>, intra_steal: bool, reps: usize) -> RunStats {
    let mut runs: Vec<RunStats> =
        (0..reps).map(|_| run_once(g, Arc::clone(app), intra_steal)).collect();
    runs.sort_by(|a, b| a.wall_ms.total_cmp(&b.wall_ms));
    runs.remove(runs.len() / 2)
}

fn json_mode(s: &RunStats) -> String {
    format!(
        concat!(
            "{{\"wall_ms\": {:.1}, \"idle_ms\": {:.1}, \"steals\": {}, ",
            "\"stolen_tasks\": {}, \"parks\": {}, \"wakeups\": {}, ",
            "\"responses_served\": {}, \"tasks\": {}, \"aggregate\": {}}}"
        ),
        s.wall_ms,
        s.idle_ms,
        s.steals,
        s.stolen_tasks,
        s.parks,
        s.wakeups,
        s.responses,
        s.tasks,
        s.total
    )
}

fn main() {
    let scale = scale_from_args(1.0);
    let reps = ((3.0 * scale).round() as usize).clamp(1, 9);
    let app = Arc::new(TreeApp { breadth: 4, depth: 3, leaf_n: 110 });
    println!("Tail-latency scheduler — skewed deterministic task-tree workload\n");
    println!(
        "4 hub roots x {}^{} tree, G({}, 0.5) leaf kernels; 2 workers x 8 compers, C = 32; {reps} rep(s)\n",
        app.breadth, app.depth, app.leaf_n
    );

    let g = gen::complete(4);

    let steal = run_mode(&g, &app, true, reps);
    let nosteal = run_mode(&g, &app, false, reps);
    assert_eq!(steal.total, nosteal.total, "modes must agree on the aggregate");
    assert_eq!(steal.tasks, nosteal.tasks, "total work is scheduling-independent");

    println!(
        "{:>9} | {:>9} {:>10} | {:>7} {:>7} {:>8} {:>8} | {:>6}",
        "mode", "wall ms", "idle ms", "steals", "stolen", "parks", "wakeups", "tasks"
    );
    gthinker_bench::rule(78);
    for (name, s) in [("steal", &steal), ("no-steal", &nosteal)] {
        println!(
            "{:>9} | {:>9.1} {:>10.1} | {:>7} {:>7} {:>8} {:>8} | {:>6}",
            name, s.wall_ms, s.idle_ms, s.steals, s.stolen_tasks, s.parks, s.wakeups, s.tasks
        );
    }
    println!(
        "\naggregate = {}; wall-clock steal/no-steal = {:.2}, idle steal/no-steal = {:.2}",
        steal.total,
        steal.wall_ms / nosteal.wall_ms.max(1e-9),
        steal.idle_ms / nosteal.idle_ms.max(1e-9)
    );

    // `main_reference` is the same workload measured on the pre-scheduler
    // main (sleep-polling compers, no intra-worker stealing): the
    // numbers the acceptance criterion compares against.
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"sched_tail\",\n",
            "  \"workload\": \"4 roots x 4^3 task tree, gnp(110,0.5) leaf kernels, ",
            "2x8 compers, C=32\",\n",
            "  \"reps\": {},\n",
            "  \"steal\": {},\n",
            "  \"no_steal\": {},\n",
            "  \"main_reference\": {{\"wall_ms\": 464.6, \"idle_ms\": 6218.9, ",
            "\"steals\": 0, \"note\": ",
            "\"median of sleep-poll scheduler runs at bb1b417, same workload/host\"}}\n",
            "}}\n"
        ),
        reps,
        json_mode(&steal),
        json_mode(&nosteal),
    );
    std::fs::write("BENCH_sched.json", &json).expect("write BENCH_sched.json");
    println!("\nwrote BENCH_sched.json");
}
