//! Table IV(b) — vertical scalability: MCF on the Friendster stand-in
//! with 16 simulated machines as compers per machine grow 1 → 16.
//!
//! Expected shape (paper): more compers improve performance, with
//! diminishing returns from 8 → 16 (small tasks cannot hide IO).
//!
//! `cargo run -p gthinker-bench --release --bin table4b_vertical [--scale f]`

use gthinker_apps::MaxCliqueApp;
use gthinker_bench::{fmt_bytes, fmt_duration, modeled_parallel_time, scale_from_args};
use gthinker_core::prelude::*;
use gthinker_graph::datasets::{generate, DatasetKind};
use std::sync::Arc;

fn main() {
    let scale = scale_from_args(0.4);
    let d = generate(DatasetKind::Friendster, scale);
    println!("Table IV(b) — vertical scalability, MCF on {} with 16 machines\n", d.kind.name());
    println!(
        "{:>8} | {:>10} {:>12} {:>12} {:>10} | clique",
        "compers", "wall", "modeled ∥", "speedup ∥", "peak mem"
    );
    gthinker_bench::rule(72);
    let mut base_modeled: Option<f64> = None;
    for compers in [1usize, 2, 4, 8, 16] {
        let cfg = JobConfig::cluster(16, compers);
        let r = run_job(Arc::new(MaxCliqueApp::default()), &d.graph, &cfg).unwrap();
        assert!(r.global.len() >= d.planted_clique.len());
        let modeled = modeled_parallel_time(&r, compers);
        let base = *base_modeled.get_or_insert(modeled.as_secs_f64());
        println!(
            "{compers:>8} | {:>10} {:>12} {:>11.2}× {:>10} | {}",
            fmt_duration(r.elapsed),
            fmt_duration(modeled),
            base / modeled.as_secs_f64().max(1e-9),
            fmt_bytes(r.peak_mem_bytes()),
            r.global.len()
        );
    }
}
