//! Table IV(a) — horizontal scalability: MCF on the Friendster
//! stand-in as the number of simulated machines grows 1 → 16 (4
//! compers each, GigE-like links).
//!
//! Expected shape (paper): more machines generally improve runtime;
//! the lone exception is 1 → 2, because a single machine never waits
//! for remote vertices. Peak per-machine memory falls as the graph
//! partition shrinks.
//!
//! `cargo run -p gthinker-bench --release --bin table4a_horizontal [--scale f]`

use gthinker_apps::MaxCliqueApp;
use gthinker_bench::{
    fmt_bytes, fmt_duration, load_balance, modeled_parallel_time, scale_from_args,
};
use gthinker_core::prelude::*;
use gthinker_graph::datasets::{generate, DatasetKind};
use std::sync::Arc;

fn main() {
    let scale = scale_from_args(0.6);
    let d = generate(DatasetKind::Friendster, scale);
    println!(
        "Table IV(a) — horizontal scalability, MCF on {} ({} V, {} E)\n",
        d.kind.name(),
        d.graph.num_vertices(),
        d.graph.num_edges()
    );
    println!(
        "{:>5} | {:>10} {:>12} {:>10} {:>10} {:>8} | clique",
        "VMs", "wall", "modeled ∥", "peak mem", "net sent", "balance"
    );
    gthinker_bench::rule(80);
    let compers = 4;
    for workers in [1usize, 2, 4, 8, 16] {
        let cfg = JobConfig::cluster(workers, compers);
        let r = run_job(Arc::new(MaxCliqueApp::default()), &d.graph, &cfg).unwrap();
        assert!(r.global.len() >= d.planted_clique.len());
        println!(
            "{workers:>5} | {:>10} {:>12} {:>10} {:>10} {:>8.2} | {}",
            fmt_duration(r.elapsed),
            fmt_duration(modeled_parallel_time(&r, compers)),
            fmt_bytes(r.peak_mem_bytes()),
            fmt_bytes(r.total_net_bytes()),
            load_balance(&r),
            r.global.len()
        );
    }
    println!(
        "\nmodeled ∥ = max-worker compute CPU time / compers (see gthinker-bench docs);\n\
         on a multi-core host wall-clock follows it when communication hides in computation"
    );
}
