//! NScale's construct-then-mine dataflow vs G-thinker's overlap (§II).
//!
//! The paper criticizes NScale because "all subgraphs [must] be
//! constructed before any of them can begin its mining, leading to
//! poor CPU utilization". This harness makes that visible: for TC and
//! MCF on each dataset stand-in it reports the NScale-like engine's
//! construction phase (mining CPU idle), its mining phase, and its
//! materialized store size — against G-thinker, which never
//! materializes the store at all (tasks construct, mine and discard
//! their own subgraphs concurrently).
//!
//! `cargo run -p gthinker-bench --release --bin nscale_phases [--scale f]`

use gthinker_apps::{MaxCliqueApp, TriangleApp};
use gthinker_baselines::nscale::{nscale_max_clique, nscale_triangle_count, NScaleConfig};
use gthinker_bench::{fmt_bytes, fmt_duration, scale_from_args};
use gthinker_core::prelude::*;
use gthinker_graph::datasets::{generate, DatasetKind};
use std::sync::Arc;

fn main() {
    let scale = scale_from_args(0.4);
    println!("NScale-like phases vs G-thinker (1 machine, 4 threads each; scale {scale})\n");
    println!(
        "{:<13} {:<4} | {:>12} {:>12} {:>12} | {:>12} | store",
        "dataset", "app", "construct", "mine", "total", "G-thinker"
    );
    gthinker_bench::rule(92);
    for &kind in &DatasetKind::ALL {
        let d = generate(kind, scale);
        let cfg = NScaleConfig {
            threads: 4,
            dir: std::env::temp_dir().join("nscale-phases"),
            ..Default::default()
        };
        // TC
        let (out, phases) = nscale_triangle_count(&d.graph, &cfg);
        let gt = run_job(Arc::new(TriangleApp), &d.graph, &JobConfig::single_machine(4)).unwrap();
        if let (Some(count), true) = (out.result, out.completed()) {
            assert_eq!(count, gt.global, "engines disagree");
        }
        let p = phases.expect("completed");
        println!(
            "{:<13} {:<4} | {:>12} {:>12} {:>12} | {:>12} | {}",
            kind.name(),
            "TC",
            fmt_duration(p.construction),
            fmt_duration(p.mining),
            fmt_duration(out.elapsed),
            fmt_duration(gt.elapsed),
            fmt_bytes(out.peak_bytes)
        );
        // MCF
        let (out, phases) = nscale_max_clique(&d.graph, &cfg);
        let gt =
            run_job(Arc::new(MaxCliqueApp::default()), &d.graph, &JobConfig::single_machine(4))
                .unwrap();
        if let Some(found) = &out.result {
            assert_eq!(found.len(), gt.global.len(), "engines disagree");
        }
        let p = phases.expect("completed");
        println!(
            "{:<13} {:<4} | {:>12} {:>12} {:>12} | {:>12} | {}",
            "",
            "MCF",
            fmt_duration(p.construction),
            fmt_duration(p.mining),
            fmt_duration(out.elapsed),
            fmt_duration(gt.elapsed),
            fmt_bytes(out.peak_bytes)
        );
    }
    println!(
        "\nG-thinker materializes no store: construction overlaps mining inside each task\n\
         (its column is total wall-clock including the ~100 ms job coordination floor)"
    );
}
