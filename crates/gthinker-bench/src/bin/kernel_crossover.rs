//! Kernel crossover — where the word-parallel bitset miners overtake
//! the sorted-list miners (DESIGN.md §"Kernel selection").
//!
//! For growing task-subgraph sizes at fixed density, times the serial
//! maximum-clique solve with both kernels on the same snapshot and
//! reports the speedup. The dense adjacency matrix costs n²/8 bytes,
//! so the interesting question is not *whether* bits win on dense
//! cores but how early — which justifies the default threshold in
//! `LocalGraph` being far above typical task sizes.
//!
//! `cargo run -p gthinker-bench --release --bin kernel_crossover [--scale f]`

use gthinker_apps::serial::clique::{max_clique_above_bitset, max_clique_above_lists};
use gthinker_bench::{fmt_duration, scale_from_args};
use gthinker_graph::gen;
use gthinker_graph::subgraph::Subgraph;
use std::time::{Duration, Instant};

fn time_it(mut f: impl FnMut() -> usize) -> (Duration, usize) {
    // One warm-up, then best of three (serial solves are deterministic;
    // min filters scheduler noise).
    let mut out = f();
    let mut best = Duration::MAX;
    for _ in 0..3 {
        let t = Instant::now();
        out = std::hint::black_box(f());
        best = best.min(t.elapsed());
    }
    (best, out)
}

fn main() {
    let scale = scale_from_args(1.0);
    println!("Kernel crossover — sorted-list vs bitset maximum clique, G(n, 0.5)\n");
    println!("{:>6} | {:>12} {:>12} | {:>8} | ω", "n", "lists", "bitset", "speedup");
    gthinker_bench::rule(58);
    let sizes = [32usize, 64, 96, 128, 192, 256];
    let take = ((sizes.len() as f64 * scale).round() as usize).clamp(1, sizes.len());
    for &n in sizes.iter().take(take) {
        let mut sg = Subgraph::new();
        let g = gen::gnp(n, 0.5, n as u64);
        for v in g.vertices() {
            sg.add_vertex(v, g.neighbors(v).clone());
        }
        let dense = sg.to_local_with_threshold(usize::MAX);
        let sparse = sg.to_local_with_threshold(0);
        let (t_lists, w1) = time_it(|| max_clique_above_lists(&sparse, 0).map_or(0, |c| c.len()));
        let (t_bits, w2) = time_it(|| max_clique_above_bitset(&dense, 0).map_or(0, |c| c.len()));
        assert_eq!(w1, w2, "kernels disagree on ω at n = {n}");
        println!(
            "{:>6} | {:>12} {:>12} | {:>7.2}x | {}",
            n,
            fmt_duration(t_lists),
            fmt_duration(t_bits),
            t_lists.as_secs_f64() / t_bits.as_secs_f64().max(1e-12),
            w1
        );
    }
    println!("\nspeedup = lists / bitset; > 1 means the word-parallel kernel wins");
}
