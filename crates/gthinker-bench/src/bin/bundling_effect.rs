//! Task bundling effect — the paper's future-work optimization [38]
//! ("bundling tasks of low-degree vertices into big tasks"), proposed
//! to fix the weak 8→16-comper scaling of Table IV(b).
//!
//! Runs triangle counting on a heavy-tailed graph with growing bundle
//! thresholds and reports task counts, network traffic and runtime.
//! On scale-free graphs most vertices are low-degree, so the task
//! count collapses while the answer stays identical.
//!
//! `cargo run -p gthinker-bench --release --bin bundling_effect [--scale f]`

use gthinker_apps::BundledTriangleApp;
use gthinker_bench::{fmt_bytes, fmt_duration, scale_from_args};
use gthinker_core::prelude::*;
use gthinker_graph::gen;
use std::sync::Arc;

fn main() {
    let scale = scale_from_args(1.0);
    let n = (30_000.0 * scale) as usize;
    let g = gen::barabasi_albert(n.max(100), 4, 77);
    println!(
        "Bundling effect — TC on a BA graph ({} V, {} E), 4 workers × 2 compers\n",
        g.num_vertices(),
        g.num_edges()
    );
    println!(
        "{:>16} | {:>10} {:>10} {:>12} {:>12} | count",
        "bundle ≤ deg", "wall", "tasks", "net bytes", "misses"
    );
    gthinker_bench::rule(84);
    let mut reference = None;
    for threshold in [0usize, 2, 8, 32, 128] {
        let r =
            run_job(Arc::new(BundledTriangleApp::new(threshold)), &g, &JobConfig::cluster(4, 2))
                .unwrap();
        let count = *reference.get_or_insert(r.global);
        assert_eq!(r.global, count, "bundling changed the answer!");
        let misses: u64 = r.workers.iter().map(|w| w.cache.misses).sum();
        println!(
            "{threshold:>16} | {:>10} {:>10} {:>12} {:>12} | {}",
            fmt_duration(r.elapsed),
            r.total_tasks(),
            fmt_bytes(r.total_net_bytes()),
            misses,
            r.global
        );
    }
    println!("\nlarger thresholds collapse the low-degree task tail into few bundled tasks");
}
