//! Cluster-wide work stealing benchmark — skewed 3-worker workload
//! (DESIGN.md §12 "Cluster-wide stealing").
//!
//! Every heavy root task lands on worker 0: `task_spawn` hashes the
//! spawn vertex with the same partitioner the runtime uses and only
//! vertices owned by worker 0 grow a task tree. Interior nodes fan out,
//! leaves are *stragglers* — each runs a batch of timed kernels (a
//! seeded `G(n, 1/2)` clique search for the aggregate plus a fixed
//! think time), so total work is identical whatever worker runs which
//! task and wall clock measures *scheduling* rather than the host's
//! core count (compers overlap think time even on a 1-core box).
//! Without cluster stealing workers 1 and 2 idle for the whole job;
//! with it the master observes the imbalance from progress reports and
//! brokers steal batches.
//!
//! Three ablations:
//! * `steal` — cluster stealing on, `compute_budget` set, so straggler
//!   leaves split into per-kernel subtasks that spread across the
//!   cluster;
//! * `split_off` — stealing on but no budget: leaves stay indivisible,
//!   stealing moves only whole stragglers;
//! * `steal_off` — no cluster stealing: the skewed region never leaves
//!   worker 0.
//!
//! The harness asserts all modes agree on the aggregate, reports wall
//! clock, per-worker idle time and the steal/split counters, and emits
//! `BENCH_steal.json`.
//!
//! `cargo run -p gthinker-bench --release --bin sched_cluster [--scale f]`

use gthinker_apps::serial::clique::max_clique_above;
use gthinker_apps::SumAgg;
use gthinker_bench::scale_from_args;
use gthinker_core::prelude::*;
use gthinker_graph::adj::AdjList;
use gthinker_graph::gen;
use gthinker_graph::graph::Graph;
use gthinker_graph::partition::HashPartitioner;
use gthinker_graph::subgraph::Subgraph;
use gthinker_net::router::LinkConfig;
use std::sync::Arc;
use std::time::Duration;

const WORKERS: u16 = 3;
const COMPERS: usize = 4;
const BREADTH: u64 = 3;
const DEPTH: u32 = 2;
const LEAF_KERNELS: u64 = 6;
const LEAF_N: usize = 60;
/// Fixed think time per kernel; dominates the kernel's CPU cost so the
/// bench stays scheduling-bound on any host.
const KERNEL_TIME: Duration = Duration::from_millis(8);

/// Roots owned by worker 0 grow a `BREADTH`-ary tree of depth `DEPTH`;
/// each leaf runs `LEAF_KERNELS` timed kernels (a straggler). Under a
/// compute budget a leaf splits its kernel batch into fresh tasks of at
/// most `budget` kernels each — the straggler-splitting half of the
/// cluster-stealing design.
struct SkewApp;

fn leaf_kernel(seed: u64) -> u64 {
    let g = gen::gnp(LEAF_N, 0.5, seed);
    let mut sg = Subgraph::with_capacity(LEAF_N);
    for v in g.vertices() {
        sg.add_vertex(v, g.neighbors(v).clone());
    }
    let local = sg.to_local();
    let best = max_clique_above(&local, 0).map_or(0, |c| c.len()) as u64;
    std::thread::sleep(KERNEL_TIME);
    best
}

impl App for SkewApp {
    /// `(depth, seed, kernel_seeds)` — tree position plus, for a leaf,
    /// the seeds of the kernels it still has to run.
    type Context = (u32, u64, Vec<u64>);
    type Agg = SumAgg;

    fn make_aggregator(&self) -> SumAgg {
        SumAgg
    }

    fn task_spawn(&self, v: VertexId, _adj: &AdjList, env: &mut SpawnEnv<'_, Self>) {
        // The whole workload hangs off worker 0's vertices: maximal skew.
        if HashPartitioner::new(WORKERS).owner(v).index() != 0 {
            return;
        }
        env.add_task(Task::new((0u32, u64::from(v.0) + 1, Vec::new())));
    }

    fn compute(
        &self,
        task: &mut Task<Self::Context>,
        _frontier: &Frontier,
        env: &mut ComputeEnv<'_, Self>,
    ) -> bool {
        let (d, seed, kernels) = task.context.clone();
        if !kernels.is_empty() {
            // A straggler leaf (or a chunk split off one).
            if env.compute_budget().is_some_and(|b| kernels.len() as u64 > b) {
                let budget = env.compute_budget().unwrap().max(1) as usize;
                let mut spawned = 0u64;
                for chunk in kernels.chunks(budget) {
                    env.add_task(Task::new((d, seed, chunk.to_vec())));
                    spawned += 1;
                }
                env.note_split(spawned);
                return false;
            }
            let mut sum = 0u64;
            for &k in &kernels {
                sum += leaf_kernel(k);
            }
            env.aggregate(sum);
            return false;
        }
        if d < DEPTH {
            for i in 0..BREADTH {
                let child = seed.wrapping_mul(BREADTH + 1).wrapping_add(i);
                env.add_task(Task::new((d + 1, child, Vec::new())));
            }
        } else {
            let seeds: Vec<u64> =
                (0..LEAF_KERNELS).map(|i| seed.wrapping_mul(LEAF_KERNELS + 1) + i).collect();
            env.add_task(Task::new((d, seed, seeds)));
        }
        false
    }
}

struct RunStats {
    wall_ns: u128,
    idle_ns: Vec<u128>,
    remote_steals: u64,
    remote_stolen_tasks: u64,
    steal_batch_bytes: u64,
    yields: u64,
    split_tasks: u64,
    tasks: u64,
    total: u64,
}

fn run_once(g: &Graph, steal: bool, budget: Option<u64>) -> RunStats {
    let mut cfg = JobConfig::cluster(WORKERS as usize, COMPERS);
    cfg.task_batch = 16;
    cfg.sync_interval = Duration::from_millis(5);
    cfg.work_stealing = steal;
    cfg.compute_budget = budget;
    cfg.link = LinkConfig { latency: Duration::from_micros(100), bytes_per_sec: Some(125_000_000) };
    let start = std::time::Instant::now();
    let r = run_job(Arc::new(SkewApp), g, &cfg).expect("job runs");
    let wall = start.elapsed();
    RunStats {
        wall_ns: wall.as_nanos(),
        idle_ns: r.workers.iter().map(|w| w.idle_time.as_nanos()).collect(),
        remote_steals: r.workers.iter().map(|w| w.remote_steals).sum(),
        remote_stolen_tasks: r.workers.iter().map(|w| w.remote_stolen_tasks).sum(),
        steal_batch_bytes: r.workers.iter().map(|w| w.steal_batch_bytes).sum(),
        yields: r.workers.iter().map(|w| w.yields).sum(),
        split_tasks: r.workers.iter().map(|w| w.split_tasks).sum(),
        tasks: r.total_tasks(),
        total: r.global,
    }
}

/// Median-by-wall-clock representative of `reps` runs.
fn run_mode(g: &Graph, steal: bool, budget: Option<u64>, reps: usize) -> RunStats {
    let mut runs: Vec<RunStats> = (0..reps).map(|_| run_once(g, steal, budget)).collect();
    runs.sort_by_key(|r| r.wall_ns);
    runs.remove(runs.len() / 2)
}

fn json_mode(s: &RunStats) -> String {
    let idle: Vec<String> = s.idle_ns.iter().map(|n| n.to_string()).collect();
    format!(
        concat!(
            "{{\"wall_ns\": {}, \"idle_ns_per_worker\": [{}], \"idle_ns_total\": {}, ",
            "\"remote_steals\": {}, \"remote_stolen_tasks\": {}, \"steal_batch_bytes\": {}, ",
            "\"yields\": {}, \"split_tasks\": {}, \"tasks\": {}, \"aggregate\": {}}}"
        ),
        s.wall_ns,
        idle.join(", "),
        s.idle_ns.iter().sum::<u128>(),
        s.remote_steals,
        s.remote_stolen_tasks,
        s.steal_batch_bytes,
        s.yields,
        s.split_tasks,
        s.tasks,
        s.total
    )
}

fn main() {
    let scale = scale_from_args(1.0);
    let reps = ((3.0 * scale).round() as usize).clamp(1, 9);
    let budget = Some(1u64);
    let g = gen::complete(24);
    let roots =
        g.vertices().filter(|&v| HashPartitioner::new(WORKERS).owner(v).index() == 0).count();
    println!("Cluster-wide stealing — skewed deterministic task-tree workload\n");
    println!(
        "{roots} hub roots (all on worker 0) x {BREADTH}^{DEPTH} tree, {LEAF_KERNELS} \
         8ms timed G({LEAF_N}, 0.5) kernels per leaf; {WORKERS} workers x {COMPERS} compers; {reps} rep(s)\n"
    );

    let steal = run_mode(&g, true, budget, reps);
    let split_off = run_mode(&g, true, None, reps);
    let steal_off = run_mode(&g, false, budget, reps);
    assert_eq!(steal.total, steal_off.total, "modes must agree on the aggregate");
    assert_eq!(steal.total, split_off.total, "modes must agree on the aggregate");
    assert!(steal.remote_steals > 0, "skew must trigger cluster steals");
    assert_eq!(steal_off.remote_steals, 0, "steal-off must not steal");

    println!(
        "{:>10} | {:>9} {:>10} | {:>7} {:>7} {:>9} | {:>7} {:>7} | {:>6}",
        "mode", "wall ms", "idle ms", "steals", "stolen", "bytes", "yields", "splits", "tasks"
    );
    gthinker_bench::rule(92);
    for (name, s) in [("steal", &steal), ("split-off", &split_off), ("steal-off", &steal_off)] {
        println!(
            "{:>10} | {:>9.1} {:>10.1} | {:>7} {:>7} {:>9} | {:>7} {:>7} | {:>6}",
            name,
            s.wall_ns as f64 / 1e6,
            s.idle_ns.iter().sum::<u128>() as f64 / 1e6,
            s.remote_steals,
            s.remote_stolen_tasks,
            s.steal_batch_bytes,
            s.yields,
            s.split_tasks,
            s.tasks
        );
    }
    let wall_ratio = steal.wall_ns as f64 / steal_off.wall_ns.max(1) as f64;
    let idle_ratio = steal.idle_ns.iter().sum::<u128>() as f64
        / steal_off.idle_ns.iter().sum::<u128>().max(1) as f64;
    println!(
        "\naggregate = {}; wall steal/steal-off = {:.2}, summed idle steal/steal-off = {:.2}",
        steal.total, wall_ratio, idle_ratio
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"sched_cluster\",\n",
            "  \"workload\": \"{} roots on worker 0 x {}^{} task tree, {} 8ms timed gnp({},0.5) ",
            "kernels per leaf, {} workers x {} compers\",\n",
            "  \"reps\": {},\n",
            "  \"compute_budget\": 1,\n",
            "  \"steal\": {},\n",
            "  \"split_off\": {},\n",
            "  \"steal_off\": {},\n",
            "  \"wall_ratio_steal_vs_off\": {:.3},\n",
            "  \"idle_ratio_steal_vs_off\": {:.3}\n",
            "}}\n"
        ),
        roots,
        BREADTH,
        DEPTH,
        LEAF_KERNELS,
        LEAF_N,
        WORKERS,
        COMPERS,
        reps,
        json_mode(&steal),
        json_mode(&split_off),
        json_mode(&steal_off),
        wall_ratio,
        idle_ratio,
    );
    std::fs::write("BENCH_steal.json", &json).expect("write BENCH_steal.json");
    println!("\nwrote BENCH_steal.json");
}
