//! Compressed-storage benchmark (DESIGN.md §13).
//!
//! Measures what the `.gtc` memory-mapped format buys and costs:
//!
//! 1. **Compression ratio** — the compressed file vs the plain `.bin`
//!    binary for the same power-law graph, in degeneracy order (the
//!    order `graph build --order` produces).
//! 2. **Per-vertex decode cost** — nanoseconds to hand out `Γ(v)` from
//!    the mapped file vs a materialized CSR, full sweeps over the
//!    vertex set.
//! 3. **Miner overhead** — end-to-end triangle counting and maximum
//!    clique finding on the mapped backend vs the in-RAM graph, same
//!    seeds and topology, results asserted equal.
//! 4. **Peak RSS** — `VmHWM` of subprocess phases that mine the same
//!    file loaded into RAM vs memory-mapped, the number that decides
//!    whether a graph fits a machine at all.
//! 5. **Streamed build at scale** — a `--scale`-times-10⁸-edge
//!    `G(n, p)` generated straight into the two-pass streaming builder,
//!    no edge list ever materialized; its peak RSS is reported from a
//!    subprocess too.
//!
//! Emits `BENCH_storage.json`.
//!
//! `cargo run -p gthinker-bench --release --bin graph_storage [--scale f]`

use gthinker_apps::{MaxCliqueApp, TriangleApp};
use gthinker_bench::{fmt_bytes, fmt_duration, scale_from_args};
use gthinker_core::prelude::*;
use gthinker_graph::compressed::{build_from_edge_stream, write_compressed, CompressedGraph};
use gthinker_graph::csr::Csr;
use gthinker_graph::gen;
use gthinker_graph::order::degeneracy_relabel;
use gthinker_graph::store::AdjacencyStore;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Peak resident set of this process so far, in kilobytes.
fn vm_hwm_kb() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").expect("read /proc/self/status");
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.trim().strip_suffix("kB"))
        .and_then(|kb| kb.trim().parse().ok())
        .expect("VmHWM line in /proc/self/status")
}

/// Size of the plain `.bin` encoding: magic + vertex count + label flag
/// + per-vertex `u32` degrees + both directions of every edge.
fn plain_binary_bytes(n: u64, m: u64) -> u64 {
    8 + 8 + 1 + n * 4 + 2 * m * 4
}

fn job_config() -> JobConfig {
    JobConfig::cluster(2, 2)
}

/// One re-exec'd measurement phase. Each phase runs in a fresh process
/// because `VmHWM` is a high-water mark: only a process that did
/// nothing else can attribute its peak to one storage strategy.
fn run_phase(phase: &str, args: &[String]) {
    match phase {
        // Load the compressed file fully into RAM, then mine.
        "ram" => {
            let g = CompressedGraph::open(Path::new(&args[0])).expect("open").to_graph();
            let r = run_job(Arc::new(TriangleApp), &g, &job_config()).expect("job");
            println!("triangles={} vmhwm_kb={}", r.global, vm_hwm_kb());
        }
        // Mine straight off the mapping with lazy per-vertex decode.
        "mapped" => {
            let c = Arc::new(CompressedGraph::open(Path::new(&args[0])).expect("open"));
            let r = run_job_on(Arc::new(TriangleApp), GraphSource::Mapped(c), &job_config())
                .expect("job");
            println!("triangles={} vmhwm_kb={}", r.global, vm_hwm_kb());
        }
        // Generate `edges` G(n, p) edges straight into the two-pass
        // streaming builder — the edge list is never materialized.
        "bigbuild" => {
            let n: usize = args[0].parse().expect("n");
            let edges: u64 = args[1].parse().expect("edges");
            let out = PathBuf::from(&args[2]);
            let slots = (n as f64) * (n as f64 - 1.0) / 2.0;
            let p = (edges as f64 / slots).min(1.0);
            let start = Instant::now();
            let stats = build_from_edge_stream(&out, n as u64, None, |sink| {
                gen::stream_gnp(n, p, 7, sink).map(|_| ())
            })
            .expect("streamed build");
            println!(
                "edges={} file_bytes={} payload_bytes={} secs={:.1} vmhwm_kb={}",
                stats.num_edges,
                stats.file_bytes,
                stats.payload_bytes,
                start.elapsed().as_secs_f64(),
                vm_hwm_kb()
            );
        }
        other => panic!("unknown phase {other}"),
    }
}

/// Re-runs this binary as `--phase NAME args..` and returns the child's
/// stdout parsed as `key=value` pairs.
fn spawn_phase(phase: &str, args: &[&str]) -> std::collections::HashMap<String, String> {
    let exe = std::env::current_exe().expect("current exe");
    let out = std::process::Command::new(exe)
        .arg("--phase")
        .arg(phase)
        .args(args)
        .output()
        .expect("spawn phase");
    assert!(out.status.success(), "phase {phase} failed: {}", String::from_utf8_lossy(&out.stderr));
    String::from_utf8(out.stdout)
        .expect("utf8")
        .split_whitespace()
        .filter_map(|kv| kv.split_once('='))
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

/// Minimum time of `reps` timed sweeps of `f` (noise only adds time).
fn min_time(reps: usize, mut f: impl FnMut() -> u64) -> (Duration, u64) {
    let mut best = Duration::MAX;
    let mut check = 0;
    for _ in 0..reps {
        let start = Instant::now();
        check = f();
        best = best.min(start.elapsed());
    }
    (best, check)
}

/// Sweeps every vertex once through `AdjacencyStore::adjacency`,
/// returning a checksum so the decode cannot be optimized away.
fn sweep(store: &dyn AdjacencyStore) -> u64 {
    let mut acc = 0u64;
    for v in 0..store.num_vertices() as u32 {
        let adj = store.adjacency(gthinker_graph::ids::VertexId(v));
        acc = acc.wrapping_add(adj.degree() as u64);
        if let Some(last) = adj.iter().last() {
            acc = acc.wrapping_add(u64::from(last.0));
        }
    }
    std::hint::black_box(acc)
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("--phase") {
        run_phase(&argv[1], &argv[2..]);
        return;
    }

    let scale = scale_from_args(1.0);
    let tmp = std::env::temp_dir().join(format!("gthinker-storage-{}", std::process::id()));
    std::fs::create_dir_all(&tmp).expect("mkdir");

    // ---- 1. Compression ratio on a degeneracy-ordered power-law graph.
    let n = ((120_000.0 * scale) as usize).max(2_000);
    let g = gen::barabasi_albert(n, 24, 42);
    let (g, degeneracy) = degeneracy_relabel(&g);
    let gtc = tmp.join("powerlaw.gtc");
    let stats = write_compressed(&g, &gtc).expect("write compressed");
    let plain = plain_binary_bytes(stats.num_vertices, stats.num_edges);
    let ratio = plain as f64 / stats.file_bytes as f64;
    println!("power-law graph: ba({n}, 24), degeneracy {degeneracy}, degeneracy order");
    println!(
        "  plain binary {}  compressed {}  ({:.2} B per directed edge)",
        fmt_bytes(plain),
        fmt_bytes(stats.file_bytes),
        stats.bytes_per_edge()
    );
    println!("  compression ratio {ratio:.2}x");
    assert!(ratio >= 2.0, "compression ratio regressed below 2x: {ratio:.2}");

    // ---- 2. Per-vertex decode cost: mapped decode vs materialized CSR.
    let mapped = CompressedGraph::open(&gtc).expect("open");
    let csr = Csr::from_graph(&g);
    let reps = 5;
    let (t_csr, sum_csr) = min_time(reps, || sweep(&csr));
    let (t_gtc, sum_gtc) = min_time(reps, || sweep(&mapped));
    assert_eq!(sum_csr, sum_gtc, "backends decoded different lists");
    let nv = g.num_vertices() as f64;
    let ne = 2.0 * g.num_edges() as f64;
    let csr_ns_v = t_csr.as_nanos() as f64 / nv;
    let gtc_ns_v = t_gtc.as_nanos() as f64 / nv;
    println!("\nfull-sweep decode cost ({} vertices, min of {reps}):", g.num_vertices());
    println!(
        "  csr    {} — {csr_ns_v:.0} ns/vertex, {:.2} ns/edge",
        fmt_duration(t_csr),
        t_csr.as_nanos() as f64 / ne
    );
    println!(
        "  mapped {} — {gtc_ns_v:.0} ns/vertex, {:.2} ns/edge",
        fmt_duration(t_gtc),
        t_gtc.as_nanos() as f64 / ne
    );

    // ---- 3. End-to-end miner overhead, mapped vs in-RAM.
    let shared = Arc::new(CompressedGraph::open(&gtc).expect("open"));
    let mine_pair = |name: &str,
                     ram_run: &dyn Fn() -> (u64, Duration),
                     map_run: &dyn Fn() -> (u64, Duration)| {
        let (ram_val, ram_t) = ram_run();
        let (map_val, map_t) = map_run();
        assert_eq!(ram_val, map_val, "{name}: backends disagree");
        let pct = (map_t.as_secs_f64() / ram_t.as_secs_f64() - 1.0) * 100.0;
        println!(
            "  {name:<4} ram {}  mapped {}  ({pct:+.1}% wall)",
            fmt_duration(ram_t),
            fmt_duration(map_t)
        );
        (ram_t, map_t, pct)
    };
    println!("\nminer overhead (2 workers x 2 compers):");
    let g_ref = &g;
    let shared_tc = Arc::clone(&shared);
    let (tc_ram, tc_map, tc_pct) = mine_pair(
        "tc",
        &|| {
            let r = run_job(Arc::new(TriangleApp), g_ref, &job_config()).expect("job");
            (r.global, r.elapsed)
        },
        &|| {
            let r = run_job_on(
                Arc::new(TriangleApp),
                GraphSource::Mapped(Arc::clone(&shared_tc)),
                &job_config(),
            )
            .expect("job");
            (r.global, r.elapsed)
        },
    );
    let shared_mcf = Arc::clone(&shared);
    let (mcf_ram, mcf_map, mcf_pct) = mine_pair(
        "mcf",
        &|| {
            let r = run_job(Arc::new(MaxCliqueApp::default()), g_ref, &job_config()).expect("job");
            (r.global.len() as u64, r.elapsed)
        },
        &|| {
            let r = run_job_on(
                Arc::new(MaxCliqueApp::default()),
                GraphSource::Mapped(Arc::clone(&shared_mcf)),
                &job_config(),
            )
            .expect("job");
            (r.global.len() as u64, r.elapsed)
        },
    );

    // ---- 4. Peak RSS: fresh subprocess per storage strategy.
    let gtc_str = gtc.to_string_lossy().into_owned();
    let ram_phase = spawn_phase("ram", &[&gtc_str]);
    let map_phase = spawn_phase("mapped", &[&gtc_str]);
    assert_eq!(ram_phase["triangles"], map_phase["triangles"]);
    let ram_kb: u64 = ram_phase["vmhwm_kb"].parse().unwrap();
    let map_kb: u64 = map_phase["vmhwm_kb"].parse().unwrap();
    println!("\npeak RSS mining the same file (subprocess VmHWM):");
    println!("  ram    {}", fmt_bytes(ram_kb * 1024));
    println!("  mapped {}", fmt_bytes(map_kb * 1024));

    // ---- 5. Streamed build at 10^8-edge scale (scaled by --scale).
    let big_edges = ((1e8 * scale) as u64).max(1_000_000);
    let big_n = 100_000.max((big_edges / 1_000) as usize);
    let big_out = tmp.join("big.gtc");
    println!("\nstreamed build: gnp targeting {big_edges} edges over {big_n} vertices ...");
    let big = spawn_phase(
        "bigbuild",
        &[&big_n.to_string(), &big_edges.to_string(), &big_out.to_string_lossy()],
    );
    let big_edges_got: u64 = big["edges"].parse().unwrap();
    let big_bytes: u64 = big["file_bytes"].parse().unwrap();
    let big_kb: u64 = big["vmhwm_kb"].parse().unwrap();
    let big_secs: f64 = big["secs"].parse().unwrap();
    let big_plain = plain_binary_bytes(big_n as u64, big_edges_got);
    println!(
        "  {} edges -> {} in {:.1} s, peak RSS {} (plain binary would be {}, text edge list more)",
        big_edges_got,
        fmt_bytes(big_bytes),
        big_secs,
        fmt_bytes(big_kb * 1024),
        fmt_bytes(big_plain),
    );
    // The builder's working state is bounded by the directed-edge fill
    // array, so RSS must stay well under the text edge list it replaces
    // (~12 B per edge per direction as text).
    let edge_list_text_estimate = big_edges_got * 12;
    assert!(
        big_kb * 1024 < edge_list_text_estimate.max(2_000_000_000),
        "streamed build RSS {} suggests the edge list was materialized",
        fmt_bytes(big_kb * 1024)
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"graph_storage\",\n",
            "  \"scale\": {},\n",
            "  \"ratio_graph\": \"ba({}, 24) in degeneracy order (degeneracy {})\",\n",
            "  \"plain_binary_bytes\": {},\n",
            "  \"compressed_bytes\": {},\n",
            "  \"compression_ratio\": {:.2},\n",
            "  \"payload_bytes_per_directed_edge\": {:.2},\n",
            "  \"decode_sweep\": {{\"csr_ns_per_vertex\": {:.0}, \"mapped_ns_per_vertex\": {:.0}, ",
            "\"csr_ns_per_edge\": {:.2}, \"mapped_ns_per_edge\": {:.2}}},\n",
            "  \"miner_overhead\": {{\n",
            "    \"tc\":  {{\"ram_ms\": {:.1}, \"mapped_ms\": {:.1}, \"wall_pct\": {:.1}}},\n",
            "    \"mcf\": {{\"ram_ms\": {:.1}, \"mapped_ms\": {:.1}, \"wall_pct\": {:.1}}}\n",
            "  }},\n",
            "  \"peak_rss\": {{\"ram_kb\": {}, \"mapped_kb\": {}, ",
            "\"workload\": \"tc on the ratio graph, subprocess VmHWM\"}},\n",
            "  \"streamed_build\": {{\"edges\": {}, \"vertices\": {}, \"file_bytes\": {}, ",
            "\"secs\": {:.1}, \"peak_rss_kb\": {}, ",
            "\"note\": \"gnp generated straight into the two-pass builder, no edge list in RAM\"}}\n",
            "}}\n"
        ),
        scale,
        n,
        degeneracy,
        plain,
        stats.file_bytes,
        ratio,
        stats.bytes_per_edge(),
        csr_ns_v,
        gtc_ns_v,
        t_csr.as_nanos() as f64 / ne,
        t_gtc.as_nanos() as f64 / ne,
        tc_ram.as_secs_f64() * 1e3,
        tc_map.as_secs_f64() * 1e3,
        tc_pct,
        mcf_ram.as_secs_f64() * 1e3,
        mcf_map.as_secs_f64() * 1e3,
        mcf_pct,
        ram_kb,
        map_kb,
        big_edges_got,
        big_n,
        big_bytes,
        big_secs,
        big_kb,
    );
    std::fs::write("BENCH_storage.json", &json).expect("write BENCH_storage.json");
    println!("\nwrote BENCH_storage.json");
    let _ = std::fs::remove_dir_all(&tmp);
}
