//! Table I — feature comparison of subgraph-centric systems.
//!
//! The paper's Table I is qualitative: which desirabilities of §III
//! each system satisfies. This binary reprints it for the systems
//! present in this repository (G-thinker itself plus the re-implemented
//! baselines), with each ✓ backed by the module that implements or
//! reproduces the property — so the claims are auditable in code
//! rather than asserted.
//!
//! `cargo run -p gthinker-bench --release --bin table1_features`

struct Row {
    system: &'static str,
    /// D1 bounded memory, D2 batched spilling w/ refill priority,
    /// D3 vertex sharing, D4 independent tasks, D5 batched messaging,
    /// D6 decomposition + stealing.
    features: [bool; 6],
    note: &'static str,
}

fn main() {
    let rows = [
        Row {
            system: "G-thinker",
            features: [true, true, true, true, true, true],
            note: "gthinker-core / -store / -task / -net",
        },
        Row {
            system: "Giraph-like (BSP)",
            features: [false, false, false, true, true, false],
            note: "materializes all messages per superstep",
        },
        Row {
            system: "Arabesque-like",
            features: [false, false, false, true, true, false],
            note: "materializes every enumeration level",
        },
        Row {
            system: "G-Miner-like",
            features: [true, false, true, true, true, true],
            note: "disk queue reinserts dominate (no refill priority)",
        },
        Row {
            system: "RStream-like",
            features: [true, true, false, true, false, false],
            note: "single machine, disk-resident join intermediates",
        },
        Row {
            system: "Nuri-like",
            features: [true, false, false, true, false, false],
            note: "single-threaded best-first, on-disk states",
        },
    ];
    println!("Table I — desirabilities of §III per system\n");
    println!(
        "{:<20} {:>4} {:>4} {:>4} {:>4} {:>4} {:>4}  note",
        "system", "D1", "D2", "D3", "D4", "D5", "D6"
    );
    println!("{}", "-".repeat(88));
    for r in rows {
        let marks: Vec<&str> = r.features.iter().map(|&f| if f { "✓" } else { "✗" }).collect();
        println!(
            "{:<20} {:>4} {:>4} {:>4} {:>4} {:>4} {:>4}  {}",
            r.system, marks[0], marks[1], marks[2], marks[3], marks[4], marks[5], r.note
        );
    }
    println!(
        "\nD1 bounded memory   D2 batched disk spilling, spilled tasks refill first\n\
         D3 tasks share cached vertices   D4 tasks independent, never block\n\
         D5 batched request/response transmission   D6 big-task decomposition + stealing"
    );
}
