//! Table V(a) — effect of the vertex-cache capacity `c_cache`.
//!
//! The paper sweeps c_cache over 0.02M / 0.2M / 2M / 20M on Friendster
//! and finds: small caches slow the job markedly (constant re-pulling),
//! while growing past the default buys little speed for a doubling of
//! memory. The stand-in graph is ~1000× smaller, so the sweep scales
//! the capacities to the remote working set of the simulated cluster.
//!
//! `cargo run -p gthinker-bench --release --bin table5a_cache [--scale f]`

use gthinker_apps::MaxCliqueApp;
use gthinker_bench::{fmt_bytes, fmt_duration, scale_from_args};
use gthinker_core::prelude::*;
use gthinker_graph::datasets::{generate, DatasetKind};
use std::sync::Arc;

fn main() {
    let scale = scale_from_args(0.6);
    let d = generate(DatasetKind::Friendster, scale);
    let n = d.graph.num_vertices();
    println!(
        "Table V(a) — effect of c_cache, MCF on {} ({} vertices), 4 workers × 2 compers\n",
        d.kind.name(),
        n
    );
    // Paper ratios: 0.01×, 0.1×, 1×, 10× of the default; our default is
    // sized to the per-worker remote working set (~3/4 of |V|).
    let default_cap = (n * 3 / 4).max(64);
    println!(
        "{:>10} | {:>10} {:>10} {:>10} {:>12} {:>12}",
        "c_cache", "wall", "peak mem", "misses", "evictions", "gc passes"
    );
    gthinker_bench::rule(74);
    for factor in [0.01f64, 0.1, 1.0, 10.0] {
        let cap = ((default_cap as f64 * factor) as usize).max(16);
        let mut cfg = JobConfig::cluster(4, 2);
        cfg.cache.capacity = cap;
        cfg.cache.num_buckets = 1024;
        let r = run_job(Arc::new(MaxCliqueApp::default()), &d.graph, &cfg).unwrap();
        assert!(r.global.len() >= d.planted_clique.len());
        let misses: u64 = r.workers.iter().map(|w| w.cache.misses).sum();
        let evictions: u64 = r.workers.iter().map(|w| w.cache.evictions).sum();
        let gc: u64 = r.workers.iter().map(|w| w.cache.gc_passes).sum();
        println!(
            "{cap:>10} | {:>10} {:>10} {:>10} {:>12} {:>12}",
            fmt_duration(r.elapsed),
            fmt_bytes(r.peak_mem_bytes()),
            misses,
            evictions,
            gc
        );
    }
    println!("\nsmaller caches re-pull evicted vertices (more misses) and trade time for memory");
}
