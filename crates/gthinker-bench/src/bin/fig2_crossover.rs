//! Fig. 2 — the IO-vs-CPU crossover that motivates G-thinker.
//!
//! The paper argues: the IO cost of materializing a task's subgraph
//! `g` is linear in `|g|`, while the CPU cost of mining `g` grows much
//! faster, so beyond a modest `|g|` the mining cost dominates and IO
//! can hide inside computation. This binary measures both costs for
//! ego-network tasks of growing size and reports the crossover.
//!
//! IO cost = time to collect + copy the adjacency lists (as a pull
//! response would) + modeled GigE transfer time of those bytes.
//! CPU cost = time for the serial maximum-clique solver on `g`.
//!
//! `cargo run -p gthinker-bench --release --bin fig2_crossover`

use gthinker_apps::serial::clique::max_clique_above;
use gthinker_bench::{fmt_bytes, fmt_duration};
use gthinker_graph::adj::AdjList;
use gthinker_graph::gen;
use gthinker_graph::subgraph::Subgraph;
use std::time::{Duration, Instant};

/// GigE payload bandwidth.
const BYTES_PER_SEC: f64 = 125_000_000.0;

fn main() {
    println!("Fig. 2 — cost of constructing g (IO) vs mining g (CPU)\n");
    println!(
        "{:>6} {:>10} | {:>12} {:>14} | {:>12} | dominant",
        "|g|", "edges", "construct", "+GigE transfer", "mine (MCF)"
    );
    gthinker_bench::rule(84);
    let mut crossover: Option<usize> = None;
    for &size in &[16usize, 32, 64, 128, 256, 512, 1024] {
        // A fixed-density candidate subgraph (p tuned so cliques grow
        // with size, like the dense cores real tasks encounter).
        let g = gen::gnp(size, 0.2, size as u64);

        // "IO": gather (v, Γ(v)) pairs and copy them into the task's
        // subgraph — what a pull response + Subgraph construction does.
        let t0 = Instant::now();
        let mut bytes = 0usize;
        let mut sg = Subgraph::with_capacity(size);
        for v in g.vertices() {
            let adj: AdjList = g.neighbors(v).clone();
            bytes += 8 + 4 * adj.degree();
            sg.add_vertex(v, adj);
        }
        let construct = t0.elapsed();
        let transfer = Duration::from_secs_f64(bytes as f64 / BYTES_PER_SEC);
        let io_total = construct + transfer;

        // "CPU": serial mining on the materialized subgraph.
        let local = sg.to_local();
        let t1 = Instant::now();
        let found = max_clique_above(&local, 0).expect("non-empty graph");
        let mine = t1.elapsed();
        let _ = found;

        let dominant = if mine > io_total { "CPU" } else { "IO" };
        if dominant == "CPU" && crossover.is_none() {
            crossover = Some(size);
        }
        println!(
            "{size:>6} {:>10} | {:>12} {:>14} | {:>12} | {dominant}",
            g.num_edges(),
            fmt_duration(construct),
            fmt_duration(transfer),
            fmt_duration(mine),
        );
        let _ = fmt_bytes(bytes as u64);
    }
    match crossover {
        Some(s) => println!(
            "\nCPU cost overtakes IO at |g| ≈ {s}: tasks above this size hide their own IO \
             (the paper's Fig. 2 argument)"
        ),
        None => println!("\nno crossover in the measured range — increase sizes"),
    }
}
