//! §VI "Comparison with Single-Machine Systems" — RStream and Nuri.
//!
//! The paper: RStream takes 53/283/3713 s for TC on Youtube / Skitter /
//! Orkut where single-machine G-thinker takes 4/30/210 s, and runs out
//! of disk on BTC/Friendster; Nuri (single-threaded) needs >1000 s for
//! MCF on Youtube where G-thinker with 8 threads needs ~9.4 s.
//!
//! `cargo run -p gthinker-bench --release --bin table_single_machine [--scale f]`

use gthinker_apps::{MaxCliqueApp, TriangleApp};
use gthinker_baselines::nuri::{nuri_max_clique, NuriConfig};
use gthinker_baselines::rstream::{rstream_triangle_count, RStreamConfig};
use gthinker_bench::{fmt_bytes, fmt_duration, modeled_parallel_time, scale_from_args};
use gthinker_core::prelude::*;
use gthinker_graph::datasets::{generate, DatasetKind};
use gthinker_graph::gen;
use std::sync::Arc;

/// Disk budget standing in for the paper's full disks.
const DISK_BUDGET: u64 = 1 << 30;

fn main() {
    let scale = scale_from_args(1.0);
    println!("Single-machine comparison (scale {scale})\n");

    println!("Triangle counting: RStream-like (out-of-core) vs G-thinker (1 machine, 4 compers)");
    println!(
        "{:<14} | {:>26} | {:>26} | {:>8}",
        "dataset", "RStream-like", "G-thinker (1 machine)", "speedup"
    );
    gthinker_bench::rule(86);
    for &kind in &DatasetKind::ALL {
        let d = generate(kind, scale);
        let rs = rstream_triangle_count(
            &d.graph,
            &RStreamConfig {
                dir: std::env::temp_dir().join("tsm-rstream"),
                disk_budget: DISK_BUDGET,
            },
        );
        let gt = run_job(Arc::new(TriangleApp), &d.graph, &JobConfig::single_machine(4)).unwrap();
        let rs_cell = if rs.completed() {
            assert_eq!(rs.result.unwrap(), gt.global, "engines disagree!");
            format!("{} / {} wedges", fmt_duration(rs.elapsed), fmt_bytes(rs.peak_bytes))
        } else {
            format!("{} ({})", rs.status_label(), fmt_bytes(rs.peak_bytes))
        };
        let speedup = if rs.completed() {
            format!("{:.1}×", rs.elapsed.as_secs_f64() / gt.elapsed.as_secs_f64().max(1e-9))
        } else {
            "∞".to_string()
        };
        println!(
            "{:<14} | {:>26} | {:>26} | {:>8}",
            kind.name(),
            rs_cell,
            format!("{} / {}", fmt_duration(gt.elapsed), fmt_bytes(gt.peak_mem_bytes())),
            speedup
        );
    }

    println!(
        "\nMaximum clique: Nuri-like (single-threaded best-first) vs G-thinker (1 machine, 8 compers)\n\
         workload: a dense Youtube-sized G(n, p) core where branch-and-bound has real work"
    );
    println!(
        "{:<14} | {:>26} | {:>16} {:>12} | {:>10}",
        "graph", "Nuri-like", "G-thinker wall", "modeled ∥", "speedup ∥"
    );
    gthinker_bench::rule(92);
    let n = (1_500.0 * scale) as usize;
    let hard = gen::gnp(n.max(200), 0.1, 0xCAFE);
    let nuri = nuri_max_clique(
        &hard,
        &NuriConfig { dir: std::env::temp_dir().join("tsm-nuri"), ..Default::default() },
    );
    let gt =
        run_job(Arc::new(MaxCliqueApp::default()), &hard, &JobConfig::single_machine(8)).unwrap();
    if let Some(found) = &nuri.result {
        assert_eq!(found.len(), gt.global.len(), "engines disagree!");
    }
    let modeled = modeled_parallel_time(&gt, 8);
    println!(
        "{:<14} | {:>26} | {:>16} {:>12} | {:>10}",
        format!("gnp({}, 0.1)", hard.num_vertices()),
        format!("{} / {} spilled", fmt_duration(nuri.elapsed), fmt_bytes(nuri.peak_bytes)),
        fmt_duration(gt.elapsed),
        fmt_duration(modeled),
        format!("{:.1}×", nuri.elapsed.as_secs_f64() / modeled.as_secs_f64().max(1e-9)),
    );
    println!(
        "\nnote: G-thinker carries ~100 ms of fixed coordination overhead per job; at the\n\
         paper's data scales (runs of seconds to hours) it vanishes, and on this single-core\n\
         host the modeled ∥ column is the honest parallel-time comparison (see crate docs)"
    );
}
