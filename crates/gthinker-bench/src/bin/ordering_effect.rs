//! Vertex-ordering effect on MCF — §VI's discussion of the Skitter
//! anomaly: "this is irrelevant to system design and really depends on
//! how vertices are ordered in the input file (and hence in `T_local`
//! after graph loading)".
//!
//! The set-enumeration tree is anchored on vertex IDs, so the input
//! ordering decides the size distribution of top-level tasks. This
//! binary runs MCF on the same graph under three orderings — natural
//! (generator order), degeneracy, and reverse-degeneracy — and reports
//! max |Γ_>| (the top-level task size bound) next to runtime.
//!
//! `cargo run -p gthinker-bench --release --bin ordering_effect [--scale f]`

use gthinker_apps::MaxCliqueApp;
use gthinker_bench::{fmt_duration, scale_from_args};
use gthinker_core::prelude::*;
use gthinker_graph::datasets::{generate, DatasetKind};
use gthinker_graph::order::{degeneracy_order, max_forward_degree, relabel_by};
use std::sync::Arc;

fn main() {
    let scale = scale_from_args(0.6);
    let d = generate(DatasetKind::Skitter, scale);
    let g = &d.graph;
    println!(
        "Ordering effect — MCF on {} ({} V, {} E), 1 machine × 4 compers\n",
        d.kind.name(),
        g.num_vertices(),
        g.num_edges()
    );
    let (order, degeneracy) = degeneracy_order(g);
    let reversed: Vec<_> = order.iter().rev().copied().collect();
    let degeneracy_graph = relabel_by(g, &order);
    let reversed_graph = relabel_by(g, &reversed);
    println!("graph degeneracy: {degeneracy}\n");
    println!(
        "{:<22} | {:>12} {:>14} | {:>10} {:>10}",
        "ordering", "max |Γ_>|", "Σ|Γ_>|² (work)", "wall", "tasks"
    );
    gthinker_bench::rule(80);
    for (name, graph) in [
        ("natural (generator)", g),
        ("degeneracy", &degeneracy_graph),
        ("reverse degeneracy", &reversed_graph),
    ] {
        let work: u128 = graph
            .vertices()
            .map(|v| {
                let f = graph.neighbors(v).greater_than(v).len() as u128;
                f * f
            })
            .sum();
        let r = run_job(Arc::new(MaxCliqueApp::default()), graph, &JobConfig::single_machine(4))
            .unwrap();
        assert!(r.global.len() >= d.planted_clique.len());
        println!(
            "{name:<22} | {:>12} {:>14} | {:>10} {:>10}",
            max_forward_degree(graph),
            work,
            fmt_duration(r.elapsed),
            r.total_tasks()
        );
    }
    println!(
        "\ndegeneracy ordering bounds every top-level candidate set by the degeneracy,\n\
         flattening the task-size distribution the paper's Skitter anomaly hinges on"
    );
}
