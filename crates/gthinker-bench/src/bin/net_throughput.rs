//! TCP data-plane throughput — evented vs threaded ablation
//! (DESIGN.md §16 "Evented data plane").
//!
//! Brings up a 3-worker loopback TCP mesh (one thread per worker, each
//! owning its own `TcpTransport` over real kernel sockets — the wire
//! path is byte-identical to a 3-process deployment, only the address
//! space is shared) and blasts the steal-heavy traffic shape that
//! dominates a skewed mining job: many small framed control messages
//! per link, plus periodic broadcasts. Every worker sends `per_link`
//! unicasts to each peer and `bcasts` broadcasts, draining its inbox
//! as it goes; the clock stops when its own sends are out *and* every
//! expected inbound message has arrived.
//!
//! Two backends, same wire format, same workload:
//! * `evented` — one poll-loop I/O thread per worker, pooled
//!   seal-once frames, per-peer outbound rings drained with
//!   `writev`-coalesced batches;
//! * `threaded` — the legacy plane: one reader thread per peer and
//!   synchronous locked writes on the sender's own thread.
//!
//! Reports per-backend messages/sec, bytes/sec and the evented plane's
//! coalescing counters, and emits `BENCH_net.json` with the
//! evented-vs-threaded throughput ratio.
//!
//! `cargo run -p gthinker-bench --release --bin net_throughput
//! [--scale f] [--smoke]`

use gthinker_graph::ids::{VertexId, WorkerId};
use gthinker_net::fault::FaultConfig;
use gthinker_net::message::Message;
use gthinker_net::tcp::{ClusterManifest, TcpBackend, TcpTransport};
use gthinker_net::transport::{NetEndpoint, Transport};
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

const WORKERS: usize = 3;
const RENDEZVOUS: Duration = Duration::from_secs(10);
const RECV: Duration = Duration::from_millis(1);
/// Sends between inbox drains; keeps the threaded backend's
/// synchronous writes from filling kernel socket buffers unread.
const DRAIN_EVERY: usize = 64;

fn pull(from: u16, v: u32) -> Message {
    Message::VertexRequest {
        from: WorkerId(from),
        vertices: vec![VertexId(v), VertexId(v ^ 1), VertexId(v ^ 2), VertexId(v ^ 3)],
        sent_nanos: 0,
    }
}

/// One worker's result: wall time to send + receive everything, and
/// its transport counters at teardown.
struct Lane {
    wall: Duration,
    received: usize,
    bytes_sent: u64,
    writev_calls: u64,
    frames_coalesced: u64,
    backpressure_stalls: u64,
}

/// Per-backend aggregate over the mesh.
struct Run {
    backend: TcpBackend,
    wall: Duration,
    msgs: u64,
    bytes: u64,
    msgs_per_sec: f64,
    bytes_per_sec: f64,
    writev_calls: u64,
    frames_coalesced: u64,
    backpressure_stalls: u64,
}

fn run_backend(backend: TcpBackend, per_link: usize, bcasts: usize) -> Run {
    let (manifest, listeners) = ClusterManifest::loopback(WORKERS).expect("bind loopback");
    let expect = (WORKERS - 1) * (per_link + bcasts);
    let handles: Vec<_> = listeners
        .into_iter()
        .enumerate()
        .map(|(w, listener)| {
            let manifest = manifest.clone();
            std::thread::spawn(move || {
                let me = WorkerId(w as u16);
                let mut t = TcpTransport::connect_on_with(
                    &manifest,
                    me,
                    FaultConfig::default(),
                    RENDEZVOUS,
                    listener,
                    backend,
                )
                .expect("rendezvous");
                let net = t.take_endpoint(me);
                blast(&*net, w as u16, per_link, bcasts, expect)
            })
        })
        .collect();
    let lanes: Vec<Lane> = handles.into_iter().map(|h| h.join().expect("worker")).collect();
    for (w, l) in lanes.iter().enumerate() {
        assert_eq!(l.received, expect, "worker {w} lost messages under {backend}");
    }
    let wall = lanes.iter().map(|l| l.wall).max().unwrap();
    let msgs = (WORKERS * expect) as u64;
    let bytes = lanes.iter().map(|l| l.bytes_sent).sum();
    let secs = wall.as_secs_f64().max(1e-9);
    Run {
        backend,
        wall,
        msgs,
        bytes,
        msgs_per_sec: msgs as f64 / secs,
        bytes_per_sec: bytes as f64 / secs,
        writev_calls: lanes.iter().map(|l| l.writev_calls).sum(),
        frames_coalesced: lanes.iter().map(|l| l.frames_coalesced).sum(),
        backpressure_stalls: lanes.iter().map(|l| l.backpressure_stalls).sum(),
    }
}

/// The per-worker send/receive loop. Interleaves draining with
/// sending so neither backend can deadlock on full socket buffers.
fn blast(net: &dyn NetEndpoint, me: u16, per_link: usize, bcasts: usize, expect: usize) -> Lane {
    let peers: Vec<u16> = (0..WORKERS as u16).filter(|&p| p != me).collect();
    let mut received = 0usize;
    let mut batch = Vec::with_capacity(DRAIN_EVERY);
    let start = Instant::now();
    let mut since_drain = 0usize;
    // Only the workload messages count toward `expect`: the inbox also
    // carries transport events — `PeerDown` is expected once the
    // fastest lane finishes and drops its endpoint; anything else would
    // be a wire bug worth seeing.
    let absorb = |batch: &mut Vec<Message>| {
        let data = batch.iter().filter(|m| matches!(m, Message::VertexRequest { .. })).count();
        for m in batch.iter() {
            if !matches!(m, Message::VertexRequest { .. } | Message::PeerDown { .. }) {
                eprintln!("worker {me}: stray inbox message: {m:?}");
            }
        }
        batch.clear();
        data
    };
    for i in 0..per_link {
        for &p in &peers {
            net.send(WorkerId(p), pull(me, i as u32));
            since_drain += 1;
        }
        if since_drain >= DRAIN_EVERY {
            since_drain = 0;
            net.recv_batch(Duration::ZERO, usize::MAX, &mut batch);
            received += absorb(&mut batch);
        }
    }
    for i in 0..bcasts {
        net.broadcast(&pull(me, (per_link + i) as u32));
        since_drain += peers.len();
        if since_drain >= DRAIN_EVERY {
            since_drain = 0;
            net.recv_batch(Duration::ZERO, usize::MAX, &mut batch);
            received += absorb(&mut batch);
        }
    }
    while received < expect {
        let n = net.recv_batch(RECV, usize::MAX, &mut batch);
        received += absorb(&mut batch);
        if n == 0 && start.elapsed() > Duration::from_secs(60) {
            break; // let the caller's assert report the loss
        }
    }
    let wall = start.elapsed();
    let s = net.stats();
    Lane {
        wall,
        received,
        bytes_sent: s.bytes_sent.load(Ordering::Relaxed),
        writev_calls: s.writev_calls.load(Ordering::Relaxed),
        frames_coalesced: s.frames_coalesced.load(Ordering::Relaxed),
        backpressure_stalls: s.backpressure_stalls.load(Ordering::Relaxed),
    }
}

fn json_run(r: &Run) -> String {
    format!(
        concat!(
            "{{\"wall_ns\": {}, \"msgs\": {}, \"bytes\": {}, ",
            "\"msgs_per_sec\": {:.1}, \"bytes_per_sec\": {:.1}, ",
            "\"writev_calls\": {}, \"frames_coalesced\": {}, ",
            "\"backpressure_stalls\": {}}}"
        ),
        r.wall.as_nanos(),
        r.msgs,
        r.bytes,
        r.msgs_per_sec,
        r.bytes_per_sec,
        r.writev_calls,
        r.frames_coalesced,
        r.backpressure_stalls,
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = gthinker_bench::scale_from_args(1.0);
    let per_link = if smoke { 2_000 } else { (40_000.0 * scale) as usize }.max(100);
    let bcasts = per_link / 10;
    let reps = if smoke { 1 } else { 3 };

    println!(
        "net_throughput: {WORKERS}-worker loopback TCP mesh, {per_link} unicasts per link + \
         {bcasts} broadcasts per worker, ~76 B frames; best of {reps} rep(s)\n"
    );

    // Alternate backends rep by rep so neither benefits from a warmer
    // page cache; keep each backend's best run.
    let mut best: Vec<Option<Run>> = vec![None, None];
    for _ in 0..reps {
        for (slot, backend) in [TcpBackend::Evented, TcpBackend::Threaded].into_iter().enumerate() {
            let r = run_backend(backend, per_link, bcasts);
            if best[slot].as_ref().is_none_or(|b| r.msgs_per_sec > b.msgs_per_sec) {
                best[slot] = Some(r);
            }
        }
    }
    let evented = best[0].take().unwrap();
    let threaded = best[1].take().unwrap();

    println!(
        "{:>9} | {:>9} {:>12} {:>12} | {:>8} {:>10} {:>7}",
        "backend", "wall ms", "msgs/sec", "bytes/sec", "writev", "coalesced", "stalls"
    );
    gthinker_bench::rule(80);
    for r in [&evented, &threaded] {
        println!(
            "{:>9} | {:>9.1} {:>12.0} {:>12.0} | {:>8} {:>10} {:>7}",
            r.backend.to_string(),
            r.wall.as_secs_f64() * 1e3,
            r.msgs_per_sec,
            r.bytes_per_sec,
            r.writev_calls,
            r.frames_coalesced,
            r.backpressure_stalls,
        );
    }
    let ratio = evented.msgs_per_sec / threaded.msgs_per_sec.max(1e-9);
    println!("\nmsgs/sec evented/threaded = {ratio:.2}");

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"net_throughput\",\n",
            "  \"workload\": \"{} workers loopback, {} unicasts per link + {} broadcasts per \
             worker, 4-vertex pull frames\",\n",
            "  \"smoke\": {},\n",
            "  \"reps\": {},\n",
            "  \"evented\": {},\n",
            "  \"threaded\": {},\n",
            "  \"msgs_per_sec_ratio_evented_vs_threaded\": {:.3}\n",
            "}}\n"
        ),
        WORKERS,
        per_link,
        bcasts,
        smoke,
        reps,
        json_run(&evented),
        json_run(&threaded),
        ratio,
    );
    std::fs::write("BENCH_net.json", &json).expect("write BENCH_net.json");
    println!("wrote BENCH_net.json");
}
