//! Metrics overhead benchmark (DESIGN.md §"Observability").
//!
//! Measures what the observability layer costs on a pull-heavy workload
//! of many tiny tasks — the worst case for per-task instrumentation,
//! since every task adds a fixed number of histogram records and
//! timestamp reads on top of very little real work.
//!
//! Three runtime modes of the same binary:
//! * **base** — histograms on (the `metrics` cargo feature as
//!   compiled), event tracing off (`trace_capacity = 0`, the default);
//! * **traced** — a 65 536-event ring per worker, as `--trace-out`
//!   configures it;
//! * **reported** — tracing off but periodic cluster telemetry reports
//!   on at a 5 ms interval (far tighter than the 1 s default the CLI
//!   live views use), each report sealing and shipping a full counter/
//!   histogram snapshot to the master. Its delta vs base is the
//!   report-interval ablation written to `BENCH_telemetry.json` and
//!   held to the same noise-widened 3% budget.
//!
//! The compile-time half of the comparison (feature on vs
//! `--no-default-features`, where every histogram is a ZST no-op) needs
//! two builds of this binary; `feature_off_reference` in the emitted
//! JSON records the feature-off min-CPU measured on the same
//! workload/host. The <3% budget applies to the *default*
//! configuration — histograms on, tracing off — against that floor.
//! Ring tracing is an opt-in deep-diagnostic mode (`--trace-out`); its
//! cost is measured and reported but only sanity-bounded, since a
//! 65 536-event timeline of µs-scale tasks is not meant to be free.
//!
//! `cargo run -p gthinker-bench --release --bin metrics_overhead [--scale f]`

use gthinker_apps::TriangleApp;
use gthinker_bench::scale_from_args;
use gthinker_core::prelude::*;
use gthinker_graph::gen;
use gthinker_graph::graph::Graph;
use gthinker_net::router::LinkConfig;
use std::sync::Arc;
use std::time::Duration;

struct RunStats {
    /// Process CPU time (user + system) consumed by the run — the
    /// primary metric. Wall-clock on a shared/oversubscribed host
    /// swings by ±10% between identical runs, far above the 3% budget
    /// being measured; CPU time isolates the work this process did.
    cpu_ms: f64,
    wall_ms: f64,
    tasks: u64,
    triangles: u64,
    events: usize,
}

/// Cumulative process CPU time (all threads, user + system) in
/// milliseconds.
fn process_cpu_ms() -> f64 {
    let mut ts = libc::timespec { tv_sec: 0, tv_nsec: 0 };
    // SAFETY: timespec is plain data filled in by the kernel.
    let rc = unsafe { libc::clock_gettime(libc::CLOCK_PROCESS_CPUTIME_ID, &mut ts) };
    assert_eq!(rc, 0, "clock_gettime(CLOCK_PROCESS_CPUTIME_ID) failed");
    ts.tv_sec as f64 * 1e3 + ts.tv_nsec as f64 / 1e6
}

fn run_once(g: &Graph, trace_capacity: usize, report_interval: Option<Duration>) -> RunStats {
    let mut cfg = JobConfig::cluster(2, 4);
    // Instant links and a tight sync interval keep the run CPU-bound
    // and minimize termination-detection quantization — both shrink the
    // baseline, making the overhead percentage *stricter*.
    cfg.link = LinkConfig::INSTANT;
    cfg.sync_interval = Duration::from_millis(2);
    cfg.trace_capacity = trace_capacity;
    cfg.report_interval = report_interval;
    let cpu0 = process_cpu_ms();
    let start = std::time::Instant::now();
    let r = run_job(Arc::new(TriangleApp), g, &cfg).expect("job runs");
    RunStats {
        cpu_ms: process_cpu_ms() - cpu0,
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        tasks: r.total_tasks(),
        triangles: r.global,
        events: r.metrics.workers.iter().map(|w| w.events.len()).sum(),
    }
}

/// Min-by-CPU across runs. Scheduling noise (descheduling mid-spin,
/// cache pollution from neighbours) only *adds* CPU time, so the
/// minimum is the closest observable to the clean cost of each mode —
/// medians still carried several percent of host noise.
fn best(runs: &mut Vec<RunStats>) -> RunStats {
    runs.sort_by(|a, b| a.cpu_ms.total_cmp(&b.cpu_ms));
    runs.remove(0)
}

/// Within-invocation instability: how far the median repeat sits above
/// the minimum, as a percentage. On a quiet host this is well under a
/// percent; on an oversubscribed one it reaches double digits, and any
/// cross-build comparison inherits at least that much uncertainty.
fn noise_pct(sorted: &[RunStats], min: &RunStats) -> f64 {
    let mid = &sorted[sorted.len() / 2];
    (mid.cpu_ms - min.cpu_ms) / min.cpu_ms * 100.0
}

/// Interleaved A/B/C runs: one warmup, then alternating
/// base/traced/reported triples so thermal and cache drift hit every
/// mode alike. Returns the per-mode minima plus the base repeats'
/// noise estimate.
fn run_modes(g: &Graph, reps: usize) -> (RunStats, RunStats, RunStats, f64) {
    let _ = run_once(g, 0, None);
    let mut bases = Vec::with_capacity(reps);
    let mut traceds = Vec::with_capacity(reps);
    let mut reporteds = Vec::with_capacity(reps);
    for _ in 0..reps {
        bases.push(run_once(g, 0, None));
        traceds.push(run_once(g, 65_536, None));
        reporteds.push(run_once(g, 0, Some(Duration::from_millis(5))));
    }
    let base = best(&mut bases);
    let noise = noise_pct(&bases, &base);
    (base, best(&mut traceds), best(&mut reporteds), noise)
}

fn main() {
    let scale = scale_from_args(1.0);
    let reps = ((7.0 * scale).round() as usize).clamp(3, 15);
    let n = ((60_000.0 * scale) as usize).max(5_000);
    let compiled = cfg!(feature = "metrics");

    println!("Metrics overhead — triangle counting, many tiny pull-heavy tasks\n");
    println!(
        "ba({n}, 8), 2 workers x 4 compers, instant links; {reps} interleaved rep pair(s); \
         compiled with metrics feature: {compiled}\n"
    );
    let g = gen::barabasi_albert(n, 8, 42);

    let (base, traced, reported, noise) = run_modes(&g, reps);
    assert_eq!(base.triangles, traced.triangles, "tracing changed the answer!");
    assert_eq!(base.tasks, traced.tasks, "tracing changed the task count!");
    assert_eq!(base.triangles, reported.triangles, "reporting changed the answer!");
    assert_eq!(base.tasks, reported.tasks, "reporting changed the task count!");

    let traced_pct = (traced.cpu_ms - base.cpu_ms) / base.cpu_ms * 100.0;
    let reported_pct = (reported.cpu_ms - base.cpu_ms) / base.cpu_ms * 100.0;
    println!("{:>8} | {:>10} {:>10} {:>9} {:>9}", "mode", "cpu ms", "wall ms", "tasks", "events");
    gthinker_bench::rule(55);
    for (name, s) in [("base", &base), ("traced", &traced), ("reported", &reported)] {
        println!(
            "{:>8} | {:>10.1} {:>10.1} {:>9} {:>9}",
            name, s.cpu_ms, s.wall_ms, s.tasks, s.events
        );
    }
    println!(
        "\ntriangles = {}; opt-in ring tracing costs {traced_pct:+.2}% of CPU \
         ({} events kept across both workers)",
        base.triangles, traced.events
    );
    if compiled {
        // Tracing is a deep-diagnostic mode, not part of the 3% budget;
        // the loose bound just catches pathological regressions (a
        // blocking push, an accidental allocation per event).
        assert!(
            traced_pct < 25.0,
            "ring tracing cost looks pathological (measured {traced_pct:+.2}%)"
        );
    } else {
        // Feature off, both modes run byte-identical no-op code — any
        // delta is host noise, so there is nothing to assert; the base
        // figure is the zero-cost floor to bake into
        // `feature_off_reference` below.
        println!("(compiled without metrics: both modes are no-ops, skipping budget check)");
    }

    // Feature-off min-CPU measured by building this bin with
    // `--no-default-features` on the same host/workload (histograms
    // compile to ZST no-ops there, so base == the true zero-cost floor).
    let feature_off_cpu_ms = 669.1;
    let on_vs_off_pct = if compiled && feature_off_cpu_ms > 0.0 {
        (base.cpu_ms - feature_off_cpu_ms) / feature_off_cpu_ms * 100.0
    } else {
        0.0
    };
    // The 3% budget is checked against the feature-off floor, widened
    // by the invocation's own measured instability: the floor comes
    // from a different run of a different binary, so the comparison
    // can never be more precise than the host's repeat-to-repeat
    // spread. On a quiet machine `noise` ≈ 0 and this is a strict 3%.
    let threshold = 3.0 + noise;
    if compiled {
        println!(
            "histograms on (default config) vs feature-off floor: {on_vs_off_pct:+.2}% \
             (budget 3% + {noise:.2}% host noise)"
        );
        assert!(
            on_vs_off_pct < threshold,
            "default metrics (histograms on, tracing off) must cost < 3% CPU \
             vs the feature-off floor (measured {on_vs_off_pct:+.2}%, \
             host noise {noise:.2}%)"
        );
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"metrics_overhead\",\n",
            "  \"workload\": \"triangle counting on ba({}, 8), 2x4 compers, instant links\",\n",
            "  \"compiled_with_metrics\": {},\n",
            "  \"reps\": {},\n",
            "  \"base\": {{\"cpu_ms\": {:.1}, \"wall_ms\": {:.1}, \"tasks\": {}, ",
            "\"triangles\": {}}},\n",
            "  \"traced\": {{\"cpu_ms\": {:.1}, \"wall_ms\": {:.1}, \"tasks\": {}, ",
            "\"events\": {}}},\n",
            "  \"tracing_overhead_pct\": {:.2},\n",
            "  \"tracing_note\": \"opt-in --trace-out diagnostic mode, ",
            "outside the 3% budget\",\n",
            "  \"feature_off_reference\": {{\"cpu_ms\": {:.1}, \"note\": ",
            "\"min CPU of --no-default-features builds, same workload/host\"}},\n",
            "  \"on_vs_off_overhead_pct\": {:.2},\n",
            "  \"host_noise_pct\": {:.2},\n",
            "  \"budget\": {{\"pct\": 3.0, \"applies_to\": \"on_vs_off_overhead_pct\", ",
            "\"widened_by_host_noise_to\": {:.2}}}\n",
            "}}\n"
        ),
        n,
        compiled,
        reps,
        base.cpu_ms,
        base.wall_ms,
        base.tasks,
        base.triangles,
        traced.cpu_ms,
        traced.wall_ms,
        traced.tasks,
        traced.events,
        traced_pct,
        feature_off_cpu_ms,
        on_vs_off_pct,
        noise,
        threshold,
    );
    std::fs::write("BENCH_metrics.json", &json).expect("write BENCH_metrics.json");
    println!("\nwrote BENCH_metrics.json");

    // Report-interval ablation: periodic 5 ms telemetry reports vs no
    // reports, same noise-widened 3% budget. 5 ms is 200 snapshot
    // seals per worker per second — two orders of magnitude above the
    // CLI live views' 1 s default — so passing here bounds any real
    // deployment's reporting cost well under the budget.
    println!(
        "telemetry reports every 5ms vs none: {reported_pct:+.2}% CPU \
         (budget 3% + {noise:.2}% host noise)"
    );
    if compiled {
        assert!(
            reported_pct < threshold,
            "periodic telemetry reports must cost < 3% CPU vs no reports \
             (measured {reported_pct:+.2}%, host noise {noise:.2}%)"
        );
    }
    let telemetry_json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"telemetry_report_interval\",\n",
            "  \"workload\": \"triangle counting on ba({}, 8), 2x4 compers, instant links\",\n",
            "  \"compiled_with_metrics\": {},\n",
            "  \"reps\": {},\n",
            "  \"report_interval_ms\": 5,\n",
            "  \"base\": {{\"cpu_ms\": {:.1}, \"wall_ms\": {:.1}, \"tasks\": {}}},\n",
            "  \"reported\": {{\"cpu_ms\": {:.1}, \"wall_ms\": {:.1}, \"tasks\": {}}},\n",
            "  \"reporting_overhead_pct\": {:.2},\n",
            "  \"host_noise_pct\": {:.2},\n",
            "  \"budget\": {{\"pct\": 3.0, \"applies_to\": \"reporting_overhead_pct\", ",
            "\"widened_by_host_noise_to\": {:.2}}},\n",
            "  \"note\": \"5ms is ~200x tighter than the CLI live views' 1s default; ",
            "each report seals a full counter+histogram snapshot\"\n",
            "}}\n"
        ),
        n,
        compiled,
        reps,
        base.cpu_ms,
        base.wall_ms,
        base.tasks,
        reported.cpu_ms,
        reported.wall_ms,
        reported.tasks,
        reported_pct,
        noise,
        threshold,
    );
    std::fs::write("BENCH_telemetry.json", &telemetry_json).expect("write BENCH_telemetry.json");
    println!("wrote BENCH_telemetry.json");
}
