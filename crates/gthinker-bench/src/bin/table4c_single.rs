//! Table IV(c) — single-machine scalability: MCF on the Friendster
//! stand-in with one machine as comper count grows 1 → 16.
//!
//! Expected shape (paper): almost linear speedup — with no remote
//! vertices to wait for, computation divides perfectly across compers.
//! The modeled-∥ column shows exactly that division; on a multi-core
//! host the wall column tracks it.
//!
//! `cargo run -p gthinker-bench --release --bin table4c_single [--scale f]`

use gthinker_apps::MaxCliqueApp;
use gthinker_bench::{fmt_bytes, fmt_duration, modeled_parallel_time, scale_from_args};
use gthinker_core::prelude::*;
use gthinker_graph::datasets::{generate, DatasetKind};
use std::sync::Arc;

fn main() {
    let scale = scale_from_args(0.6);
    let d = generate(DatasetKind::Friendster, scale);
    println!("Table IV(c) — single-machine scalability, MCF on {}\n", d.kind.name());
    println!(
        "{:>8} | {:>10} {:>12} {:>12} {:>10} {:>12} | clique",
        "compers", "wall", "modeled ∥", "speedup ∥", "peak mem", "cache misses"
    );
    gthinker_bench::rule(86);
    let mut base: Option<f64> = None;
    for compers in [1usize, 2, 4, 8, 16] {
        let cfg = JobConfig::single_machine(compers);
        let r = run_job(Arc::new(MaxCliqueApp::default()), &d.graph, &cfg).unwrap();
        assert!(r.global.len() >= d.planted_clique.len());
        let modeled = modeled_parallel_time(&r, compers);
        let b = *base.get_or_insert(modeled.as_secs_f64());
        let misses: u64 = r.workers.iter().map(|w| w.cache.misses).sum();
        println!(
            "{compers:>8} | {:>10} {:>12} {:>11.2}× {:>10} {:>12} | {}",
            fmt_duration(r.elapsed),
            fmt_duration(modeled),
            b / modeled.as_secs_f64().max(1e-9),
            fmt_bytes(r.peak_mem_bytes()),
            misses,
            r.global.len()
        );
        assert_eq!(misses, 0, "single machine must never pull remote vertices");
    }
}
