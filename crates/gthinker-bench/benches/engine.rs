//! Criterion benchmarks of the full engine: end-to-end job throughput
//! for each application on a fixed small graph, single-machine vs a
//! simulated cluster, plus the graph loading paths.

use criterion::{criterion_group, criterion_main, Criterion};
use gthinker_apps::{MaxCliqueApp, MaximalCliqueApp, TriangleApp};
use gthinker_core::prelude::*;
use gthinker_graph::gen;
use gthinker_graph::load;
use std::sync::Arc;

fn bench_jobs(c: &mut Criterion) {
    let g = gen::barabasi_albert(2_000, 5, 9);
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    group.bench_function("tc_single_machine_2c", |b| {
        b.iter(|| {
            let r = run_job(Arc::new(TriangleApp), &g, &JobConfig::single_machine(2)).unwrap();
            std::hint::black_box(r.global)
        })
    });
    group.bench_function("tc_cluster_3x2", |b| {
        b.iter(|| {
            let r = run_job(Arc::new(TriangleApp), &g, &JobConfig::cluster(3, 2)).unwrap();
            std::hint::black_box(r.global)
        })
    });
    group.bench_function("mcf_single_machine_2c", |b| {
        b.iter(|| {
            let r = run_job(Arc::new(MaxCliqueApp::default()), &g, &JobConfig::single_machine(2))
                .unwrap();
            std::hint::black_box(r.global.len())
        })
    });
    group.bench_function("maximal_cliques_single_machine_2c", |b| {
        b.iter(|| {
            let r = run_job(Arc::new(MaximalCliqueApp), &g, &JobConfig::single_machine(2)).unwrap();
            std::hint::black_box(r.global)
        })
    });
    group.finish();
}

fn bench_io(c: &mut Criterion) {
    let g = gen::barabasi_albert(10_000, 5, 4);
    let mut text = Vec::new();
    load::write_adjacency(&g, &mut text).unwrap();
    let mut bin = Vec::new();
    load::write_binary(&g, &mut bin).unwrap();
    let mut group = c.benchmark_group("graph_io");
    group.bench_function("parse_adjacency_text", |b| {
        b.iter(|| std::hint::black_box(load::read_adjacency(text.as_slice()).unwrap().num_edges()))
    });
    group.bench_function("parse_binary", |b| {
        b.iter(|| std::hint::black_box(load::read_binary(bin.as_slice()).unwrap().num_edges()))
    });
    group.finish();
}

criterion_group!(benches, bench_jobs, bench_io);
criterion_main!(benches);
