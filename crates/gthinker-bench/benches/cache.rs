//! Criterion micro-benchmarks for the remote-vertex cache (`T_cache`,
//! §V-A): the OP1–OP4 operations, under one thread and under
//! contention.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gthinker_graph::adj::AdjList;
use gthinker_graph::ids::{TaskId, VertexId};
use gthinker_store::cache::{CacheConfig, RequestOutcome, VertexCache};
use std::sync::Arc;

fn seeded_cache(n: u32, buckets: usize) -> VertexCache {
    let cache = VertexCache::new(CacheConfig {
        num_buckets: buckets,
        capacity: 10_000_000,
        alpha: 0.2,
        counter_delta: 10,
        ..CacheConfig::default()
    });
    let mut h = cache.counter_handle();
    for i in 0..n {
        cache.request(VertexId(i), TaskId(0), &mut h);
        cache.insert_response(
            VertexId(i),
            AdjList::from_unsorted((0..8).map(|k| VertexId(i.wrapping_add(k) + 1)).collect()),
        );
        cache.release(VertexId(i));
    }
    cache
}

fn bench_hits(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_op1_hit");
    for &buckets in &[64usize, 10_000] {
        let cache = seeded_cache(10_000, buckets);
        let mut h = cache.counter_handle();
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::from_parameter(buckets), &buckets, |b, _| {
            let mut i = 0u32;
            b.iter(|| {
                let v = VertexId(i % 10_000);
                i = i.wrapping_add(1);
                match cache.request(v, TaskId(1), &mut h) {
                    RequestOutcome::Hit(adj) => {
                        std::hint::black_box(adj.degree());
                        cache.release(v);
                    }
                    _ => unreachable!("seeded"),
                }
            })
        });
    }
    group.finish();
}

fn bench_miss_cycle(c: &mut Criterion) {
    c.bench_function("cache_miss_response_release_evict", |b| {
        let cache = VertexCache::new(CacheConfig {
            num_buckets: 1024,
            capacity: 4,
            alpha: 0.0,
            counter_delta: 1,
            ..CacheConfig::default()
        });
        let mut h = cache.counter_handle();
        let mut i = 0u32;
        b.iter(|| {
            let v = VertexId(i);
            i = i.wrapping_add(1);
            assert!(matches!(cache.request(v, TaskId(2), &mut h), RequestOutcome::MustRequest));
            cache.insert_response(v, AdjList::from_unsorted(vec![VertexId(1)]));
            cache.release(v);
            cache.gc_pass(&mut h);
        })
    });
}

fn bench_contention(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_contended_hits");
    for &threads in &[2usize, 4] {
        let cache = Arc::new(seeded_cache(10_000, 10_000));
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| {
                std::thread::scope(|s| {
                    for tid in 0..t {
                        let cache = Arc::clone(&cache);
                        s.spawn(move || {
                            let mut h = cache.counter_handle();
                            for k in 0..2_000u32 {
                                let v = VertexId((tid as u32 * 7 + k * 13) % 10_000);
                                if let RequestOutcome::Hit(_) =
                                    cache.request(v, TaskId(tid as u64), &mut h)
                                {
                                    cache.release(v);
                                }
                            }
                        });
                    }
                });
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hits, bench_miss_cycle, bench_contention);
criterion_main!(benches);
