//! Criterion benchmarks for the serial miners and generators that
//! tasks run internally.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gthinker_apps::serial::clique::max_clique_above;
use gthinker_apps::serial::matching::{count_embeddings_from, Pattern};
use gthinker_apps::serial::triangle::count_triangles;
use gthinker_graph::gen;
use gthinker_graph::graph::Graph;
use gthinker_graph::ids::Label;
use gthinker_graph::subgraph::{LocalGraph, Subgraph};

fn to_local(g: &Graph) -> LocalGraph {
    let mut sg = Subgraph::new();
    for v in g.vertices() {
        match g.label(v) {
            Some(l) => sg.add_labeled_vertex(v, l, g.neighbors(v).clone()),
            None => sg.add_vertex(v, g.neighbors(v).clone()),
        };
    }
    sg.to_local()
}

fn bench_max_clique(c: &mut Criterion) {
    let mut group = c.benchmark_group("serial_max_clique");
    for &n in &[50usize, 100, 200] {
        let local = to_local(&gen::gnp(n, 0.3, n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| std::hint::black_box(max_clique_above(&local, 0).map(|c| c.len())))
        });
    }
    group.finish();
}

fn bench_triangles(c: &mut Criterion) {
    let mut group = c.benchmark_group("serial_triangles");
    for &n in &[2_000usize, 10_000] {
        let g = gen::barabasi_albert(n, 6, 1);
        group.throughput(Throughput::Elements(g.num_edges() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| std::hint::black_box(count_triangles(&g)))
        });
    }
    group.finish();
}

fn bench_matching(c: &mut Criterion) {
    let g = gen::random_labels(gen::barabasi_albert(2_000, 5, 2), 3, 9);
    let local = to_local(&g);
    let pattern = Pattern::triangle(Label(0), Label(1), Label(2));
    c.bench_function("serial_matching_all_anchors", |b| {
        b.iter(|| {
            let total: u64 = (0..local.num_vertices() as u32)
                .map(|a| count_embeddings_from(&local, &pattern, a))
                .sum();
            std::hint::black_box(total)
        })
    });
}

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.bench_function("barabasi_albert_10k_m5", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            std::hint::black_box(gen::barabasi_albert(10_000, 5, seed).num_edges())
        })
    });
    group.bench_function("gnp_10k_p0.001", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            std::hint::black_box(gen::gnp(10_000, 0.001, seed).num_edges())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_max_clique, bench_triangles, bench_matching, bench_generators);
criterion_main!(benches);
