//! Criterion benchmarks for the word-parallel bitset kernels against
//! the sorted-list kernels they replace on dense task subgraphs.
//!
//! The headline pair is `max_clique/bitset/200` vs `max_clique/lists/200`
//! on G(n = 200, p = 0.5) — the dense-core regime where tasks spend
//! their time — which the bitset kernel must win by ≥ 2×.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gthinker_apps::serial::clique::{max_clique_above_bitset, max_clique_above_lists};
use gthinker_apps::serial::maximal::count_maximal_cliques;
use gthinker_apps::serial::triangle::count_triangles_local;
use gthinker_graph::adj::count_intersect_sorted;
use gthinker_graph::bitset::{and_count, BitSet};
use gthinker_graph::gen;
use gthinker_graph::graph::Graph;
use gthinker_graph::ids::VertexId;
use gthinker_graph::subgraph::{LocalGraph, Subgraph};

fn snapshot(g: &Graph) -> Subgraph {
    let mut sg = Subgraph::new();
    for v in g.vertices() {
        sg.add_vertex(v, g.neighbors(v).clone());
    }
    sg
}

fn dense_and_sparse(n: usize, p: f64, seed: u64) -> (LocalGraph, LocalGraph) {
    let sg = snapshot(&gen::gnp(n, p, seed));
    (sg.to_local_with_threshold(usize::MAX), sg.to_local_with_threshold(0))
}

/// Set-intersection micro-kernel: AND-popcount over words vs the
/// sorted-merge count, on ~half-full sets of `n` elements.
fn bench_intersection(c: &mut Criterion) {
    let mut group = c.benchmark_group("intersect_count");
    for &n in &[256usize, 1024, 4096] {
        let a_ids: Vec<u32> = (0..n as u32).filter(|v| v % 2 == 0).collect();
        let b_ids: Vec<u32> = (0..n as u32).filter(|v| v % 3 != 0).collect();
        let mut a_bits = BitSet::new(n);
        let mut b_bits = BitSet::new(n);
        a_ids.iter().for_each(|&v| a_bits.insert(v));
        b_ids.iter().for_each(|&v| b_bits.insert(v));
        let a_sorted: Vec<VertexId> = a_ids.iter().map(|&v| VertexId(v)).collect();
        let b_sorted: Vec<VertexId> = b_ids.iter().map(|&v| VertexId(v)).collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("bitset", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(and_count(a_bits.words(), b_bits.words())))
        });
        group.bench_with_input(BenchmarkId::new("lists", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(count_intersect_sorted(&a_sorted, &b_sorted)))
        });
    }
    group.finish();
}

/// The acceptance-criterion pair: BBMC-style bitset maximum clique vs
/// the sorted-list solver on a dense G(200, 0.5).
fn bench_max_clique(c: &mut Criterion) {
    let mut group = c.benchmark_group("max_clique");
    group.sample_size(10);
    for &(n, p) in &[(100usize, 0.5f64), (200, 0.5)] {
        let (dense, sparse) = dense_and_sparse(n, p, n as u64);
        group.bench_with_input(BenchmarkId::new("bitset", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(max_clique_above_bitset(&dense, 0).map(|c| c.len())))
        });
        group.bench_with_input(BenchmarkId::new("lists", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(max_clique_above_lists(&sparse, 0).map(|c| c.len())))
        });
    }
    group.finish();
}

/// Maximal-clique enumeration (Bron–Kerbosch with pivoting), both paths.
fn bench_maximal(c: &mut Criterion) {
    let mut group = c.benchmark_group("maximal_cliques");
    group.sample_size(10);
    let (dense, sparse) = dense_and_sparse(120, 0.3, 11);
    group.bench_function("bitset", |b| {
        b.iter(|| std::hint::black_box(count_maximal_cliques(&dense)))
    });
    group.bench_function("lists", |b| {
        b.iter(|| std::hint::black_box(count_maximal_cliques(&sparse)))
    });
    group.finish();
}

/// Local triangle counting: masked AND-popcount vs suffix merges.
fn bench_triangles(c: &mut Criterion) {
    let mut group = c.benchmark_group("triangles_local");
    let (dense, sparse) = dense_and_sparse(400, 0.2, 5);
    group.bench_function("bitset", |b| {
        b.iter(|| std::hint::black_box(count_triangles_local(&dense)))
    });
    group.bench_function("lists", |b| {
        b.iter(|| std::hint::black_box(count_triangles_local(&sparse)))
    });
    group.finish();
}

criterion_group!(kernels, bench_intersection, bench_max_clique, bench_maximal, bench_triangles);
criterion_main!(kernels);
