//! Criterion micro-benchmarks for task management (§V-B): `Q_task`
//! push/pop, batch spilling to disk and refilling, and the codec the
//! spill path rides on.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gthinker_graph::adj::AdjList;
use gthinker_graph::ids::VertexId;
use gthinker_task::codec::{from_bytes, to_bytes};
use gthinker_task::queue::TaskQueue;
use gthinker_task::spill::SpillManager;
use gthinker_task::task::Task;

fn sample_task(i: u32) -> Task<Vec<VertexId>> {
    let mut t = Task::new(vec![VertexId(i)]);
    for k in 0..16u32 {
        t.subgraph.add_vertex(
            VertexId(i + k),
            AdjList::from_unsorted((0..8).map(|j| VertexId(i + k + j + 1)).collect()),
        );
    }
    t.pull(VertexId(i + 100));
    t
}

fn bench_queue_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue");
    group.throughput(Throughput::Elements(1));
    group.bench_function("push_pop_within_capacity", |b| {
        let mut q: TaskQueue<Vec<VertexId>> = TaskQueue::new(150);
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            if let Some(batch) = q.push(sample_task(i)) {
                std::hint::black_box(batch.len());
            }
            if q.len() > 200 {
                while let Some(t) = q.pop() {
                    std::hint::black_box(&t.context);
                }
            }
        })
    });
    group.finish();
}

fn bench_spill_refill(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("bench-spill-{}", std::process::id()));
    let spill = SpillManager::new(&dir).expect("spill dir");
    let batch: Vec<Task<Vec<VertexId>>> = (0..150).map(sample_task).collect();
    let mut group = c.benchmark_group("spill");
    group.throughput(Throughput::Elements(150));
    group.bench_function("spill_and_refill_batch_of_C", |b| {
        b.iter(|| {
            spill.spill(&batch).expect("spill");
            let back: Vec<Task<Vec<VertexId>>> =
                spill.refill().expect("refill io").expect("batch exists");
            std::hint::black_box(back.len());
        })
    });
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let task = sample_task(42);
    let bytes = to_bytes(&task);
    let mut group = c.benchmark_group("codec");
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("encode_task", |b| b.iter(|| std::hint::black_box(to_bytes(&task).len())));
    group.bench_function("decode_task", |b| {
        b.iter(|| {
            let t: Task<Vec<VertexId>> = from_bytes(&bytes).expect("round trip");
            std::hint::black_box(t.subgraph.num_vertices())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_queue_ops, bench_spill_refill, bench_codec);
criterion_main!(benches);
