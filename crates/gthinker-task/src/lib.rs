//! Task management for G-thinker — the second pillar of CPU-bound
//! execution (§V-B of the paper).
//!
//! Each comper thread owns three task containers:
//!
//! * [`TaskQueue`] (`Q_task`) — a bounded deque (capacity `3C`) the
//!   comper pops work from; overflow spills the newest `C` tasks to a
//!   batch file.
//! * [`PendingTable`] (`T_task`) — tasks suspended while waiting for
//!   pulled vertices, keyed by 64-bit task IDs.
//! * [`TaskBuffer`] (`B_task`) — a concurrent queue the response
//!   receiver moves newly-ready tasks into.
//!
//! The worker-wide [`SpillManager`] tracks spilled batch files
//! (`L_file`) shared by all compers and by the work stealer. Everything
//! that crosses a thread, disk or (simulated) machine boundary uses the
//! hand-rolled binary [`codec`].
//!
//! For the tail-latency scheduler, `Q_task` is shared as a
//! [`SharedTaskQueue`] so idle sibling compers can steal the newest
//! half, and idle threads park on a per-worker [`EventCount`] instead
//! of sleep-polling.

pub mod buffer;
pub mod codec;
pub mod park;
pub mod pending;
pub mod queue;
pub mod spill;
pub mod task;

pub use buffer::TaskBuffer;
pub use codec::{CodecError, Decode, Encode};
pub use park::EventCount;
pub use pending::PendingTable;
pub use queue::{SharedTaskQueue, TaskQueue, DEFAULT_BATCH};
pub use spill::SpillManager;
pub use task::{Frontier, Task};
