//! The per-comper task queue `Q_task` (§V-B).
//!
//! `Q_task` is a deque owned by exactly one comper (single-threaded
//! access by design — the response receiver never touches it, it goes
//! through `B_task` instead). It holds at most `3C` tasks; when full,
//! the **last `C` tasks** are spilled as one batch (sequential disk IO),
//! and whenever it drops to `≤ C` tasks the comper refills it back to
//! `2C` from spilled files, `B_task`, or fresh spawns — in that
//! priority order.

use crate::task::Task;

/// Default task-batch size `C` from the paper.
pub const DEFAULT_BATCH: usize = 150;

/// The bounded deque `Q_task`.
///
/// ```
/// use gthinker_task::queue::TaskQueue;
/// use gthinker_task::task::Task;
///
/// let mut q: TaskQueue<u32> = TaskQueue::new(2); // C = 2, capacity 6
/// for i in 0..6 {
///     assert!(q.push(Task::new(i)).is_none());
/// }
/// // The 7th push spills the newest C tasks as one batch.
/// let spilled = q.push(Task::new(6)).expect("overflow spills");
/// assert_eq!(spilled.len(), 2);
/// assert_eq!(q.len(), 5); // 2C + 1, per the paper
/// assert_eq!(q.pop().unwrap().context, 0); // FIFO head unchanged
/// ```
#[derive(Debug)]
pub struct TaskQueue<C> {
    deque: std::collections::VecDeque<Task<C>>,
    batch: usize,
}

impl<C> TaskQueue<C> {
    /// Creates a queue with batch size `batch` (`C`); capacity is
    /// `3 * batch`.
    pub fn new(batch: usize) -> Self {
        assert!(batch >= 1, "batch size must be positive");
        TaskQueue { deque: std::collections::VecDeque::with_capacity(3 * batch), batch }
    }

    /// The batch size `C`.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Queue capacity `3C`.
    pub fn capacity(&self) -> usize {
        3 * self.batch
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.deque.len()
    }

    /// True if no tasks are queued.
    pub fn is_empty(&self) -> bool {
        self.deque.is_empty()
    }

    /// True when the comper should refill (`|Q_task| ≤ C`).
    pub fn needs_refill(&self) -> bool {
        self.deque.len() <= self.batch
    }

    /// How many tasks a refill should add to reach `2C`.
    pub fn refill_amount(&self) -> usize {
        (2 * self.batch).saturating_sub(self.deque.len())
    }

    /// Appends a task. If the queue is at capacity, the last `C` tasks
    /// are removed and returned for the caller to spill to disk, after
    /// which the new task is appended (leaving `2C + 1` tasks).
    #[must_use = "a returned batch must be spilled, or tasks are lost"]
    pub fn push(&mut self, task: Task<C>) -> Option<Vec<Task<C>>> {
        let spilled = if self.deque.len() >= self.capacity() {
            let at = self.deque.len() - self.batch;
            Some(self.deque.split_off(at).into_iter().collect())
        } else {
            None
        };
        self.deque.push_back(task);
        spilled
    }

    /// Appends a refill batch (from a spilled file, `B_task`, or fresh
    /// spawns). Unlike [`TaskQueue::push`] this never spills — refill
    /// sizes are chosen via [`TaskQueue::refill_amount`] to fit.
    pub fn push_batch(&mut self, tasks: impl IntoIterator<Item = Task<C>>) {
        self.deque.extend(tasks);
    }

    /// Pops the oldest task (queue head).
    pub fn pop(&mut self) -> Option<Task<C>> {
        self.deque.pop_front()
    }

    /// Drains every queued task (checkpointing / shutdown).
    pub fn drain_all(&mut self) -> Vec<Task<C>> {
        self.deque.drain(..).collect()
    }

    /// Removes the newest `⌊len/2⌋` tasks for an intra-worker thief.
    ///
    /// The owner pops from the front (FIFO), so stealing from the back
    /// takes the *newest* tasks — the same end the overflow spill takes,
    /// preserving the paper's "oldest work drains first" discipline for
    /// the owner while handing thieves the work least likely to be hot
    /// in the owner's cache working set.
    pub fn steal_half(&mut self) -> Vec<Task<C>> {
        let take = self.deque.len() / 2;
        let at = self.deque.len() - take;
        self.deque.split_off(at).into_iter().collect()
    }
}

/// `Q_task` behind a mutex so sibling compers can steal from it
/// (tentpole layer 1 of the tail-latency scheduler).
///
/// The queue is still *owned* by one comper — only the owner pushes,
/// pops and refills — but idle siblings may call
/// [`SharedTaskQueue::steal_half`] to take the newest half. Contention
/// is negligible: the owner holds the lock for O(1) deque ops and
/// thieves only show up when they have nothing else to do.
///
/// A cached length lets the quiescence check and steal-victim selection
/// read `len()` without touching the mutex. The load is `Relaxed`: the
/// count is advisory (victim ranking, progress estimates), and the
/// quiescence protocol never relies on it being fresh — a comper sets
/// its `busy` flag (SeqCst) *before* draining its queue, so any task
/// not yet reflected in a stale `len()` read is covered by the flag of
/// the comper that holds or will take it.
#[derive(Debug)]
pub struct SharedTaskQueue<C> {
    inner: std::sync::Mutex<TaskQueue<C>>,
    len: std::sync::atomic::AtomicUsize,
    /// Copy of the inner batch size, readable without the lock.
    batch: usize,
}

impl<C> SharedTaskQueue<C> {
    /// Creates an empty shared queue with batch size `batch` (`C`).
    pub fn new(batch: usize) -> Self {
        SharedTaskQueue {
            inner: std::sync::Mutex::new(TaskQueue::new(batch)),
            len: std::sync::atomic::AtomicUsize::new(0),
            batch,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TaskQueue<C>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Publishes the length cache after a mutation. `Relaxed` suffices:
    /// see the type-level docs for why stale reads are harmless.
    fn set_len(&self, n: usize) {
        self.len.store(n, std::sync::atomic::Ordering::Relaxed);
    }

    /// Advisory current length (relaxed; may lag a concurrent steal).
    pub fn len(&self) -> usize {
        self.len.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Advisory emptiness check (relaxed, like [`SharedTaskQueue::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Owner-side push, preserving the C/3C overflow-spill contract of
    /// [`TaskQueue::push`]. Returns the spill batch plus the new length
    /// so the owner can decide whether to wake parked siblings.
    #[must_use = "a returned batch must be spilled, or tasks are lost"]
    pub fn push(&self, task: Task<C>) -> (Option<Vec<Task<C>>>, usize) {
        let mut q = self.lock();
        let spilled = q.push(task);
        let n = q.len();
        self.set_len(n);
        (spilled, n)
    }

    /// Owner-side refill append (never spills; see
    /// [`TaskQueue::push_batch`]). Returns the new length.
    pub fn push_batch(&self, tasks: impl IntoIterator<Item = Task<C>>) -> usize {
        let mut q = self.lock();
        q.push_batch(tasks);
        let n = q.len();
        self.set_len(n);
        n
    }

    /// Owner-side pop (FIFO head).
    pub fn pop(&self) -> Option<Task<C>> {
        let mut q = self.lock();
        let t = q.pop();
        self.set_len(q.len());
        t
    }

    /// True when the owner should refill (`|Q_task| ≤ C`).
    pub fn needs_refill(&self) -> bool {
        self.len() <= self.batch()
    }

    /// How many tasks a refill should add to reach `2C`.
    pub fn refill_amount(&self) -> usize {
        (2 * self.batch()).saturating_sub(self.len())
    }

    /// The batch size `C` (lock-free).
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Thief-side steal: takes the newest half if the queue still holds
    /// at least `min_len` tasks under the lock (the advisory `len()`
    /// the thief ranked victims by may be stale). Returns `None` when
    /// the victim turned out too small to be worth splitting.
    pub fn steal_half(&self, min_len: usize) -> Option<Vec<Task<C>>> {
        let mut q = self.lock();
        if q.len() < min_len.max(2) {
            return None;
        }
        let stolen = q.steal_half();
        self.set_len(q.len());
        Some(stolen)
    }

    /// Drains every queued task (checkpointing / shutdown).
    pub fn drain_all(&self) -> Vec<Task<C>> {
        let mut q = self.lock();
        let all = q.drain_all();
        self.set_len(0);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(n: u32) -> Task<u32> {
        Task::new(n)
    }

    #[test]
    fn fifo_order() {
        let mut q = TaskQueue::new(10);
        assert!(q.push(task(1)).is_none());
        assert!(q.push(task(2)).is_none());
        assert_eq!(q.pop().unwrap().context, 1);
        assert_eq!(q.pop().unwrap().context, 2);
        assert!(q.pop().is_none());
    }

    #[test]
    fn spills_last_batch_when_full() {
        let c = 5;
        let mut q = TaskQueue::new(c);
        for i in 0..(3 * c as u32) {
            assert!(q.push(task(i)).is_none());
        }
        assert_eq!(q.len(), 15);
        let spilled = q.push(task(100)).expect("16th push must spill");
        assert_eq!(spilled.len(), c, "spills exactly C tasks");
        // Spilled tasks are the *newest* C before the overflow push.
        let ids: Vec<u32> = spilled.iter().map(|t| t.context).collect();
        assert_eq!(ids, vec![10, 11, 12, 13, 14]);
        assert_eq!(q.len(), 2 * c + 1, "paper: |Q_task| = 2C + 1 after spill");
        // Head order unchanged.
        assert_eq!(q.pop().unwrap().context, 0);
    }

    #[test]
    fn refill_thresholds() {
        let mut q = TaskQueue::new(4);
        assert!(q.needs_refill(), "empty queue needs refill");
        assert_eq!(q.refill_amount(), 8);
        q.push_batch((0..6).map(task));
        assert!(!q.needs_refill(), "6 > C = 4");
        assert_eq!(q.refill_amount(), 2);
        q.pop();
        q.pop();
        assert!(q.needs_refill(), "4 ≤ C");
        assert_eq!(q.refill_amount(), 4);
    }

    #[test]
    fn drain_empties_queue() {
        let mut q = TaskQueue::new(3);
        q.push_batch((0..5).map(task));
        let all = q.drain_all();
        assert_eq!(all.len(), 5);
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_rejected() {
        let _: TaskQueue<u32> = TaskQueue::new(0);
    }

    #[test]
    fn steal_half_takes_newest() {
        let mut q = TaskQueue::new(4);
        q.push_batch((0..7).map(task));
        let stolen = q.steal_half();
        let ids: Vec<u32> = stolen.iter().map(|t| t.context).collect();
        assert_eq!(ids, vec![4, 5, 6], "thief gets the newest ⌊7/2⌋ = 3");
        assert_eq!(q.len(), 4);
        assert_eq!(q.pop().unwrap().context, 0, "owner's FIFO head untouched");
    }

    #[test]
    fn shared_queue_push_pop_and_len() {
        let q: SharedTaskQueue<u32> = SharedTaskQueue::new(3);
        assert!(q.is_empty());
        let (spill, n) = q.push(task(7));
        assert!(spill.is_none());
        assert_eq!(n, 1);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().context, 7);
        assert!(q.pop().is_none());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn shared_queue_preserves_spill_contract() {
        let c = 3;
        let q: SharedTaskQueue<u32> = SharedTaskQueue::new(c);
        for i in 0..(3 * c as u32) {
            let (spill, _) = q.push(task(i));
            assert!(spill.is_none());
        }
        let (spill, n) = q.push(task(100));
        let spill = spill.expect("overflow push spills newest C");
        assert_eq!(spill.len(), c);
        assert_eq!(n, 2 * c + 1, "paper: |Q_task| = 2C + 1 after spill");
        assert_eq!(q.len(), 2 * c + 1);
    }

    #[test]
    fn shared_queue_steal_half() {
        let q: SharedTaskQueue<u32> = SharedTaskQueue::new(4);
        q.push_batch((0..8).map(task));
        let stolen = q.steal_half(2).expect("8 ≥ 2");
        assert_eq!(stolen.len(), 4);
        assert_eq!(q.len(), 4);
        // Thief sees newest tasks; owner keeps FIFO head.
        assert_eq!(stolen[0].context, 4);
        assert_eq!(q.pop().unwrap().context, 0);
    }

    #[test]
    fn shared_queue_steal_respects_min_len() {
        let q: SharedTaskQueue<u32> = SharedTaskQueue::new(4);
        q.push_batch((0..3).map(task));
        assert!(q.steal_half(4).is_none(), "victim shrank below min_len");
        assert_eq!(q.len(), 3, "refused steal leaves the queue intact");
        // min_len below 2 is clamped: stealing from a 1-task queue
        // would take 0 tasks and busy-loop the thief.
        let q1: SharedTaskQueue<u32> = SharedTaskQueue::new(4);
        q1.push_batch((0..1).map(task));
        assert!(q1.steal_half(0).is_none());
    }

    #[test]
    fn shared_queue_concurrent_steal_loses_nothing() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        const TOTAL: usize = 4000;
        let q: Arc<SharedTaskQueue<u32>> = Arc::new(SharedTaskQueue::new(2000));
        q.push_batch((0..TOTAL as u32).map(task));
        let taken = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let q = Arc::clone(&q);
            let taken = Arc::clone(&taken);
            handles.push(std::thread::spawn(move || {
                while let Some(batch) = q.steal_half(2) {
                    taken.fetch_add(batch.len(), Ordering::SeqCst);
                }
            }));
        }
        let mut popped = 0;
        while q.pop().is_some() {
            popped += 1;
        }
        for h in handles {
            h.join().unwrap();
        }
        // Stragglers the owner raced past.
        while q.pop().is_some() {
            popped += 1;
        }
        assert_eq!(popped + taken.load(Ordering::SeqCst), TOTAL);
        assert_eq!(q.len(), 0);
    }
}
