//! The per-comper task queue `Q_task` (§V-B).
//!
//! `Q_task` is a deque owned by exactly one comper (single-threaded
//! access by design — the response receiver never touches it, it goes
//! through `B_task` instead). It holds at most `3C` tasks; when full,
//! the **last `C` tasks** are spilled as one batch (sequential disk IO),
//! and whenever it drops to `≤ C` tasks the comper refills it back to
//! `2C` from spilled files, `B_task`, or fresh spawns — in that
//! priority order.

use crate::task::Task;

/// Default task-batch size `C` from the paper.
pub const DEFAULT_BATCH: usize = 150;

/// The bounded deque `Q_task`.
///
/// ```
/// use gthinker_task::queue::TaskQueue;
/// use gthinker_task::task::Task;
///
/// let mut q: TaskQueue<u32> = TaskQueue::new(2); // C = 2, capacity 6
/// for i in 0..6 {
///     assert!(q.push(Task::new(i)).is_none());
/// }
/// // The 7th push spills the newest C tasks as one batch.
/// let spilled = q.push(Task::new(6)).expect("overflow spills");
/// assert_eq!(spilled.len(), 2);
/// assert_eq!(q.len(), 5); // 2C + 1, per the paper
/// assert_eq!(q.pop().unwrap().context, 0); // FIFO head unchanged
/// ```
#[derive(Debug)]
pub struct TaskQueue<C> {
    deque: std::collections::VecDeque<Task<C>>,
    batch: usize,
}

impl<C> TaskQueue<C> {
    /// Creates a queue with batch size `batch` (`C`); capacity is
    /// `3 * batch`.
    pub fn new(batch: usize) -> Self {
        assert!(batch >= 1, "batch size must be positive");
        TaskQueue { deque: std::collections::VecDeque::with_capacity(3 * batch), batch }
    }

    /// The batch size `C`.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Queue capacity `3C`.
    pub fn capacity(&self) -> usize {
        3 * self.batch
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.deque.len()
    }

    /// True if no tasks are queued.
    pub fn is_empty(&self) -> bool {
        self.deque.is_empty()
    }

    /// True when the comper should refill (`|Q_task| ≤ C`).
    pub fn needs_refill(&self) -> bool {
        self.deque.len() <= self.batch
    }

    /// How many tasks a refill should add to reach `2C`.
    pub fn refill_amount(&self) -> usize {
        (2 * self.batch).saturating_sub(self.deque.len())
    }

    /// Appends a task. If the queue is at capacity, the last `C` tasks
    /// are removed and returned for the caller to spill to disk, after
    /// which the new task is appended (leaving `2C + 1` tasks).
    #[must_use = "a returned batch must be spilled, or tasks are lost"]
    pub fn push(&mut self, task: Task<C>) -> Option<Vec<Task<C>>> {
        let spilled = if self.deque.len() >= self.capacity() {
            let at = self.deque.len() - self.batch;
            Some(self.deque.split_off(at).into_iter().collect())
        } else {
            None
        };
        self.deque.push_back(task);
        spilled
    }

    /// Appends a refill batch (from a spilled file, `B_task`, or fresh
    /// spawns). Unlike [`TaskQueue::push`] this never spills — refill
    /// sizes are chosen via [`TaskQueue::refill_amount`] to fit.
    pub fn push_batch(&mut self, tasks: impl IntoIterator<Item = Task<C>>) {
        self.deque.extend(tasks);
    }

    /// Pops the oldest task (queue head).
    pub fn pop(&mut self) -> Option<Task<C>> {
        self.deque.pop_front()
    }

    /// Drains every queued task (checkpointing / shutdown).
    pub fn drain_all(&mut self) -> Vec<Task<C>> {
        self.deque.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(n: u32) -> Task<u32> {
        Task::new(n)
    }

    #[test]
    fn fifo_order() {
        let mut q = TaskQueue::new(10);
        assert!(q.push(task(1)).is_none());
        assert!(q.push(task(2)).is_none());
        assert_eq!(q.pop().unwrap().context, 1);
        assert_eq!(q.pop().unwrap().context, 2);
        assert!(q.pop().is_none());
    }

    #[test]
    fn spills_last_batch_when_full() {
        let c = 5;
        let mut q = TaskQueue::new(c);
        for i in 0..(3 * c as u32) {
            assert!(q.push(task(i)).is_none());
        }
        assert_eq!(q.len(), 15);
        let spilled = q.push(task(100)).expect("16th push must spill");
        assert_eq!(spilled.len(), c, "spills exactly C tasks");
        // Spilled tasks are the *newest* C before the overflow push.
        let ids: Vec<u32> = spilled.iter().map(|t| t.context).collect();
        assert_eq!(ids, vec![10, 11, 12, 13, 14]);
        assert_eq!(q.len(), 2 * c + 1, "paper: |Q_task| = 2C + 1 after spill");
        // Head order unchanged.
        assert_eq!(q.pop().unwrap().context, 0);
    }

    #[test]
    fn refill_thresholds() {
        let mut q = TaskQueue::new(4);
        assert!(q.needs_refill(), "empty queue needs refill");
        assert_eq!(q.refill_amount(), 8);
        q.push_batch((0..6).map(task));
        assert!(!q.needs_refill(), "6 > C = 4");
        assert_eq!(q.refill_amount(), 2);
        q.pop();
        q.pop();
        assert!(q.needs_refill(), "4 ≤ C");
        assert_eq!(q.refill_amount(), 4);
    }

    #[test]
    fn drain_empties_queue() {
        let mut q = TaskQueue::new(3);
        q.push_batch((0..5).map(task));
        let all = q.drain_all();
        assert_eq!(all.len(), 5);
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_rejected() {
        let _: TaskQueue<u32> = TaskQueue::new(0);
    }
}
