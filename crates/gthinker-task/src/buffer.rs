//! The ready-task buffer `B_task` (§V-B).
//!
//! `Q_task` is single-owner by design (its comper refills the head and
//! spills the tail). When the **response-receiving thread** finds that a
//! pending task's last awaited vertex arrived, it cannot touch `Q_task`;
//! it appends the task to this concurrent buffer instead, and the owning
//! comper drains it during `push()` rounds.

use crate::task::Task;
use crossbeam::queue::SegQueue;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A multi-producer (receiver threads), single-consumer (the owning
/// comper) ready-task buffer.
pub struct TaskBuffer<C> {
    queue: SegQueue<Task<C>>,
    len: AtomicUsize,
}

impl<C> TaskBuffer<C> {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        TaskBuffer { queue: SegQueue::new(), len: AtomicUsize::new(0) }
    }

    /// Appends a task that became ready.
    pub fn push(&self, task: Task<C>) {
        self.queue.push(task);
        self.len.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes one ready task, if any.
    pub fn pop(&self) -> Option<Task<C>> {
        let t = self.queue.pop();
        if t.is_some() {
            self.len.fetch_sub(1, Ordering::Relaxed);
        }
        t
    }

    /// Approximate number of buffered tasks (used in the `|T_task| +
    /// |B_task| ≤ D` gate).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// True when no ready task waits.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains all buffered tasks (checkpointing / shutdown).
    pub fn drain(&self) -> Vec<Task<C>> {
        let mut out = Vec::new();
        while let Some(t) = self.pop() {
            out.push(t);
        }
        out
    }
}

impl<C> Default for TaskBuffer<C> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_fifo() {
        let b: TaskBuffer<u32> = TaskBuffer::new();
        b.push(Task::new(1));
        b.push(Task::new(2));
        assert_eq!(b.len(), 2);
        assert_eq!(b.pop().unwrap().context, 1);
        assert_eq!(b.pop().unwrap().context, 2);
        assert!(b.pop().is_none());
        assert!(b.is_empty());
    }

    #[test]
    fn drain_returns_everything() {
        let b: TaskBuffer<u32> = TaskBuffer::new();
        for i in 0..7 {
            b.push(Task::new(i));
        }
        let all = b.drain();
        assert_eq!(all.len(), 7);
        assert!(b.is_empty());
    }

    #[test]
    fn concurrent_producers_single_consumer() {
        let b: Arc<TaskBuffer<u32>> = Arc::new(TaskBuffer::new());
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    for i in 0..1_000u32 {
                        b.push(Task::new(p * 10_000 + i));
                    }
                })
            })
            .collect();
        for t in producers {
            t.join().unwrap();
        }
        let mut seen: Vec<u32> = Vec::new();
        while let Some(t) = b.pop() {
            seen.push(t.context);
        }
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 4_000, "all pushed tasks observed exactly once");
    }
}
