//! Spilled-task files and the machine-wide file list `L_file` (§V-B).
//!
//! When a comper's `Q_task` overflows, the last `C` tasks are written as
//! one batch file (sequential IO); the file's path is appended to the
//! worker's shared `L_file` list. Refills pop files FIFO, which
//! prioritizes the earliest-spilled (and typically partially-processed)
//! tasks, keeping the disk-resident task volume minimal — the property
//! the paper credits for G-thinker's negligible disk usage, in contrast
//! to G-Miner's ever-growing disk queue.
//!
//! Work stealing reuses the same representation: a stolen batch travels
//! as the raw bytes of one spill file and is appended to the thief's
//! `L_file`.

use crate::codec::{from_bytes, to_bytes, Decode, Encode};
use crate::task::Task;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// The spill directory plus the concurrent file list `L_file`.
pub struct SpillManager {
    dir: PathBuf,
    files: Mutex<VecDeque<PathBuf>>,
    next_file: AtomicU64,
    bytes_spilled: AtomicU64,
    bytes_refilled: AtomicU64,
}

impl SpillManager {
    /// Creates a manager writing batch files under `dir` (created if
    /// missing).
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(SpillManager {
            dir,
            files: Mutex::new(VecDeque::new()),
            next_file: AtomicU64::new(0),
            bytes_spilled: AtomicU64::new(0),
            bytes_refilled: AtomicU64::new(0),
        })
    }

    /// Number of batch files currently on disk.
    pub fn num_files(&self) -> usize {
        self.files.lock().len()
    }

    /// True when no spilled batches exist.
    pub fn is_empty(&self) -> bool {
        self.files.lock().is_empty()
    }

    /// Total bytes ever spilled (monotonic; for the disk-usage report).
    pub fn bytes_spilled(&self) -> u64 {
        self.bytes_spilled.load(Ordering::Relaxed)
    }

    /// Total bytes ever refilled (monotonic).
    pub fn bytes_refilled(&self) -> u64 {
        self.bytes_refilled.load(Ordering::Relaxed)
    }

    /// Writes `tasks` as one batch file and appends it to `L_file`.
    pub fn spill<C: Encode>(&self, tasks: &[Task<C>]) -> io::Result<()> {
        let bytes = to_bytes(&tasks.iter().collect::<TaskBatchRef<'_, C>>());
        self.push_file_bytes(bytes)
    }

    /// Pops the oldest batch file, decodes its tasks and deletes it.
    /// Returns `None` when `L_file` is empty.
    pub fn refill<C: Decode>(&self) -> io::Result<Option<Vec<Task<C>>>> {
        let Some(bytes) = self.pop_file_bytes()? else {
            return Ok(None);
        };
        let batch: Vec<Task<C>> = from_bytes(&bytes)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        Ok(Some(batch))
    }

    /// Appends a pre-encoded batch (stolen from another worker) to
    /// `L_file`.
    pub fn push_file_bytes(&self, bytes: Vec<u8>) -> io::Result<()> {
        let id = self.next_file.fetch_add(1, Ordering::Relaxed);
        let path = self.dir.join(format!("batch-{id:08}.tasks"));
        std::fs::write(&path, &bytes)?;
        self.bytes_spilled.fetch_add(bytes.len() as u64, Ordering::Relaxed);
        self.files.lock().push_back(path);
        Ok(())
    }

    /// Pops the oldest batch file and returns its raw bytes (for refill
    /// or for handing to a stealing worker), deleting the file.
    pub fn pop_file_bytes(&self) -> io::Result<Option<Vec<u8>>> {
        let path = {
            let mut files = self.files.lock();
            match files.pop_front() {
                Some(p) => p,
                None => return Ok(None),
            }
        };
        let bytes = std::fs::read(&path)?;
        std::fs::remove_file(&path)?;
        self.bytes_refilled.fetch_add(bytes.len() as u64, Ordering::Relaxed);
        Ok(Some(bytes))
    }

    /// Removes every remaining batch file (job teardown).
    pub fn clear(&self) -> io::Result<()> {
        let mut files = self.files.lock();
        for path in files.drain(..) {
            std::fs::remove_file(path)?;
        }
        Ok(())
    }
}

/// Helper that encodes a slice of task references with a length prefix
/// compatible with `Vec<Task<C>>` decoding.
struct TaskBatchRef<'a, C> {
    tasks: Vec<&'a Task<C>>,
}

impl<'a, C> FromIterator<&'a Task<C>> for TaskBatchRef<'a, C> {
    fn from_iter<T: IntoIterator<Item = &'a Task<C>>>(iter: T) -> Self {
        TaskBatchRef { tasks: iter.into_iter().collect() }
    }
}

impl<C: Encode> Encode for TaskBatchRef<'_, C> {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.tasks.len() as u64).encode(buf);
        for t in &self.tasks {
            t.encode(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gthinker_graph::adj::AdjList;
    use gthinker_graph::ids::VertexId;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "gthinker-spill-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn task(n: u32) -> Task<u32> {
        let mut t = Task::new(n);
        t.subgraph.add_vertex(VertexId(n), AdjList::from_unsorted(vec![VertexId(n + 1)]));
        t.pull(VertexId(n + 1));
        t
    }

    #[test]
    fn spill_and_refill_round_trip() {
        let m = SpillManager::new(tempdir("rt")).unwrap();
        let batch: Vec<Task<u32>> = (0..10).map(task).collect();
        m.spill(&batch).unwrap();
        assert_eq!(m.num_files(), 1);
        let back: Vec<Task<u32>> = m.refill().unwrap().unwrap();
        assert_eq!(back.len(), 10);
        for (i, t) in back.iter().enumerate() {
            assert_eq!(t.context, i as u32);
            assert!(t.subgraph.contains(VertexId(i as u32)));
            assert_eq!(t.pending_pulls(), &[VertexId(i as u32 + 1)]);
        }
        assert!(m.is_empty());
        assert!(m.bytes_spilled() > 0);
        assert_eq!(m.bytes_spilled(), m.bytes_refilled());
    }

    #[test]
    fn files_pop_fifo() {
        let m = SpillManager::new(tempdir("fifo")).unwrap();
        m.spill(&[task(1)]).unwrap();
        m.spill(&[task(2)]).unwrap();
        let first: Vec<Task<u32>> = m.refill().unwrap().unwrap();
        assert_eq!(first[0].context, 1, "oldest batch first");
        let second: Vec<Task<u32>> = m.refill().unwrap().unwrap();
        assert_eq!(second[0].context, 2);
        let none: Option<Vec<Task<u32>>> = m.refill().unwrap();
        assert!(none.is_none());
    }

    #[test]
    fn raw_bytes_transfer_models_stealing() {
        let victim = SpillManager::new(tempdir("victim")).unwrap();
        let thief = SpillManager::new(tempdir("thief")).unwrap();
        victim.spill(&[task(7), task(8)]).unwrap();
        let bytes = victim.pop_file_bytes().unwrap().unwrap();
        thief.push_file_bytes(bytes).unwrap();
        assert!(victim.is_empty());
        let stolen: Vec<Task<u32>> = thief.refill().unwrap().unwrap();
        assert_eq!(stolen.len(), 2);
        assert_eq!(stolen[1].context, 8);
    }

    #[test]
    fn clear_removes_files_from_disk() {
        let dir = tempdir("clear");
        let m = SpillManager::new(&dir).unwrap();
        m.spill(&[task(1)]).unwrap();
        m.clear().unwrap();
        assert!(m.is_empty());
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
    }

    #[test]
    fn files_are_deleted_after_refill() {
        let dir = tempdir("del");
        let m = SpillManager::new(&dir).unwrap();
        m.spill(&[task(1)]).unwrap();
        let _: Vec<Task<u32>> = m.refill().unwrap().unwrap();
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
    }

    #[test]
    fn concurrent_spill_refill_preserves_all_tasks() {
        let m = std::sync::Arc::new(SpillManager::new(tempdir("conc")).unwrap());
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let m = std::sync::Arc::clone(&m);
                std::thread::spawn(move || {
                    for i in 0..50u32 {
                        m.spill(&[task(w * 1000 + i)]).unwrap();
                    }
                })
            })
            .collect();
        for t in writers {
            t.join().unwrap();
        }
        let mut seen = Vec::new();
        while let Some(batch) = m.refill::<u32>().unwrap() {
            seen.extend(batch.into_iter().map(|t| t.context));
        }
        seen.sort_unstable();
        assert_eq!(seen.len(), 200);
        seen.dedup();
        assert_eq!(seen.len(), 200, "no duplicate or lost tasks");
    }
}
