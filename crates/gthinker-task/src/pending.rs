//! The pending-task table `T_task` (§V-B).
//!
//! A task that pulled vertices not yet locally available is *pending*:
//! its comper parks it here under a fresh 64-bit [`TaskId`] (16-bit
//! comper | 48-bit sequence). The table entry records `req(t)` — how
//! many pulled vertices the task waits for — and `met(t)` — how many
//! have arrived. The response-receiving thread looks the comper up from
//! the task ID, increments `met(t)`, and when `met(t) = req(t)` removes
//! the task and moves it to that comper's `B_task`.
//!
//! The table is shared between exactly one comper (inserts) and the
//! receiver threads (notifications), so a single mutex per comper
//! suffices — contention is inherently low.

use crate::task::Task;
use gthinker_graph::hash::FastMap;
use gthinker_graph::ids::TaskId;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

struct PendingEntry<C> {
    task: Task<C>,
    met: u32,
    req: u32,
}

struct Inner<C> {
    entries: FastMap<TaskId, PendingEntry<C>>,
    /// Notifications that arrived before their task was parked. The
    /// comper registers a task in the vertex cache's R-tables *before*
    /// inserting it here, so a fast response (served by another thread
    /// the instant a request batch flushes) can race the insert; these
    /// early arrivals are buffered and reconciled at insert time —
    /// otherwise the wakeup is lost and the task pends forever.
    early: FastMap<TaskId, u32>,
}

/// One comper's pending-task table.
pub struct PendingTable<C> {
    inner: Mutex<Inner<C>>,
    len: AtomicUsize,
}

impl<C> PendingTable<C> {
    /// Creates an empty table.
    pub fn new() -> Self {
        PendingTable {
            inner: Mutex::new(Inner { entries: FastMap::default(), early: FastMap::default() }),
            len: AtomicUsize::new(0),
        }
    }

    /// Parks `task` under `id`, waiting for `req` vertices of which
    /// `met` are already satisfied. If responses raced ahead of the
    /// insert (see [`PendingTable::notify`]), they are credited now;
    /// when they already complete the task, it is returned instead of
    /// parked and the caller must schedule it as ready.
    ///
    /// # Panics
    /// Panics if `met >= req` (such a task is ready and must not be
    /// parked) or if `id` is already present.
    #[must_use = "a returned task is ready and must be scheduled"]
    pub fn insert(&self, id: TaskId, task: Task<C>, req: u32, met: u32) -> Option<Task<C>> {
        assert!(met < req, "a task with met >= req is ready, not pending");
        let mut inner = self.inner.lock();
        let early = inner.early.remove(&id).unwrap_or(0);
        let met = met + early;
        debug_assert!(met <= req, "more early notifications than requests");
        if met >= req {
            return Some(task);
        }
        let prev = inner.entries.insert(id, PendingEntry { task, met, req });
        assert!(prev.is_none(), "duplicate pending task id {id}");
        self.len.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Records the arrival of one awaited vertex for task `id`. Returns
    /// the task when it became ready (the caller then pushes it to
    /// `B_task`). Arrivals for a task not parked yet are buffered and
    /// credited when [`PendingTable::insert`] runs.
    pub fn notify(&self, id: TaskId) -> Option<Task<C>> {
        let mut inner = self.inner.lock();
        let Some(entry) = inner.entries.get_mut(&id) else {
            *inner.early.entry(id).or_insert(0) += 1;
            return None;
        };
        entry.met += 1;
        debug_assert!(entry.met <= entry.req, "more notifications than requests");
        if entry.met == entry.req {
            let entry = inner.entries.remove(&id).expect("entry just seen");
            self.len.fetch_sub(1, Ordering::Relaxed);
            Some(entry.task)
        } else {
            None
        }
    }

    /// Number of pending tasks (used in the `|T_task| + |B_task| ≤ D`
    /// gate).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes and returns every pending task (checkpointing: pending
    /// tasks are re-queued so they re-request their vertices after
    /// restart, because `T_cache` starts cold).
    pub fn drain(&self) -> Vec<Task<C>> {
        let mut inner = self.inner.lock();
        let tasks: Vec<Task<C>> = inner.entries.drain().map(|(_, e)| e.task).collect();
        inner.early.clear();
        self.len.store(0, Ordering::Relaxed);
        tasks
    }
}

impl<C> Default for PendingTable<C> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn becomes_ready_after_req_notifications() {
        let t: PendingTable<u32> = PendingTable::new();
        assert!(t.insert(TaskId(1), Task::new(42), 3, 0).is_none());
        assert_eq!(t.len(), 1);
        assert!(t.notify(TaskId(1)).is_none());
        assert!(t.notify(TaskId(1)).is_none());
        let ready = t.notify(TaskId(1)).expect("third arrival completes");
        assert_eq!(ready.context, 42);
        assert!(t.is_empty());
    }

    #[test]
    fn partially_met_insert() {
        let t: PendingTable<u32> = PendingTable::new();
        // 2 of 3 pulls were already cached at park time.
        assert!(t.insert(TaskId(9), Task::new(7), 3, 2).is_none());
        let ready = t.notify(TaskId(9)).expect("one arrival completes");
        assert_eq!(ready.context, 7);
    }

    #[test]
    fn unknown_ids_ignored() {
        let t: PendingTable<u32> = PendingTable::new();
        assert!(t.notify(TaskId(123)).is_none());
    }

    #[test]
    fn early_notifications_credit_at_insert() {
        let t: PendingTable<u32> = PendingTable::new();
        // Responses race ahead of the park: 2 of 3 awaited vertices
        // arrive before insert.
        assert!(t.notify(TaskId(5)).is_none());
        assert!(t.notify(TaskId(5)).is_none());
        assert!(t.insert(TaskId(5), Task::new(50), 3, 0).is_none());
        assert_eq!(t.len(), 1);
        let ready = t.notify(TaskId(5)).expect("third arrival completes");
        assert_eq!(ready.context, 50);
    }

    #[test]
    fn fully_early_task_returned_ready_at_insert() {
        let t: PendingTable<u32> = PendingTable::new();
        // Every awaited response landed before the park.
        t.notify(TaskId(7));
        t.notify(TaskId(7));
        let ready = t.insert(TaskId(7), Task::new(70), 2, 0).expect("already complete");
        assert_eq!(ready.context, 70);
        assert!(t.is_empty());
        // The early credit was consumed.
        assert!(t.notify(TaskId(7)).is_none());
    }

    #[test]
    fn drain_returns_pending_tasks() {
        let t: PendingTable<u32> = PendingTable::new();
        let _ = t.insert(TaskId(1), Task::new(1), 2, 0);
        let _ = t.insert(TaskId(2), Task::new(2), 5, 1);
        let drained = t.drain();
        assert_eq!(drained.len(), 2);
        assert!(t.is_empty());
        assert!(t.notify(TaskId(1)).is_none(), "drained tasks no longer notifiable");
    }

    #[test]
    #[should_panic(expected = "ready, not pending")]
    fn ready_task_rejected() {
        let t: PendingTable<u32> = PendingTable::new();
        let _ = t.insert(TaskId(1), Task::new(1), 2, 2);
    }

    #[test]
    #[should_panic(expected = "duplicate pending task id")]
    fn duplicate_id_rejected() {
        let t: PendingTable<u32> = PendingTable::new();
        let _ = t.insert(TaskId(1), Task::new(1), 2, 0);
        let _ = t.insert(TaskId(1), Task::new(2), 2, 0);
    }

    #[test]
    fn concurrent_notifications_release_each_task_once() {
        let t: std::sync::Arc<PendingTable<u32>> = std::sync::Arc::new(PendingTable::new());
        // 100 tasks each waiting for 4 vertices.
        for i in 0..100u64 {
            assert!(t.insert(TaskId(i), Task::new(i as u32), 4, 0).is_none());
        }
        let released = std::sync::Arc::new(AtomicUsize::new(0));
        // 4 receiver threads each notify every task once.
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let t = std::sync::Arc::clone(&t);
                let released = std::sync::Arc::clone(&released);
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        if t.notify(TaskId(i)).is_some() {
                            released.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(released.load(Ordering::Relaxed), 100, "each task released exactly once");
        assert!(t.is_empty());
    }
}
