//! A small, auditable binary codec.
//!
//! Tasks are spilled to disk in batches, shipped between workers by the
//! work stealer, and written into checkpoints — all of which require a
//! stable byte representation. Rather than pulling in a serialization
//! framework, this module defines two tiny traits ([`Encode`],
//! [`Decode`]) with little-endian fixed-width primitives and
//! length-prefixed containers, implemented for the graph vocabulary
//! types. Round-tripping is bit-exact (property-tested).

use bytes::{Buf, BufMut};
use gthinker_graph::adj::AdjList;
use gthinker_graph::ids::{Label, TaskId, VertexId, WorkerId};
use gthinker_graph::subgraph::Subgraph;

/// Errors produced while decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the value was complete.
    UnexpectedEof,
    /// A structurally invalid encoding (bad tag, length overflow...).
    Invalid(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of buffer"),
            CodecError::Invalid(what) => write!(f, "invalid encoding: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Serializes a value onto a byte buffer.
pub trait Encode {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);
}

/// Deserializes a value from a byte buffer, advancing it.
pub trait Decode: Sized {
    /// Reads one value from the front of `buf`.
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError>;
}

#[inline]
fn need(buf: &&[u8], n: usize) -> Result<(), CodecError> {
    if buf.remaining() < n {
        Err(CodecError::UnexpectedEof)
    } else {
        Ok(())
    }
}

macro_rules! impl_prim {
    ($ty:ty, $put:ident, $get:ident) => {
        impl Encode for $ty {
            #[inline]
            fn encode(&self, buf: &mut Vec<u8>) {
                buf.$put(*self);
            }
        }
        impl Decode for $ty {
            #[inline]
            fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
                need(buf, std::mem::size_of::<$ty>())?;
                Ok(buf.$get())
            }
        }
    };
}

impl_prim!(u8, put_u8, get_u8);
impl_prim!(u16, put_u16_le, get_u16_le);
impl_prim!(u32, put_u32_le, get_u32_le);
impl_prim!(u64, put_u64_le, get_u64_le);
impl_prim!(i64, put_i64_le, get_i64_le);
impl_prim!(f64, put_f64_le, get_f64_le);

impl Encode for bool {
    #[inline]
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.put_u8(*self as u8);
    }
}

impl Decode for bool {
    #[inline]
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        match u8::decode(buf)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Invalid("bool tag")),
        }
    }
}

impl Encode for usize {
    #[inline]
    fn encode(&self, buf: &mut Vec<u8>) {
        (*self as u64).encode(buf);
    }
}

impl Decode for usize {
    #[inline]
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        let v = u64::decode(buf)?;
        usize::try_from(v).map_err(|_| CodecError::Invalid("usize overflow"))
    }
}

impl Encode for VertexId {
    #[inline]
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
}

impl Decode for VertexId {
    #[inline]
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(VertexId(u32::decode(buf)?))
    }
}

impl Encode for WorkerId {
    #[inline]
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
}

impl Decode for WorkerId {
    #[inline]
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(WorkerId(u16::decode(buf)?))
    }
}

impl Encode for Label {
    #[inline]
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
}

impl Decode for Label {
    #[inline]
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(Label(u16::decode(buf)?))
    }
}

impl Encode for TaskId {
    #[inline]
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
}

impl Decode for TaskId {
    #[inline]
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(TaskId(u64::decode(buf)?))
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u64).encode(buf);
        for item in self {
            item.encode(buf);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        let len = u64::decode(buf)? as usize;
        // Sanity bound: one byte minimum per element prevents huge
        // pre-allocations from corrupt lengths.
        if len > buf.remaining() {
            return Err(CodecError::Invalid("vec length exceeds buffer"));
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(buf)?);
        }
        Ok(out)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.put_u8(0),
            Some(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        match u8::decode(buf)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            _ => Err(CodecError::Invalid("option tag")),
        }
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        Ok((A::decode(buf)?, B::decode(buf)?))
    }
}

impl<A: Encode, B: Encode, C: Encode> Encode for (A, B, C) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
    }
}

impl<A: Decode, B: Decode, C: Decode> Decode for (A, B, C) {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        Ok((A::decode(buf)?, B::decode(buf)?, C::decode(buf)?))
    }
}

impl Encode for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u64).encode(buf);
        buf.put_slice(self.as_bytes());
    }
}

impl Decode for String {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        let len = u64::decode(buf)? as usize;
        need(buf, len)?;
        let bytes = buf[..len].to_vec();
        buf.advance(len);
        String::from_utf8(bytes).map_err(|_| CodecError::Invalid("utf8"))
    }
}

impl Encode for () {
    fn encode(&self, _buf: &mut Vec<u8>) {}
}

impl Decode for () {
    fn decode(_buf: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(())
    }
}

impl Encode for AdjList {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.degree() as u64).encode(buf);
        for v in self.iter() {
            v.encode(buf);
        }
    }
}

impl Decode for AdjList {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        let nbrs: Vec<VertexId> = Vec::decode(buf)?;
        // Lists are encoded sorted; verify instead of trusting.
        if nbrs.windows(2).any(|w| w[0] >= w[1]) {
            return Err(CodecError::Invalid("adjacency list not sorted"));
        }
        Ok(AdjList::from_sorted(nbrs))
    }
}

impl Encode for Subgraph {
    fn encode(&self, buf: &mut Vec<u8>) {
        let labeled = self.vertex_ids().iter().any(|&v| self.label(v).is_some());
        labeled.encode(buf);
        (self.num_vertices() as u64).encode(buf);
        for &v in self.vertex_ids() {
            v.encode(buf);
            if labeled {
                self.label(v).unwrap_or_default().encode(buf);
            }
            self.neighbors(v).expect("vertex present").encode(buf);
        }
    }
}

impl Decode for Subgraph {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        let labeled = bool::decode(buf)?;
        let n = u64::decode(buf)? as usize;
        let mut g = Subgraph::with_capacity(n.min(buf.remaining()));
        for _ in 0..n {
            let v = VertexId::decode(buf)?;
            if labeled {
                let l = Label::decode(buf)?;
                let adj = AdjList::decode(buf)?;
                if !g.add_labeled_vertex(v, l, adj) {
                    return Err(CodecError::Invalid("duplicate subgraph vertex"));
                }
            } else {
                let adj = AdjList::decode(buf)?;
                if !g.add_vertex(v, adj) {
                    return Err(CodecError::Invalid("duplicate subgraph vertex"));
                }
            }
        }
        Ok(g)
    }
}

/// CRC32 of data (IEEE, matches zlib's `crc32`). Shared by the
/// checkpoint trailer, the wire/steal-batch frame format and the
/// compressed graph trailer, so every layer validates integrity with
/// the same code — the implementation lives in the graph crate
/// ([`gthinker_graph::crc`]), the lowest layer of the workspace.
pub use gthinker_graph::crc::crc32;

/// Encodes a value into a fresh buffer.
pub fn to_bytes<T: Encode>(value: &T) -> Vec<u8> {
    let mut buf = Vec::new();
    value.encode(&mut buf);
    buf
}

/// Decodes a value from a complete buffer, requiring full consumption.
pub fn from_bytes<T: Decode>(mut buf: &[u8]) -> Result<T, CodecError> {
    let v = T::decode(&mut buf)?;
    if !buf.is_empty() {
        return Err(CodecError::Invalid("trailing bytes"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = to_bytes(&v);
        let back: T = from_bytes(&bytes).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(u8::MAX);
        round_trip(513u16);
        round_trip(0xdead_beefu32);
        round_trip(u64::MAX);
        round_trip(-42i64);
        round_trip(1.5f64);
        round_trip(true);
        round_trip(false);
        round_trip(1234usize);
        round_trip(String::from("héllo"));
        round_trip(());
    }

    #[test]
    fn vocabulary_types_round_trip() {
        round_trip(VertexId(77));
        round_trip(WorkerId(12));
        round_trip(Label(3));
        round_trip(TaskId::new(5, 999));
        round_trip(AdjList::from_unsorted(vec![VertexId(3), VertexId(1), VertexId(2)]));
        round_trip(vec![VertexId(1), VertexId(9)]);
        round_trip(Some(VertexId(4)));
        round_trip(Option::<VertexId>::None);
        round_trip((VertexId(1), 7u64));
        round_trip((3u64, vec![VertexId(1)], vec![VertexId(2), VertexId(5)]));
    }

    #[test]
    fn subgraph_round_trips_with_structure() {
        let mut g = Subgraph::new();
        g.add_vertex(VertexId(10), AdjList::from_unsorted(vec![VertexId(20)]));
        g.add_vertex(VertexId(20), AdjList::from_unsorted(vec![VertexId(10), VertexId(30)]));
        g.add_vertex(VertexId(30), AdjList::new());
        let bytes = to_bytes(&g);
        let back: Subgraph = from_bytes(&bytes).unwrap();
        assert_eq!(back.num_vertices(), 3);
        assert_eq!(back.vertex_ids(), g.vertex_ids());
        assert!(back.has_edge(VertexId(10), VertexId(20)));
        assert!(back.has_edge(VertexId(20), VertexId(30)));
        assert!(!back.has_edge(VertexId(10), VertexId(30)));
    }

    #[test]
    fn labeled_subgraph_round_trips() {
        let mut g = Subgraph::new();
        g.add_labeled_vertex(VertexId(1), Label(4), AdjList::new());
        g.add_labeled_vertex(VertexId(2), Label(5), AdjList::new());
        let back: Subgraph = from_bytes(&to_bytes(&g)).unwrap();
        assert_eq!(back.label(VertexId(1)), Some(Label(4)));
        assert_eq!(back.label(VertexId(2)), Some(Label(5)));
    }

    #[test]
    fn truncated_buffers_error_cleanly() {
        let bytes = to_bytes(&vec![VertexId(1), VertexId(2), VertexId(3)]);
        for cut in 0..bytes.len() {
            let r: Result<Vec<VertexId>, _> = from_bytes(&bytes[..cut]);
            assert!(r.is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn corrupt_tags_rejected() {
        assert_eq!(from_bytes::<bool>(&[2]), Err(CodecError::Invalid("bool tag")));
        assert_eq!(from_bytes::<Option<u8>>(&[9, 0]), Err(CodecError::Invalid("option tag")));
    }

    #[test]
    fn unsorted_adjacency_rejected() {
        // Hand-craft: len 2, vertices 5 then 3.
        let mut buf = Vec::new();
        2u64.encode(&mut buf);
        VertexId(5).encode(&mut buf);
        VertexId(3).encode(&mut buf);
        assert!(from_bytes::<AdjList>(&buf).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = to_bytes(&7u32);
        bytes.push(0);
        assert_eq!(from_bytes::<u32>(&bytes), Err(CodecError::Invalid("trailing bytes")));
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn huge_length_prefix_rejected_without_allocation() {
        let mut buf = Vec::new();
        u64::MAX.encode(&mut buf);
        assert!(from_bytes::<Vec<u8>>(&buf).is_err());
    }
}
