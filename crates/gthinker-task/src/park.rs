//! Event-driven parking for worker threads (the tail-latency
//! scheduler's wakeup primitive).
//!
//! An [`EventCount`] replaces the sleep-polling idle loops the workers
//! originally used: a thread that finds no work *listens* (reads the
//! event epoch), re-checks its work sources, and then *waits* — parking
//! on a condvar until someone publishes work and bumps the epoch. The
//! protocol makes lost wakeups impossible:
//!
//! * The **waiter** reads the epoch (`listen`), re-checks its sources,
//!   then calls [`EventCount::wait`] with that key. Inside `wait` it
//!   registers itself as a waiter *before* re-checking the epoch, and
//!   holds the internal mutex from that re-check until the condvar
//!   atomically releases it.
//! * The **notifier** makes its work visible *first*, then bumps the
//!   epoch, then reads the waiter count. Epoch bump and waiter
//!   registration are both `SeqCst`, so at least one side observes the
//!   other (the Dekker argument): either the waiter's epoch re-check
//!   sees the bump and returns immediately, or the notifier sees the
//!   waiter and takes the mutex — which blocks until the waiter is
//!   inside the condvar wait — before broadcasting.
//!
//! Waits take a fallback timeout purely as a belt-and-braces safety
//! net; a timeout wake is counted separately so tests can assert that
//! steady-state progress is event-driven, not timer-driven.
//!
//! Built on `std::sync::{Mutex, Condvar}` rather than the
//! `parking_lot` facade used elsewhere because the protocol needs
//! condvar waits with a deadline, and keeping the wait primitive on
//! `std` guarantees identical semantics on every build of this crate.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// A monotone event counter threads can park on. See the module docs
/// for the missed-wakeup-freedom argument.
pub struct EventCount {
    /// Bumped on every notify; a stale key means "something happened".
    epoch: AtomicU64,
    /// Threads currently registered inside [`EventCount::wait`].
    waiters: AtomicUsize,
    /// Serializes the epoch re-check against the notifier's broadcast.
    lock: Mutex<()>,
    cv: Condvar,
    /// Total notifies that found at least one waiter (diagnostics).
    notifies: AtomicU64,
}

impl EventCount {
    /// Creates an event count with no pending events.
    pub fn new() -> Self {
        EventCount {
            epoch: AtomicU64::new(0),
            waiters: AtomicUsize::new(0),
            lock: Mutex::new(()),
            cv: Condvar::new(),
            notifies: AtomicU64::new(0),
        }
    }

    /// Takes a wait key. Call *before* re-checking work sources: any
    /// notify between `listen` and [`EventCount::wait`] invalidates the
    /// key and makes the wait return immediately.
    pub fn listen(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Parks until an event arrives (epoch moves past `key`) or
    /// `fallback` elapses. Returns `true` when woken by an event,
    /// `false` on timeout.
    pub fn wait(&self, key: u64, fallback: Duration) -> bool {
        let deadline = Instant::now() + fallback;
        let mut guard = self.lock.lock().unwrap_or_else(|e| e.into_inner());
        // Register before the epoch re-check: the notifier bumps the
        // epoch before reading `waiters`, so if it misses us here, our
        // re-check below is guaranteed to see its bump.
        self.waiters.fetch_add(1, Ordering::SeqCst);
        let mut woken = true;
        while self.epoch.load(Ordering::SeqCst) == key {
            let now = Instant::now();
            let Some(remaining) = deadline.checked_duration_since(now).filter(|d| !d.is_zero())
            else {
                woken = false;
                break;
            };
            let (g, _timeout) =
                self.cv.wait_timeout(guard, remaining).unwrap_or_else(|e| e.into_inner());
            guard = g;
        }
        self.waiters.fetch_sub(1, Ordering::SeqCst);
        drop(guard);
        woken
    }

    /// Publishes an event: every current and in-flight waiter either
    /// returns from `wait` or never blocks. The caller must make the
    /// work it is announcing visible *before* calling this.
    pub fn notify_all(&self) {
        self.epoch.fetch_add(1, Ordering::SeqCst);
        if self.waiters.load(Ordering::SeqCst) > 0 {
            // Empty critical section: excludes the window between a
            // waiter's epoch re-check and its condvar enqueue.
            drop(self.lock.lock().unwrap_or_else(|e| e.into_inner()));
            self.cv.notify_all();
            self.notifies.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Notifies that reached at least one waiter (diagnostics).
    pub fn notify_count(&self) -> u64 {
        self.notifies.load(Ordering::Relaxed)
    }
}

impl Default for EventCount {
    fn default() -> Self {
        EventCount::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn stale_key_returns_immediately() {
        let ec = EventCount::new();
        let key = ec.listen();
        ec.notify_all();
        let start = Instant::now();
        assert!(ec.wait(key, Duration::from_secs(5)), "stale key must not block");
        assert!(start.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn timeout_reports_false() {
        let ec = EventCount::new();
        let key = ec.listen();
        assert!(!ec.wait(key, Duration::from_millis(10)), "nothing notified");
    }

    #[test]
    fn notify_wakes_parked_thread() {
        let ec = Arc::new(EventCount::new());
        let woke = Arc::new(AtomicBool::new(false));
        let t = {
            let ec = Arc::clone(&ec);
            let woke = Arc::clone(&woke);
            std::thread::spawn(move || {
                let key = ec.listen();
                woke.store(ec.wait(key, Duration::from_secs(10)), Ordering::SeqCst);
            })
        };
        // Give the waiter time to park, then wake it.
        std::thread::sleep(Duration::from_millis(50));
        let start = Instant::now();
        ec.notify_all();
        t.join().unwrap();
        assert!(woke.load(Ordering::SeqCst), "woken by event, not timeout");
        assert!(start.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn no_lost_wakeups_under_stress() {
        // A producer publishes N tokens; a consumer parks whenever the
        // mailbox is empty. Any lost wakeup deadlocks the consumer
        // (the generous fallback would unstick it, but then the elapsed
        // assertion fails), so finishing fast proves the protocol.
        let ec = Arc::new(EventCount::new());
        let mailbox = Arc::new(AtomicU64::new(0));
        const N: u64 = 20_000;
        let consumer = {
            let ec = Arc::clone(&ec);
            let mailbox = Arc::clone(&mailbox);
            std::thread::spawn(move || {
                let mut consumed = 0u64;
                while consumed < N {
                    let key = ec.listen();
                    let avail = mailbox.swap(0, Ordering::SeqCst);
                    if avail == 0 {
                        ec.wait(key, Duration::from_secs(60));
                        continue;
                    }
                    consumed += avail;
                }
                consumed
            })
        };
        let start = Instant::now();
        for _ in 0..N {
            mailbox.fetch_add(1, Ordering::SeqCst);
            ec.notify_all();
        }
        let consumed = consumer.join().unwrap();
        assert_eq!(consumed, N);
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "consumer must ride events, not 60 s fallbacks"
        );
    }

    #[test]
    fn many_waiters_all_wake() {
        let ec = Arc::new(EventCount::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let ec = Arc::clone(&ec);
                std::thread::spawn(move || {
                    let key = ec.listen();
                    ec.wait(key, Duration::from_secs(30))
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(50));
        ec.notify_all();
        for h in handles {
            assert!(h.join().unwrap(), "every waiter woken by the broadcast");
        }
    }
}
