//! The task abstraction (§IV of the paper).
//!
//! A [`Task`] owns a growing subgraph `g` and an application-defined
//! `context` (e.g. the vertex set `S` for clique tasks). During
//! `compute()`, a task calls [`Task::pull`] to request adjacency lists
//! for the next iteration; the framework gathers them (from the local
//! table or the remote-vertex cache) into the next iteration's
//! [`Frontier`].

use crate::codec::{CodecError, Decode, Encode};
use gthinker_graph::adj::SharedAdj;
use gthinker_graph::ids::VertexId;
use gthinker_graph::subgraph::Subgraph;

/// A mining task: subgraph + application context + pending pulls.
#[derive(Clone, Debug, Default)]
pub struct Task<C> {
    /// The task's subgraph `g`, grown by saving pulled data.
    pub subgraph: Subgraph,
    /// Application-specific state (the paper's `task.context`).
    pub context: C,
    /// Vertices pulled in the current iteration — the paper's `P(t)`.
    /// Deduplicated; drained by the framework when the iteration ends.
    pulls: Vec<VertexId>,
    /// Spawn timestamp on the metrics clock — the start of the task's
    /// end-to-end latency measurement. Travels with the task through
    /// spills, steals and checkpoints so the spawn→finish distribution
    /// includes queue/disk residence; 0 when metrics are disabled.
    pub born_nanos: u64,
}

impl<C> Task<C> {
    /// Creates a task with the given context and an empty subgraph.
    pub fn new(context: C) -> Self {
        Task {
            subgraph: Subgraph::new(),
            context,
            pulls: Vec::new(),
            born_nanos: gthinker_metrics::now_nanos(),
        }
    }

    /// Requests `Γ(v)` for the next iteration (`t.pull(v)` in the
    /// paper). Duplicate pulls of the same vertex within one iteration
    /// are coalesced, so each pulled vertex holds exactly one cache
    /// lock.
    pub fn pull(&mut self, v: VertexId) {
        if !self.pulls.contains(&v) {
            self.pulls.push(v);
        }
    }

    /// The vertices pulled so far this iteration.
    pub fn pending_pulls(&self) -> &[VertexId] {
        &self.pulls
    }

    /// True if the task requested any vertex this iteration.
    pub fn has_pulls(&self) -> bool {
        !self.pulls.is_empty()
    }

    /// Removes and returns the pull set (called by the framework when
    /// `compute()` returns and the pulls become the next `P(t)`).
    pub fn take_pulls(&mut self) -> Vec<VertexId> {
        std::mem::take(&mut self.pulls)
    }

    /// Restores a pull set (checkpoint restore / task migration).
    pub fn set_pulls(&mut self, pulls: Vec<VertexId>) {
        self.pulls = pulls;
    }
}

impl<C: Encode> Encode for Task<C> {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.subgraph.encode(buf);
        self.context.encode(buf);
        self.pulls.encode(buf);
        self.born_nanos.encode(buf);
    }
}

impl<C: Decode> Decode for Task<C> {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        let subgraph = Subgraph::decode(buf)?;
        let context = C::decode(buf)?;
        let pulls = Vec::decode(buf)?;
        let born_nanos = u64::decode(buf)?;
        Ok(Task { subgraph, context, pulls, born_nanos })
    }
}

/// The adjacency lists delivered to `compute(t, frontier)`: one entry
/// per vertex pulled in the previous iteration, in pull order.
///
/// Entries are `Arc`s pointing into the local vertex table or the
/// remote-vertex cache; they are released right after `compute()`
/// returns, so tasks must copy what they need into their subgraph.
#[derive(Clone, Debug, Default)]
pub struct Frontier {
    entries: Vec<(VertexId, SharedAdj)>,
}

impl Frontier {
    /// Creates a frontier from gathered `(v, Γ(v))` pairs.
    pub fn new(entries: Vec<(VertexId, SharedAdj)>) -> Self {
        Frontier { entries }
    }

    /// Number of pulled vertices.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the previous iteration pulled nothing (first iteration
    /// after spawn, unless the spawn itself pulled).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(v, Γ(v))` in pull order.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, &SharedAdj)> {
        self.entries.iter().map(|(v, a)| (*v, a))
    }

    /// Looks up the adjacency list of a specific pulled vertex.
    pub fn get(&self, v: VertexId) -> Option<&SharedAdj> {
        self.entries.iter().find(|(u, _)| *u == v).map(|(_, a)| a)
    }

    /// The pulled vertex IDs in pull order.
    pub fn vertex_ids(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.entries.iter().map(|(v, _)| *v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{from_bytes, to_bytes};
    use gthinker_graph::adj::AdjList;
    use std::sync::Arc;

    #[test]
    fn pull_deduplicates() {
        let mut t: Task<u32> = Task::new(7);
        t.pull(VertexId(1));
        t.pull(VertexId(2));
        t.pull(VertexId(1));
        assert_eq!(t.pending_pulls(), &[VertexId(1), VertexId(2)]);
        assert!(t.has_pulls());
        let p = t.take_pulls();
        assert_eq!(p.len(), 2);
        assert!(!t.has_pulls());
    }

    #[test]
    fn task_round_trips_through_codec() {
        let mut t: Task<u64> = Task::new(99);
        t.subgraph.add_vertex(VertexId(5), AdjList::from_unsorted(vec![VertexId(6)]));
        t.pull(VertexId(6));
        let back: Task<u64> = from_bytes(&to_bytes(&t)).unwrap();
        assert_eq!(back.context, 99);
        assert_eq!(back.pending_pulls(), &[VertexId(6)]);
        assert!(back.subgraph.contains(VertexId(5)));
    }

    #[test]
    fn frontier_lookup_and_iteration() {
        let a = Arc::new(AdjList::from_unsorted(vec![VertexId(9)]));
        let f = Frontier::new(vec![(VertexId(1), Arc::clone(&a)), (VertexId(2), a)]);
        assert_eq!(f.len(), 2);
        assert!(!f.is_empty());
        assert!(f.get(VertexId(2)).is_some());
        assert!(f.get(VertexId(3)).is_none());
        assert_eq!(f.vertex_ids().collect::<Vec<_>>(), vec![VertexId(1), VertexId(2)]);
        for (_, adj) in f.iter() {
            assert_eq!(adj.as_slice(), &[VertexId(9)]);
        }
    }

    #[test]
    fn empty_frontier() {
        let f = Frontier::default();
        assert!(f.is_empty());
        assert_eq!(f.len(), 0);
    }
}
