//! Property-based tests for task management: codec round-trips,
//! queue/spill conservation, pending-table readiness.

use gthinker_graph::adj::AdjList;
use gthinker_graph::ids::{TaskId, VertexId};
use gthinker_task::codec::{from_bytes, to_bytes};
use gthinker_task::pending::PendingTable;
use gthinker_task::queue::TaskQueue;
use gthinker_task::spill::SpillManager;
use gthinker_task::task::Task;
use proptest::prelude::*;

/// Builds an arbitrary task from proptest inputs.
fn make_task(ctx: u32, verts: &[(u32, Vec<u32>)], pulls: &[u32]) -> Task<u32> {
    let mut t = Task::new(ctx);
    for (v, nbrs) in verts {
        t.subgraph.add_vertex(
            VertexId(*v),
            AdjList::from_unsorted(nbrs.iter().map(|&x| VertexId(x)).collect()),
        );
    }
    for &p in pulls {
        t.pull(VertexId(p));
    }
    t
}

proptest! {
    #[test]
    fn task_codec_round_trips(
        ctx in any::<u32>(),
        verts in proptest::collection::vec(
            (0u32..1000, proptest::collection::vec(0u32..1000, 0..12)), 0..10),
        pulls in proptest::collection::vec(0u32..1000, 0..8),
    ) {
        // Deduplicate vertex IDs (Subgraph rejects duplicates).
        let mut seen = std::collections::HashSet::new();
        let verts: Vec<_> = verts.into_iter().filter(|(v, _)| seen.insert(*v)).collect();
        let t = make_task(ctx, &verts, &pulls);
        let back: Task<u32> = from_bytes(&to_bytes(&t)).unwrap();
        prop_assert_eq!(back.context, t.context);
        prop_assert_eq!(back.pending_pulls(), t.pending_pulls());
        prop_assert_eq!(back.subgraph.num_vertices(), t.subgraph.num_vertices());
        prop_assert_eq!(back.subgraph.vertex_ids(), t.subgraph.vertex_ids());
        for &v in t.subgraph.vertex_ids() {
            prop_assert_eq!(back.subgraph.neighbors(v), t.subgraph.neighbors(v));
        }
    }

    /// Any push/pop interleaving conserves tasks: everything pushed is
    /// eventually popped or spilled exactly once, in FIFO order among
    /// the non-spilled.
    #[test]
    fn queue_conserves_tasks(
        batch in 1usize..8,
        n_push in 0usize..120,
        pop_every in 1usize..10,
    ) {
        let mut q: TaskQueue<u32> = TaskQueue::new(batch);
        let mut spilled: Vec<u32> = Vec::new();
        let mut popped: Vec<u32> = Vec::new();
        for i in 0..n_push as u32 {
            if let Some(b) = q.push(Task::new(i)) {
                prop_assert_eq!(b.len(), batch, "spills are exactly one batch");
                spilled.extend(b.into_iter().map(|t| t.context));
            }
            if (i as usize).is_multiple_of(pop_every) {
                if let Some(t) = q.pop() {
                    popped.push(t.context);
                }
            }
            prop_assert!(q.len() <= q.capacity());
        }
        while let Some(t) = q.pop() {
            popped.push(t.context);
        }
        let mut all: Vec<u32> = spilled.iter().chain(popped.iter()).copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n_push as u32).collect::<Vec<_>>());
        // FIFO among popped.
        prop_assert!(popped.windows(2).all(|w| w[0] < w[1]));
    }

    /// Spill + refill across a random number of batches returns every
    /// task exactly once in FIFO batch order.
    #[test]
    fn spill_manager_round_trips_batches(
        sizes in proptest::collection::vec(1usize..20, 1..8),
    ) {
        let dir = std::env::temp_dir().join(format!(
            "gthinker-prop-spill-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let m = SpillManager::new(&dir).unwrap();
        let mut next = 0u32;
        let mut expect: Vec<Vec<u32>> = Vec::new();
        for size in &sizes {
            let batch: Vec<Task<u32>> = (0..*size)
                .map(|_| {
                    next += 1;
                    Task::new(next)
                })
                .collect();
            expect.push(batch.iter().map(|t| t.context).collect());
            m.spill(&batch).unwrap();
        }
        prop_assert_eq!(m.num_files(), sizes.len());
        for want in expect {
            let got: Vec<Task<u32>> = m.refill().unwrap().unwrap();
            prop_assert_eq!(got.into_iter().map(|t| t.context).collect::<Vec<_>>(), want);
        }
        prop_assert!(m.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A pending task becomes ready after exactly `req - met`
    /// notifications, never earlier, regardless of interleaving with
    /// other tasks' notifications.
    #[test]
    fn pending_readiness_is_exact(
        tasks in proptest::collection::vec((1u32..6, 0u32..6), 1..20),
    ) {
        let table: PendingTable<u32> = PendingTable::new();
        let mut waiting: Vec<(TaskId, u32)> = Vec::new(); // (id, missing)
        for (i, (req_extra, met)) in tasks.iter().enumerate() {
            let req = met + req_extra; // req > met always
            let id = TaskId::new(0, i as u64);
            let none = table.insert(id, Task::new(i as u32), req, *met);
            prop_assert!(none.is_none());
            waiting.push((id, req - met));
        }
        // Round-robin notifications.
        let mut released = 0usize;
        while !waiting.is_empty() {
            let mut next = Vec::new();
            for (id, missing) in waiting {
                let out = table.notify(id);
                if missing == 1 {
                    prop_assert!(out.is_some(), "final notification releases");
                    released += 1;
                } else {
                    prop_assert!(out.is_none(), "early release!");
                    next.push((id, missing - 1));
                }
            }
            waiting = next;
        }
        prop_assert_eq!(released, tasks.len());
        prop_assert!(table.is_empty());
    }
}
