//! placeholder (under construction)
