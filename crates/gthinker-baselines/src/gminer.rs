//! A G-Miner-like engine: a **disk-resident, LSH-ordered task queue**.
//!
//! The design the paper criticizes (§II): all tasks are generated
//! upfront into a disk-backed priority queue keyed by locality-
//! sensitive hashing over each task's requested vertex set `P(t)`;
//! worker threads pop tasks in LSH order, process one step, and
//! **reinsert** unfinished tasks (decomposition children) back into the
//! disk queue. Because tasks are not processed in generation order,
//! the queue accumulates partially-computed tasks, and serializing
//! them to disk and back dominates the runtime on large inputs —
//! exactly the behaviour Table III attributes to G-Miner.
//!
//! The workload implemented is maximum clique finding with the same
//! task semantics as the G-thinker app (so answers are comparable).

use crate::outcome::{RunOutcome, RunStatus};
use gthinker_apps::serial::clique::max_clique_above;
use gthinker_graph::adj::AdjList;
use gthinker_graph::graph::Graph;
use gthinker_graph::hash::hash_u64;
use gthinker_graph::ids::VertexId;
use gthinker_task::codec::{from_bytes, to_bytes, Decode, Encode};
use gthinker_task::task::Task;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::io::{Read, Seek, SeekFrom, Write};
use std::time::{Duration, Instant};

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct GMinerConfig {
    /// Worker threads.
    pub threads: usize,
    /// Directory for the disk-resident queue log.
    pub dir: std::path::PathBuf,
    /// Decomposition threshold τ (same meaning as the G-thinker app).
    pub tau: usize,
    /// Abort after this much wall-clock time (paper: "> 24 hr").
    pub time_budget: Duration,
    /// Abort when the queue log exceeds this many bytes.
    pub disk_budget: u64,
}

impl Default for GMinerConfig {
    fn default() -> Self {
        GMinerConfig {
            threads: 4,
            dir: std::env::temp_dir().join("gminer-queue"),
            tau: 40_000,
            time_budget: Duration::from_secs(3600),
            disk_budget: 8 << 30,
        }
    }
}

/// LSH key: min-hash over the task's vertex set, so tasks touching
/// similar vertices sort near each other (G-Miner's data-reuse idea).
fn lsh_key(vertices: &[VertexId]) -> u64 {
    vertices.iter().map(|v| hash_u64(v.0 as u64)).min().unwrap_or(0)
}

/// The disk-resident priority queue: an append-only log file plus an
/// in-memory index ordered by LSH key. Every pop is a disk read;
/// every insert is a disk write — the IO-bound core of the design.
struct DiskQueue {
    file: Mutex<std::fs::File>,
    index: Mutex<BTreeMap<(u64, u64), (u64, u32)>>, // (lsh, seq) -> (offset, len)
    seq: std::sync::atomic::AtomicU64,
    tail: std::sync::atomic::AtomicU64,
    bytes_written: std::sync::atomic::AtomicU64,
}

impl DiskQueue {
    fn new(dir: &std::path::Path) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("queue-{}.log", std::process::id()));
        let file = std::fs::OpenOptions::new()
            .create(true)
            .truncate(true)
            .read(true)
            .write(true)
            .open(path)?;
        Ok(DiskQueue {
            file: Mutex::new(file),
            index: Mutex::new(BTreeMap::new()),
            seq: std::sync::atomic::AtomicU64::new(0),
            tail: std::sync::atomic::AtomicU64::new(0),
            bytes_written: std::sync::atomic::AtomicU64::new(0),
        })
    }

    fn insert<C: Encode>(&self, task: &Task<C>, key: u64) -> std::io::Result<()> {
        let bytes = to_bytes(task);
        let len = bytes.len() as u32;
        let offset = {
            let mut f = self.file.lock();
            let offset =
                self.tail.fetch_add(bytes.len() as u64, std::sync::atomic::Ordering::SeqCst);
            f.seek(SeekFrom::Start(offset))?;
            f.write_all(&bytes)?;
            offset
        };
        self.bytes_written.fetch_add(bytes.len() as u64, std::sync::atomic::Ordering::Relaxed);
        let seq = self.seq.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.index.lock().insert((key, seq), (offset, len));
        Ok(())
    }

    fn pop<C: Decode>(&self) -> std::io::Result<Option<Task<C>>> {
        let entry = {
            let mut idx = self.index.lock();
            let key = idx.keys().next().copied();
            key.and_then(|k| idx.remove(&k))
        };
        let Some((offset, len)) = entry else { return Ok(None) };
        let mut buf = vec![0u8; len as usize];
        {
            let mut f = self.file.lock();
            f.seek(SeekFrom::Start(offset))?;
            f.read_exact(&mut buf)?;
        }
        from_bytes(&buf)
            .map(Some)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }

    fn is_empty(&self) -> bool {
        self.index.lock().is_empty()
    }

    fn log_bytes(&self) -> u64 {
        // The log is append-only: reinserted tasks grow it forever
        // (G-Miner's dominant cost on large graphs).
        self.tail.load(std::sync::atomic::Ordering::SeqCst)
    }
}

/// Runs G-Miner-like maximum clique finding. Returns the best clique.
pub fn gminer_max_clique(graph: &Graph, config: &GMinerConfig) -> RunOutcome<Vec<VertexId>> {
    let start = Instant::now();
    let queue = DiskQueue::new(&config.dir).expect("queue dir writable");
    let best: Mutex<Vec<VertexId>> = Mutex::new(Vec::new());

    // G-Miner generates ALL tasks at the beginning (§II).
    for v in graph.vertices() {
        let gv = graph.neighbors(v).greater_than(v);
        if gv.is_empty() {
            let mut b = best.lock();
            if b.is_empty() {
                *b = vec![v];
            }
            continue;
        }
        let mut t: Task<Vec<VertexId>> = Task::new(vec![v]);
        for &u in gv {
            let adj = graph.neighbors(u).greater_than(u);
            let filtered: Vec<VertexId> =
                adj.iter().copied().filter(|w| gv.binary_search(w).is_ok()).collect();
            t.subgraph.add_vertex(u, AdjList::from_sorted(filtered));
        }
        queue.insert(&t, lsh_key(gv)).expect("queue insert");
    }

    // Threads pop in LSH order, one processing step per pop.
    let aborted = Mutex::new(None::<RunStatus>);
    let in_flight = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..config.threads {
            s.spawn(|| loop {
                if aborted.lock().is_some() {
                    return;
                }
                if start.elapsed() > config.time_budget {
                    *aborted.lock() = Some(RunStatus::TimeBudgetExceeded);
                    return;
                }
                if queue.log_bytes() > config.disk_budget {
                    *aborted.lock() = Some(RunStatus::DiskBudgetExceeded);
                    return;
                }
                in_flight.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                let task: Option<Task<Vec<VertexId>>> = queue.pop().expect("queue pop");
                let Some(task) = task else {
                    in_flight.fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
                    // Finished only when nobody is mid-step (a step may
                    // reinsert children).
                    if queue.is_empty() && in_flight.load(std::sync::atomic::Ordering::SeqCst) == 0
                    {
                        return;
                    }
                    std::thread::sleep(Duration::from_micros(50));
                    continue;
                };
                process_step(&task, &queue, &best, config.tau);
                in_flight.fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
            });
        }
    });

    let status = aborted.into_inner().unwrap_or(RunStatus::Completed);
    let result = (status == RunStatus::Completed).then(|| best.into_inner());
    RunOutcome { result, elapsed: start.elapsed(), peak_bytes: queue.log_bytes(), status }
}

/// One processing step: decompose or solve, mirroring the G-thinker
/// app's semantics — but children go back through the disk queue.
fn process_step(
    task: &Task<Vec<VertexId>>,
    queue: &DiskQueue,
    best: &Mutex<Vec<VertexId>>,
    tau: usize,
) {
    let g = &task.subgraph;
    let s = &task.context;
    let bound = best.lock().len();
    if s.len() + g.num_vertices() <= bound {
        return;
    }
    if g.num_vertices() > tau {
        for &u in g.vertex_ids() {
            let ext: Vec<VertexId> = g.neighbors(u).expect("member").iter().collect();
            if s.len() + 1 + ext.len() <= bound {
                continue;
            }
            let mut sub: Task<Vec<VertexId>> = Task::new({
                let mut s2 = s.clone();
                s2.push(u);
                s2
            });
            for &w in &ext {
                let wadj = g.neighbors(w).expect("candidate");
                sub.subgraph.add_vertex(w, AdjList::from_sorted(wadj.intersect_slice(&ext)));
            }
            // The IO-bound reinsert the paper highlights.
            queue.insert(&sub, lsh_key(&ext)).expect("queue insert");
        }
        return;
    }
    let local = g.to_local();
    let delta = bound.saturating_sub(s.len());
    if let Some(found) = max_clique_above(&local, delta) {
        let mut clique = s.clone();
        clique.extend(local.to_global(&found));
        clique.sort_unstable();
        let mut b = best.lock();
        if clique.len() > b.len() {
            *b = clique;
        }
    } else if g.num_vertices() == 0 {
        let mut b = best.lock();
        if s.len() > b.len() {
            *b = s.clone();
        }
    }
}

/// G-Miner-like triangle counting: one task per vertex, generated
/// upfront into the disk queue; each pop deserializes the task's
/// oriented neighborhood subgraph from disk, counts its triangles and
/// discards it. Answers match the other engines; the cost profile is
/// dominated by queue serialization.
pub fn gminer_triangle_count(graph: &Graph, config: &GMinerConfig) -> RunOutcome<u64> {
    let start = Instant::now();
    let queue = DiskQueue::new(&config.dir).expect("queue dir writable");
    // Generate all tasks upfront.
    for v in graph.vertices() {
        let gv = graph.neighbors(v).greater_than(v);
        if gv.len() < 2 {
            continue;
        }
        let mut t: Task<Vec<VertexId>> = Task::new(vec![v]);
        for &u in gv {
            let filtered: Vec<VertexId> = graph
                .neighbors(u)
                .greater_than(u)
                .iter()
                .copied()
                .filter(|w| gv.binary_search(w).is_ok())
                .collect();
            t.subgraph.add_vertex(u, AdjList::from_sorted(filtered));
        }
        queue.insert(&t, lsh_key(gv)).expect("queue insert");
    }
    let total = std::sync::atomic::AtomicU64::new(0);
    let aborted = Mutex::new(None::<RunStatus>);
    std::thread::scope(|s| {
        for _ in 0..config.threads {
            s.spawn(|| loop {
                if aborted.lock().is_some() {
                    return;
                }
                if start.elapsed() > config.time_budget {
                    *aborted.lock() = Some(RunStatus::TimeBudgetExceeded);
                    return;
                }
                let task: Option<Task<Vec<VertexId>>> = queue.pop().expect("queue pop");
                let Some(task) = task else { return };
                // Count edges inside the candidate subgraph: each is a
                // triangle with the anchor.
                let count = task.subgraph.num_edges() as u64;
                if count > 0 {
                    total.fetch_add(count, std::sync::atomic::Ordering::Relaxed);
                }
            });
        }
    });
    let status = aborted.into_inner().unwrap_or(RunStatus::Completed);
    let result =
        (status == RunStatus::Completed).then(|| total.load(std::sync::atomic::Ordering::Relaxed));
    RunOutcome { result, elapsed: start.elapsed(), peak_bytes: queue.log_bytes(), status }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gthinker_apps::serial::clique::max_clique_brute;
    use gthinker_graph::gen;
    use gthinker_graph::subgraph::Subgraph as Sg;

    fn config(tag: &str, tau: usize) -> GMinerConfig {
        GMinerConfig {
            threads: 2,
            dir: std::env::temp_dir().join(format!("gminer-test-{tag}-{}", std::process::id())),
            tau,
            ..Default::default()
        }
    }

    fn brute(g: &Graph) -> usize {
        let mut sg = Sg::new();
        for v in g.vertices() {
            sg.add_vertex(v, g.neighbors(v).clone());
        }
        max_clique_brute(&sg.to_local()).len()
    }

    #[test]
    fn finds_max_clique() {
        for seed in 0..4 {
            let g = gen::gnp(15, 0.45, seed);
            let out = gminer_max_clique(&g, &config("find", 40_000));
            assert!(out.completed());
            assert_eq!(out.result.unwrap().len(), brute(&g), "seed {seed}");
        }
    }

    #[test]
    fn decomposition_through_disk_queue() {
        let g = gen::gnp(30, 0.4, 5);
        let full = gminer_max_clique(&g, &config("d1", 40_000));
        let decomposed = gminer_max_clique(&g, &config("d2", 3));
        assert_eq!(
            full.result.unwrap().len(),
            decomposed.result.unwrap().len(),
            "τ must not change the answer"
        );
        assert!(decomposed.peak_bytes > full.peak_bytes, "reinserting children grows the disk log");
    }

    #[test]
    fn disk_budget_aborts() {
        let g = gen::gnp(40, 0.5, 6);
        let mut cfg = config("disk", 2);
        cfg.disk_budget = 4_096;
        let out = gminer_max_clique(&g, &cfg);
        assert_eq!(out.status, RunStatus::DiskBudgetExceeded);
        assert!(out.result.is_none());
    }

    #[test]
    fn triangle_count_matches_serial() {
        for seed in 0..3 {
            let g = gen::gnp(70, 0.12, seed);
            let out = gminer_triangle_count(&g, &config(&format!("tc{seed}"), 40_000));
            assert!(out.completed());
            assert_eq!(
                out.result.unwrap(),
                gthinker_apps::serial::triangle::count_triangles(&g),
                "seed {seed}"
            );
            assert!(out.peak_bytes > 0, "tasks went through the disk queue");
        }
    }

    #[test]
    fn planted_clique_found() {
        let base = gen::barabasi_albert(200, 3, 9);
        let (g, members) = gen::plant_clique(&base, 9, 10);
        let out = gminer_max_clique(&g, &config("plant", 40_000));
        assert_eq!(out.result.unwrap(), members);
    }
}
