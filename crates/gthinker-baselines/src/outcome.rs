//! Common result type for baseline engine runs.

use std::time::Duration;

/// What happened when a baseline engine ran a workload.
#[derive(Clone, Debug)]
pub struct RunOutcome<T> {
    /// The computed answer, when the run completed.
    pub result: Option<T>,
    /// Wall-clock runtime (up to the abort point for DNFs).
    pub elapsed: Duration,
    /// Peak bytes of the engine's dominant data structure (message
    /// buffers, embedding levels, disk queue, join intermediates...).
    pub peak_bytes: u64,
    /// Why the run ended.
    pub status: RunStatus,
}

/// Completion status of a baseline run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunStatus {
    /// Ran to completion.
    Completed,
    /// Aborted: the engine exceeded its memory budget (the paper
    /// reports such entries as out-of-memory failures).
    MemoryBudgetExceeded,
    /// Aborted: exceeded the disk budget (the paper: "RStream used up
    /// all our disk space").
    DiskBudgetExceeded,
    /// Aborted: exceeded the time budget (the paper: "> 24 hr").
    TimeBudgetExceeded,
}

impl<T> RunOutcome<T> {
    /// True when the engine produced an answer.
    pub fn completed(&self) -> bool {
        self.status == RunStatus::Completed
    }

    /// Formats the status the way the paper's tables do.
    pub fn status_label(&self) -> &'static str {
        match self.status {
            RunStatus::Completed => "ok",
            RunStatus::MemoryBudgetExceeded => "OOM",
            RunStatus::DiskBudgetExceeded => "out-of-disk",
            RunStatus::TimeBudgetExceeded => "timeout",
        }
    }
}
