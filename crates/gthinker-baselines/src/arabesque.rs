//! An Arabesque-like level-synchronous filter-process engine.
//!
//! Arabesque grows subgraphs one vertex per iteration: level `i` holds
//! every embedding with `i` vertices that passed the filter; level
//! `i+1` is produced by extending each with one adjacent vertex. The
//! paper's complaint is exactly this **materialization of every node of
//! the set-enumeration tree**: the level buffers grow exponentially and
//! exhaust memory on large/dense graphs. The engine tracks its level
//! sizes and aborts when they exceed a memory budget, reproducing the
//! OOM entries of Table III.
//!
//! Extension is canonical: an embedding `{v₁ < ... < vᵢ}` is extended
//! only by neighbors greater than `vᵢ`, so each vertex set is generated
//! once. This covers clique-style workloads (the filter requires
//! connectivity-by-construction anyway for cliques and triangles).

use crate::outcome::{RunOutcome, RunStatus};
use gthinker_graph::graph::Graph;
use gthinker_graph::ids::VertexId;
use parking_lot::Mutex;
use std::time::Instant;

/// A filter-process application.
pub trait FilterProcessApp: Send + Sync {
    /// Keep `embedding` for further extension?
    fn filter(&self, graph: &Graph, embedding: &[VertexId]) -> bool;
    /// Consume a surviving embedding (aggregate, output...).
    fn process(&self, graph: &Graph, embedding: &[VertexId]);
    /// Largest embedding size to explore.
    fn max_size(&self) -> usize;
}

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct FilterProcessConfig {
    /// Worker threads per level.
    pub threads: usize,
    /// Abort when a level's embedding bytes exceed this.
    pub memory_budget: u64,
}

impl Default for FilterProcessConfig {
    fn default() -> Self {
        FilterProcessConfig { threads: 4, memory_budget: 4 << 30 }
    }
}

/// Runs the filter-process loop; returns peak level bytes.
pub fn run_filter_process<A: FilterProcessApp>(
    graph: &Graph,
    app: &A,
    config: &FilterProcessConfig,
) -> RunOutcome<()> {
    let start = Instant::now();
    let mut peak: u64 = 0;
    // Level 1: single vertices.
    let mut level: Vec<Vec<VertexId>> = graph
        .vertices()
        .map(|v| vec![v])
        .filter(|e| {
            let keep = app.filter(graph, e);
            if keep {
                app.process(graph, e);
            }
            keep
        })
        .collect();
    let mut size = 1usize;
    while size < app.max_size() && !level.is_empty() {
        let next: Mutex<Vec<Vec<VertexId>>> = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            let chunk = level.len().div_ceil(config.threads).max(1);
            for slice in level.chunks(chunk) {
                let next = &next;
                s.spawn(move || {
                    let mut mine: Vec<Vec<VertexId>> = Vec::new();
                    for emb in slice {
                        let last = *emb.last().expect("non-empty embedding");
                        // Canonical extension: neighbors of any member,
                        // greater than the current maximum.
                        let mut cands: Vec<VertexId> = Vec::new();
                        for &m in emb {
                            for u in graph.neighbors(m).greater_than(last) {
                                if !cands.contains(u) && !emb.contains(u) {
                                    cands.push(*u);
                                }
                            }
                        }
                        for u in cands {
                            let mut e2 = emb.clone();
                            e2.push(u);
                            if app.filter(graph, &e2) {
                                app.process(graph, &e2);
                                mine.push(e2);
                            }
                        }
                    }
                    next.lock().extend(mine);
                });
            }
        });
        level = next.into_inner();
        size += 1;
        let bytes: u64 = level.iter().map(|e| 24 + 4 * e.len() as u64).sum();
        peak = peak.max(bytes);
        if bytes > config.memory_budget {
            return RunOutcome {
                result: None,
                elapsed: start.elapsed(),
                peak_bytes: peak,
                status: RunStatus::MemoryBudgetExceeded,
            };
        }
    }
    RunOutcome {
        result: Some(()),
        elapsed: start.elapsed(),
        peak_bytes: peak,
        status: RunStatus::Completed,
    }
}

/// Clique exploration: keep embeddings that are cliques, track the
/// largest (Arabesque's MCF formulation: grow cliques level by level).
pub struct ArabesqueMaxClique {
    best: Mutex<Vec<VertexId>>,
    max_size: usize,
}

impl ArabesqueMaxClique {
    /// Explores cliques up to `max_size` vertices.
    pub fn new(max_size: usize) -> Self {
        ArabesqueMaxClique { best: Mutex::new(Vec::new()), max_size }
    }

    /// The largest clique processed.
    pub fn best(&self) -> Vec<VertexId> {
        self.best.lock().clone()
    }
}

impl FilterProcessApp for ArabesqueMaxClique {
    fn filter(&self, graph: &Graph, embedding: &[VertexId]) -> bool {
        // Incremental clique check: the new (last) vertex must be
        // adjacent to all others.
        let (&last, rest) = embedding.split_last().expect("non-empty");
        rest.iter().all(|&u| graph.has_edge(u, last))
    }

    fn process(&self, _graph: &Graph, embedding: &[VertexId]) {
        let mut best = self.best.lock();
        if embedding.len() > best.len() {
            *best = embedding.to_vec();
        }
    }

    fn max_size(&self) -> usize {
        self.max_size
    }
}

/// Triangle counting as 3-vertex clique embeddings.
pub struct ArabesqueTriangles {
    count: std::sync::atomic::AtomicU64,
}

impl ArabesqueTriangles {
    /// Fresh counter.
    pub fn new() -> Self {
        ArabesqueTriangles { count: std::sync::atomic::AtomicU64::new(0) }
    }

    /// Triangles seen.
    pub fn count(&self) -> u64 {
        self.count.load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl Default for ArabesqueTriangles {
    fn default() -> Self {
        Self::new()
    }
}

impl FilterProcessApp for ArabesqueTriangles {
    fn filter(&self, graph: &Graph, embedding: &[VertexId]) -> bool {
        let (&last, rest) = embedding.split_last().expect("non-empty");
        rest.iter().all(|&u| graph.has_edge(u, last))
    }

    fn process(&self, _graph: &Graph, embedding: &[VertexId]) {
        if embedding.len() == 3 {
            self.count.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }

    fn max_size(&self) -> usize {
        3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gthinker_apps::serial::triangle::count_triangles;
    use gthinker_graph::gen;

    #[test]
    fn triangles_match_serial() {
        for seed in 0..3 {
            let g = gen::gnp(60, 0.1, seed);
            let app = ArabesqueTriangles::new();
            let out = run_filter_process(&g, &app, &FilterProcessConfig::default());
            assert!(out.completed());
            assert_eq!(app.count(), count_triangles(&g), "seed {seed}");
        }
    }

    #[test]
    fn max_clique_found_level_by_level() {
        let base = gen::gnp(100, 0.04, 7);
        let (g, members) = gen::plant_clique(&base, 7, 8);
        let app = ArabesqueMaxClique::new(10);
        let out = run_filter_process(&g, &app, &FilterProcessConfig::default());
        assert!(out.completed());
        assert_eq!(app.best(), members);
        assert!(out.peak_bytes > 0);
    }

    #[test]
    fn memory_budget_reproduces_oom() {
        let g = gen::complete(30);
        let app = ArabesqueMaxClique::new(30);
        let cfg = FilterProcessConfig { threads: 2, memory_budget: 10_000 };
        let out = run_filter_process(&g, &app, &cfg);
        assert_eq!(out.status, RunStatus::MemoryBudgetExceeded);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = gthinker_graph::graph::Graph::with_vertices(0);
        let app = ArabesqueTriangles::new();
        let out = run_filter_process(&g, &app, &FilterProcessConfig::default());
        assert!(out.completed());
        assert_eq!(app.count(), 0);
    }
}
