//! A Nuri-like single-threaded **best-first** subgraph expander.
//!
//! Nuri prioritizes the most promising subgraphs (here: clique search
//! states with the highest upper bound `|S| + |ext(S)|`) in a priority
//! queue. Because expansion is best-first rather than depth-first, the
//! number of buffered states can be huge; states beyond an in-memory
//! cap are managed on disk — the IO-bound behaviour §II describes. The
//! engine is deliberately single-threaded, like Nuri's Java prototype.

use crate::outcome::{RunOutcome, RunStatus};
use gthinker_apps::serial::clique::max_clique_above;
use gthinker_graph::adj::AdjList;
use gthinker_graph::graph::Graph;
use gthinker_graph::ids::VertexId;
#[cfg(test)]
use gthinker_graph::subgraph::Subgraph;
use gthinker_task::codec::{from_bytes, to_bytes};
use gthinker_task::task::Task;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct NuriConfig {
    /// States kept in memory; the rest overflow to disk.
    pub memory_states: usize,
    /// Directory for overflowed states.
    pub dir: std::path::PathBuf,
    /// Serial-solve threshold: states at least this small stop
    /// expanding and are solved exactly (keeps runs comparable to the
    /// other engines).
    pub solve_below: usize,
    /// Abort after this much wall-clock time.
    pub time_budget: Duration,
}

impl Default for NuriConfig {
    fn default() -> Self {
        NuriConfig {
            memory_states: 10_000,
            dir: std::env::temp_dir().join("nuri-states"),
            solve_below: 64,
            time_budget: Duration::from_secs(3600),
        }
    }
}

struct State {
    upper_bound: usize,
    task: Task<Vec<VertexId>>,
}

impl PartialEq for State {
    fn eq(&self, other: &Self) -> bool {
        self.upper_bound == other.upper_bound
    }
}
impl Eq for State {}
impl PartialOrd for State {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for State {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.upper_bound.cmp(&other.upper_bound)
    }
}

/// Best-first maximum clique search.
pub fn nuri_max_clique(graph: &Graph, config: &NuriConfig) -> RunOutcome<Vec<VertexId>> {
    let start = Instant::now();
    std::fs::create_dir_all(&config.dir).expect("state dir writable");
    let overflow_path = config.dir.join(format!("overflow-{}.states", std::process::id()));
    let mut overflow: Vec<(u64, u32)> = Vec::new(); // (offset, len) of spilled states
    let mut overflow_tail: u64 = 0;
    let mut disk_bytes: u64 = 0;
    let mut file: Option<std::fs::File> = None;

    let mut heap: BinaryHeap<State> = BinaryHeap::new();
    let mut best: Vec<VertexId> = Vec::new();

    // Seed with per-vertex states.
    for v in graph.vertices() {
        let gv = graph.neighbors(v).greater_than(v);
        if gv.is_empty() {
            if best.is_empty() {
                best = vec![v];
            }
            continue;
        }
        let mut t: Task<Vec<VertexId>> = Task::new(vec![v]);
        for &u in gv {
            let filtered: Vec<VertexId> = graph
                .neighbors(u)
                .greater_than(u)
                .iter()
                .copied()
                .filter(|w| gv.binary_search(w).is_ok())
                .collect();
            t.subgraph.add_vertex(u, AdjList::from_sorted(filtered));
        }
        heap.push(State { upper_bound: 1 + gv.len(), task: t });
    }

    loop {
        if start.elapsed() > config.time_budget {
            let _ = std::fs::remove_file(&overflow_path);
            return RunOutcome {
                result: None,
                elapsed: start.elapsed(),
                peak_bytes: disk_bytes,
                status: RunStatus::TimeBudgetExceeded,
            };
        }
        // Refill from disk when memory runs dry (reads back spilled
        // states — Nuri's on-disk subgraph management).
        if heap.is_empty() {
            let Some((offset, len)) = overflow.pop() else { break };
            use std::io::{Read, Seek, SeekFrom};
            let f = file.as_mut().expect("overflow file exists");
            let mut buf = vec![0u8; len as usize];
            f.seek(SeekFrom::Start(offset)).unwrap();
            f.read_exact(&mut buf).unwrap();
            let task: Task<Vec<VertexId>> = from_bytes(&buf).expect("state round-trip");
            let ub = task.context.len() + task.subgraph.num_vertices();
            heap.push(State { upper_bound: ub, task });
            continue;
        }
        let state = heap.pop().expect("non-empty heap");
        if state.upper_bound <= best.len() {
            // Best-first property: nothing left can beat the bound.
            // (Disk states were spilled with smaller bounds.)
            if overflow.is_empty() {
                break;
            }
            continue;
        }
        let s = &state.task.context;
        let g = &state.task.subgraph;
        if g.num_vertices() <= config.solve_below {
            let local = g.to_local();
            let delta = best.len().saturating_sub(s.len());
            if let Some(found) = max_clique_above(&local, delta) {
                let mut clique = s.clone();
                clique.extend(local.to_global(&found));
                clique.sort_unstable();
                if clique.len() > best.len() {
                    best = clique;
                }
            } else if g.num_vertices() == 0 && s.len() > best.len() {
                best = s.clone();
            }
            continue;
        }
        // Expand: one child per candidate.
        for &u in g.vertex_ids() {
            let ext: Vec<VertexId> = g.neighbors(u).expect("member").iter().collect();
            let ub = s.len() + 1 + ext.len();
            if ub <= best.len() {
                continue;
            }
            let mut child: Task<Vec<VertexId>> = Task::new({
                let mut s2 = s.clone();
                s2.push(u);
                s2
            });
            for &w in &ext {
                let wadj = g.neighbors(w).expect("candidate");
                child.subgraph.add_vertex(w, AdjList::from_sorted(wadj.intersect_slice(&ext)));
            }
            if heap.len() >= config.memory_states {
                // Spill the *worst* in-memory state to disk.
                use std::io::{Seek, SeekFrom, Write};
                let spill = heap.pop().expect("non-empty");
                let bytes = to_bytes(&spill.task);
                let f = file.get_or_insert_with(|| {
                    std::fs::OpenOptions::new()
                        .create(true)
                        .read(true)
                        .write(true)
                        .truncate(true)
                        .open(&overflow_path)
                        .expect("create overflow file")
                });
                f.seek(SeekFrom::Start(overflow_tail)).unwrap();
                f.write_all(&bytes).unwrap();
                overflow.push((overflow_tail, bytes.len() as u32));
                overflow_tail += bytes.len() as u64;
                disk_bytes = disk_bytes.max(overflow_tail);
            }
            heap.push(State { upper_bound: ub, task: child });
        }
    }
    let _ = std::fs::remove_file(&overflow_path);
    RunOutcome {
        result: Some(best),
        elapsed: start.elapsed(),
        peak_bytes: disk_bytes,
        status: RunStatus::Completed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gthinker_apps::serial::clique::max_clique_brute;
    use gthinker_graph::gen;

    fn config(tag: &str) -> NuriConfig {
        NuriConfig {
            dir: std::env::temp_dir().join(format!("nuri-test-{tag}-{}", std::process::id())),
            ..Default::default()
        }
    }

    fn brute_size(g: &Graph) -> usize {
        let mut sg = Subgraph::new();
        for v in g.vertices() {
            sg.add_vertex(v, g.neighbors(v).clone());
        }
        max_clique_brute(&sg.to_local()).len()
    }

    #[test]
    fn finds_max_clique_small() {
        for seed in 0..4 {
            let g = gen::gnp(15, 0.45, seed);
            let out = nuri_max_clique(&g, &config("small"));
            assert!(out.completed());
            assert_eq!(out.result.unwrap().len(), brute_size(&g), "seed {seed}");
        }
    }

    #[test]
    fn expansion_path_agrees_with_direct_solve() {
        let g = gen::gnp(60, 0.3, 7);
        let direct = nuri_max_clique(&g, &config("direct"));
        let mut cfg = config("expand");
        cfg.solve_below = 4; // force deep best-first expansion
        let expanded = nuri_max_clique(&g, &cfg);
        assert_eq!(direct.result.unwrap().len(), expanded.result.unwrap().len());
    }

    #[test]
    fn disk_overflow_round_trips_states() {
        let g = gen::gnp(40, 0.4, 3);
        let mut cfg = config("overflow");
        cfg.memory_states = 4;
        cfg.solve_below = 4;
        let out = nuri_max_clique(&g, &cfg);
        assert!(out.completed());
        let direct = nuri_max_clique(&g, &config("overflow-direct"));
        assert_eq!(out.result.unwrap().len(), direct.result.unwrap().len());
        assert!(out.peak_bytes > 0, "states must have spilled");
    }

    #[test]
    fn planted_clique_found() {
        let base = gen::barabasi_albert(150, 3, 4);
        let (g, members) = gen::plant_clique(&base, 8, 5);
        let out = nuri_max_clique(&g, &config("plant"));
        assert_eq!(out.result.unwrap(), members);
    }
}
