//! An NScale-like two-phase engine.
//!
//! NScale (§II) extracts the subgraphs of interest around each vertex
//! with rounds of MapReduce **before any mining starts**, holding them
//! on disk: "this design requires that all subgraphs be constructed
//! before any of them can begin its mining, leading to poor CPU
//! utilization and the straggler's problem". This engine reproduces
//! that architecture:
//!
//! * **Phase 1 (construction)** — every vertex's oriented ego network
//!   `(v, {(u, Γ_>(u) ∩ Γ_>(v))})` is serialized to a disk-resident
//!   subgraph store, sequentially, MapReduce-style (the full shuffle
//!   machinery is elided; what's preserved is the materialize-
//!   everything-first dataflow and its disk volume).
//! * **Phase 2 (mining)** — worker threads stream the store back and
//!   mine each ego network (triangle counting or clique search).
//!
//! The reported peak bytes are the materialized store size; phase
//! times are reported separately so the idle-CPU phase is visible.

use crate::outcome::{RunOutcome, RunStatus};
use gthinker_apps::serial::clique::max_clique_above;
use gthinker_graph::adj::AdjList;
use gthinker_graph::graph::Graph;
use gthinker_graph::ids::VertexId;
use gthinker_graph::subgraph::Subgraph;
use gthinker_task::codec::{from_bytes, to_bytes, Decode, Encode};
use parking_lot::Mutex;
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::time::{Duration, Instant};

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct NScaleConfig {
    /// Mining threads for phase 2.
    pub threads: usize,
    /// Directory for the subgraph store.
    pub dir: std::path::PathBuf,
    /// Abort when the materialized store exceeds this many bytes.
    pub disk_budget: u64,
}

impl Default for NScaleConfig {
    fn default() -> Self {
        NScaleConfig {
            threads: 4,
            dir: std::env::temp_dir().join("nscale-store"),
            disk_budget: 8 << 30,
        }
    }
}

/// Timing breakdown of an NScale-like run.
#[derive(Clone, Copy, Debug)]
pub struct PhaseTimes {
    /// Subgraph construction (no mining can overlap it).
    pub construction: Duration,
    /// Parallel mining over the disk store.
    pub mining: Duration,
}

/// One stored ego network: the anchor and its candidates' oriented,
/// filtered adjacency.
type EgoRecord = (VertexId, Vec<(VertexId, AdjList)>);

/// Builds the disk store (phase 1). Returns record offsets or a DNF.
fn build_store(
    graph: &Graph,
    path: &std::path::Path,
    budget: u64,
) -> Result<(Vec<(u64, u32)>, u64), RunStatus> {
    let file = std::fs::File::create(path).expect("store creatable");
    let mut w = BufWriter::new(file);
    let mut offsets = Vec::new();
    let mut at = 0u64;
    for v in graph.vertices() {
        let gv = graph.neighbors(v).greater_than(v);
        if gv.len() < 2 {
            continue;
        }
        let ego: EgoRecord = (
            v,
            gv.iter()
                .map(|&u| {
                    let filtered: Vec<VertexId> = graph
                        .neighbors(u)
                        .greater_than(u)
                        .iter()
                        .copied()
                        .filter(|w| gv.binary_search(w).is_ok())
                        .collect();
                    (u, AdjList::from_sorted(filtered))
                })
                .collect(),
        );
        let bytes = to_bytes(&ego);
        w.write_all(&bytes).expect("store writable");
        offsets.push((at, bytes.len() as u32));
        at += bytes.len() as u64;
        if at > budget {
            return Err(RunStatus::DiskBudgetExceeded);
        }
    }
    w.flush().expect("store flush");
    Ok((offsets, at))
}

fn read_record(file: &Mutex<std::fs::File>, offset: u64, len: u32) -> EgoRecord {
    let mut buf = vec![0u8; len as usize];
    let mut f = file.lock();
    f.seek(SeekFrom::Start(offset)).expect("seek");
    f.read_exact(&mut buf).expect("read record");
    drop(f);
    from_bytes(&buf).expect("store round-trips")
}

/// Phase-2 driver: streams records to `threads` miners.
fn mine_store<T: Send>(
    path: &std::path::Path,
    offsets: &[(u64, u32)],
    threads: usize,
    mine: impl Fn(EgoRecord) -> T + Sync,
    fold: impl Fn(&mut T, T) + Sync,
    init: impl Fn() -> T + Sync,
) -> T {
    let file = Mutex::new(std::fs::File::open(path).expect("store readable"));
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results: Vec<T> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let file = &file;
                let next = &next;
                let mine = &mine;
                let fold = &fold;
                let init = &init;
                s.spawn(move || {
                    let mut acc = init();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= offsets.len() {
                            return acc;
                        }
                        let (offset, len) = offsets[i];
                        fold(&mut acc, mine(read_record(file, offset, len)));
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("miner")).collect()
    });
    let mut total = init();
    for r in results {
        fold(&mut total, r);
    }
    total
}

/// NScale-like triangle counting. The `RunOutcome` is augmented with
/// phase times through the returned tuple.
pub fn nscale_triangle_count(
    graph: &Graph,
    config: &NScaleConfig,
) -> (RunOutcome<u64>, Option<PhaseTimes>) {
    std::fs::create_dir_all(&config.dir).expect("store dir");
    let path = config.dir.join(format!("tc-{}.store", std::process::id()));
    let start = Instant::now();
    let (offsets, bytes) = match build_store(graph, &path, config.disk_budget) {
        Ok(ok) => ok,
        Err(status) => {
            let _ = std::fs::remove_file(&path);
            return (
                RunOutcome {
                    result: None,
                    elapsed: start.elapsed(),
                    peak_bytes: config.disk_budget,
                    status,
                },
                None,
            );
        }
    };
    let construction = start.elapsed();
    let t1 = Instant::now();
    let count = mine_store(
        &path,
        &offsets,
        config.threads,
        |(_, ego)| {
            // Every stored edge among the candidates closes a triangle
            // with the anchor.
            ego.iter().map(|(_, adj)| adj.degree() as u64).sum::<u64>()
        },
        |acc, x| *acc += x,
        || 0u64,
    );
    let mining = t1.elapsed();
    let _ = std::fs::remove_file(&path);
    (
        RunOutcome {
            result: Some(count),
            elapsed: start.elapsed(),
            peak_bytes: bytes,
            status: RunStatus::Completed,
        },
        Some(PhaseTimes { construction, mining }),
    )
}

/// NScale-like maximum clique finding.
pub fn nscale_max_clique(
    graph: &Graph,
    config: &NScaleConfig,
) -> (RunOutcome<Vec<VertexId>>, Option<PhaseTimes>) {
    std::fs::create_dir_all(&config.dir).expect("store dir");
    let path = config.dir.join(format!("mcf-{}.store", std::process::id()));
    let start = Instant::now();
    let (offsets, bytes) = match build_store(graph, &path, config.disk_budget) {
        Ok(ok) => ok,
        Err(status) => {
            let _ = std::fs::remove_file(&path);
            return (
                RunOutcome {
                    result: None,
                    elapsed: start.elapsed(),
                    peak_bytes: config.disk_budget,
                    status,
                },
                None,
            );
        }
    };
    let construction = start.elapsed();
    let t1 = Instant::now();
    // Global bound shared across miners (NScale's mining phase is
    // embarrassingly parallel; sharing the bound only helps it).
    let best: Mutex<Vec<VertexId>> = Mutex::new(Vec::new());
    mine_store(
        &path,
        &offsets,
        config.threads,
        |(v, ego)| {
            let bound = best.lock().len();
            if ego.len() < bound {
                return;
            }
            let mut sub = Subgraph::with_capacity(ego.len());
            for (u, adj) in ego {
                sub.add_vertex(u, adj);
            }
            let local = sub.to_local();
            if let Some(found) = max_clique_above(&local, bound.saturating_sub(1)) {
                let mut clique = vec![v];
                clique.extend(local.to_global(&found));
                clique.sort_unstable();
                let mut b = best.lock();
                if clique.len() > b.len() {
                    *b = clique;
                }
            }
        },
        |_, _| {},
        || (),
    );
    let mining = t1.elapsed();
    let _ = std::fs::remove_file(&path);
    let mut result = best.into_inner();
    if result.is_empty() && graph.num_vertices() > 0 {
        result = vec![VertexId(0)]; // degenerate: no vertex had 2 larger nbrs
    }
    (
        RunOutcome {
            result: Some(result),
            elapsed: start.elapsed(),
            peak_bytes: bytes,
            status: RunStatus::Completed,
        },
        Some(PhaseTimes { construction, mining }),
    )
}

// EgoRecord codec: provided by the generic tuple/Vec impls, but the
// nested tuple needs Encode/Decode for (VertexId, AdjList) pairs, which
// exist via the generic (A, B) impl.
const _: fn() = || {
    fn assert_codec<T: Encode + Decode>() {}
    assert_codec::<EgoRecord>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use gthinker_apps::serial::clique::max_clique_brute;
    use gthinker_apps::serial::triangle::count_triangles;
    use gthinker_graph::gen;

    fn config(tag: &str) -> NScaleConfig {
        NScaleConfig {
            threads: 2,
            dir: std::env::temp_dir().join(format!("nscale-test-{tag}-{}", std::process::id())),
            ..Default::default()
        }
    }

    #[test]
    fn triangle_counts_match_serial() {
        for seed in 0..3 {
            let g = gen::gnp(70, 0.12, seed);
            let (out, phases) = nscale_triangle_count(&g, &config("tc"));
            assert!(out.completed());
            assert_eq!(out.result.unwrap(), count_triangles(&g), "seed {seed}");
            assert!(out.peak_bytes > 0, "ego nets were materialized");
            assert!(phases.is_some());
        }
    }

    #[test]
    fn max_clique_matches_brute_force() {
        for seed in 0..3 {
            let g = gen::gnp(15, 0.45, seed);
            let mut sg = Subgraph::new();
            for v in g.vertices() {
                sg.add_vertex(v, g.neighbors(v).clone());
            }
            let expected = max_clique_brute(&sg.to_local()).len();
            let (out, _) = nscale_max_clique(&g, &config("mcf"));
            assert_eq!(out.result.unwrap().len(), expected, "seed {seed}");
        }
    }

    #[test]
    fn disk_budget_aborts_construction() {
        let g = gen::complete(60);
        let mut cfg = config("budget");
        cfg.disk_budget = 2_000;
        let (out, phases) = nscale_triangle_count(&g, &cfg);
        assert_eq!(out.status, RunStatus::DiskBudgetExceeded);
        assert!(out.result.is_none());
        assert!(phases.is_none(), "mining never started");
    }

    #[test]
    fn construction_completes_before_mining() {
        let g = gen::barabasi_albert(300, 6, 2);
        let (out, phases) = nscale_triangle_count(&g, &config("phases"));
        assert!(out.completed());
        let p = phases.unwrap();
        // Both phases are real and strictly ordered by design.
        assert!(p.construction + p.mining <= out.elapsed + Duration::from_millis(5));
    }
}
