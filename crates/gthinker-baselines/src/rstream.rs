//! An RStream-like single-machine **out-of-core** engine.
//!
//! RStream expresses mining as relational joins over disk-resident
//! tables (its GRAS model). Triangle counting becomes
//! `E ⋈ E ⋈ E`: phase 1 streams the edge table from disk and joins it
//! with itself to produce the **wedge table** (2-paths), written back
//! to disk; phase 2 streams the wedges and probes an in-memory edge
//! index to count closures. The materialized intermediate is what
//! makes the execution IO-bound — and what "used up all our disk
//! space" for the paper's two big graphs.

use crate::outcome::{RunOutcome, RunStatus};
use gthinker_graph::graph::Graph;
use gthinker_graph::ids::VertexId;
use std::io::{BufReader, BufWriter, Read, Write};
use std::time::Instant;

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct RStreamConfig {
    /// Directory for the on-disk tables.
    pub dir: std::path::PathBuf,
    /// Abort when the wedge table exceeds this many bytes.
    pub disk_budget: u64,
}

impl Default for RStreamConfig {
    fn default() -> Self {
        RStreamConfig { dir: std::env::temp_dir().join("rstream-tables"), disk_budget: 8 << 30 }
    }
}

fn write_u32<W: Write>(w: &mut W, v: u32) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32<R: Read>(r: &mut R) -> std::io::Result<Option<u32>> {
    let mut buf = [0u8; 4];
    match r.read_exact(&mut buf) {
        Ok(()) => Ok(Some(u32::from_le_bytes(buf))),
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => Ok(None),
        Err(e) => Err(e),
    }
}

/// Out-of-core triangle counting via the wedge join.
pub fn rstream_triangle_count(graph: &Graph, config: &RStreamConfig) -> RunOutcome<u64> {
    let start = Instant::now();
    std::fs::create_dir_all(&config.dir).expect("table dir writable");
    let edges_path = config.dir.join(format!("edges-{}.tbl", std::process::id()));
    let wedges_path = config.dir.join(format!("wedges-{}.tbl", std::process::id()));

    // Materialize the oriented edge table E = {(u, v) : u < v} on disk.
    {
        let mut w = BufWriter::new(std::fs::File::create(&edges_path).expect("create edges"));
        for (u, v) in graph.edges() {
            write_u32(&mut w, u.0).unwrap();
            write_u32(&mut w, v.0).unwrap();
        }
        w.flush().unwrap();
    }

    // Phase 1: E ⋈ E on shared smaller endpoint → wedge table
    // {(u, v, w) : u < v < w, uv ∈ E, uw ∈ E}, streamed to disk.
    let mut wedge_bytes: u64 = 0;
    {
        let mut r = BufReader::new(std::fs::File::open(&edges_path).expect("open edges"));
        let mut w = BufWriter::new(std::fs::File::create(&wedges_path).expect("create wedges"));
        while let Some(u) = read_u32(&mut r).unwrap() {
            let v = read_u32(&mut r).unwrap().expect("edge pairs");
            // Join partner edges (u, w) with w > v come from u's list.
            for &cand in graph.neighbors(VertexId(u)).greater_than(VertexId(v)) {
                write_u32(&mut w, u).unwrap();
                write_u32(&mut w, v).unwrap();
                write_u32(&mut w, cand.0).unwrap();
                wedge_bytes += 12;
                if wedge_bytes > config.disk_budget {
                    let _ = std::fs::remove_file(&edges_path);
                    let _ = std::fs::remove_file(&wedges_path);
                    return RunOutcome {
                        result: None,
                        elapsed: start.elapsed(),
                        peak_bytes: wedge_bytes,
                        status: RunStatus::DiskBudgetExceeded,
                    };
                }
            }
        }
        w.flush().unwrap();
    }

    // Phase 2: stream wedges, probe edges for the closing (v, w) edge.
    let mut count = 0u64;
    {
        let mut r = BufReader::new(std::fs::File::open(&wedges_path).expect("open wedges"));
        while let Some(_u) = read_u32(&mut r).unwrap() {
            let v = read_u32(&mut r).unwrap().expect("wedge triple");
            let w = read_u32(&mut r).unwrap().expect("wedge triple");
            if graph.has_edge(VertexId(v), VertexId(w)) {
                count += 1;
            }
        }
    }
    let _ = std::fs::remove_file(&edges_path);
    let _ = std::fs::remove_file(&wedges_path);
    RunOutcome {
        result: Some(count),
        elapsed: start.elapsed(),
        peak_bytes: wedge_bytes,
        status: RunStatus::Completed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gthinker_apps::serial::triangle::count_triangles;
    use gthinker_graph::gen;

    fn config(tag: &str) -> RStreamConfig {
        RStreamConfig {
            dir: std::env::temp_dir().join(format!("rstream-test-{tag}-{}", std::process::id())),
            ..Default::default()
        }
    }

    #[test]
    fn counts_match_serial() {
        for seed in 0..3 {
            let g = gen::gnp(80, 0.1, seed);
            let out = rstream_triangle_count(&g, &config("match"));
            assert!(out.completed());
            assert_eq!(out.result.unwrap(), count_triangles(&g), "seed {seed}");
        }
    }

    #[test]
    fn wedge_table_is_materialized() {
        let g = gen::complete(20);
        let out = rstream_triangle_count(&g, &config("wedge"));
        // K20: wedges = C(20,3) * 3? No: ordered wedges u<v<w with
        // uv, uw edges = C(20, 3) per (u fixed smallest) — each triple
        // yields exactly one wedge = 1140, 12 bytes each.
        assert_eq!(out.peak_bytes, 1140 * 12);
        assert_eq!(out.result.unwrap(), 1140);
    }

    #[test]
    fn disk_budget_reproduces_out_of_disk() {
        let g = gen::complete(40);
        let mut cfg = config("budget");
        cfg.disk_budget = 1_000;
        let out = rstream_triangle_count(&g, &cfg);
        assert_eq!(out.status, RunStatus::DiskBudgetExceeded);
        assert_eq!(out.status_label(), "out-of-disk");
    }
}
