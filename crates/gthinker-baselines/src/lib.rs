//! Baseline engines re-implemented for the paper's comparison tables.
//!
//! Each baseline reproduces the *architectural property* §II blames for
//! that system's subgraph-mining performance:
//!
//! * [`vertexcentric`] — a Pregel/Giraph-like BSP engine whose
//!   neighborhood-exchange algorithms materialize message volumes far
//!   exceeding the graph (Table III's Giraph OOM/slowness).
//! * [`arabesque`] — a level-synchronous filter-process engine that
//!   materializes every node of the set-enumeration tree per level.
//! * [`gminer`] — a disk-resident, LSH-ordered task queue where
//!   unfinished tasks are re-serialized to disk, the reinsert cost the
//!   paper identifies as G-Miner's bottleneck.
//! * [`rstream`] — an out-of-core relational-join engine whose wedge
//!   intermediate exhausts disk on dense graphs.
//! * [`nscale`] — a two-phase engine that materializes every ego
//!   network on disk before any mining starts (NScale's criticized
//!   dataflow).
//! * [`nuri`] — a single-threaded best-first expander with on-disk
//!   state overflow.
//!
//! All engines produce [`RunOutcome`]s with wall-clock time, the peak
//! bytes of their dominant structure, and a completion status that maps
//! onto the paper's "OOM" / "> 24 hr" / "out of disk" table entries.

pub mod arabesque;
pub mod gminer;
pub mod nscale;
pub mod nuri;
pub mod outcome;
pub mod rstream;
pub mod vertexcentric;

pub use outcome::{RunOutcome, RunStatus};
