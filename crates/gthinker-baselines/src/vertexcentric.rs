//! A Pregel/Giraph-like vertex-centric BSP engine.
//!
//! Reproduces the architectural property the paper blames for
//! vertex-centric systems' poor subgraph-mining performance: *all*
//! communication is materialized as per-vertex message lists between
//! supersteps, so neighborhood-exchange algorithms hold message volumes
//! comparable to (or far exceeding) the graph itself in memory — the
//! engine's peak message bytes are tracked and reported.
//!
//! Two programs are provided: triangle counting and maximum clique
//! finding, both via the standard "send your larger-neighbor list"
//! exchange ([5], [24] in the paper).

use crate::outcome::{RunOutcome, RunStatus};
use gthinker_graph::graph::Graph;
use gthinker_graph::ids::VertexId;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A vertex-centric program: `compute` runs once per vertex per
/// superstep, consuming the messages sent to it in the previous one.
pub trait VertexProgram: Send + Sync {
    /// Message payload.
    type Message: Send + Sync + Clone;
    /// Final per-run output (aggregated by the program itself).
    type Output: Send;

    /// Per-vertex computation. Send messages via `ctx`. Returning
    /// `false` votes to halt (a vertex is re-activated by incoming
    /// messages).
    fn compute(
        &self,
        v: VertexId,
        graph: &Graph,
        superstep: usize,
        messages: &[Self::Message],
        ctx: &MessageCtx<'_, Self::Message>,
    ) -> bool;

    /// Size accounting for one message.
    fn message_bytes(msg: &Self::Message) -> usize;

    /// The program's final output after the run halts.
    fn output(&self) -> Self::Output;
}

/// Message-sending context handed to `compute`.
pub struct MessageCtx<'a, M> {
    outbox: &'a Mutex<Vec<(VertexId, M)>>,
}

impl<M> MessageCtx<'_, M> {
    /// Sends `msg` to vertex `to` for delivery next superstep.
    pub fn send(&self, to: VertexId, msg: M) {
        self.outbox.lock().push((to, msg));
    }
}

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct BspConfig {
    /// Worker threads per superstep.
    pub threads: usize,
    /// Abort when buffered message bytes exceed this (models OOM).
    pub memory_budget: u64,
}

impl Default for BspConfig {
    fn default() -> Self {
        BspConfig { threads: 4, memory_budget: 4 << 30 }
    }
}

/// Runs a vertex program to halting (or budget exhaustion).
pub fn run_bsp<P: VertexProgram>(
    graph: &Graph,
    program: &P,
    config: &BspConfig,
) -> RunOutcome<P::Output> {
    let start = Instant::now();
    let n = graph.num_vertices();
    let peak = AtomicU64::new(0);
    let mut inboxes: Vec<Vec<P::Message>> = (0..n).map(|_| Vec::new()).collect();
    let mut active: Vec<bool> = vec![true; n];
    let mut superstep = 0usize;
    loop {
        // Outboxes are per-thread to limit lock contention; sizes are
        // summed for the peak estimate.
        let outbox: Mutex<Vec<(VertexId, P::Message)>> = Mutex::new(Vec::new());
        let ctx = MessageCtx { outbox: &outbox };
        let halted: Vec<bool> = std::thread::scope(|s| {
            let chunk = n.div_ceil(config.threads).max(1);
            let handles: Vec<_> = (0..config.threads)
                .map(|t| {
                    let lo = (t * chunk).min(n);
                    let hi = ((t + 1) * chunk).min(n);
                    let inboxes = &inboxes;
                    let active = &active;
                    let ctx = &ctx;
                    s.spawn(move || {
                        let mut halted = Vec::with_capacity(hi - lo);
                        for i in lo..hi {
                            let v = VertexId(i as u32);
                            if !active[i] && inboxes[i].is_empty() {
                                halted.push(true);
                                continue;
                            }
                            let proceed = program.compute(v, graph, superstep, &inboxes[i], ctx);
                            halted.push(!proceed);
                        }
                        halted
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().expect("bsp thread")).collect()
        });

        // Deliver: rebuild inboxes for the next superstep.
        let sent = outbox.into_inner();
        let msg_bytes: u64 = sent.iter().map(|(_, m)| P::message_bytes(m) as u64).sum();
        peak.fetch_max(msg_bytes, Ordering::Relaxed);
        if msg_bytes > config.memory_budget {
            return RunOutcome {
                result: None,
                elapsed: start.elapsed(),
                peak_bytes: peak.load(Ordering::Relaxed),
                status: RunStatus::MemoryBudgetExceeded,
            };
        }
        for inbox in &mut inboxes {
            inbox.clear();
        }
        let any_messages = !sent.is_empty();
        for (to, msg) in sent {
            inboxes[to.index()].push(msg);
        }
        for (i, h) in halted.iter().enumerate() {
            active[i] = !h;
        }
        superstep += 1;
        if !any_messages && active.iter().all(|a| !a) {
            break;
        }
    }
    RunOutcome {
        result: Some(program.output()),
        elapsed: start.elapsed(),
        peak_bytes: peak.load(Ordering::Relaxed),
        status: RunStatus::Completed,
    }
}

/// Vertex-centric triangle counting: in superstep 0 every vertex sends
/// `Γ_>(v)` to each larger neighbor; in superstep 1 each vertex
/// intersects received lists with its own `Γ_>`.
pub struct BspTriangleCount {
    total: AtomicU64,
}

impl BspTriangleCount {
    /// Fresh counter program.
    pub fn new() -> Self {
        BspTriangleCount { total: AtomicU64::new(0) }
    }
}

impl Default for BspTriangleCount {
    fn default() -> Self {
        Self::new()
    }
}

impl VertexProgram for BspTriangleCount {
    type Message = Vec<VertexId>;
    type Output = u64;

    fn compute(
        &self,
        v: VertexId,
        graph: &Graph,
        superstep: usize,
        messages: &[Vec<VertexId>],
        ctx: &MessageCtx<'_, Vec<VertexId>>,
    ) -> bool {
        match superstep {
            0 => {
                let gv = graph.neighbors(v).greater_than(v);
                if gv.len() >= 2 {
                    for &u in gv {
                        ctx.send(u, gv.to_vec());
                    }
                }
                false
            }
            _ => {
                let gv = graph.neighbors(v).greater_than(v);
                let mut local = 0u64;
                for msg in messages {
                    local += gthinker_graph::adj::count_intersect_sorted(msg, gv) as u64;
                }
                if local > 0 {
                    self.total.fetch_add(local, Ordering::Relaxed);
                }
                false
            }
        }
    }

    fn message_bytes(msg: &Vec<VertexId>) -> usize {
        24 + 4 * msg.len()
    }

    fn output(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }
}

/// Vertex-centric maximum clique: superstep 0 sends `Γ_>(u)` to every
/// *smaller* neighbor; superstep 1 builds each vertex's induced
/// candidate subgraph from the received lists and solves it serially.
/// The message volume materializes every ego network simultaneously —
/// the blow-up Table III shows for Giraph.
pub struct BspMaxClique {
    best: Mutex<Vec<VertexId>>,
}

impl BspMaxClique {
    /// Fresh program.
    pub fn new() -> Self {
        BspMaxClique { best: Mutex::new(Vec::new()) }
    }
}

impl Default for BspMaxClique {
    fn default() -> Self {
        Self::new()
    }
}

impl VertexProgram for BspMaxClique {
    type Message = (VertexId, Vec<VertexId>);
    type Output = Vec<VertexId>;

    fn compute(
        &self,
        v: VertexId,
        graph: &Graph,
        superstep: usize,
        messages: &[(VertexId, Vec<VertexId>)],
        ctx: &MessageCtx<'_, (VertexId, Vec<VertexId>)>,
    ) -> bool {
        match superstep {
            0 => {
                let gv: Vec<VertexId> = graph.neighbors(v).greater_than(v).to_vec();
                for u in graph.neighbors(v).iter() {
                    if u < v {
                        ctx.send(u, (v, gv.clone()));
                    }
                }
                false
            }
            _ => {
                let gv = graph.neighbors(v).greater_than(v);
                if !messages.is_empty() || !gv.is_empty() {
                    let mut sub = gthinker_graph::subgraph::Subgraph::new();
                    let set: Vec<VertexId> = gv.to_vec();
                    for (u, list) in messages {
                        if set.binary_search(u).is_ok() {
                            let filtered: Vec<VertexId> = list
                                .iter()
                                .copied()
                                .filter(|w| set.binary_search(w).is_ok())
                                .collect();
                            sub.add_vertex(
                                *u,
                                gthinker_graph::adj::AdjList::from_unsorted(filtered),
                            );
                        }
                    }
                    for &u in &set {
                        if !sub.contains(u) {
                            sub.add_vertex(u, gthinker_graph::adj::AdjList::new());
                        }
                    }
                    let local = sub.to_local();
                    let mut best = self.best.lock();
                    let bound = best.len().saturating_sub(1);
                    if let Some(found) =
                        gthinker_apps::serial::clique::max_clique_above(&local, bound)
                    {
                        let mut clique = vec![v];
                        clique.extend(local.to_global(&found));
                        clique.sort_unstable();
                        if clique.len() > best.len() {
                            *best = clique;
                        }
                    } else if best.is_empty() {
                        *best = vec![v];
                    }
                }
                false
            }
        }
    }

    fn message_bytes(msg: &(VertexId, Vec<VertexId>)) -> usize {
        28 + 4 * msg.1.len()
    }

    fn output(&self) -> Vec<VertexId> {
        self.best.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gthinker_graph::gen;

    #[test]
    fn bsp_triangle_count_matches_known_values() {
        let g = gen::complete(6); // C(6,3) = 20
        let out = run_bsp(&g, &BspTriangleCount::new(), &BspConfig::default());
        assert!(out.completed());
        assert_eq!(out.result.unwrap(), 20);
        assert!(out.peak_bytes > 0, "messages were materialized");
    }

    #[test]
    fn bsp_triangle_count_matches_random() {
        for seed in 0..3 {
            let g = gen::gnp(80, 0.1, seed);
            let expected = {
                // Independent serial count.
                let mut c = 0u64;
                for u in g.vertices() {
                    let gu = g.neighbors(u).greater_than(u);
                    for &v in gu {
                        let gv = g.neighbors(v).greater_than(v);
                        c += gthinker_graph::adj::count_intersect_sorted(gu, gv) as u64;
                    }
                }
                c
            };
            let out = run_bsp(&g, &BspTriangleCount::new(), &BspConfig::default());
            assert_eq!(out.result.unwrap(), expected, "seed {seed}");
        }
    }

    #[test]
    fn bsp_max_clique_finds_planted() {
        let base = gen::gnp(150, 0.04, 2);
        let (g, members) = gen::plant_clique(&base, 8, 3);
        let out = run_bsp(&g, &BspMaxClique::new(), &BspConfig::default());
        assert!(out.completed());
        assert_eq!(out.result.unwrap(), members);
    }

    #[test]
    fn memory_budget_aborts_run() {
        let g = gen::complete(40); // heavy neighborhood exchange
        let cfg = BspConfig { threads: 2, memory_budget: 64 };
        let out = run_bsp(&g, &BspTriangleCount::new(), &cfg);
        assert_eq!(out.status, RunStatus::MemoryBudgetExceeded);
        assert!(out.result.is_none());
        assert_eq!(out.status_label(), "OOM");
    }
}
