//! Tests for the progress-observer API.

use gthinker_core::prelude::*;
use gthinker_core::run_job_observed;
use gthinker_graph::gen;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

struct Sum;
impl Aggregator for Sum {
    type Item = u64;
    type Partial = u64;
    type Global = u64;
    fn init_partial(&self) -> u64 {
        0
    }
    fn init_global(&self) -> u64 {
        0
    }
    fn aggregate(&self, p: &mut u64, item: u64) {
        *p += item;
    }
    fn merge(&self, g: &mut u64, p: &u64) {
        *g += *p;
    }
}

/// Edge counter that pulls (to generate observable cache traffic).
struct EdgeCount;
impl App for EdgeCount {
    type Context = ();
    type Agg = Sum;
    fn make_aggregator(&self) -> Sum {
        Sum
    }
    fn task_spawn(&self, v: VertexId, adj: &AdjList, env: &mut SpawnEnv<'_, Self>) {
        let mut t = Task::new(());
        for u in adj.greater_than(v) {
            t.pull(*u);
        }
        if t.has_pulls() {
            env.add_task(t);
        }
    }
    fn compute(&self, _t: &mut Task<()>, f: &Frontier, env: &mut ComputeEnv<'_, Self>) -> bool {
        env.aggregate(f.len() as u64);
        false
    }
}

#[test]
fn observer_sees_monotonic_progress_and_final_result_is_unaffected() {
    let g = gen::barabasi_albert(3_000, 5, 5);
    let snapshots = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let sink = Arc::clone(&snapshots);
    let mut cfg = JobConfig::cluster(2, 2);
    cfg.sync_interval = Duration::from_millis(10);
    let r = run_job_observed(Arc::new(EdgeCount), &g, &cfg, move |s| {
        sink.lock().push(s);
    })
    .unwrap();
    assert_eq!(r.global, g.num_edges() as u64);
    let snaps = snapshots.lock();
    assert!(!snaps.is_empty(), "at least one snapshot per sync interval");
    // Monotonic counters.
    for w in snaps.windows(2) {
        assert!(w[1].tasks_finished >= w[0].tasks_finished);
        assert!(w[1].cache_misses >= w[0].cache_misses);
        assert!(w[1].net_bytes >= w[0].net_bytes);
        assert!(w[1].elapsed >= w[0].elapsed);
    }
    // The last snapshot is from a mostly-finished job.
    let last = snaps.last().unwrap();
    assert!(last.tasks_finished > 0);
}

#[test]
fn observer_callback_count_tracks_runtime() {
    let g = gen::gnp(300, 0.05, 7);
    let calls = Arc::new(AtomicU64::new(0));
    let c = Arc::clone(&calls);
    let mut cfg = JobConfig::single_machine(2);
    cfg.sync_interval = Duration::from_millis(5);
    let r = run_job_observed(Arc::new(EdgeCount), &g, &cfg, move |_| {
        c.fetch_add(1, Ordering::Relaxed);
    })
    .unwrap();
    assert_eq!(r.global, g.num_edges() as u64);
    let n = calls.load(Ordering::Relaxed);
    let expected_max = r.elapsed.as_millis() as u64 / 5 + 2;
    assert!(n <= expected_max, "observer fired {n} times in {:?}", r.elapsed);
}
