//! Integration tests for the metrics registry: full snapshots from a
//! live job, lossless histogram merging, and the event timeline.

use gthinker_core::prelude::*;
use gthinker_core::run_job_metrics_observed;
use gthinker_graph::gen;
use std::sync::Arc;
use std::time::Duration;

struct Sum;
impl Aggregator for Sum {
    type Item = u64;
    type Partial = u64;
    type Global = u64;
    fn init_partial(&self) -> u64 {
        0
    }
    fn init_global(&self) -> u64 {
        0
    }
    fn aggregate(&self, p: &mut u64, item: u64) {
        *p += item;
    }
    fn merge(&self, g: &mut u64, p: &u64) {
        *g += *p;
    }
}

/// Edge counter that pulls, so cache/network/responder paths all run.
struct EdgeCount;
impl App for EdgeCount {
    type Context = ();
    type Agg = Sum;
    fn make_aggregator(&self) -> Sum {
        Sum
    }
    fn task_spawn(&self, v: VertexId, adj: &AdjList, env: &mut SpawnEnv<'_, Self>) {
        let mut t = Task::new(());
        for u in adj.greater_than(v) {
            t.pull(*u);
        }
        if t.has_pulls() {
            env.add_task(t);
        }
    }
    fn compute(&self, _t: &mut Task<()>, f: &Frontier, env: &mut ComputeEnv<'_, Self>) -> bool {
        env.aggregate(f.len() as u64);
        false
    }
}

/// At quiescence, merging every comper's e2e histogram loses nothing:
/// the summed bucket counts equal the number of finished tasks, and
/// per-worker histogram counts equal that worker's own counter.
#[cfg(feature = "metrics")]
#[test]
fn final_histograms_merge_losslessly() {
    let g = gen::barabasi_albert(2_000, 5, 11);
    let r = run_job(Arc::new(EdgeCount), &g, &JobConfig::cluster(2, 3)).unwrap();
    assert_eq!(r.global, g.num_edges() as u64);
    let m = &r.metrics;
    assert_eq!(m.total_tasks(), r.total_tasks());
    for (w, stats) in m.workers.iter().zip(&r.workers) {
        let merged = w.merged_hists();
        assert_eq!(
            merged.e2e.count(),
            stats.tasks_finished,
            "per-worker e2e samples must equal tasks_finished"
        );
        // Per-comper counts sum to the merged count (no bucket lost).
        let per_comper: u64 = w.compers.iter().map(|c| c.e2e.count()).sum();
        assert_eq!(per_comper, merged.e2e.count());
        assert_eq!(merged.compute.count(), stats.compute_calls);
    }
    assert_eq!(m.merged_hists().e2e.count(), r.total_tasks());
    // Quantiles of a populated histogram are usable.
    let e2e = m.merged_hists().e2e;
    assert!(e2e.quantile(0.5) <= e2e.quantile(0.99));
    assert!(e2e.quantile(0.99) <= e2e.max_estimate());
}

/// The metrics observer receives full snapshots whose derived progress
/// view is monotone, and mid-run merged histogram counts never exceed
/// the final count (histograms only grow).
#[test]
fn metrics_observer_sees_growing_snapshots() {
    let g = gen::barabasi_albert(3_000, 5, 13);
    let sink = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let s = Arc::clone(&sink);
    let mut cfg = JobConfig::cluster(2, 2);
    cfg.sync_interval = Duration::from_millis(5);
    let r = run_job_metrics_observed(Arc::new(EdgeCount), &g, &cfg, move |m| {
        s.lock().push(m.clone());
    })
    .unwrap();
    assert_eq!(r.global, g.num_edges() as u64);
    let snaps = sink.lock();
    assert!(!snaps.is_empty(), "observer must fire at least once");
    for w in snaps.windows(2) {
        assert!(w[1].total_tasks() >= w[0].total_tasks());
        assert!(w[1].merged_hists().e2e.count() >= w[0].merged_hists().e2e.count());
        assert!(w[1].progress().cache_misses >= w[0].progress().cache_misses);
    }
    let final_count = r.metrics.merged_hists().e2e.count();
    for s in snaps.iter() {
        assert!(s.merged_hists().e2e.count() <= final_count);
        // Mid-run snapshots never include event dumps.
        assert!(s.workers.iter().all(|w| w.events.is_empty()));
    }
}

/// With a non-zero trace capacity the final snapshot carries events,
/// and the Chrome trace export renders them with the required keys.
#[cfg(feature = "metrics")]
#[test]
fn trace_capacity_yields_events_and_chrome_json() {
    let g = gen::barabasi_albert(2_000, 5, 17);
    let mut cfg = JobConfig::cluster(2, 2);
    cfg.trace_capacity = 4_096;
    let r = run_job(Arc::new(EdgeCount), &g, &cfg).unwrap();
    assert_eq!(r.global, g.num_edges() as u64);
    let total_events: usize = r.metrics.workers.iter().map(|w| w.events.len()).sum();
    assert!(total_events > 0, "tracing on but no events recorded");
    // Events within each worker come back time-sorted.
    for w in &r.metrics.workers {
        assert!(w.events.windows(2).all(|e| e[0].ts <= e[1].ts));
    }
    let mut buf = Vec::new();
    r.metrics.write_chrome_trace(&mut buf).unwrap();
    let json = String::from_utf8(buf).unwrap();
    for key in ["\"ph\"", "\"ts\"", "\"pid\"", "\"tid\"", "process_name", "thread_name"] {
        assert!(json.contains(key), "trace JSON missing {key}");
    }
    assert!(json.trim_start().starts_with('['));
    assert!(json.trim_end().ends_with(']'));
}

/// With trace capacity zero (the default) no events are kept, so the
/// hot paths skip all timestamping for spans.
#[test]
fn tracing_disabled_by_default() {
    let g = gen::gnp(300, 0.05, 3);
    let r = run_job(Arc::new(EdgeCount), &g, &JobConfig::single_machine(2)).unwrap();
    assert!(r.metrics.workers.iter().all(|w| w.events.is_empty()));
    // Exports still render (headers only).
    let mut buf = Vec::new();
    r.metrics.write_chrome_trace(&mut buf).unwrap();
    assert!(!r.metrics.to_json().is_empty());
    assert!(!r.metrics.tail_report().is_empty());
}
