//! End-to-end smoke tests of the framework with a minimal application.

use gthinker_core::prelude::*;
use gthinker_graph::gen;
use std::sync::Arc;
use std::time::Duration;

/// Sums `u64` contributions.
struct Sum;
impl Aggregator for Sum {
    type Item = u64;
    type Partial = u64;
    type Global = u64;
    fn init_partial(&self) -> u64 {
        0
    }
    fn init_global(&self) -> u64 {
        0
    }
    fn aggregate(&self, p: &mut u64, item: u64) {
        *p += item;
    }
    fn merge(&self, g: &mut u64, p: &u64) {
        *g += *p;
    }
}

/// Counts edges by pulling each vertex's neighbors-greater-than set and
/// summing degrees: every task pulls its larger neighbors (forcing
/// remote traffic in multi-worker runs) and adds |Γ_>(v)| of each
/// pulled vertex's existence (i.e. 1 per pulled vertex = degree sum).
struct DegreeSum;

impl App for DegreeSum {
    type Context = u32; // iteration marker
    type Agg = Sum;

    fn make_aggregator(&self) -> Sum {
        Sum
    }

    fn task_spawn(&self, v: VertexId, adj: &AdjList, env: &mut SpawnEnv<'_, Self>) {
        let mut t = Task::new(0u32);
        for u in adj.greater_than(v) {
            t.pull(*u);
        }
        // Count Γ_>(v) immediately; pulled vertices are counted in
        // compute to exercise the pull path.
        if t.has_pulls() {
            env.add_task(t);
        }
    }

    fn compute(
        &self,
        _task: &mut Task<u32>,
        frontier: &Frontier,
        env: &mut ComputeEnv<'_, Self>,
    ) -> bool {
        // One unit per pulled vertex: total = Σ_v |Γ_>(v)| = |E|.
        env.aggregate(frontier.len() as u64);
        false
    }
}

#[test]
fn single_worker_counts_edges() {
    let g = gen::gnp(300, 0.05, 42);
    let result = run_job(Arc::new(DegreeSum), &g, &JobConfig::single_machine(4)).unwrap();
    assert_eq!(result.global, g.num_edges() as u64);
    assert_eq!(result.outcome, JobOutcome::Completed);
    assert!(result.total_tasks() > 0);
}

#[test]
fn multi_worker_matches_single_worker() {
    let g = gen::barabasi_albert(500, 4, 7);
    let single = run_job(Arc::new(DegreeSum), &g, &JobConfig::single_machine(2)).unwrap();
    let mut cfg = JobConfig::cluster(4, 2);
    cfg.link.latency = Duration::from_micros(50);
    let multi = run_job(Arc::new(DegreeSum), &g, &cfg).unwrap();
    assert_eq!(single.global, g.num_edges() as u64);
    assert_eq!(multi.global, single.global);
    // Remote pulls actually happened.
    let misses: u64 = multi.workers.iter().map(|w| w.cache.misses).sum();
    assert!(misses > 0, "multi-worker run should pull remote vertices");
    assert!(multi.total_net_bytes() > 0);
}

#[test]
fn empty_graph_terminates() {
    let g = gthinker_graph::graph::Graph::with_vertices(0);
    let result = run_job(Arc::new(DegreeSum), &g, &JobConfig::single_machine(1)).unwrap();
    assert_eq!(result.global, 0);
}

/// An app whose compute panics on a specific vertex.
struct PanicsOnVertex(u32);

impl App for PanicsOnVertex {
    type Context = u32;
    type Agg = Sum;
    fn make_aggregator(&self) -> Sum {
        Sum
    }
    fn task_spawn(&self, v: VertexId, _adj: &AdjList, env: &mut SpawnEnv<'_, Self>) {
        env.add_task(Task::new(v.0));
    }
    fn compute(&self, t: &mut Task<u32>, _f: &Frontier, env: &mut ComputeEnv<'_, Self>) -> bool {
        if t.context == self.0 {
            panic!("boom on vertex {}", self.0);
        }
        env.aggregate(1);
        false
    }
}

#[test]
fn udf_panic_aborts_the_job_and_propagates_the_message() {
    let g = gen::gnp(200, 0.02, 1);
    let err = std::panic::catch_unwind(|| {
        let _ = run_job(Arc::new(PanicsOnVertex(50)), &g, &JobConfig::cluster(2, 2));
    })
    .expect_err("job must propagate the UDF panic");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("boom on vertex 50"), "got: {msg}");
}

#[test]
fn tiny_cache_still_completes() {
    // Force constant eviction pressure.
    let g = gen::gnp(200, 0.1, 3);
    let mut cfg = JobConfig::cluster(3, 2);
    cfg.cache.capacity = 16;
    cfg.cache.num_buckets = 8;
    let result = run_job(Arc::new(DegreeSum), &g, &cfg).unwrap();
    assert_eq!(result.global, g.num_edges() as u64);
    let evictions: u64 = result.workers.iter().map(|w| w.cache.evictions).sum();
    assert!(evictions > 0, "GC must have evicted under a 16-vertex cache");
}
