//! Per-worker output sinks.
//!
//! Subgraph-centric systems differ from vertex-centric ones in that
//! "the output data volume can be exponential to that of the input
//! graph" (§II) — enumerating workloads cannot buffer results in
//! memory or funnel them through the aggregator. The paper's workers
//! commit outputs (alongside checkpoints) to HDFS; here every worker
//! streams records appended by `compute()` into its own output file
//! under [`crate::config::JobConfig::output_dir`].
//!
//! Records are length-prefixed byte strings (applications encode with
//! [`gthinker_task::codec`] or any format they like); [`read_records`]
//! reads one worker file back and [`read_all_records`] merges a whole
//! job directory.

use parking_lot::Mutex;
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A worker's buffered, thread-shared record sink.
pub struct OutputSink {
    writer: Mutex<BufWriter<std::fs::File>>,
    records: AtomicU64,
    bytes: AtomicU64,
}

impl OutputSink {
    /// Opens (truncates) the output file for `worker` under `dir`.
    pub fn create(dir: &Path, worker: usize) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let file = std::fs::File::create(worker_path(dir, worker))?;
        Ok(OutputSink {
            writer: Mutex::new(BufWriter::new(file)),
            records: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        })
    }

    /// Appends one record (thread-safe; called from any comper).
    pub fn emit(&self, record: &[u8]) {
        let mut w = self.writer.lock();
        w.write_all(&(record.len() as u32).to_le_bytes()).expect("output writable");
        w.write_all(record).expect("output writable");
        self.records.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(4 + record.len() as u64, Ordering::Relaxed);
    }

    /// Flushes buffered records to disk (called at job end).
    pub fn flush(&self) {
        self.writer.lock().flush().expect("output flush");
    }

    /// Number of records emitted so far.
    pub fn records(&self) -> u64 {
        self.records.load(Ordering::Relaxed)
    }

    /// Bytes written so far (including length prefixes).
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

/// The output file path of one worker.
pub fn worker_path(dir: &Path, worker: usize) -> PathBuf {
    dir.join(format!("part-{worker:04}.out"))
}

/// Reads every record from one worker's output file.
pub fn read_records(path: &Path) -> std::io::Result<Vec<Vec<u8>>> {
    let mut data = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut data)?;
    let mut out = Vec::new();
    let mut at = 0usize;
    while at < data.len() {
        if at + 4 > data.len() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "truncated record length",
            ));
        }
        let len = u32::from_le_bytes(data[at..at + 4].try_into().expect("4 bytes")) as usize;
        at += 4;
        if at + len > data.len() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "truncated record body",
            ));
        }
        out.push(data[at..at + len].to_vec());
        at += len;
    }
    Ok(out)
}

/// Reads and concatenates the records of every `part-*.out` file in a
/// job output directory (any worker order).
pub fn read_all_records(dir: &Path) -> std::io::Result<Vec<Vec<u8>>> {
    let mut out = Vec::new();
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("part-") && n.ends_with(".out"))
        })
        .collect();
    paths.sort();
    for p in paths {
        out.extend(read_records(&p)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("gthinker-out-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn emit_flush_read_round_trip() {
        let dir = tempdir("rt");
        let sink = OutputSink::create(&dir, 0).unwrap();
        sink.emit(b"hello");
        sink.emit(b"");
        sink.emit(&[1, 2, 3]);
        sink.flush();
        assert_eq!(sink.records(), 3);
        assert_eq!(sink.bytes(), 4 + 5 + 4 + 4 + 3);
        let records = read_records(&worker_path(&dir, 0)).unwrap();
        assert_eq!(records, vec![b"hello".to_vec(), Vec::new(), vec![1, 2, 3]]);
    }

    #[test]
    fn concurrent_emits_are_all_recorded() {
        let dir = tempdir("conc");
        let sink = std::sync::Arc::new(OutputSink::create(&dir, 1).unwrap());
        std::thread::scope(|s| {
            for t in 0..4u8 {
                let sink = std::sync::Arc::clone(&sink);
                s.spawn(move || {
                    for i in 0..500u32 {
                        sink.emit(&[t, i.to_le_bytes()[0], i.to_le_bytes()[1]]);
                    }
                });
            }
        });
        sink.flush();
        let records = read_records(&worker_path(&dir, 1)).unwrap();
        assert_eq!(records.len(), 2_000);
        assert!(records.iter().all(|r| r.len() == 3));
    }

    #[test]
    fn read_all_merges_workers() {
        let dir = tempdir("merge");
        for w in 0..3 {
            let sink = OutputSink::create(&dir, w).unwrap();
            sink.emit(&[w as u8]);
            sink.flush();
        }
        let all = read_all_records(&dir).unwrap();
        assert_eq!(all, vec![vec![0u8], vec![1], vec![2]]);
    }

    #[test]
    fn corrupt_files_are_detected() {
        let dir = tempdir("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let p = worker_path(&dir, 0);
        std::fs::write(&p, [5u8, 0, 0, 0, 1, 2]).unwrap(); // claims 5, has 2
        assert!(read_records(&p).is_err());
        std::fs::write(&p, [5u8, 0, 0]).unwrap(); // truncated length
        assert!(read_records(&p).is_err());
    }
}
