//! Master-side coordination (run on worker 0's main thread).
//!
//! The master merges aggregator partials and broadcasts the global
//! value, gathers progress reports, plans work stealing from loaded to
//! idle workers, and decides distributed termination (or suspension for
//! the fault-tolerance path).

use crate::agg::Aggregator;
use crate::api::App;
use crate::worker::WorkerShared;
use crossbeam::channel::Receiver;
use gthinker_graph::ids::WorkerId;
use gthinker_net::message::Message;
use gthinker_task::codec::{from_bytes, to_bytes};
use std::sync::Arc;

/// Number of consecutive all-quiescent sync rounds required before the
/// master terminates the job (absorbs report staleness).
const QUIESCENT_ROUNDS: u32 = 3;

/// Minimum estimated remaining batches on a victim before the master
/// bothers stealing from it.
const STEAL_MIN_REMAINING: u64 = 2;

#[derive(Clone, Copy, Default)]
struct Report {
    remaining: u64,
    quiescent: bool,
    seen: bool,
}

/// Outstanding steal-plan bookkeeping. At most one plan is in flight at
/// a time; termination is blocked while one is.
struct StealPlanState {
    /// `Some(sent)` once the victim reported execution.
    executed: Option<u32>,
    /// Receipt acks from the thief so far.
    acked: u32,
}

impl StealPlanState {
    fn complete(&self) -> bool {
        matches!(self.executed, Some(sent) if self.acked >= sent)
    }
}

/// Master state machine; drive with [`MasterState::tick`].
pub(crate) struct MasterState<A: App> {
    shared: Arc<WorkerShared<A>>,
    ctrl: Receiver<Message>,
    global: <A::Agg as Aggregator>::Global,
    reports: Vec<Report>,
    plan: Option<StealPlanState>,
    quiescent_rounds: u32,
    finals: usize,
    suspend_done: usize,
    terminated: bool,
}

impl<A: App> MasterState<A> {
    pub fn new(shared: Arc<WorkerShared<A>>, ctrl: Receiver<Message>) -> Self {
        let global = shared.agg.aggregator().init_global();
        let n = shared.config.num_workers;
        MasterState {
            shared,
            ctrl,
            global,
            reports: vec![Report::default(); n],
            plan: None,
            quiescent_rounds: 0,
            finals: 0,
            suspend_done: 0,
            terminated: false,
        }
    }

    /// Drains control traffic and performs one coordination round.
    /// Returns `true` once the master has broadcast the terminate (or
    /// suspend) decision.
    pub fn tick(&mut self) -> bool {
        self.drain_ctrl();
        self.broadcast_global();
        if self.terminated {
            return true;
        }
        self.plan_stealing();
        self.check_termination()
    }

    fn drain_ctrl(&mut self) {
        while let Ok(msg) = self.ctrl.try_recv() {
            self.absorb(msg);
        }
    }

    fn absorb(&mut self, msg: Message) {
        match msg {
            Message::Progress { worker, remaining, idle } => {
                self.reports[worker.index()] = Report { remaining, quiescent: idle, seen: true };
            }
            Message::AggregatorSync { payload, is_final, .. } => {
                let partial: <A::Agg as Aggregator>::Partial =
                    from_bytes(&payload).expect("partials encode/decode symmetrically");
                self.shared.agg.aggregator().merge(&mut self.global, &partial);
                if is_final {
                    self.finals += 1;
                }
            }
            Message::StealExecuted { sent } => {
                if let Some(plan) = &mut self.plan {
                    plan.executed = Some(sent);
                }
            }
            Message::StealDone => {
                if let Some(plan) = &mut self.plan {
                    plan.acked += 1;
                }
            }
            Message::SuspendDone { .. } => self.suspend_done += 1,
            other => panic!("unexpected control message at master: {other:?}"),
        }
        if let Some(plan) = &self.plan {
            if plan.complete() {
                self.plan = None;
            }
        }
    }

    fn broadcast_global(&self) {
        let payload = to_bytes(&self.global);
        self.shared.net.broadcast(&Message::AggregatorGlobal { payload: payload.clone() });
        // The master's own snapshot updates directly (its self-send
        // would work too, but this keeps it fresh within the tick).
        if let Ok(g) = from_bytes(&payload) {
            self.shared.agg.set_global(g);
        }
    }

    /// Picks one (victim, thief) pair when a worker is starving and
    /// another still has work. One plan in flight at a time.
    fn plan_stealing(&mut self) {
        if !self.shared.config.work_stealing || self.plan.is_some() {
            return;
        }
        let thief =
            self.reports.iter().enumerate().find(|(_, r)| r.seen && r.quiescent).map(|(w, _)| w);
        let victim = self
            .reports
            .iter()
            .enumerate()
            .filter(|(_, r)| r.seen)
            .max_by_key(|(_, r)| r.remaining)
            .filter(|(_, r)| {
                r.remaining >= STEAL_MIN_REMAINING * self.shared.config.task_batch as u64
            })
            .map(|(w, _)| w);
        if let (Some(thief), Some(victim)) = (thief, victim) {
            if thief != victim {
                let batches = 1u32;
                self.plan = Some(StealPlanState { executed: None, acked: 0 });
                self.shared.net.send(
                    WorkerId(victim as u16),
                    Message::StealPlan {
                        victim: WorkerId(victim as u16),
                        thief: WorkerId(thief as u16),
                        batches,
                    },
                );
                // A stolen batch makes the thief non-quiescent; clear the
                // stale flags until fresh reports arrive.
                self.reports[thief].quiescent = false;
                self.quiescent_rounds = 0;
            }
        }
    }

    fn check_termination(&mut self) -> bool {
        let all_quiescent =
            self.reports.iter().all(|r| r.seen && r.quiescent) && self.plan.is_none();
        if all_quiescent {
            self.quiescent_rounds += 1;
        } else {
            self.quiescent_rounds = 0;
        }
        if self.quiescent_rounds >= QUIESCENT_ROUNDS {
            self.terminated = true;
            self.shared.net.broadcast(&Message::Terminate);
            self.shared.done.store(true, std::sync::atomic::Ordering::SeqCst);
            // Remote workers are woken by their receivers on Terminate;
            // this wakes the master's own parked threads.
            self.shared.wake_all();
            return true;
        }
        false
    }

    /// Broadcasts the suspend signal (fault-tolerance path).
    pub fn broadcast_suspend(&mut self) {
        self.terminated = true;
        self.shared.net.broadcast(&Message::Suspend);
        self.shared.suspend.store(true, std::sync::atomic::Ordering::SeqCst);
        self.shared.wake_all();
    }

    /// After termination: waits until one final partial per worker has
    /// been merged, then returns the final global value.
    pub fn collect_finals(&mut self) -> <A::Agg as Aggregator>::Global {
        let n = self.shared.config.num_workers;
        while self.finals < n {
            match self.ctrl.recv_timeout(std::time::Duration::from_millis(100)) {
                Ok(msg) => self.absorb(msg),
                Err(_) => {
                    // Keep waiting; receivers forward finals as they come.
                }
            }
        }
        self.global.clone()
    }

    /// After a suspend broadcast: waits for every worker's checkpoint
    /// shard, then returns the current global value (to be persisted).
    pub fn collect_suspends(&mut self) -> <A::Agg as Aggregator>::Global {
        let n = self.shared.config.num_workers;
        while self.suspend_done < n {
            if let Ok(msg) = self.ctrl.recv_timeout(std::time::Duration::from_millis(100)) {
                self.absorb(msg)
            }
        }
        self.global.clone()
    }

    /// Seeds the master's running global (checkpoint resume).
    pub fn set_global(&mut self, g: <A::Agg as Aggregator>::Global) {
        self.global = g;
    }
}
