//! Master-side coordination (run on worker 0's main thread).
//!
//! The master merges aggregator partials and broadcasts the global
//! value, gathers progress reports, plans work stealing from loaded to
//! idle workers, and decides distributed termination (or suspension for
//! the fault-tolerance path).

use crate::agg::Aggregator;
use crate::api::App;
use crate::worker::WorkerShared;
use crossbeam::channel::Receiver;
use gthinker_graph::ids::WorkerId;
use gthinker_net::message::Message;
use gthinker_task::codec::{from_bytes, to_bytes};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Number of consecutive all-quiescent sync rounds required before the
/// master terminates the job (absorbs report staleness).
const QUIESCENT_ROUNDS: u32 = 3;

/// Minimum estimated remaining batches on a victim before the master
/// bothers stealing from it.
const STEAL_MIN_REMAINING: u64 = 2;

/// Imbalance hysteresis: the master brokers a steal only when the
/// victim's remaining estimate is at least this many times the thief's
/// (floored at one task batch). Prevents batches ping-ponging between
/// near-balanced workers.
const STEAL_IMBALANCE: u64 = 2;

/// Upper bound on tasks per brokered batch, in task-batch (`C`) units.
const STEAL_MAX_BATCHES: u64 = 4;

/// Master-side retry: ticks before an unfinished brokering is
/// abandoned and re-planned. Safe to drop early — any batch already in
/// flight is still owned (and resent) by its victim, whose quiescence
/// predicate accounts for it, so abandoning the bookkeeping can
/// neither lose work nor unblock termination.
const STEAL_RETRY_TICKS: u32 = 150;

#[derive(Clone, Copy, Default)]
struct Report {
    remaining: u64,
    quiescent: bool,
    seen: bool,
    /// Compers the worker reported parked with nothing reachable.
    idle_compers: u16,
    /// Steal batches the worker has sealed but not yet seen acked.
    steal_inflight: u32,
    /// Report arrived after `request_suspend` (the suspend broadcast
    /// gates on a post-request report from every worker showing
    /// `steal_inflight == 0`).
    fresh: bool,
}

/// Outstanding steal-brokering bookkeeping. At most one is in flight
/// at a time; termination is blocked while one is.
struct StealPlanState {
    /// `Some(sent)` once the victim reported execution.
    executed: Option<u32>,
    /// Receipt acks from the thief so far.
    acked: u32,
    /// Master ticks since the request went out (retry timeout).
    ticks: u32,
}

impl StealPlanState {
    fn complete(&self) -> bool {
        matches!(self.executed, Some(sent) if self.acked >= sent)
    }
}

/// Master state machine; drive with [`MasterState::tick`].
pub(crate) struct MasterState<A: App> {
    shared: Arc<WorkerShared<A>>,
    ctrl: Receiver<Message>,
    global: <A::Agg as Aggregator>::Global,
    reports: Vec<Report>,
    plan: Option<StealPlanState>,
    quiescent_rounds: u32,
    finals: usize,
    finals_seen: Vec<bool>,
    suspend_done: usize,
    suspend_seen: Vec<bool>,
    /// Set by [`MasterState::request_suspend`]; the actual broadcast is
    /// deferred until no brokering is in flight and every worker's
    /// post-request progress report shows zero unacked steal batches —
    /// otherwise a batch could land in both the victim's checkpoint and
    /// the thief's, double-running its tasks after resume.
    suspend_pending: bool,
    terminated: bool,
    /// Failure-detection window; `None` disables detection (a job with
    /// no fault injection never pays for it).
    heartbeat: Option<Duration>,
    /// Last time each worker was heard from on the control channel.
    last_seen: Vec<Instant>,
    /// Per-worker TCP peer-death events ([`Message::PeerDown`] from the
    /// transport): the socket-level complement to the heartbeat. A
    /// closed link is evidence *now*; the heartbeat window is only the
    /// backstop for a peer that hangs without dying.
    peer_down: Vec<bool>,
    /// First worker the failure detector declared dead, if any.
    failed: Option<WorkerId>,
}

impl<A: App> MasterState<A> {
    pub fn new(
        shared: Arc<WorkerShared<A>>,
        ctrl: Receiver<Message>,
        heartbeat: Option<Duration>,
    ) -> Self {
        let global = shared.agg.aggregator().init_global();
        let n = shared.config.num_workers;
        MasterState {
            shared,
            ctrl,
            global,
            reports: vec![Report::default(); n],
            plan: None,
            quiescent_rounds: 0,
            finals: 0,
            finals_seen: vec![false; n],
            suspend_done: 0,
            suspend_seen: vec![false; n],
            suspend_pending: false,
            terminated: false,
            heartbeat,
            last_seen: vec![Instant::now(); n],
            peer_down: vec![false; n],
            failed: None,
        }
    }

    /// The worker the heartbeat declared crashed, if any.
    pub fn failed(&self) -> Option<WorkerId> {
        self.failed
    }

    /// Drains control traffic and performs one coordination round.
    /// Returns `true` once the master has broadcast the terminate (or
    /// suspend) decision.
    pub fn tick(&mut self) -> bool {
        self.drain_ctrl();
        if self.detect_failure() {
            return true;
        }
        self.broadcast_global();
        if self.terminated {
            return true;
        }
        if self.suspend_pending {
            self.try_broadcast_suspend();
            return self.terminated;
        }
        self.plan_stealing();
        self.check_termination()
    }

    /// The unified failure detector. Two signals fold into one verdict:
    ///
    /// * **TCP peer-down events** (socket EOF / reset surfaced by the
    ///   transport as [`Message::PeerDown`]) — event-driven, checked
    ///   unconditionally; a closed link *is* a dead peer.
    /// * **Heartbeat silence** — deadline-driven backstop for a peer
    ///   that hangs without closing its sockets; only armed when a
    ///   window is configured.
    ///
    /// On a verdict the job is torn down: [`Message::Terminate`] (the
    /// job fails) or, when the shared `abort_on_failure` flag is set by
    /// the cluster-recovery runner, [`Message::Abort`] (every survivor
    /// falls back to the last validated checkpoint and re-rendezvouses).
    /// Worker 0 hosts this master loop, so it is exempt.
    fn detect_failure(&mut self) -> bool {
        if self.terminated {
            return false;
        }
        let now = Instant::now();
        let dead = (1..self.shared.config.num_workers).find(|&w| {
            self.peer_down[w]
                || self
                    .heartbeat
                    .is_some_and(|window| now.duration_since(self.last_seen[w]) > window)
        });
        let Some(w) = dead else { return false };
        let w = WorkerId(w as u16);
        self.failed = Some(w);
        self.terminated = true;
        if self.shared.abort_on_failure.load(std::sync::atomic::Ordering::Relaxed) {
            self.shared.net.broadcast(&Message::Abort { worker: w });
            self.shared.aborted.store(true, std::sync::atomic::Ordering::SeqCst);
        } else {
            self.shared.net.broadcast(&Message::Terminate);
        }
        self.shared.done.store(true, std::sync::atomic::Ordering::SeqCst);
        self.shared.wake_all();
        true
    }

    fn drain_ctrl(&mut self) {
        while let Ok(msg) = self.ctrl.try_recv() {
            self.absorb(msg);
        }
    }

    fn absorb(&mut self, msg: Message) {
        match msg {
            Message::Progress { worker, remaining, idle, idle_compers, steal_inflight } => {
                self.reports[worker.index()] = Report {
                    remaining,
                    quiescent: idle,
                    seen: true,
                    idle_compers,
                    steal_inflight,
                    fresh: true,
                };
                self.last_seen[worker.index()] = Instant::now();
            }
            Message::AggregatorSync { worker, payload, is_final } => {
                let partial: <A::Agg as Aggregator>::Partial =
                    from_bytes(&payload).expect("partials encode/decode symmetrically");
                self.shared.agg.aggregator().merge(&mut self.global, &partial);
                self.last_seen[worker.index()] = Instant::now();
                if is_final {
                    self.finals += 1;
                    self.finals_seen[worker.index()] = true;
                }
            }
            Message::StealExecuted { sent } => {
                if let Some(plan) = &mut self.plan {
                    plan.executed = Some(sent);
                }
            }
            Message::StealDone => {
                if let Some(plan) = &mut self.plan {
                    plan.acked += 1;
                }
            }
            Message::SuspendDone { worker } => {
                self.suspend_done += 1;
                self.suspend_seen[worker.index()] = true;
                self.last_seen[worker.index()] = Instant::now();
            }
            Message::PeerDown { worker } => {
                // Transport-level peer death. Per-link FIFO means every
                // control message the peer managed to send was absorbed
                // before this event, so during teardown it is benign
                // (the `terminated` guard in `detect_failure`) and
                // during a run it is immediate, sleep-free evidence.
                self.peer_down[worker.index()] = true;
            }
            Message::MetricsReport { worker, payload, is_final } => {
                // Telemetry is advisory: a report that fails its frame
                // check is dropped (the next cumulative report
                // supersedes it anyway), but any report — even a
                // corrupt one — proves the worker is alive.
                self.last_seen[worker.index()] = Instant::now();
                if let Some(telemetry) = self.shared.telemetry.get() {
                    match crate::metrics::WorkerMetricsSnapshot::decode_report(&payload) {
                        Ok(snap) => telemetry.publish(worker.index(), snap, is_final),
                        Err(e) => eprintln!("dropping corrupt metrics report from {worker}: {e}"),
                    }
                }
            }
            other => panic!("unexpected control message at master: {other:?}"),
        }
        if let Some(plan) = &self.plan {
            if plan.complete() {
                self.plan = None;
            }
        }
    }

    fn broadcast_global(&self) {
        let payload = to_bytes(&self.global);
        self.shared.net.broadcast(&Message::AggregatorGlobal { payload: payload.clone() });
        // The master's own snapshot updates directly (its self-send
        // would work too, but this keeps it fresh within the tick).
        if let Ok(g) = from_bytes(&payload) {
            self.shared.agg.set_global(g);
        }
    }

    /// Picks one (victim, thief) pair when the ready-queue depth and
    /// idle-comper reports show a clear imbalance, and brokers a steal
    /// by sending the victim a [`Message::StealRequest`]. One brokering
    /// in flight at a time; a stuck one is abandoned (and later
    /// re-planned) after [`STEAL_RETRY_TICKS`].
    fn plan_stealing(&mut self) {
        if !self.shared.config.work_stealing {
            return;
        }
        if let Some(plan) = &mut self.plan {
            plan.ticks += 1;
            if plan.ticks < STEAL_RETRY_TICKS {
                return;
            }
            self.plan = None; // timed out — re-broker below
        }
        // Thief: the most starved worker — fully quiescent beats
        // partially idle, more parked compers beats fewer.
        let thief = self
            .reports
            .iter()
            .enumerate()
            .filter(|(_, r)| r.seen && (r.quiescent || r.idle_compers > 0))
            .max_by_key(|(_, r)| (r.quiescent, r.idle_compers))
            .map(|(w, _)| w);
        let batch = self.shared.config.task_batch as u64;
        let victim = self
            .reports
            .iter()
            .enumerate()
            .filter(|(_, r)| r.seen)
            .max_by_key(|(_, r)| r.remaining)
            .filter(|(_, r)| r.remaining >= STEAL_MIN_REMAINING * batch)
            .map(|(w, r)| (w, r.remaining));
        if let (Some(thief), Some((victim, remaining))) = (thief, victim) {
            if thief == victim {
                return;
            }
            // Hysteresis: act only when the victim holds a multiple of
            // the thief's load. A fully-quiescent thief reduces this to
            // the old `STEAL_MIN_REMAINING` threshold.
            if remaining < STEAL_IMBALANCE * self.reports[thief].remaining.max(batch) {
                return;
            }
            let max_tasks = (remaining / 2).clamp(1, STEAL_MAX_BATCHES * batch) as u32;
            self.plan = Some(StealPlanState { executed: None, acked: 0, ticks: 0 });
            self.shared.net.send(
                WorkerId(victim as u16),
                Message::StealRequest {
                    victim: WorkerId(victim as u16),
                    thief: WorkerId(thief as u16),
                    max_tasks,
                },
            );
            // A stolen batch makes the thief non-quiescent; clear the
            // stale flags until fresh reports arrive.
            self.reports[thief].quiescent = false;
            self.reports[thief].idle_compers = 0;
            self.quiescent_rounds = 0;
        }
    }

    fn check_termination(&mut self) -> bool {
        let all_quiescent =
            self.reports.iter().all(|r| r.seen && r.quiescent) && self.plan.is_none();
        if all_quiescent {
            self.quiescent_rounds += 1;
        } else {
            self.quiescent_rounds = 0;
        }
        if self.quiescent_rounds >= QUIESCENT_ROUNDS {
            self.terminated = true;
            self.shared.net.broadcast(&Message::Terminate);
            self.shared.done.store(true, std::sync::atomic::Ordering::SeqCst);
            // Remote workers are woken by their receivers on Terminate;
            // this wakes the master's own parked threads.
            self.shared.wake_all();
            return true;
        }
        false
    }

    /// Requests a suspend (fault-tolerance path). Idempotent; the
    /// broadcast itself is deferred by [`MasterState::tick`] until the
    /// steal protocol holds no task in flight, so a checkpoint can
    /// never capture a batch on both its victim and its thief.
    pub fn request_suspend(&mut self) {
        if self.suspend_pending || self.terminated {
            return;
        }
        self.suspend_pending = true;
        // Only reports that arrive from here on prove the in-flight
        // count drained *after* brokering stopped.
        for r in &mut self.reports {
            r.fresh = false;
        }
    }

    /// Broadcasts the deferred suspend once it is provably safe: no
    /// brokering outstanding, and every worker's post-request progress
    /// report shows zero sealed-but-unacked steal batches. In-flight
    /// counts only drain while the request is pending (no new plans are
    /// issued), so this fires within a few sync rounds.
    fn try_broadcast_suspend(&mut self) {
        let ready =
            self.plan.is_none() && self.reports.iter().all(|r| r.fresh && r.steal_inflight == 0);
        if !ready {
            return;
        }
        self.terminated = true;
        self.shared.net.broadcast(&Message::Suspend);
        self.shared.suspend.store(true, std::sync::atomic::Ordering::SeqCst);
        self.shared.wake_all();
    }

    /// After termination: waits until one final partial per worker has
    /// been merged, then returns the final global value. A crashed
    /// worker sends no final, so with a heartbeat configured the wait
    /// is bounded: quiet for longer than the window → the missing
    /// worker is declared failed and the (unreliable) global returned.
    pub fn collect_finals(&mut self) -> <A::Agg as Aggregator>::Global {
        let n = self.shared.config.num_workers;
        let mut quiet_since = Instant::now();
        while self.finals < n {
            match self.ctrl.recv_timeout(Duration::from_millis(100)) {
                Ok(msg) => {
                    self.absorb(msg);
                    quiet_since = Instant::now();
                    // Event-driven bail: a final can never arrive from
                    // a worker whose sockets have closed.
                    if self.missing_are_down(|s| &s.finals_seen) {
                        break;
                    }
                }
                Err(_) => {
                    // Keep waiting; receivers forward finals as they
                    // come — unless the silence outlasts the heartbeat.
                    if self.give_up(quiet_since, |s| &s.finals_seen) {
                        break;
                    }
                }
            }
        }
        self.global.clone()
    }

    /// After a suspend broadcast: waits for every worker's checkpoint
    /// shard, then returns the current global value (to be persisted).
    /// Bounded by the heartbeat window like [`Self::collect_finals`].
    pub fn collect_suspends(&mut self) -> <A::Agg as Aggregator>::Global {
        let n = self.shared.config.num_workers;
        let mut quiet_since = Instant::now();
        while self.suspend_done < n {
            match self.ctrl.recv_timeout(Duration::from_millis(100)) {
                Ok(msg) => {
                    self.absorb(msg);
                    quiet_since = Instant::now();
                    if self.missing_are_down(|s| &s.suspend_seen) {
                        break;
                    }
                }
                Err(_) => {
                    if self.give_up(quiet_since, |s| &s.suspend_seen) {
                        break;
                    }
                }
            }
        }
        self.global.clone()
    }

    /// Shared bail-out for the collect loops: once the control channel
    /// has been silent past the heartbeat window, name the first worker
    /// still missing from `seen` as failed and stop waiting.
    fn give_up(&mut self, quiet_since: Instant, seen: impl Fn(&Self) -> &Vec<bool>) -> bool {
        let Some(window) = self.heartbeat else { return false };
        if quiet_since.elapsed() <= window {
            return false;
        }
        if self.failed.is_none() {
            let missing = seen(self).iter().position(|s| !s).unwrap_or(0);
            self.failed = Some(WorkerId(missing as u16));
        }
        true
    }

    /// Event-driven counterpart of [`Self::give_up`]: true when at
    /// least one worker is still missing from `seen` and every missing
    /// worker's transport link has already closed — nothing more can
    /// arrive, so waiting out the heartbeat would be pure latency.
    fn missing_are_down(&mut self, seen: impl Fn(&Self) -> &Vec<bool>) -> bool {
        let missing: Vec<usize> =
            seen(self).iter().enumerate().filter_map(|(w, &s)| (!s).then_some(w)).collect();
        if missing.is_empty() || missing.iter().any(|&w| !self.peer_down[w]) {
            return false;
        }
        if self.failed.is_none() {
            self.failed = Some(WorkerId(missing[0] as u16));
        }
        true
    }

    /// Seeds the master's running global (checkpoint resume).
    pub fn set_global(&mut self, g: <A::Agg as Aggregator>::Global) {
        self.global = g;
    }
}
