//! The job runner: wires graph, workers, threads and the master
//! together; entry points [`run_job`] and [`resume_job`].

use crate::agg::Aggregator;
use crate::api::App;
use crate::checkpoint::{self, Manifest, WorkerShard};
use crate::comper::comper_loop;
use crate::config::{JobConfig, JobOutcome, JobResult, WorkerStats};
use crate::master::MasterState;
use crate::metrics::{MetricsRegistry, MetricsSnapshot};
use crate::worker::{
    gc_loop, receiver_loop, responder_loop, worker_tick, ResponderRing, WorkerShared,
};
use gthinker_graph::compressed::CompressedGraph;
use gthinker_graph::graph::Graph;
use gthinker_graph::ids::{Label, VertexId, WorkerId};
use gthinker_graph::partition::HashPartitioner;
use gthinker_graph::store::AdjacencyStore;
use gthinker_graph::trim::{trim_graph, Trimmer};
use gthinker_net::message::Message;
use gthinker_net::router::Router;
use gthinker_net::transport::{NetEndpoint, Transport};
use gthinker_store::cache::VertexCache;
use gthinker_store::local::LocalTable;
use gthinker_task::codec::to_bytes;
use gthinker_task::spill::SpillManager;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

pub(crate) type Global<A> = <<A as App>::Agg as Aggregator>::Global;
pub(crate) type Partial<A> = <<A as App>::Agg as Aggregator>::Partial;

/// Where a job reads its graph from.
///
/// The storage backend is invisible above the worker's `T_local`: the
/// six miners, the cache, trimming and partitioning all behave
/// identically over either variant (the differential suite in
/// `tests/storage_equivalence.rs` pins this down result-for-result).
#[derive(Clone)]
pub enum GraphSource<'a> {
    /// An in-RAM graph: trimmed up front, each worker's partition
    /// materialized into an eager local table (the classic path).
    InMemory(&'a Graph),
    /// A memory-mapped compressed graph (`.gtc`, built by
    /// `gthinker-cli graph build`): every worker shares the mapping,
    /// decodes `Γ(v)` lazily per lookup, and applies the job's trimmer
    /// at decode time — resident memory stays near the bitset + page
    /// cache instead of a full adjacency copy.
    Mapped(Arc<CompressedGraph>),
}

impl<'a> From<&'a Graph> for GraphSource<'a> {
    fn from(g: &'a Graph) -> Self {
        GraphSource::InMemory(g)
    }
}

impl From<Arc<CompressedGraph>> for GraphSource<'static> {
    fn from(c: Arc<CompressedGraph>) -> Self {
        GraphSource::Mapped(c)
    }
}

/// Runs an application over `graph` with the given configuration,
/// blocking until completion (or suspension if
/// `config.suspend_after` fires first).
pub fn run_job<A: App>(
    app: Arc<A>,
    graph: &Graph,
    config: &JobConfig,
) -> io::Result<JobResult<Global<A>>> {
    run_inner(app, GraphSource::InMemory(graph), config, None, None)
}

/// [`run_job`] over an explicit [`GraphSource`] — use this to run the
/// job directly off a memory-mapped compressed graph without ever
/// materializing adjacency in RAM.
pub fn run_job_on<A: App>(
    app: Arc<A>,
    source: GraphSource<'_>,
    config: &JobConfig,
) -> io::Result<JobResult<Global<A>>> {
    run_inner(app, source, config, None, None)
}

/// A point-in-time view of a running job, delivered to the observer of
/// [`run_job_observed`]. This is the paper's "periodically synchronize
/// job status to monitor progress" made visible to the embedding
/// application (e.g. the current total in triangle counting).
#[derive(Clone, Debug)]
pub struct ProgressSnapshot {
    /// Time since the job started.
    pub elapsed: std::time::Duration,
    /// Tasks finished so far, across all workers.
    pub tasks_finished: u64,
    /// Estimated remaining load in tasks (queued + spilled + unspawned).
    pub remaining: u64,
    /// Cache hits / misses so far.
    pub cache_hits: u64,
    /// Cache misses (actual network pulls) so far.
    pub cache_misses: u64,
    /// Bytes sent over the simulated network so far.
    pub net_bytes: u64,
    /// Workers currently quiescent.
    pub quiescent_workers: usize,
}

/// Like [`run_job`], but invokes `observer` with a [`ProgressSnapshot`]
/// every `config.sync_interval` until the job ends. The snapshot is a
/// projection of the full [`MetricsSnapshot`]; use
/// [`run_job_metrics_observed`] for the complete view.
pub fn run_job_observed<A: App>(
    app: Arc<A>,
    graph: &Graph,
    config: &JobConfig,
    mut observer: impl FnMut(ProgressSnapshot) + Send + 'static,
) -> io::Result<JobResult<Global<A>>> {
    run_inner(
        app,
        GraphSource::InMemory(graph),
        config,
        None,
        Some(Box::new(move |m: &MetricsSnapshot| observer(m.progress()))),
    )
}

/// Like [`run_job`], but invokes `observer` with a full
/// [`MetricsSnapshot`] (counters, cache stats, per-comper latency
/// histograms) every `config.sync_interval` until the job ends.
pub fn run_job_metrics_observed<A: App>(
    app: Arc<A>,
    graph: &Graph,
    config: &JobConfig,
    observer: impl FnMut(&MetricsSnapshot) + Send + 'static,
) -> io::Result<JobResult<Global<A>>> {
    run_inner(app, GraphSource::InMemory(graph), config, None, Some(Box::new(observer)))
}

type Observer = Box<dyn FnMut(&MetricsSnapshot) + Send>;

/// Resumes a suspended job from the checkpoint directory written when
/// it suspended. Topology (worker count) must match the original run.
pub fn resume_job<A: App>(
    app: Arc<A>,
    graph: &Graph,
    config: &JobConfig,
    checkpoint: &std::path::Path,
) -> io::Result<JobResult<Global<A>>> {
    resume_job_on(app, GraphSource::InMemory(graph), config, checkpoint)
}

/// [`resume_job`] over an explicit [`GraphSource`]: resuming works the
/// same off a memory-mapped compressed graph, since a checkpoint holds
/// only tasks, aggregator state and the spawn pointer — never
/// adjacency.
pub fn resume_job_on<A: App>(
    app: Arc<A>,
    source: GraphSource<'_>,
    config: &JobConfig,
    checkpoint: &std::path::Path,
) -> io::Result<JobResult<Global<A>>> {
    let manifest: Manifest<Global<A>> = checkpoint::read_manifest(checkpoint)?;
    if manifest.num_workers as usize != config.num_workers {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "checkpoint {} was taken with {} workers, cannot resume with {}",
                checkpoint.display(),
                manifest.num_workers,
                config.num_workers
            ),
        ));
    }
    let mut shards = Vec::with_capacity(config.num_workers);
    for w in 0..config.num_workers {
        shards.push(checkpoint::read_shard::<A::Context, Partial<A>>(checkpoint, w)?);
    }
    run_inner(app, source, config, Some((manifest, shards)), None)
}

type Resume<A> = (Manifest<Global<A>>, Vec<WorkerShard<<A as App>::Context, Partial<A>>>);

/// What [`run_job_with_recovery`] did to finish the job.
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    /// Times a crashed worker was detected and the job rerun.
    pub recoveries: u32,
    /// Valid checkpoint epochs written along the way.
    pub checkpoints: u32,
    /// The worker declared dead at each recovery, in order.
    pub failed_workers: Vec<WorkerId>,
}

/// Like [`run_job`], but survives worker crashes: the job runs in
/// segments of `config.checkpoint_interval`, each segment ending in a
/// validated checkpoint epoch, and when the master's heartbeat declares
/// a worker dead ([`JobOutcome::Failed`]) the job is rerun from the
/// last epoch that validates (or from scratch if none does yet). Gives
/// up with an error after `max_recoveries` reruns.
///
/// With `checkpoint_interval == None` the job never suspends — a crash
/// simply reruns it from the start.
pub fn run_job_with_recovery<A: App>(
    app: Arc<A>,
    graph: &Graph,
    config: &JobConfig,
    max_recoveries: u32,
) -> io::Result<(JobResult<Global<A>>, RecoveryReport)> {
    run_job_with_recovery_on(app, GraphSource::InMemory(graph), config, max_recoveries)
}

/// [`run_job_with_recovery`] over an explicit [`GraphSource`] — crash
/// recovery composes with the memory-mapped storage backend exactly as
/// it does with the in-RAM one.
pub fn run_job_with_recovery_on<A: App>(
    app: Arc<A>,
    source: GraphSource<'_>,
    config: &JobConfig,
    max_recoveries: u32,
) -> io::Result<(JobResult<Global<A>>, RecoveryReport)> {
    let (base, auto_base) = match &config.checkpoint_dir {
        Some(dir) => (dir.clone(), false),
        None => {
            let id = JOB_SEQ.fetch_add(1, Ordering::Relaxed);
            (
                std::env::temp_dir().join(format!("gthinker-recovery-{}-{id}", std::process::id())),
                true,
            )
        }
    };
    let mut cfg = config.clone();
    cfg.heartbeat_timeout = cfg.heartbeat_timeout.or(Some(DEFAULT_HEARTBEAT));
    let mut interval = cfg.checkpoint_interval;
    let mut report = RecoveryReport::default();
    let mut last_good: Option<PathBuf> = None;
    let mut epoch = 0u32;
    loop {
        let mut seg = cfg.clone();
        seg.suspend_after = interval;
        let epoch_dir = base.join(format!("epoch-{epoch}"));
        seg.checkpoint_dir = Some(epoch_dir.clone());
        epoch += 1;
        let mut result = match &last_good {
            Some(cp) => resume_job_on(Arc::clone(&app), source.clone(), &seg, cp)?,
            None => run_job_on(Arc::clone(&app), source.clone(), &seg)?,
        };
        match result.outcome {
            JobOutcome::Completed => {
                if let Some(old) = last_good.take() {
                    let _ = std::fs::remove_dir_all(old);
                }
                if auto_base {
                    let _ = std::fs::remove_dir_all(&base);
                }
                // Parity with the cluster runner, where each process
                // counts its own recovery rounds in its stats.
                for w in &mut result.workers {
                    w.recoveries = report.recoveries as u64;
                }
                return Ok((result, report));
            }
            JobOutcome::Suspended { ref checkpoint } => {
                // Only a checkpoint that validates end-to-end (manifest
                // + every shard, CRCs intact, topology matching) may
                // become the recovery point.
                match checkpoint::validate::<A::Context, Partial<A>, Global<A>>(
                    checkpoint,
                    cfg.num_workers,
                ) {
                    Ok(()) => {
                        report.checkpoints += 1;
                        if let Some(old) = last_good.replace(checkpoint.clone()) {
                            let _ = std::fs::remove_dir_all(old);
                        }
                    }
                    Err(_) => {
                        let _ = std::fs::remove_dir_all(checkpoint);
                    }
                }
                // A segment that checkpointed without finishing a single
                // task would loop forever at this cadence; back off.
                if result.total_tasks() == 0 {
                    if let Some(i) = interval.as_mut() {
                        *i *= 2;
                    }
                }
            }
            JobOutcome::Failed { worker } => {
                report.recoveries += 1;
                report.failed_workers.push(worker);
                let _ = std::fs::remove_dir_all(&epoch_dir);
                if report.recoveries > max_recoveries {
                    return Err(io::Error::other(format!(
                        "worker {} crashed and the job failed {} times; giving up",
                        worker.index(),
                        report.recoveries
                    )));
                }
                // An injected crash schedule fires once per job run —
                // and counts messages from zero again on a rerun, which
                // would kill the same worker at the same point forever.
                // The fault it models has happened; clear it.
                cfg.fault.crash = None;
            }
        }
    }
}

fn run_inner<A: App>(
    app: Arc<A>,
    source: GraphSource<'_>,
    config: &JobConfig,
    resume: Option<Resume<A>>,
    observer: Option<Observer>,
) -> io::Result<JobResult<Global<A>>> {
    assert!(config.num_workers >= 1);
    assert!(config.compers_per_worker >= 1);
    let start = Instant::now();

    let partitioner = HashPartitioner::new(config.num_workers as u16);
    let every_worker: Vec<usize> = (0..config.num_workers).collect();
    let (locals, label_table) = build_locals(&app, &source, partitioner, &every_worker);

    // The in-process job always runs on the sim backend; worker code
    // only ever sees the Transport/NetEndpoint traits, which is what
    // makes `cluster::run_worker_process` the same job over TCP.
    let mut router = Router::with_faults(config.num_workers, config.link, config.fault.clone());
    let handles: Vec<Box<dyn NetEndpoint>> =
        Transport::hosted(&router).into_iter().map(|w| router.take_endpoint(w)).collect();

    let job_dir = new_job_dir(config);

    let (resume_manifest, resume_shards) = match resume {
        Some((m, s)) => (Some(m), Some(s)),
        None => (None, None),
    };

    // Build per-worker shared state.
    let mut workers: Vec<Arc<WorkerShared<A>>> = Vec::with_capacity(config.num_workers);
    for (w, (local, net)) in locals.into_iter().zip(handles).enumerate() {
        let shared =
            build_worker(&app, config, &label_table, partitioner, w, local, net, &job_dir)?;
        if let Some(shards) = &resume_shards {
            let shard = &shards[w];
            shared.local.reset_spawn_pointer(shard.spawn_position as usize);
            shared.agg.set_partial(shard.partial.clone());
            // Restored tasks go through L_file so compers pick them up
            // with the normal refill priority.
            for chunk in shard.tasks.chunks(config.task_batch.max(1)) {
                shared.spill.spill(chunk)?;
            }
        }
        workers.push(shared);
    }

    // Seed the global snapshot everywhere on resume.
    if let Some(m) = &resume_manifest {
        for shared in &workers {
            shared.agg.set_global(m.global.clone());
        }
    }

    // The registry reads every worker's atomics/histograms lock-free;
    // one instance feeds the observer thread, another takes the final
    // snapshot after the join below.
    let registry = MetricsRegistry::new(workers.iter().map(Arc::clone).collect(), start);

    // Observer thread: samples the registry until the workers report
    // done. The channel doubles as the sampling timer (recv_timeout)
    // and as the shutdown wakeup, so no sleep-polling is involved.
    let observer_stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let (observer_wake_tx, observer_wake_rx) = crossbeam::channel::unbounded::<()>();
    let observer_thread = observer.map(|mut obs| {
        let registry = MetricsRegistry::new(workers.iter().map(Arc::clone).collect(), start);
        let stop = Arc::clone(&observer_stop);
        let wake = observer_wake_rx;
        let interval = config.sync_interval;
        std::thread::Builder::new()
            .name("job-observer".into())
            .spawn(move || loop {
                let _ = wake.recv_timeout(interval);
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                obs(&registry.snapshot());
            })
            .expect("spawn observer")
    });

    let results: Vec<std::thread::JoinHandle<WorkerExit<A>>> = workers
        .iter()
        .enumerate()
        .map(|(w, shared)| {
            let shared = Arc::clone(shared);
            let resume_global = resume_manifest.as_ref().map(|m| m.global.clone());
            std::thread::Builder::new()
                .name(format!("worker-{w}"))
                .spawn(move || worker_main(shared, resume_global))
                .expect("spawn worker thread")
        })
        .collect();

    let mut stats = Vec::with_capacity(config.num_workers);
    let mut outcome: Option<WorkerOutcome<A>> = None;
    let mut io_error: Option<io::Error> = None;
    for handle in results {
        let (s, o, e) = handle.join().expect("worker thread panicked");
        stats.push(s);
        if o.is_some() {
            outcome = o;
        }
        if io_error.is_none() {
            io_error = e;
        }
    }
    observer_stop.store(true, Ordering::SeqCst);
    let _ = observer_wake_tx.send(());
    if let Some(t) = observer_thread {
        t.join().expect("observer panicked");
    }
    drop(router);
    // Best-effort cleanup of the job's spill directory.
    let _ = std::fs::remove_dir_all(&job_dir);

    // Propagate the first UDF panic (after the orderly shutdown above)
    // so the caller sees the application's own message.
    for shared in &workers {
        if let Some(msg) = shared.failure.lock().take() {
            panic!("{msg}");
        }
    }
    // First checkpoint/output I/O error wins, after the orderly
    // shutdown (so no thread is left dangling behind the `?`).
    if let Some(e) = io_error {
        return Err(e);
    }

    let outcome = outcome.expect("master worker returns the job outcome");
    let (global, job_outcome) = match outcome {
        WorkerOutcome::Completed(g) => (g, JobOutcome::Completed),
        WorkerOutcome::Suspended(g, dir) => (g, JobOutcome::Suspended { checkpoint: dir }),
        WorkerOutcome::Failed(g, w) => (g, JobOutcome::Failed { worker: w }),
    };
    let metrics = registry.final_snapshot();
    Ok(JobResult {
        global,
        elapsed: start.elapsed(),
        outcome: job_outcome,
        workers: stats,
        metrics,
    })
}

static JOB_SEQ: AtomicU64 = AtomicU64::new(0);

/// A fresh spill directory for one job of this process.
pub(crate) fn new_job_dir(config: &JobConfig) -> PathBuf {
    let job_id = JOB_SEQ.fetch_add(1, Ordering::Relaxed);
    config.spill_dir.join(format!("job-{}-{}", std::process::id(), job_id))
}

/// Builds the local tables for the requested `workers` (all of them in
/// the sim runner, just one in a cluster process) plus the replicated
/// label table, from either graph source.
///
/// Both sources produce identical partitions: ownership is hash-by-ID
/// only, members are listed in ascending ID order (the order
/// [`gthinker_graph::partition::HashPartitioner::split`] emits), and
/// trimming — applied up front on the in-RAM path, at decode time on
/// the mapped path — is a per-vertex rewrite that cannot observe the
/// difference.
pub(crate) fn build_locals<A: App>(
    app: &Arc<A>,
    source: &GraphSource<'_>,
    partitioner: HashPartitioner,
    workers: &[usize],
) -> (Vec<LocalTable>, Option<Arc<Vec<Label>>>) {
    match source {
        GraphSource::InMemory(graph) => {
            // Trim once after loading (§IV item 7).
            let trimmed;
            let graph: &Graph = match app.trimmer() {
                Some(t) => {
                    trimmed = trim_graph(graph, t.as_ref());
                    &trimmed
                }
                None => graph,
            };
            // Labels are replicated to every worker (2 bytes/vertex).
            let label_table = graph.labels().map(|l| Arc::new(l.to_vec()));
            let mut parts = partitioner.split(graph);
            let locals = workers
                .iter()
                .map(|&w| {
                    let part = std::mem::take(&mut parts[w]);
                    let labels: Vec<(VertexId, Label)> = if graph.is_labeled() {
                        part.iter().map(|(v, _)| (*v, graph.label(*v).expect("labeled"))).collect()
                    } else {
                        Vec::new()
                    };
                    LocalTable::with_labels(part, labels)
                })
                .collect();
            (locals, label_table)
        }
        GraphSource::Mapped(store) => {
            let trimmer: Option<Arc<dyn Trimmer>> = app.trimmer().map(Arc::from);
            let label_table = store.labels().map(Arc::new);
            let locals = workers
                .iter()
                .map(|&w| {
                    let members: Vec<VertexId> = (0..store.num_vertices() as u32)
                        .map(VertexId)
                        .filter(|&v| partitioner.owner(v).index() == w)
                        .collect();
                    let shared: Arc<dyn AdjacencyStore> = Arc::<CompressedGraph>::clone(store);
                    LocalTable::lazy(shared, trimmer.clone(), members)
                })
                .collect();
            (locals, label_table)
        }
    }
}

/// Builds one worker's shared state from its local table and its
/// interconnect endpoint. Used by [`run_inner`] (all workers, sim
/// backend) and by [`crate::cluster::run_worker_process`] (one worker,
/// TCP backend).
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_worker<A: App>(
    app: &Arc<A>,
    config: &JobConfig,
    label_table: &Option<Arc<Vec<Label>>>,
    partitioner: HashPartitioner,
    w: usize,
    local: LocalTable,
    net: Box<dyn NetEndpoint>,
    job_dir: &Path,
) -> io::Result<Arc<WorkerShared<A>>> {
    let cache = VertexCache::new(config.cache.clone());
    let spill = SpillManager::new(job_dir.join(format!("worker-{w}")))?;
    let output = match config.output_dir.as_ref() {
        Some(dir) => Some(Arc::new(crate::output::OutputSink::create(dir, w)?)),
        None => None,
    };
    Ok(WorkerShared::new(
        WorkerId(w as u16),
        Arc::clone(app),
        config.clone(),
        local,
        cache,
        spill,
        net,
        partitioner,
        label_table.clone(),
        output,
    ))
}

pub(crate) enum WorkerOutcome<A: App> {
    Completed(Global<A>),
    Suspended(Global<A>, PathBuf),
    /// The master's heartbeat declared a worker dead; the global is
    /// whatever had been merged when the job was torn down.
    Failed(Global<A>, WorkerId),
}

/// What each worker's main thread hands back to [`run_inner`]: stats,
/// the job outcome (master only), and the first checkpoint/output I/O
/// error hit during shutdown (reported instead of panicking, after all
/// threads have joined).
pub(crate) type WorkerExit<A> = (WorkerStats, Option<WorkerOutcome<A>>, Option<io::Error>);

/// Failure-detection window used when the caller enabled recovery (or
/// armed a crash schedule) without picking an explicit
/// [`JobConfig::heartbeat_timeout`].
pub(crate) const DEFAULT_HEARTBEAT: std::time::Duration = std::time::Duration::from_secs(2);

/// One worker's main thread: spawns the receiver/GC/comper threads,
/// runs the periodic tick (plus master logic on worker 0), coordinates
/// shutdown or suspension, and returns its statistics.
pub(crate) fn worker_main<A: App>(
    shared: Arc<WorkerShared<A>>,
    resume_global: Option<Global<A>>,
) -> WorkerExit<A> {
    let is_master = shared.me == WorkerId(0);
    let (ctrl_tx, ctrl_rx) = crossbeam::channel::unbounded();

    // Responder pool (one channel per responder; the receiver
    // round-robins request batches over them and, by dropping the ring
    // on exit, hangs them up — so responders always drain fully before
    // the join below).
    let respond_n = shared.config.responders_per_worker.max(1);
    let mut responder_txs = Vec::with_capacity(respond_n);
    let responders: Vec<_> = (0..respond_n)
        .map(|r| {
            let (tx, rx) = crossbeam::channel::unbounded();
            responder_txs.push(tx);
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("respond-{}-{r}", shared.me))
                .spawn(move || responder_loop(&shared, rx, r))
                .expect("spawn responder")
        })
        .collect();

    let receiver = {
        let shared = Arc::clone(&shared);
        let ring = ResponderRing::new(responder_txs);
        std::thread::Builder::new()
            .name(format!("recv-{}", shared.me))
            .spawn(move || receiver_loop(&shared, ctrl_tx, ring))
            .expect("spawn receiver")
    };
    let gc = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name(format!("gc-{}", shared.me))
            .spawn(move || gc_loop(&shared))
            .expect("spawn gc")
    };
    let compers: Vec<_> = (0..shared.config.compers_per_worker)
        .map(|i| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("comper-{}-{i}", shared.me))
                .spawn(move || comper_loop(shared, i))
                .expect("spawn comper")
        })
        .collect();

    // Failure detection is armed explicitly, or implicitly whenever a
    // crash schedule is — a killed worker must not hang the job.
    let heartbeat = shared
        .config
        .heartbeat_timeout
        .or_else(|| shared.config.fault.crash.as_ref().map(|_| DEFAULT_HEARTBEAT));
    let mut master = is_master.then(|| {
        let mut m = MasterState::new(Arc::clone(&shared), ctrl_rx, heartbeat);
        // On resume, the checkpointed global is the starting point for
        // all further merges (e.g. the best clique found pre-suspend).
        if let Some(g) = resume_global.clone() {
            m.set_global(g);
        }
        m
    });
    let deadline = shared.config.suspend_after.map(|d| Instant::now() + d);

    // Periodic synchronization loop. The event-count wait replaces the
    // old `thread::sleep`: the sync interval is the fallback cadence,
    // and `wake_all` (stop/suspend) cuts the wait short so shutdown
    // latency is not bounded by the tick period.
    let mut was_idle = false;
    let mut abort_broadcast = false;
    loop {
        let key = shared.tick_events.listen();
        if !shared.stopping() {
            shared.tick_events.wait(key, shared.config.sync_interval);
        }
        let idle = worker_tick(&shared, WorkerId(0));
        // Mark quiescence edges in the timeline (sampled at tick
        // granularity; a sub-tick dip into and out of quiescence is
        // invisible here, as in the paper's periodic sync).
        if idle != was_idle {
            was_idle = idle;
            if shared.metrics.ring.enabled() {
                shared.metrics.ring.push(gthinker_metrics::Event {
                    ts: gthinker_metrics::now_nanos(),
                    dur: 0,
                    tid: gthinker_metrics::TID_MAIN,
                    arg: 0,
                    kind: if idle {
                        gthinker_metrics::EventKind::QuiesceEnter
                    } else {
                        gthinker_metrics::EventKind::QuiesceExit
                    },
                });
            }
        }
        // A UDF panic on this worker aborts the whole job: tell every
        // other worker to stop, then go through the normal shutdown
        // path (final syncs keep the master's collection loop sound).
        if shared.failure.lock().is_some() {
            abort_broadcast = true;
            shared.net.broadcast(&Message::Terminate);
            shared.done.store(true, Ordering::SeqCst);
            shared.wake_all();
        }
        if let Some(m) = master.as_mut() {
            let decided = m.tick();
            if !decided {
                if let Some(dl) = deadline {
                    if Instant::now() >= dl {
                        // Idempotent: the actual broadcast is deferred
                        // inside the master until no steal batch is in
                        // flight anywhere (exactly-once across epochs).
                        m.request_suspend();
                    }
                }
            }
        }
        if shared.stopping() {
            break;
        }
    }
    // A panicking comper records the failure and flips `done` itself;
    // both stores can land between this iteration's failure check and
    // the stop check above, exiting the loop with the abort broadcast
    // never sent — stranding every peer (they never quiesce, and the
    // master waits in `collect_finals` forever). The failure is
    // recorded strictly before `done`, so a post-loop re-check cannot
    // miss it.
    if !abort_broadcast && !shared.crashed.load(Ordering::SeqCst) && shared.failure.lock().is_some()
    {
        shared.net.broadcast(&Message::Terminate);
    }

    // Compers stop on the flag; wait for them.
    for c in compers {
        c.join().expect("comper panicked");
    }

    let crashed = shared.crashed.load(Ordering::SeqCst);
    let suspended = shared.suspend.load(Ordering::SeqCst);
    let mut outcome = None;
    let mut io_error: Option<io::Error> = None;
    if crashed {
        // A crashed machine does nothing on the way out: no checkpoint
        // shard, no final sync. The master's heartbeat notices the
        // silence and fails the job. (The router refuses crash
        // schedules for worker 0, so the master itself never gets here.)
    } else if suspended {
        // Gather every remaining task: drained queues, ready buffers,
        // pending tables, spilled files.
        let mut tasks: Vec<gthinker_task::task::Task<A::Context>> =
            shared.drained_queues.lock().drain(..).collect();
        for c in &shared.compers {
            tasks.extend(c.buffer.drain());
            tasks.extend(c.pending.drain());
        }
        while let Ok(Some(batch)) = shared.spill.refill::<A::Context>() {
            tasks.extend(batch);
        }
        // Unacked outgoing steal batches still belong to this worker
        // (the thief has provably not applied them: the master defers
        // the suspend broadcast until every worker reports zero
        // in-flight batches, so this ledger is empty on the normal
        // path — draining it is the ownership invariant's backstop).
        for (_, o) in shared.steal_outgoing.lock().drain() {
            let payload = gthinker_net::frame::open(&o.framed).expect("own sealed frame");
            let batch: Vec<gthinker_task::task::Task<A::Context>> =
                gthinker_task::codec::from_bytes(payload).expect("own batch encoding");
            debug_assert_eq!(batch.len() as u64, o.tasks);
            tasks.extend(batch);
        }
        let dir = shared
            .config
            .checkpoint_dir
            .clone()
            .unwrap_or_else(|| std::env::temp_dir().join("gthinker-checkpoint"));
        let shard = WorkerShard {
            spawn_position: shared.local.spawn_position() as u64,
            tasks,
            partial: shared.agg.take_partial(),
        };
        if let Err(e) = checkpoint::write_shard(&dir, shared.me.index(), &shard) {
            // Report instead of panicking; SuspendDone still goes out
            // so the master's collection loop stays live (the epoch is
            // discarded by validation on the recovery side).
            io_error = Some(e);
        }
        shared.net.send(WorkerId(0), Message::SuspendDone { worker: shared.me });
        if let Some(m) = master.as_mut() {
            let global = m.collect_suspends();
            outcome = Some(match m.failed() {
                // A worker died before writing its shard: the epoch is
                // incomplete, so no manifest — surface the failure and
                // let the recovery runner fall back to the last good
                // checkpoint.
                Some(w) => WorkerOutcome::Failed(global, w),
                None => {
                    let manifest = Manifest {
                        num_workers: shared.config.num_workers as u64,
                        global: global.clone(),
                    };
                    if let Err(e) = checkpoint::write_manifest(&dir, &manifest) {
                        io_error.get_or_insert(e);
                    }
                    WorkerOutcome::Suspended(global, dir)
                }
            });
        }
    } else {
        // Final metrics report (carrying the event ring) goes out
        // before the final aggregator sync on the same ordered channel:
        // by the time the master has collected every worker's final
        // sync, it has provably absorbed every final telemetry report.
        if shared.remote_report.load(Ordering::Relaxed) {
            crate::metrics::send_report(&shared, WorkerId(0), true);
        }
        // Final aggregator sync: one per worker, marked final.
        let partial = shared.agg.take_partial();
        shared.net.send(
            WorkerId(0),
            Message::AggregatorSync {
                worker: shared.me,
                payload: to_bytes(&partial),
                is_final: true,
            },
        );
        if let Some(m) = master.as_mut() {
            let global = m.collect_finals();
            outcome = Some(match m.failed() {
                Some(w) => WorkerOutcome::Failed(global, w),
                None => WorkerOutcome::Completed(global),
            });
        }
    }

    // All control traffic this worker cares about has been consumed.
    shared.receiver_stop.store(true, Ordering::SeqCst);
    receiver.join().expect("receiver panicked");
    // The receiver dropped the responder ring on exit; each responder
    // drains its channel and sees the hangup.
    for r in responders {
        r.join().expect("responder panicked");
    }
    gc.join().expect("gc panicked");

    shared.sample_memory();
    if let Some(output) = &shared.output {
        output.flush();
    }
    let stats = WorkerStats {
        tasks_finished: shared.counters.tasks_finished.load(Ordering::Relaxed),
        compute_calls: shared.counters.compute_calls.load(Ordering::Relaxed),
        cache: shared.cache.stats().snapshot(),
        net_bytes_sent: shared.net.stats().bytes_sent.load(Ordering::Relaxed),
        net_bytes_received: shared.net.stats().bytes_received.load(Ordering::Relaxed),
        spill_bytes: shared.spill.bytes_spilled(),
        peak_mem_bytes: shared.peak_mem.load(Ordering::Relaxed),
        idle_time: std::time::Duration::from_nanos(
            shared.counters.idle_nanos.load(Ordering::Relaxed),
        ),
        compute_time: std::time::Duration::from_nanos(
            shared.counters.compute_nanos.load(Ordering::Relaxed),
        ),
        output_records: shared.output.as_ref().map_or(0, |o| o.records()),
        steals: shared.counters.steals.load(Ordering::Relaxed),
        stolen_tasks: shared.counters.stolen_tasks.load(Ordering::Relaxed),
        parks: shared.counters.parks.load(Ordering::Relaxed),
        wakeups: shared.counters.wakeups.load(Ordering::Relaxed),
        responses_served: shared.counters.responses_served.load(Ordering::Relaxed),
        responder_backlog: shared.counters.responder_backlog.load(Ordering::Relaxed),
        responder_peak_backlog: shared.counters.responder_peak_backlog.load(Ordering::Relaxed),
        pull_retries: shared.counters.pull_retries.load(Ordering::Relaxed),
        remote_steals: shared.counters.remote_steals.load(Ordering::Relaxed),
        remote_stolen_tasks: shared.counters.remote_stolen_tasks.load(Ordering::Relaxed),
        steal_batch_bytes: shared.counters.steal_batch_bytes.load(Ordering::Relaxed),
        yields: shared.counters.yields.load(Ordering::Relaxed),
        split_tasks: shared.counters.split_tasks.load(Ordering::Relaxed),
        net_msgs_dropped: shared.net.fault_stats().map_or(0, |f| f.dropped.load(Ordering::Relaxed)),
        net_msgs_duplicated: shared
            .net
            .fault_stats()
            .map_or(0, |f| f.duplicated.load(Ordering::Relaxed)),
        net_msgs_delayed: shared.net.fault_stats().map_or(0, |f| f.delayed.load(Ordering::Relaxed)),
        trace_events_dropped: shared.metrics.ring.dropped(),
        recoveries: shared.recoveries.load(Ordering::Relaxed),
        peer_down_events: shared.net.stats().peer_downs_total(),
        rejoins: shared.rejoins.load(Ordering::Relaxed),
        resumed_epoch: shared.resumed_epoch.load(Ordering::Relaxed),
    };
    (stats, outcome, io_error)
}
