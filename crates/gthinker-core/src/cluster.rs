//! Multi-process job execution over the TCP backend.
//!
//! [`run_worker_process`] is the per-process counterpart of
//! [`crate::job::run_job`]: every OS process in the cluster calls it
//! with the **same** graph, config and [`ClusterManifest`], plus its own
//! worker ID. Each process loads and trims the graph, hash-partitions
//! it identically (the partitioner is deterministic), keeps only its
//! own partition, joins the TCP rendezvous, and then runs the exact
//! same worker main loop the sim backend runs — master logic included
//! on worker 0. When the master's termination protocol fires, its
//! Terminate broadcast shuts every process down gracefully.
//!
//! Differences from the in-process runner, by design:
//!
//! * The master's [`JobResult::workers`] holds only **its own**
//!   [`WorkerStats`] — remote stats live in the remote processes, which
//!   each get theirs back as [`ClusterRole::Worker`]. The master's
//!   [`JobResult::metrics`], however, covers the **whole cluster**:
//!   every process ships a final `MetricsReport` (sealed snapshot with
//!   its event ring) over the control plane just before its final
//!   aggregator sync, and the master splices the reports — remote event
//!   timelines shifted onto its own clock by each worker's ping/pong
//!   offset estimate — into one cluster-wide snapshot.
//! * `config.link` is ignored: the real network provides the latency.
//! * Crash schedules and checkpoint resume are unsupported (the sim
//!   backend covers those paths); fault drops/dups/delays work, seeded
//!   identically on every process by [`gthinker_net::FaultConfig`].

use crate::api::App;
use crate::config::{JobConfig, JobOutcome, JobResult, WorkerStats};
use crate::job::GraphSource;
use crate::job::{build_locals, build_worker, new_job_dir, worker_main, Global, WorkerOutcome};
use crate::metrics::{ClusterTelemetry, MetricsRegistry, MetricsSnapshot};
use gthinker_graph::graph::Graph;
use gthinker_graph::ids::WorkerId;
use gthinker_graph::partition::HashPartitioner;
use gthinker_net::tcp::{ClusterManifest, TcpTransport};
use gthinker_net::transport::Transport;
use std::io;
use std::net::TcpListener;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What this process was in the cluster, with the payload it gets back.
// Returned once per process at job end; variant size is irrelevant.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum ClusterRole<G> {
    /// Worker 0: the full job result — its own [`WorkerStats`], plus
    /// cluster-wide [`JobResult::metrics`] merged from every worker's
    /// final report.
    Master(JobResult<G>),
    /// Any other worker: its own statistics and its own final metrics
    /// snapshot (for worker-local exports; the cluster-wide view lives
    /// at the master).
    Worker(WorkerStats, MetricsSnapshot),
}

/// Observer hook handed the master's live [`ClusterTelemetry`] before
/// the job starts (status lines, scrape endpoints).
type TelemetryHook = Box<dyn FnOnce(Arc<ClusterTelemetry>)>;

/// Runs this process's worker of a multi-process job, blocking until
/// the master's termination (or failure) protocol shuts it down.
/// `connect_timeout` bounds the cluster rendezvous, not the job.
pub fn run_worker_process<A: App>(
    app: Arc<A>,
    graph: &Graph,
    config: &JobConfig,
    manifest: &ClusterManifest,
    me: WorkerId,
    connect_timeout: Duration,
) -> io::Result<ClusterRole<Global<A>>> {
    let listener = TcpListener::bind(manifest.addr(me))?;
    run_worker_process_on(app, graph, config, manifest, me, connect_timeout, listener)
}

/// [`run_worker_process`] with a pre-bound listener (see
/// [`ClusterManifest::loopback`]); tests use this to avoid port races.
pub fn run_worker_process_on<A: App>(
    app: Arc<A>,
    graph: &Graph,
    config: &JobConfig,
    manifest: &ClusterManifest,
    me: WorkerId,
    connect_timeout: Duration,
    listener: TcpListener,
) -> io::Result<ClusterRole<Global<A>>> {
    run_worker_process_source_on(
        app,
        GraphSource::InMemory(graph),
        config,
        manifest,
        me,
        connect_timeout,
        listener,
    )
}

/// [`run_worker_process`] over an explicit [`GraphSource`]: a process
/// handed a memory-mapped compressed graph opens its own mapping (maps
/// are per-process) and serves its partition lazily from it.
pub fn run_worker_process_source<A: App>(
    app: Arc<A>,
    source: GraphSource<'_>,
    config: &JobConfig,
    manifest: &ClusterManifest,
    me: WorkerId,
    connect_timeout: Duration,
) -> io::Result<ClusterRole<Global<A>>> {
    let listener = TcpListener::bind(manifest.addr(me))?;
    run_worker_process_source_on(app, source, config, manifest, me, connect_timeout, listener)
}

/// [`run_worker_process_source`] with a pre-bound listener.
pub fn run_worker_process_source_on<A: App>(
    app: Arc<A>,
    source: GraphSource<'_>,
    config: &JobConfig,
    manifest: &ClusterManifest,
    me: WorkerId,
    connect_timeout: Duration,
    listener: TcpListener,
) -> io::Result<ClusterRole<Global<A>>> {
    run_cluster_inner(app, source, config, manifest, me, connect_timeout, listener, None)
}

/// [`run_worker_process_source`] that additionally hands the master's
/// live [`ClusterTelemetry`] to `on_telemetry` before the job starts —
/// the hook for `--status` progress lines and the `--telemetry-addr`
/// scrape endpoint. The hook only fires on worker 0 (the master is the
/// only process that aggregates reports).
pub fn run_worker_process_source_observed<A: App>(
    app: Arc<A>,
    source: GraphSource<'_>,
    config: &JobConfig,
    manifest: &ClusterManifest,
    me: WorkerId,
    connect_timeout: Duration,
    on_telemetry: impl FnOnce(Arc<ClusterTelemetry>) + 'static,
) -> io::Result<ClusterRole<Global<A>>> {
    let listener = TcpListener::bind(manifest.addr(me))?;
    run_cluster_inner(
        app,
        source,
        config,
        manifest,
        me,
        connect_timeout,
        listener,
        Some(Box::new(on_telemetry)),
    )
}

#[allow(clippy::too_many_arguments)]
fn run_cluster_inner<A: App>(
    app: Arc<A>,
    source: GraphSource<'_>,
    config: &JobConfig,
    manifest: &ClusterManifest,
    me: WorkerId,
    connect_timeout: Duration,
    listener: TcpListener,
    on_telemetry: Option<TelemetryHook>,
) -> io::Result<ClusterRole<Global<A>>> {
    assert!(config.num_workers >= 1);
    assert!(config.compers_per_worker >= 1);
    if config.num_workers != manifest.num_workers() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "config says {} workers but the manifest lists {}",
                config.num_workers,
                manifest.num_workers()
            ),
        ));
    }
    let start = Instant::now();

    // Same pipeline as the in-process runner: trim, then partition
    // deterministically — every process computes identical ownership,
    // and this one keeps only its own part (or, on a mapped source,
    // its own member list over the shared file).
    let partitioner = HashPartitioner::new(config.num_workers as u16);
    let (mut locals, label_table) = build_locals(&app, &source, partitioner, &[me.index()]);
    let local = locals.pop().expect("one local table requested");

    // Rendezvous before building worker state, so a peer that never
    // shows up fails fast instead of after graph setup work.
    let mut transport =
        TcpTransport::connect_on(manifest, me, config.fault.clone(), connect_timeout, listener)?;
    let net = transport.take_endpoint(me);

    let job_dir = new_job_dir(config);
    let shared =
        build_worker(&app, config, &label_table, partitioner, me.index(), local, net, &job_dir)?;

    // Every cluster process ships a final metrics report to the master
    // just before its final aggregator sync; the master merges them
    // into the cluster-wide view below.
    shared.remote_report.store(true, Ordering::Relaxed);
    let telemetry = Arc::new(ClusterTelemetry::new(config.num_workers));
    if me == WorkerId(0) {
        let _ = shared.telemetry.set(Arc::clone(&telemetry));
        if let Some(hook) = on_telemetry {
            hook(Arc::clone(&telemetry));
        }
    }

    // The worker main loop is byte-for-byte the sim backend's: compers,
    // receiver, responders, GC, periodic ticks, master logic on 0.
    let registry = MetricsRegistry::new(vec![Arc::clone(&shared)], start);
    let (stats, outcome, io_error) = worker_main(Arc::clone(&shared), None);

    let _ = std::fs::remove_dir_all(&job_dir);
    if let Some(msg) = shared.failure.lock().take() {
        panic!("{msg}");
    }
    if let Some(e) = io_error {
        return Err(e);
    }

    if me == WorkerId(0) {
        let outcome = outcome.expect("master worker returns the job outcome");
        let (global, job_outcome) = match outcome {
            WorkerOutcome::Completed(g) => (g, JobOutcome::Completed),
            WorkerOutcome::Suspended(g, dir) => (g, JobOutcome::Suspended { checkpoint: dir }),
            WorkerOutcome::Failed(g, w) => (g, JobOutcome::Failed { worker: w }),
        };
        // Cluster-wide metrics: this process's own final snapshot plus
        // every remote worker's final report, each remote event
        // timeline shifted onto the master's clock by the worker's
        // ping/pong offset estimate. A worker whose report never
        // arrived (it crashed) appears as an all-zero entry so the
        // indices stay aligned.
        let own = registry.final_snapshot();
        let elapsed = own.elapsed;
        let own_snap = own.workers.into_iter().next().expect("one local worker");
        telemetry.publish(me.index(), own_snap.clone(), true);
        let finals = telemetry.final_snapshots();
        let workers = (0..config.num_workers)
            .map(|w| match finals[w].clone() {
                Some(mut f) => {
                    gthinker_metrics::trace::shift_events(&mut f.events, f.clock_offset_nanos);
                    f
                }
                None => Default::default(),
            })
            .collect();
        let metrics = MetricsSnapshot { elapsed, workers };
        Ok(ClusterRole::Master(JobResult {
            global,
            elapsed: start.elapsed(),
            outcome: job_outcome,
            workers: vec![stats],
            metrics,
        }))
    } else {
        Ok(ClusterRole::Worker(stats, registry.final_snapshot()))
    }
}
