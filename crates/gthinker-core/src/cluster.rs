//! Multi-process job execution over the TCP backend.
//!
//! [`run_worker_process`] is the per-process counterpart of
//! [`crate::job::run_job`]: every OS process in the cluster calls it
//! with the **same** graph, config and [`ClusterManifest`], plus its own
//! worker ID. Each process loads and trims the graph, hash-partitions
//! it identically (the partitioner is deterministic), keeps only its
//! own partition, joins the TCP rendezvous, and then runs the exact
//! same worker main loop the sim backend runs — master logic included
//! on worker 0. When the master's termination protocol fires, its
//! Terminate broadcast shuts every process down gracefully.
//!
//! Differences from the in-process runner, by design:
//!
//! * The master's [`JobResult::workers`] holds only **its own**
//!   [`WorkerStats`] — remote stats live in the remote processes, which
//!   each get theirs back as [`ClusterRole::Worker`]. The master's
//!   [`JobResult::metrics`], however, covers the **whole cluster**:
//!   every process ships a final `MetricsReport` (sealed snapshot with
//!   its event ring) over the control plane just before its final
//!   aggregator sync, and the master splices the reports — remote event
//!   timelines shifted onto its own clock by each worker's ping/pong
//!   offset estimate — into one cluster-wide snapshot.
//! * `config.link` is ignored: the real network provides the latency.
//! * Fault injection is fully supported: drops/dups/delays are seeded
//!   identically on every process by [`gthinker_net::FaultConfig`], and
//!   a crash schedule *really kills the process* (`process::abort`) at
//!   the same logical trigger the sim backend uses.
//!
//! # Crash recovery ([`run_worker_process_recovering`])
//!
//! The recovery runner wraps the per-process job in an attempt loop —
//! the multi-process counterpart of [`crate::job::run_job_with_recovery`]:
//!
//! 1. Every process rendezvouses through a **persistent**
//!    [`MeshAcceptor`], so a later re-rendezvous reuses the same
//!    listener; a respawned worker dials in with a **bumped generation**
//!    and survivors accept the rejoin (stale-generation hellos are
//!    rejected at the socket).
//! 2. The master broadcasts a [`Message::Resume`] decision right after
//!    each rendezvous: whether to resume, from which validated epoch,
//!    and the authoritative attempt number (which names the next
//!    epoch's checkpoint directory on the shared filesystem — the
//!    paper's HDFS analog, [`JobConfig::checkpoint_dir`]).
//! 3. The job runs one segment (bounded by `checkpoint_interval`).
//!    Worker death is detected event-style — a closed socket surfaces
//!    as `PeerDown` at the master — with the heartbeat window as the
//!    backstop; the master then broadcasts `Abort`, every survivor
//!    shuts down cleanly and loops back to step 1, waiting (bounded by
//!    `connect_timeout`, with backoff on refused dials) for the
//!    replacement to join.

use crate::api::App;
use crate::checkpoint::{self, Manifest};
use crate::config::{JobConfig, JobOutcome, JobResult, WorkerStats};
use crate::job::GraphSource;
use crate::job::{
    build_locals, build_worker, new_job_dir, worker_main, Global, Partial, RecoveryReport,
    WorkerOutcome, DEFAULT_HEARTBEAT,
};
use crate::metrics::{ClusterTelemetry, MetricsRegistry, MetricsSnapshot};
use gthinker_graph::graph::Graph;
use gthinker_graph::ids::WorkerId;
use gthinker_graph::partition::HashPartitioner;
use gthinker_net::message::Message;
use gthinker_net::tcp::{ClusterManifest, MeshAcceptor, TcpTransport};
use gthinker_net::transport::Transport;
use std::io;
use std::net::TcpListener;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What this process was in the cluster, with the payload it gets back.
// Returned once per process at job end; variant size is irrelevant.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum ClusterRole<G> {
    /// Worker 0: the full job result — its own [`WorkerStats`], plus
    /// cluster-wide [`JobResult::metrics`] merged from every worker's
    /// final report.
    Master(JobResult<G>),
    /// Any other worker: its own statistics and its own final metrics
    /// snapshot (for worker-local exports; the cluster-wide view lives
    /// at the master).
    Worker(WorkerStats, MetricsSnapshot),
}

/// Observer hook handed the master's live [`ClusterTelemetry`] before
/// the job starts (status lines, scrape endpoints).
type TelemetryHook = Box<dyn FnOnce(Arc<ClusterTelemetry>)>;

/// Runs this process's worker of a multi-process job, blocking until
/// the master's termination (or failure) protocol shuts it down.
/// `connect_timeout` bounds the cluster rendezvous, not the job.
pub fn run_worker_process<A: App>(
    app: Arc<A>,
    graph: &Graph,
    config: &JobConfig,
    manifest: &ClusterManifest,
    me: WorkerId,
    connect_timeout: Duration,
) -> io::Result<ClusterRole<Global<A>>> {
    let listener = TcpListener::bind(manifest.addr(me))?;
    run_worker_process_on(app, graph, config, manifest, me, connect_timeout, listener)
}

/// [`run_worker_process`] with a pre-bound listener (see
/// [`ClusterManifest::loopback`]); tests use this to avoid port races.
pub fn run_worker_process_on<A: App>(
    app: Arc<A>,
    graph: &Graph,
    config: &JobConfig,
    manifest: &ClusterManifest,
    me: WorkerId,
    connect_timeout: Duration,
    listener: TcpListener,
) -> io::Result<ClusterRole<Global<A>>> {
    run_worker_process_source_on(
        app,
        GraphSource::InMemory(graph),
        config,
        manifest,
        me,
        connect_timeout,
        listener,
    )
}

/// [`run_worker_process`] over an explicit [`GraphSource`]: a process
/// handed a memory-mapped compressed graph opens its own mapping (maps
/// are per-process) and serves its partition lazily from it.
pub fn run_worker_process_source<A: App>(
    app: Arc<A>,
    source: GraphSource<'_>,
    config: &JobConfig,
    manifest: &ClusterManifest,
    me: WorkerId,
    connect_timeout: Duration,
) -> io::Result<ClusterRole<Global<A>>> {
    let listener = TcpListener::bind(manifest.addr(me))?;
    run_worker_process_source_on(app, source, config, manifest, me, connect_timeout, listener)
}

/// [`run_worker_process_source`] with a pre-bound listener.
pub fn run_worker_process_source_on<A: App>(
    app: Arc<A>,
    source: GraphSource<'_>,
    config: &JobConfig,
    manifest: &ClusterManifest,
    me: WorkerId,
    connect_timeout: Duration,
    listener: TcpListener,
) -> io::Result<ClusterRole<Global<A>>> {
    run_cluster_inner(app, source, config, manifest, me, connect_timeout, listener, None)
}

/// [`run_worker_process_source`] that additionally hands the master's
/// live [`ClusterTelemetry`] to `on_telemetry` before the job starts —
/// the hook for `--status` progress lines and the `--telemetry-addr`
/// scrape endpoint. The hook only fires on worker 0 (the master is the
/// only process that aggregates reports).
pub fn run_worker_process_source_observed<A: App>(
    app: Arc<A>,
    source: GraphSource<'_>,
    config: &JobConfig,
    manifest: &ClusterManifest,
    me: WorkerId,
    connect_timeout: Duration,
    on_telemetry: impl FnOnce(Arc<ClusterTelemetry>) + 'static,
) -> io::Result<ClusterRole<Global<A>>> {
    let listener = TcpListener::bind(manifest.addr(me))?;
    run_cluster_inner(
        app,
        source,
        config,
        manifest,
        me,
        connect_timeout,
        listener,
        Some(Box::new(on_telemetry)),
    )
}

#[allow(clippy::too_many_arguments)]
fn run_cluster_inner<A: App>(
    app: Arc<A>,
    source: GraphSource<'_>,
    config: &JobConfig,
    manifest: &ClusterManifest,
    me: WorkerId,
    connect_timeout: Duration,
    listener: TcpListener,
    on_telemetry: Option<TelemetryHook>,
) -> io::Result<ClusterRole<Global<A>>> {
    assert!(config.num_workers >= 1);
    assert!(config.compers_per_worker >= 1);
    if config.num_workers != manifest.num_workers() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "config says {} workers but the manifest lists {}",
                config.num_workers,
                manifest.num_workers()
            ),
        ));
    }
    let start = Instant::now();

    // Same pipeline as the in-process runner: trim, then partition
    // deterministically — every process computes identical ownership,
    // and this one keeps only its own part (or, on a mapped source,
    // its own member list over the shared file).
    let partitioner = HashPartitioner::new(config.num_workers as u16);
    let (mut locals, label_table) = build_locals(&app, &source, partitioner, &[me.index()]);
    let local = locals.pop().expect("one local table requested");

    // Rendezvous before building worker state, so a peer that never
    // shows up fails fast instead of after graph setup work.
    let mut transport = TcpTransport::connect_on_with(
        manifest,
        me,
        config.fault.clone(),
        connect_timeout,
        listener,
        config.net_backend,
    )?;
    let net = transport.take_endpoint(me);

    let job_dir = new_job_dir(config);
    let shared =
        build_worker(&app, config, &label_table, partitioner, me.index(), local, net, &job_dir)?;

    // Every cluster process ships a final metrics report to the master
    // just before its final aggregator sync; the master merges them
    // into the cluster-wide view below.
    shared.remote_report.store(true, Ordering::Relaxed);
    let telemetry = Arc::new(ClusterTelemetry::new(config.num_workers));
    if me == WorkerId(0) {
        let _ = shared.telemetry.set(Arc::clone(&telemetry));
        if let Some(hook) = on_telemetry {
            hook(Arc::clone(&telemetry));
        }
    }

    // The worker main loop is byte-for-byte the sim backend's: compers,
    // receiver, responders, GC, periodic ticks, master logic on 0.
    let registry = MetricsRegistry::new(vec![Arc::clone(&shared)], start);
    let (stats, outcome, io_error) = worker_main(Arc::clone(&shared), None);

    let _ = std::fs::remove_dir_all(&job_dir);
    if let Some(msg) = shared.failure.lock().take() {
        panic!("{msg}");
    }
    if let Some(e) = io_error {
        return Err(e);
    }

    if me == WorkerId(0) {
        let outcome = outcome.expect("master worker returns the job outcome");
        let (global, job_outcome) = match outcome {
            WorkerOutcome::Completed(g) => (g, JobOutcome::Completed),
            WorkerOutcome::Suspended(g, dir) => (g, JobOutcome::Suspended { checkpoint: dir }),
            WorkerOutcome::Failed(g, w) => (g, JobOutcome::Failed { worker: w }),
        };
        let metrics = assemble_cluster_metrics(&telemetry, &registry, me, config.num_workers);
        Ok(ClusterRole::Master(JobResult {
            global,
            elapsed: start.elapsed(),
            outcome: job_outcome,
            workers: vec![stats],
            metrics,
        }))
    } else {
        Ok(ClusterRole::Worker(stats, registry.final_snapshot()))
    }
}

/// Cluster-wide metrics at the master: this process's own final
/// snapshot plus every remote worker's final report, each remote event
/// timeline shifted onto the master's clock by the worker's ping/pong
/// offset estimate. A worker whose report never arrived (it crashed)
/// appears as an all-zero entry so the indices stay aligned.
fn assemble_cluster_metrics<A: App>(
    telemetry: &Arc<ClusterTelemetry>,
    registry: &MetricsRegistry<A>,
    me: WorkerId,
    num_workers: usize,
) -> MetricsSnapshot {
    let own = registry.final_snapshot();
    let elapsed = own.elapsed;
    let own_snap = own.workers.into_iter().next().expect("one local worker");
    telemetry.publish(me.index(), own_snap.clone(), true);
    let finals = telemetry.final_snapshots();
    let workers = (0..num_workers)
        .map(|w| match finals[w].clone() {
            Some(mut f) => {
                gthinker_metrics::trace::shift_events(&mut f.events, f.clock_offset_nanos);
                f
            }
            None => Default::default(),
        })
        .collect();
    MetricsSnapshot { elapsed, workers }
}

/// Knobs for [`run_worker_process_recovering`].
#[derive(Clone, Copy, Debug)]
pub struct RecoveryOptions {
    /// Recovery rounds (abort-to-checkpoint) tolerated before the job
    /// is abandoned with an error.
    pub max_recoveries: u32,
    /// This process's rejoin generation: 0 on a first launch, `g + 1`
    /// when a supervisor respawns it after generation `g` died. Peers
    /// accept the bumped hello and reject frames from the dead
    /// generation's sockets.
    pub generation: u32,
}

impl Default for RecoveryOptions {
    fn default() -> Self {
        RecoveryOptions { max_recoveries: 8, generation: 0 }
    }
}

/// Crash-surviving variant of [`run_worker_process`]: the per-process
/// job runs in checkpointed segments, a dead peer triggers an
/// abort-to-checkpoint broadcast instead of job failure, and every
/// process (the survivors plus the respawned replacement, which passes
/// a bumped [`RecoveryOptions::generation`]) re-rendezvouses and
/// resumes from the last epoch the master validated. Returns the role
/// payload plus this process's [`RecoveryReport`].
///
/// Requires [`JobConfig::checkpoint_dir`] — a directory visible to
/// every process (the paper's HDFS analog) that epochs are written
/// under.
pub fn run_worker_process_recovering<A: App>(
    app: Arc<A>,
    graph: &Graph,
    config: &JobConfig,
    manifest: &ClusterManifest,
    me: WorkerId,
    connect_timeout: Duration,
    opts: RecoveryOptions,
) -> io::Result<(ClusterRole<Global<A>>, RecoveryReport)> {
    let listener = TcpListener::bind(manifest.addr(me))?;
    run_cluster_recovering(
        app,
        GraphSource::InMemory(graph),
        config,
        manifest,
        me,
        connect_timeout,
        listener,
        opts,
        None,
    )
}

/// [`run_worker_process_recovering`] with a pre-bound listener (tests).
#[allow(clippy::too_many_arguments)]
pub fn run_worker_process_recovering_on<A: App>(
    app: Arc<A>,
    graph: &Graph,
    config: &JobConfig,
    manifest: &ClusterManifest,
    me: WorkerId,
    connect_timeout: Duration,
    listener: TcpListener,
    opts: RecoveryOptions,
) -> io::Result<(ClusterRole<Global<A>>, RecoveryReport)> {
    run_cluster_recovering(
        app,
        GraphSource::InMemory(graph),
        config,
        manifest,
        me,
        connect_timeout,
        listener,
        opts,
        None,
    )
}

/// [`run_worker_process_recovering`] over an explicit [`GraphSource`],
/// with the master's live [`ClusterTelemetry`] handed to `on_telemetry`
/// before the first attempt (worker 0 only) — the recovery-capable
/// counterpart of [`run_worker_process_source_observed`].
#[allow(clippy::too_many_arguments)]
pub fn run_worker_process_source_recovering_observed<A: App>(
    app: Arc<A>,
    source: GraphSource<'_>,
    config: &JobConfig,
    manifest: &ClusterManifest,
    me: WorkerId,
    connect_timeout: Duration,
    opts: RecoveryOptions,
    on_telemetry: impl FnOnce(Arc<ClusterTelemetry>) + 'static,
) -> io::Result<(ClusterRole<Global<A>>, RecoveryReport)> {
    let listener = TcpListener::bind(manifest.addr(me))?;
    run_cluster_recovering(
        app,
        source,
        config,
        manifest,
        me,
        connect_timeout,
        listener,
        opts,
        Some(Box::new(on_telemetry)),
    )
}

#[allow(clippy::too_many_arguments)]
fn run_cluster_recovering<A: App>(
    app: Arc<A>,
    source: GraphSource<'_>,
    config: &JobConfig,
    manifest: &ClusterManifest,
    me: WorkerId,
    connect_timeout: Duration,
    listener: TcpListener,
    opts: RecoveryOptions,
    mut on_telemetry: Option<TelemetryHook>,
) -> io::Result<(ClusterRole<Global<A>>, RecoveryReport)> {
    assert!(config.num_workers >= 1);
    assert!(config.compers_per_worker >= 1);
    if config.num_workers != manifest.num_workers() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "config says {} workers but the manifest lists {}",
                config.num_workers,
                manifest.num_workers()
            ),
        ));
    }
    let Some(base) = config.checkpoint_dir.clone() else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "cluster recovery needs JobConfig::checkpoint_dir — a directory every \
             process can reach (the paper's HDFS), holding the epoch checkpoints",
        ));
    };
    let start = Instant::now();
    let n = config.num_workers;
    let mut cfg = config.clone();
    // A killed worker must never hang the survivors: the heartbeat
    // backstop is always armed in recovery mode (peer-down events
    // usually beat it by a wide margin).
    cfg.heartbeat_timeout = cfg.heartbeat_timeout.or(Some(DEFAULT_HEARTBEAT));
    let mut interval = cfg.checkpoint_interval;
    let partitioner = HashPartitioner::new(n as u16);

    // The acceptor outlives every attempt: a re-rendezvous (ours or a
    // respawned peer's) runs through the same listener, and its
    // per-peer generation ledger is what rejects stale hellos.
    let acceptor = MeshAcceptor::new(listener, me, n)?;
    let telemetry = Arc::new(ClusterTelemetry::new(n));
    let mut report = RecoveryReport::default();
    // Master bookkeeping: the last epoch that validated end-to-end.
    let mut last_good: Option<(u64, std::path::PathBuf)> = None;
    let mut attempt: u64 = 0;
    let rejoins: u64 = if opts.generation > 0 { 1 } else { 0 };

    loop {
        // (1) Rendezvous. Survivors' links to a dead peer are gone, so
        // this blocks (dials backing off through connection-refused)
        // until the replacement binds and joins — bounded by
        // `connect_timeout`, after which the whole cluster errors out.
        let mut transport = TcpTransport::connect_via_with(
            &acceptor,
            manifest,
            me,
            cfg.fault.clone(),
            connect_timeout,
            opts.generation,
            cfg.net_backend,
        )?;
        let net = transport.take_endpoint(me);

        // (2) Resume decision. The master is authoritative for both the
        // epoch to restore and the attempt number (which names the next
        // epoch's directory identically on every process).
        let (resume, epoch, this_attempt) = if me == WorkerId(0) {
            let (resume, epoch) = match &last_good {
                Some((e, _)) => (true, *e),
                None => (false, 0),
            };
            for w in 1..n {
                net.send(WorkerId(w as u16), Message::Resume { resume, epoch, attempt });
            }
            (resume, epoch, attempt)
        } else {
            let deadline = Instant::now() + connect_timeout;
            // Faster peers may start mining before our decision
            // arrives; their early data-plane traffic (vertex pulls,
            // steal batches — all reorder-tolerant) is stashed and
            // re-injected below.
            let mut stash = Vec::new();
            let decision = loop {
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!(
                            "worker {me} rendezvoused but got no resume decision from the \
                             master within {connect_timeout:?}"
                        ),
                    ));
                }
                match net.recv_timeout(remaining) {
                    Some(Message::Resume { resume, epoch, attempt: a }) => {
                        break (resume, epoch, a)
                    }
                    Some(other) => stash.push(other),
                    None => {}
                }
            };
            for m in stash {
                net.requeue(m);
            }
            decision
        };

        // (3) Per-attempt segment config: checkpoint into a fresh epoch
        // directory; the master suspends the segment after `interval`.
        let mut seg = cfg.clone();
        seg.suspend_after = interval;
        let epoch_dir = base.join(format!("epoch-{this_attempt}"));
        seg.checkpoint_dir = Some(epoch_dir.clone());

        // (4) Build this attempt's worker state (the local table is
        // rebuilt — partitioning is deterministic, so ownership never
        // moves between attempts).
        let (mut locals, label_table) = build_locals(&app, &source, partitioner, &[me.index()]);
        let local = locals.pop().expect("one local table requested");
        let job_dir = new_job_dir(&seg);
        let shared =
            build_worker(&app, &seg, &label_table, partitioner, me.index(), local, net, &job_dir)?;
        shared.remote_report.store(true, Ordering::Relaxed);
        shared.abort_on_failure.store(true, Ordering::Relaxed);
        shared.recoveries.store(report.recoveries as u64, Ordering::Relaxed);
        shared.rejoins.store(rejoins, Ordering::Relaxed);
        if me == WorkerId(0) {
            let _ = shared.telemetry.set(Arc::clone(&telemetry));
            if let Some(hook) = on_telemetry.take() {
                hook(Arc::clone(&telemetry));
            }
        }

        // (5) Restore from the agreed epoch (same shard-restore path as
        // the sim runner's resume).
        let resume_global = if resume {
            let cp = base.join(format!("epoch-{epoch}"));
            let m: Manifest<Global<A>> = checkpoint::read_manifest(&cp)?;
            let shard = checkpoint::read_shard::<A::Context, Partial<A>>(&cp, me.index())?;
            shared.local.reset_spawn_pointer(shard.spawn_position as usize);
            shared.agg.set_partial(shard.partial.clone());
            for chunk in shard.tasks.chunks(seg.task_batch.max(1)) {
                shared.spill.spill(chunk)?;
            }
            shared.agg.set_global(m.global.clone());
            shared.resumed_epoch.store(epoch as i64, Ordering::Relaxed);
            Some(m.global)
        } else {
            None
        };

        // (6) Run the segment — byte-for-byte the normal cluster job.
        let registry = MetricsRegistry::new(vec![Arc::clone(&shared)], start);
        let (stats, outcome, io_error) = worker_main(Arc::clone(&shared), resume_global);
        let _ = std::fs::remove_dir_all(&job_dir);
        if let Some(msg) = shared.failure.lock().take() {
            panic!("{msg}");
        }
        if let Some(e) = io_error {
            return Err(e);
        }

        if me == WorkerId(0) {
            let outcome = outcome.expect("master worker returns the job outcome");
            match outcome {
                WorkerOutcome::Completed(global) => {
                    let metrics = assemble_cluster_metrics(&telemetry, &registry, me, n);
                    if let Some((_, old)) = last_good.take() {
                        let _ = std::fs::remove_dir_all(old);
                    }
                    let _ = std::fs::remove_dir_all(&epoch_dir);
                    return Ok((
                        ClusterRole::Master(JobResult {
                            global,
                            elapsed: start.elapsed(),
                            outcome: JobOutcome::Completed,
                            workers: vec![stats],
                            metrics,
                        }),
                        report,
                    ));
                }
                WorkerOutcome::Suspended(_global, dir) => {
                    // Only an epoch that validates end-to-end — every
                    // shard plus the manifest, CRCs intact — may become
                    // the recovery point.
                    match checkpoint::validate::<A::Context, Partial<A>, Global<A>>(&dir, n) {
                        Ok(()) => {
                            report.checkpoints += 1;
                            if let Some((_, old)) = last_good.replace((this_attempt, dir)) {
                                let _ = std::fs::remove_dir_all(old);
                            }
                        }
                        Err(_) => {
                            let _ = std::fs::remove_dir_all(&dir);
                        }
                    }
                    // Conservative master-local cadence backoff: if this
                    // segment finished no local task, the interval is
                    // likely shorter than the restore cost.
                    if stats.tasks_finished == 0 {
                        if let Some(i) = interval.as_mut() {
                            *i *= 2;
                        }
                    }
                }
                WorkerOutcome::Failed(_global, w) => {
                    report.recoveries += 1;
                    report.failed_workers.push(w);
                    // The failed attempt's epoch is incomplete; remove
                    // it so nothing ever resumes from it.
                    let _ = std::fs::remove_dir_all(&epoch_dir);
                    if report.recoveries > opts.max_recoveries {
                        return Err(io::Error::other(format!(
                            "worker {} crashed and the cluster failed {} times; giving up \
                             (survivors will time out at their next rendezvous)",
                            w.index(),
                            report.recoveries
                        )));
                    }
                }
            }
        } else {
            let aborted = shared.aborted.load(Ordering::SeqCst);
            let suspended = shared.suspend.load(Ordering::SeqCst);
            if aborted {
                report.recoveries += 1;
                if report.recoveries > opts.max_recoveries {
                    return Err(io::Error::other(format!(
                        "worker {me} saw {} recovery rounds; giving up",
                        report.recoveries
                    )));
                }
            } else if !suspended {
                // A clean Terminate: the job completed.
                return Ok((ClusterRole::Worker(stats, registry.final_snapshot()), report));
            }
            // Aborted or suspended: loop back to the rendezvous.
        }
        attempt = this_attempt + 1;
        drop(transport);
    }
}
