//! Multi-process job execution over the TCP backend.
//!
//! [`run_worker_process`] is the per-process counterpart of
//! [`crate::job::run_job`]: every OS process in the cluster calls it
//! with the **same** graph, config and [`ClusterManifest`], plus its own
//! worker ID. Each process loads and trims the graph, hash-partitions
//! it identically (the partitioner is deterministic), keeps only its
//! own partition, joins the TCP rendezvous, and then runs the exact
//! same worker main loop the sim backend runs — master logic included
//! on worker 0. When the master's termination protocol fires, its
//! Terminate broadcast shuts every process down gracefully.
//!
//! Differences from the in-process runner, by design:
//!
//! * The master's [`JobResult::workers`] holds only **its own**
//!   [`WorkerStats`] — remote stats live in the remote processes, which
//!   each get theirs back as [`ClusterRole::Worker`].
//! * `config.link` is ignored: the real network provides the latency.
//! * Crash schedules and checkpoint resume are unsupported (the sim
//!   backend covers those paths); fault drops/dups/delays work, seeded
//!   identically on every process by [`gthinker_net::FaultConfig`].

use crate::api::App;
use crate::config::{JobConfig, JobOutcome, JobResult, WorkerStats};
use crate::job::GraphSource;
use crate::job::{build_locals, build_worker, new_job_dir, worker_main, Global, WorkerOutcome};
use crate::metrics::MetricsRegistry;
use gthinker_graph::graph::Graph;
use gthinker_graph::ids::WorkerId;
use gthinker_graph::partition::HashPartitioner;
use gthinker_net::tcp::{ClusterManifest, TcpTransport};
use gthinker_net::transport::Transport;
use std::io;
use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What this process was in the cluster, with the payload it gets back.
#[derive(Debug)]
pub enum ClusterRole<G> {
    /// Worker 0: the full job result (with only this worker's stats).
    Master(JobResult<G>),
    /// Any other worker: its own statistics.
    Worker(WorkerStats),
}

/// Runs this process's worker of a multi-process job, blocking until
/// the master's termination (or failure) protocol shuts it down.
/// `connect_timeout` bounds the cluster rendezvous, not the job.
pub fn run_worker_process<A: App>(
    app: Arc<A>,
    graph: &Graph,
    config: &JobConfig,
    manifest: &ClusterManifest,
    me: WorkerId,
    connect_timeout: Duration,
) -> io::Result<ClusterRole<Global<A>>> {
    let listener = TcpListener::bind(manifest.addr(me))?;
    run_worker_process_on(app, graph, config, manifest, me, connect_timeout, listener)
}

/// [`run_worker_process`] with a pre-bound listener (see
/// [`ClusterManifest::loopback`]); tests use this to avoid port races.
pub fn run_worker_process_on<A: App>(
    app: Arc<A>,
    graph: &Graph,
    config: &JobConfig,
    manifest: &ClusterManifest,
    me: WorkerId,
    connect_timeout: Duration,
    listener: TcpListener,
) -> io::Result<ClusterRole<Global<A>>> {
    run_worker_process_source_on(
        app,
        GraphSource::InMemory(graph),
        config,
        manifest,
        me,
        connect_timeout,
        listener,
    )
}

/// [`run_worker_process`] over an explicit [`GraphSource`]: a process
/// handed a memory-mapped compressed graph opens its own mapping (maps
/// are per-process) and serves its partition lazily from it.
pub fn run_worker_process_source<A: App>(
    app: Arc<A>,
    source: GraphSource<'_>,
    config: &JobConfig,
    manifest: &ClusterManifest,
    me: WorkerId,
    connect_timeout: Duration,
) -> io::Result<ClusterRole<Global<A>>> {
    let listener = TcpListener::bind(manifest.addr(me))?;
    run_worker_process_source_on(app, source, config, manifest, me, connect_timeout, listener)
}

/// [`run_worker_process_source`] with a pre-bound listener.
pub fn run_worker_process_source_on<A: App>(
    app: Arc<A>,
    source: GraphSource<'_>,
    config: &JobConfig,
    manifest: &ClusterManifest,
    me: WorkerId,
    connect_timeout: Duration,
    listener: TcpListener,
) -> io::Result<ClusterRole<Global<A>>> {
    assert!(config.num_workers >= 1);
    assert!(config.compers_per_worker >= 1);
    if config.num_workers != manifest.num_workers() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "config says {} workers but the manifest lists {}",
                config.num_workers,
                manifest.num_workers()
            ),
        ));
    }
    let start = Instant::now();

    // Same pipeline as the in-process runner: trim, then partition
    // deterministically — every process computes identical ownership,
    // and this one keeps only its own part (or, on a mapped source,
    // its own member list over the shared file).
    let partitioner = HashPartitioner::new(config.num_workers as u16);
    let (mut locals, label_table) = build_locals(&app, &source, partitioner, &[me.index()]);
    let local = locals.pop().expect("one local table requested");

    // Rendezvous before building worker state, so a peer that never
    // shows up fails fast instead of after graph setup work.
    let mut transport =
        TcpTransport::connect_on(manifest, me, config.fault.clone(), connect_timeout, listener)?;
    let net = transport.take_endpoint(me);

    let job_dir = new_job_dir(config);
    let shared =
        build_worker(&app, config, &label_table, partitioner, me.index(), local, net, &job_dir)?;

    // The worker main loop is byte-for-byte the sim backend's: compers,
    // receiver, responders, GC, periodic ticks, master logic on 0.
    let registry = MetricsRegistry::new(vec![Arc::clone(&shared)], start);
    let (stats, outcome, io_error) = worker_main(Arc::clone(&shared), None);

    let _ = std::fs::remove_dir_all(&job_dir);
    if let Some(msg) = shared.failure.lock().take() {
        panic!("{msg}");
    }
    if let Some(e) = io_error {
        return Err(e);
    }

    if me == WorkerId(0) {
        let outcome = outcome.expect("master worker returns the job outcome");
        let (global, job_outcome) = match outcome {
            WorkerOutcome::Completed(g) => (g, JobOutcome::Completed),
            WorkerOutcome::Suspended(g, dir) => (g, JobOutcome::Suspended { checkpoint: dir }),
            WorkerOutcome::Failed(g, w) => (g, JobOutcome::Failed { worker: w }),
        };
        let metrics = registry.final_snapshot();
        Ok(ClusterRole::Master(JobResult {
            global,
            elapsed: start.elapsed(),
            outcome: job_outcome,
            workers: vec![stats],
            metrics,
        }))
    } else {
        Ok(ClusterRole::Worker(stats))
    }
}
