//! Unified job metrics: the [`MetricsRegistry`] and its
//! [`MetricsSnapshot`], subsuming the raw `WorkerCounters`, the cache
//! statistics and the progress view into one structured, exportable
//! snapshot (DESIGN.md §"Observability").
//!
//! A snapshot is safe to take at any moment of a running job — every
//! source is either an atomic counter or a lock-free histogram read —
//! and is plain data afterwards: mergeable, comparable, serialisable
//! to JSON or pretty text, and (with events) dumpable as a Chrome
//! trace.

use crate::api::App;
use crate::job::ProgressSnapshot;
use crate::worker::WorkerShared;
use gthinker_graph::ids::WorkerId;
use gthinker_metrics::{ComperHistSnapshot, Event, EventKind, HistSnapshot, NUM_BUCKETS};
use gthinker_net::message::Message;
use gthinker_store::cache::CacheSnapshot;
use std::fmt::Write as _;
use std::io;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Live handle over a running job's workers; the factory for
/// [`MetricsSnapshot`]s. Owned by the job runner.
pub struct MetricsRegistry<A: App> {
    workers: Vec<Arc<WorkerShared<A>>>,
    start: Instant,
}

impl<A: App> MetricsRegistry<A> {
    pub(crate) fn new(workers: Vec<Arc<WorkerShared<A>>>, start: Instant) -> Self {
        MetricsRegistry { workers, start }
    }

    /// Mid-run snapshot: counters, cache stats and histograms, but no
    /// event dump (rings keep filling; reading them mid-run is cheap
    /// but rarely useful before the job ends).
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.snapshot_inner(false)
    }

    /// End-of-run snapshot including each worker's event timeline.
    pub fn final_snapshot(&self) -> MetricsSnapshot {
        self.snapshot_inner(true)
    }

    fn snapshot_inner(&self, with_events: bool) -> MetricsSnapshot {
        MetricsSnapshot {
            elapsed: self.start.elapsed(),
            workers: self.workers.iter().map(|w| snapshot_worker(w, with_events)).collect(),
        }
    }
}

/// Ships one cumulative metrics report to the master, or publishes it
/// straight into the local [`ClusterTelemetry`] when this worker *is*
/// the master. Periodic reports are compact — counters and histograms
/// but no event dump; final reports carry the event ring for cluster
/// trace stitching.
pub(crate) fn send_report<A: App>(shared: &Arc<WorkerShared<A>>, master: WorkerId, is_final: bool) {
    let snap = snapshot_worker(shared, is_final);
    if shared.me == master {
        if let Some(t) = shared.telemetry.get() {
            t.publish(shared.me.0 as usize, snap, is_final);
        }
        return;
    }
    shared.net.send(
        master,
        Message::MetricsReport { worker: shared.me, payload: snap.encode_report(), is_final },
    );
}

pub(crate) fn snapshot_worker<A: App>(
    w: &WorkerShared<A>,
    with_events: bool,
) -> WorkerMetricsSnapshot {
    let c = &w.counters;
    WorkerMetricsSnapshot {
        tasks_finished: c.tasks_finished.load(Ordering::Relaxed),
        compute_calls: c.compute_calls.load(Ordering::Relaxed),
        compute_nanos: c.compute_nanos.load(Ordering::Relaxed),
        idle_nanos: c.idle_nanos.load(Ordering::Relaxed),
        steals: c.steals.load(Ordering::Relaxed),
        stolen_tasks: c.stolen_tasks.load(Ordering::Relaxed),
        remote_steals: c.remote_steals.load(Ordering::Relaxed),
        remote_stolen_tasks: c.remote_stolen_tasks.load(Ordering::Relaxed),
        steal_batch_bytes: c.steal_batch_bytes.load(Ordering::Relaxed),
        yields: c.yields.load(Ordering::Relaxed),
        split_tasks: c.split_tasks.load(Ordering::Relaxed),
        parks: c.parks.load(Ordering::Relaxed),
        wakeups: c.wakeups.load(Ordering::Relaxed),
        responses_served: c.responses_served.load(Ordering::Relaxed),
        responder_backlog: c.responder_backlog.load(Ordering::Relaxed),
        responder_peak_backlog: c.responder_peak_backlog.load(Ordering::Relaxed),
        pull_retries: c.pull_retries.load(Ordering::Relaxed),
        net_msgs_dropped: w.net.fault_stats().map_or(0, |f| f.dropped.load(Ordering::Relaxed)),
        net_msgs_duplicated: w
            .net
            .fault_stats()
            .map_or(0, |f| f.duplicated.load(Ordering::Relaxed)),
        net_msgs_delayed: w.net.fault_stats().map_or(0, |f| f.delayed.load(Ordering::Relaxed)),
        cache: w.cache.stats().snapshot(),
        net_bytes_sent: w.net.stats().bytes_sent.load(Ordering::Relaxed),
        net_bytes_received: w.net.stats().bytes_received.load(Ordering::Relaxed),
        net_writev_calls: w.net.stats().writev_calls.load(Ordering::Relaxed),
        net_frames_coalesced: w.net.stats().frames_coalesced.load(Ordering::Relaxed),
        net_backpressure_stalls: w.net.stats().backpressure_stalls.load(Ordering::Relaxed),
        net_delayed_write_errors: w.net.stats().delayed_write_errors.load(Ordering::Relaxed),
        spill_bytes: w.spill.bytes_spilled(),
        remaining: w.remaining_estimate(),
        quiescent: w.quiescent(),
        idle_compers: w
            .compers
            .iter()
            .filter(|c| {
                !c.busy.load(Ordering::Relaxed) && c.queue.is_empty() && c.buffer.is_empty()
            })
            .count() as u64,
        steal_inflight: w.steal_inflight.load(Ordering::Relaxed),
        trace_events_dropped: w.metrics.ring.dropped(),
        recoveries: w.recoveries.load(Ordering::Relaxed),
        peer_down_events: w.net.stats().peer_downs_total(),
        rejoins: w.rejoins.load(Ordering::Relaxed),
        resumed_epoch: w.resumed_epoch.load(Ordering::Relaxed),
        clock_offset_nanos: w.clock_offset_nanos(),
        compers: w.compers.iter().map(|c| c.hists.snapshot()).collect(),
        pull_rtt: w.metrics.pull_rtt.snapshot(),
        responder_drain: w.metrics.responder_drain.snapshot(),
        events: if with_events { w.metrics.ring.snapshot() } else { Vec::new() },
    }
}

/// One worker's slice of a [`MetricsSnapshot`]: every scheduler/cache
/// counter, the per-comper latency histograms and (in final snapshots)
/// the event timeline.
#[derive(Clone, Debug, Default)]
pub struct WorkerMetricsSnapshot {
    /// Tasks whose `compute()` returned `false`.
    pub tasks_finished: u64,
    /// Total `compute()` invocations (iterations).
    pub compute_calls: u64,
    /// Thread-CPU nanoseconds inside `compute()`, summed over compers.
    pub compute_nanos: u64,
    /// Nanoseconds compers spent parked, summed over compers.
    pub idle_nanos: u64,
    /// Successful intra-worker steals by this worker's compers.
    pub steals: u64,
    /// Tasks moved by those steals.
    pub stolen_tasks: u64,
    /// Cluster-wide steal batches this worker shipped to remote
    /// thieves (master-brokered).
    pub remote_steals: u64,
    /// Tasks moved off this worker by those batches.
    pub remote_stolen_tasks: u64,
    /// Framed bytes of steal batches sent, resends included.
    pub steal_batch_bytes: u64,
    /// Mid-compute yields: framework budget preemptions plus UDF
    /// `note_split` events.
    pub yields: u64,
    /// Tasks created by straggler splitting (framework re-enqueues +
    /// UDF-reported fan-outs).
    pub split_tasks: u64,
    /// Times a comper parked on the scheduler event count.
    pub parks: u64,
    /// Parks that ended in an event wakeup (not the fallback timeout).
    pub wakeups: u64,
    /// Vertices served to remote pulls by the responder pool.
    pub responses_served: u64,
    /// Request batches queued to responders but not yet served (gauge;
    /// 0 at quiescence).
    pub responder_backlog: u64,
    /// Peak of that gauge over the run.
    pub responder_peak_backlog: u64,
    /// Vertex pulls re-requested after their R-table deadline expired
    /// (loss tolerance; 0 on a healthy wire).
    pub pull_retries: u64,
    /// Data-plane messages the fault-injected wire dropped on this
    /// worker's sends (0 with fault injection off).
    pub net_msgs_dropped: u64,
    /// Data-plane messages the fault-injected wire duplicated.
    pub net_msgs_duplicated: u64,
    /// Data-plane messages the fault-injected wire delayed.
    pub net_msgs_delayed: u64,
    /// Named cache counters (previously the opaque 5-tuple).
    pub cache: CacheSnapshot,
    /// Bytes sent over the simulated network.
    pub net_bytes_sent: u64,
    /// Bytes received.
    pub net_bytes_received: u64,
    /// Vectored socket writes issued by the evented TCP data plane's
    /// I/O loop (0 on the sim router and the threaded backend).
    pub net_writev_calls: u64,
    /// Frames that shared a vectored write with at least one other
    /// frame — the evented plane's write-coalescing win.
    pub net_frames_coalesced: u64,
    /// Sends that waited on a full per-peer outbound ring (evented
    /// backpressure; 0 unless a peer or the wire is slow).
    pub net_backpressure_stalls: u64,
    /// Fault-delayed frames whose deferred write failed and was
    /// dropped (dead peer or closed socket), on either TCP backend.
    pub net_delayed_write_errors: u64,
    /// Bytes of task batches spilled to disk.
    pub spill_bytes: u64,
    /// Estimated remaining load in tasks.
    pub remaining: u64,
    /// Whether the worker was quiescent at snapshot time.
    pub quiescent: bool,
    /// Compers parked with nothing reachable at snapshot time (gauge).
    pub idle_compers: u64,
    /// Sealed steal batches not yet acked by their thief (gauge).
    pub steal_inflight: u64,
    /// Trace events lost to the ring's overwrite-oldest recycling;
    /// nonzero flags a truncated timeline.
    pub trace_events_dropped: u64,
    /// Crash-recovery rounds this job has been through (cumulative
    /// across attempts; every worker reports the master's count).
    pub recoveries: u64,
    /// TCP peer-death events this worker's transport observed (0 on
    /// the simulated wire and on a healthy cluster).
    pub peer_down_events: u64,
    /// Times this process re-joined a surviving mesh with a bumped
    /// generation (1 after a respawn, 0 otherwise).
    pub rejoins: u64,
    /// Checkpoint epoch the current attempt resumed from, or -1 when
    /// the attempt started fresh.
    pub resumed_epoch: i64,
    /// Estimated offset of this worker's metrics clock from the
    /// master's (`master_now ≈ local_now + offset`), from the minimum-
    /// RTT ping/pong sample. 0 on the master and on single-process
    /// runs.
    pub clock_offset_nanos: i64,
    /// Per-comper latency histograms (compute / e2e / park).
    pub compers: Vec<ComperHistSnapshot>,
    /// Pull round-trip time (request sent → response installed).
    pub pull_rtt: HistSnapshot,
    /// Responder backlog drain time (dispatch → response sent).
    pub responder_drain: HistSnapshot,
    /// Event timeline (final snapshots only; bounded by the ring).
    pub events: Vec<Event>,
}

impl WorkerMetricsSnapshot {
    /// All compers' histograms merged into one (lossless bucket sums).
    pub fn merged_hists(&self) -> ComperHistSnapshot {
        let mut m = ComperHistSnapshot::default();
        for c in &self.compers {
            m.merge(c);
        }
        m
    }

    /// Serializes this snapshot as a `MetricsReport` payload: a compact
    /// little-endian encoding (histograms as sparse nonzero-bucket
    /// lists) sealed in a CRC frame, like steal batches. The master
    /// validates the frame before trusting a byte of it.
    pub fn encode_report(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(512);
        b.push(REPORT_VERSION);
        for v in [
            self.tasks_finished,
            self.compute_calls,
            self.compute_nanos,
            self.idle_nanos,
            self.steals,
            self.stolen_tasks,
            self.remote_steals,
            self.remote_stolen_tasks,
            self.steal_batch_bytes,
            self.yields,
            self.split_tasks,
            self.parks,
            self.wakeups,
            self.responses_served,
            self.responder_backlog,
            self.responder_peak_backlog,
            self.pull_retries,
            self.net_msgs_dropped,
            self.net_msgs_duplicated,
            self.net_msgs_delayed,
            self.net_bytes_sent,
            self.net_bytes_received,
            self.spill_bytes,
            self.remaining,
            self.idle_compers,
            self.steal_inflight,
            self.trace_events_dropped,
            self.cache.hits,
            self.cache.shared_waits,
            self.cache.misses,
            self.cache.evictions,
            self.cache.gc_passes,
            self.cache.retries,
            self.cache.stale_responses,
            self.recoveries,
            self.peer_down_events,
            self.rejoins,
            self.net_writev_calls,
            self.net_frames_coalesced,
            self.net_backpressure_stalls,
            self.net_delayed_write_errors,
        ] {
            b.extend_from_slice(&v.to_le_bytes());
        }
        b.push(self.quiescent as u8);
        b.extend_from_slice(&self.clock_offset_nanos.to_le_bytes());
        b.extend_from_slice(&self.resumed_epoch.to_le_bytes());
        put_hist(&mut b, &self.pull_rtt);
        put_hist(&mut b, &self.responder_drain);
        b.extend_from_slice(&(self.compers.len() as u16).to_le_bytes());
        for c in &self.compers {
            put_hist(&mut b, &c.compute);
            put_hist(&mut b, &c.e2e);
            put_hist(&mut b, &c.park);
        }
        b.extend_from_slice(&(self.events.len() as u32).to_le_bytes());
        for e in &self.events {
            b.extend_from_slice(&e.ts.to_le_bytes());
            b.extend_from_slice(&e.dur.to_le_bytes());
            b.extend_from_slice(&e.tid.to_le_bytes());
            b.extend_from_slice(&e.arg.to_le_bytes());
            b.push(e.kind.code());
        }
        gthinker_net::frame::seal(&b)
    }

    /// Decodes a sealed `MetricsReport` payload. Any corruption —
    /// a bad frame, an unknown version, a short buffer — is a clean
    /// `InvalidData` error, never a panic.
    pub fn decode_report(payload: &[u8]) -> io::Result<WorkerMetricsSnapshot> {
        let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
        let raw = gthinker_net::frame::open(payload).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("report frame: {e}"))
        })?;
        let mut c = Cursor(raw);
        if c.u8()? != REPORT_VERSION {
            return Err(bad("unknown metrics report version"));
        }
        let mut counters = [0u64; 41];
        for v in counters.iter_mut() {
            *v = c.u64()?;
        }
        let quiescent = c.u8()? != 0;
        let clock_offset_nanos = c.i64()?;
        let resumed_epoch = c.i64()?;
        let pull_rtt = get_hist(&mut c)?;
        let responder_drain = get_hist(&mut c)?;
        let n_compers = c.u16()? as usize;
        let mut compers = Vec::with_capacity(n_compers.min(1024));
        for _ in 0..n_compers {
            compers.push(ComperHistSnapshot {
                compute: get_hist(&mut c)?,
                e2e: get_hist(&mut c)?,
                park: get_hist(&mut c)?,
            });
        }
        let n_events = c.u32()? as usize;
        let mut events = Vec::with_capacity(n_events.min(65_536));
        for _ in 0..n_events {
            let (ts, dur, tid, arg) = (c.u64()?, c.u64()?, c.u32()?, c.u64()?);
            let kind =
                EventKind::from_code(c.u8()?).ok_or_else(|| bad("unknown event kind code"))?;
            events.push(Event { ts, dur, tid, arg, kind });
        }
        Ok(WorkerMetricsSnapshot {
            tasks_finished: counters[0],
            compute_calls: counters[1],
            compute_nanos: counters[2],
            idle_nanos: counters[3],
            steals: counters[4],
            stolen_tasks: counters[5],
            remote_steals: counters[6],
            remote_stolen_tasks: counters[7],
            steal_batch_bytes: counters[8],
            yields: counters[9],
            split_tasks: counters[10],
            parks: counters[11],
            wakeups: counters[12],
            responses_served: counters[13],
            responder_backlog: counters[14],
            responder_peak_backlog: counters[15],
            pull_retries: counters[16],
            net_msgs_dropped: counters[17],
            net_msgs_duplicated: counters[18],
            net_msgs_delayed: counters[19],
            net_bytes_sent: counters[20],
            net_bytes_received: counters[21],
            spill_bytes: counters[22],
            remaining: counters[23],
            idle_compers: counters[24],
            steal_inflight: counters[25],
            trace_events_dropped: counters[26],
            cache: CacheSnapshot {
                hits: counters[27],
                shared_waits: counters[28],
                misses: counters[29],
                evictions: counters[30],
                gc_passes: counters[31],
                retries: counters[32],
                stale_responses: counters[33],
            },
            recoveries: counters[34],
            peer_down_events: counters[35],
            rejoins: counters[36],
            net_writev_calls: counters[37],
            net_frames_coalesced: counters[38],
            net_backpressure_stalls: counters[39],
            net_delayed_write_errors: counters[40],
            quiescent,
            clock_offset_nanos,
            resumed_epoch,
            pull_rtt,
            responder_drain,
            compers,
            events,
        })
    }
}

/// Version byte leading every encoded metrics report. Bumped to 2 when
/// the crash-recovery counters (recoveries / peer-down / rejoins /
/// resumed-epoch) joined the payload; to 3 when the evented data
/// plane's counters (writev calls / frames coalesced / backpressure
/// stalls / delayed-write errors) did.
const REPORT_VERSION: u8 = 3;

/// Sparse histogram encoding: nonzero-bucket count, then (index, count)
/// pairs, then the running sum. Most histograms populate a handful of
/// the 64 buckets, so this beats the dense form by ~8x.
fn put_hist(b: &mut Vec<u8>, h: &HistSnapshot) {
    let nonzero: Vec<(u8, u64)> =
        h.buckets.iter().enumerate().filter(|(_, &n)| n > 0).map(|(i, &n)| (i as u8, n)).collect();
    b.push(nonzero.len() as u8);
    for (i, n) in nonzero {
        b.push(i);
        b.extend_from_slice(&n.to_le_bytes());
    }
    b.extend_from_slice(&h.sum.to_le_bytes());
}

fn get_hist(c: &mut Cursor<'_>) -> io::Result<HistSnapshot> {
    let mut h = HistSnapshot::default();
    let n = c.u8()? as usize;
    for _ in 0..n {
        let i = c.u8()? as usize;
        if i >= NUM_BUCKETS {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "histogram bucket index"));
        }
        h.buckets[i] = c.u64()?;
    }
    h.sum = c.u64()?;
    Ok(h)
}

/// Bounds-checked little-endian reader over a report payload.
struct Cursor<'a>(&'a [u8]);

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> io::Result<&[u8]> {
        if self.0.len() < n {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "metrics report truncated"));
        }
        let (head, rest) = self.0.split_at(n);
        self.0 = rest;
        Ok(head)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> io::Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> io::Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// A point-in-time view of every worker's metrics. Plain data; all
/// methods are derived views.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Time since the job started.
    pub elapsed: Duration,
    /// One entry per worker.
    pub workers: Vec<WorkerMetricsSnapshot>,
}

impl MetricsSnapshot {
    /// Every comper of every worker merged into one histogram set.
    pub fn merged_hists(&self) -> ComperHistSnapshot {
        let mut m = ComperHistSnapshot::default();
        for w in &self.workers {
            m.merge(&w.merged_hists());
        }
        m
    }

    /// Tasks finished across all workers.
    pub fn total_tasks(&self) -> u64 {
        self.workers.iter().map(|w| w.tasks_finished).sum()
    }

    /// The legacy progress view, derived (the observer API's
    /// [`ProgressSnapshot`] is a strict projection of this snapshot).
    pub fn progress(&self) -> ProgressSnapshot {
        ProgressSnapshot {
            elapsed: self.elapsed,
            tasks_finished: self.total_tasks(),
            remaining: self.workers.iter().map(|w| w.remaining).sum(),
            cache_hits: self.workers.iter().map(|w| w.cache.hits).sum(),
            cache_misses: self.workers.iter().map(|w| w.cache.misses).sum(),
            net_bytes: self.workers.iter().map(|w| w.net_bytes_sent).sum(),
            quiescent_workers: self.workers.iter().filter(|w| w.quiescent).count(),
        }
    }

    /// Writes all workers' event timelines as Chrome `trace_event`
    /// JSON (chrome://tracing / Perfetto). Only meaningful on a final
    /// snapshot of a job run with a non-zero `trace_capacity`.
    pub fn write_chrome_trace<W: std::io::Write>(&self, w: W) -> std::io::Result<()> {
        let per_worker: Vec<Vec<Event>> = self.workers.iter().map(|ws| ws.events.clone()).collect();
        gthinker_metrics::trace::write_chrome_trace(w, &per_worker)
    }

    /// Machine-readable JSON export: per-worker counters plus quantile
    /// summaries (count/mean/p50/p90/p95/p99/max) of every histogram,
    /// per comper and merged.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = write!(s, "{{\n  \"elapsed_ms\": {:.3},\n  \"workers\": [", ms(self.elapsed));
        for (wi, w) in self.workers.iter().enumerate() {
            if wi > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n    {{\n      \"worker\": {wi},\n      \
                 \"tasks_finished\": {},\n      \"compute_calls\": {},\n      \
                 \"compute_ms\": {:.3},\n      \"idle_ms\": {:.3},\n      \
                 \"steals\": {},\n      \"stolen_tasks\": {},\n      \
                 \"remote_steals\": {},\n      \"remote_stolen_tasks\": {},\n      \
                 \"steal_batch_bytes\": {},\n      \"yields\": {},\n      \
                 \"split_tasks\": {},\n      \
                 \"parks\": {},\n      \"wakeups\": {},\n      \
                 \"responses_served\": {},\n      \"responder_backlog\": {},\n      \
                 \"responder_peak_backlog\": {},\n      \"pull_retries\": {},\n      \
                 \"net_msgs_dropped\": {},\n      \"net_msgs_duplicated\": {},\n      \
                 \"net_msgs_delayed\": {},\n      \
                 \"trace_events_dropped\": {},\n      \
                 \"recoveries\": {},\n      \"peer_down_events\": {},\n      \
                 \"rejoins\": {},\n      \"resumed_epoch\": {},\n      \
                 \"clock_offset_nanos\": {},\n      \
                 \"remaining\": {},\n      \"idle_compers\": {},\n      \
                 \"steal_inflight\": {},\n      \"quiescent\": {},\n      \
                 \"cache\": {{\"hits\": {}, \"shared_waits\": {}, \"misses\": {}, \
                 \"evictions\": {}, \"gc_passes\": {}, \"retries\": {}, \
                 \"stale_responses\": {}}},\n      \
                 \"net_bytes_sent\": {},\n      \"net_bytes_received\": {},\n      \
                 \"net_writev_calls\": {},\n      \"net_frames_coalesced\": {},\n      \
                 \"net_backpressure_stalls\": {},\n      \
                 \"net_delayed_write_errors\": {},\n      \
                 \"spill_bytes\": {},\n      \
                 \"pull_rtt\": {},\n      \"responder_drain\": {},\n      \
                 \"compers\": [",
                w.tasks_finished,
                w.compute_calls,
                w.compute_nanos as f64 / 1e6,
                w.idle_nanos as f64 / 1e6,
                w.steals,
                w.stolen_tasks,
                w.remote_steals,
                w.remote_stolen_tasks,
                w.steal_batch_bytes,
                w.yields,
                w.split_tasks,
                w.parks,
                w.wakeups,
                w.responses_served,
                w.responder_backlog,
                w.responder_peak_backlog,
                w.pull_retries,
                w.net_msgs_dropped,
                w.net_msgs_duplicated,
                w.net_msgs_delayed,
                w.trace_events_dropped,
                w.recoveries,
                w.peer_down_events,
                w.rejoins,
                w.resumed_epoch,
                w.clock_offset_nanos,
                w.remaining,
                w.idle_compers,
                w.steal_inflight,
                w.quiescent,
                w.cache.hits,
                w.cache.shared_waits,
                w.cache.misses,
                w.cache.evictions,
                w.cache.gc_passes,
                w.cache.retries,
                w.cache.stale_responses,
                w.net_bytes_sent,
                w.net_bytes_received,
                w.net_writev_calls,
                w.net_frames_coalesced,
                w.net_backpressure_stalls,
                w.net_delayed_write_errors,
                w.spill_bytes,
                hist_json(&w.pull_rtt),
                hist_json(&w.responder_drain),
            );
            for (ci, c) in w.compers.iter().enumerate() {
                if ci > 0 {
                    s.push(',');
                }
                let _ = write!(
                    s,
                    "\n        {{\"comper\": {ci}, \"compute\": {}, \"e2e\": {}, \"park\": {}}}",
                    hist_json(&c.compute),
                    hist_json(&c.e2e),
                    hist_json(&c.park),
                );
            }
            s.push_str("\n      ]\n    }");
        }
        let m = self.merged_hists();
        let _ = write!(
            s,
            "\n  ],\n  \"merged\": {{\"compute\": {}, \"e2e\": {}, \"park\": {}}}\n}}\n",
            hist_json(&m.compute),
            hist_json(&m.e2e),
            hist_json(&m.park),
        );
        s
    }

    /// Human-readable summary: per-worker counters and merged latency
    /// quantiles.
    pub fn pretty(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "job metrics after {:.1} ms", ms(self.elapsed));
        let _ = writeln!(
            s,
            "{:>6} | {:>8} {:>9} {:>9} | {:>6} {:>6} {:>7} | {:>9} {:>9}",
            "worker", "tasks", "compute", "idle", "steals", "parks", "served", "hits", "misses"
        );
        for (wi, w) in self.workers.iter().enumerate() {
            let _ = writeln!(
                s,
                "{:>6} | {:>8} {:>8.1}ms {:>8.1}ms | {:>6} {:>6} {:>7} | {:>9} {:>9}",
                wi,
                w.tasks_finished,
                w.compute_nanos as f64 / 1e6,
                w.idle_nanos as f64 / 1e6,
                w.steals,
                w.parks,
                w.responses_served,
                w.cache.hits,
                w.cache.misses,
            );
        }
        let m = self.merged_hists();
        for (name, h) in [("compute", &m.compute), ("task e2e", &m.e2e), ("park", &m.park)] {
            let _ = writeln!(
                s,
                "{name:>9}: n={} p50={} p95={} p99={} max={}",
                h.count(),
                fmt_nanos(h.quantile(0.50)),
                fmt_nanos(h.quantile(0.95)),
                fmt_nanos(h.quantile(0.99)),
                fmt_nanos(h.max_estimate()),
            );
        }
        s
    }

    /// End-of-run tail-latency report: task e2e p50/p95/p99/max per
    /// comper, with a straggler flag on any comper whose busy time
    /// (thread-CPU in `compute()`) deviates more than 2× from the
    /// median comper.
    pub fn tail_report(&self) -> String {
        let mut s = String::new();
        let mut busies: Vec<u64> =
            self.workers.iter().flat_map(|w| w.compers.iter().map(|c| c.compute.sum)).collect();
        if busies.is_empty() {
            return "no comper metrics recorded (metrics feature off?)\n".to_string();
        }
        busies.sort_unstable();
        let median = busies[busies.len() / 2];
        let _ = writeln!(s, "task latency tail (end-to-end, spawn -> finish)");
        let _ = writeln!(
            s,
            "{:>6} {:>6} | {:>7} {:>9} {:>9} {:>9} {:>9} | {:>9}",
            "worker", "comper", "tasks", "p50", "p95", "p99", "max", "busy"
        );
        let mut stragglers = Vec::new();
        for (wi, w) in self.workers.iter().enumerate() {
            for (ci, c) in w.compers.iter().enumerate() {
                let busy = c.compute.sum;
                // A comper is a straggler when its busy time is more
                // than 2x the median (overloaded) or under half of it
                // (starved) — both directions of >2x deviation.
                let straggler = median > 0 && (busy > 2 * median || busy * 2 < median);
                let _ = writeln!(
                    s,
                    "{:>6} {:>6} | {:>7} {:>9} {:>9} {:>9} {:>9} | {:>7.1}ms{}",
                    wi,
                    ci,
                    c.e2e.count(),
                    fmt_nanos(c.e2e.quantile(0.50)),
                    fmt_nanos(c.e2e.quantile(0.95)),
                    fmt_nanos(c.e2e.quantile(0.99)),
                    fmt_nanos(c.e2e.max_estimate()),
                    busy as f64 / 1e6,
                    if straggler { "  <-- straggler" } else { "" },
                );
                if straggler {
                    stragglers.push((wi, ci, busy));
                }
            }
        }
        if stragglers.is_empty() {
            let _ = writeln!(s, "no stragglers (all busy times within 2x of the median)");
        } else {
            for (wi, ci, busy) in stragglers {
                let _ = writeln!(
                    s,
                    "straggler: worker {wi} comper {ci} busy {:.1}ms vs median {:.1}ms",
                    busy as f64 / 1e6,
                    median as f64 / 1e6,
                );
            }
        }
        let (rs, rt, rb, yl, sp) = self.workers.iter().fold((0, 0, 0, 0, 0), |a, w| {
            (
                a.0 + w.remote_steals,
                a.1 + w.remote_stolen_tasks,
                a.2 + w.steal_batch_bytes,
                a.3 + w.yields,
                a.4 + w.split_tasks,
            )
        });
        let _ = writeln!(
            s,
            "cluster stealing: {rs} batches / {rt} tasks / {rb} bytes shipped; \
             {yl} yields split {sp} straggler tasks",
        );
        s
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (version 0.0.4): one gauge/counter family per metric with a
    /// `worker="i"` label per sample, scrapeable from the
    /// `--telemetry-addr` endpoint mid-run.
    pub fn prometheus_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "# HELP gthinker_elapsed_seconds Wall time since the job started.");
        let _ = writeln!(s, "# TYPE gthinker_elapsed_seconds gauge");
        let _ = writeln!(s, "gthinker_elapsed_seconds {:.3}", self.elapsed.as_secs_f64());
        let mut family =
            |name: &str, kind: &str, help: &str, get: &dyn Fn(&WorkerMetricsSnapshot) -> u64| {
                let _ = writeln!(s, "# HELP {name} {help}");
                let _ = writeln!(s, "# TYPE {name} {kind}");
                for (wi, w) in self.workers.iter().enumerate() {
                    let _ = writeln!(s, "{name}{{worker=\"{wi}\"}} {}", get(w));
                }
            };
        family("gthinker_remaining", "gauge", "Estimated remaining load in tasks.", &|w| {
            w.remaining
        });
        family("gthinker_idle_compers", "gauge", "Compers parked with nothing reachable.", &|w| {
            w.idle_compers
        });
        family(
            "gthinker_steal_inflight",
            "gauge",
            "Sealed steal batches awaiting their thief's ack.",
            &|w| w.steal_inflight,
        );
        family(
            "gthinker_quiescent",
            "gauge",
            "1 when the worker has reported local quiescence.",
            &|w| w.quiescent as u64,
        );
        family(
            "gthinker_tasks_finished_total",
            "counter",
            "Tasks whose compute() returned false.",
            &|w| w.tasks_finished,
        );
        family("gthinker_compute_calls_total", "counter", "Total compute() invocations.", &|w| {
            w.compute_calls
        });
        family(
            "gthinker_net_bytes_sent_total",
            "counter",
            "Bytes this worker put on the wire.",
            &|w| w.net_bytes_sent,
        );
        family(
            "gthinker_net_bytes_received_total",
            "counter",
            "Bytes this worker took off the wire.",
            &|w| w.net_bytes_received,
        );
        family(
            "gthinker_net_writev_calls_total",
            "counter",
            "Vectored socket writes issued by the evented data plane.",
            &|w| w.net_writev_calls,
        );
        family(
            "gthinker_net_frames_coalesced_total",
            "counter",
            "Frames that shared a vectored write with another frame.",
            &|w| w.net_frames_coalesced,
        );
        family(
            "gthinker_net_backpressure_stalls_total",
            "counter",
            "Sends that waited on a full per-peer outbound ring.",
            &|w| w.net_backpressure_stalls,
        );
        family(
            "gthinker_net_delayed_write_errors_total",
            "counter",
            "Fault-delayed frames dropped because their deferred write failed.",
            &|w| w.net_delayed_write_errors,
        );
        family(
            "gthinker_remote_stolen_tasks_total",
            "counter",
            "Tasks shipped off this worker by cluster steals.",
            &|w| w.remote_stolen_tasks,
        );
        family("gthinker_cache_hits_total", "counter", "Vertex cache hits.", &|w| w.cache.hits);
        family(
            "gthinker_cache_misses_total",
            "counter",
            "Vertex cache misses (remote pulls issued).",
            &|w| w.cache.misses,
        );
        family(
            "gthinker_pull_retries_total",
            "counter",
            "Vertex pulls re-requested after a deadline expiry.",
            &|w| w.pull_retries,
        );
        family(
            "gthinker_trace_events_dropped_total",
            "counter",
            "Trace events lost to ring recycling.",
            &|w| w.trace_events_dropped,
        );
        family(
            "gthinker_recoveries_total",
            "counter",
            "Crash-recovery rounds this job has been through.",
            &|w| w.recoveries,
        );
        family(
            "gthinker_peer_down_events_total",
            "counter",
            "TCP peer-death events observed by the transport.",
            &|w| w.peer_down_events,
        );
        family(
            "gthinker_rejoins_total",
            "counter",
            "Mesh rejoins by a respawned process (bumped generation).",
            &|w| w.rejoins,
        );
        // resumed_epoch is signed (-1 = started fresh), so it cannot go
        // through the u64 family helper.
        let _ = writeln!(
            s,
            "# HELP gthinker_resumed_epoch Checkpoint epoch the current attempt resumed from (-1 = fresh)."
        );
        let _ = writeln!(s, "# TYPE gthinker_resumed_epoch gauge");
        for (wi, w) in self.workers.iter().enumerate() {
            let _ = writeln!(s, "gthinker_resumed_epoch{{worker=\"{wi}\"}} {}", w.resumed_epoch);
        }
        s
    }
}

/// The master's live view of every worker's metrics, fed by
/// `MetricsReport` control messages. `latest` holds the newest report
/// per worker (reports are cumulative snapshots, so newer strictly
/// supersedes older — arrival order between workers never matters);
/// `finals` holds only end-of-job reports carrying event timelines.
/// Shared between the master's control loop (writer) and the CLI's
/// status/exposition threads (readers).
pub struct ClusterTelemetry {
    start: Instant,
    latest: Mutex<Vec<Option<WorkerMetricsSnapshot>>>,
    finals: Mutex<Vec<Option<WorkerMetricsSnapshot>>>,
}

impl ClusterTelemetry {
    /// An empty view over `num_workers` workers.
    pub fn new(num_workers: usize) -> Self {
        ClusterTelemetry {
            start: Instant::now(),
            latest: Mutex::new(vec![None; num_workers]),
            finals: Mutex::new(vec![None; num_workers]),
        }
    }

    /// Number of worker slots in this view.
    pub fn num_workers(&self) -> usize {
        self.latest.lock().unwrap().len()
    }

    /// Absorbs one worker's report. Out-of-range worker indices are
    /// ignored (a malformed report must not panic the master).
    pub fn publish(&self, worker: usize, snap: WorkerMetricsSnapshot, is_final: bool) {
        if is_final {
            let mut finals = self.finals.lock().unwrap();
            if let Some(slot) = finals.get_mut(worker) {
                *slot = Some(snap.clone());
            }
        }
        let mut latest = self.latest.lock().unwrap();
        if let Some(slot) = latest.get_mut(worker) {
            *slot = Some(snap);
        }
    }

    /// Workers that have reported at least once.
    pub fn reported(&self) -> usize {
        self.latest.lock().unwrap().iter().filter(|s| s.is_some()).count()
    }

    /// The cluster-wide snapshot assembled from the newest report per
    /// worker. Workers that have not reported yet appear as default
    /// (all-zero) entries so the worker indices stay aligned.
    pub fn cluster_snapshot(&self) -> MetricsSnapshot {
        let latest = self.latest.lock().unwrap();
        MetricsSnapshot {
            elapsed: self.start.elapsed(),
            workers: latest.iter().map(|s| s.clone().unwrap_or_default()).collect(),
        }
    }

    /// Each worker's final report, if it arrived.
    pub fn final_snapshots(&self) -> Vec<Option<WorkerMetricsSnapshot>> {
        self.finals.lock().unwrap().clone()
    }
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Quantile summary of one histogram as a JSON object.
fn hist_json(h: &HistSnapshot) -> String {
    format!(
        "{{\"count\": {}, \"mean_ns\": {}, \"p50_ns\": {}, \"p90_ns\": {}, \
         \"p95_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}}}",
        h.count(),
        h.mean(),
        h.quantile(0.50),
        h.quantile(0.90),
        h.quantile(0.95),
        h.quantile(0.99),
        h.max_estimate(),
    )
}

/// Human-scale duration from nanoseconds.
fn fmt_nanos(n: u64) -> String {
    if n >= 1_000_000_000 {
        format!("{:.2}s", n as f64 / 1e9)
    } else if n >= 1_000_000 {
        format!("{:.1}ms", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.1}us", n as f64 / 1e3)
    } else {
        format!("{n}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap_with(counts: &[u64]) -> MetricsSnapshot {
        let workers = counts
            .iter()
            .map(|&n| {
                let h = gthinker_metrics::ComperHists::new();
                for i in 0..n {
                    h.compute.record(1_000 * (i + 1));
                    h.e2e.record(10_000 * (i + 1));
                }
                WorkerMetricsSnapshot {
                    tasks_finished: n,
                    compers: vec![h.snapshot()],
                    ..Default::default()
                }
            })
            .collect();
        MetricsSnapshot { elapsed: Duration::from_millis(5), workers }
    }

    #[test]
    fn progress_projection_sums_workers() {
        let s = snap_with(&[3, 7]);
        let p = s.progress();
        assert_eq!(p.tasks_finished, 10);
        assert_eq!(p.quiescent_workers, 0);
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn merged_hists_keep_all_counts() {
        let s = snap_with(&[3, 7]);
        let m = s.merged_hists();
        assert_eq!(m.compute.count(), 10);
        assert_eq!(m.e2e.count(), 10);
    }

    #[test]
    fn json_and_reports_render() {
        let s = snap_with(&[2, 2]);
        let json = s.to_json();
        for key in ["\"workers\"", "\"compers\"", "\"p50_ns\"", "\"p99_ns\"", "\"merged\""] {
            assert!(json.contains(key), "missing {key}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(s.pretty().contains("job metrics"));
        assert!(s.tail_report().contains("task latency tail"));
    }

    #[test]
    fn fmt_nanos_scales() {
        assert_eq!(fmt_nanos(50), "50ns");
        assert_eq!(fmt_nanos(1_500), "1.5us");
        assert_eq!(fmt_nanos(2_500_000), "2.5ms");
        assert_eq!(fmt_nanos(3_000_000_000), "3.00s");
    }

    fn busy_snapshot() -> WorkerMetricsSnapshot {
        let h = gthinker_metrics::ComperHists::new();
        for i in 1..=20u64 {
            h.compute.record(1_000 * i);
            h.e2e.record(10_000 * i);
            h.park.record(100 * i);
        }
        WorkerMetricsSnapshot {
            tasks_finished: 42,
            compute_calls: 99,
            compute_nanos: 123_456,
            idle_nanos: 7,
            steals: 3,
            stolen_tasks: 11,
            remote_steals: 2,
            remote_stolen_tasks: 9,
            steal_batch_bytes: 512,
            yields: 4,
            split_tasks: 6,
            parks: 13,
            wakeups: 12,
            responses_served: 77,
            responder_backlog: 1,
            responder_peak_backlog: 5,
            pull_retries: 8,
            net_msgs_dropped: 2,
            net_msgs_duplicated: 1,
            net_msgs_delayed: 3,
            cache: CacheSnapshot {
                hits: 100,
                shared_waits: 2,
                misses: 30,
                evictions: 5,
                gc_passes: 4,
                retries: 1,
                stale_responses: 2,
            },
            net_bytes_sent: 1_000,
            net_bytes_received: 2_000,
            net_writev_calls: 60,
            net_frames_coalesced: 25,
            net_backpressure_stalls: 2,
            net_delayed_write_errors: 1,
            spill_bytes: 4_096,
            remaining: 17,
            quiescent: true,
            idle_compers: 2,
            steal_inflight: 1,
            trace_events_dropped: 9,
            recoveries: 2,
            peer_down_events: 1,
            rejoins: 1,
            resumed_epoch: 3,
            clock_offset_nanos: -12_345,
            compers: vec![h.snapshot(), ComperHistSnapshot::default()],
            pull_rtt: {
                let hist = gthinker_metrics::ComperHists::new();
                hist.compute.record(5_000);
                hist.compute.snapshot()
            },
            responder_drain: HistSnapshot::default(),
            events: vec![
                Event { ts: 10, dur: 5, tid: 0, arg: 0, kind: EventKind::Compute },
                Event { ts: 20, dur: 0, tid: 3, arg: (1 << 32) | 7, kind: EventKind::StealSend },
            ],
        }
    }

    #[test]
    fn report_codec_round_trips() {
        let snap = busy_snapshot();
        let payload = snap.encode_report();
        let back = WorkerMetricsSnapshot::decode_report(&payload).unwrap();
        assert_eq!(back.tasks_finished, snap.tasks_finished);
        assert_eq!(back.compute_calls, snap.compute_calls);
        assert_eq!(back.cache, snap.cache);
        assert_eq!(back.quiescent, snap.quiescent);
        assert_eq!(back.clock_offset_nanos, snap.clock_offset_nanos);
        assert_eq!(back.trace_events_dropped, snap.trace_events_dropped);
        assert_eq!(back.recoveries, snap.recoveries);
        assert_eq!(back.peer_down_events, snap.peer_down_events);
        assert_eq!(back.rejoins, snap.rejoins);
        assert_eq!(back.resumed_epoch, snap.resumed_epoch);
        assert_eq!(back.idle_compers, snap.idle_compers);
        assert_eq!(back.steal_inflight, snap.steal_inflight);
        assert_eq!(back.remaining, snap.remaining);
        assert_eq!(back.net_bytes_sent, snap.net_bytes_sent);
        assert_eq!(back.net_bytes_received, snap.net_bytes_received);
        assert_eq!(back.net_writev_calls, snap.net_writev_calls);
        assert_eq!(back.net_frames_coalesced, snap.net_frames_coalesced);
        assert_eq!(back.net_backpressure_stalls, snap.net_backpressure_stalls);
        assert_eq!(back.net_delayed_write_errors, snap.net_delayed_write_errors);
        assert_eq!(back.compers.len(), snap.compers.len());
        assert_eq!(back.compers[0].compute.count(), snap.compers[0].compute.count());
        assert_eq!(back.compers[0].e2e.sum, snap.compers[0].e2e.sum);
        assert_eq!(back.pull_rtt.count(), snap.pull_rtt.count());
        assert_eq!(back.events, snap.events);
    }

    #[test]
    fn report_decode_rejects_corruption() {
        let snap = busy_snapshot();
        let payload = snap.encode_report();
        // Flip a payload byte: the frame CRC catches it.
        let mut bad = payload.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0xFF;
        assert!(WorkerMetricsSnapshot::decode_report(&bad).is_err());
        // Truncations fail cleanly too.
        for cut in [0, 1, payload.len() / 2, payload.len() - 1] {
            assert!(WorkerMetricsSnapshot::decode_report(&payload[..cut]).is_err());
        }
        // An empty (default) snapshot still round-trips.
        let empty = WorkerMetricsSnapshot::default();
        let back = WorkerMetricsSnapshot::decode_report(&empty.encode_report()).unwrap();
        assert_eq!(back.tasks_finished, 0);
        assert!(back.events.is_empty());
    }

    #[test]
    fn cluster_telemetry_tracks_latest_and_finals() {
        let t = ClusterTelemetry::new(3);
        assert_eq!(t.num_workers(), 3);
        assert_eq!(t.reported(), 0);
        let mut first = busy_snapshot();
        first.tasks_finished = 1;
        t.publish(1, first, false);
        let mut newer = busy_snapshot();
        newer.tasks_finished = 5;
        t.publish(1, newer, false);
        assert_eq!(t.reported(), 1);
        let snap = t.cluster_snapshot();
        assert_eq!(snap.workers.len(), 3);
        assert_eq!(snap.workers[1].tasks_finished, 5, "newest report wins");
        assert_eq!(snap.workers[0].tasks_finished, 0, "unreported worker is zeroed");
        assert!(t.final_snapshots().iter().all(|f| f.is_none()));
        t.publish(2, busy_snapshot(), true);
        let finals = t.final_snapshots();
        assert!(finals[2].is_some());
        assert!(finals[1].is_none());
        // Out-of-range publishes are ignored, not panics.
        t.publish(9, busy_snapshot(), true);
        assert_eq!(t.reported(), 2);
    }

    #[test]
    fn prometheus_text_has_per_worker_series() {
        let mut s = snap_with(&[3, 7]);
        s.workers[0].remaining = 12;
        s.workers[0].idle_compers = 2;
        s.workers[1].net_bytes_sent = 900;
        s.workers[0].recoveries = 1;
        s.workers[0].resumed_epoch = -1;
        s.workers[1].resumed_epoch = 2;
        let text = s.prometheus_text();
        for needle in [
            "# TYPE gthinker_remaining gauge",
            "gthinker_remaining{worker=\"0\"} 12",
            "gthinker_idle_compers{worker=\"0\"} 2",
            "gthinker_idle_compers{worker=\"1\"} 0",
            "# TYPE gthinker_net_bytes_sent_total counter",
            "gthinker_net_bytes_sent_total{worker=\"1\"} 900",
            "gthinker_net_bytes_received_total{worker=\"0\"} 0",
            "gthinker_tasks_finished_total{worker=\"0\"} 3",
            "gthinker_tasks_finished_total{worker=\"1\"} 7",
            "gthinker_elapsed_seconds 0.005",
            "# TYPE gthinker_recoveries_total counter",
            "gthinker_recoveries_total{worker=\"0\"} 1",
            "gthinker_peer_down_events_total{worker=\"1\"} 0",
            "gthinker_rejoins_total{worker=\"0\"} 0",
            "gthinker_resumed_epoch{worker=\"0\"} -1",
            "gthinker_resumed_epoch{worker=\"1\"} 2",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        // Every line is a comment or `name{labels} value`.
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.split(' ').count() == 2,
                "malformed exposition line: {line:?}"
            );
        }
    }
}
