//! Unified job metrics: the [`MetricsRegistry`] and its
//! [`MetricsSnapshot`], subsuming the raw `WorkerCounters`, the cache
//! statistics and the progress view into one structured, exportable
//! snapshot (DESIGN.md §"Observability").
//!
//! A snapshot is safe to take at any moment of a running job — every
//! source is either an atomic counter or a lock-free histogram read —
//! and is plain data afterwards: mergeable, comparable, serialisable
//! to JSON or pretty text, and (with events) dumpable as a Chrome
//! trace.

use crate::api::App;
use crate::job::ProgressSnapshot;
use crate::worker::WorkerShared;
use gthinker_metrics::{ComperHistSnapshot, Event, HistSnapshot};
use gthinker_store::cache::CacheSnapshot;
use std::fmt::Write as _;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Live handle over a running job's workers; the factory for
/// [`MetricsSnapshot`]s. Owned by the job runner.
pub struct MetricsRegistry<A: App> {
    workers: Vec<Arc<WorkerShared<A>>>,
    start: Instant,
}

impl<A: App> MetricsRegistry<A> {
    pub(crate) fn new(workers: Vec<Arc<WorkerShared<A>>>, start: Instant) -> Self {
        MetricsRegistry { workers, start }
    }

    /// Mid-run snapshot: counters, cache stats and histograms, but no
    /// event dump (rings keep filling; reading them mid-run is cheap
    /// but rarely useful before the job ends).
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.snapshot_inner(false)
    }

    /// End-of-run snapshot including each worker's event timeline.
    pub fn final_snapshot(&self) -> MetricsSnapshot {
        self.snapshot_inner(true)
    }

    fn snapshot_inner(&self, with_events: bool) -> MetricsSnapshot {
        MetricsSnapshot {
            elapsed: self.start.elapsed(),
            workers: self.workers.iter().map(|w| snapshot_worker(w, with_events)).collect(),
        }
    }
}

fn snapshot_worker<A: App>(w: &WorkerShared<A>, with_events: bool) -> WorkerMetricsSnapshot {
    let c = &w.counters;
    WorkerMetricsSnapshot {
        tasks_finished: c.tasks_finished.load(Ordering::Relaxed),
        compute_calls: c.compute_calls.load(Ordering::Relaxed),
        compute_nanos: c.compute_nanos.load(Ordering::Relaxed),
        idle_nanos: c.idle_nanos.load(Ordering::Relaxed),
        steals: c.steals.load(Ordering::Relaxed),
        stolen_tasks: c.stolen_tasks.load(Ordering::Relaxed),
        remote_steals: c.remote_steals.load(Ordering::Relaxed),
        remote_stolen_tasks: c.remote_stolen_tasks.load(Ordering::Relaxed),
        steal_batch_bytes: c.steal_batch_bytes.load(Ordering::Relaxed),
        yields: c.yields.load(Ordering::Relaxed),
        split_tasks: c.split_tasks.load(Ordering::Relaxed),
        parks: c.parks.load(Ordering::Relaxed),
        wakeups: c.wakeups.load(Ordering::Relaxed),
        responses_served: c.responses_served.load(Ordering::Relaxed),
        responder_backlog: c.responder_backlog.load(Ordering::Relaxed),
        responder_peak_backlog: c.responder_peak_backlog.load(Ordering::Relaxed),
        pull_retries: c.pull_retries.load(Ordering::Relaxed),
        net_msgs_dropped: w.net.fault_stats().map_or(0, |f| f.dropped.load(Ordering::Relaxed)),
        net_msgs_duplicated: w
            .net
            .fault_stats()
            .map_or(0, |f| f.duplicated.load(Ordering::Relaxed)),
        net_msgs_delayed: w.net.fault_stats().map_or(0, |f| f.delayed.load(Ordering::Relaxed)),
        cache: w.cache.stats().snapshot(),
        net_bytes_sent: w.net.stats().bytes_sent.load(Ordering::Relaxed),
        net_bytes_received: w.net.stats().bytes_received.load(Ordering::Relaxed),
        spill_bytes: w.spill.bytes_spilled(),
        remaining: w.remaining_estimate(),
        quiescent: w.quiescent(),
        compers: w.compers.iter().map(|c| c.hists.snapshot()).collect(),
        pull_rtt: w.metrics.pull_rtt.snapshot(),
        responder_drain: w.metrics.responder_drain.snapshot(),
        events: if with_events { w.metrics.ring.snapshot() } else { Vec::new() },
    }
}

/// One worker's slice of a [`MetricsSnapshot`]: every scheduler/cache
/// counter, the per-comper latency histograms and (in final snapshots)
/// the event timeline.
#[derive(Clone, Debug, Default)]
pub struct WorkerMetricsSnapshot {
    /// Tasks whose `compute()` returned `false`.
    pub tasks_finished: u64,
    /// Total `compute()` invocations (iterations).
    pub compute_calls: u64,
    /// Thread-CPU nanoseconds inside `compute()`, summed over compers.
    pub compute_nanos: u64,
    /// Nanoseconds compers spent parked, summed over compers.
    pub idle_nanos: u64,
    /// Successful intra-worker steals by this worker's compers.
    pub steals: u64,
    /// Tasks moved by those steals.
    pub stolen_tasks: u64,
    /// Cluster-wide steal batches this worker shipped to remote
    /// thieves (master-brokered).
    pub remote_steals: u64,
    /// Tasks moved off this worker by those batches.
    pub remote_stolen_tasks: u64,
    /// Framed bytes of steal batches sent, resends included.
    pub steal_batch_bytes: u64,
    /// Mid-compute yields: framework budget preemptions plus UDF
    /// `note_split` events.
    pub yields: u64,
    /// Tasks created by straggler splitting (framework re-enqueues +
    /// UDF-reported fan-outs).
    pub split_tasks: u64,
    /// Times a comper parked on the scheduler event count.
    pub parks: u64,
    /// Parks that ended in an event wakeup (not the fallback timeout).
    pub wakeups: u64,
    /// Vertices served to remote pulls by the responder pool.
    pub responses_served: u64,
    /// Request batches queued to responders but not yet served (gauge;
    /// 0 at quiescence).
    pub responder_backlog: u64,
    /// Peak of that gauge over the run.
    pub responder_peak_backlog: u64,
    /// Vertex pulls re-requested after their R-table deadline expired
    /// (loss tolerance; 0 on a healthy wire).
    pub pull_retries: u64,
    /// Data-plane messages the fault-injected wire dropped on this
    /// worker's sends (0 with fault injection off).
    pub net_msgs_dropped: u64,
    /// Data-plane messages the fault-injected wire duplicated.
    pub net_msgs_duplicated: u64,
    /// Data-plane messages the fault-injected wire delayed.
    pub net_msgs_delayed: u64,
    /// Named cache counters (previously the opaque 5-tuple).
    pub cache: CacheSnapshot,
    /// Bytes sent over the simulated network.
    pub net_bytes_sent: u64,
    /// Bytes received.
    pub net_bytes_received: u64,
    /// Bytes of task batches spilled to disk.
    pub spill_bytes: u64,
    /// Estimated remaining load in tasks.
    pub remaining: u64,
    /// Whether the worker was quiescent at snapshot time.
    pub quiescent: bool,
    /// Per-comper latency histograms (compute / e2e / park).
    pub compers: Vec<ComperHistSnapshot>,
    /// Pull round-trip time (request sent → response installed).
    pub pull_rtt: HistSnapshot,
    /// Responder backlog drain time (dispatch → response sent).
    pub responder_drain: HistSnapshot,
    /// Event timeline (final snapshots only; bounded by the ring).
    pub events: Vec<Event>,
}

impl WorkerMetricsSnapshot {
    /// All compers' histograms merged into one (lossless bucket sums).
    pub fn merged_hists(&self) -> ComperHistSnapshot {
        let mut m = ComperHistSnapshot::default();
        for c in &self.compers {
            m.merge(c);
        }
        m
    }
}

/// A point-in-time view of every worker's metrics. Plain data; all
/// methods are derived views.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Time since the job started.
    pub elapsed: Duration,
    /// One entry per worker.
    pub workers: Vec<WorkerMetricsSnapshot>,
}

impl MetricsSnapshot {
    /// Every comper of every worker merged into one histogram set.
    pub fn merged_hists(&self) -> ComperHistSnapshot {
        let mut m = ComperHistSnapshot::default();
        for w in &self.workers {
            m.merge(&w.merged_hists());
        }
        m
    }

    /// Tasks finished across all workers.
    pub fn total_tasks(&self) -> u64 {
        self.workers.iter().map(|w| w.tasks_finished).sum()
    }

    /// The legacy progress view, derived (the observer API's
    /// [`ProgressSnapshot`] is a strict projection of this snapshot).
    pub fn progress(&self) -> ProgressSnapshot {
        ProgressSnapshot {
            elapsed: self.elapsed,
            tasks_finished: self.total_tasks(),
            remaining: self.workers.iter().map(|w| w.remaining).sum(),
            cache_hits: self.workers.iter().map(|w| w.cache.hits).sum(),
            cache_misses: self.workers.iter().map(|w| w.cache.misses).sum(),
            net_bytes: self.workers.iter().map(|w| w.net_bytes_sent).sum(),
            quiescent_workers: self.workers.iter().filter(|w| w.quiescent).count(),
        }
    }

    /// Writes all workers' event timelines as Chrome `trace_event`
    /// JSON (chrome://tracing / Perfetto). Only meaningful on a final
    /// snapshot of a job run with a non-zero `trace_capacity`.
    pub fn write_chrome_trace<W: std::io::Write>(&self, w: W) -> std::io::Result<()> {
        let per_worker: Vec<Vec<Event>> = self.workers.iter().map(|ws| ws.events.clone()).collect();
        gthinker_metrics::trace::write_chrome_trace(w, &per_worker)
    }

    /// Machine-readable JSON export: per-worker counters plus quantile
    /// summaries (count/mean/p50/p90/p95/p99/max) of every histogram,
    /// per comper and merged.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = write!(s, "{{\n  \"elapsed_ms\": {:.3},\n  \"workers\": [", ms(self.elapsed));
        for (wi, w) in self.workers.iter().enumerate() {
            if wi > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n    {{\n      \"worker\": {wi},\n      \
                 \"tasks_finished\": {},\n      \"compute_calls\": {},\n      \
                 \"compute_ms\": {:.3},\n      \"idle_ms\": {:.3},\n      \
                 \"steals\": {},\n      \"stolen_tasks\": {},\n      \
                 \"remote_steals\": {},\n      \"remote_stolen_tasks\": {},\n      \
                 \"steal_batch_bytes\": {},\n      \"yields\": {},\n      \
                 \"split_tasks\": {},\n      \
                 \"parks\": {},\n      \"wakeups\": {},\n      \
                 \"responses_served\": {},\n      \"responder_backlog\": {},\n      \
                 \"responder_peak_backlog\": {},\n      \"pull_retries\": {},\n      \
                 \"net_msgs_dropped\": {},\n      \"net_msgs_duplicated\": {},\n      \
                 \"net_msgs_delayed\": {},\n      \
                 \"cache\": {{\"hits\": {}, \"shared_waits\": {}, \"misses\": {}, \
                 \"evictions\": {}, \"gc_passes\": {}, \"retries\": {}, \
                 \"stale_responses\": {}}},\n      \
                 \"net_bytes_sent\": {},\n      \"net_bytes_received\": {},\n      \
                 \"spill_bytes\": {},\n      \
                 \"pull_rtt\": {},\n      \"responder_drain\": {},\n      \
                 \"compers\": [",
                w.tasks_finished,
                w.compute_calls,
                w.compute_nanos as f64 / 1e6,
                w.idle_nanos as f64 / 1e6,
                w.steals,
                w.stolen_tasks,
                w.remote_steals,
                w.remote_stolen_tasks,
                w.steal_batch_bytes,
                w.yields,
                w.split_tasks,
                w.parks,
                w.wakeups,
                w.responses_served,
                w.responder_backlog,
                w.responder_peak_backlog,
                w.pull_retries,
                w.net_msgs_dropped,
                w.net_msgs_duplicated,
                w.net_msgs_delayed,
                w.cache.hits,
                w.cache.shared_waits,
                w.cache.misses,
                w.cache.evictions,
                w.cache.gc_passes,
                w.cache.retries,
                w.cache.stale_responses,
                w.net_bytes_sent,
                w.net_bytes_received,
                w.spill_bytes,
                hist_json(&w.pull_rtt),
                hist_json(&w.responder_drain),
            );
            for (ci, c) in w.compers.iter().enumerate() {
                if ci > 0 {
                    s.push(',');
                }
                let _ = write!(
                    s,
                    "\n        {{\"comper\": {ci}, \"compute\": {}, \"e2e\": {}, \"park\": {}}}",
                    hist_json(&c.compute),
                    hist_json(&c.e2e),
                    hist_json(&c.park),
                );
            }
            s.push_str("\n      ]\n    }");
        }
        let m = self.merged_hists();
        let _ = write!(
            s,
            "\n  ],\n  \"merged\": {{\"compute\": {}, \"e2e\": {}, \"park\": {}}}\n}}\n",
            hist_json(&m.compute),
            hist_json(&m.e2e),
            hist_json(&m.park),
        );
        s
    }

    /// Human-readable summary: per-worker counters and merged latency
    /// quantiles.
    pub fn pretty(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "job metrics after {:.1} ms", ms(self.elapsed));
        let _ = writeln!(
            s,
            "{:>6} | {:>8} {:>9} {:>9} | {:>6} {:>6} {:>7} | {:>9} {:>9}",
            "worker", "tasks", "compute", "idle", "steals", "parks", "served", "hits", "misses"
        );
        for (wi, w) in self.workers.iter().enumerate() {
            let _ = writeln!(
                s,
                "{:>6} | {:>8} {:>8.1}ms {:>8.1}ms | {:>6} {:>6} {:>7} | {:>9} {:>9}",
                wi,
                w.tasks_finished,
                w.compute_nanos as f64 / 1e6,
                w.idle_nanos as f64 / 1e6,
                w.steals,
                w.parks,
                w.responses_served,
                w.cache.hits,
                w.cache.misses,
            );
        }
        let m = self.merged_hists();
        for (name, h) in [("compute", &m.compute), ("task e2e", &m.e2e), ("park", &m.park)] {
            let _ = writeln!(
                s,
                "{name:>9}: n={} p50={} p95={} p99={} max={}",
                h.count(),
                fmt_nanos(h.quantile(0.50)),
                fmt_nanos(h.quantile(0.95)),
                fmt_nanos(h.quantile(0.99)),
                fmt_nanos(h.max_estimate()),
            );
        }
        s
    }

    /// End-of-run tail-latency report: task e2e p50/p95/p99/max per
    /// comper, with a straggler flag on any comper whose busy time
    /// (thread-CPU in `compute()`) deviates more than 2× from the
    /// median comper.
    pub fn tail_report(&self) -> String {
        let mut s = String::new();
        let mut busies: Vec<u64> =
            self.workers.iter().flat_map(|w| w.compers.iter().map(|c| c.compute.sum)).collect();
        if busies.is_empty() {
            return "no comper metrics recorded (metrics feature off?)\n".to_string();
        }
        busies.sort_unstable();
        let median = busies[busies.len() / 2];
        let _ = writeln!(s, "task latency tail (end-to-end, spawn -> finish)");
        let _ = writeln!(
            s,
            "{:>6} {:>6} | {:>7} {:>9} {:>9} {:>9} {:>9} | {:>9}",
            "worker", "comper", "tasks", "p50", "p95", "p99", "max", "busy"
        );
        let mut stragglers = Vec::new();
        for (wi, w) in self.workers.iter().enumerate() {
            for (ci, c) in w.compers.iter().enumerate() {
                let busy = c.compute.sum;
                // A comper is a straggler when its busy time is more
                // than 2x the median (overloaded) or under half of it
                // (starved) — both directions of >2x deviation.
                let straggler = median > 0 && (busy > 2 * median || busy * 2 < median);
                let _ = writeln!(
                    s,
                    "{:>6} {:>6} | {:>7} {:>9} {:>9} {:>9} {:>9} | {:>7.1}ms{}",
                    wi,
                    ci,
                    c.e2e.count(),
                    fmt_nanos(c.e2e.quantile(0.50)),
                    fmt_nanos(c.e2e.quantile(0.95)),
                    fmt_nanos(c.e2e.quantile(0.99)),
                    fmt_nanos(c.e2e.max_estimate()),
                    busy as f64 / 1e6,
                    if straggler { "  <-- straggler" } else { "" },
                );
                if straggler {
                    stragglers.push((wi, ci, busy));
                }
            }
        }
        if stragglers.is_empty() {
            let _ = writeln!(s, "no stragglers (all busy times within 2x of the median)");
        } else {
            for (wi, ci, busy) in stragglers {
                let _ = writeln!(
                    s,
                    "straggler: worker {wi} comper {ci} busy {:.1}ms vs median {:.1}ms",
                    busy as f64 / 1e6,
                    median as f64 / 1e6,
                );
            }
        }
        let (rs, rt, rb, yl, sp) = self.workers.iter().fold((0, 0, 0, 0, 0), |a, w| {
            (
                a.0 + w.remote_steals,
                a.1 + w.remote_stolen_tasks,
                a.2 + w.steal_batch_bytes,
                a.3 + w.yields,
                a.4 + w.split_tasks,
            )
        });
        let _ = writeln!(
            s,
            "cluster stealing: {rs} batches / {rt} tasks / {rb} bytes shipped; \
             {yl} yields split {sp} straggler tasks",
        );
        s
    }
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Quantile summary of one histogram as a JSON object.
fn hist_json(h: &HistSnapshot) -> String {
    format!(
        "{{\"count\": {}, \"mean_ns\": {}, \"p50_ns\": {}, \"p90_ns\": {}, \
         \"p95_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}}}",
        h.count(),
        h.mean(),
        h.quantile(0.50),
        h.quantile(0.90),
        h.quantile(0.95),
        h.quantile(0.99),
        h.max_estimate(),
    )
}

/// Human-scale duration from nanoseconds.
fn fmt_nanos(n: u64) -> String {
    if n >= 1_000_000_000 {
        format!("{:.2}s", n as f64 / 1e9)
    } else if n >= 1_000_000 {
        format!("{:.1}ms", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.1}us", n as f64 / 1e3)
    } else {
        format!("{n}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap_with(counts: &[u64]) -> MetricsSnapshot {
        let workers = counts
            .iter()
            .map(|&n| {
                let h = gthinker_metrics::ComperHists::new();
                for i in 0..n {
                    h.compute.record(1_000 * (i + 1));
                    h.e2e.record(10_000 * (i + 1));
                }
                WorkerMetricsSnapshot {
                    tasks_finished: n,
                    compers: vec![h.snapshot()],
                    ..Default::default()
                }
            })
            .collect();
        MetricsSnapshot { elapsed: Duration::from_millis(5), workers }
    }

    #[test]
    fn progress_projection_sums_workers() {
        let s = snap_with(&[3, 7]);
        let p = s.progress();
        assert_eq!(p.tasks_finished, 10);
        assert_eq!(p.quiescent_workers, 0);
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn merged_hists_keep_all_counts() {
        let s = snap_with(&[3, 7]);
        let m = s.merged_hists();
        assert_eq!(m.compute.count(), 10);
        assert_eq!(m.e2e.count(), 10);
    }

    #[test]
    fn json_and_reports_render() {
        let s = snap_with(&[2, 2]);
        let json = s.to_json();
        for key in ["\"workers\"", "\"compers\"", "\"p50_ns\"", "\"p99_ns\"", "\"merged\""] {
            assert!(json.contains(key), "missing {key}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(s.pretty().contains("job metrics"));
        assert!(s.tail_report().contains("task latency tail"));
    }

    #[test]
    fn fmt_nanos_scales() {
        assert_eq!(fmt_nanos(50), "50ns");
        assert_eq!(fmt_nanos(1_500), "1.5us");
        assert_eq!(fmt_nanos(2_500_000), "2.5ms");
        assert_eq!(fmt_nanos(3_000_000_000), "3.00s");
    }
}
